// Package prof wires the standard -cpuprofile/-memprofile flags into the
// command-line tools. Both profiles are the stock runtime/pprof formats,
// readable with `go tool pprof`.
package prof

import (
	"os"
	"runtime"
	"runtime/pprof"
)

// StartCPU begins CPU profiling into path and returns a stop function
// that must run before the process exits (os.Exit skips defers, so error
// paths call it explicitly). An empty path is a no-op.
func StartCPU(path string) (stop func(), err error) {
	if path == "" {
		return func() {}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, err
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}

// WriteHeap snapshots the heap to path after a GC, so the profile shows
// live objects rather than garbage awaiting collection. An empty path is
// a no-op.
func WriteHeap(path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
