package flash

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"ssmobile/internal/device"
	"ssmobile/internal/sim"
)

func testConfig() Config {
	return Config{
		Banks:         2,
		BlocksPerBank: 8,
		BlockBytes:    4096,
		Params:        device.IntelFlash,
	}
}

func newTestDevice(t *testing.T, cfg Config) (*Device, *sim.Clock, *sim.EnergyMeter) {
	t.Helper()
	clock := sim.NewClock()
	meter := sim.NewEnergyMeter()
	d, err := New(cfg, clock, meter)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return d, clock, meter
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{Banks: 0, BlocksPerBank: 1, BlockBytes: 1, Params: device.IntelFlash}).Validate(); err == nil {
		t.Error("zero banks accepted")
	}
	if err := (Config{Banks: 1, BlocksPerBank: 1, BlockBytes: 512, Params: device.NECDram}).Validate(); err == nil {
		t.Error("DRAM params accepted for flash device")
	}
	if err := testConfig().Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestGeometry(t *testing.T) {
	d, _, _ := newTestDevice(t, testConfig())
	if d.Capacity() != 2*8*4096 {
		t.Fatalf("capacity %d", d.Capacity())
	}
	if d.NumBlocks() != 16 || d.Banks() != 2 || d.BlockBytes() != 4096 {
		t.Fatal("geometry accessors wrong")
	}
	if d.BlockOf(0) != 0 || d.BlockOf(4095) != 0 || d.BlockOf(4096) != 1 {
		t.Fatal("BlockOf wrong")
	}
	if d.BankOf(0) != 0 || d.BankOf(7) != 0 || d.BankOf(8) != 1 {
		t.Fatal("BankOf wrong")
	}
	if d.BlockAddr(3) != 3*4096 {
		t.Fatal("BlockAddr wrong")
	}
}

func TestNewDeviceIsErased(t *testing.T) {
	d, _, _ := newTestDevice(t, testConfig())
	buf := make([]byte, 64)
	if _, err := d.Read(100, buf); err != nil {
		t.Fatal(err)
	}
	for _, b := range buf {
		if b != 0xFF {
			t.Fatal("fresh device not erased")
		}
	}
}

func TestProgramThenRead(t *testing.T) {
	d, _, _ := newTestDevice(t, testConfig())
	msg := []byte("solid-state mobile computers")
	if _, err := d.Program(128, msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if _, err := d.Read(128, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("read back %q, want %q", got, msg)
	}
}

func TestEraseBeforeRewriteRule(t *testing.T) {
	d, _, _ := newTestDevice(t, testConfig())
	if _, err := d.Program(0, []byte{0x0F}); err != nil {
		t.Fatal(err)
	}
	// Clearing more bits is legal flash behaviour.
	if _, err := d.Program(0, []byte{0x0E}); err != nil {
		t.Fatalf("bit-clearing overprogram rejected: %v", err)
	}
	// Setting a bit back requires an erase.
	if _, err := d.Program(0, []byte{0x1F}); !errors.Is(err, ErrOverwrite) {
		t.Fatalf("got %v, want ErrOverwrite", err)
	}
	if _, err := d.Erase(0); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Program(0, []byte{0x1F}); err != nil {
		t.Fatalf("program after erase failed: %v", err)
	}
}

func TestEraseResetsWholeBlockOnly(t *testing.T) {
	d, _, _ := newTestDevice(t, testConfig())
	if _, err := d.Program(10, []byte{0}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Program(4096+10, []byte{0}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Erase(0); err != nil {
		t.Fatal(err)
	}
	if d.Peek(10) != 0xFF {
		t.Fatal("erase did not reset block 0")
	}
	if d.Peek(4096+10) != 0 {
		t.Fatal("erase of block 0 disturbed block 1")
	}
}

func TestOutOfRange(t *testing.T) {
	d, _, _ := newTestDevice(t, testConfig())
	if _, err := d.Read(d.Capacity()-1, make([]byte, 2)); !errors.Is(err, ErrOutOfRange) {
		t.Error("read past end accepted")
	}
	if _, err := d.Program(-1, []byte{0}); !errors.Is(err, ErrOutOfRange) {
		t.Error("negative address accepted")
	}
	if _, err := d.Erase(16); !errors.Is(err, ErrOutOfRange) {
		t.Error("bad block erase accepted")
	}
	if err := d.EraseAsync(-1); !errors.Is(err, ErrOutOfRange) {
		t.Error("bad block async erase accepted")
	}
}

func TestProgramMayNotSpanBanks(t *testing.T) {
	d, _, _ := newTestDevice(t, testConfig())
	bankBoundary := int64(8 * 4096)
	if _, err := d.Program(bankBoundary-2, []byte{0, 0, 0, 0}); err == nil {
		t.Fatal("cross-bank program accepted")
	}
}

func TestReadSpanningBanks(t *testing.T) {
	d, _, _ := newTestDevice(t, testConfig())
	boundary := int64(8 * 4096)
	if _, err := d.Program(boundary-2, []byte{1, 2}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Program(boundary, []byte{3, 4}); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if _, err := d.Read(boundary-2, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, []byte{1, 2, 3, 4}) {
		t.Fatalf("cross-bank read %v", buf)
	}
}

func TestLatencyWriteSlowerThanRead(t *testing.T) {
	d, _, _ := newTestDevice(t, testConfig())
	n := 1024
	rd, err := d.Read(0, make([]byte, n))
	if err != nil {
		t.Fatal(err)
	}
	wr, err := d.Program(0, make([]byte, n))
	if err != nil {
		t.Fatal(err)
	}
	if ratio := float64(wr) / float64(rd); ratio < 20 {
		t.Errorf("program/read latency ratio %.1f, want ~two orders of magnitude", ratio)
	}
}

func TestClockAdvancesOnSyncOps(t *testing.T) {
	d, clock, _ := newTestDevice(t, testConfig())
	before := clock.Now()
	lat, err := d.Read(0, make([]byte, 512))
	if err != nil {
		t.Fatal(err)
	}
	if clock.Now().Sub(before) != lat {
		t.Fatal("clock advance != reported read latency")
	}
	before = clock.Now()
	lat, err = d.Erase(0)
	if err != nil {
		t.Fatal(err)
	}
	if clock.Now().Sub(before) != lat {
		t.Fatal("clock advance != reported erase latency")
	}
}

func TestAsyncEraseDoesNotAdvanceClockButOccupiesBank(t *testing.T) {
	d, clock, _ := newTestDevice(t, testConfig())
	before := clock.Now()
	if err := d.EraseAsync(0); err != nil {
		t.Fatal(err)
	}
	if clock.Now() != before {
		t.Fatal("async erase advanced the clock")
	}
	if d.BankBusyUntil(0) <= before {
		t.Fatal("async erase did not occupy the bank")
	}
	// A read on the busy bank stalls...
	lat0, err := d.Read(0, make([]byte, 1))
	if err != nil {
		t.Fatal(err)
	}
	eraseDur := sim.Duration(device.IntelFlash.EraseLatencyNs)
	if lat0 < eraseDur {
		t.Fatalf("read on erasing bank took %v, want >= erase %v", lat0, eraseDur)
	}
}

func TestBankingIsolatesReads(t *testing.T) {
	d, _, _ := newTestDevice(t, testConfig())
	if err := d.EraseAsync(0); err != nil { // bank 0 busy
		t.Fatal(err)
	}
	// Read on bank 1 proceeds at device speed.
	lat, err := d.Read(int64(8*4096), make([]byte, 64))
	if err != nil {
		t.Fatal(err)
	}
	unloaded := sim.Duration(device.IntelFlash.ReadLatencyNs(64))
	if lat != unloaded {
		t.Fatalf("read on idle bank took %v, want unloaded %v", lat, unloaded)
	}
}

func TestAsyncProgramQueuesBehindErase(t *testing.T) {
	d, clock, _ := newTestDevice(t, testConfig())
	if err := d.EraseAsync(0); err != nil {
		t.Fatal(err)
	}
	busyAfterErase := d.BankBusyUntil(0)
	if err := d.ProgramAsync(4096, []byte{0xAA}); err != nil { // block 1, same bank
		t.Fatal(err)
	}
	if d.BankBusyUntil(0) <= busyAfterErase {
		t.Fatal("async program did not extend bank occupancy")
	}
	if clock.Now() != 0 {
		t.Fatal("async ops advanced the clock")
	}
	if d.Peek(4096) != 0xAA {
		t.Fatal("async program data not applied")
	}
}

func TestEnduranceWearOut(t *testing.T) {
	cfg := testConfig()
	cfg.Params.EnduranceCycles = 5
	d, _, _ := newTestDevice(t, cfg)
	for i := 0; i < 5; i++ {
		if _, err := d.Erase(3); err != nil {
			t.Fatalf("erase %d failed: %v", i, err)
		}
	}
	if !d.WornOut(3) {
		t.Fatal("block not marked worn after guaranteed cycles")
	}
	if _, err := d.Erase(3); !errors.Is(err, ErrWornOut) {
		t.Fatalf("erase past endurance: %v, want ErrWornOut", err)
	}
	if d.EraseCount(3) != 5 {
		t.Fatalf("erase count %d, want 5", d.EraseCount(3))
	}
	if d.WornOut(2) {
		t.Fatal("wear leaked to another block")
	}
	if s := d.Stats(); s.WornOutBlocks != 1 {
		t.Fatalf("stats report %d worn blocks, want 1", s.WornOutBlocks)
	}
}

func TestUnlimitedEnduranceWhenZero(t *testing.T) {
	cfg := testConfig()
	cfg.Params.EnduranceCycles = 0
	d, _, _ := newTestDevice(t, cfg)
	for i := 0; i < 100; i++ {
		if _, err := d.Erase(0); err != nil {
			t.Fatal(err)
		}
	}
	if d.WornOut(0) {
		t.Fatal("zero endurance should mean unlimited")
	}
}

func TestStatsAccounting(t *testing.T) {
	d, _, _ := newTestDevice(t, testConfig())
	if _, err := d.Program(0, make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Read(0, make([]byte, 40)); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Erase(1); err != nil {
		t.Fatal(err)
	}
	s := d.Stats()
	if s.Programs != 1 || s.BytesProgrammed != 100 {
		t.Errorf("program stats %+v", s)
	}
	if s.Reads != 1 || s.BytesRead != 40 {
		t.Errorf("read stats %+v", s)
	}
	if s.Erases != 1 || s.MaxEraseCount != 1 {
		t.Errorf("erase stats %+v", s)
	}
	if s.EraseCountCoV <= 0 {
		t.Error("one erased block among many should give positive CoV")
	}
}

func TestEnergyCharged(t *testing.T) {
	d, _, meter := newTestDevice(t, testConfig())
	if _, err := d.Program(0, make([]byte, 4096)); err != nil {
		t.Fatal(err)
	}
	if meter.Category("flash") <= 0 {
		t.Fatal("program charged no energy")
	}
	before := meter.Total()
	d.ChargeIdle()
	if meter.Total() < before {
		t.Fatal("idle charge decreased meter")
	}
}

func TestEraseCountsCopy(t *testing.T) {
	d, _, _ := newTestDevice(t, testConfig())
	if _, err := d.Erase(0); err != nil {
		t.Fatal(err)
	}
	counts := d.EraseCounts()
	counts[0] = 99
	if d.EraseCount(0) != 1 {
		t.Fatal("EraseCounts returned a live reference")
	}
}

func spareConfig() Config {
	cfg := testConfig()
	cfg.SpareUnitBytes = 1024
	cfg.SpareBytes = 32
	return cfg
}

func TestSpareConfigValidation(t *testing.T) {
	bad := testConfig()
	bad.SpareBytes = 16
	bad.SpareUnitBytes = 3000 // does not divide block size
	if err := bad.Validate(); err == nil {
		t.Error("bad spare unit accepted")
	}
}

func TestSpareDisabledByDefault(t *testing.T) {
	d, _, _ := newTestDevice(t, testConfig())
	if d.SpareUnits() != 0 {
		t.Fatal("spare units on spare-less device")
	}
	if _, err := d.ReadSpare(0, make([]byte, 4)); err == nil {
		t.Fatal("spare read on spare-less device accepted")
	}
	if d.PeekSpare(0) != nil {
		t.Fatal("PeekSpare on spare-less device")
	}
}

func TestSpareProgramReadRoundTrip(t *testing.T) {
	d, _, _ := newTestDevice(t, spareConfig())
	if d.SpareUnits() != d.Capacity()/1024 {
		t.Fatalf("spare units %d", d.SpareUnits())
	}
	rec := []byte("page-metadata-record")
	if _, err := d.ProgramSpare(7, rec); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(rec))
	if _, err := d.ReadSpare(7, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, rec) {
		t.Fatalf("spare round trip %q", buf)
	}
	// Unwritten spare reads erased.
	if _, err := d.ReadSpare(8, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 0xFF {
		t.Fatal("fresh spare not erased")
	}
}

func TestSpareBitRules(t *testing.T) {
	d, _, _ := newTestDevice(t, spareConfig())
	if _, err := d.ProgramSpare(0, []byte{0x0F}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.ProgramSpare(0, []byte{0xF0}); !errors.Is(err, ErrOverwrite) {
		t.Fatalf("spare overwrite: %v", err)
	}
}

func TestSpareErasedWithBlock(t *testing.T) {
	d, _, _ := newTestDevice(t, spareConfig())
	// Block 0 covers spare units 0..3 (4096/1024); block 1 starts at 4.
	if _, err := d.ProgramSpare(2, []byte{0}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.ProgramSpare(4, []byte{0}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Erase(0); err != nil {
		t.Fatal(err)
	}
	if d.PeekSpare(2)[0] != 0xFF {
		t.Fatal("spare not erased with its block")
	}
	if d.PeekSpare(4)[0] != 0 {
		t.Fatal("erase disturbed another block's spare")
	}
}

func TestSpareOutOfRange(t *testing.T) {
	d, _, _ := newTestDevice(t, spareConfig())
	if _, err := d.ReadSpare(d.SpareUnits(), make([]byte, 1)); !errors.Is(err, ErrOutOfRange) {
		t.Error("spare read past end accepted")
	}
	if _, err := d.ProgramSpare(0, make([]byte, 64)); !errors.Is(err, ErrOutOfRange) {
		t.Error("oversized spare write accepted")
	}
}

// Property: any sequence of erase+program operations, read back, matches a
// plain map model of the same bytes.
func TestReadYourWritesProperty(t *testing.T) {
	type op struct {
		Block uint8
		Off   uint16
		Val   byte
	}
	cfg := testConfig()
	f := func(ops []op) bool {
		clock := sim.NewClock()
		d, err := New(cfg, clock, sim.NewEnergyMeter())
		if err != nil {
			return false
		}
		model := make(map[int64]byte)
		for _, o := range ops {
			block := int(o.Block) % d.NumBlocks()
			addr := d.BlockAddr(block) + int64(o.Off)%int64(cfg.BlockBytes)
			// Erase-then-program to sidestep the overwrite rule; the model
			// must reflect the erase too.
			if _, err := d.Erase(block); err != nil {
				return false
			}
			start := d.BlockAddr(block)
			for a := range model {
				if a >= start && a < start+int64(cfg.BlockBytes) {
					delete(model, a)
				}
			}
			if _, err := d.Program(addr, []byte{o.Val}); err != nil {
				return false
			}
			model[addr] = o.Val
		}
		buf := make([]byte, 1)
		for a, want := range model {
			if _, err := d.Read(a, buf); err != nil {
				return false
			}
			if buf[0] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
