package flash

import (
	"fmt"
	"sort"

	"ssmobile/internal/obs"
	"ssmobile/internal/sim"
)

// Wear attribution and burn-rate telemetry.
//
// The device already counts programs and erases; this file answers two
// further questions the endurance arguments of the paper turn on:
//
//   - WHY: every program and erase is charged to the observer's active
//     obs.Cause, so write amplification decomposes into host writes,
//     sync-forced flushes, cleaner traffic, idle cleaning, recovery and
//     metadata instead of one opaque total;
//   - HOW FAST: bounded virtual-time ring samplers (obs.RateSampler)
//     turn the cumulative totals into windowed rates — the burn rate the
//     device-health report divides into the remaining endurance budget.
//
// Everything here is pure observation: no clock advances, no behavior
// changes, and registration happens in a fixed order so metric dumps
// stay byte-identical across runs.

// HealthWindow is the trailing virtual-time window the burn-rate gauges
// (erase_rate_per_s, program_bytes_rate_per_s) are computed over.
const HealthWindow = sim.Minute

// rateSamplerCap bounds the burn-rate rings. Sized generously relative
// to destructive ops per window so the windowed rate stays exact; a full
// ring can only under-report (see obs.RateSampler).
const rateSamplerCap = 512

// wearBucketBounds are the erase-count histogram bounds: cumulative
// "blocks with erase count <= bound" per bank, plus a +Inf bucket. The
// coarse power-of-four ladder keeps the series count small while still
// resolving the hot-block tail against the 100k-cycle endurance limit.
var wearBucketBounds = []int64{0, 1, 4, 16, 64, 256, 1024, 4096, 16384, 65536}

// WearBucketLabels returns the bucket "le" label values in order,
// ending with "+Inf"; ssmtrace renders heatmap columns from them.
func WearBucketLabels() []string {
	out := make([]string, 0, len(wearBucketBounds)+1)
	for _, b := range wearBucketBounds {
		out = append(out, fmt.Sprint(b))
	}
	return append(out, "+Inf")
}

// initWear builds the cause-labelled counters, wear gauges and rate
// samplers. Called once from New; o may be nil (standalone counters,
// no exported gauges — exactly how the other device metrics degrade).
func (d *Device) initWear(o *obs.Observer) {
	dev := d.cfg.MeterCategory
	d.causeProg = make(map[obs.Cause]*obs.Counter, len(obs.Causes))
	d.causeErase = make(map[obs.Cause]*obs.Counter, len(obs.Causes))
	// Canonical cause order so registration — and with it exposition and
	// snapshot layout — is deterministic.
	for _, c := range obs.Causes {
		lbl := obs.Labels{"layer": "flash", "device": dev, "cause": string(c)}
		d.causeProg[c] = o.Counter("flash_bytes_programmed_total", lbl)
		d.causeErase[c] = o.Counter("erases_total", lbl)
	}
	d.eraseRate = obs.NewRateSampler(rateSamplerCap, HealthWindow)
	d.progRate = obs.NewRateSampler(rateSamplerCap, HealthWindow)

	if !o.Exports() {
		// No registry: none of the read-through gauges below could ever
		// be collected, and building them (a hundred-plus label sets and
		// closures per device) is pure construction cost. The counters
		// and samplers above still work standalone, so nothing the
		// device itself reports is lost.
		return
	}
	base := obs.Labels{"layer": "flash", "device": dev}
	wearGauges := func(bank string, counts func() []int64) {
		for _, stat := range []string{"max", "mean", "p99"} {
			stat := stat
			o.GaugeFunc("wear_erase_count", obs.Labels{
				"layer": "flash", "device": dev, "bank": bank, "stat": stat,
			}, func() float64 {
				max, mean, p99 := wearStats(counts())
				switch stat {
				case "max":
					return float64(max)
				case "mean":
					return mean
				default:
					return p99
				}
			})
		}
	}
	wearGauges("all", func() []int64 { return d.eraseCount })
	for b := 0; b < d.cfg.Banks; b++ {
		b := b
		wearGauges(fmt.Sprint(b), func() []int64 { return d.bankEraseCounts(b) })
	}
	for b := 0; b < d.cfg.Banks; b++ {
		b := b
		for i, le := range WearBucketLabels() {
			i := i
			o.GaugeFunc("wear_blocks_le", obs.Labels{
				"layer": "flash", "device": dev, "bank": fmt.Sprint(b), "le": le,
			}, func() float64 {
				bound := int64(1<<62 - 1)
				if i < len(wearBucketBounds) {
					bound = wearBucketBounds[i]
				}
				n := 0
				for _, c := range d.bankEraseCounts(b) {
					if c <= bound {
						n++
					}
				}
				return float64(n)
			})
		}
	}
	o.GaugeFunc("wear_blocks", base, func() float64 { return float64(d.NumBlocks()) })
	o.GaugeFunc("wear_endurance_cycles", base, func() float64 { return float64(d.cfg.Params.EnduranceCycles) })
	o.GaugeFunc("wear_erase_cycles", base, func() float64 {
		var sum int64
		for _, c := range d.eraseCount {
			sum += c
		}
		return float64(sum)
	})
	o.GaugeFunc("erase_rate_per_s", base, func() float64 { return d.eraseRate.Rate(d.clock.Now()) })
	o.GaugeFunc("program_bytes_rate_per_s", base, func() float64 { return d.progRate.Rate(d.clock.Now()) })
}

// chargeProgram attributes n programmed bytes to the active cause and
// samples the programmed-bytes burn rate. Runs on every program, after
// the completion counters — a cut operation is charged to no cause,
// exactly as it reaches no completion counter.
func (d *Device) chargeProgram(n int64) {
	c, ok := d.causeProg[d.obs.Cause()]
	if !ok {
		c = d.causeProg[obs.CauseHostWrite]
	}
	c.Add(n)
	d.progRate.Observe(d.clock.Now(), d.bytesProg.Value())
}

// chargeErase attributes one erase to the active cause and samples the
// erase burn rate.
func (d *Device) chargeErase() {
	c, ok := d.causeErase[d.obs.Cause()]
	if !ok {
		c = d.causeErase[obs.CauseHostWrite]
	}
	c.Inc()
	d.eraseRate.Observe(d.clock.Now(), d.erases.Value())
}

// bankEraseCounts returns the live per-block erase counts of one bank
// (a view, not a copy — callers must not mutate it).
func (d *Device) bankEraseCounts(bank int) []int64 {
	lo := bank * d.cfg.BlocksPerBank
	return d.eraseCount[lo : lo+d.cfg.BlocksPerBank]
}

// wearStats reports max, mean and nearest-rank p99 of a count slice.
func wearStats(counts []int64) (max int64, mean, p99 float64) {
	if len(counts) == 0 {
		return 0, 0, 0
	}
	var sum int64
	sorted := make([]int64, len(counts))
	copy(sorted, counts)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	for _, c := range sorted {
		sum += c
	}
	max = sorted[len(sorted)-1]
	mean = float64(sum) / float64(len(sorted))
	p99 = float64(sorted[(len(sorted)-1)*99/100])
	return max, mean, p99
}

// CauseBytesProgrammed reports this instance's programmed bytes charged
// to cause c (spare programs included, like Stats().BytesProgrammed).
func (d *Device) CauseBytesProgrammed(c obs.Cause) int64 {
	return d.causeProg[c].Value()
}

// CauseErases reports this instance's erases charged to cause c.
func (d *Device) CauseErases(c obs.Cause) int64 {
	return d.causeErase[c].Value()
}

// EraseRate reports the device's windowed erase burn rate (erases per
// virtual second over the trailing HealthWindow) as of now.
func (d *Device) EraseRate() float64 {
	return d.eraseRate.Rate(d.clock.Now())
}
