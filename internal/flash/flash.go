// Package flash simulates a direct-mapped flash memory device of the kind
// the paper expects to replace disks in mobile computers.
//
// The model captures every property the paper's operating-system arguments
// rest on:
//
//   - byte-granularity random reads at near-DRAM speed;
//   - programming (writing) roughly two orders of magnitude slower than
//     reading, and only able to clear bits (1→0) — a region must be erased
//     back to all-ones before it can be rewritten;
//   - erasure in fixed-size blocks, slow, with a limited per-block
//     endurance (the guaranteed 100,000 cycles), after which the block
//     wears out;
//   - organisation into independent banks: an erase or program occupies
//     its bank, and reads to a busy bank stall until the bank is free,
//     while reads to other banks proceed at full speed (the paper's
//     motivation for partitioning flash into banks).
//
// Programs and erases can be issued synchronously (the caller's virtual
// time advances past the operation) or asynchronously (the operation
// occupies the bank in the background and only delays later operations
// that touch the same bank), which is how a write-back daemon hides flash
// write latency behind foreground reads.
package flash

import (
	"errors"
	"fmt"

	"ssmobile/internal/device"
	"ssmobile/internal/obs"
	"ssmobile/internal/sim"
)

// Sentinel errors.
var (
	// ErrOutOfRange reports an access beyond the end of the device.
	ErrOutOfRange = errors.New("flash: address out of range")
	// ErrOverwrite reports a program that would need to set a 0 bit back
	// to 1, which only an erase can do.
	ErrOverwrite = errors.New("flash: program would set bits without erase")
	// ErrWornOut reports an erase on a block past its endurance limit.
	ErrWornOut = errors.New("flash: block worn out")
)

// Config fixes the geometry and part parameters of a simulated device.
type Config struct {
	// Banks is the number of independently accessible banks. The device
	// capacity is Banks × BlocksPerBank × BlockBytes.
	Banks int
	// BlocksPerBank is the number of erase blocks in each bank.
	BlocksPerBank int
	// BlockBytes is the size of the erase unit.
	BlockBytes int
	// Params supplies latency, energy and endurance figures; typically
	// device.IntelFlash or device.SunDiskFlash.
	Params device.Params
	// MeterCategory is the energy-meter category charged; defaults to
	// "flash".
	MeterCategory string
	// SpareUnitBytes and SpareBytes describe the out-of-band spare area:
	// every SpareUnitBytes of main storage carries SpareBytes of spare,
	// programmed with the same bit rules and erased together with its
	// unit's block. Translation layers persist their page metadata there
	// so the mapping can be rebuilt by scanning after a power loss. Zero
	// SpareBytes disables the spare area.
	SpareUnitBytes int
	SpareBytes     int
	// Obs receives the device's metrics and op spans; nil falls back to
	// obs.Default() (which may itself be nil — telemetry off).
	Obs *obs.Observer
	// Injector, when non-nil, is consulted before every destructive
	// operation and may cut power before, during, or after it (see
	// fault.go). Nil disables fault injection entirely.
	Injector Injector
}

// Validate checks the configuration for internal consistency.
func (c Config) Validate() error {
	if c.Banks <= 0 || c.BlocksPerBank <= 0 || c.BlockBytes <= 0 {
		return fmt.Errorf("flash: non-positive geometry %d×%d×%d", c.Banks, c.BlocksPerBank, c.BlockBytes)
	}
	if c.Params.Class != device.Flash {
		return fmt.Errorf("flash: params %q are %v, not flash", c.Params.Name, c.Params.Class)
	}
	if c.SpareBytes > 0 {
		if c.SpareUnitBytes <= 0 || c.BlockBytes%c.SpareUnitBytes != 0 {
			return fmt.Errorf("flash: spare unit %d must divide block size %d", c.SpareUnitBytes, c.BlockBytes)
		}
	}
	return nil
}

// Capacity reports the device capacity in bytes.
func (c Config) Capacity() int64 {
	return int64(c.Banks) * int64(c.BlocksPerBank) * int64(c.BlockBytes)
}

// Stats aggregates the operation counts an experiment reads after a run.
type Stats struct {
	Reads, Programs, Erases      int64
	BytesRead, BytesProgrammed   int64
	ReadStallNs                  int64 // time reads spent waiting on busy banks
	WornOutBlocks                int
	MaxEraseCount, TotalEraseOps int64
	EraseCountCoV                float64
}

// Device is one simulated flash part. It is not safe for concurrent use;
// the simulation is single-threaded by design.
type Device struct {
	cfg   Config
	clock *sim.Clock
	meter *sim.EnergyMeter
	obs   *obs.Observer

	data       []byte
	spare      []byte // OOB area, SpareBytes per SpareUnitBytes of main
	eraseCount []int64
	wornOut    []bool
	busyUntil  []sim.Time // per bank
	eraseUntil []sim.Time // per bank: end of the last async erase's busy window

	destructiveOps int64 // programs + spare programs + erases issued
	lost           bool  // dead from an injected power cut until Restore

	reads, programs, erases *obs.Counter
	bytesRead, bytesProg    *obs.Counter
	readStallNs             *obs.Counter
	lastIdleCharge          sim.Time

	// Wear attribution (see wear.go): every program and erase is also
	// charged to the observer's active obs.Cause, and bounded ring
	// samplers turn the cumulative totals into windowed burn rates.
	causeProg  map[obs.Cause]*obs.Counter
	causeErase map[obs.Cause]*obs.Counter
	eraseRate  *obs.RateSampler
	progRate   *obs.RateSampler
}

// New builds a device with every block in the erased (all 0xFF) state.
func New(cfg Config, clock *sim.Clock, meter *sim.EnergyMeter) (*Device, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.MeterCategory == "" {
		cfg.MeterCategory = "flash"
	}
	o := obs.Or(cfg.Obs)
	lbl := func(op string) obs.Labels {
		return obs.Labels{"layer": "flash", "device": cfg.MeterCategory, "op": op}
	}
	d := &Device{
		cfg:         cfg,
		clock:       clock,
		meter:       meter,
		obs:         o,
		data:        make([]byte, cfg.Capacity()),
		eraseCount:  make([]int64, cfg.Banks*cfg.BlocksPerBank),
		wornOut:     make([]bool, cfg.Banks*cfg.BlocksPerBank),
		busyUntil:   make([]sim.Time, cfg.Banks),
		eraseUntil:  make([]sim.Time, cfg.Banks),
		reads:       o.Counter("ops_total", lbl("read")),
		programs:    o.Counter("ops_total", lbl("program")),
		erases:      o.Counter("ops_total", lbl("erase")),
		bytesRead:   o.Counter("bytes_total", lbl("read")),
		bytesProg:   o.Counter("bytes_total", lbl("program")),
		readStallNs: o.Counter("stall_ns_total", lbl("read")),
	}
	for i := range d.data {
		d.data[i] = 0xFF
	}
	if cfg.SpareBytes > 0 {
		d.spare = make([]byte, cfg.Capacity()/int64(cfg.SpareUnitBytes)*int64(cfg.SpareBytes))
		for i := range d.spare {
			d.spare[i] = 0xFF
		}
	}
	d.initWear(o)
	return d, nil
}

// Config returns the device configuration.
func (d *Device) Config() Config { return d.cfg }

// Meter returns the energy meter the device charges, so layers above can
// attribute span energy without threading the meter separately.
func (d *Device) Meter() *sim.EnergyMeter { return d.meter }

// Capacity reports the device capacity in bytes.
func (d *Device) Capacity() int64 { return d.cfg.Capacity() }

// NumBlocks reports the total number of erase blocks.
func (d *Device) NumBlocks() int { return d.cfg.Banks * d.cfg.BlocksPerBank }

// BlockBytes reports the erase-block size.
func (d *Device) BlockBytes() int { return d.cfg.BlockBytes }

// Banks reports the bank count.
func (d *Device) Banks() int { return d.cfg.Banks }

// BlockOf reports the erase block containing the byte address.
func (d *Device) BlockOf(addr int64) int { return int(addr / int64(d.cfg.BlockBytes)) }

// BankOf reports the bank containing the erase block.
func (d *Device) BankOf(block int) int { return block / d.cfg.BlocksPerBank }

// BlockAddr reports the first byte address of an erase block.
func (d *Device) BlockAddr(block int) int64 { return int64(block) * int64(d.cfg.BlockBytes) }

func (d *Device) checkRange(addr int64, n int) error {
	if addr < 0 || n < 0 || addr+int64(n) > d.Capacity() {
		return fmt.Errorf("%w: [%d,%d) of %d", ErrOutOfRange, addr, addr+int64(n), d.Capacity())
	}
	return nil
}

// activePower reports the whole-part active draw in milliwatts.
func (d *Device) activePower() float64 {
	return d.cfg.Params.ActiveMilliwattsPerMB * float64(d.Capacity()) / (1 << 20)
}

// waitBank advances past any in-progress operation on the bank and reports
// how long the caller stalled. The part of the stall owed to a pending
// background erase is recorded as its own erase_stall span with the
// cleaning stage: EraseAsync pushed the erase cost off the cleaner's
// clock, and this is the moment — possibly inside an innocent read or
// program — where a foreground operation finally pays it.
func (d *Device) waitBank(bank int) sim.Duration {
	now := d.clock.Now()
	if d.busyUntil[bank] <= now {
		return 0
	}
	stall := d.busyUntil[bank].Sub(now)
	if eu := d.eraseUntil[bank]; eu > now {
		if eu > d.busyUntil[bank] {
			eu = d.busyUntil[bank]
		}
		sp := d.obs.StageSpan(d.clock, d.meter, "flash", "erase_stall", obs.StageClean)
		d.clock.AdvanceTo(eu)
		sp.End(0, nil)
	}
	d.clock.AdvanceTo(d.busyUntil[bank])
	return stall
}

// occupy queues dur of work on the bank: it starts when the bank frees up
// (or now, if idle) and extends the bank's busy window by dur.
func (d *Device) occupy(bank int, dur sim.Duration) {
	start := d.clock.Now()
	if d.busyUntil[bank] > start {
		start = d.busyUntil[bank]
	}
	d.busyUntil[bank] = start.Add(dur)
}

// BankBusyUntil reports when the bank becomes free; in the past means idle.
func (d *Device) BankBusyUntil(bank int) sim.Time { return d.busyUntil[bank] }

// Read copies len(buf) bytes starting at addr into buf, advancing the
// clock past any bank stalls and the transfer itself. It returns the total
// latency charged.
func (d *Device) Read(addr int64, buf []byte) (lat sim.Duration, err error) {
	sp := d.obs.StageSpan(d.clock, d.meter, "flash", "read", obs.StageFlash)
	n0 := int64(len(buf))
	defer func() { sp.End(n0, err) }()
	if d.lost {
		return 0, ErrPowerCut
	}
	if err := d.checkRange(addr, len(buf)); err != nil {
		return 0, err
	}
	// One host read is one op however many banks it crosses; only the
	// byte accounting is per segment.
	d.reads.Inc()
	var total sim.Duration
	// Process the range bank by bank so stalls charge only where due.
	for len(buf) > 0 {
		bank := d.BankOf(d.BlockOf(addr))
		bankEnd := int64(bank+1) * int64(d.cfg.BlocksPerBank) * int64(d.cfg.BlockBytes)
		n := len(buf)
		if int64(n) > bankEnd-addr {
			n = int(bankEnd - addr)
		}
		stall := d.waitBank(bank)
		d.readStallNs.Add(int64(stall))
		dur := sim.Duration(d.cfg.Params.ReadLatencyNs(n))
		d.clock.Advance(dur)
		d.meter.Charge(d.cfg.MeterCategory, sim.EnergyFor(d.activePower(), dur))
		copy(buf[:n], d.data[addr:addr+int64(n)])
		total += stall + dur
		addr += int64(n)
		buf = buf[n:]
		d.bytesRead.Add(int64(n))
	}
	return total, nil
}

// Peek returns the byte at addr without charging latency; tests and
// integrity checks use it.
func (d *Device) Peek(addr int64) byte { return d.data[addr] }

// SpareUnits reports the number of spare-area units (0 when disabled).
func (d *Device) SpareUnits() int64 {
	if d.cfg.SpareBytes == 0 {
		return 0
	}
	return d.Capacity() / int64(d.cfg.SpareUnitBytes)
}

// SpareBytes reports the spare size per unit.
func (d *Device) SpareBytes() int { return d.cfg.SpareBytes }

func (d *Device) checkSpare(unit int64) error {
	if d.cfg.SpareBytes == 0 {
		return fmt.Errorf("flash: device has no spare area")
	}
	if unit < 0 || unit >= d.SpareUnits() {
		return fmt.Errorf("%w: spare unit %d of %d", ErrOutOfRange, unit, d.SpareUnits())
	}
	return nil
}

// ReadSpare copies the unit's spare area into buf (at most SpareBytes),
// charging the read like any other access on the unit's bank.
func (d *Device) ReadSpare(unit int64, buf []byte) (lat sim.Duration, err error) {
	sp := d.obs.StageSpan(d.clock, d.meter, "flash", "read_spare", obs.StageFlash)
	defer func() { sp.End(int64(len(buf)), err) }()
	if d.lost {
		return 0, ErrPowerCut
	}
	if err := d.checkSpare(unit); err != nil {
		return 0, err
	}
	if len(buf) > d.cfg.SpareBytes {
		buf = buf[:d.cfg.SpareBytes]
	}
	bank := d.BankOf(d.BlockOf(unit * int64(d.cfg.SpareUnitBytes)))
	stall := d.waitBank(bank)
	d.readStallNs.Add(int64(stall))
	dur := sim.Duration(d.cfg.Params.ReadLatencyNs(len(buf)))
	d.clock.Advance(dur)
	d.meter.Charge(d.cfg.MeterCategory, sim.EnergyFor(d.activePower(), dur))
	copy(buf, d.spare[unit*int64(d.cfg.SpareBytes):])
	d.reads.Inc()
	d.bytesRead.Add(int64(len(buf)))
	return stall + dur, nil
}

// ProgramSpare writes p into the unit's spare area under the usual
// bit-clearing rule, synchronously.
func (d *Device) ProgramSpare(unit int64, p []byte) (lat sim.Duration, err error) {
	sp := d.obs.StageSpan(d.clock, d.meter, "flash", "program_spare", obs.StageFlash)
	defer func() { sp.End(int64(len(p)), err) }()
	if d.lost {
		return 0, ErrPowerCut
	}
	if err := d.checkSpare(unit); err != nil {
		return 0, err
	}
	if len(p) > d.cfg.SpareBytes {
		return 0, fmt.Errorf("%w: spare write of %d exceeds %d", ErrOutOfRange, len(p), d.cfg.SpareBytes)
	}
	base := unit * int64(d.cfg.SpareBytes)
	for i, b := range p {
		old := d.spare[base+int64(i)]
		if ^old&b != 0 {
			return 0, fmt.Errorf("%w: spare unit %d byte %d old %02x new %02x", ErrOverwrite, unit, i, old, b)
		}
	}
	switch d.consultInjector(OpProgramSpare, unit, len(p)) {
	case CutBefore:
		d.lost = true
		return 0, ErrPowerCut
	case CutDuring:
		tearProgram(d.spare[base:base+int64(len(p))], p)
		d.lost = true
		return 0, ErrPowerCut
	case CutAfter:
		copy(d.spare[base:], p)
		d.lost = true
		return 0, ErrPowerCut
	}
	bank := d.BankOf(d.BlockOf(unit * int64(d.cfg.SpareUnitBytes)))
	stall := d.waitBank(bank)
	copy(d.spare[base:], p)
	dur := sim.Duration(d.cfg.Params.WriteLatencyNs(len(p)))
	d.clock.Advance(dur)
	d.meter.Charge(d.cfg.MeterCategory, sim.EnergyFor(d.activePower(), dur))
	d.programs.Inc()
	d.bytesProg.Add(int64(len(p)))
	d.chargeProgram(int64(len(p)))
	return stall + dur, nil
}

// PeekSpare returns the unit's spare contents without charging latency.
func (d *Device) PeekSpare(unit int64) []byte {
	if d.cfg.SpareBytes == 0 {
		return nil
	}
	out := make([]byte, d.cfg.SpareBytes)
	copy(out, d.spare[unit*int64(d.cfg.SpareBytes):])
	return out
}

// program validates and applies a program operation, returning its duration.
func (d *Device) program(addr int64, p []byte) (sim.Duration, error) {
	if d.lost {
		return 0, ErrPowerCut
	}
	if err := d.checkRange(addr, len(p)); err != nil {
		return 0, err
	}
	// Flash programming can only clear bits. Enforce it bit-exactly.
	for i, b := range p {
		old := d.data[addr+int64(i)]
		if ^old&b != 0 {
			return 0, fmt.Errorf("%w: addr %d old %02x new %02x", ErrOverwrite, addr+int64(i), old, b)
		}
	}
	switch d.consultInjector(OpProgram, addr, len(p)) {
	case CutBefore:
		d.lost = true
		return 0, ErrPowerCut
	case CutDuring:
		tearProgram(d.data[addr:addr+int64(len(p))], p)
		d.lost = true
		return 0, ErrPowerCut
	case CutAfter:
		copy(d.data[addr:], p)
		d.lost = true
		return 0, ErrPowerCut
	}
	copy(d.data[addr:], p)
	d.programs.Inc()
	d.bytesProg.Add(int64(len(p)))
	d.chargeProgram(int64(len(p)))
	dur := sim.Duration(d.cfg.Params.WriteLatencyNs(len(p)))
	d.meter.Charge(d.cfg.MeterCategory, sim.EnergyFor(d.activePower(), dur))
	return dur, nil
}

// Program writes p at addr synchronously: the caller's time advances past
// any bank stall plus the program time. The target region must be erased
// (or the write must only clear bits). Programs may not span banks.
func (d *Device) Program(addr int64, p []byte) (lat sim.Duration, err error) {
	sp := d.obs.StageSpan(d.clock, d.meter, "flash", "program", obs.StageFlash)
	defer func() { sp.End(int64(len(p)), err) }()
	if err := d.checkSameBank(addr, len(p)); err != nil {
		return 0, err
	}
	bank := d.BankOf(d.BlockOf(addr))
	stall := d.waitBank(bank)
	dur, err := d.program(addr, p)
	if err != nil {
		return stall, err
	}
	d.clock.Advance(dur)
	return stall + dur, nil
}

// ProgramAsync posts a program: the data is applied immediately in the
// model, the bank is occupied for the stall-plus-program window, and the
// caller's clock does not advance. Later operations on the same bank wait.
func (d *Device) ProgramAsync(addr int64, p []byte) (err error) {
	sp := d.obs.StageSpan(d.clock, d.meter, "flash", "program_async", obs.StageFlash)
	defer func() { sp.End(int64(len(p)), err) }()
	if err := d.checkSameBank(addr, len(p)); err != nil {
		return err
	}
	bank := d.BankOf(d.BlockOf(addr))
	dur, err := d.program(addr, p)
	if err != nil {
		return err
	}
	d.occupy(bank, dur)
	return nil
}

func (d *Device) checkSameBank(addr int64, n int) error {
	if err := d.checkRange(addr, n); err != nil {
		return err
	}
	if n == 0 {
		return nil
	}
	first := d.BankOf(d.BlockOf(addr))
	last := d.BankOf(d.BlockOf(addr + int64(n) - 1))
	if first != last {
		return fmt.Errorf("flash: program spans banks %d..%d", first, last)
	}
	return nil
}

// erase validates and applies an erase, returning its duration.
func (d *Device) erase(block int) (sim.Duration, error) {
	if d.lost {
		return 0, ErrPowerCut
	}
	if block < 0 || block >= d.NumBlocks() {
		return 0, fmt.Errorf("%w: block %d of %d", ErrOutOfRange, block, d.NumBlocks())
	}
	if d.wornOut[block] {
		return 0, fmt.Errorf("%w: block %d after %d cycles", ErrWornOut, block, d.eraseCount[block])
	}
	switch d.consultInjector(OpErase, int64(block), d.cfg.BlockBytes) {
	case CutBefore:
		d.lost = true
		return 0, ErrPowerCut
	case CutDuring:
		// The erase pulses partly accrued: the cycle counts against the
		// block's endurance, but the array is left trembling and must be
		// erased again before it can hold data.
		d.noteEraseCycle(block)
		d.trembleBlock(block)
		d.lost = true
		return 0, ErrPowerCut
	case CutAfter:
		d.noteEraseCycle(block)
		d.applyErase(block)
		d.lost = true
		return 0, ErrPowerCut
	}
	d.noteEraseCycle(block)
	d.applyErase(block)
	d.erases.Inc()
	d.chargeErase()
	dur := sim.Duration(d.cfg.Params.EraseLatencyNs)
	d.meter.Charge(d.cfg.MeterCategory, sim.EnergyFor(d.activePower(), dur))
	return dur, nil
}

// noteEraseCycle counts one erase cycle against the block's endurance.
func (d *Device) noteEraseCycle(block int) {
	d.eraseCount[block]++
	if lim := d.cfg.Params.EnduranceCycles; lim > 0 && d.eraseCount[block] >= lim {
		// The guaranteed cycle count is exhausted; this erase still
		// succeeds, further ones fail.
		d.wornOut[block] = true
	}
}

// applyErase resets the block's data and spare bytes to the erased state.
func (d *Device) applyErase(block int) {
	start := d.BlockAddr(block)
	for i := int64(0); i < int64(d.cfg.BlockBytes); i++ {
		d.data[start+i] = 0xFF
	}
	if d.cfg.SpareBytes > 0 {
		unitsPerBlock := int64(d.cfg.BlockBytes / d.cfg.SpareUnitBytes)
		sb := int64(d.cfg.SpareBytes)
		first := start / int64(d.cfg.SpareUnitBytes) * sb
		for i := int64(0); i < unitsPerBlock*sb; i++ {
			d.spare[first+i] = 0xFF
		}
	}
}

// Erase erases a block synchronously, advancing the caller's clock.
func (d *Device) Erase(block int) (lat sim.Duration, err error) {
	sp := d.obs.StageSpan(d.clock, d.meter, "flash", "erase", obs.StageFlash)
	defer func() { sp.End(int64(d.cfg.BlockBytes), err) }()
	if block < 0 || block >= d.NumBlocks() {
		return 0, fmt.Errorf("%w: block %d of %d", ErrOutOfRange, block, d.NumBlocks())
	}
	bank := d.BankOf(block)
	stall := d.waitBank(bank)
	dur, err := d.erase(block)
	if err != nil {
		return stall, err
	}
	d.clock.Advance(dur)
	return stall + dur, nil
}

// EraseAsync starts an erase in the background: the block's contents are
// reset in the model, the bank is occupied until the erase would finish,
// and the caller's clock does not advance. This is how a cleaner erases
// reclaimed blocks without stalling the foreground.
func (d *Device) EraseAsync(block int) (err error) {
	sp := d.obs.StageSpan(d.clock, d.meter, "flash", "erase_async", obs.StageFlash)
	defer func() { sp.End(int64(d.cfg.BlockBytes), err) }()
	if block < 0 || block >= d.NumBlocks() {
		return fmt.Errorf("%w: block %d of %d", ErrOutOfRange, block, d.NumBlocks())
	}
	bank := d.BankOf(block)
	dur, err := d.erase(block)
	if err != nil {
		return err
	}
	d.occupy(bank, dur)
	// Everything queued on the bank up to this point must drain before
	// the erase completes, so the whole busy window is erase-attributable
	// for stall accounting (see waitBank).
	d.eraseUntil[bank] = d.busyUntil[bank]
	return nil
}

// WornOut reports whether the block has exceeded its endurance.
func (d *Device) WornOut(block int) bool { return d.wornOut[block] }

// EraseCount reports the number of erases the block has sustained.
func (d *Device) EraseCount(block int) int64 { return d.eraseCount[block] }

// EraseCounts returns a copy of the per-block erase counters.
func (d *Device) EraseCounts() []int64 {
	out := make([]int64, len(d.eraseCount))
	copy(out, d.eraseCount)
	return out
}

// ChargeIdle charges standby power for the span since the last idle charge
// (or the epoch). The driving layer calls it at the end of a run.
func (d *Device) ChargeIdle() {
	now := d.clock.Now()
	if now <= d.lastIdleCharge {
		return
	}
	idle := d.cfg.Params.IdleMilliwattsPerMB * float64(d.Capacity()) / (1 << 20)
	d.meter.Charge(d.cfg.MeterCategory+"-idle", sim.EnergyFor(idle, now.Sub(d.lastIdleCharge)))
	d.lastIdleCharge = now
}

// Stats summarises the device counters.
func (d *Device) Stats() Stats {
	worn := 0
	for _, w := range d.wornOut {
		if w {
			worn++
		}
	}
	return Stats{
		Reads:           d.reads.Value(),
		Programs:        d.programs.Value(),
		Erases:          d.erases.Value(),
		BytesRead:       d.bytesRead.Value(),
		BytesProgrammed: d.bytesProg.Value(),
		ReadStallNs:     d.readStallNs.Value(),
		WornOutBlocks:   worn,
		MaxEraseCount:   sim.MaxInt64(d.eraseCount),
		TotalEraseOps:   d.erases.Value(),
		EraseCountCoV:   sim.CoV(d.eraseCount),
	}
}
