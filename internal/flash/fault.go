package flash

// Power-cut fault injection.
//
// The paper's whole stability argument rests on surviving abrupt power
// loss: battery-backed DRAM is the only volatile-looking store, and the
// flash mapping is rebuilt by scanning out-of-band records after a cut.
// Quiescent-point power failures (dram.Device.PowerFail between
// operations) exercise the easy half of that story. The hard half is a
// cut that lands MID-OPERATION — between a page's data program and its
// out-of-band record, halfway through a program pulse, or in the middle
// of a block erase. The Injector hook models exactly those windows.
//
// An injector is consulted once per destructive device operation
// (Program, ProgramSpare, Erase — sync or async), in issue order, with a
// running zero-based op index. It decides the op's fate:
//
//   - CutBefore: power dies before any bit changes;
//   - CutDuring: the op is torn — a program leaves a deterministic prefix
//     of its bits cleared, an erase leaves the block in a partially
//     erased "trembling" state that reads back mixed data and must be
//     re-erased before it can hold data again;
//   - CutAfter: the op's array effect completes, then power dies — for a
//     page program this is precisely the window where the data landed but
//     the OOB record never will.
//
// After any cut the device refuses every further operation with
// ErrPowerCut until Restore is called, the way a real part is simply off
// until power returns. Crash-point enumeration (internal/crashtest) runs
// a workload once to count destructive ops, then replays it once per
// (op index, fate), recovers, and checks invariants.
//
// With a nil Injector none of this machinery runs and the device is
// byte-for-byte the deterministic device the experiments depend on.

import "errors"

// ErrPowerCut reports an operation on a device whose power was cut by a
// fault injection (or that was the victim op itself). The device stays
// dead until Restore.
var ErrPowerCut = errors.New("flash: power cut")

// OpKind identifies one destructive operation class for the injector.
type OpKind int

// Destructive op kinds, in the order the constants are worth reading:
// main-array programs, spare-area programs, block erases.
const (
	OpProgram OpKind = iota
	OpProgramSpare
	OpErase
)

var opKindNames = [...]string{"program", "program-spare", "erase"}

// String names the op kind.
func (k OpKind) String() string {
	if int(k) < len(opKindNames) {
		return opKindNames[k]
	}
	return "op?"
}

// Outcome is the injector's decision for one destructive op.
type Outcome int

// Outcomes. The zero value lets the op run normally.
const (
	// Run executes the op normally.
	Run Outcome = iota
	// CutBefore cuts power before the op changes any bit.
	CutBefore
	// CutDuring cuts power mid-op: programs are torn (a deterministic
	// prefix of the bits to be cleared is cleared), erases leave the
	// block trembling (partially erased, reads back mixed data).
	CutDuring
	// CutAfter lets the op's array effect complete, then cuts power —
	// for a data program, the window before its OOB record.
	CutAfter
)

// Injector decides the fate of destructive flash operations. index is
// the zero-based running count of destructive ops issued to the device
// (validation failures do not consume an index); addr is the byte
// address of a program, the spare-unit index of a spare program, or the
// block number of an erase; n is the payload length in bytes (the block
// size for erases). Implementations must be deterministic.
type Injector interface {
	Fault(index int64, kind OpKind, addr int64, n int) Outcome
}

// InjectorFunc adapts a function to the Injector interface.
type InjectorFunc func(index int64, kind OpKind, addr int64, n int) Outcome

// Fault calls f.
func (f InjectorFunc) Fault(index int64, kind OpKind, addr int64, n int) Outcome {
	return f(index, kind, addr, n)
}

// CutAt is the canonical enumeration injector: it applies Fate to the
// destructive op with the given Index and lets every other op run. The
// zero Index with Fate CutBefore cuts power before the first destructive
// op ever lands.
type CutAt struct {
	Index int64
	Fate  Outcome
}

// Fault implements Injector.
func (c *CutAt) Fault(index int64, kind OpKind, addr int64, n int) Outcome {
	if index == c.Index {
		return c.Fate
	}
	return Run
}

// DestructiveOps reports how many destructive operations (programs,
// spare programs, erases) have been issued to the device, including the
// one a cut landed on. Crash-point enumeration runs the workload once
// uncut to learn the op count, then sweeps the cut index over it.
func (d *Device) DestructiveOps() int64 { return d.destructiveOps }

// Lost reports whether the device is currently dead from an injected
// power cut.
func (d *Device) Lost() bool { return d.lost }

// Restore returns the device to service after a power cut, as when power
// comes back and the system reboots. Bank busy windows are cleared — an
// interrupted operation is simply over — but the array contents are
// whatever the cut left behind: torn pages keep their partial prefix and
// trembling blocks keep their mixed data until something re-erases them.
func (d *Device) Restore() {
	d.lost = false
	for i := range d.busyUntil {
		d.busyUntil[i] = 0
	}
}

// SetInjector replaces the device's fault injector (nil disarms it).
// Recovery harnesses disarm the injector before remounting, so the
// recovery path itself runs on healthy hardware.
func (d *Device) SetInjector(inj Injector) { d.cfg.Injector = inj }

// consultInjector assigns the next destructive-op index and asks the
// injector (if any) for the op's fate.
func (d *Device) consultInjector(kind OpKind, addr int64, n int) Outcome {
	idx := d.destructiveOps
	d.destructiveOps++
	if d.cfg.Injector == nil {
		return Run
	}
	return d.cfg.Injector.Fault(idx, kind, addr, n)
}

// tearProgram applies the deterministic torn prefix of programming p into
// dst: the first three quarters of the payload's bytes land in full, and
// in the byte at the tear point only the high-nibble bits are cleared, so
// the byte holds a value that is neither the old nor the intended one.
// The tear point falls late in the payload on purpose: for an OOB record
// it lands past the header fields and inside the tag, the worst torn
// record — one whose magic, sequence and page number all read back
// intact — which recovery must still reject.
func tearProgram(dst, p []byte) {
	k := 3 * len(p) / 4
	for i := 0; i < k; i++ {
		dst[i] &= p[i]
	}
	if k < len(p) {
		dst[k] &= p[k] | 0x0F
	}
}

// trembleByte is the deterministic partial-erase pattern: alternating
// bytes have alternating bit sets pulled toward the erased state, so the
// block reads back a mix of stale data and half-erased garbage.
func trembleByte(old byte, i int64) byte {
	if i%2 == 0 {
		return old | 0xAA
	}
	return old | 0x55
}

// trembleBlock applies the interrupted-erase state to a block: every
// data and spare byte has a deterministic subset of its bits pulled to 1.
// The block is not erased — it must be erased again before it can be
// programmed — and any out-of-band records it held are corrupted.
func (d *Device) trembleBlock(block int) {
	start := d.BlockAddr(block)
	for i := int64(0); i < int64(d.cfg.BlockBytes); i++ {
		d.data[start+i] = trembleByte(d.data[start+i], i)
	}
	if d.cfg.SpareBytes > 0 {
		sb := int64(d.cfg.SpareBytes)
		first := start / int64(d.cfg.SpareUnitBytes) * sb
		n := int64(d.cfg.BlockBytes/d.cfg.SpareUnitBytes) * sb
		for i := int64(0); i < n; i++ {
			d.spare[first+i] = trembleByte(d.spare[first+i], i)
		}
	}
}
