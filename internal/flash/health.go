package flash

import (
	"fmt"
	"io"
	"sort"
	"strconv"

	"ssmobile/internal/obs"
)

// SMART-style device health, computed from a metrics snapshot.
//
// Everything here is a pure function of an obs.Snapshot, so the live
// admin surface (/debug/health snapshots its registry) and the offline
// `ssmtrace health` (reads a -metrics JSON dump) share one code path and
// cannot disagree: the lifetime estimate a server reports is exactly
// reconstructible from its metrics dump.

// HealthReport is the device-health summary served at /debug/health and
// printed by `ssmtrace health`. Field order is the JSON layout; keep it
// stable — golden tests pin the rendered bytes.
type HealthReport struct {
	Device          string `json:"device"`
	Blocks          int64  `json:"blocks"`
	EnduranceCycles int64  `json:"endurance_cycles"`

	// Endurance budget: cycles burned across all blocks (cut-interrupted
	// erases included — they age the array without completing) against
	// the device-wide budget Blocks × EnduranceCycles.
	EraseCyclesTotal     int64   `json:"erase_cycles_total"`
	RemainingEraseBudget int64   `json:"remaining_erase_budget"`
	LifeUsedPct          float64 `json:"life_used_pct"`

	// Wear spread across blocks; WearSpread is max − mean, the headroom
	// a wear-leveling policy could still reclaim.
	MaxEraseCount  float64 `json:"max_erase_count"`
	MeanEraseCount float64 `json:"mean_erase_count"`
	P99EraseCount  float64 `json:"p99_erase_count"`
	WearSpread     float64 `json:"wear_spread"`

	// Free-block margin from the translation layer (-1 when no FTL
	// metrics are present in the snapshot, e.g. a bare device).
	FreeBlocks      float64 `json:"free_blocks"`
	FreeBlockMargin float64 `json:"free_block_margin"`

	// Windowed burn rates (trailing HealthWindow of virtual time) and the
	// lifetime left at that rate; 0 seconds means no erases in the window
	// and renders as "unbounded".
	EraseRatePerSec        float64 `json:"erase_rate_per_sec"`
	ProgramBytesRatePerSec float64 `json:"program_bytes_rate_per_sec"`
	LifetimeSeconds        float64 `json:"lifetime_seconds_at_current_rate"`
	Lifetime               string  `json:"lifetime_at_current_rate"`

	// Write amplification from the translation layer, overall and by
	// cause (zero values when no FTL metrics are present).
	WriteAmplification float64       `json:"write_amplification"`
	WriteAmpByCause    []CauseAmount `json:"write_amplification_by_cause"`
}

// CauseAmount is one cause's share in a by-cause breakdown, in the
// canonical obs.Causes order.
type CauseAmount struct {
	Cause string  `json:"cause"`
	Value float64 `json:"value"`
}

// fmtLifetime renders a lifetime in seconds of virtual time humanely.
func fmtLifetime(s float64) string {
	const day = 86400.0
	switch {
	case s <= 0:
		return "unbounded"
	case s >= 365.25*day:
		return fmt.Sprintf("%.1fy", s/(365.25*day))
	case s >= day:
		return fmt.Sprintf("%.1fd", s/day)
	case s >= 3600:
		return fmt.Sprintf("%.1fh", s/3600)
	default:
		return fmt.Sprintf("%.0fs", s)
	}
}

func findGauge(snap obs.Snapshot, name string, labels obs.Labels) (float64, bool) {
	m, ok := snap.Find(name, labels)
	if !ok {
		return 0, false
	}
	return m.Value, true
}

// HealthFromSnapshot computes the device-health report for the named
// device (the flash MeterCategory, "flash" in the standard stack) from a
// metrics snapshot. It fails if the snapshot predates wear telemetry.
func HealthFromSnapshot(snap obs.Snapshot, device string) (HealthReport, error) {
	dev := obs.Labels{"layer": "flash", "device": device}
	blocks, ok := findGauge(snap, "wear_blocks", dev)
	if !ok {
		return HealthReport{}, fmt.Errorf("flash: snapshot has no wear telemetry for device %q (wear_blocks missing)", device)
	}
	endurance, _ := findGauge(snap, "wear_endurance_cycles", dev)
	cycles, _ := findGauge(snap, "wear_erase_cycles", dev)
	all := func(stat string) float64 {
		v, _ := findGauge(snap, "wear_erase_count", obs.Labels{
			"layer": "flash", "device": device, "bank": "all", "stat": stat,
		})
		return v
	}
	eraseRate, _ := findGauge(snap, "erase_rate_per_s", dev)
	progRate, _ := findGauge(snap, "program_bytes_rate_per_s", dev)

	r := HealthReport{
		Device:                 device,
		Blocks:                 int64(blocks),
		EnduranceCycles:        int64(endurance),
		EraseCyclesTotal:       int64(cycles),
		MaxEraseCount:          all("max"),
		MeanEraseCount:         all("mean"),
		P99EraseCount:          all("p99"),
		EraseRatePerSec:        eraseRate,
		ProgramBytesRatePerSec: progRate,
	}
	r.WearSpread = r.MaxEraseCount - r.MeanEraseCount
	budget := r.Blocks * r.EnduranceCycles
	if budget > 0 {
		r.RemainingEraseBudget = budget - r.EraseCyclesTotal
		if r.RemainingEraseBudget < 0 {
			r.RemainingEraseBudget = 0
		}
		r.LifeUsedPct = 100 * float64(r.EraseCyclesTotal) / float64(budget)
	}
	if r.EraseRatePerSec > 0 {
		r.LifetimeSeconds = float64(r.RemainingEraseBudget) / r.EraseRatePerSec
	}
	r.Lifetime = fmtLifetime(r.LifetimeSeconds)

	// The translation-layer gauges carry an engine label now that more
	// than one backend exists; probe each known label set (including the
	// pre-engine legacy form, so old snapshots still render) and use the
	// first that has data.
	engineLbls := []obs.Labels{
		{"layer": "ftl", "engine": "ftl"},
		{"layer": "ftl"},
		{"layer": "pdl", "engine": "pdl"},
	}
	r.FreeBlocks, r.FreeBlockMargin = -1, -1
	for _, lbl := range engineLbls {
		free, freeOK := findGauge(snap, "free_blocks", lbl)
		wa, waOK := findGauge(snap, "write_amplification", lbl)
		if !freeOK && !waOK {
			continue
		}
		if freeOK {
			r.FreeBlocks = free
			if blocks > 0 {
				r.FreeBlockMargin = free / blocks
			}
		}
		if waOK {
			r.WriteAmplification = wa
			for _, c := range obs.Causes {
				cl := obs.Labels{"cause": string(c)}
				for k, v := range lbl {
					cl[k] = v
				}
				v, _ := findGauge(snap, "write_amplification", cl)
				r.WriteAmpByCause = append(r.WriteAmpByCause, CauseAmount{Cause: string(c), Value: v})
			}
		}
		break
	}
	return r, nil
}

// Fprint renders the report as the human-readable `ssmtrace health` text.
func (r HealthReport) Fprint(w io.Writer) {
	fmt.Fprintf(w, "device %q: %d blocks, endurance %d cycles/block\n", r.Device, r.Blocks, r.EnduranceCycles)
	fmt.Fprintf(w, "  life used        %.3f%% (%d of %d cycles)\n",
		r.LifeUsedPct, r.EraseCyclesTotal, r.Blocks*r.EnduranceCycles)
	fmt.Fprintf(w, "  wear             max %.0f  mean %.2f  p99 %.0f  spread %.2f\n",
		r.MaxEraseCount, r.MeanEraseCount, r.P99EraseCount, r.WearSpread)
	if r.FreeBlocks >= 0 {
		fmt.Fprintf(w, "  free blocks      %.0f (margin %.1f%%)\n", r.FreeBlocks, 100*r.FreeBlockMargin)
	}
	fmt.Fprintf(w, "  burn rate        %.4f erases/s, %.0f program B/s (trailing window)\n",
		r.EraseRatePerSec, r.ProgramBytesRatePerSec)
	fmt.Fprintf(w, "  lifetime at rate %s (%.0f s of budget %d)\n", r.Lifetime, r.LifetimeSeconds, r.RemainingEraseBudget)
	if len(r.WriteAmpByCause) > 0 {
		fmt.Fprintf(w, "  write amp        %.3f total\n", r.WriteAmplification)
		for _, c := range r.WriteAmpByCause {
			fmt.Fprintf(w, "    %-18s %.3f\n", c.Cause, c.Value)
		}
	}
}

// heatShades maps a cell's share of its bank's blocks to a character;
// index 0 is "empty bucket".
var heatShades = []byte(" .:-=+*#%@")

// RenderWearHeatmap renders the per-bank erase-count distribution from a
// metrics snapshot as a text heatmap: one row per bank, one column per
// histogram bucket, cell shade by the fraction of the bank's blocks in
// that bucket, with the bank's max/mean/p99 at the right. Output is a
// pure function of the snapshot, so goldens can pin it byte-exactly.
func RenderWearHeatmap(w io.Writer, snap obs.Snapshot, device string) error {
	banks := map[int]bool{}
	for _, m := range snap.Metrics {
		if m.Name != "wear_blocks_le" || m.Labels["device"] != device {
			continue
		}
		if b, err := strconv.Atoi(m.Labels["bank"]); err == nil {
			banks[b] = true
		}
	}
	if len(banks) == 0 {
		return fmt.Errorf("flash: snapshot has no wear_blocks_le series for device %q", device)
	}
	order := make([]int, 0, len(banks))
	for b := range banks {
		order = append(order, b)
	}
	sort.Ints(order)
	labels := WearBucketLabels()

	blocks, _ := findGauge(snap, "wear_blocks", obs.Labels{"layer": "flash", "device": device})
	fmt.Fprintf(w, "wear heatmap: device %q, %d banks, %.0f blocks\n", device, len(order), blocks)
	fmt.Fprintf(w, "  cells: blocks per erase-count bucket; shade = share of the bank's blocks\n")
	header := "  bank |"
	for _, le := range labels {
		header += fmt.Sprintf(" %6s", le)
	}
	header += " |    max    mean    p99 | heat"
	fmt.Fprintln(w, header)
	for _, b := range order {
		bank := fmt.Sprint(b)
		// Cumulative-to-bin: blocks in bucket i = le_i count − le_{i−1} count.
		prev := 0.0
		bins := make([]float64, len(labels))
		total := 0.0
		for i, le := range labels {
			cum, ok := findGauge(snap, "wear_blocks_le", obs.Labels{
				"layer": "flash", "device": device, "bank": bank, "le": le,
			})
			if !ok {
				return fmt.Errorf("flash: device %q bank %s missing bucket le=%s", device, bank, le)
			}
			bins[i] = cum - prev
			prev = cum
			total += bins[i]
		}
		row := fmt.Sprintf("  %4s |", bank)
		heat := make([]byte, len(bins))
		for i, n := range bins {
			row += fmt.Sprintf(" %6.0f", n)
			shade := 0
			if n > 0 && total > 0 {
				shade = 1 + int(n/total*float64(len(heatShades)-2))
				if shade >= len(heatShades) {
					shade = len(heatShades) - 1
				}
			}
			heat[i] = heatShades[shade]
		}
		stat := func(s string) float64 {
			v, _ := findGauge(snap, "wear_erase_count", obs.Labels{
				"layer": "flash", "device": device, "bank": bank, "stat": s,
			})
			return v
		}
		row += fmt.Sprintf(" | %6.0f %7.2f %6.0f | %s", stat("max"), stat("mean"), stat("p99"), heat)
		fmt.Fprintln(w, row)
	}
	return nil
}
