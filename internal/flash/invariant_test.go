package flash

import (
	"errors"
	"math/rand"
	"testing"

	"ssmobile/internal/device"
)

// The destructive-op ledger invariant: DestructiveOps counts issued
// programs, spare programs and erases, and every issued op either
// completes (reaching the Stats counters) or is consumed by a power cut.
// Crash-point enumeration (internal/crashtest) depends on this ledger to
// sweep cut indexes, so it gets its own regression here: under any valid
// op sequence, issued == completed + cut.

func invariantConfig() Config {
	return Config{
		Banks:          2,
		BlocksPerBank:  8,
		BlockBytes:     4096,
		Params:         device.IntelFlash,
		SpareUnitBytes: 1024,
		SpareBytes:     16,
	}
}

// randomOps drives nOps random valid destructive operations against d,
// tracking programmability per block so no op fails validation (failed
// validations consume no op index, so they would not perturb the ledger
// anyway — the point is to exercise the counting paths, not the errors).
// It returns early if the device dies from an injected cut.
func randomOps(t *testing.T, d *Device, rng *rand.Rand, nOps int) (cut bool) {
	t.Helper()
	cfg := invariantConfig()
	unitsPerBlock := cfg.BlockBytes / cfg.SpareUnitBytes
	writeOff := make([]int, d.NumBlocks())     // next free data offset per block
	spareUsed := make([][]bool, d.NumBlocks()) // spare unit programmed?
	for i := range spareUsed {
		spareUsed[i] = make([]bool, unitsPerBlock)
	}
	payload := []byte("wear-ledger-probe")
	for i := 0; i < nOps; i++ {
		var err error
		switch op := rng.Intn(4); {
		case op <= 1: // data program into a block with room
			b := rng.Intn(d.NumBlocks())
			for writeOff[b]+len(payload) > cfg.BlockBytes {
				b = (b + 1) % d.NumBlocks()
			}
			addr := d.BlockAddr(b) + int64(writeOff[b])
			_, err = d.Program(addr, payload)
			if err == nil {
				writeOff[b] += len(payload)
			}
		case op == 2: // spare program into a fresh unit
			b := rng.Intn(d.NumBlocks())
			unit := -1
			for u, used := range spareUsed[b] {
				if !used {
					unit = b*unitsPerBlock + u
					spareUsed[b][u] = true
					break
				}
			}
			if unit < 0 { // block's spare full: erase it instead
				_, err = d.Erase(b)
				if err == nil {
					writeOff[b] = 0
					spareUsed[b] = make([]bool, unitsPerBlock)
				}
				break
			}
			_, err = d.ProgramSpare(int64(unit), []byte{0x42, 0x00})
		default: // erase
			b := rng.Intn(d.NumBlocks())
			_, err = d.Erase(b)
			if err == nil {
				writeOff[b] = 0
				spareUsed[b] = make([]bool, unitsPerBlock)
			}
		}
		if errors.Is(err, ErrPowerCut) {
			return true
		}
		if err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	return false
}

func checkLedger(t *testing.T, d *Device, cuts int64) {
	t.Helper()
	st := d.Stats()
	completed := st.Programs + st.Erases // Programs includes spare programs
	if got := d.DestructiveOps(); got != completed+cuts {
		t.Fatalf("DestructiveOps = %d, want completed %d + cuts %d = %d",
			got, completed, cuts, completed+cuts)
	}
}

// TestDestructiveOpsEqualsCompletedOps: with no injector, every issued
// op completes, so the ledger equals programs + spare programs + erases
// at every step of a randomized workload.
func TestDestructiveOpsEqualsCompletedOps(t *testing.T) {
	for _, seed := range []int64{1993, 1, 42} {
		rng := rand.New(rand.NewSource(seed))
		d, _, _ := newTestDevice(t, invariantConfig())
		for round := 0; round < 20; round++ {
			if randomOps(t, d, rng, 25) {
				t.Fatal("cut without an injector")
			}
			checkLedger(t, d, 0)
		}
	}
}

// TestDestructiveOpsCountsCutOps: a cut op consumes an op index without
// reaching the completion counters, so after k cuts the ledger runs
// exactly k ahead of programs + erases — including across Restore and
// further traffic.
func TestDestructiveOpsCountsCutOps(t *testing.T) {
	for _, fate := range []Outcome{CutBefore, CutDuring, CutAfter} {
		for _, seed := range []int64{1993, 1, 42} {
			rng := rand.New(rand.NewSource(seed))
			cfg := invariantConfig()
			inj := &CutAt{Index: 10 + rng.Int63n(30), Fate: fate}
			cfg.Injector = inj
			d, _, _ := newTestDevice(t, cfg)
			if !randomOps(t, d, rng, 200) {
				t.Fatalf("fate %v seed %d: injector at %d never fired", fate, seed, inj.Index)
			}
			checkLedger(t, d, 1)

			// Power back on: the interrupted op stays on the ledger, new
			// traffic keeps the invariant with the +1 offset. Erase every
			// block first — a torn program or trembling erase leaves
			// residue that legitimate new programs must not land on.
			d.Restore()
			d.SetInjector(nil)
			for b := 0; b < d.NumBlocks(); b++ {
				if _, err := d.Erase(b); err != nil {
					t.Fatal(err)
				}
			}
			checkLedger(t, d, 1)
			if randomOps(t, d, rng, 100) {
				t.Fatal("cut after injector disarmed")
			}
			checkLedger(t, d, 1)
		}
	}
}
