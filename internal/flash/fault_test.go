package flash

import (
	"bytes"
	"errors"
	"testing"

	"ssmobile/internal/device"
)

// cutInjector configures cfg to cut the destructive op at index with fate.
func cutInjector(cfg Config, index int64, fate Outcome) Config {
	cfg.Injector = &CutAt{Index: index, Fate: fate}
	return cfg
}

func TestCutBeforeProgramLeavesArrayUntouched(t *testing.T) {
	d, _, _ := newTestDevice(t, cutInjector(testConfig(), 0, CutBefore))
	if _, err := d.Program(0, []byte{0x00, 0x00}); !errors.Is(err, ErrPowerCut) {
		t.Fatalf("Program under CutBefore: %v", err)
	}
	if !d.Lost() {
		t.Fatal("device not lost after cut")
	}
	if d.Peek(0) != 0xFF || d.Peek(1) != 0xFF {
		t.Fatal("CutBefore changed the array")
	}
	if st := d.Stats(); st.Programs != 0 || st.BytesProgrammed != 0 {
		t.Fatalf("cut op counted in stats: %+v", st)
	}
}

func TestTornProgramClearsDeterministicPrefix(t *testing.T) {
	d, _, _ := newTestDevice(t, cutInjector(testConfig(), 0, CutDuring))
	p := make([]byte, 8) // all zero: every bit is to be cleared
	if _, err := d.Program(64, p); !errors.Is(err, ErrPowerCut) {
		t.Fatalf("Program under CutDuring: %v", err)
	}
	// Three quarters land in full, the tear-point byte only loses its
	// high nibble, the rest is untouched.
	want := []byte{0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x0F, 0xFF}
	got := make([]byte, 8)
	for i := range got {
		got[i] = d.Peek(64 + int64(i))
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("torn page %x, want %x", got, want)
	}
}

func TestCutAfterProgramAppliesDataButDiesUncounted(t *testing.T) {
	d, _, _ := newTestDevice(t, cutInjector(testConfig(), 0, CutAfter))
	p := []byte("landed")
	if _, err := d.Program(128, p); !errors.Is(err, ErrPowerCut) {
		t.Fatalf("Program under CutAfter: %v", err)
	}
	for i, b := range p {
		if d.Peek(128+int64(i)) != b {
			t.Fatalf("byte %d not applied under CutAfter", i)
		}
	}
	if st := d.Stats(); st.Programs != 0 {
		t.Fatalf("cut op counted as program: %+v", st)
	}
}

func TestTornSpareProgram(t *testing.T) {
	d, _, _ := newTestDevice(t, cutInjector(spareConfig(), 0, CutDuring))
	p := make([]byte, 8)
	if _, err := d.ProgramSpare(3, p); !errors.Is(err, ErrPowerCut) {
		t.Fatalf("ProgramSpare under CutDuring: %v", err)
	}
	got := d.PeekSpare(3)
	want := []byte{0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x0F, 0xFF}
	if !bytes.Equal(got[:8], want) {
		t.Fatalf("torn spare %x, want %x", got[:8], want)
	}
	for _, b := range got[8:] {
		if b != 0xFF {
			t.Fatal("torn spare touched bytes past the payload")
		}
	}
}

func TestDeadDeviceRefusesEverythingUntilRestore(t *testing.T) {
	d, _, _ := newTestDevice(t, cutInjector(spareConfig(), 0, CutBefore))
	if _, err := d.Program(0, []byte{0}); !errors.Is(err, ErrPowerCut) {
		t.Fatalf("victim op: %v", err)
	}
	buf := make([]byte, 4)
	if _, err := d.Read(0, buf); !errors.Is(err, ErrPowerCut) {
		t.Fatalf("Read on dead device: %v", err)
	}
	if _, err := d.ReadSpare(0, buf); !errors.Is(err, ErrPowerCut) {
		t.Fatalf("ReadSpare on dead device: %v", err)
	}
	if _, err := d.Erase(0); !errors.Is(err, ErrPowerCut) {
		t.Fatalf("Erase on dead device: %v", err)
	}
	if err := d.ProgramAsync(0, []byte{0}); !errors.Is(err, ErrPowerCut) {
		t.Fatalf("ProgramAsync on dead device: %v", err)
	}
	d.Restore()
	if d.Lost() {
		t.Fatal("still lost after Restore")
	}
	if _, err := d.Read(0, buf); err != nil {
		t.Fatalf("Read after Restore: %v", err)
	}
}

func TestTremblingEraseMustBeErasedAgain(t *testing.T) {
	d, _, _ := newTestDevice(t, cutInjector(spareConfig(), 1, CutDuring))
	p := make([]byte, 16) // op 0: a normal program so the block holds data
	if _, err := d.Program(0, p); err != nil {
		t.Fatalf("setup program: %v", err)
	}
	if _, err := d.Erase(0); !errors.Is(err, ErrPowerCut) { // op 1: torn erase
		t.Fatalf("Erase under CutDuring: %v", err)
	}
	if d.EraseCount(0) != 1 {
		t.Fatalf("interrupted erase cycle not counted: %d", d.EraseCount(0))
	}
	d.Restore()
	// The block reads back mixed data: neither the old page nor all-0xFF.
	mixed := false
	for i := int64(0); i < 16; i++ {
		if b := d.Peek(i); b != 0xFF && b != p[i] {
			mixed = true
		}
	}
	if !mixed {
		t.Fatal("trembling block reads back clean data")
	}
	// Programming it without a fresh erase violates the bit-clearing rule:
	// the trembling bytes have bits already cleared that a fresh page
	// write would need set.
	probe := bytes.Repeat([]byte{0x55}, 16)
	if _, err := d.Program(0, probe); !errors.Is(err, ErrOverwrite) {
		t.Fatalf("program into trembling block: %v", err)
	}
	// A re-erase restores it to service.
	if _, err := d.Erase(0); err != nil {
		t.Fatalf("re-erase: %v", err)
	}
	for i := int64(0); i < 16; i++ {
		if d.Peek(i) != 0xFF {
			t.Fatal("re-erase left data behind")
		}
	}
	if _, err := d.Program(0, p); err != nil {
		t.Fatalf("program after re-erase: %v", err)
	}
}

func TestCutAfterEraseCompletesTheErase(t *testing.T) {
	d, _, _ := newTestDevice(t, cutInjector(spareConfig(), 1, CutAfter))
	if _, err := d.Program(0, []byte{0x00}); err != nil {
		t.Fatalf("setup program: %v", err)
	}
	if _, err := d.Erase(0); !errors.Is(err, ErrPowerCut) {
		t.Fatalf("Erase under CutAfter: %v", err)
	}
	d.Restore()
	if d.Peek(0) != 0xFF {
		t.Fatal("CutAfter erase did not reset the array")
	}
	if d.EraseCount(0) != 1 {
		t.Fatalf("erase cycle not counted: %d", d.EraseCount(0))
	}
	if st := d.Stats(); st.Erases != 0 {
		t.Fatalf("cut erase counted in stats: %+v", st)
	}
}

func TestDestructiveOpIndexSkipsValidationFailures(t *testing.T) {
	d, _, _ := newTestDevice(t, spareConfig())
	if _, err := d.Program(0, []byte{0x00}); err != nil {
		t.Fatal(err)
	}
	// A rejected overwrite must not consume an op index.
	if _, err := d.Program(0, []byte{0xFF, 0x01}); err == nil {
		t.Fatal("overwrite accepted")
	}
	if _, err := d.ProgramSpare(0, []byte{0x12}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Erase(0); err != nil {
		t.Fatal(err)
	}
	if err := d.ProgramAsync(64, []byte{0x00}); err != nil {
		t.Fatal(err)
	}
	if got := d.DestructiveOps(); got != 4 {
		t.Fatalf("DestructiveOps = %d, want 4", got)
	}
}

func TestEnduranceWearFromInterruptedErases(t *testing.T) {
	cfg := spareConfig()
	cfg.Params = device.IntelFlash
	cfg.Params.EnduranceCycles = 2
	d, _, _ := newTestDevice(t, cfg)
	d.SetInjector(InjectorFunc(func(index int64, kind OpKind, addr int64, n int) Outcome {
		return CutDuring // every erase is interrupted
	}))
	for i := 0; i < 2; i++ {
		if _, err := d.Erase(0); !errors.Is(err, ErrPowerCut) {
			t.Fatalf("erase %d: %v", i, err)
		}
		d.Restore()
	}
	if !d.WornOut(0) {
		t.Fatal("interrupted erase cycles did not wear the block")
	}
}

// Regression: a single host read spanning two banks must count as one
// read op (the tracer records one span), with only the byte accounting
// split per segment.
func TestReadSpanningBanksCountsOneOp(t *testing.T) {
	d, _, _ := newTestDevice(t, testConfig())
	bankBytes := int64(8 * 4096) // BlocksPerBank * BlockBytes
	buf := make([]byte, 128)
	if _, err := d.Read(bankBytes-64, buf); err != nil {
		t.Fatal(err)
	}
	st := d.Stats()
	if st.Reads != 1 {
		t.Fatalf("read spanning two banks counted as %d ops, want 1", st.Reads)
	}
	if st.BytesRead != 128 {
		t.Fatalf("BytesRead = %d, want 128", st.BytesRead)
	}
}
