package trace

import (
	"bytes"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"ssmobile/internal/sim"
)

func TestKindStringRoundTrip(t *testing.T) {
	for _, k := range []Kind{Create, Write, Read, Delete} {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Errorf("round trip of %v failed: %v %v", k, got, err)
		}
	}
	if _, err := ParseKind("bogus"); err == nil {
		t.Error("bogus kind parsed")
	}
}

func TestTraceSerialisationRoundTrip(t *testing.T) {
	orig := &Trace{Ops: []Op{
		{Time: 0, Kind: Create, File: 1, Size: 4096},
		{Time: 100, Kind: Write, File: 1, Offset: 0, Size: 4096},
		{Time: 250, Kind: Read, File: 1, Offset: 1024, Size: 512},
		{Time: 900, Kind: Delete, File: 1},
	}}
	var buf bytes.Buffer
	if _, err := orig.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Ops, orig.Ops) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got.Ops, orig.Ops)
	}
}

func TestReadTraceRejectsGarbage(t *testing.T) {
	if _, err := ReadTrace(bytes.NewBufferString("not a trace line\n")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := ReadTrace(bytes.NewBufferString("100 explode 1 0 0\n")); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestStats(t *testing.T) {
	tr := &Trace{Ops: []Op{
		{Time: 0, Kind: Create, File: 1, Size: 100},
		{Time: 10, Kind: Write, File: 1, Size: 100},
		{Time: 20, Kind: Read, File: 1, Size: 40},
		{Time: 30, Kind: Write, File: 2, Size: 60},
		{Time: 50, Kind: Delete, File: 1},
	}}
	s := tr.Stats()
	if s.Ops != 5 || s.Creates != 1 || s.Writes != 2 || s.Reads != 1 || s.Deletes != 1 {
		t.Fatalf("counts wrong: %+v", s)
	}
	if s.BytesWritten != 160 || s.BytesRead != 40 {
		t.Fatalf("bytes wrong: %+v", s)
	}
	if s.UniqueFiles != 2 {
		t.Fatalf("unique files %d", s.UniqueFiles)
	}
	if s.Duration != 50 {
		t.Fatalf("duration %v", s.Duration)
	}
}

func bakerTestConfig(seed int64) BakerConfig {
	return DefaultBaker(10*sim.Minute, seed)
}

func TestBakerDeterministic(t *testing.T) {
	a, err := GenerateBaker(bakerTestConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateBaker(bakerTestConfig(42))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Ops, b.Ops) {
		t.Fatal("same seed produced different traces")
	}
	c, err := GenerateBaker(bakerTestConfig(43))
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Ops, c.Ops) {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestBakerTimeOrdered(t *testing.T) {
	tr, err := GenerateBaker(bakerTestConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(tr.Ops); i++ {
		if tr.Ops[i].Time < tr.Ops[i-1].Time {
			t.Fatalf("ops out of order at %d: %v after %v", i, tr.Ops[i].Time, tr.Ops[i-1].Time)
		}
	}
}

func TestBakerWellFormed(t *testing.T) {
	tr, err := GenerateBaker(bakerTestConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	created := map[FileID]bool{}
	deleted := map[FileID]bool{}
	for _, op := range tr.Ops {
		switch op.Kind {
		case Create:
			if created[op.File] {
				t.Fatalf("file %d created twice", op.File)
			}
			created[op.File] = true
		case Write, Read:
			if !created[op.File] || deleted[op.File] {
				t.Fatalf("%v on file %d outside its lifetime", op.Kind, op.File)
			}
			if op.Size <= 0 || op.Offset < 0 {
				t.Fatalf("bad op %+v", op)
			}
		case Delete:
			if !created[op.File] || deleted[op.File] {
				t.Fatalf("delete of file %d outside its lifetime", op.File)
			}
			deleted[op.File] = true
		}
	}
}

func TestBakerWorkloadShape(t *testing.T) {
	tr, err := GenerateBaker(DefaultBaker(30*sim.Minute, 7))
	if err != nil {
		t.Fatal(err)
	}
	s := tr.Stats()
	if s.Ops < 10000 {
		t.Fatalf("only %d ops in 30 minutes", s.Ops)
	}
	// The majority of created files must be deleted within the trace
	// (most files die young).
	if frac := float64(s.Deletes) / float64(s.Creates); frac < 0.5 {
		t.Errorf("only %.0f%% of files deleted; workload should kill most files", frac*100)
	}
	// Reads should be a substantial share of operations.
	if frac := float64(s.Reads) / float64(s.Ops); frac < 0.3 {
		t.Errorf("reads only %.0f%% of ops", frac*100)
	}
}

// The calibration target behind experiment E3: a large fraction of written
// bytes belong to files that are deleted within ~30 seconds of the write.
func TestBakerShortLivedBytes(t *testing.T) {
	tr, err := GenerateBaker(DefaultBaker(30*sim.Minute, 11))
	if err != nil {
		t.Fatal(err)
	}
	deleteAt := map[FileID]sim.Time{}
	for _, op := range tr.Ops {
		if op.Kind == Delete {
			deleteAt[op.File] = op.Time
		}
	}
	var total, dead30 int64
	for _, op := range tr.Ops {
		if op.Kind != Write {
			continue
		}
		total += int64(op.Size)
		if dt, ok := deleteAt[op.File]; ok && dt.Sub(op.Time) <= 30*sim.Second {
			dead30 += int64(op.Size)
		}
	}
	frac := float64(dead30) / float64(total)
	if frac < 0.30 || frac > 0.75 {
		t.Errorf("%.0f%% of written bytes die within 30s; calibration window is 30-75%%", frac*100)
	}
}

func TestBakerFileSizes(t *testing.T) {
	tr, err := GenerateBaker(bakerTestConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	var sizes []int
	for _, op := range tr.Ops {
		if op.Kind == Create {
			sizes = append(sizes, op.Size)
		}
	}
	if len(sizes) == 0 {
		t.Fatal("no files created")
	}
	sort.Ints(sizes)
	median := sizes[len(sizes)/2]
	if median < 1024 || median > 16*1024 {
		t.Errorf("median file size %d, want a few KB", median)
	}
	if max := sizes[len(sizes)-1]; max > 256*1024 {
		t.Errorf("file size %d exceeds MaxFileSize", max)
	}
}

func TestBakerValidation(t *testing.T) {
	bad := bakerTestConfig(1)
	bad.ReadFrac = 1.5
	if _, err := GenerateBaker(bad); err == nil {
		t.Error("invalid ReadFrac accepted")
	}
	bad = bakerTestConfig(1)
	bad.Duration = 0
	if _, err := GenerateBaker(bad); err == nil {
		t.Error("zero duration accepted")
	}
}

func TestBlockWorkloadUniform(t *testing.T) {
	tr, err := GenerateBlocks(BlockConfig{Ops: 20000, Blocks: 16, BlockSize: 4096, ReadFrac: 0.25, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Ops) != 20000 {
		t.Fatalf("got %d ops", len(tr.Ops))
	}
	counts := make([]int, 16)
	reads := 0
	for _, op := range tr.Ops {
		b := op.Offset / 4096
		if b < 0 || b >= 16 || op.Offset%4096 != 0 {
			t.Fatalf("bad offset %d", op.Offset)
		}
		counts[b]++
		if op.Kind == Read {
			reads++
		}
	}
	for b, c := range counts {
		if c < 20000/16/2 {
			t.Errorf("block %d drew only %d ops; uniform expected ~%d", b, c, 20000/16)
		}
	}
	if frac := float64(reads) / 20000; frac < 0.2 || frac > 0.3 {
		t.Errorf("read fraction %.2f, want ~0.25", frac)
	}
}

func TestBlockWorkloadSkewed(t *testing.T) {
	tr, err := GenerateBlocks(BlockConfig{Ops: 20000, Blocks: 64, BlockSize: 512, Skew: 1.4, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 64)
	for _, op := range tr.Ops {
		counts[op.Offset/512]++
	}
	if counts[0] <= counts[32]*4 {
		t.Errorf("hot block %d vs mid block %d; want strong skew", counts[0], counts[32])
	}
}

func TestBlockWorkloadValidation(t *testing.T) {
	if _, err := GenerateBlocks(BlockConfig{Ops: 0, Blocks: 1, BlockSize: 1}); err == nil {
		t.Error("zero ops accepted")
	}
	if _, err := GenerateBlocks(BlockConfig{Ops: 1, Blocks: 1, BlockSize: 1, ReadFrac: -1}); err == nil {
		t.Error("negative ReadFrac accepted")
	}
}

// Property: serialisation round-trips arbitrary well-formed ops.
func TestSerialisationProperty(t *testing.T) {
	f := func(times []uint32, kinds []uint8, files []uint16, sizes []uint16) bool {
		n := len(times)
		for _, s := range [][]int{{len(kinds)}, {len(files)}, {len(sizes)}} {
			if s[0] < n {
				n = s[0]
			}
		}
		tr := &Trace{}
		for i := 0; i < n; i++ {
			tr.Ops = append(tr.Ops, Op{
				Time:   sim.Time(times[i]),
				Kind:   Kind(kinds[i] % 4),
				File:   FileID(files[i]),
				Offset: int64(sizes[i]) * 2,
				Size:   int(sizes[i]),
			})
		}
		var buf bytes.Buffer
		if _, err := tr.WriteTo(&buf); err != nil {
			return false
		}
		got, err := ReadTrace(&buf)
		if err != nil {
			return false
		}
		if len(tr.Ops) == 0 {
			return len(got.Ops) == 0
		}
		return reflect.DeepEqual(got.Ops, tr.Ops)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
