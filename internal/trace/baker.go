package trace

import (
	"container/heap"
	"fmt"
	"math"

	"ssmobile/internal/sim"
)

// BakerConfig parameterises the Sprite-like office/engineering workload.
// The defaults (see DefaultBaker) are calibrated to the published
// distributions: small log-normal file sizes, a majority of files
// short-lived, writes concentrated on a hot set. With those defaults a
// 1 MB write buffer and 30-second write-back delay absorb 40-50% of write
// traffic, the figure the paper quotes from Baker et al.
type BakerConfig struct {
	// Duration is the span of activity to generate.
	Duration sim.Duration
	// MeanInterarrival is the exponential mean between operations.
	MeanInterarrival sim.Duration
	// FileSizeMedian and FileSizeSigma parameterise the log-normal file
	// size distribution (sigma is in log space).
	FileSizeMedian int
	FileSizeSigma  float64
	// MaxFileSize truncates the heavy tail so single files cannot exceed
	// the simulated devices.
	MaxFileSize int
	// ShortLivedFrac is the fraction of created files that die young.
	ShortLivedFrac float64
	// ShortLifetimeMean and LongLifetimeMean are exponential means for the
	// two lifetime classes.
	ShortLifetimeMean sim.Duration
	LongLifetimeMean  sim.Duration
	// ReadFrac is the fraction of operations that are reads.
	ReadFrac float64
	// OverwriteFrac is the fraction of non-read operations that rewrite a
	// block of an existing file rather than create a new file.
	OverwriteFrac float64
	// HotSkew is the Zipf exponent used to pick overwrite and read victims
	// among recently written files (larger = hotter hot set).
	HotSkew float64
	// BlockSize is the granularity of overwrite and read operations.
	BlockSize int
	// Seed makes the trace reproducible.
	Seed int64
}

// DefaultBaker returns the calibrated configuration used by the
// experiments, covering the given span.
func DefaultBaker(d sim.Duration, seed int64) BakerConfig {
	return BakerConfig{
		Duration:          d,
		MeanInterarrival:  50 * sim.Millisecond,
		FileSizeMedian:    4 * 1024,
		FileSizeSigma:     1.2,
		MaxFileSize:       256 * 1024,
		ShortLivedFrac:    0.5,
		ShortLifetimeMean: 20 * sim.Second,
		LongLifetimeMean:  2 * sim.Hour,
		ReadFrac:          0.55,
		OverwriteFrac:     0.4,
		HotSkew:           1.3,
		BlockSize:         4 * 1024,
		Seed:              seed,
	}
}

// Validate checks the configuration for usability.
func (c BakerConfig) Validate() error {
	if c.Duration <= 0 || c.MeanInterarrival <= 0 {
		return fmt.Errorf("trace: non-positive duration or interarrival")
	}
	if c.FileSizeMedian <= 0 || c.BlockSize <= 0 {
		return fmt.Errorf("trace: non-positive sizes")
	}
	if c.ShortLivedFrac < 0 || c.ShortLivedFrac > 1 || c.ReadFrac < 0 || c.ReadFrac > 1 ||
		c.OverwriteFrac < 0 || c.OverwriteFrac > 1 {
		return fmt.Errorf("trace: fractions must be in [0,1]")
	}
	return nil
}

// pendingDelete schedules the end of a short- or long-lived file.
type pendingDelete struct {
	at   sim.Time
	file FileID
}

type deleteHeap []pendingDelete

func (h deleteHeap) Len() int           { return len(h) }
func (h deleteHeap) Less(i, j int) bool { return h[i].at < h[j].at }
func (h deleteHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *deleteHeap) Push(x any)        { *h = append(*h, x.(pendingDelete)) }
func (h *deleteHeap) Pop() any {
	old := *h
	n := len(old)
	v := old[n-1]
	*h = old[:n-1]
	return v
}

// liveSet tracks live files in most-recently-written order so victims can
// be Zipf-selected toward the hot end.
type liveSet struct {
	order []FileID       // most recent last
	size  map[FileID]int // live file sizes
	pos   map[FileID]int // index in order
}

func newLiveSet() *liveSet {
	return &liveSet{size: make(map[FileID]int), pos: make(map[FileID]int)}
}

func (s *liveSet) add(f FileID, size int) {
	s.size[f] = size
	s.pos[f] = len(s.order)
	s.order = append(s.order, f)
}

func (s *liveSet) touch(f FileID) {
	i, ok := s.pos[f]
	if !ok || i == len(s.order)-1 {
		return
	}
	// Swap toward the hot end rather than shifting the whole slice; an
	// approximate MRU order is all the selection needs.
	j := len(s.order) - 1
	s.order[i], s.order[j] = s.order[j], s.order[i]
	s.pos[s.order[i]] = i
	s.pos[s.order[j]] = j
}

func (s *liveSet) remove(f FileID) {
	i, ok := s.pos[f]
	if !ok {
		return
	}
	j := len(s.order) - 1
	s.order[i] = s.order[j]
	s.pos[s.order[i]] = i
	s.order = s.order[:j]
	delete(s.pos, f)
	delete(s.size, f)
}

func (s *liveSet) len() int { return len(s.order) }

// pickHot selects a live file, biased toward recently written ones.
func (s *liveSet) pickHot(g *sim.RNG, skew float64) (FileID, int) {
	n := len(s.order)
	// A Zipf draw over recency rank: rank 0 = most recent.
	rank := int(g.Zipf(skew, uint64(n)).Next())
	f := s.order[n-1-rank]
	return f, s.size[f]
}

// GenerateBaker synthesises a trace from the configuration.
func GenerateBaker(cfg BakerConfig) (*Trace, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g := sim.NewRNG(cfg.Seed)
	sizes := g.Fork()
	lifetimes := g.Fork()
	choices := g.Fork()
	victims := g.Fork()

	var t Trace
	live := newLiveSet()
	var deletes deleteHeap
	nextID := FileID(1)
	now := sim.Time(0)
	end := sim.Time(cfg.Duration)

	mu := math.Log(float64(cfg.FileSizeMedian))

	emitDeletesThrough := func(now sim.Time) {
		for deletes.Len() > 0 && deletes[0].at <= now {
			d := heap.Pop(&deletes).(pendingDelete)
			if _, ok := live.pos[d.file]; !ok {
				continue
			}
			live.remove(d.file)
			t.Ops = append(t.Ops, Op{Time: d.at, Kind: Delete, File: d.file})
		}
	}

	for {
		now = now.Add(sim.Duration(choices.Exp(float64(cfg.MeanInterarrival))))
		if now > end {
			break
		}
		emitDeletesThrough(now)

		switch {
		case choices.Float64() < cfg.ReadFrac && live.len() > 0:
			f, size := live.pickHot(victims, cfg.HotSkew)
			n := cfg.BlockSize
			if n > size {
				n = size
			}
			var off int64
			if size > n {
				off = victims.Int63n(int64(size-n)+1) / int64(cfg.BlockSize) * int64(cfg.BlockSize)
			}
			t.Ops = append(t.Ops, Op{Time: now, Kind: Read, File: f, Offset: off, Size: n})

		case choices.Float64() < cfg.OverwriteFrac && live.len() > 0:
			f, size := live.pickHot(victims, cfg.HotSkew)
			n := cfg.BlockSize
			if n > size {
				n = size
			}
			var off int64
			if size > n {
				off = victims.Int63n(int64(size-n)+1) / int64(cfg.BlockSize) * int64(cfg.BlockSize)
			}
			live.touch(f)
			t.Ops = append(t.Ops, Op{Time: now, Kind: Write, File: f, Offset: off, Size: n})

		default:
			size := int(sizes.LogNormal(mu, cfg.FileSizeSigma))
			if size < 1 {
				size = 1
			}
			if cfg.MaxFileSize > 0 && size > cfg.MaxFileSize {
				size = cfg.MaxFileSize
			}
			f := nextID
			nextID++
			live.add(f, size)
			t.Ops = append(t.Ops, Op{Time: now, Kind: Create, File: f, Size: size})
			t.Ops = append(t.Ops, Op{Time: now, Kind: Write, File: f, Offset: 0, Size: size})

			var life sim.Duration
			if lifetimes.Bool(cfg.ShortLivedFrac) {
				life = sim.Duration(lifetimes.Exp(float64(cfg.ShortLifetimeMean)))
			} else {
				life = sim.Duration(lifetimes.Exp(float64(cfg.LongLifetimeMean)))
			}
			heap.Push(&deletes, pendingDelete{at: now.Add(life), file: f})
		}
	}
	emitDeletesThrough(end)
	return &t, nil
}
