// Package trace generates and replays the file-system and block workloads
// that drive every experiment.
//
// The paper's quantitative anchor — "as little as one megabyte of
// battery-backed RAM can reduce write traffic by 40 to 50%" — comes from
// trace-driven simulation of Sprite office/engineering workloads (Baker et
// al., SOSP '91) whose raw traces are not available. Following the
// substitution rule in DESIGN.md, this package synthesises workloads with
// the published structure of those traces:
//
//   - file sizes are small and log-normally distributed (most files a few
//     kilobytes, a heavy tail of large ones);
//   - most new bytes die young: a large fraction of created files are
//     deleted or overwritten within tens of seconds, so data buffered
//     briefly in RAM often never needs to reach stable storage;
//   - writes concentrate on a small hot set of files (Zipf-selected
//     overwrite victims);
//   - reads dominate operation counts.
//
// Traces are deterministic given a seed, can be saved to and loaded from a
// plain text format, and are consumed by the write-buffer, storage-manager
// and whole-system experiments.
package trace

import (
	"bufio"
	"fmt"
	"io"

	"ssmobile/internal/sim"
)

// Kind is the operation type of one trace record.
type Kind int

// Operation kinds.
const (
	// Create announces a new file; the first Write supplies its bytes.
	Create Kind = iota
	// Write stores Size bytes at Offset in File.
	Write
	// Read fetches Size bytes at Offset of File.
	Read
	// Delete removes File; buffered dirty data for it can be dropped.
	Delete
)

var kindNames = [...]string{"create", "write", "read", "delete"}

// String names the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// ParseKind is the inverse of Kind.String.
func ParseKind(s string) (Kind, error) {
	for i, n := range kindNames {
		if n == s {
			return Kind(i), nil
		}
	}
	return 0, fmt.Errorf("trace: unknown kind %q", s)
}

// FileID names a file within a trace.
type FileID uint64

// Op is one trace record.
type Op struct {
	Time   sim.Time
	Kind   Kind
	File   FileID
	Offset int64
	Size   int
}

// Trace is an ordered sequence of operations.
type Trace struct {
	Ops []Op
}

// Stats summarises a trace.
type Stats struct {
	Ops, Creates, Writes, Reads, Deletes int
	BytesWritten, BytesRead              int64
	UniqueFiles                          int
	Duration                             sim.Duration
}

// Stats computes summary statistics.
func (t *Trace) Stats() Stats {
	var s Stats
	files := make(map[FileID]struct{})
	s.Ops = len(t.Ops)
	for _, op := range t.Ops {
		files[op.File] = struct{}{}
		switch op.Kind {
		case Create:
			s.Creates++
		case Write:
			s.Writes++
			s.BytesWritten += int64(op.Size)
		case Read:
			s.Reads++
			s.BytesRead += int64(op.Size)
		case Delete:
			s.Deletes++
		}
	}
	s.UniqueFiles = len(files)
	if n := len(t.Ops); n > 0 {
		s.Duration = t.Ops[n-1].Time.Sub(t.Ops[0].Time)
	}
	return s
}

// WriteTo serialises the trace in the text format, one op per line:
//
//	<time-ns> <kind> <file> <offset> <size>
func (t *Trace) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	for _, op := range t.Ops {
		c, err := fmt.Fprintf(bw, "%d %s %d %d %d\n", int64(op.Time), op.Kind, op.File, op.Offset, op.Size)
		n += int64(c)
		if err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// ReadTrace parses the text format produced by WriteTo.
func ReadTrace(r io.Reader) (*Trace, error) {
	var t Trace
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if text == "" {
			continue
		}
		var ns int64
		var kindStr string
		var file uint64
		var off int64
		var size int
		if _, err := fmt.Sscanf(text, "%d %s %d %d %d", &ns, &kindStr, &file, &off, &size); err != nil {
			return nil, fmt.Errorf("trace: line %d: %v", line, err)
		}
		kind, err := ParseKind(kindStr)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: %v", line, err)
		}
		t.Ops = append(t.Ops, Op{Time: sim.Time(ns), Kind: kind, File: FileID(file), Offset: off, Size: size})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return &t, nil
}
