package trace

import (
	"bytes"
	"reflect"
	"testing"
)

// FuzzReadTrace checks the trace parser never panics on arbitrary input
// and that everything it accepts round-trips through the writer.
func FuzzReadTrace(f *testing.F) {
	f.Add([]byte("100 write 1 0 4096\n200 delete 1 0 0\n"))
	f.Add([]byte(""))
	f.Add([]byte("garbage\n"))
	f.Add([]byte("9223372036854775807 read 18446744073709551615 0 1\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ReadTrace(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if _, err := tr.WriteTo(&out); err != nil {
			t.Fatalf("writer failed on parsed trace: %v", err)
		}
		tr2, err := ReadTrace(&out)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if len(tr.Ops) != len(tr2.Ops) {
			t.Fatalf("round trip changed length %d → %d", len(tr.Ops), len(tr2.Ops))
		}
		if len(tr.Ops) > 0 && !reflect.DeepEqual(tr.Ops, tr2.Ops) {
			t.Fatal("round trip changed ops")
		}
	})
}
