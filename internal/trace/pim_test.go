package trace

import (
	"reflect"
	"testing"

	"ssmobile/internal/sim"
)

func TestPIMDeterministic(t *testing.T) {
	a, err := GeneratePIM(DefaultPIM(4*sim.Hour, 5))
	if err != nil {
		t.Fatal(err)
	}
	b, err := GeneratePIM(DefaultPIM(4*sim.Hour, 5))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Ops, b.Ops) {
		t.Fatal("same seed differs")
	}
}

func TestPIMWellFormed(t *testing.T) {
	tr, err := GeneratePIM(DefaultPIM(8*sim.Hour, 3))
	if err != nil {
		t.Fatal(err)
	}
	created := map[FileID]bool{}
	var last sim.Time
	for _, op := range tr.Ops {
		if op.Time < last {
			t.Fatal("ops out of order")
		}
		last = op.Time
		switch op.Kind {
		case Create:
			if created[op.File] {
				t.Fatalf("file %d created twice", op.File)
			}
			created[op.File] = true
		case Read, Write:
			if !created[op.File] {
				t.Fatalf("%v of uncreated record %d", op.Kind, op.File)
			}
		case Delete:
			t.Fatal("PIM records are never deleted")
		}
	}
}

func TestPIMShape(t *testing.T) {
	tr, err := GeneratePIM(DefaultPIM(8*sim.Hour, 7))
	if err != nil {
		t.Fatal(err)
	}
	s := tr.Stats()
	if s.Creates < 200 {
		t.Fatalf("initial database missing: %d creates", s.Creates)
	}
	if s.Deletes != 0 {
		t.Fatal("PIM workload deleted records")
	}
	// Records are tiny.
	if mean := float64(s.BytesWritten) / float64(s.Writes); mean > 1024 {
		t.Errorf("mean write %f bytes; records should be small", mean)
	}
	// Bursty: the busiest 10%% of 5-minute bins should hold a large share
	// of the post-setup ops.
	bins := map[int64]int{}
	total := 0
	for _, op := range tr.Ops {
		if op.Time == 0 {
			continue
		}
		bins[int64(op.Time)/int64(5*sim.Minute)]++
		total++
	}
	max := 0
	for _, c := range bins {
		if c > max {
			max = c
		}
	}
	if max < total/20 {
		t.Errorf("busiest bin has %d of %d ops; expected bursts", max, total)
	}
}

func TestPIMValidation(t *testing.T) {
	bad := DefaultPIM(sim.Hour, 1)
	bad.ReadFrac = 2
	if _, err := GeneratePIM(bad); err == nil {
		t.Fatal("bad ReadFrac accepted")
	}
	bad = DefaultPIM(0, 1)
	if _, err := GeneratePIM(bad); err == nil {
		t.Fatal("zero duration accepted")
	}
}
