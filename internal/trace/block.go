package trace

import (
	"fmt"

	"ssmobile/internal/sim"
)

// BlockConfig parameterises a raw block-level workload for the flash
// translation layer and banking experiments: a stream of reads and writes
// over a fixed logical block range, with controllable skew. Skewed write
// streams are what make wear leveling matter — without leveling, the hot
// blocks' erase blocks wear out while cold ones stay fresh.
type BlockConfig struct {
	// Ops is the number of operations to generate.
	Ops int
	// Blocks is the logical block range [0, Blocks).
	Blocks int
	// BlockSize scales Offset (= block × BlockSize) and Size.
	BlockSize int
	// ReadFrac is the fraction of operations that are reads.
	ReadFrac float64
	// Skew selects the address distribution: 0 means uniform; above 1 it
	// is the Zipf exponent (block 0 hottest).
	Skew float64
	// MeanInterarrival spaces the operations in time; zero packs them at
	// 1µs intervals.
	MeanInterarrival sim.Duration
	// Seed makes the stream reproducible.
	Seed int64
}

// Validate checks the configuration.
func (c BlockConfig) Validate() error {
	if c.Ops <= 0 || c.Blocks <= 0 || c.BlockSize <= 0 {
		return fmt.Errorf("trace: non-positive block workload dimensions")
	}
	if c.ReadFrac < 0 || c.ReadFrac > 1 {
		return fmt.Errorf("trace: ReadFrac out of [0,1]")
	}
	return nil
}

// GenerateBlocks synthesises a block-level trace. All operations address
// FileID 0; Offset carries the byte address of the block.
func GenerateBlocks(cfg BlockConfig) (*Trace, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g := sim.NewRNG(cfg.Seed)
	gap := cfg.MeanInterarrival
	if gap <= 0 {
		gap = sim.Microsecond
	}
	var z *sim.Zipf
	if cfg.Skew > 0 {
		z = g.Zipf(cfg.Skew, uint64(cfg.Blocks))
	}
	t := &Trace{Ops: make([]Op, 0, cfg.Ops)}
	now := sim.Time(0)
	for i := 0; i < cfg.Ops; i++ {
		now = now.Add(sim.Duration(g.Exp(float64(gap))))
		var block int64
		if z != nil {
			block = int64(z.Next())
		} else {
			block = g.Int63n(int64(cfg.Blocks))
		}
		kind := Write
		if g.Bool(cfg.ReadFrac) {
			kind = Read
		}
		t.Ops = append(t.Ops, Op{
			Time:   now,
			Kind:   kind,
			Offset: block * int64(cfg.BlockSize),
			Size:   cfg.BlockSize,
		})
	}
	return t, nil
}
