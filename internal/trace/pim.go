package trace

import (
	"fmt"

	"ssmobile/internal/sim"
)

// PIMConfig parameterises a personal-information-manager workload — the
// Sharp Wizard / Casio Boss / Apple Newton class of machine the paper
// names as the first all-solid-state computers. The access pattern is
// very different from the office workload:
//
//   - a modest, slowly growing set of small record files (appointments,
//     addresses, notes), almost never deleted;
//   - bursts of activity (the user opens the datebook, edits a handful of
//     records) separated by long idle gaps — the duty cycle that makes
//     power management matter;
//   - updates are tiny in-place record rewrites, the worst case for flash
//     without a write buffer and the best case with one.
type PIMConfig struct {
	// Duration is the span to generate.
	Duration sim.Duration
	// SessionsPerHour is the mean rate of usage bursts.
	SessionsPerHour float64
	// SessionOps is the mean number of operations per burst.
	SessionOps int
	// RecordBytes is the typical record size.
	RecordBytes int
	// InitialRecords seeds the database before the trace starts.
	InitialRecords int
	// NewRecordFrac is the fraction of session ops that create a record
	// (the rest split between reads and updates).
	NewRecordFrac float64
	// ReadFrac is the fraction of non-create ops that read.
	ReadFrac float64
	// Seed makes the trace reproducible.
	Seed int64
}

// DefaultPIM returns the calibrated PIM configuration.
func DefaultPIM(d sim.Duration, seed int64) PIMConfig {
	return PIMConfig{
		Duration:        d,
		SessionsPerHour: 6,
		SessionOps:      30,
		RecordBytes:     256,
		InitialRecords:  200,
		NewRecordFrac:   0.1,
		ReadFrac:        0.7,
		Seed:            seed,
	}
}

// Validate checks the configuration.
func (c PIMConfig) Validate() error {
	if c.Duration <= 0 || c.SessionsPerHour <= 0 || c.SessionOps <= 0 {
		return fmt.Errorf("trace: non-positive PIM dimensions")
	}
	if c.RecordBytes <= 0 || c.InitialRecords < 0 {
		return fmt.Errorf("trace: bad PIM record parameters")
	}
	if c.NewRecordFrac < 0 || c.NewRecordFrac > 1 || c.ReadFrac < 0 || c.ReadFrac > 1 {
		return fmt.Errorf("trace: PIM fractions must be in [0,1]")
	}
	return nil
}

// GeneratePIM synthesises a PIM trace. Records are FileIDs starting at 1;
// the initial database is created in a setup burst at time zero.
func GeneratePIM(cfg PIMConfig) (*Trace, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g := sim.NewRNG(cfg.Seed)
	var t Trace
	nextID := FileID(1)
	now := sim.Time(0)

	addRecord := func(at sim.Time) FileID {
		id := nextID
		nextID++
		size := cfg.RecordBytes/2 + g.Intn(cfg.RecordBytes)
		t.Ops = append(t.Ops,
			Op{Time: at, Kind: Create, File: id, Size: size},
			Op{Time: at, Kind: Write, File: id, Offset: 0, Size: size})
		return id
	}

	// Initial database load (synced to the device at the factory or
	// during first setup; time zero).
	for i := 0; i < cfg.InitialRecords; i++ {
		addRecord(0)
	}

	end := sim.Time(cfg.Duration)
	meanGap := sim.Duration(float64(sim.Hour) / cfg.SessionsPerHour)
	for {
		now = now.Add(sim.Duration(g.Exp(float64(meanGap))))
		if now > end {
			break
		}
		// One usage burst: ops a few hundred milliseconds apart. The user
		// is editing a handful of specific records (today's appointments),
		// so writes concentrate on a small session working set — which is
		// exactly what the battery-backed write buffer absorbs.
		ops := 1 + g.Intn(2*cfg.SessionOps)
		focus := make([]FileID, 1+g.Intn(4))
		for i := range focus {
			focus[i] = FileID(1 + g.Intn(int(nextID)-1))
		}
		at := now
		for i := 0; i < ops && at <= end; i++ {
			at = at.Add(sim.Duration(g.Exp(float64(300 * sim.Millisecond))))
			switch {
			case g.Bool(cfg.NewRecordFrac):
				focus = append(focus, addRecord(at))
			case g.Bool(cfg.ReadFrac):
				// Browsing reads range over the whole database.
				id := FileID(1 + g.Intn(int(nextID)-1))
				t.Ops = append(t.Ops, Op{Time: at, Kind: Read, File: id, Offset: 0, Size: cfg.RecordBytes / 2})
			default:
				// Edits hit the session's working set.
				id := focus[g.Intn(len(focus))]
				t.Ops = append(t.Ops, Op{Time: at, Kind: Write, File: id, Offset: 0, Size: cfg.RecordBytes / 2})
			}
		}
		now = at
	}
	return &t, nil
}
