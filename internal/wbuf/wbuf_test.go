package wbuf

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"ssmobile/internal/sim"
)

// countingSink records flushed blocks.
type countingSink struct {
	blocks map[Key][]byte
	bytes  int64
	calls  int
	err    error
}

func newCountingSink() *countingSink { return &countingSink{blocks: make(map[Key][]byte)} }

func (s *countingSink) FlushBlock(key Key, data []byte) error {
	if s.err != nil {
		return s.err
	}
	s.blocks[key] = append([]byte(nil), data...)
	s.bytes += int64(len(data))
	s.calls++
	return nil
}

func newBuffer(t *testing.T, capacity int64, delay sim.Duration, policy EvictPolicy) (*Buffer, *sim.Clock, *countingSink) {
	t.Helper()
	clock := sim.NewClock()
	sink := newCountingSink()
	b, err := New(Config{CapacityBytes: capacity, BlockBytes: 4096, WriteBackDelay: delay, Policy: policy}, clock, sink)
	if err != nil {
		t.Fatal(err)
	}
	return b, clock, sink
}

func TestNewValidation(t *testing.T) {
	clock := sim.NewClock()
	if _, err := New(Config{BlockBytes: 0}, clock, newCountingSink()); err == nil {
		t.Error("zero block size accepted")
	}
	if _, err := New(Config{BlockBytes: 4096, CapacityBytes: -1}, clock, newCountingSink()); err == nil {
		t.Error("negative capacity accepted")
	}
	if _, err := New(Config{BlockBytes: 4096}, clock, nil); err == nil {
		t.Error("nil sink accepted")
	}
}

func TestPolicyString(t *testing.T) {
	if EvictLRW.String() != "lrw" || EvictFIFO.String() != "fifo" {
		t.Error("policy names wrong")
	}
}

func TestWriteBuffered(t *testing.T) {
	b, _, sink := newBuffer(t, 1<<20, 0, EvictLRW)
	key := Key{Object: 1, Block: 0}
	if err := b.Write(key, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	if sink.calls != 0 {
		t.Fatal("buffered write reached the sink")
	}
	got, ok := b.Read(key)
	if !ok || !bytes.Equal(got, []byte("hello")) {
		t.Fatalf("Read = %q, %v", got, ok)
	}
	if b.Len() != 1 || b.Size() != 5 {
		t.Fatalf("Len/Size = %d/%d", b.Len(), b.Size())
	}
}

func TestZeroCapacityWritesThrough(t *testing.T) {
	b, _, sink := newBuffer(t, 0, 0, EvictLRW)
	if err := b.Write(Key{1, 0}, []byte("abc")); err != nil {
		t.Fatal(err)
	}
	if sink.calls != 1 || sink.bytes != 3 {
		t.Fatal("write-through did not reach sink")
	}
	if s := b.Stats(); s.Reduction() != 0 {
		t.Fatalf("reduction %v with no buffer", s.Reduction())
	}
}

func TestOverwriteAbsorption(t *testing.T) {
	b, _, sink := newBuffer(t, 1<<20, 0, EvictLRW)
	key := Key{Object: 1, Block: 0}
	for i := 0; i < 10; i++ {
		if err := b.Write(key, make([]byte, 4096)); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Sync(); err != nil {
		t.Fatal(err)
	}
	s := b.Stats()
	if s.HostBytes != 10*4096 {
		t.Fatalf("host bytes %d", s.HostBytes)
	}
	if s.FlushedBytes != 4096 || sink.bytes != 4096 {
		t.Fatalf("flushed %d, want one block", s.FlushedBytes)
	}
	if s.OverwriteAbsorbedBytes != 9*4096 {
		t.Fatalf("absorbed %d", s.OverwriteAbsorbedBytes)
	}
	if got := s.Reduction(); got < 0.89 || got > 0.91 {
		t.Fatalf("reduction %.2f, want 0.90", got)
	}
}

// Regression: the absorbed traffic of an overwrite is the incoming write
// size, not the size of the buffered version it replaces — a small
// overwrite landing on a large buffered block used to inflate the
// paper's 40–50% reduction metric by the large block's size.
func TestOverwriteAbsorptionCreditsIncomingBytes(t *testing.T) {
	b, _, _ := newBuffer(t, 1<<20, 0, EvictLRW)
	key := Key{Object: 1, Block: 0}
	if err := b.Write(key, make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	if err := b.Write(key, make([]byte, 40)); err != nil {
		t.Fatal(err)
	}
	s := b.Stats()
	if s.OverwriteAbsorbedBytes != 40 {
		t.Fatalf("absorbed %d, want the 40 incoming bytes", s.OverwriteAbsorbedBytes)
	}
	if s.HostBytes != 140 {
		t.Fatalf("host bytes %d", s.HostBytes)
	}
}

func TestDeleteAbsorption(t *testing.T) {
	b, _, sink := newBuffer(t, 1<<20, 0, EvictLRW)
	for blk := int64(0); blk < 4; blk++ {
		if err := b.Write(Key{Object: 7, Block: blk}, make([]byte, 4096)); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Write(Key{Object: 8, Block: 0}, make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	b.InvalidateObject(7)
	if err := b.Sync(); err != nil {
		t.Fatal(err)
	}
	if sink.bytes != 100 {
		t.Fatalf("sink got %d bytes, want only the surviving file's 100", sink.bytes)
	}
	if s := b.Stats(); s.DeleteAbsorbedBytes != 4*4096 {
		t.Fatalf("delete absorbed %d", s.DeleteAbsorbedBytes)
	}
}

func TestInvalidateBlock(t *testing.T) {
	b, _, sink := newBuffer(t, 1<<20, 0, EvictLRW)
	if err := b.Write(Key{1, 0}, []byte("keep")); err != nil {
		t.Fatal(err)
	}
	if err := b.Write(Key{1, 1}, []byte("drop")); err != nil {
		t.Fatal(err)
	}
	b.InvalidateBlock(Key{1, 1})
	if _, ok := b.Read(Key{1, 1}); ok {
		t.Fatal("invalidated block still readable")
	}
	if err := b.Sync(); err != nil {
		t.Fatal(err)
	}
	if string(sink.blocks[Key{1, 0}]) != "keep" || sink.blocks[Key{1, 1}] != nil {
		t.Fatal("wrong blocks flushed")
	}
}

func TestCapacityEvictionLRW(t *testing.T) {
	// Capacity of two blocks; writing three distinct blocks evicts the
	// least recently written.
	b, _, sink := newBuffer(t, 2*4096, 0, EvictLRW)
	for blk := int64(0); blk < 2; blk++ {
		if err := b.Write(Key{1, blk}, make([]byte, 4096)); err != nil {
			t.Fatal(err)
		}
	}
	// Touch block 0 so block 1 becomes least recently written.
	if err := b.Write(Key{1, 0}, make([]byte, 4096)); err != nil {
		t.Fatal(err)
	}
	if err := b.Write(Key{1, 2}, make([]byte, 4096)); err != nil {
		t.Fatal(err)
	}
	if _, flushed := sink.blocks[Key{1, 1}]; !flushed {
		t.Fatal("LRW should have evicted block 1")
	}
	if _, stillIn := b.Read(Key{1, 0}); !stillIn {
		t.Fatal("recently written block evicted")
	}
	if b.Stats().Evictions != 1 {
		t.Fatalf("evictions = %d", b.Stats().Evictions)
	}
}

func TestCapacityEvictionFIFO(t *testing.T) {
	b, _, sink := newBuffer(t, 2*4096, 0, EvictFIFO)
	for blk := int64(0); blk < 2; blk++ {
		if err := b.Write(Key{1, blk}, make([]byte, 4096)); err != nil {
			t.Fatal(err)
		}
	}
	// Touching block 0 does not save it under FIFO: it has been dirty
	// longest.
	if err := b.Write(Key{1, 0}, make([]byte, 4096)); err != nil {
		t.Fatal(err)
	}
	if err := b.Write(Key{1, 2}, make([]byte, 4096)); err != nil {
		t.Fatal(err)
	}
	if _, flushed := sink.blocks[Key{1, 0}]; !flushed {
		t.Fatal("FIFO should have evicted the oldest-dirty block 0")
	}
}

func TestDaemonFlushByAge(t *testing.T) {
	b, clock, sink := newBuffer(t, 1<<20, 30*sim.Second, EvictLRW)
	if err := b.Write(Key{1, 0}, []byte("old")); err != nil {
		t.Fatal(err)
	}
	clock.Advance(20 * sim.Second)
	if err := b.Write(Key{1, 1}, []byte("new")); err != nil {
		t.Fatal(err)
	}
	clock.Advance(15 * sim.Second) // first block now 35s old, second 15s
	if err := b.Tick(); err != nil {
		t.Fatal(err)
	}
	if _, ok := sink.blocks[Key{1, 0}]; !ok {
		t.Fatal("aged block not flushed by daemon")
	}
	if _, ok := sink.blocks[Key{1, 1}]; ok {
		t.Fatal("young block flushed early")
	}
	if b.Stats().DaemonFlushes != 1 {
		t.Fatalf("daemon flushes = %d", b.Stats().DaemonFlushes)
	}
}

func TestOverwriteDoesNotResetDirtyAge(t *testing.T) {
	// The 30-second promise is from first dirtying, or data could dodge
	// stable storage forever by being rewritten every 29s.
	b, clock, sink := newBuffer(t, 1<<20, 30*sim.Second, EvictLRW)
	if err := b.Write(Key{1, 0}, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	clock.Advance(25 * sim.Second)
	if err := b.Write(Key{1, 0}, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	clock.Advance(6 * sim.Second)
	if err := b.Tick(); err != nil {
		t.Fatal(err)
	}
	if got := sink.blocks[Key{1, 0}]; string(got) != "v2" {
		t.Fatalf("daemon should flush v2 at 31s from first dirty; got %q", got)
	}
}

func TestTickWithoutDelayIsNoop(t *testing.T) {
	b, clock, sink := newBuffer(t, 1<<20, 0, EvictLRW)
	if err := b.Write(Key{1, 0}, []byte("x")); err != nil {
		t.Fatal(err)
	}
	clock.Advance(sim.Hour)
	if err := b.Tick(); err != nil {
		t.Fatal(err)
	}
	if sink.calls != 0 {
		t.Fatal("Tick flushed with zero delay configured")
	}
}

func TestTooLargeRejected(t *testing.T) {
	b, _, _ := newBuffer(t, 1<<20, 0, EvictLRW)
	if err := b.Write(Key{1, 0}, make([]byte, 8192)); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized block: %v", err)
	}
}

func TestSinkErrorPropagates(t *testing.T) {
	clock := sim.NewClock()
	sink := newCountingSink()
	sink.err = errors.New("boom")
	b, err := New(Config{CapacityBytes: 4096, BlockBytes: 4096}, clock, sink)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Write(Key{1, 0}, make([]byte, 4096)); err != nil {
		t.Fatal(err)
	}
	if err := b.Write(Key{1, 1}, make([]byte, 4096)); err == nil {
		t.Fatal("eviction flush error swallowed")
	}
}

func TestWriteCopiesData(t *testing.T) {
	b, _, _ := newBuffer(t, 1<<20, 0, EvictLRW)
	data := []byte("mutable")
	if err := b.Write(Key{1, 0}, data); err != nil {
		t.Fatal(err)
	}
	data[0] = 'X'
	got, _ := b.Read(Key{1, 0})
	if got[0] != 'm' {
		t.Fatal("buffer aliased caller data")
	}
}

func TestSyncEmptiesBuffer(t *testing.T) {
	b, _, _ := newBuffer(t, 1<<20, 0, EvictLRW)
	for i := int64(0); i < 10; i++ {
		if err := b.Write(Key{uint64(i % 3), i}, make([]byte, 100)); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Sync(); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 0 || b.Size() != 0 {
		t.Fatalf("after Sync: Len=%d Size=%d", b.Len(), b.Size())
	}
}

// Property: buffer + sink together always hold exactly the last write for
// every key (buffer wins over sink), and accounting balances:
// host = flushed + absorbed + still-buffered.
func TestBufferModelProperty(t *testing.T) {
	type op struct {
		Obj    uint8
		Blk    uint8
		Val    byte
		Delete bool
	}
	f := func(ops []op, capBlocks uint8) bool {
		clock := sim.NewClock()
		sink := newCountingSink()
		b, err := New(Config{
			CapacityBytes: (int64(capBlocks%8) + 1) * 64,
			BlockBytes:    64,
		}, clock, sink)
		if err != nil {
			return false
		}
		model := map[Key][]byte{}
		for _, o := range ops {
			clock.Advance(sim.Millisecond)
			key := Key{Object: uint64(o.Obj % 4), Block: int64(o.Blk % 4)}
			if o.Delete {
				b.InvalidateObject(key.Object)
				for k := range model {
					if k.Object == key.Object {
						delete(model, k)
					}
				}
				continue
			}
			data := bytes.Repeat([]byte{o.Val}, 64)
			if err := b.Write(key, data); err != nil {
				return false
			}
			model[key] = data
		}
		// Verify reads see the model through buffer-then-sink.
		for k, want := range model {
			got, ok := b.Read(k)
			if !ok {
				got, ok = sink.blocks[k], sink.blocks[k] != nil
			}
			if !ok || !bytes.Equal(got, want) {
				return false
			}
		}
		s := b.Stats()
		accounted := s.FlushedBytes + s.OverwriteAbsorbedBytes + s.DeleteAbsorbedBytes + b.Size()
		return accounted == s.HostBytes
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
