// Package wbuf implements the battery-backed DRAM write buffer of the
// paper's physical storage manager (§3.3): written data is held in DRAM
// and flushed to flash lazily, so that the many bytes that die young —
// short-lived files and blocks that are promptly overwritten — never reach
// flash at all.
//
// This is the mechanism behind the paper's quantitative anchor: "as little
// as one megabyte of battery-backed RAM can reduce write traffic by 40 to
// 50%" (citing Baker et al.). Because the buffer is battery-backed, data
// parked here survives OS crashes, which is what makes the laziness safe.
//
// The buffer absorbs traffic through two routes:
//
//   - overwrite absorption: a write to a block that is already buffered
//     dirty replaces it in place;
//   - death absorption: when a file is deleted, its dirty blocks are
//     dropped without ever being flushed.
//
// Dirty blocks leave the buffer either because a write-back daemon flushes
// blocks older than the write-back delay (the classic 30-second Unix
// syncer policy) or because the buffer is full and must evict.
package wbuf

import (
	"errors"
	"fmt"

	"ssmobile/internal/obs"
	"ssmobile/internal/sim"
)

// ErrTooLarge reports a block bigger than the buffer's block size.
var ErrTooLarge = errors.New("wbuf: data exceeds block size")

// Key names one buffered block: an object (file) and a block index within
// it.
type Key struct {
	Object uint64
	Block  int64
}

// Sink receives blocks the buffer flushes to stable storage.
type Sink interface {
	FlushBlock(key Key, data []byte) error
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(key Key, data []byte) error

// FlushBlock calls f.
func (f SinkFunc) FlushBlock(key Key, data []byte) error { return f(key, data) }

// EvictPolicy selects which dirty block is flushed first when the buffer
// is full.
type EvictPolicy int

// Eviction policies.
const (
	// EvictLRW flushes the least recently written block: the hot set stays
	// buffered, maximising overwrite absorption.
	EvictLRW EvictPolicy = iota
	// EvictFIFO flushes the block that has been dirty longest regardless
	// of recent activity.
	EvictFIFO
)

// String names the policy.
func (p EvictPolicy) String() string {
	switch p {
	case EvictLRW:
		return "lrw"
	case EvictFIFO:
		return "fifo"
	default:
		return fmt.Sprintf("EvictPolicy(%d)", int(p))
	}
}

// Config parameterises the buffer.
type Config struct {
	// CapacityBytes bounds the total buffered data. Zero means the buffer
	// is disabled: every write flushes through immediately.
	CapacityBytes int64
	// BlockBytes is the maximum (and usual) block size.
	BlockBytes int
	// WriteBackDelay is the age at which the daemon flushes a dirty block,
	// measured from when the block first became dirty. Zero disables
	// age-based flushing (blocks leave only by eviction or Sync).
	WriteBackDelay sim.Duration
	// Policy selects the eviction order.
	Policy EvictPolicy
	// Obs receives the buffer's metrics and op spans; nil falls back to
	// obs.Default().
	Obs *obs.Observer
}

// Stats aggregates the buffer's traffic accounting.
type Stats struct {
	// HostBytes is everything the host wrote.
	HostBytes int64
	// FlushedBytes is what actually reached stable storage.
	FlushedBytes int64
	// OverwriteAbsorbedBytes were absorbed by in-place overwrites.
	OverwriteAbsorbedBytes int64
	// DeleteAbsorbedBytes were dropped when their file died.
	DeleteAbsorbedBytes int64
	// Evictions counts capacity-forced flushes; DaemonFlushes age-forced.
	Evictions, DaemonFlushes int64
}

// Reduction reports the write-traffic reduction 1 − flushed/host, the
// metric the paper quotes.
func (s Stats) Reduction() float64 {
	if s.HostBytes == 0 {
		return 0
	}
	return 1 - float64(s.FlushedBytes)/float64(s.HostBytes)
}

type entry struct {
	key        Key
	data       []byte
	dirtySince sim.Time
	lastWrite  sim.Time
	// links thread the entry onto writeOrder (LRW) and dirtyOrder
	// (dirty-age) intrusively, so queueing never allocates.
	links [2]entryLinks
}

// Link-pair indexes into entry.links.
const (
	lruLink  = iota // writeOrder: front = least recently written
	fifoLink        // dirtyOrder: front = dirty longest
)

type entryLinks struct {
	prev, next *entry
	queued     bool
}

// entryList is an intrusive doubly-linked list of entries threading the
// link pair selected by idx; it replaces container/list so list
// housekeeping touches only existing nodes.
type entryList struct {
	head, tail *entry
	idx        int
}

func (l *entryList) Front() *entry { return l.head }

func (l *entryList) PushBack(e *entry) {
	lk := &e.links[l.idx]
	lk.prev, lk.next, lk.queued = l.tail, nil, true
	if l.tail != nil {
		l.tail.links[l.idx].next = e
	} else {
		l.head = e
	}
	l.tail = e
}

func (l *entryList) Remove(e *entry) {
	lk := &e.links[l.idx]
	if !lk.queued {
		return
	}
	if lk.prev != nil {
		lk.prev.links[l.idx].next = lk.next
	} else {
		l.head = lk.next
	}
	if lk.next != nil {
		lk.next.links[l.idx].prev = lk.prev
	} else {
		l.tail = lk.prev
	}
	lk.prev, lk.next, lk.queued = nil, nil, false
}

func (l *entryList) MoveToBack(e *entry) {
	if l.tail == e {
		return
	}
	l.Remove(e)
	l.PushBack(e)
}

// Buffer is the write buffer. Not safe for concurrent use.
type Buffer struct {
	cfg   Config
	clock *sim.Clock
	sink  Sink

	entries    map[Key]*entry
	byObject   map[uint64]map[int64]*entry
	writeOrder entryList // front = least recently written
	dirtyOrder entryList // front = dirty longest
	size       int64

	// entryFree recycles dropped entries — including their data capacity —
	// and freeMaps recycles emptied per-object maps; ordered is the
	// InvalidateObject scratch.
	entryFree []*entry
	freeMaps  []map[int64]*entry
	ordered   []*entry

	obs                     *obs.Observer
	hostBytes, flushedBytes *obs.Counter
	overwriteAbsorbed       *obs.Counter
	deleteAbsorbed          *obs.Counter
	evictions, daemonFlush  *obs.Counter
}

// New builds an empty buffer flushing into sink.
func New(cfg Config, clock *sim.Clock, sink Sink) (*Buffer, error) {
	if cfg.BlockBytes <= 0 {
		return nil, fmt.Errorf("wbuf: non-positive block size %d", cfg.BlockBytes)
	}
	if cfg.CapacityBytes < 0 {
		return nil, fmt.Errorf("wbuf: negative capacity %d", cfg.CapacityBytes)
	}
	if sink == nil {
		return nil, fmt.Errorf("wbuf: nil sink")
	}
	o := obs.Or(cfg.Obs)
	b := &Buffer{
		cfg:               cfg,
		clock:             clock,
		sink:              sink,
		entries:           make(map[Key]*entry),
		byObject:          make(map[uint64]map[int64]*entry),
		writeOrder:        entryList{idx: lruLink},
		dirtyOrder:        entryList{idx: fifoLink},
		obs:               o,
		hostBytes:         o.Counter("host_bytes_total", obs.Labels{"layer": "wbuf"}),
		flushedBytes:      o.Counter("flushed_bytes_total", obs.Labels{"layer": "wbuf"}),
		overwriteAbsorbed: o.Counter("absorbed_bytes_total", obs.Labels{"layer": "wbuf", "reason": "overwrite"}),
		deleteAbsorbed:    o.Counter("absorbed_bytes_total", obs.Labels{"layer": "wbuf", "reason": "delete"}),
		evictions:         o.Counter("evictions_total", obs.Labels{"layer": "wbuf"}),
		daemonFlush:       o.Counter("daemon_flushes_total", obs.Labels{"layer": "wbuf"}),
	}
	// The server's admission control keys off this same gauge, so
	// backpressure decisions and dashboards always agree.
	o.GaugeFunc("occupancy", obs.Labels{"layer": "wbuf"}, b.Occupancy)
	return b, nil
}

// Occupancy reports the buffered fraction of capacity in [0, 1]; a
// disabled (zero-capacity) buffer reports 0.
func (b *Buffer) Occupancy() float64 {
	if b.cfg.CapacityBytes <= 0 {
		return 0
	}
	return float64(b.size) / float64(b.cfg.CapacityBytes)
}

// Config returns the buffer configuration.
func (b *Buffer) Config() Config { return b.cfg }

// Len reports the number of buffered blocks.
func (b *Buffer) Len() int { return len(b.entries) }

// Size reports the buffered bytes.
func (b *Buffer) Size() int64 { return b.size }

// Write buffers data for key. If the block is already buffered the write
// is absorbed in place. The data is copied.
func (b *Buffer) Write(key Key, data []byte) error {
	if len(data) > b.cfg.BlockBytes {
		return fmt.Errorf("%w: %d > %d", ErrTooLarge, len(data), b.cfg.BlockBytes)
	}
	b.hostBytes.Add(int64(len(data)))

	if b.cfg.CapacityBytes == 0 {
		// Buffer disabled: write-through.
		b.flushedBytes.Add(int64(len(data)))
		return b.sink.FlushBlock(key, data)
	}

	now := b.clock.Now()
	if e, ok := b.entries[key]; ok {
		// The absorbed traffic is the incoming write — the bytes that
		// would otherwise have reached flash — not the size of the stale
		// buffered version it replaces.
		b.overwriteAbsorbed.Add(int64(len(data)))
		b.size += int64(len(data)) - int64(len(e.data))
		e.data = append(e.data[:0], data...)
		e.lastWrite = now
		b.writeOrder.MoveToBack(e)
		return b.ensureCapacity()
	}

	e := b.newEntry()
	e.key = key
	e.data = append(e.data[:0], data...)
	e.dirtySince = now
	e.lastWrite = now
	b.writeOrder.PushBack(e)
	b.dirtyOrder.PushBack(e)
	b.entries[key] = e
	blocks := b.byObject[key.Object]
	if blocks == nil {
		if n := len(b.freeMaps); n > 0 {
			blocks = b.freeMaps[n-1]
			b.freeMaps = b.freeMaps[:n-1]
		} else {
			blocks = make(map[int64]*entry)
		}
		b.byObject[key.Object] = blocks
	}
	blocks[key.Block] = e
	b.size += int64(len(data))
	return b.ensureCapacity()
}

// newEntry returns a reset entry, reusing a recycled one (and its data
// capacity) when possible.
func (b *Buffer) newEntry() *entry {
	if n := len(b.entryFree); n > 0 {
		e := b.entryFree[n-1]
		b.entryFree = b.entryFree[:n-1]
		return e
	}
	return &entry{}
}

// Read returns the buffered data for key, if present. The returned slice
// is the buffer's own copy; callers must not modify it, and it is only
// valid until the block leaves the buffer (flush or invalidation — the
// backing array is recycled for later writes).
func (b *Buffer) Read(key Key) ([]byte, bool) {
	e, ok := b.entries[key]
	if !ok {
		return nil, false
	}
	return e.data, true
}

// InvalidateObject drops every buffered block of the object (the file was
// deleted); those bytes never reach stable storage.
func (b *Buffer) InvalidateObject(object uint64) {
	blocks := b.byObject[object]
	// Drop in block order, not map order, so the free list (and therefore
	// every later allocation) is identical run to run. The scratch slice
	// is reused and sorted by hand (sort.Slice allocates per call).
	ordered := b.ordered[:0]
	for _, e := range blocks {
		ordered = append(ordered, e)
	}
	for i := 1; i < len(ordered); i++ {
		for j := i; j > 0 && ordered[j].key.Block < ordered[j-1].key.Block; j-- {
			ordered[j], ordered[j-1] = ordered[j-1], ordered[j]
		}
	}
	b.ordered = ordered
	for _, e := range ordered {
		b.deleteAbsorbed.Add(int64(len(e.data)))
		b.drop(e)
	}
	delete(b.byObject, object)
}

// InvalidateBlock drops one buffered block (e.g. a truncated tail).
func (b *Buffer) InvalidateBlock(key Key) {
	if e, ok := b.entries[key]; ok {
		b.deleteAbsorbed.Add(int64(len(e.data)))
		b.drop(e)
	}
}

// drop removes the entry without flushing and recycles it. The entry is
// reset to zero state (keeping only its data capacity) so a recycled
// entry can never leak a stale key, timestamps or list links.
func (b *Buffer) drop(e *entry) {
	delete(b.entries, e.key)
	if blocks := b.byObject[e.key.Object]; blocks != nil {
		delete(blocks, e.key.Block)
		if len(blocks) == 0 {
			delete(b.byObject, e.key.Object)
			b.freeMaps = append(b.freeMaps, blocks)
		}
	}
	b.writeOrder.Remove(e)
	b.dirtyOrder.Remove(e)
	b.size -= int64(len(e.data))
	data := e.data[:0]
	*e = entry{data: data}
	b.entryFree = append(b.entryFree, e)
}

// flush writes the entry to the sink and removes it.
func (b *Buffer) flush(e *entry) (err error) {
	// drop recycles the entry, so its size is captured up front for the
	// deferred span close.
	n := int64(len(e.data))
	sp := b.obs.StageSpan(b.clock, nil, "wbuf", "flush", obs.StageFlush)
	defer func() { sp.End(n, err) }()
	b.flushedBytes.Add(n)
	if err := b.sink.FlushBlock(e.key, e.data); err != nil {
		return err
	}
	b.drop(e)
	return nil
}

// victim picks the next entry to evict under the configured policy.
func (b *Buffer) victim() *entry {
	if b.cfg.Policy == EvictFIFO {
		return b.dirtyOrder.Front()
	}
	return b.writeOrder.Front()
}

func (b *Buffer) ensureCapacity() error {
	for b.size > b.cfg.CapacityBytes {
		e := b.victim()
		if e == nil {
			return nil
		}
		b.evictions.Inc()
		if err := b.flush(e); err != nil {
			return err
		}
	}
	return nil
}

// Tick runs the write-back daemon: every block dirty for at least the
// write-back delay is flushed. The driving layer calls it periodically
// (via a sim event or before foreground operations).
func (b *Buffer) Tick() error {
	if b.cfg.WriteBackDelay <= 0 {
		return nil
	}
	now := b.clock.Now()
	for {
		e := b.dirtyOrder.Front()
		if e == nil {
			return nil
		}
		if now.Sub(e.dirtySince) < b.cfg.WriteBackDelay {
			return nil
		}
		b.daemonFlush.Inc()
		if err := b.flush(e); err != nil {
			return err
		}
	}
}

// Sync flushes everything, oldest dirty first. The flushes are forced
// out early by the explicit sync, so their flash programs are charged to
// the group-commit-flush cause rather than the write-back default.
func (b *Buffer) Sync() error {
	defer b.obs.PushCause(obs.CauseGroupCommitFlush)()
	for {
		e := b.dirtyOrder.Front()
		if e == nil {
			return nil
		}
		if err := b.flush(e); err != nil {
			return err
		}
	}
}

// Stats summarises the buffer's traffic accounting.
func (b *Buffer) Stats() Stats {
	return Stats{
		HostBytes:              b.hostBytes.Value(),
		FlushedBytes:           b.flushedBytes.Value(),
		OverwriteAbsorbedBytes: b.overwriteAbsorbed.Value(),
		DeleteAbsorbedBytes:    b.deleteAbsorbed.Value(),
		Evictions:              b.evictions.Value(),
		DaemonFlushes:          b.daemonFlush.Value(),
	}
}
