package crashtest

import (
	"strings"
	"testing"

	"ssmobile/internal/flash"
)

// TestDefaultScriptSurvivesEveryCrashPoint is the package's reason to
// exist: the reference workload must recover cleanly from a power cut
// before, during, and after every destructive device operation — under
// every storage backend. Passing this sweep is the bar for calling a
// backend real.
func TestDefaultScriptSurvivesEveryCrashPoint(t *testing.T) {
	for _, eng := range []string{"ftl", "pdl"} {
		t.Run(eng, func(t *testing.T) {
			res, err := Enumerate(Config{Engine: eng}, DefaultScript())
			if err != nil {
				t.Fatalf("enumerate: %v", err)
			}
			// The floor admits the pdl backend, whose delta records
			// collapse many host writes into fewer device programs.
			if res.DestructiveOps < 30 {
				t.Fatalf("workload too small to be interesting: %d destructive ops", res.DestructiveOps)
			}
			if want := int(res.DestructiveOps) * 3; res.PointsRun != want {
				t.Fatalf("ran %d points, want %d", res.PointsRun, want)
			}
			for _, v := range res.Violations {
				t.Errorf("%s", v)
			}
			// Torn records and torn data residue must actually occur
			// across the sweep — otherwise the enumeration is not
			// exercising the crash windows it claims to.
			if res.CorruptRecords == 0 {
				t.Errorf("no torn records seen across %d points; CutDuring is not biting", res.PointsRun)
			}
			if res.ReErasedBlocks == 0 {
				t.Errorf("no blocks re-erased across %d points; torn residue never detected", res.PointsRun)
			}
		})
	}
}

// TestEnumerateCoversCleaning checks the default workload pushes the
// translation layer into cleaning, so erase crash points are in the
// sweep.
func TestEnumerateCoversCleaning(t *testing.T) {
	cfg := Config{}
	if err := cfg.applyDefaults(); err != nil {
		t.Fatal(err)
	}
	st, err := buildStack(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	erasesSeen := false
	for _, op := range DefaultScript() {
		before := st.dev.Stats().Erases
		if err := st.apply(cfg, op); err != nil {
			t.Fatalf("clean run: %v", err)
		}
		if st.dev.Stats().Erases > before {
			erasesSeen = true
		}
	}
	if !erasesSeen {
		t.Fatal("default script never triggered an erase; cleaning crash points are untested")
	}
}

// TestMaxPointsSamples checks the CI-bounding knob: sampling runs fewer
// points but still includes the first and last op.
func TestMaxPointsSamples(t *testing.T) {
	idx := enumerationIndexes(100, 10)
	if len(idx) > 12 {
		t.Fatalf("sampled %d indexes for MaxPoints=10", len(idx))
	}
	if idx[0] != 0 || idx[len(idx)-1] != 99 {
		t.Fatalf("sample %v misses an endpoint", idx)
	}
	full := enumerationIndexes(5, 0)
	if len(full) != 5 {
		t.Fatalf("unbounded enumeration returned %d of 5", len(full))
	}
}

// TestScriptCausingEvictionsRejected checks the harness refuses scripts
// that flush outside barriers, where the data model would be unsound.
func TestScriptCausingEvictionsRejected(t *testing.T) {
	script := Script{}
	// More concurrently dirty blocks than DRAM pages forces evictions.
	for i := int64(0); i < 6; i++ {
		script = append(script, W(1, i, 512, byte(i+1)))
	}
	script = append(script, S())
	_, err := Enumerate(Config{DRAMPages: 4}, script)
	if err == nil || !strings.Contains(err.Error(), "evictions") {
		t.Fatalf("eviction-causing script accepted: %v", err)
	}
}

// TestModelDetectsLostData plants a fault the recovery path cannot hide
// — the model itself must flag impossible recovered state. We simulate
// by corrupting the model (claiming a block was synced with a different
// image) and checking verify reports it; this guards the checker against
// silently passing everything.
func TestModelDetectsLostData(t *testing.T) {
	cfg := Config{}
	if err := cfg.applyDefaults(); err != nil {
		t.Fatal(err)
	}
	st, err := buildStack(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	mod := newModel(cfg.BlockBytes)
	ops := Script{W(7, 0, 512, 0xAA), S()}
	for _, op := range ops {
		if err := st.apply(cfg, op); err != nil {
			t.Fatal(err)
		}
		mod.completed(op)
	}
	// Tamper: the model now expects 0xBB, the stack holds 0xAA.
	mod.completed(W(7, 0, 512, 0xBB))
	mod.completed(S())
	errs := mod.verify(st.m)
	if len(errs) == 0 {
		t.Fatal("verify accepted a mismatched synced image")
	}
}

// TestSingleFateSweep checks fate filtering: a CutBefore-only sweep runs
// one point per op and still passes.
func TestSingleFateSweep(t *testing.T) {
	script := Script{
		W(1, 0, 512, 0x11),
		W(1, 1, 300, 0x22),
		S(),
		W(1, 0, 700, 0x33),
		Tk(),
	}
	res, err := Enumerate(Config{Fates: []flash.Outcome{flash.CutBefore}}, script)
	if err != nil {
		t.Fatal(err)
	}
	if res.PointsRun != int(res.DestructiveOps) {
		t.Fatalf("ran %d points for %d ops with one fate", res.PointsRun, res.DestructiveOps)
	}
	for _, v := range res.Violations {
		t.Errorf("%s", v)
	}
}
