// Package crashtest enumerates power-cut crash points through the flash
// storage stack and checks recovery after every one of them.
//
// The paper's stability story (§4) is that a solid-state computer
// survives abrupt power loss: flash holds the durable state, and the
// translation layer's out-of-band records let the mapping be rebuilt by
// scan. Quiescent power failures (between operations) exercise only the
// easy half of that claim. This package drives the hard half: it runs a
// workload once against a flash/FTL/storage-manager stack to count the
// device's destructive operations (programs, spare programs, erases),
// then replays the workload once per (operation index, fate), cutting
// power before, during, or after that exact operation — torn pages,
// half-written out-of-band records, trembling half-erased blocks — and
// recovers by the honest path (flash.Device.Restore, the engine's
// Mount-by-scan, storman.Mount). The enumeration runs per storage
// backend (Config.Engine selects ftl or pdl); passing it is the bar for
// calling a backend real. After each recovery it checks:
//
//   - structural invariants in both layers (the engine's
//     CheckInvariants, storman.CheckInvariants): mapping bijectivity,
//     block counts, index/scan agreement, and every free block genuinely
//     erased;
//   - data: every block that was flushed and left untouched must read
//     back exactly its flushed image; blocks with in-flight changes must
//     read back either their last flushed image or the image being
//     flushed; deleted blocks may resurrect (trims are in-memory at this
//     layer — the file system's metadata makes deletes durable) but only
//     with a value they actually held;
//   - usability: the recovered stack must accept fresh writes, sync, and
//     read them back, with invariants still holding.
//
// The data checks are exact, not heuristic, because the harness keeps the
// stack in a regime where flash changes only inside explicit barrier
// operations (Sync and Tick): the write buffer is sized so capacity
// evictions never occur — the reference run enforces this — so every
// cut lands inside a barrier and the model knows precisely which blocks
// were dirty when power died.
package crashtest

import (
	"bytes"
	"errors"
	"fmt"

	"ssmobile/internal/device"
	"ssmobile/internal/dram"
	"ssmobile/internal/engine"
	engineftl "ssmobile/internal/engine/ftl"
	"ssmobile/internal/engine/pdl"
	"ssmobile/internal/flash"
	"ssmobile/internal/ftl"
	"ssmobile/internal/obs"
	"ssmobile/internal/sim"
	"ssmobile/internal/storman"
)

// OpKind names a workload step.
type OpKind int

// Workload steps. Write, Truncate, Delete and DeleteObject touch only
// battery-backed DRAM bookkeeping; Sync and Tick are the barriers where
// dirty blocks migrate to flash (and the cleaner runs), so they are
// where every destructive device operation — and therefore every crash
// point — lives.
const (
	OpWrite OpKind = iota
	OpTruncate
	OpDelete
	OpDeleteObject
	OpSync
	OpTick
)

// Op is one workload step.
type Op struct {
	Kind OpKind
	Key  storman.Key
	// Size is the write length or truncation size.
	Size int
	// Fill is the write's repeated data byte.
	Fill byte
}

// Script is a workload: a fixed sequence of steps.
type Script []Op

// W writes size bytes of fill into (object, block).
func W(object uint64, block int64, size int, fill byte) Op {
	return Op{Kind: OpWrite, Key: storman.Key{Object: object, Block: block}, Size: size, Fill: fill}
}

// T truncates (object, block) to size bytes.
func T(object uint64, block int64, size int) Op {
	return Op{Kind: OpTruncate, Key: storman.Key{Object: object, Block: block}, Size: size}
}

// D deletes the block (object, block).
func D(object uint64, block int64) Op {
	return Op{Kind: OpDelete, Key: storman.Key{Object: object, Block: block}}
}

// DObj deletes every block of the object.
func DObj(object uint64) Op {
	return Op{Kind: OpDeleteObject, Key: storman.Key{Object: object}}
}

// S syncs everything to flash.
func S() Op { return Op{Kind: OpSync} }

// Tk advances the clock past the write-back delay and runs the daemon
// tick (age-based flushes plus idle cleaning).
func Tk() Op { return Op{Kind: OpTick} }

// Config sizes the stack under test. The zero value gets small-geometry
// defaults tuned so a full enumeration stays fast.
type Config struct {
	// Banks and BlocksPerBank shape the flash device.
	Banks, BlocksPerBank int
	// EraseBlockBytes is the flash erase-block size.
	EraseBlockBytes int
	// BlockBytes is the storage-manager block and FTL page size.
	BlockBytes int
	// DRAMPages sizes the write buffer in blocks. It must hold every
	// concurrently dirty block of the script: the exact data model
	// requires that capacity evictions never flush outside a barrier.
	DRAMPages int
	// WriteBackDelay ages dirty blocks for the Tick daemon.
	WriteBackDelay sim.Duration
	// TickAdvance is how far Tk moves the clock; it must be at least
	// WriteBackDelay so a tick flushes every dirty block.
	TickAdvance sim.Duration
	// Policy is the cleaning policy (default cost-benefit). Only
	// meaningful for the ftl engine.
	Policy ftl.Policy
	// Engine selects the storage backend under test: "ftl" (default)
	// or "pdl". Passing the enumerator is the bar for calling a
	// backend real.
	Engine string
	// Fates are the cut variants swept per op index (default all three).
	Fates []flash.Outcome
	// MaxPoints bounds the number of op indexes enumerated; 0 means all.
	// When the workload has more, indexes are sampled at a fixed stride
	// (first and last always included).
	MaxPoints int
}

func (c *Config) applyDefaults() error {
	if c.Banks == 0 {
		c.Banks = 2
	}
	if c.BlocksPerBank == 0 {
		// Small on purpose: 8 erase blocks of 4 pages give 12 logical
		// pages past the reserve, so the default workload's churn drains
		// the free pool and the sweep includes cleaning and erases.
		c.BlocksPerBank = 4
	}
	if c.EraseBlockBytes == 0 {
		c.EraseBlockBytes = 4096
	}
	if c.BlockBytes == 0 {
		c.BlockBytes = 1024
	}
	if c.DRAMPages == 0 {
		c.DRAMPages = 8
	}
	if c.WriteBackDelay == 0 {
		c.WriteBackDelay = 30 * sim.Second
	}
	if c.TickAdvance == 0 {
		c.TickAdvance = 40 * sim.Second
	}
	if c.Policy == ftl.PolicyDirect {
		c.Policy = ftl.PolicyCostBenefit
	}
	if c.Engine == "" {
		c.Engine = "ftl"
	}
	if c.Engine != "ftl" && c.Engine != "pdl" {
		return fmt.Errorf("crashtest: unknown engine %q (want ftl or pdl)", c.Engine)
	}
	if len(c.Fates) == 0 {
		c.Fates = []flash.Outcome{flash.CutBefore, flash.CutDuring, flash.CutAfter}
	}
	if c.TickAdvance < c.WriteBackDelay {
		return fmt.Errorf("crashtest: tick advance %v below write-back delay %v", c.TickAdvance, c.WriteBackDelay)
	}
	return nil
}

// Violation reports one crash point whose recovery broke a guarantee.
type Violation struct {
	// Index and Fate name the destructive op and how it was cut.
	Index int64
	Fate  flash.Outcome
	// Stage is where the violation surfaced: "replay", "mount",
	// "invariants", "data", or "usability".
	Stage string
	Err   error
}

func (v Violation) String() string {
	return fmt.Sprintf("op %d cut %s: %s: %v", v.Index, fateName(v.Fate), v.Stage, v.Err)
}

func fateName(f flash.Outcome) string {
	switch f {
	case flash.CutBefore:
		return "before"
	case flash.CutDuring:
		return "during"
	case flash.CutAfter:
		return "after"
	default:
		return fmt.Sprintf("fate(%d)", int(f))
	}
}

// Result summarises an enumeration.
type Result struct {
	// DestructiveOps is the workload's device op count (the crash-point
	// space); PointsRun is how many (index, fate) recoveries ran.
	DestructiveOps int64
	PointsRun      int
	// Violations lists every broken guarantee; empty means the stack
	// survived power loss at every enumerated boundary.
	Violations []Violation
	// ReErasedBlocks, CorruptRecords and RetiredBlocks total the wreckage
	// the mount scans found and repaired across all recoveries.
	ReErasedBlocks int64
	CorruptRecords int64
	RetiredBlocks  int64
}

// stack is one assembled flash/engine/storage-manager instance.
type stack struct {
	clock *sim.Clock
	dram  *dram.Device
	dev   *flash.Device
	eng   engine.Engine
	m     *storman.Manager
}

func (c Config) ftlConfig(o *obs.Observer) ftl.Config {
	return ftl.Config{
		PageBytes:       c.BlockBytes,
		ReserveBlocks:   3,
		Policy:          c.Policy,
		HotCold:         true,
		BackgroundErase: true,
		PersistMapping:  true,
		Obs:             o,
	}
}

func (c Config) pdlConfig(o *obs.Observer) pdl.Config {
	return pdl.Config{
		PageBytes:       c.BlockBytes,
		ReserveBlocks:   3,
		BackgroundErase: true,
		Obs:             o,
	}
}

// newEngine builds the configured backend fresh; mountEngine rebuilds it
// from a device that already holds data.
func (c Config) newEngine(dev *flash.Device, clock *sim.Clock, o *obs.Observer) (engine.Engine, error) {
	if c.Engine == "pdl" {
		return pdl.New(dev, clock, c.pdlConfig(o))
	}
	return engineftl.New(dev, clock, c.ftlConfig(o))
}

func (c Config) mountEngine(dev *flash.Device, clock *sim.Clock, o *obs.Observer) (engine.Engine, error) {
	if c.Engine == "pdl" {
		return pdl.Mount(dev, clock, c.pdlConfig(o))
	}
	return engineftl.Mount(dev, clock, c.ftlConfig(o))
}

func (c Config) stormanConfig(o *obs.Observer) storman.Config {
	return storman.Config{
		BlockBytes:     c.BlockBytes,
		DRAMBase:       0,
		DRAMBytes:      int64(c.DRAMPages) * int64(c.BlockBytes),
		WriteBackDelay: c.WriteBackDelay,
		Obs:            o,
	}
}

func buildStack(cfg Config, inj flash.Injector) (*stack, error) {
	o := obs.New(0)
	clock := sim.NewClock()
	meter := sim.NewEnergyMeter()
	dr, err := dram.New(dram.Config{
		CapacityBytes: int64(cfg.DRAMPages) * int64(cfg.BlockBytes),
		Params:        device.NECDram,
		Obs:           o,
	}, clock, meter)
	if err != nil {
		return nil, err
	}
	dev, err := flash.New(flash.Config{
		Banks:          cfg.Banks,
		BlocksPerBank:  cfg.BlocksPerBank,
		BlockBytes:     cfg.EraseBlockBytes,
		Params:         device.IntelFlash,
		SpareUnitBytes: cfg.BlockBytes,
		SpareBytes:     ftl.OOBRecordBytes,
		Injector:       inj,
		Obs:            o,
	}, clock, meter)
	if err != nil {
		return nil, err
	}
	eng, err := cfg.newEngine(dev, clock, o)
	if err != nil {
		return nil, err
	}
	m, err := storman.New(cfg.stormanConfig(o), clock, dr, eng)
	if err != nil {
		return nil, err
	}
	return &stack{clock: clock, dram: dr, dev: dev, eng: eng, m: m}, nil
}

// apply executes one op against the stack.
func (s *stack) apply(cfg Config, op Op) error {
	switch op.Kind {
	case OpWrite:
		return s.m.WriteBlock(op.Key, bytes.Repeat([]byte{op.Fill}, op.Size))
	case OpTruncate:
		return s.m.TruncateBlock(op.Key, op.Size)
	case OpDelete:
		return s.m.DeleteBlock(op.Key)
	case OpDeleteObject:
		return s.m.DeleteObject(op.Key.Object)
	case OpSync:
		return s.m.Sync()
	case OpTick:
		s.clock.Advance(cfg.TickAdvance)
		return s.m.Tick()
	default:
		return fmt.Errorf("crashtest: unknown op kind %d", op.Kind)
	}
}

// Enumerate measures the script's destructive-op count on a clean run,
// then replays it once per (op index, fate), recovering and checking
// after each cut. The returned Result carries every violation found; a
// non-nil error means the harness itself could not run (bad config, a
// script that breaks the no-evictions regime, or a clean-run failure) —
// not a recovery bug.
func Enumerate(cfg Config, script Script) (*Result, error) {
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	total, err := referenceRun(cfg, script)
	if err != nil {
		return nil, err
	}
	res := &Result{DestructiveOps: total}
	for _, idx := range enumerationIndexes(total, cfg.MaxPoints) {
		for _, fate := range cfg.Fates {
			res.PointsRun++
			runPoint(cfg, script, idx, fate, res)
		}
	}
	return res, nil
}

// referenceRun replays the script uncut, validating the regime the data
// model depends on, and returns the destructive-op count.
func referenceRun(cfg Config, script Script) (int64, error) {
	st, err := buildStack(cfg, nil)
	if err != nil {
		return 0, err
	}
	for i, op := range script {
		if err := st.apply(cfg, op); err != nil {
			return 0, fmt.Errorf("crashtest: clean run failed at op %d: %w", i, err)
		}
	}
	if ev := st.m.Stats().Evictions; ev != 0 {
		return 0, fmt.Errorf("crashtest: script causes %d capacity evictions; grow DRAMPages so flushes stay inside barriers", ev)
	}
	return st.dev.DestructiveOps(), nil
}

// enumerationIndexes picks the op indexes to cut at: all of them, or a
// fixed-stride sample capped at maxPoints (first and last included).
func enumerationIndexes(total int64, maxPoints int) []int64 {
	if total == 0 {
		return nil
	}
	if maxPoints <= 0 || total <= int64(maxPoints) {
		out := make([]int64, total)
		for i := range out {
			out[i] = int64(i)
		}
		return out
	}
	stride := (total + int64(maxPoints) - 1) / int64(maxPoints)
	var out []int64
	for i := int64(0); i < total; i += stride {
		out = append(out, i)
	}
	if out[len(out)-1] != total-1 {
		out = append(out, total-1)
	}
	return out
}

// runPoint replays the script with a cut at (idx, fate), recovers, and
// appends any violations to res.
func runPoint(cfg Config, script Script, idx int64, fate flash.Outcome, res *Result) {
	fail := func(stage string, err error) {
		res.Violations = append(res.Violations, Violation{Index: idx, Fate: fate, Stage: stage, Err: err})
	}
	st, err := buildStack(cfg, &flash.CutAt{Index: idx, Fate: fate})
	if err != nil {
		fail("replay", err)
		return
	}
	mod := newModel(cfg.BlockBytes)
	cut := false
	for i, op := range script {
		if err := st.apply(cfg, op); err != nil {
			if errors.Is(err, flash.ErrPowerCut) {
				cut = true
				break
			}
			fail("replay", fmt.Errorf("op %d: %w", i, err))
			return
		}
		mod.completed(op)
	}
	if !cut && !st.dev.Lost() {
		// The cut never fired (index at the workload's edge); nothing to
		// recover.
		return
	}

	// Power is gone: battery-backed DRAM dies with it in this worst-case
	// model, and recovery rebuilds everything from the flash array.
	st.dev.SetInjector(nil)
	st.dram.PowerFail()
	st.dev.Restore()
	st.dram.Restore()
	o := obs.New(0)
	eng, err := cfg.mountEngine(st.dev, st.clock, o)
	if err != nil {
		fail("mount", err)
		return
	}
	ms := eng.MountStats()
	res.ReErasedBlocks += ms.ReErasedBlocks
	res.CorruptRecords += ms.CorruptRecords
	res.RetiredBlocks += ms.RetiredBlocks
	m, err := storman.Mount(cfg.stormanConfig(o), st.clock, st.dram, eng)
	if err != nil {
		fail("mount", err)
		return
	}
	if err := eng.CheckInvariants(); err != nil {
		fail("invariants", err)
		return
	}
	if err := m.CheckInvariants(); err != nil {
		fail("invariants", err)
		return
	}
	for _, err := range mod.verify(m) {
		fail("data", err)
	}
	if err := usabilityPass(cfg, m, eng); err != nil {
		fail("usability", err)
	}
}

// usabilityPass proves the recovered stack still works: overwrite
// surviving blocks, write a fresh one, sync, read everything back, and
// re-check invariants.
func usabilityPass(cfg Config, m *storman.Manager, eng engine.Engine) error {
	keys := m.Keys()
	if len(keys) > 4 {
		keys = keys[:4]
	}
	fresh := storman.Key{Object: 999, Block: 0}
	keys = append(keys, fresh)
	for i, key := range keys {
		data := bytes.Repeat([]byte{byte(0xC0 + i)}, cfg.BlockBytes)
		if err := m.WriteBlock(key, data); err != nil {
			return fmt.Errorf("write %+v: %w", key, err)
		}
	}
	if err := m.Sync(); err != nil {
		return fmt.Errorf("sync: %w", err)
	}
	buf := make([]byte, cfg.BlockBytes)
	for i, key := range keys {
		n, err := m.ReadBlock(key, buf)
		if err != nil {
			return fmt.Errorf("read back %+v: %w", key, err)
		}
		want := bytes.Repeat([]byte{byte(0xC0 + i)}, cfg.BlockBytes)
		if !bytes.Equal(buf[:n], want[:n]) {
			return fmt.Errorf("read back %+v: wrong bytes", key)
		}
	}
	if err := eng.CheckInvariants(); err != nil {
		return fmt.Errorf("post-write invariants: %w", err)
	}
	return m.CheckInvariants()
}
