package crashtest

import (
	"bytes"
	"fmt"

	"ssmobile/internal/storman"
)

// keyState is the model's view of one block.
type keyState struct {
	// cur is the logical content the host last saw (what ReadBlock would
	// return before the crash).
	cur []byte
	// flashV is the padded image the last completed flush put on flash,
	// nil if the block never reached flash.
	flashV []byte
	// dirty means cur has changed since flashV was written — the block
	// sits in battery-backed DRAM and dies with power.
	dirty bool
}

// model tracks exactly what flash may hold at each crash point. It is
// exact — not an over-approximation — because in the harness's regime
// flash changes only inside barrier ops (Sync/Tick): a cut therefore
// always lands mid-barrier, where clean blocks are untouched on flash
// and dirty blocks are either pre- or post-flush.
type model struct {
	blockBytes int
	keys       map[storman.Key]*keyState
	// ghosts holds the flash images of deleted blocks. Deletes and trims
	// are in-memory bookkeeping at this layer — the record stays on flash
	// until the cleaner destroys it — so a deleted block may legitimately
	// resurrect after a crash, but only with an image it actually held.
	// The file system's own synced metadata is what makes deletes stick.
	ghosts map[storman.Key][][]byte
}

func newModel(blockBytes int) *model {
	return &model{
		blockBytes: blockBytes,
		keys:       make(map[storman.Key]*keyState),
		ghosts:     make(map[storman.Key][][]byte),
	}
}

func (mod *model) pad(v []byte) []byte {
	out := make([]byte, mod.blockBytes)
	copy(out, v)
	return out
}

// overlay applies a write over the current content, preserving the old
// tail beyond the new data — matching WriteBlock, which writes data over
// the page and grows (never shrinks) the stored size.
func overlay(cur, data []byte) []byte {
	if len(data) >= len(cur) {
		return append([]byte(nil), data...)
	}
	out := append([]byte(nil), cur...)
	copy(out, data)
	return out
}

func (mod *model) drop(key storman.Key) {
	ks := mod.keys[key]
	if ks == nil {
		return
	}
	if ks.flashV != nil {
		mod.ghosts[key] = append(mod.ghosts[key], ks.flashV)
	}
	delete(mod.keys, key)
}

// completed folds a successfully executed op into the model. Ops that
// error (the cut) are NOT folded: their effects stay visible only
// through the admissible sets below.
func (mod *model) completed(op Op) {
	switch op.Kind {
	case OpWrite:
		data := bytes.Repeat([]byte{op.Fill}, op.Size)
		ks := mod.keys[op.Key]
		if ks == nil {
			mod.keys[op.Key] = &keyState{cur: data, dirty: true}
			return
		}
		ks.cur = overlay(ks.cur, data)
		ks.dirty = true
	case OpTruncate:
		ks := mod.keys[op.Key]
		if ks == nil || op.Size >= len(ks.cur) {
			return
		}
		if op.Size <= 0 {
			mod.drop(op.Key)
			return
		}
		ks.cur = ks.cur[:op.Size]
	case OpDelete:
		mod.drop(op.Key)
	case OpDeleteObject:
		for key := range mod.keys {
			if key.Object == op.Key.Object {
				mod.drop(key)
			}
		}
	case OpSync, OpTick:
		// Barrier completed: every dirty block reached flash. (Tick
		// qualifies because the harness advances the clock past the
		// write-back delay first, aging every dirty block.)
		for _, ks := range mod.keys {
			if ks.dirty {
				ks.flashV = mod.pad(ks.cur)
				ks.dirty = false
			}
		}
	}
}

// verify compares the recovered manager against the model and returns
// every data violation.
//
// Clean blocks get an exact check: the cut could not have touched their
// flash image (writes buffer in DRAM, trims are in-memory, and the
// cleaner preserves content — a torn relocation leaves the still-valid
// source record behind, and the victim erase runs only after all copies
// land), so they must read back exactly flashV; if they were never
// flushed they must be absent. Dirty blocks were possibly mid-flush at
// the cut: they may hold the old image, the new one, a ghost from a
// pre-recreate life, or be absent if nothing of theirs ever fully
// reached flash. Deleted blocks may be absent or resurrect any ghost.
func (mod *model) verify(m *storman.Manager) []error {
	var errs []error
	recovered := make(map[storman.Key][]byte)
	buf := make([]byte, mod.blockBytes)
	for _, key := range m.Keys() {
		n, err := m.ReadBlock(key, buf)
		if err != nil {
			errs = append(errs, fmt.Errorf("read recovered block %+v: %w", key, err))
			continue
		}
		recovered[key] = mod.pad(buf[:n])
	}

	seen := make(map[storman.Key]bool)
	check := func(key storman.Key) {
		if seen[key] {
			return
		}
		seen[key] = true
		rec, present := recovered[key]
		ks := mod.keys[key]
		if ks == nil {
			// Deleted or never written: only ghost images may appear.
			if present && !imageIn(rec, mod.ghosts[key]) {
				errs = append(errs, fmt.Errorf("block %+v recovered with an image it never held on flash", key))
			}
			return
		}
		if !ks.dirty {
			if ks.flashV == nil {
				// Unreachable by construction: a clean block was flushed.
				errs = append(errs, fmt.Errorf("model bug: clean block %+v with no flash image", key))
				return
			}
			if !present {
				errs = append(errs, fmt.Errorf("flushed block %+v lost: absent after recovery", key))
			} else if !bytes.Equal(rec, ks.flashV) {
				errs = append(errs, fmt.Errorf("flushed block %+v corrupted: recovered image differs from its synced image at offset %d",
					key, firstDiff(rec, ks.flashV)))
			}
			return
		}
		// Dirty at the cut: old image, in-flight new image, or a ghost.
		admissible := [][]byte{mod.pad(ks.cur)}
		if ks.flashV != nil {
			admissible = append(admissible, ks.flashV)
		}
		admissible = append(admissible, mod.ghosts[key]...)
		if present {
			if !imageIn(rec, admissible) {
				errs = append(errs, fmt.Errorf("dirty block %+v recovered with an image it never held", key))
			}
		} else if ks.flashV != nil {
			errs = append(errs, fmt.Errorf("block %+v lost: had a synced image but is absent after recovery", key))
		}
	}
	for key := range mod.keys {
		check(key)
	}
	for key := range mod.ghosts {
		check(key)
	}
	for key := range recovered {
		check(key)
	}
	return errs
}

func imageIn(img []byte, set [][]byte) bool {
	for _, v := range set {
		if bytes.Equal(img, v) {
			return true
		}
	}
	return false
}

func firstDiff(a, b []byte) int {
	for i := range a {
		if i >= len(b) || a[i] != b[i] {
			return i
		}
	}
	return len(a)
}
