package crashtest

// DefaultScript is the reference workload for crash-point enumeration
// (experiment E11 and the CI crash suite). It mixes every operation the
// storage manager offers — writes, in-place overwrites, copy-on-write
// overwrites of flash-resident blocks, truncations (both of dirty and of
// flushed blocks), single-block deletes, whole-object deletes, explicit
// syncs and daemon ticks — and repeats enough churn that the translation
// layer's cleaner runs, so the enumeration space includes cleaning
// relocations and block erases, not just host-driven flushes.
//
// Scripts must keep object 999 free (the usability pass writes there)
// and must not hold more dirty blocks at once than Config.DRAMPages.
func DefaultScript() Script {
	return Script{
		// Populate two objects and make them durable.
		W(1, 0, 700, 0x11),
		W(1, 1, 1024, 0x22),
		W(1, 2, 300, 0x33),
		W(2, 0, 512, 0x44),
		S(),
		// Copy-on-write overwrites, a fresh block, and a truncation of a
		// flush-resident block (non-durable on its own).
		W(1, 0, 200, 0x55),
		W(2, 1, 900, 0x66),
		T(1, 1, 400),
		S(),
		// Delete a flushed block, recreate it, and let the daemon flush.
		D(1, 2),
		W(1, 2, 1000, 0x77),
		W(2, 2, 640, 0x88),
		Tk(),
		// Overwrite churn.
		W(1, 0, 1024, 0x99),
		W(1, 1, 800, 0xAB),
		W(2, 0, 450, 0xCD),
		S(),
		// Drop a whole object, reuse its space, truncate a dirty block.
		DObj(2),
		W(2, 0, 333, 0xEF),
		W(1, 3, 1024, 0x21),
		T(1, 3, 256),
		S(),
		// More churn to push the device into cleaning.
		W(1, 0, 600, 0x43),
		W(1, 1, 512, 0x65),
		S(),
		W(1, 0, 777, 0x87),
		W(1, 2, 888, 0xA9),
		S(),
		W(1, 1, 999, 0xCB),
		W(1, 3, 444, 0xED),
		Tk(),
	}
}
