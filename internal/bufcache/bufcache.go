// Package bufcache implements the classic Unix-style file buffer cache
// that conventional disk-based organisations need and the paper's
// solid-state organisation eliminates ("traditional file system caches
// are unnecessary because all data and metadata always reside in fast
// storage", §3.1).
//
// The cache holds disk blocks in a region of the DRAM device — the very
// data duplication the paper wants to do away with — serving reads from
// DRAM on hit and paying full mechanical latency on miss. Writes are
// write-back with the 30-second-style delayed flush, or write-through for
// callers (metadata) that demand durability.
package bufcache

import (
	"container/list"
	"errors"
	"fmt"

	"ssmobile/internal/dram"
	"ssmobile/internal/obs"
	"ssmobile/internal/sim"
)

// ErrBadBlock reports an access outside the backing device.
var ErrBadBlock = errors.New("bufcache: block out of range")

// Backing is the device behind the cache (a disk).
type Backing interface {
	Read(addr int64, buf []byte) (sim.Duration, error)
	Write(addr int64, p []byte) (sim.Duration, error)
	Capacity() int64
}

// Config parameterises the cache.
type Config struct {
	// BlockBytes is the cache block size.
	BlockBytes int
	// DRAMBase and DRAMBytes delimit the cache's region of the DRAM
	// device; the capacity in blocks is DRAMBytes/BlockBytes.
	DRAMBase  int64
	DRAMBytes int64
	// WriteBackDelay is the age at which dirty blocks are flushed by
	// Tick; zero keeps them until eviction or Sync.
	WriteBackDelay sim.Duration
	// Obs receives the cache's metrics and op spans; nil falls back to
	// obs.Default().
	Obs *obs.Observer
}

// Stats aggregates cache counters.
type Stats struct {
	Hits, Misses  int64
	ReadBlocks    int64
	WrittenBlocks int64 // blocks the host wrote
	FlushedBlocks int64 // blocks written to the backing device
	WriteThroughs int64
	Evictions     int64
}

// HitRate reports hits / (hits+misses).
func (s Stats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

type centry struct {
	bn         int64
	slot       int
	dirty      bool
	dirtySince sim.Time
	lruElem    *list.Element
}

// Cache is the buffer cache. Not safe for concurrent use.
type Cache struct {
	cfg     Config
	clock   *sim.Clock
	dram    *dram.Device
	backing Backing

	entries   map[int64]*centry
	lru       *list.List // front = least recently used
	freeSlots []int
	slots     int

	obs                          *obs.Observer
	hits, misses, readBlocks     *obs.Counter
	writtenBlocks, flushedBlocks *obs.Counter
	writeThroughs, evictions     *obs.Counter
}

// New builds an empty cache over backing.
func New(cfg Config, clock *sim.Clock, dramDev *dram.Device, backing Backing) (*Cache, error) {
	if cfg.BlockBytes <= 0 {
		return nil, fmt.Errorf("bufcache: non-positive block size")
	}
	if cfg.DRAMBase < 0 || cfg.DRAMBase+cfg.DRAMBytes > dramDev.Capacity() {
		return nil, fmt.Errorf("bufcache: region outside DRAM")
	}
	o := obs.Or(cfg.Obs)
	lbl := obs.Labels{"layer": "bufcache"}
	blk := func(op string) obs.Labels { return obs.Labels{"layer": "bufcache", "op": op} }
	c := &Cache{
		cfg:           cfg,
		clock:         clock,
		dram:          dramDev,
		backing:       backing,
		entries:       make(map[int64]*centry),
		lru:           list.New(),
		slots:         int(cfg.DRAMBytes / int64(cfg.BlockBytes)),
		obs:           o,
		hits:          o.Counter("cache_hits_total", lbl),
		misses:        o.Counter("cache_misses_total", lbl),
		readBlocks:    o.Counter("blocks_total", blk("read")),
		writtenBlocks: o.Counter("blocks_total", blk("write")),
		flushedBlocks: o.Counter("blocks_total", blk("flush")),
		writeThroughs: o.Counter("blocks_total", blk("write_through")),
		evictions:     o.Counter("evictions_total", lbl),
	}
	for s := c.slots - 1; s >= 0; s-- {
		c.freeSlots = append(c.freeSlots, s)
	}
	return c, nil
}

// BlockBytes reports the cache block size.
func (c *Cache) BlockBytes() int { return c.cfg.BlockBytes }

// Blocks reports the backing capacity in blocks.
func (c *Cache) Blocks() int64 { return c.backing.Capacity() / int64(c.cfg.BlockBytes) }

func (c *Cache) slotAddr(slot int) int64 {
	return c.cfg.DRAMBase + int64(slot)*int64(c.cfg.BlockBytes)
}

func (c *Cache) diskAddr(bn int64) int64 { return bn * int64(c.cfg.BlockBytes) }

func (c *Cache) checkBlock(bn int64) error {
	if bn < 0 || bn >= c.Blocks() {
		return fmt.Errorf("%w: %d of %d", ErrBadBlock, bn, c.Blocks())
	}
	return nil
}

// allocSlot returns a cache slot, evicting the LRU entry if needed.
func (c *Cache) allocSlot() (int, error) {
	if n := len(c.freeSlots); n > 0 {
		s := c.freeSlots[n-1]
		c.freeSlots = c.freeSlots[:n-1]
		return s, nil
	}
	el := c.lru.Front()
	if el == nil {
		return 0, fmt.Errorf("bufcache: no slots and nothing to evict")
	}
	e := el.Value.(*centry)
	c.evictions.Inc()
	if e.dirty {
		if err := c.flushEntry(e); err != nil {
			return 0, err
		}
	}
	c.lru.Remove(e.lruElem)
	delete(c.entries, e.bn)
	return e.slot, nil
}

// span opens an op span against the cache's clock and the DRAM device's
// energy meter (shared with the backing disk in assembled systems).
func (c *Cache) span(op string) obs.SpanRef {
	return c.obs.Span(c.clock, c.dram.Meter(), "bufcache", op)
}

// flushEntry writes the entry's contents to the backing device.
func (c *Cache) flushEntry(e *centry) (err error) {
	sp := c.span("flush")
	defer func() { sp.End(int64(c.cfg.BlockBytes), err) }()
	buf := make([]byte, c.cfg.BlockBytes)
	if _, err := c.dram.Read(c.slotAddr(e.slot), buf); err != nil {
		return err
	}
	if _, err := c.backing.Write(c.diskAddr(e.bn), buf); err != nil {
		return err
	}
	e.dirty = false
	c.flushedBlocks.Inc()
	return nil
}

// load brings the block into the cache and returns its entry.
func (c *Cache) load(bn int64, fill bool) (*centry, error) {
	if e, ok := c.entries[bn]; ok {
		c.hits.Inc()
		c.lru.MoveToBack(e.lruElem)
		return e, nil
	}
	c.misses.Inc()
	slot, err := c.allocSlot()
	if err != nil {
		return nil, err
	}
	if fill {
		buf := make([]byte, c.cfg.BlockBytes)
		if _, err := c.backing.Read(c.diskAddr(bn), buf); err != nil {
			return nil, err
		}
		if _, err := c.dram.Write(c.slotAddr(slot), buf); err != nil {
			return nil, err
		}
	}
	e := &centry{bn: bn, slot: slot}
	e.lruElem = c.lru.PushBack(e)
	c.entries[bn] = e
	return e, nil
}

// ReadBlock fetches block bn into buf (one block).
func (c *Cache) ReadBlock(bn int64, buf []byte) (err error) {
	if err := c.checkBlock(bn); err != nil {
		return err
	}
	sp := c.span("read_block")
	defer func() { sp.End(int64(len(buf)), err) }()
	e, err := c.load(bn, true)
	if err != nil {
		return err
	}
	c.readBlocks.Inc()
	n := len(buf)
	if n > c.cfg.BlockBytes {
		n = c.cfg.BlockBytes
	}
	_, err = c.dram.Read(c.slotAddr(e.slot), buf[:n])
	return err
}

// WriteBlock stores one whole block, write-back.
func (c *Cache) WriteBlock(bn int64, data []byte) error {
	return c.writeBlock(bn, data, false)
}

// WriteBlockThrough stores one block and forces it to the backing device
// immediately (synchronous metadata updates in the conventional FS).
func (c *Cache) WriteBlockThrough(bn int64, data []byte) error {
	return c.writeBlock(bn, data, true)
}

func (c *Cache) writeBlock(bn int64, data []byte, through bool) (err error) {
	if err := c.checkBlock(bn); err != nil {
		return err
	}
	if len(data) > c.cfg.BlockBytes {
		return fmt.Errorf("bufcache: data of %d exceeds block size %d", len(data), c.cfg.BlockBytes)
	}
	sp := c.span("write_block")
	defer func() { sp.End(int64(len(data)), err) }()
	// Partial block writes need the old contents under them.
	fill := len(data) < c.cfg.BlockBytes
	e, err := c.load(bn, fill)
	if err != nil {
		return err
	}
	if _, err := c.dram.Write(c.slotAddr(e.slot), data); err != nil {
		return err
	}
	c.writtenBlocks.Inc()
	if through {
		c.writeThroughs.Inc()
		return c.flushEntry(e)
	}
	if !e.dirty {
		e.dirty = true
		e.dirtySince = c.clock.Now()
	}
	return nil
}

// Tick flushes blocks dirty longer than the write-back delay.
func (c *Cache) Tick() error {
	if c.cfg.WriteBackDelay <= 0 {
		return nil
	}
	now := c.clock.Now()
	for el := c.lru.Front(); el != nil; el = el.Next() {
		e := el.Value.(*centry)
		if e.dirty && now.Sub(e.dirtySince) >= c.cfg.WriteBackDelay {
			if err := c.flushEntry(e); err != nil {
				return err
			}
		}
	}
	return nil
}

// Sync flushes every dirty block.
func (c *Cache) Sync() error {
	for el := c.lru.Front(); el != nil; el = el.Next() {
		e := el.Value.(*centry)
		if e.dirty {
			if err := c.flushEntry(e); err != nil {
				return err
			}
		}
	}
	return nil
}

// Invalidate drops the block from the cache without flushing (freed
// blocks of deleted files).
func (c *Cache) Invalidate(bn int64) {
	if e, ok := c.entries[bn]; ok {
		c.lru.Remove(e.lruElem)
		delete(c.entries, bn)
		c.freeSlots = append(c.freeSlots, e.slot)
	}
}

// Stats summarises cache counters.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:          c.hits.Value(),
		Misses:        c.misses.Value(),
		ReadBlocks:    c.readBlocks.Value(),
		WrittenBlocks: c.writtenBlocks.Value(),
		FlushedBlocks: c.flushedBlocks.Value(),
		WriteThroughs: c.writeThroughs.Value(),
		Evictions:     c.evictions.Value(),
	}
}
