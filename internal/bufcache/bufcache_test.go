package bufcache

import (
	"bytes"
	"errors"
	"testing"

	"ssmobile/internal/device"
	"ssmobile/internal/disk"
	"ssmobile/internal/dram"
	"ssmobile/internal/sim"
)

type rig struct {
	clock *sim.Clock
	meter *sim.EnergyMeter
	dram  *dram.Device
	disk  *disk.Device
	cache *Cache
}

func newRig(t *testing.T, cacheBytes int64, delay sim.Duration) *rig {
	t.Helper()
	clock := sim.NewClock()
	meter := sim.NewEnergyMeter()
	dr, err := dram.New(dram.Config{CapacityBytes: 4 << 20, Params: device.NECDram}, clock, meter)
	if err != nil {
		t.Fatal(err)
	}
	dk, err := disk.New(disk.Config{CapacityBytes: 8 << 20, Params: device.KittyHawk}, clock, meter)
	if err != nil {
		t.Fatal(err)
	}
	c, err := New(Config{BlockBytes: 4096, DRAMBase: 0, DRAMBytes: cacheBytes, WriteBackDelay: delay}, clock, dr, dk)
	if err != nil {
		t.Fatal(err)
	}
	return &rig{clock: clock, meter: meter, dram: dr, disk: dk, cache: c}
}

func blockOf(b byte) []byte { return bytes.Repeat([]byte{b}, 4096) }

func TestValidation(t *testing.T) {
	r := newRig(t, 1<<20, 0)
	if _, err := New(Config{BlockBytes: 0}, r.clock, r.dram, r.disk); err == nil {
		t.Error("zero block size accepted")
	}
	if _, err := New(Config{BlockBytes: 4096, DRAMBase: 1 << 40}, r.clock, r.dram, r.disk); err == nil {
		t.Error("region outside DRAM accepted")
	}
}

func TestWriteReadThroughCache(t *testing.T) {
	r := newRig(t, 1<<20, 0)
	if err := r.cache.WriteBlock(5, blockOf(0xAB)); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4096)
	if err := r.cache.ReadBlock(5, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 0xAB {
		t.Fatal("read wrong data")
	}
	// Dirty data has not reached the disk yet.
	if r.disk.Peek(5*4096) == 0xAB {
		t.Fatal("write-back cache wrote through")
	}
	if err := r.cache.Sync(); err != nil {
		t.Fatal(err)
	}
	if r.disk.Peek(5*4096) != 0xAB {
		t.Fatal("sync did not reach disk")
	}
}

func TestWriteThrough(t *testing.T) {
	r := newRig(t, 1<<20, 0)
	if err := r.cache.WriteBlockThrough(3, blockOf(0x77)); err != nil {
		t.Fatal(err)
	}
	if r.disk.Peek(3*4096) != 0x77 {
		t.Fatal("write-through did not reach disk")
	}
	if r.cache.Stats().WriteThroughs != 1 {
		t.Fatal("write-through not counted")
	}
}

func TestHitAvoidsDisk(t *testing.T) {
	r := newRig(t, 1<<20, 0)
	buf := make([]byte, 4096)
	if err := r.cache.ReadBlock(1, buf); err != nil { // miss
		t.Fatal(err)
	}
	missLatStart := r.clock.Now()
	if err := r.cache.ReadBlock(1, buf); err != nil { // hit
		t.Fatal(err)
	}
	hitLat := r.clock.Now().Sub(missLatStart)
	if hitLat > sim.Millisecond {
		t.Fatalf("cache hit took %v; should be DRAM speed", hitLat)
	}
	s := r.cache.Stats()
	if s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("stats %+v", s)
	}
	if s.HitRate() != 0.5 {
		t.Fatalf("hit rate %v", s.HitRate())
	}
}

func TestEvictionWritesDirtyBack(t *testing.T) {
	// Cache of 2 blocks.
	r := newRig(t, 2*4096, 0)
	if err := r.cache.WriteBlock(0, blockOf(1)); err != nil {
		t.Fatal(err)
	}
	if err := r.cache.WriteBlock(1, blockOf(2)); err != nil {
		t.Fatal(err)
	}
	if err := r.cache.WriteBlock(2, blockOf(3)); err != nil { // evicts block 0
		t.Fatal(err)
	}
	if r.disk.Peek(0) != 1 {
		t.Fatal("evicted dirty block not written back")
	}
	if r.cache.Stats().Evictions != 1 {
		t.Fatal("eviction not counted")
	}
	// All three blocks still correct.
	buf := make([]byte, 4096)
	for bn := int64(0); bn < 3; bn++ {
		if err := r.cache.ReadBlock(bn, buf); err != nil {
			t.Fatal(err)
		}
		if buf[0] != byte(bn+1) {
			t.Fatalf("block %d corrupted", bn)
		}
	}
}

func TestTickFlushesAged(t *testing.T) {
	r := newRig(t, 1<<20, 30*sim.Second)
	if err := r.cache.WriteBlock(7, blockOf(9)); err != nil {
		t.Fatal(err)
	}
	if err := r.cache.Tick(); err != nil {
		t.Fatal(err)
	}
	if r.disk.Peek(7*4096) == 9 {
		t.Fatal("young block flushed early")
	}
	r.clock.Advance(31 * sim.Second)
	if err := r.cache.Tick(); err != nil {
		t.Fatal(err)
	}
	if r.disk.Peek(7*4096) != 9 {
		t.Fatal("aged block not flushed")
	}
}

func TestInvalidateDropsWithoutFlush(t *testing.T) {
	r := newRig(t, 1<<20, 0)
	if err := r.cache.WriteBlock(4, blockOf(0xEE)); err != nil {
		t.Fatal(err)
	}
	r.cache.Invalidate(4)
	if err := r.cache.Sync(); err != nil {
		t.Fatal(err)
	}
	if r.disk.Peek(4*4096) == 0xEE {
		t.Fatal("invalidated block reached disk")
	}
}

func TestPartialWritePreservesRest(t *testing.T) {
	r := newRig(t, 1<<20, 0)
	if err := r.cache.WriteBlock(2, blockOf(0x11)); err != nil {
		t.Fatal(err)
	}
	if err := r.cache.Sync(); err != nil {
		t.Fatal(err)
	}
	// Drop it from cache so the partial write must re-read from disk.
	r.cache.Invalidate(2)
	if err := r.cache.WriteBlock(2, []byte{0x22, 0x22}); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if err := r.cache.ReadBlock(2, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, []byte{0x22, 0x22, 0x11, 0x11}) {
		t.Fatalf("partial write result %x", buf)
	}
}

func TestOutOfRange(t *testing.T) {
	r := newRig(t, 1<<20, 0)
	if err := r.cache.ReadBlock(r.cache.Blocks(), make([]byte, 4096)); !errors.Is(err, ErrBadBlock) {
		t.Error("read past end accepted")
	}
	if err := r.cache.WriteBlock(-1, blockOf(0)); !errors.Is(err, ErrBadBlock) {
		t.Error("negative block accepted")
	}
}
