package fs

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"

	"ssmobile/internal/dram"
	"ssmobile/internal/obs"
	"ssmobile/internal/sim"
	"ssmobile/internal/storman"
)

// The recovery box is a reserved region of battery-backed DRAM holding a
// full metadata snapshot plus a journal of mutations since that snapshot,
// both CRC-protected (the paper cites Baker & Sullivan's Recovery Box for
// exactly this role). Because the region lives in the simulated DRAM
// device, it survives OS crashes but not power failures, matching the
// paper's stability model.
//
// Region layout:
//
//	[ 0, 8)  magic
//	[ 8,16)  snapshot length
//	[16,24)  snapshot CRC32 (low 32 bits)
//	[24,32)  journal length
//	[32,40)  journal CRC32
//	[40, 40+snapCap)         snapshot area
//	[40+snapCap, regionEnd)  journal area
const (
	rboxMagic  = "SSMRBOX1"
	rboxHeader = 40
)

// ErrCorruptRBox reports a recovery box that fails validation.
var ErrCorruptRBox = errors.New("fs: recovery box corrupt")

// journal record types.
const (
	recCreate byte = iota + 1
	recRemove
	recRename
	recSetSize
	recLink
)

type snapshotState struct {
	NextIno uint64
	Inodes  map[uint64]*Inode
}

type rbox struct {
	clock *sim.Clock
	dev   *dram.Device
	base  int64
	size  int64

	snapBase, snapCap int64
	jBase, jCap       int64

	jLen    int64
	jCRC    uint32
	encBuf  []byte // reusable snapshot-encoding buffer
	records int

	snapLen int64
	snapCRC uint32
}

func newRBox(cfg Config, clock *sim.Clock, dev *dram.Device) (*rbox, error) {
	if cfg.RBoxBytes < rboxHeader+1024 {
		return nil, fmt.Errorf("fs: recovery box of %d bytes too small", cfg.RBoxBytes)
	}
	if cfg.RBoxBase < 0 || cfg.RBoxBase+cfg.RBoxBytes > dev.Capacity() {
		return nil, fmt.Errorf("fs: recovery box outside DRAM")
	}
	usable := cfg.RBoxBytes - rboxHeader
	snapCap := usable / 2
	r := &rbox{
		clock:    clock,
		dev:      dev,
		base:     cfg.RBoxBase,
		size:     cfg.RBoxBytes,
		snapBase: cfg.RBoxBase + rboxHeader,
		snapCap:  snapCap,
	}
	r.jBase = r.snapBase + snapCap
	r.jCap = usable - snapCap
	return r, nil
}

func encodeState(st snapshotState) ([]byte, error) {
	return appendState(nil, st)
}

func decodeState(p []byte) (snapshotState, error) {
	var st snapshotState
	err := gob.NewDecoder(bytes.NewReader(p)).Decode(&st)
	return st, err
}

// writeHeader rewrites the header fields after a snapshot or append. The
// header buffer lives on the stack: the DRAM device copies it out.
func (r *rbox) writeHeader(snapLen int64, snapCRC uint32) error {
	var hdrArr [rboxHeader]byte
	hdr := hdrArr[:]
	copy(hdr, rboxMagic)
	binary.LittleEndian.PutUint64(hdr[8:], uint64(snapLen))
	binary.LittleEndian.PutUint64(hdr[16:], uint64(snapCRC))
	binary.LittleEndian.PutUint64(hdr[24:], uint64(r.jLen))
	binary.LittleEndian.PutUint64(hdr[32:], uint64(r.jCRC))
	_, err := r.dev.Write(r.base, hdr)
	return err
}

// snapshot serialises the full metadata state and resets the journal.
// The encoding reuses the box's buffer, so steady-state rollovers do
// not allocate.
func (r *rbox) snapshot(st snapshotState) error {
	var err error
	r.encBuf, err = appendState(r.encBuf[:0], st)
	if err != nil {
		return err
	}
	data := r.encBuf
	if int64(len(data)) > r.snapCap {
		return fmt.Errorf("%w: snapshot of %d exceeds %d", ErrRBoxFull, len(data), r.snapCap)
	}
	if _, err := r.dev.Write(r.snapBase, data); err != nil {
		return err
	}
	r.jLen = 0
	r.jCRC = 0
	r.records = 0
	r.snapLen = int64(len(data))
	r.snapCRC = crc32.ChecksumIEEE(data)
	return r.writeHeader(r.snapLen, r.snapCRC)
}

// append adds one journal record; the caller snapshots first if it will
// not fit.
func (r *rbox) append(rec []byte) error {
	if r.jLen+int64(len(rec)) > r.jCap {
		return ErrRBoxFull
	}
	if _, err := r.dev.Write(r.jBase+r.jLen, rec); err != nil {
		return err
	}
	r.jLen += int64(len(rec))
	r.jCRC = crc32.Update(r.jCRC, crc32.IEEETable, rec)
	r.records++
	return r.writeHeader(r.snapLen, r.snapCRC)
}

// encodeRecord packs one journal record.
func encodeRecord(kind byte, a, b, c uint64, s1, s2 string) []byte {
	return appendRecord(make([]byte, 0, 1+24+4+len(s1)+len(s2)), kind, a, b, c, s1, s2)
}

// appendRecord packs one journal record onto rec, reusing its capacity.
func appendRecord(rec []byte, kind byte, a, b, c uint64, s1, s2 string) []byte {
	rec = append(rec, kind)
	rec = binary.LittleEndian.AppendUint64(rec, a)
	rec = binary.LittleEndian.AppendUint64(rec, b)
	rec = binary.LittleEndian.AppendUint64(rec, c)
	rec = binary.LittleEndian.AppendUint16(rec, uint16(len(s1)))
	rec = append(rec, s1...)
	rec = binary.LittleEndian.AppendUint16(rec, uint16(len(s2)))
	rec = append(rec, s2...)
	return rec
}

type journalRecord struct {
	kind    byte
	a, b, c uint64
	s1, s2  string
}

func decodeRecords(p []byte) ([]journalRecord, error) {
	var out []journalRecord
	for len(p) > 0 {
		if len(p) < 29 {
			return nil, fmt.Errorf("%w: truncated record", ErrCorruptRBox)
		}
		var rec journalRecord
		rec.kind = p[0]
		rec.a = binary.LittleEndian.Uint64(p[1:])
		rec.b = binary.LittleEndian.Uint64(p[9:])
		rec.c = binary.LittleEndian.Uint64(p[17:])
		n1 := int(binary.LittleEndian.Uint16(p[25:]))
		p = p[27:]
		if len(p) < n1+2 {
			return nil, fmt.Errorf("%w: truncated name", ErrCorruptRBox)
		}
		rec.s1 = string(p[:n1])
		n2 := int(binary.LittleEndian.Uint16(p[n1:]))
		p = p[n1+2:]
		if len(p) < n2 {
			return nil, fmt.Errorf("%w: truncated name", ErrCorruptRBox)
		}
		rec.s2 = string(p[:n2])
		p = p[n2:]
		out = append(out, rec)
	}
	return out, nil
}

// snapshotState captures the current metadata for serialisation.
func (f *FS) snapshotState() snapshotState {
	return snapshotState{NextIno: f.nextIno, Inodes: f.inodes}
}

// journal records one metadata mutation in the recovery box, taking a
// fresh snapshot when the journal is long or full.
func (f *FS) journal(kind byte, a, b, c uint64, s1, s2 string) error {
	if f.rbox == nil {
		return nil
	}
	if f.rbox.records >= f.cfg.SnapshotEvery {
		if err := f.rbox.snapshot(f.snapshotState()); err != nil {
			return err
		}
		return nil // the snapshot already includes this mutation
	}
	f.recBuf = appendRecord(f.recBuf[:0], kind, a, b, c, s1, s2)
	err := f.rbox.append(f.recBuf)
	if errors.Is(err, ErrRBoxFull) {
		return f.rbox.snapshot(f.snapshotState())
	}
	return err
}

// applyRecord replays one journal record onto the metadata.
func applyRecord(st *snapshotState, rec journalRecord) error {
	switch rec.kind {
	case recCreate:
		node := &Inode{Ino: rec.a, Kind: Kind(rec.c), Nlink: 1}
		if node.Kind == KindDir {
			node.Entries = make(map[string]uint64)
		}
		st.Inodes[rec.a] = node
		parent := st.Inodes[rec.b]
		if parent == nil || parent.Kind != KindDir {
			return fmt.Errorf("%w: create under missing or non-dir inode %d", ErrCorruptRBox, rec.b)
		}
		parent.Entries[rec.s1] = rec.a
		if rec.a >= st.NextIno {
			st.NextIno = rec.a + 1
		}
	case recLink:
		node := st.Inodes[rec.a]
		parent := st.Inodes[rec.b]
		if node == nil || parent == nil || parent.Kind != KindDir {
			return fmt.Errorf("%w: link across missing or non-dir inodes", ErrCorruptRBox)
		}
		parent.Entries[rec.s1] = rec.a
		node.Nlink++
	case recRemove:
		if parent := st.Inodes[rec.b]; parent != nil {
			delete(parent.Entries, rec.s1)
		}
		if node := st.Inodes[rec.a]; node != nil {
			node.Nlink--
			if node.Nlink <= 0 {
				delete(st.Inodes, rec.a)
			}
		}
	case recRename:
		oldParent, newParent := st.Inodes[rec.b], st.Inodes[rec.c]
		if oldParent == nil || newParent == nil ||
			oldParent.Kind != KindDir || newParent.Kind != KindDir {
			return fmt.Errorf("%w: rename across missing or non-dir inodes", ErrCorruptRBox)
		}
		delete(oldParent.Entries, rec.s1)
		newParent.Entries[rec.s2] = rec.a
	case recSetSize:
		if node := st.Inodes[rec.a]; node != nil {
			node.Size = int64(rec.b)
			node.MtimeNs = int64(rec.c)
		}
	default:
		return fmt.Errorf("%w: unknown record kind %d", ErrCorruptRBox, rec.kind)
	}
	return nil
}

// RecoverAfterCrash rebuilds a file system from the recovery box after an
// operating-system crash. The DRAM contents (and with them the storage
// manager's state) survived; only the in-core FS object was lost.
func RecoverAfterCrash(cfg Config, clock *sim.Clock, sm *storman.Manager, dramDev *dram.Device) (*FS, error) {
	if cfg.SnapshotEvery <= 0 {
		cfg.SnapshotEvery = 512
	}
	rb, err := newRBox(cfg, clock, dramDev)
	if err != nil {
		return nil, err
	}
	hdr := make([]byte, rboxHeader)
	if _, err := dramDev.Read(rb.base, hdr); err != nil {
		return nil, err
	}
	if string(hdr[:8]) != rboxMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorruptRBox)
	}
	snapLen := int64(binary.LittleEndian.Uint64(hdr[8:]))
	snapCRC := uint32(binary.LittleEndian.Uint64(hdr[16:]))
	jLen := int64(binary.LittleEndian.Uint64(hdr[24:]))
	jCRC := uint32(binary.LittleEndian.Uint64(hdr[32:]))
	if snapLen < 0 || snapLen > rb.snapCap || jLen < 0 || jLen > rb.jCap {
		return nil, fmt.Errorf("%w: bad lengths", ErrCorruptRBox)
	}
	snap := make([]byte, snapLen)
	if _, err := dramDev.Read(rb.snapBase, snap); err != nil {
		return nil, err
	}
	if crc32.ChecksumIEEE(snap) != snapCRC {
		return nil, fmt.Errorf("%w: snapshot checksum", ErrCorruptRBox)
	}
	st, err := decodeState(snap)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorruptRBox, err)
	}
	journalBytes := make([]byte, jLen)
	if _, err := dramDev.Read(rb.jBase, journalBytes); err != nil {
		return nil, err
	}
	if crc32.ChecksumIEEE(journalBytes) != jCRC {
		return nil, fmt.Errorf("%w: journal checksum", ErrCorruptRBox)
	}
	records, err := decodeRecords(journalBytes)
	if err != nil {
		return nil, err
	}
	for _, rec := range records {
		if err := applyRecord(&st, rec); err != nil {
			return nil, err
		}
	}
	f := &FS{
		cfg:     cfg,
		clock:   clock,
		sm:      sm,
		dram:    dramDev,
		nextIno: st.NextIno,
		inodes:  st.Inodes,
		rbox:    rb,
	}
	// Start a fresh snapshot so the journal is clean going forward.
	if err := f.rbox.snapshot(f.snapshotState()); err != nil {
		return nil, err
	}
	return f, nil
}

// Checkpoint persists the metadata to flash through the storage manager's
// reserved metadata object. Combined with the data the write-back policy
// has migrated, this bounds what a power failure can destroy.
func (f *FS) Checkpoint() error {
	// The checkpoint stream is filesystem metadata: charge its flash
	// programs to the metadata cause, overriding any enclosing sync scope.
	defer f.obs.PushCause(obs.CauseMetadata)()
	if cap(f.ckptBuf) < 8 {
		f.ckptBuf = make([]byte, 8, 256)
	}
	framed, err := appendState(f.ckptBuf[:8], f.snapshotState())
	if err != nil {
		return err
	}
	f.ckptBuf = framed
	bs := f.BlockBytes()
	binary.LittleEndian.PutUint64(framed, uint64(len(framed)-8))

	var blk int64
	for off := 0; off < len(framed); off += bs {
		end := off + bs
		if end > len(framed) {
			end = len(framed)
		}
		if err := f.sm.WriteBlock(storman.Key{Object: metaObject, Block: blk}, framed[off:end]); err != nil {
			return err
		}
		blk++
	}
	// Drop stale checkpoint blocks from a previously larger checkpoint.
	for old := blk; old < f.metaCheckpointBlocks; old++ {
		if err := f.sm.DeleteBlock(storman.Key{Object: metaObject, Block: old}); err != nil {
			return err
		}
	}
	f.metaCheckpointBlocks = blk
	return f.sm.SyncObject(metaObject)
}

// Sync checkpoints the metadata and migrates all dirty data to flash: the
// full "make everything stable" operation.
func (f *FS) Sync() (err error) {
	sp := f.span("sync")
	defer func() { sp.End(0, err) }()
	f.syncs.Inc()
	if err := f.Checkpoint(); err != nil {
		return err
	}
	return f.sm.Sync()
}

// RecoverAfterPowerFailure rebuilds a file system from the flash
// checkpoint after a power failure destroyed DRAM. It restores the DRAM
// device, reverts the storage manager to flash-resident state, loads the
// last metadata checkpoint, and reaps orphaned objects. It returns the
// recovered file system and the number of data bytes lost.
func RecoverAfterPowerFailure(cfg Config, clock *sim.Clock, sm *storman.Manager, dramDev *dram.Device) (*FS, int64, error) {
	lost := sm.PowerFailRecover()
	dramDev.Restore()

	// Read the checkpoint: block 0 carries the length frame.
	bs := sm.BlockBytes()
	head := make([]byte, bs)
	n, err := sm.ReadBlock(storman.Key{Object: metaObject, Block: 0}, head)
	if err != nil {
		return nil, lost, err
	}
	var st snapshotState
	var ckptBlocks int64
	if n >= 8 {
		dataLen := int64(binary.LittleEndian.Uint64(head))
		framed := make([]byte, 8+dataLen)
		copy(framed, head[:n])
		for off := int64(n); off < int64(len(framed)); {
			blk := off / int64(bs)
			got, err := sm.ReadBlock(storman.Key{Object: metaObject, Block: blk}, framed[blk*int64(bs):])
			if err != nil {
				return nil, lost, err
			}
			if got == 0 {
				return nil, lost, fmt.Errorf("%w: checkpoint truncated", ErrCorruptRBox)
			}
			off = blk*int64(bs) + int64(got)
		}
		st, err = decodeState(framed[8:])
		if err != nil {
			return nil, lost, fmt.Errorf("%w: checkpoint: %v", ErrCorruptRBox, err)
		}
		ckptBlocks = (int64(len(framed)) + int64(bs) - 1) / int64(bs)
	} else {
		// No checkpoint was ever taken: recover to an empty file system.
		st = snapshotState{
			NextIno: RootIno + 1,
			Inodes:  map[uint64]*Inode{RootIno: {Ino: RootIno, Kind: KindDir, Entries: make(map[string]uint64)}},
		}
	}

	if cfg.SnapshotEvery <= 0 {
		cfg.SnapshotEvery = 512
	}
	f := &FS{
		cfg:                  cfg,
		clock:                clock,
		sm:                   sm,
		dram:                 dramDev,
		nextIno:              st.NextIno,
		inodes:               st.Inodes,
		metaCheckpointBlocks: ckptBlocks,
	}
	if cfg.RBoxBytes > 0 {
		rb, err := newRBox(cfg, clock, dramDev)
		if err != nil {
			return nil, lost, err
		}
		f.rbox = rb
		if err := f.rbox.snapshot(f.snapshotState()); err != nil {
			return nil, lost, err
		}
	}

	// Reap objects that belong to no surviving inode: files created after
	// the checkpoint whose data partially reached flash.
	for _, obj := range sm.Objects() {
		if obj == metaObject {
			continue
		}
		if _, ok := f.inodes[obj]; !ok {
			if err := sm.DeleteObject(obj); err != nil {
				return nil, lost, err
			}
		}
	}
	return f, lost, nil
}
