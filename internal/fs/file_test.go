package fs

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

func TestOpenValidation(t *testing.T) {
	r := newFS(t)
	if _, err := r.fs.Open("/missing"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("open missing: %v", err)
	}
	if err := r.fs.Mkdir("/d"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.fs.Open("/d"); !errors.Is(err, ErrIsDir) {
		t.Fatalf("open dir: %v", err)
	}
}

func TestFileReadWriteCursor(t *testing.T) {
	r := newFS(t)
	h, err := r.fs.OpenFile("/cursor")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Write([]byte("hello ")); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Write([]byte("world")); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Seek(0, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(h)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello world" {
		t.Fatalf("read %q", got)
	}
	if size, _ := h.Size(); size != 11 {
		t.Fatalf("size %d", size)
	}
}

func TestFileSeekWhence(t *testing.T) {
	r := newFS(t)
	h, err := r.fs.OpenFile("/seek")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Write([]byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	if pos, _ := h.Seek(-3, io.SeekEnd); pos != 7 {
		t.Fatalf("SeekEnd pos %d", pos)
	}
	buf := make([]byte, 3)
	if _, err := io.ReadFull(h, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "789" {
		t.Fatalf("tail %q", buf)
	}
	if pos, _ := h.Seek(-1, io.SeekCurrent); pos != 9 {
		t.Fatalf("SeekCurrent pos %d", pos)
	}
	if _, err := h.Seek(-100, io.SeekStart); err == nil {
		t.Fatal("negative seek accepted")
	}
	if _, err := h.Seek(0, 99); err == nil {
		t.Fatal("bad whence accepted")
	}
}

func TestFileReadAtWriteAt(t *testing.T) {
	r := newFS(t)
	h, err := r.fs.OpenFile("/ra")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.WriteAt([]byte("abcdef"), 0); err != nil {
		t.Fatal(err)
	}
	if _, err := h.WriteAt([]byte("XY"), 2); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 6)
	if _, err := h.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "abXYef" {
		t.Fatalf("got %q", buf)
	}
	// Short ReadAt returns io.EOF like os.File.
	big := make([]byte, 10)
	n, err := h.ReadAt(big, 0)
	if n != 6 || !errors.Is(err, io.EOF) {
		t.Fatalf("short ReadAt n=%d err=%v", n, err)
	}
}

func TestFileEOF(t *testing.T) {
	r := newFS(t)
	h, err := r.fs.OpenFile("/eof")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Seek(0, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	n, err := h.Read(buf)
	if n != 1 || err != nil {
		t.Fatalf("first read n=%d err=%v", n, err)
	}
	if _, err := h.Read(buf); !errors.Is(err, io.EOF) {
		t.Fatalf("at EOF: %v", err)
	}
}

func TestFileClosed(t *testing.T) {
	r := newFS(t)
	h, err := r.fs.OpenFile("/c")
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	if err := h.Close(); !errors.Is(err, ErrClosed) {
		t.Fatal("double close not reported")
	}
	if _, err := h.Read(make([]byte, 1)); !errors.Is(err, ErrClosed) {
		t.Fatal("read after close accepted")
	}
	if _, err := h.Write([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatal("write after close accepted")
	}
}

func TestFileSyncMigratesOnlyThatFile(t *testing.T) {
	r := newFS(t)
	a, err := r.fs.OpenFile("/a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Write(bytes.Repeat([]byte{1}, 8192)); err != nil {
		t.Fatal(err)
	}
	if err := r.fs.WriteFile("/b", bytes.Repeat([]byte{2}, 8192)); err != nil {
		t.Fatal(err)
	}
	if err := a.Sync(); err != nil {
		t.Fatal(err)
	}
	flushedA := r.sm.Stats().FlushedBytes
	if flushedA < 8192 {
		t.Fatalf("fsync flushed only %d bytes", flushedA)
	}
	if flushedA >= 16384 {
		t.Fatal("fsync flushed unrelated files")
	}
}

func TestFileWorksWithStdlibHelpers(t *testing.T) {
	r := newFS(t)
	h, err := r.fs.OpenFile("/copyto")
	if err != nil {
		t.Fatal(err)
	}
	src := bytes.NewBufferString("streamed through io.Copy")
	if _, err := io.Copy(h, src); err != nil {
		t.Fatal(err)
	}
	got, err := r.fs.ReadFile("/copyto")
	if err != nil || string(got) != "streamed through io.Copy" {
		t.Fatalf("%q %v", got, err)
	}
}
