package fs

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"ssmobile/internal/device"
	"ssmobile/internal/dram"
	engineftl "ssmobile/internal/engine/ftl"
	"ssmobile/internal/flash"
	"ssmobile/internal/ftl"
	"ssmobile/internal/sim"
	"ssmobile/internal/storman"
	"ssmobile/internal/vm"
)

type rig struct {
	clock *sim.Clock
	meter *sim.EnergyMeter
	dram  *dram.Device
	flash *flash.Device
	fl    *ftl.FTL
	sm    *storman.Manager
	fs    *FS
}

func fsConfig() Config {
	return Config{RBoxBase: 0, RBoxBytes: 256 * 1024, SnapshotEvery: 64}
}

// newParts builds the device stack without the FS (for recovery tests).
func newParts(t testing.TB) *rig {
	t.Helper()
	clock := sim.NewClock()
	meter := sim.NewEnergyMeter()
	dr, err := dram.New(dram.Config{CapacityBytes: 8 << 20, Params: device.NECDram}, clock, meter)
	if err != nil {
		t.Fatal(err)
	}
	params := device.IntelFlash
	params.EraseLatencyNs = 1e6
	fd, err := flash.New(flash.Config{Banks: 2, BlocksPerBank: 128, BlockBytes: 16 * 1024, Params: params}, clock, meter)
	if err != nil {
		t.Fatal(err)
	}
	fl, err := ftl.New(fd, clock, ftl.Config{
		PageBytes: 4096, ReserveBlocks: 3,
		Policy: ftl.PolicyCostBenefit, HotCold: true, BackgroundErase: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	sm, err := storman.New(storman.Config{
		BlockBytes: 4096,
		DRAMBase:   1 << 20, DRAMBytes: 2 << 20,
		WriteBackDelay: 30 * sim.Second,
	}, clock, dr, engineftl.Wrap(fl))
	if err != nil {
		t.Fatal(err)
	}
	return &rig{clock: clock, meter: meter, dram: dr, flash: fd, fl: fl, sm: sm}
}

func newFS(t testing.TB) *rig {
	t.Helper()
	r := newParts(t)
	f, err := Mkfs(fsConfig(), r.clock, r.sm, r.dram)
	if err != nil {
		t.Fatal(err)
	}
	r.fs = f
	return r
}

func TestCreateStatRemove(t *testing.T) {
	r := newFS(t)
	if err := r.fs.Create("/a.txt"); err != nil {
		t.Fatal(err)
	}
	info, err := r.fs.Stat("/a.txt")
	if err != nil {
		t.Fatal(err)
	}
	if info.Kind != KindFile || info.Size != 0 || info.Name != "a.txt" {
		t.Fatalf("info %+v", info)
	}
	if err := r.fs.Create("/a.txt"); !errors.Is(err, ErrExist) {
		t.Fatalf("duplicate create: %v", err)
	}
	if err := r.fs.Remove("/a.txt"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.fs.Stat("/a.txt"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("stat after remove: %v", err)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	r := newFS(t)
	if err := r.fs.Create("/f"); err != nil {
		t.Fatal(err)
	}
	// Spans several blocks with an odd size.
	data := make([]byte, 3*4096+123)
	for i := range data {
		data[i] = byte(i * 7)
	}
	if n, err := r.fs.WriteAt("/f", 0, data); err != nil || n != len(data) {
		t.Fatalf("write n=%d err=%v", n, err)
	}
	got, err := r.fs.ReadFile("/f")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round trip mismatch")
	}
	info, _ := r.fs.Stat("/f")
	if info.Size != int64(len(data)) {
		t.Fatalf("size %d", info.Size)
	}
}

func TestPartialOverwriteWithinBlock(t *testing.T) {
	r := newFS(t)
	if err := r.fs.WriteFile("/f", bytes.Repeat([]byte{0xAA}, 1000)); err != nil {
		t.Fatal(err)
	}
	if _, err := r.fs.WriteAt("/f", 100, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	got, err := r.fs.ReadFile("/f")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1000 {
		t.Fatalf("len %d", len(got))
	}
	if got[99] != 0xAA || got[100] != 1 || got[102] != 3 || got[103] != 0xAA {
		t.Fatal("partial overwrite wrong")
	}
}

func TestSparseWriteReadsZeros(t *testing.T) {
	r := newFS(t)
	if err := r.fs.Create("/sparse"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.fs.WriteAt("/sparse", 10*4096, []byte("tail")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	n, err := r.fs.ReadAt("/sparse", 5*4096, buf)
	if err != nil || n != 16 {
		t.Fatalf("hole read n=%d err=%v", n, err)
	}
	for _, b := range buf {
		if b != 0 {
			t.Fatal("hole not zero")
		}
	}
	// Unaligned write into a fresh block past old content must zero-fill
	// the gap before the write offset.
	if _, err := r.fs.WriteAt("/sparse", 11*4096+100, []byte("x")); err != nil {
		t.Fatal(err)
	}
	n, err = r.fs.ReadAt("/sparse", 11*4096, buf)
	if err != nil || n != 16 {
		t.Fatalf("gap read n=%d err=%v", n, err)
	}
	for _, b := range buf {
		if b != 0 {
			t.Fatal("gap before unaligned write not zero")
		}
	}
}

func TestAppend(t *testing.T) {
	r := newFS(t)
	if err := r.fs.Create("/log"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := r.fs.Append("/log", []byte("entry;")); err != nil {
			t.Fatal(err)
		}
	}
	got, _ := r.fs.ReadFile("/log")
	if string(got) != "entry;entry;entry;entry;entry;" {
		t.Fatalf("append result %q", got)
	}
}

func TestTruncate(t *testing.T) {
	r := newFS(t)
	data := bytes.Repeat([]byte{0xEE}, 2*4096+500)
	if err := r.fs.WriteFile("/t", data); err != nil {
		t.Fatal(err)
	}
	if err := r.fs.Truncate("/t", 4096+100); err != nil {
		t.Fatal(err)
	}
	got, err := r.fs.ReadFile("/t")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4096+100 {
		t.Fatalf("len after truncate %d", len(got))
	}
	// Growing back must expose zeros, not stale bytes.
	if err := r.fs.Truncate("/t", 2*4096); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 100)
	if _, err := r.fs.ReadAt("/t", 4096+200, buf); err != nil {
		t.Fatal(err)
	}
	for _, b := range buf {
		if b != 0 {
			t.Fatal("stale bytes exposed after truncate+grow")
		}
	}
}

func TestDirectories(t *testing.T) {
	r := newFS(t)
	if err := r.fs.MkdirAll("/usr/local/bin"); err != nil {
		t.Fatal(err)
	}
	if err := r.fs.Create("/usr/local/bin/prog"); err != nil {
		t.Fatal(err)
	}
	infos, err := r.fs.ReadDir("/usr/local")
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || infos[0].Name != "bin" || infos[0].Kind != KindDir {
		t.Fatalf("readdir %+v", infos)
	}
	if err := r.fs.Remove("/usr/local"); !errors.Is(err, ErrNotEmpty) {
		t.Fatalf("remove non-empty: %v", err)
	}
	if _, err := r.fs.ReadDir("/usr/local/bin/prog"); !errors.Is(err, ErrNotDir) {
		t.Fatalf("readdir of file: %v", err)
	}
	if _, err := r.fs.WriteAt("/usr", 0, []byte("x")); !errors.Is(err, ErrIsDir) {
		t.Fatalf("write to dir: %v", err)
	}
}

func TestRename(t *testing.T) {
	r := newFS(t)
	if err := r.fs.MkdirAll("/a/b"); err != nil {
		t.Fatal(err)
	}
	if err := r.fs.WriteFile("/a/f", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	if err := r.fs.Rename("/a/f", "/a/b/g"); err != nil {
		t.Fatal(err)
	}
	if r.fs.Exists("/a/f") {
		t.Fatal("old path still exists")
	}
	got, err := r.fs.ReadFile("/a/b/g")
	if err != nil || string(got) != "payload" {
		t.Fatalf("after rename: %q %v", got, err)
	}
	if err := r.fs.Rename("/a/b/g", "/a/b"); !errors.Is(err, ErrExist) {
		t.Fatalf("rename over existing: %v", err)
	}
	if err := r.fs.Rename("/missing", "/x"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("rename missing: %v", err)
	}
}

func TestBadPaths(t *testing.T) {
	r := newFS(t)
	for _, p := range []string{"", "relative", "/a/../b"} {
		if err := r.fs.Create(p); !errors.Is(err, ErrBadPath) {
			t.Errorf("Create(%q): %v", p, err)
		}
	}
	if _, err := r.fs.Stat("//"); err != nil {
		t.Errorf("Stat(//) should resolve to root: %v", err)
	}
}

func TestRemoveFreesStorage(t *testing.T) {
	r := newFS(t)
	if err := r.fs.WriteFile("/big", make([]byte, 64*1024)); err != nil {
		t.Fatal(err)
	}
	if err := r.fs.Sync(); err != nil {
		t.Fatal(err)
	}
	freeBefore := r.sm.FlashPagesFree()
	if err := r.fs.Remove("/big"); err != nil {
		t.Fatal(err)
	}
	if r.sm.FlashPagesFree() <= freeBefore {
		t.Fatal("remove did not free flash pages")
	}
}

func TestDeleteAbsorbedBeforeWriteback(t *testing.T) {
	// The paper's §3.3: short-lived files buffered in DRAM never cost
	// flash writes.
	r := newFS(t)
	for i := 0; i < 20; i++ {
		if err := r.fs.WriteFile("/tmpfile", make([]byte, 8192)); err != nil {
			t.Fatal(err)
		}
		if err := r.fs.Remove("/tmpfile"); err != nil {
			t.Fatal(err)
		}
	}
	s := r.sm.Stats()
	if s.FlushedBytes != 0 {
		t.Fatalf("short-lived files cost %d flash bytes", s.FlushedBytes)
	}
	if s.DeleteAbsorbedBytes == 0 {
		t.Fatal("no delete absorption recorded")
	}
}

func TestCrashRecoveryFromRecoveryBox(t *testing.T) {
	r := newFS(t)
	if err := r.fs.MkdirAll("/home/user"); err != nil {
		t.Fatal(err)
	}
	if err := r.fs.WriteFile("/home/user/doc", []byte("important words")); err != nil {
		t.Fatal(err)
	}
	if err := r.fs.Rename("/home/user/doc", "/home/user/doc2"); err != nil {
		t.Fatal(err)
	}

	// OS crash: the FS object evaporates, DRAM (and storman) survive.
	recovered, err := RecoverAfterCrash(fsConfig(), r.clock, r.sm, r.dram)
	if err != nil {
		t.Fatal(err)
	}
	got, err := recovered.ReadFile("/home/user/doc2")
	if err != nil || string(got) != "important words" {
		t.Fatalf("after crash recovery: %q %v", got, err)
	}
	if recovered.Exists("/home/user/doc") {
		t.Fatal("pre-rename name resurrected")
	}
	// The recovered FS is fully operational.
	if err := recovered.WriteFile("/home/user/more", []byte("x")); err != nil {
		t.Fatal(err)
	}
}

func TestCrashRecoveryReplaysManyJournalRecords(t *testing.T) {
	r := newFS(t)
	// More mutations than SnapshotEvery to exercise snapshot + journal.
	for i := 0; i < 200; i++ {
		name := string(rune('a'+i%26)) + string(rune('0'+i%10))
		path := "/" + name
		if !r.fs.Exists(path) {
			if err := r.fs.Create(path); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := r.fs.Append(path, []byte("data")); err != nil {
			t.Fatal(err)
		}
	}
	want := r.fs.NumInodes()
	recovered, err := RecoverAfterCrash(fsConfig(), r.clock, r.sm, r.dram)
	if err != nil {
		t.Fatal(err)
	}
	if recovered.NumInodes() != want {
		t.Fatalf("recovered %d inodes, want %d", recovered.NumInodes(), want)
	}
}

func TestCorruptRecoveryBoxDetected(t *testing.T) {
	r := newFS(t)
	if err := r.fs.Create("/x"); err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the snapshot area.
	if _, err := r.dram.Write(int64(rboxHeader)+5, []byte{0xFF}); err != nil {
		t.Fatal(err)
	}
	if _, err := RecoverAfterCrash(fsConfig(), r.clock, r.sm, r.dram); !errors.Is(err, ErrCorruptRBox) {
		t.Fatalf("corrupt rbox: %v", err)
	}
}

func TestPowerFailureRecovery(t *testing.T) {
	r := newFS(t)
	if err := r.fs.MkdirAll("/docs"); err != nil {
		t.Fatal(err)
	}
	if err := r.fs.WriteFile("/docs/stable", []byte("synced to flash")); err != nil {
		t.Fatal(err)
	}
	if err := r.fs.Sync(); err != nil {
		t.Fatal(err)
	}
	// Written after the sync: lives only in DRAM.
	if err := r.fs.WriteFile("/docs/fresh", []byte("never flushed")); err != nil {
		t.Fatal(err)
	}

	r.dram.PowerFail()
	recovered, lost, err := RecoverAfterPowerFailure(fsConfig(), r.clock, r.sm, r.dram)
	if err != nil {
		t.Fatal(err)
	}
	if lost == 0 {
		t.Fatal("no loss reported though fresh data was unflushed")
	}
	got, err := recovered.ReadFile("/docs/stable")
	if err != nil || string(got) != "synced to flash" {
		t.Fatalf("stable file after power failure: %q %v", got, err)
	}
	if recovered.Exists("/docs/fresh") {
		t.Fatal("unflushed file survived power failure")
	}
	// FS remains usable and syncable.
	if err := recovered.WriteFile("/docs/new", []byte("post-recovery")); err != nil {
		t.Fatal(err)
	}
	if err := recovered.Sync(); err != nil {
		t.Fatal(err)
	}
}

func TestPowerFailureWithoutAnyCheckpoint(t *testing.T) {
	r := newFS(t)
	if err := r.fs.WriteFile("/gone", []byte("data")); err != nil {
		t.Fatal(err)
	}
	r.dram.PowerFail()
	recovered, _, err := RecoverAfterPowerFailure(fsConfig(), r.clock, r.sm, r.dram)
	if err != nil {
		t.Fatal(err)
	}
	if recovered.Exists("/gone") {
		t.Fatal("file survived with no checkpoint")
	}
	if err := recovered.WriteFile("/fresh", []byte("ok")); err != nil {
		t.Fatal(err)
	}
}

func TestMapFileReadsInPlace(t *testing.T) {
	r := newFS(t)
	content := bytes.Repeat([]byte{0x5A}, 2*4096)
	if err := r.fs.WriteFile("/lib", content); err != nil {
		t.Fatal(err)
	}
	if err := r.fs.Sync(); err != nil { // push to flash
		t.Fatal(err)
	}
	v, err := vm.New(vm.Config{PageBytes: 4096, DRAMBase: 4 << 20, DRAMBytes: 1 << 20}, r.clock, r.dram, r.flash)
	if err != nil {
		t.Fatal(err)
	}
	s := v.NewSpace()
	n, err := r.fs.MapFile(v, s, 0x100000, "/lib", vm.PermRead)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2*4096 {
		t.Fatalf("mapped %d", n)
	}
	buf := make([]byte, 64)
	if err := v.Read(s, 0x100000+4090, buf); err != nil {
		t.Fatal(err)
	}
	for _, b := range buf {
		if b != 0x5A {
			t.Fatal("mapped read wrong")
		}
	}
	if v.Stats().FramesInUse != 0 {
		t.Fatal("mapping a file consumed DRAM frames on read")
	}
}

func TestMapFileCopyOnWritePrivate(t *testing.T) {
	r := newFS(t)
	if err := r.fs.WriteFile("/data", bytes.Repeat([]byte{3}, 4096)); err != nil {
		t.Fatal(err)
	}
	v, err := vm.New(vm.Config{PageBytes: 4096, DRAMBase: 4 << 20, DRAMBytes: 1 << 20}, r.clock, r.dram, r.flash)
	if err != nil {
		t.Fatal(err)
	}
	s := v.NewSpace()
	if _, err := r.fs.MapFile(v, s, 0x200000, "/data", vm.PermRead|vm.PermWrite); err != nil {
		t.Fatal(err)
	}
	if err := v.Write(s, 0x200000, []byte{9}); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 2)
	if err := v.Read(s, 0x200000, got); err != nil {
		t.Fatal(err)
	}
	if got[0] != 9 || got[1] != 3 {
		t.Fatalf("mapped cow read %v", got)
	}
	// Private mapping: the file itself is unchanged.
	data, _ := r.fs.ReadFile("/data")
	if data[0] != 3 {
		t.Fatal("private mapping modified the file")
	}
}

func TestMapFilePastEOFReadsZero(t *testing.T) {
	r := newFS(t)
	if err := r.fs.WriteFile("/short", []byte("abc")); err != nil {
		t.Fatal(err)
	}
	v, err := vm.New(vm.Config{PageBytes: 4096, DRAMBase: 4 << 20, DRAMBytes: 1 << 20}, r.clock, r.dram, r.flash)
	if err != nil {
		t.Fatal(err)
	}
	s := v.NewSpace()
	if _, err := r.fs.MapFile(v, s, 0, "/short", vm.PermRead); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	if err := v.Read(s, 0, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, []byte{'a', 'b', 'c', 0, 0, 0, 0, 0}) {
		t.Fatalf("eof zero fill %q", buf)
	}
}

func TestHardLinks(t *testing.T) {
	r := newFS(t)
	if err := r.fs.WriteFile("/orig", []byte("shared inode")); err != nil {
		t.Fatal(err)
	}
	if err := r.fs.MkdirAll("/d"); err != nil {
		t.Fatal(err)
	}
	if err := r.fs.Link("/orig", "/d/alias"); err != nil {
		t.Fatal(err)
	}
	infoA, _ := r.fs.Stat("/orig")
	infoB, _ := r.fs.Stat("/d/alias")
	if infoA.Ino != infoB.Ino {
		t.Fatal("link made a different inode")
	}
	if infoA.Nlink != 2 {
		t.Fatalf("nlink %d", infoA.Nlink)
	}
	// Writes through one name are visible through the other.
	if _, err := r.fs.WriteAt("/d/alias", 0, []byte("SHARED")); err != nil {
		t.Fatal(err)
	}
	got, _ := r.fs.ReadFile("/orig")
	if string(got) != "SHARED inode" {
		t.Fatalf("through-link read %q", got)
	}
	// Removing one name keeps the data alive.
	if err := r.fs.Remove("/orig"); err != nil {
		t.Fatal(err)
	}
	got, err := r.fs.ReadFile("/d/alias")
	if err != nil || string(got) != "SHARED inode" {
		t.Fatalf("after first unlink: %q %v", got, err)
	}
	if info, _ := r.fs.Stat("/d/alias"); info.Nlink != 1 {
		t.Fatalf("nlink after unlink %d", info.Nlink)
	}
	// Removing the last name frees storage.
	if err := r.fs.Remove("/d/alias"); err != nil {
		t.Fatal(err)
	}
	if len(r.sm.Objects()) != 0 {
		t.Fatal("data not freed at last unlink")
	}
}

func TestLinkValidation(t *testing.T) {
	r := newFS(t)
	if err := r.fs.Mkdir("/d"); err != nil {
		t.Fatal(err)
	}
	if err := r.fs.Link("/d", "/d2"); !errors.Is(err, ErrIsDir) {
		t.Fatalf("link to dir: %v", err)
	}
	if err := r.fs.Link("/missing", "/x"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("link of missing: %v", err)
	}
	if err := r.fs.Create("/f"); err != nil {
		t.Fatal(err)
	}
	if err := r.fs.Link("/f", "/d"); !errors.Is(err, ErrExist) {
		t.Fatalf("link over existing: %v", err)
	}
}

func TestHardLinksSurviveCrashRecovery(t *testing.T) {
	r := newFS(t)
	if err := r.fs.WriteFile("/f", []byte("linked data")); err != nil {
		t.Fatal(err)
	}
	if err := r.fs.Link("/f", "/g"); err != nil {
		t.Fatal(err)
	}
	if err := r.fs.Remove("/f"); err != nil {
		t.Fatal(err)
	}
	recovered, err := RecoverAfterCrash(fsConfig(), r.clock, r.sm, r.dram)
	if err != nil {
		t.Fatal(err)
	}
	got, err := recovered.ReadFile("/g")
	if err != nil || string(got) != "linked data" {
		t.Fatalf("after recovery: %q %v", got, err)
	}
	if info, _ := recovered.Stat("/g"); info.Nlink != 1 {
		t.Fatalf("recovered nlink %d", info.Nlink)
	}
	if recovered.Exists("/f") {
		t.Fatal("removed link resurrected")
	}
}

func TestMapFileSharedWritesBack(t *testing.T) {
	r := newFS(t)
	if err := r.fs.WriteFile("/shared", bytes.Repeat([]byte{0x11}, 6000)); err != nil {
		t.Fatal(err)
	}
	v, err := vm.New(vm.Config{PageBytes: 4096, DRAMBase: 4 << 20, DRAMBytes: 1 << 20}, r.clock, r.dram, r.flash)
	if err != nil {
		t.Fatal(err)
	}
	s := v.NewSpace()
	n, err := r.fs.MapFileShared(v, s, 0x10000, "/shared", vm.PermRead|vm.PermWrite)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.Write(s, 0x10000+100, []byte{0x22, 0x22}); err != nil {
		t.Fatal(err)
	}
	// Before msync the file is unchanged.
	data, _ := r.fs.ReadFile("/shared")
	if data[100] != 0x11 {
		t.Fatal("write visible before msync")
	}
	if err := v.Msync(s, 0x10000, n); err != nil {
		t.Fatal(err)
	}
	data, _ = r.fs.ReadFile("/shared")
	if data[100] != 0x22 || data[101] != 0x22 || data[99] != 0x11 {
		t.Fatalf("msync result %x %x %x", data[99], data[100], data[101])
	}
	if len(data) != 6000 {
		t.Fatalf("file size changed to %d", len(data))
	}
}

// Property: the FS matches an in-memory map of path → contents under
// random create/write/remove/truncate/sync/crash-recover sequences.
func TestFSModelProperty(t *testing.T) {
	type op struct {
		PathIdx uint8
		Action  uint8
		Off     uint16
		Data    []byte
		NewSize uint16
	}
	paths := []string{"/p0", "/p1", "/p2", "/p3"}
	f := func(ops []op) bool {
		r := newFS(t)
		model := map[string][]byte{}
		for _, o := range ops {
			path := paths[int(o.PathIdx)%len(paths)]
			switch o.Action % 6 {
			case 0, 1: // write
				if !r.fs.Exists(path) {
					if err := r.fs.Create(path); err != nil {
						return false
					}
					model[path] = nil
				}
				data := o.Data
				if len(data) > 6000 {
					data = data[:6000]
				}
				off := int64(o.Off) % 8192
				if _, err := r.fs.WriteAt(path, off, data); err != nil {
					return false
				}
				cur := model[path]
				if need := off + int64(len(data)); int64(len(cur)) < need {
					grown := make([]byte, need)
					copy(grown, cur)
					cur = grown
				}
				copy(cur[off:], data)
				model[path] = cur
			case 2: // remove
				if r.fs.Exists(path) {
					if err := r.fs.Remove(path); err != nil {
						return false
					}
					delete(model, path)
				}
			case 3: // truncate
				if r.fs.Exists(path) {
					size := int64(o.NewSize) % 8192
					if err := r.fs.Truncate(path, size); err != nil {
						return false
					}
					cur := model[path]
					grown := make([]byte, size)
					copy(grown, cur)
					model[path] = grown
				}
			case 4: // sync
				if err := r.fs.Sync(); err != nil {
					return false
				}
			case 5: // crash + recover
				nf, err := RecoverAfterCrash(fsConfig(), r.clock, r.sm, r.dram)
				if err != nil {
					return false
				}
				r.fs = nf
			}
		}
		for path, want := range model {
			got, err := r.fs.ReadFile(path)
			if err != nil {
				return false
			}
			if !bytes.Equal(got, want) {
				t.Logf("%s: got %d bytes want %d", path, len(got), len(want))
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
