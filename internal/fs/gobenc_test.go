package fs

import (
	"bytes"
	"encoding/gob"
	"math/rand"
	"reflect"
	"testing"
)

// gobBytes is the reference encoding the hand encoder must reproduce.
func gobBytes(t *testing.T, st snapshotState) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		t.Fatalf("gob encode: %v", err)
	}
	return buf.Bytes()
}

// TestSnapCodecSelfCheck asserts the startup self-check passed: if this
// fails, encodeState is silently falling back to encoding/gob and the
// zero-allocation snapshot path is gone.
func TestSnapCodecSelfCheck(t *testing.T) {
	if _, err := appendState(nil, snapshotState{}); err != nil {
		t.Fatalf("appendState: %v", err)
	}
	if snapCodecErr != nil {
		t.Fatalf("hand gob codec self-check failed: %v", snapCodecErr)
	}
}

// TestEncodeStateMatchesGobDeterministic compares hand bytes against
// encoding/gob exactly, on states whose maps have at most one entry each
// (the only case where gob's own output is deterministic).
func TestEncodeStateMatchesGobDeterministic(t *testing.T) {
	cases := []snapshotState{
		{},
		{NextIno: 1},
		{NextIno: 0, Inodes: map[uint64]*Inode{0: {}}},
		{NextIno: 5, Inodes: map[uint64]*Inode{}},
		{NextIno: 2, Inodes: map[uint64]*Inode{
			1: {Ino: 1, Kind: KindDir, Nlink: 1, Entries: map[string]uint64{}},
		}},
		{NextIno: 2, Inodes: map[uint64]*Inode{1: {Ino: 1, Kind: KindDir, Nlink: 1}}},
		{NextIno: 300, Inodes: map[uint64]*Inode{
			200: {Ino: 200, Kind: KindFile, Size: 1 << 40, Nlink: 3, MtimeNs: -5},
		}},
		{NextIno: 9, Inodes: map[uint64]*Inode{
			7: {Ino: 7, Kind: KindDir, Nlink: 1, MtimeNs: 1234567890123,
				Entries: map[string]uint64{"object-with-a-long-name": 1 << 50}},
		}},
		{NextIno: 128, Inodes: map[uint64]*Inode{
			127: {Ino: 127, Size: 127, Nlink: 127, MtimeNs: 127},
		}},
		{NextIno: 129, Inodes: map[uint64]*Inode{
			128: {Ino: 128, Size: 128, Nlink: 128, MtimeNs: 128},
		}},
	}
	for i, st := range cases {
		want := gobBytes(t, st)
		got, err := appendState(nil, st)
		if err != nil {
			t.Fatalf("case %d: appendState: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("case %d: hand encoding differs from gob\n got %x\nwant %x", i, got, want)
		}
	}
}

// TestEncodeStateMultiEntry pins the two properties that matter for
// multi-entry maps, where gob's iteration order is random: identical
// byte LENGTH (snapshot length feeds simulated DRAM latency) and exact
// round-trip through the unchanged gob-based decodeState.
func TestEncodeStateMultiEntry(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		st := snapshotState{NextIno: rng.Uint64() >> uint(rng.Intn(64)), Inodes: map[uint64]*Inode{}}
		for i := 0; i < 1+rng.Intn(20); i++ {
			node := &Inode{
				Ino:     rng.Uint64() >> uint(rng.Intn(64)),
				Kind:    Kind(rng.Intn(3)),
				Size:    rng.Int63() >> uint(rng.Intn(63)),
				Nlink:   rng.Intn(4),
				MtimeNs: rng.Int63() - rng.Int63(),
			}
			if node.Kind == KindDir {
				node.Entries = map[string]uint64{}
				for j := 0; j < rng.Intn(5); j++ {
					node.Entries[string(rune('a'+j))+"entry"] = rng.Uint64() >> uint(rng.Intn(64))
				}
			}
			st.Inodes[node.Ino] = node
		}
		want := gobBytes(t, st)
		got, err := appendState(nil, st)
		if err != nil {
			t.Fatalf("trial %d: appendState: %v", trial, err)
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: length %d, gob length %d", trial, len(got), len(want))
		}
		dec, err := decodeState(got)
		if err != nil {
			t.Fatalf("trial %d: decodeState of hand bytes: %v", trial, err)
		}
		if !reflect.DeepEqual(dec, st) {
			t.Fatalf("trial %d: round-trip mismatch\n got %+v\nwant %+v", trial, dec, st)
		}
	}
}

// TestAppendStateReusesBuffer verifies appending into a warm buffer
// neither allocates nor corrupts earlier bytes.
func TestAppendStateReusesBuffer(t *testing.T) {
	st := snapshotState{NextIno: 4, Inodes: map[uint64]*Inode{
		1: {Ino: 1, Kind: KindDir, Nlink: 1, Entries: map[string]uint64{"f": 2, "g": 3}},
		2: {Ino: 2, Kind: KindFile, Nlink: 1, Size: 9000},
		3: {Ino: 3, Kind: KindFile, Nlink: 1, Size: 77},
	}}
	first, err := appendState(nil, st)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 0, 2*len(first))
	if raceEnabled {
		t.Skip("allocation counts are not exact under the race detector")
	}
	allocs := testing.AllocsPerRun(100, func() {
		var err error
		buf, err = appendState(buf[:0], st)
		if err != nil {
			t.Fatal(err)
		}
	})
	if !bytes.Equal(buf, first) {
		t.Fatalf("warm-buffer encoding differs from cold encoding")
	}
	if allocs > 0 {
		t.Fatalf("appendState into warm buffer allocated %.1f times per run", allocs)
	}
}
