package fs

import (
	"errors"
	"fmt"
	"io"
)

// ErrClosed reports an operation on a closed file handle.
var ErrClosed = errors.New("fs: file already closed")

// File is an open handle with a cursor, implementing the standard io
// interfaces over the memory-resident file system. Handles are cheap —
// there is no per-open kernel state beyond the cursor — but Close is
// still required by convention and renders the handle inert.
type File struct {
	fs     *FS
	path   string
	pos    int64
	closed bool
}

// Open returns a handle on an existing file.
func (f *FS) Open(path string) (*File, error) {
	node, err := f.resolve(path)
	if err != nil {
		return nil, err
	}
	if node.Kind != KindFile {
		return nil, fmt.Errorf("%w: %q", ErrIsDir, path)
	}
	return &File{fs: f, path: path}, nil
}

// OpenFile returns a handle, creating the file if it does not exist.
func (f *FS) OpenFile(path string) (*File, error) {
	if !f.Exists(path) {
		if err := f.Create(path); err != nil {
			return nil, err
		}
	}
	return f.Open(path)
}

// Name reports the path the handle was opened with.
func (h *File) Name() string { return h.path }

func (h *File) check() error {
	if h.closed {
		return ErrClosed
	}
	return nil
}

// Size reports the file's current size.
func (h *File) Size() (int64, error) {
	if err := h.check(); err != nil {
		return 0, err
	}
	info, err := h.fs.Stat(h.path)
	if err != nil {
		return 0, err
	}
	return info.Size, nil
}

// Read implements io.Reader.
func (h *File) Read(p []byte) (int, error) {
	if err := h.check(); err != nil {
		return 0, err
	}
	n, err := h.fs.ReadAt(h.path, h.pos, p)
	h.pos += int64(n)
	if err != nil {
		return n, err
	}
	if n == 0 && len(p) > 0 {
		return 0, io.EOF
	}
	return n, nil
}

// ReadAt implements io.ReaderAt.
func (h *File) ReadAt(p []byte, off int64) (int, error) {
	if err := h.check(); err != nil {
		return 0, err
	}
	n, err := h.fs.ReadAt(h.path, off, p)
	if err != nil {
		return n, err
	}
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// Write implements io.Writer, extending the file at the cursor.
func (h *File) Write(p []byte) (int, error) {
	if err := h.check(); err != nil {
		return 0, err
	}
	n, err := h.fs.WriteAt(h.path, h.pos, p)
	h.pos += int64(n)
	return n, err
}

// WriteAt implements io.WriterAt.
func (h *File) WriteAt(p []byte, off int64) (int, error) {
	if err := h.check(); err != nil {
		return 0, err
	}
	return h.fs.WriteAt(h.path, off, p)
}

// Seek implements io.Seeker.
func (h *File) Seek(offset int64, whence int) (int64, error) {
	if err := h.check(); err != nil {
		return 0, err
	}
	var base int64
	switch whence {
	case io.SeekStart:
		base = 0
	case io.SeekCurrent:
		base = h.pos
	case io.SeekEnd:
		size, err := h.Size()
		if err != nil {
			return 0, err
		}
		base = size
	default:
		return 0, fmt.Errorf("%w: whence %d", ErrBadPath, whence)
	}
	pos := base + offset
	if pos < 0 {
		return 0, fmt.Errorf("%w: seek to %d", ErrBadPath, pos)
	}
	h.pos = pos
	return pos, nil
}

// Sync migrates the file's dirty blocks to flash (fsync).
func (h *File) Sync() error {
	if err := h.check(); err != nil {
		return err
	}
	node, err := h.fs.resolve(h.path)
	if err != nil {
		return err
	}
	return h.fs.sm.SyncObject(node.Ino)
}

// Close renders the handle inert.
func (h *File) Close() error {
	if h.closed {
		return ErrClosed
	}
	h.closed = true
	return nil
}

var (
	_ io.Reader   = (*File)(nil)
	_ io.Writer   = (*File)(nil)
	_ io.Seeker   = (*File)(nil)
	_ io.ReaderAt = (*File)(nil)
	_ io.WriterAt = (*File)(nil)
	_ io.Closer   = (*File)(nil)
)
