package fs

// Hand-rolled gob encoding for the recovery-box snapshot.
//
// The snapshot is re-encoded on every journal rollover and every
// checkpoint, and encoding/gob's reflection walk allocates per map entry
// — it was the single largest allocation source left on the serve hot
// path. This encoder emits the identical wire format for the one
// concrete type the snapshot uses (snapshotState), appending into a
// caller-owned buffer, so steady-state snapshots allocate nothing.
//
// Compatibility is load-bearing in two ways. The bytes must decode with
// encoding/gob (decodeState is unchanged, and recovery boxes written
// before this encoder must keep decoding). And the byte LENGTH must be
// exactly what gob produced, because the snapshot is written to the
// simulated DRAM device, whose charged latency depends on length — a
// different length would shift virtual time and change every
// experiment's output. Gob's only wire freedom is map iteration order,
// which never changes the length; this encoder fixes the order to
// sorted keys, making snapshot bytes deterministic (an improvement gob
// itself never offered).
//
// The type-descriptor prefix is not synthesised: it is captured once
// per process from a real gob encode of a dummy value, and the hand
// encoding of that dummy is compared byte-for-byte against gob's
// output. If the self-check ever fails (say a future Go release changes
// a wire detail), encodeState falls back to real gob — correctness is
// never on the line, only the allocation win.

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"slices"
	"sync"
)

// appendGobUint appends gob's unsigned-integer encoding: values below
// 128 are one byte; larger values are minimal big-endian bytes preceded
// by the negated byte count.
func appendGobUint(dst []byte, v uint64) []byte {
	if v < 128 {
		return append(dst, byte(v))
	}
	var tmp [8]byte
	n := 0
	for x := v; x > 0; x >>= 8 {
		n++
	}
	for i := n - 1; i >= 0; i-- {
		tmp[i] = byte(v)
		v >>= 8
	}
	dst = append(dst, byte(-int8(n)))
	return append(dst, tmp[:n]...)
}

// appendGobInt appends gob's signed-integer encoding (low bit is the
// sign, the rest the complemented-or-plain magnitude).
func appendGobInt(dst []byte, i int64) []byte {
	var x uint64
	if i < 0 {
		x = uint64(^i<<1) | 1
	} else {
		x = uint64(i << 1)
	}
	return appendGobUint(dst, x)
}

func appendGobString(dst []byte, s string) []byte {
	dst = appendGobUint(dst, uint64(len(s)))
	return append(dst, s...)
}

// readGobUint decodes one gob unsigned integer, returning the value and
// bytes consumed (0 on malformed input).
func readGobUint(p []byte) (uint64, int) {
	if len(p) == 0 {
		return 0, 0
	}
	b := p[0]
	if b < 128 {
		return uint64(b), 1
	}
	n := -int(int8(b))
	if n > 8 || len(p) < 1+n {
		return 0, 0
	}
	var v uint64
	for _, c := range p[1 : 1+n] {
		v = v<<8 | uint64(c)
	}
	return v, 1 + n
}

// snapScratch holds the sorted-key buffers one encoder pass needs.
type snapScratch struct {
	inos  []uint64
	names []string
}

// appendInodeBody appends the gob struct encoding of one inode: each
// non-zero field as (field delta, value), terminated by a zero delta.
func appendInodeBody(dst []byte, node *Inode, scratch *snapScratch) []byte {
	prev := -1
	field := func(idx int) {
		dst = appendGobUint(dst, uint64(idx-prev))
		prev = idx
	}
	if node.Ino != 0 {
		field(0)
		dst = appendGobUint(dst, node.Ino)
	}
	if node.Kind != 0 {
		field(1)
		dst = appendGobUint(dst, uint64(node.Kind))
	}
	if node.Size != 0 {
		field(2)
		dst = appendGobInt(dst, node.Size)
	}
	if node.Nlink != 0 {
		field(3)
		dst = appendGobInt(dst, int64(node.Nlink))
	}
	if node.MtimeNs != 0 {
		field(4)
		dst = appendGobInt(dst, node.MtimeNs)
	}
	// Gob omits only nil maps; an empty non-nil map is sent with count
	// zero (and decodes back non-nil). Matching that exactly matters both
	// for byte length and because replay writes into decoded dir maps.
	if node.Entries != nil {
		field(5)
		dst = appendGobUint(dst, uint64(len(node.Entries)))
		names := scratch.names[:0]
		for name := range node.Entries {
			names = append(names, name)
		}
		slices.Sort(names)
		for _, name := range names {
			dst = appendGobString(dst, name)
			dst = appendGobUint(dst, node.Entries[name])
		}
		scratch.names = names
	}
	return append(dst, 0)
}

// appendStateBody appends the gob struct encoding of the snapshot state
// itself (without message framing).
func appendStateBody(dst []byte, st snapshotState, scratch *snapScratch) []byte {
	prev := -1
	if st.NextIno != 0 {
		dst = appendGobUint(dst, uint64(0-prev))
		prev = 0
		dst = appendGobUint(dst, st.NextIno)
	}
	if st.Inodes != nil {
		dst = appendGobUint(dst, uint64(1-prev))
		dst = appendGobUint(dst, uint64(len(st.Inodes)))
		inos := scratch.inos[:0]
		for ino := range st.Inodes {
			inos = append(inos, ino)
		}
		slices.Sort(inos)
		for _, ino := range inos {
			dst = appendGobUint(dst, ino)
			dst = appendInodeBody(dst, st.Inodes[ino], scratch)
		}
		scratch.inos = inos
	}
	return append(dst, 0)
}

var (
	snapCodecOnce sync.Once
	snapPrefix    []byte // the stream's type-descriptor messages
	snapTypeID    int64  // the type id value messages carry
	snapCodecErr  error  // non-nil: self-check failed, fall back to gob
)

// initSnapCodec captures the descriptor prefix and type id from a real
// gob encode, then verifies the hand encoder reproduces gob's bytes.
func initSnapCodec() {
	// Single-entry maps make gob's output deterministic, so encoding the
	// dummy twice yields two identical value messages; everything before
	// the second one's span is the descriptor prefix.
	dummy := snapshotState{
		NextIno: 3,
		Inodes: map[uint64]*Inode{
			2: {Ino: 2, Kind: KindDir, Size: 1, Nlink: 1, MtimeNs: 5,
				Entries: map[string]uint64{"a": 2}},
		},
	}
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	if err := enc.Encode(dummy); err != nil {
		snapCodecErr = err
		return
	}
	aLen := buf.Len()
	if err := enc.Encode(dummy); err != nil {
		snapCodecErr = err
		return
	}
	all := buf.Bytes()
	msgLen := len(all) - aLen
	if msgLen <= 0 || msgLen > aLen {
		snapCodecErr = fmt.Errorf("fs: gob prefix capture confused (%d/%d)", aLen, msgLen)
		return
	}
	snapPrefix = append([]byte(nil), all[:aLen-msgLen]...)

	msg := all[aLen:]
	bodyLen, n := readGobUint(msg)
	if n == 0 || int(bodyLen) != len(msg)-n {
		snapCodecErr = fmt.Errorf("fs: gob value message framing confused")
		return
	}
	id, idn := readGobUint(msg[n:])
	if idn == 0 || id&1 != 0 { // signed encoding of a positive id has low bit 0
		snapCodecErr = fmt.Errorf("fs: gob type id confused")
		return
	}
	snapTypeID = int64(id >> 1)

	var scratch snapScratch
	hand := appendStateMessages(nil, dummy, &scratch)
	if !bytes.Equal(hand, all[:aLen]) {
		snapCodecErr = fmt.Errorf("fs: hand gob encoding diverges from encoding/gob")
	}
}

// appendStateMessages appends the full gob stream for st (descriptor
// prefix plus one framed value message) to dst.
func appendStateMessages(dst []byte, st snapshotState, scratch *snapScratch) []byte {
	dst = append(dst, snapPrefix...)
	// Frame the body with its byte count. The body starts with the type
	// id; lengths here are tiny compared to the varint break-points, so
	// reserving the maximal frame and shifting is not worth it — encode
	// the body after a placeholder pass instead: body length depends
	// only on content, so build body bytes first in the same buffer and
	// move them if the frame width demands it.
	frameAt := len(dst)
	dst = appendGobInt(dst, snapTypeID)
	dst = appendStateBody(dst, st, scratch)
	bodyLen := len(dst) - frameAt
	var frame [9]byte
	framed := appendGobUint(frame[:0], uint64(bodyLen))
	// Shift the body right by len(framed) and lay the frame in front.
	dst = append(dst, framed...)
	copy(dst[frameAt+len(framed):], dst[frameAt:frameAt+bodyLen])
	copy(dst[frameAt:], framed)
	return dst
}

// appendState appends the gob-compatible snapshot encoding of st to dst,
// falling back to encoding/gob if the startup self-check failed.
func appendState(dst []byte, st snapshotState) ([]byte, error) {
	snapCodecOnce.Do(initSnapCodec)
	if snapCodecErr != nil {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(st); err != nil {
			return nil, err
		}
		return append(dst, buf.Bytes()...), nil
	}
	scratch := snapScratchPool.Get().(*snapScratch)
	dst = appendStateMessages(dst, st, scratch)
	snapScratchPool.Put(scratch)
	return dst, nil
}

var snapScratchPool = sync.Pool{New: func() any { return &snapScratch{} }}
