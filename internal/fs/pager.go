package fs

import (
	"fmt"

	"ssmobile/internal/storman"
	"ssmobile/internal/vm"
)

// filePager serves a file's blocks to the VM. Reads go through the
// storage manager, so flash-resident blocks are charged flash reads in
// place and DRAM-resident blocks DRAM reads — "files in flash memory can
// be mapped directly into the address spaces of interested processes
// without having to make a copy in primary storage" (paper §3.1).
type filePager struct {
	fs   *FS
	ino  uint64
	size int64 // size at map time; later growth is not visible
}

// ReadPage implements vm.ExternalPager.
func (p *filePager) ReadPage(idx int64, buf []byte) error {
	for i := range buf {
		buf[i] = 0
	}
	bs := int64(p.fs.BlockBytes())
	if idx*bs >= p.size {
		return nil // zero page past EOF
	}
	n, err := p.fs.sm.ReadBlock(storman.Key{Object: p.ino, Block: idx}, buf)
	if err != nil {
		return err
	}
	// Clamp to the file size within the final block.
	if remain := p.size - idx*bs; int64(n) > remain {
		for i := remain; i < int64(n); i++ {
			buf[i] = 0
		}
	}
	return nil
}

// WritePage implements vm.ExternalWriter for shared mappings: the page's
// bytes (clamped to the file size at map time) go back through the
// storage manager, landing in battery-backed DRAM like any other write.
func (p *filePager) WritePage(idx int64, data []byte) error {
	bs := int64(p.fs.BlockBytes())
	n := int64(len(data))
	if remain := p.size - idx*bs; remain < n {
		n = remain
	}
	if n <= 0 {
		return nil
	}
	return p.fs.sm.WriteBlock(storman.Key{Object: p.ino, Block: idx}, data[:n])
}

// MapFile maps the file at path into the address space at addr. The
// mapping covers the file rounded up to whole pages (past-EOF bytes read
// as zero) and is private: with PermWrite, the first write to a page
// copies it into an anonymous DRAM frame (copy-on-write) and changes do
// not propagate back to the file. It returns the mapped length.
func (f *FS) MapFile(v *vm.VM, s *vm.Space, addr uint64, path string, perm vm.Perm) (int, error) {
	node, err := f.resolve(path)
	if err != nil {
		return 0, err
	}
	if node.Kind != KindFile {
		return 0, fmt.Errorf("%w: %q", ErrIsDir, path)
	}
	if f.BlockBytes() != v.PageBytes() {
		return 0, fmt.Errorf("fs: block size %d != vm page size %d", f.BlockBytes(), v.PageBytes())
	}
	pb := int64(v.PageBytes())
	length := int((node.Size + pb - 1) / pb * pb)
	if length == 0 {
		length = int(pb)
	}
	pager := &filePager{fs: f, ino: node.Ino, size: node.Size}
	if err := v.MapExternal(s, addr, pager, 0, length, perm); err != nil {
		return 0, err
	}
	return length, nil
}

// MapFileShared maps the file like MapFile but as a shared mapping:
// writes to the mapping are pushed back into the file by vm.Msync (or
// unmap), within the file's size at map time. This is the full
// memory-mapped file interface of §3.1.
func (f *FS) MapFileShared(v *vm.VM, s *vm.Space, addr uint64, path string, perm vm.Perm) (int, error) {
	node, err := f.resolve(path)
	if err != nil {
		return 0, err
	}
	if node.Kind != KindFile {
		return 0, fmt.Errorf("%w: %q", ErrIsDir, path)
	}
	if f.BlockBytes() != v.PageBytes() {
		return 0, fmt.Errorf("fs: block size %d != vm page size %d", f.BlockBytes(), v.PageBytes())
	}
	pb := int64(v.PageBytes())
	length := int((node.Size + pb - 1) / pb * pb)
	if length == 0 {
		length = int(pb)
	}
	pager := &filePager{fs: f, ino: node.Ino, size: node.Size}
	if err := v.MapExternalShared(s, addr, pager, 0, length, perm); err != nil {
		return 0, err
	}
	return length, nil
}
