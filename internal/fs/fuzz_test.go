package fs

import "testing"

// FuzzDecodeRecords checks the journal-record decoder never panics on
// arbitrary bytes (a corrupted recovery box must fail cleanly, not crash
// the recovery path).
func FuzzDecodeRecords(f *testing.F) {
	f.Add([]byte{})
	f.Add(encodeRecord(recCreate, 2, 1, uint64(KindFile), "name", ""))
	f.Add(encodeRecord(recRename, 2, 1, 3, "old", "new"))
	f.Add([]byte{recSetSize, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, err := decodeRecords(data)
		if err != nil {
			return
		}
		// Whatever decodes must replay without panicking (errors are
		// fine: dangling references are reported, not crashed on).
		st := snapshotState{
			NextIno: RootIno + 1,
			Inodes:  map[uint64]*Inode{RootIno: {Ino: RootIno, Kind: KindDir, Nlink: 1, Entries: map[string]uint64{}}},
		}
		for _, rec := range recs {
			if err := applyRecord(&st, rec); err != nil {
				return
			}
		}
	})
}

// FuzzDecodeState checks the gob snapshot decoder fails cleanly on
// corruption.
func FuzzDecodeState(f *testing.F) {
	good, _ := encodeState(snapshotState{
		NextIno: 5,
		Inodes:  map[uint64]*Inode{1: {Ino: 1, Kind: KindDir, Nlink: 1, Entries: map[string]uint64{"x": 2}}},
	})
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0x00, 0x42})
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _ = decodeState(data) // must not panic
	})
}
