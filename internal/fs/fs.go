// Package fs implements the memory-resident file system of the paper's
// §3.1.
//
// Because every byte of storage is directly addressable at memory speed,
// the file system drops the machinery disks made necessary:
//
//   - no block clustering or seek-aware layout — blocks are wherever the
//     physical storage manager put them;
//   - no multi-level indirect blocks — a file's blocks are found by a
//     direct (inode, block-index) lookup;
//   - no file buffer cache — data is read in place from DRAM or flash.
//
// Metadata lives in battery-backed DRAM and is protected the way the
// paper suggests (citing the Recovery Box work): a reserved, checksummed
// DRAM region holds a metadata snapshot plus a journal of mutations since
// the snapshot. An operating-system crash cannot hurt it — battery-backed
// DRAM survives crashes — and recovery is a snapshot load plus journal
// replay. Against power failures (which do destroy DRAM), the file system
// checkpoints metadata to flash through the storage manager; data loss is
// then bounded by what the write-back policy had not yet migrated.
//
// File data goes through storman.Manager, which decides DRAM versus flash
// placement, absorbs overwrites and short-lived files in DRAM, and
// copy-on-writes flash-resident blocks. Memory-mapped files are served in
// place through a vm.ExternalPager.
package fs

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"ssmobile/internal/dram"
	"ssmobile/internal/obs"
	"ssmobile/internal/sim"
	"ssmobile/internal/storman"
)

// Sentinel errors.
var (
	// ErrNotExist reports a missing path component.
	ErrNotExist = errors.New("fs: no such file or directory")
	// ErrExist reports a create over an existing name.
	ErrExist = errors.New("fs: file exists")
	// ErrNotDir reports a non-directory used as one.
	ErrNotDir = errors.New("fs: not a directory")
	// ErrIsDir reports a file operation on a directory.
	ErrIsDir = errors.New("fs: is a directory")
	// ErrNotEmpty reports removal of a non-empty directory.
	ErrNotEmpty = errors.New("fs: directory not empty")
	// ErrBadPath reports a malformed path.
	ErrBadPath = errors.New("fs: bad path")
	// ErrRBoxFull reports that metadata outgrew the recovery-box region.
	ErrRBoxFull = errors.New("fs: recovery box full")
)

// Kind distinguishes files from directories.
type Kind uint8

// Inode kinds.
const (
	KindFile Kind = iota
	KindDir
)

// String names the kind.
func (k Kind) String() string {
	if k == KindDir {
		return "dir"
	}
	return "file"
}

// RootIno is the root directory's inode number. Object 0 in the storage
// manager is reserved for the metadata checkpoint.
const RootIno uint64 = 1

const metaObject uint64 = 0

// Inode is the on-"disk" metadata of one file or directory. All fields
// are exported for serialisation.
type Inode struct {
	Ino     uint64
	Kind    Kind
	Size    int64
	Nlink   int
	MtimeNs int64
	Entries map[string]uint64 // directories only
}

// Info is the result of Stat and ReadDir.
type Info struct {
	Name  string
	Ino   uint64
	Kind  Kind
	Size  int64
	Nlink int
	Mtime sim.Time
}

// Config parameterises the file system.
type Config struct {
	// RBoxBase and RBoxBytes delimit the recovery-box region in the DRAM
	// device. Zero bytes disables the recovery box (no crash protection).
	RBoxBase  int64
	RBoxBytes int64
	// SnapshotEvery forces a fresh recovery-box snapshot after this many
	// journal records; the journal is also compacted into a snapshot when
	// its region fills. Default 512.
	SnapshotEvery int
	// Obs receives the file system's metrics and op spans; nil falls back
	// to obs.Default().
	Obs *obs.Observer
}

// FS is the memory-resident file system. Not safe for concurrent use.
type FS struct {
	cfg   Config
	clock *sim.Clock
	sm    *storman.Manager
	dram  *dram.Device

	nextIno uint64
	inodes  map[uint64]*Inode

	rbox *rbox

	metaCheckpointBlocks int64 // blocks object 0 held at last checkpoint

	// Reusable hot-path scratch. FS is single-threaded (see the type
	// comment), and none of the consumers retain the buffers: blockBuf
	// assembles one block per ReadAt/WriteAt iteration, recBuf holds one
	// journal record, ckptBuf the framed metadata checkpoint.
	blockBuf []byte
	recBuf   []byte
	ckptBuf  []byte

	// inodeFree recycles fully-unlinked inodes (delete/recreate churn is
	// steady-state traffic for object stores); recycled inodes are reset
	// wholesale before reuse, so no stale field survives.
	inodeFree []*Inode

	obs                     *obs.Observer
	creates, reads, writes  *obs.Counter
	removes, syncs          *obs.Counter
	bytesRead, bytesWritten *obs.Counter
}

// Mkfs creates an empty file system on the storage manager, with its
// recovery box in the given DRAM region.
func Mkfs(cfg Config, clock *sim.Clock, sm *storman.Manager, dramDev *dram.Device) (*FS, error) {
	if cfg.SnapshotEvery <= 0 {
		cfg.SnapshotEvery = 512
	}
	o := obs.Or(cfg.Obs)
	lbl := func(op string) obs.Labels { return obs.Labels{"layer": "fs", "op": op} }
	f := &FS{
		cfg:          cfg,
		clock:        clock,
		sm:           sm,
		dram:         dramDev,
		nextIno:      RootIno + 1,
		inodes:       make(map[uint64]*Inode),
		obs:          o,
		creates:      o.Counter("ops_total", lbl("create")),
		reads:        o.Counter("ops_total", lbl("read")),
		writes:       o.Counter("ops_total", lbl("write")),
		removes:      o.Counter("ops_total", lbl("remove")),
		syncs:        o.Counter("ops_total", lbl("sync")),
		bytesRead:    o.Counter("bytes_total", lbl("read")),
		bytesWritten: o.Counter("bytes_total", lbl("write")),
	}
	if cfg.RBoxBytes > 0 {
		rb, err := newRBox(cfg, clock, dramDev)
		if err != nil {
			return nil, err
		}
		f.rbox = rb
	}
	f.inodes[RootIno] = &Inode{Ino: RootIno, Kind: KindDir, Nlink: 1, Entries: make(map[string]uint64)}
	if f.rbox != nil {
		if err := f.rbox.snapshot(f.snapshotState()); err != nil {
			return nil, err
		}
	}
	return f, nil
}

// BlockBytes reports the file system block size.
func (f *FS) BlockBytes() int { return f.sm.BlockBytes() }

// Manager exposes the underlying storage manager (for experiments).
func (f *FS) Manager() *storman.Manager { return f.sm }

// splitPath validates and splits an absolute path into components. Cold
// paths (MkdirAll, Stat's leaf naming) still use it; the per-request walk
// below slices components out of the path in place instead.
func splitPath(path string) ([]string, error) {
	if path == "" || path[0] != '/' {
		return nil, fmt.Errorf("%w: %q must be absolute", ErrBadPath, path)
	}
	var parts []string
	for _, c := range strings.Split(path, "/") {
		switch c {
		case "", ".":
		case "..":
			return nil, fmt.Errorf("%w: %q may not contain ..", ErrBadPath, path)
		default:
			parts = append(parts, c)
		}
	}
	return parts, nil
}

// walkErrKind classifies a path-walk failure without formatting an error,
// so probe callers (Exists, the server's existence checks) pay nothing on
// the miss path; resolve formats the kind into the public error values.
type walkErrKind uint8

const (
	walkOK walkErrKind = iota
	walkNotAbsolute
	walkDotDot
	walkNotDir
	walkNotExist
	walkDangling
	walkNoParent
)

// validate checks the path shape the way splitPath does — absolute, no
// ".." anywhere — before any component is resolved, so malformed paths
// report ErrBadPath even when an earlier component is missing.
func validatePath(path string) walkErrKind {
	if path == "" || path[0] != '/' {
		return walkNotAbsolute
	}
	for i := 0; i < len(path); {
		j := i + 1
		for j < len(path) && path[j] != '/' {
			j++
		}
		if path[i+1:j] == ".." {
			return walkDotDot
		}
		i = j
	}
	return walkOK
}

// walk resolves path to an inode without allocating.
func (f *FS) walk(path string) (*Inode, walkErrKind, string) {
	if kind := validatePath(path); kind != walkOK {
		return nil, kind, ""
	}
	cur := f.inodes[RootIno]
	for i := 0; i < len(path); {
		j := i + 1
		for j < len(path) && path[j] != '/' {
			j++
		}
		name := path[i+1 : j]
		i = j
		if name == "" || name == "." {
			continue
		}
		if cur.Kind != KindDir {
			return nil, walkNotDir, ""
		}
		ino, ok := cur.Entries[name]
		if !ok {
			return nil, walkNotExist, ""
		}
		cur = f.inodes[ino]
		if cur == nil {
			return nil, walkDangling, name
		}
	}
	return cur, walkOK, ""
}

// walkParent resolves path's parent directory and leaf name without
// allocating.
func (f *FS) walkParent(path string) (*Inode, string, walkErrKind, string) {
	if kind := validatePath(path); kind != walkOK {
		return nil, "", kind, ""
	}
	cur := f.inodes[RootIno]
	leaf := ""
	for i := 0; i < len(path); {
		j := i + 1
		for j < len(path) && path[j] != '/' {
			j++
		}
		name := path[i+1 : j]
		i = j
		if name == "" || name == "." {
			continue
		}
		if leaf != "" {
			if cur.Kind != KindDir {
				return nil, "", walkNotDir, ""
			}
			ino, ok := cur.Entries[leaf]
			if !ok {
				return nil, "", walkNotExist, ""
			}
			cur = f.inodes[ino]
			if cur == nil {
				return nil, "", walkDangling, leaf
			}
		}
		leaf = name
	}
	if leaf == "" {
		return nil, "", walkNoParent, ""
	}
	if cur.Kind != KindDir {
		return nil, "", walkNotDir, ""
	}
	return cur, leaf, walkOK, ""
}

// walkError formats a walk failure into the public error values, with the
// same messages resolve has always produced.
func walkError(kind walkErrKind, comp, path string) error {
	switch kind {
	case walkNotAbsolute:
		return fmt.Errorf("%w: %q must be absolute", ErrBadPath, path)
	case walkDotDot:
		return fmt.Errorf("%w: %q may not contain ..", ErrBadPath, path)
	case walkNotDir:
		return fmt.Errorf("%w: %q", ErrNotDir, path)
	case walkNotExist:
		return fmt.Errorf("%w: %q", ErrNotExist, path)
	case walkDangling:
		return fmt.Errorf("fs: dangling entry %q in %q", comp, path)
	case walkNoParent:
		return fmt.Errorf("%w: %q has no parent", ErrBadPath, path)
	}
	return nil
}

// resolve walks the path to an inode. The success path does not allocate;
// errors are formatted only when they actually propagate.
func (f *FS) resolve(path string) (*Inode, error) {
	node, kind, comp := f.walk(path)
	if kind != walkOK {
		return nil, walkError(kind, comp, path)
	}
	return node, nil
}

// resolveParent walks to the parent directory of path and returns it with
// the leaf name.
func (f *FS) resolveParent(path string) (*Inode, string, error) {
	parent, leaf, kind, comp := f.walkParent(path)
	if kind != walkOK {
		return nil, "", walkError(kind, comp, path)
	}
	return parent, leaf, nil
}

func (f *FS) now() sim.Time { return f.clock.Now() }

// scratchBlock returns the file system's reusable one-block buffer.
// ReadAt and WriteAt never nest, so a single buffer serves both.
func (f *FS) scratchBlock() []byte {
	bs := f.BlockBytes()
	if cap(f.blockBuf) < bs {
		f.blockBuf = make([]byte, bs)
	}
	return f.blockBuf[:bs]
}

// span opens an op span against the file system's clock and the DRAM
// device's energy meter.
func (f *FS) span(op string) obs.SpanRef {
	return f.obs.Span(f.clock, f.dram.Meter(), "fs", op)
}

// create makes a new inode under the parent.
// newInode returns a zeroed inode, reusing a recycled one when possible.
func (f *FS) newInode() *Inode {
	if n := len(f.inodeFree); n > 0 {
		node := f.inodeFree[n-1]
		f.inodeFree = f.inodeFree[:n-1]
		return node
	}
	return &Inode{}
}

func (f *FS) create(path string, kind Kind) (_ *Inode, err error) {
	parent, leaf, err := f.resolveParent(path)
	if err != nil {
		return nil, err
	}
	if _, ok := parent.Entries[leaf]; ok {
		return nil, fmt.Errorf("%w: %q", ErrExist, path)
	}
	sp := f.span("create")
	defer func() { sp.End(0, err) }()
	f.creates.Inc()
	ino := f.nextIno
	f.nextIno++
	node := f.newInode()
	node.Ino, node.Kind, node.Nlink, node.MtimeNs = ino, kind, 1, int64(f.now())
	if kind == KindDir {
		node.Entries = make(map[string]uint64)
	}
	f.inodes[ino] = node
	parent.Entries[leaf] = ino
	parent.MtimeNs = int64(f.now())
	if err := f.journal(recCreate, ino, parent.Ino, uint64(kind), leaf, ""); err != nil {
		return nil, err
	}
	return node, nil
}

// Create makes an empty file.
func (f *FS) Create(path string) error {
	_, err := f.create(path, KindFile)
	return err
}

// Mkdir makes an empty directory.
func (f *FS) Mkdir(path string) error {
	_, err := f.create(path, KindDir)
	return err
}

// MkdirAll makes the directory and any missing parents.
func (f *FS) MkdirAll(path string) error {
	parts, err := splitPath(path)
	if err != nil {
		return err
	}
	cur := "/"
	for _, p := range parts {
		cur = joinPath(cur, p)
		if err := f.Mkdir(cur); err != nil && !errors.Is(err, ErrExist) {
			return err
		}
	}
	return nil
}

func joinPath(dir, name string) string {
	if dir == "/" {
		return "/" + name
	}
	return dir + "/" + name
}

// Stat describes the object at path.
func (f *FS) Stat(path string) (Info, error) {
	node, err := f.resolve(path)
	if err != nil {
		return Info{}, err
	}
	name := "/"
	if parts, _ := splitPath(path); len(parts) > 0 {
		name = parts[len(parts)-1]
	}
	return Info{Name: name, Ino: node.Ino, Kind: node.Kind, Size: node.Size, Nlink: node.Nlink, Mtime: sim.Time(node.MtimeNs)}, nil
}

// ReadDir lists a directory in name order.
func (f *FS) ReadDir(path string) ([]Info, error) {
	node, err := f.resolve(path)
	if err != nil {
		return nil, err
	}
	if node.Kind != KindDir {
		return nil, fmt.Errorf("%w: %q", ErrNotDir, path)
	}
	names := make([]string, 0, len(node.Entries))
	for name := range node.Entries {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]Info, 0, len(names))
	for _, name := range names {
		child := f.inodes[node.Entries[name]]
		out = append(out, Info{Name: name, Ino: child.Ino, Kind: child.Kind, Size: child.Size, Nlink: child.Nlink, Mtime: sim.Time(child.MtimeNs)})
	}
	return out, nil
}

// WriteAt writes data into the file at off, extending it as needed.
func (f *FS) WriteAt(path string, off int64, data []byte) (_ int, err error) {
	node, err := f.resolve(path)
	if err != nil {
		return 0, err
	}
	if node.Kind != KindFile {
		return 0, fmt.Errorf("%w: %q", ErrIsDir, path)
	}
	if off < 0 {
		return 0, fmt.Errorf("%w: negative offset", ErrBadPath)
	}
	bs := int64(f.BlockBytes())
	written := 0
	sp := f.span("write")
	defer func() { sp.End(int64(written), err) }()
	f.writes.Inc()
	defer func() { f.bytesWritten.Add(int64(written)) }()
	for written < len(data) {
		blk := (off + int64(written)) / bs
		blkOff := int((off + int64(written)) % bs)
		n := int(bs) - blkOff
		if n > len(data)-written {
			n = len(data) - written
		}
		key := storman.Key{Object: node.Ino, Block: blk}
		if blkOff == 0 && n == int(bs) {
			// Whole-block write: no read-modify-write needed.
			if err := f.sm.WriteBlock(key, data[written:written+n]); err != nil {
				return written, err
			}
		} else {
			// Assemble the block: existing contents, zero-extended to
			// cover the write, then the new bytes.
			buf := f.scratchBlock()
			got, err := f.sm.ReadBlock(key, buf)
			if err != nil {
				return written, err
			}
			// Zero the hole between the existing contents and the write
			// (the buffer is reused, so stale bytes must not leak in).
			for i := got; i < blkOff; i++ {
				buf[i] = 0
			}
			end := blkOff + n
			if got > end {
				end = got
			}
			copy(buf[blkOff:], data[written:written+n])
			if err := f.sm.WriteBlock(key, buf[:end]); err != nil {
				return written, err
			}
		}
		written += n
	}
	if end := off + int64(len(data)); end > node.Size {
		node.Size = end
	}
	node.MtimeNs = int64(f.now())
	if err := f.journal(recSetSize, node.Ino, uint64(node.Size), uint64(node.MtimeNs), "", ""); err != nil {
		return written, err
	}
	return written, nil
}

// Append writes data at the end of the file.
func (f *FS) Append(path string, data []byte) (int, error) {
	node, err := f.resolve(path)
	if err != nil {
		return 0, err
	}
	return f.WriteAt(path, node.Size, data)
}

// ReadAt reads up to len(buf) bytes from off; it returns the count read,
// which is short at end of file.
func (f *FS) ReadAt(path string, off int64, buf []byte) (_ int, err error) {
	node, err := f.resolve(path)
	if err != nil {
		return 0, err
	}
	if node.Kind != KindFile {
		return 0, fmt.Errorf("%w: %q", ErrIsDir, path)
	}
	if off < 0 {
		return 0, fmt.Errorf("%w: negative offset", ErrBadPath)
	}
	if off >= node.Size {
		return 0, nil
	}
	want := int64(len(buf))
	if off+want > node.Size {
		want = node.Size - off
	}
	bs := int64(f.BlockBytes())
	read := int64(0)
	sp := f.span("read")
	defer func() { sp.End(read, err) }()
	f.reads.Inc()
	defer func() { f.bytesRead.Add(read) }()
	block := f.scratchBlock()
	for read < want {
		blk := (off + read) / bs
		blkOff := int((off + read) % bs)
		n := int(bs) - blkOff
		if int64(n) > want-read {
			n = int(want - read)
		}
		got, err := f.sm.ReadBlock(storman.Key{Object: node.Ino, Block: blk}, block)
		if err != nil {
			return int(read), err
		}
		// Zero-fill holes and short blocks.
		for i := got; i < blkOff+n; i++ {
			block[i] = 0
		}
		copy(buf[read:read+int64(n)], block[blkOff:blkOff+n])
		read += int64(n)
	}
	return int(read), nil
}

// ReadFile reads the whole file.
func (f *FS) ReadFile(path string) ([]byte, error) {
	node, err := f.resolve(path)
	if err != nil {
		return nil, err
	}
	if node.Kind != KindFile {
		return nil, fmt.Errorf("%w: %q", ErrIsDir, path)
	}
	buf := make([]byte, node.Size)
	n, err := f.ReadAt(path, 0, buf)
	return buf[:n], err
}

// WriteFile replaces the file's contents (creating it if absent).
func (f *FS) WriteFile(path string, data []byte) error {
	if _, err := f.resolve(path); errors.Is(err, ErrNotExist) {
		if err := f.Create(path); err != nil {
			return err
		}
	} else if err != nil {
		return err
	}
	if err := f.Truncate(path, 0); err != nil {
		return err
	}
	_, err := f.WriteAt(path, 0, data)
	return err
}

// Truncate sets the file's size, dropping blocks past the new end.
func (f *FS) Truncate(path string, size int64) error {
	node, err := f.resolve(path)
	if err != nil {
		return err
	}
	if node.Kind != KindFile {
		return fmt.Errorf("%w: %q", ErrIsDir, path)
	}
	if size < 0 {
		return fmt.Errorf("%w: negative size", ErrBadPath)
	}
	if size < node.Size {
		bs := int64(f.BlockBytes())
		firstDead := (size + bs - 1) / bs
		lastOld := (node.Size - 1) / bs
		for blk := firstDead; blk <= lastOld; blk++ {
			if err := f.sm.DeleteBlock(storman.Key{Object: node.Ino, Block: blk}); err != nil {
				return err
			}
		}
		if size%bs != 0 {
			if err := f.sm.TruncateBlock(storman.Key{Object: node.Ino, Block: size / bs}, int(size%bs)); err != nil {
				return err
			}
		}
	}
	node.Size = size
	node.MtimeNs = int64(f.now())
	return f.journal(recSetSize, node.Ino, uint64(node.Size), uint64(node.MtimeNs), "", "")
}

// Link creates a hard link: newPath names the same inode as oldPath,
// which must be a file. Data is freed only when the last link goes.
func (f *FS) Link(oldPath, newPath string) error {
	node, err := f.resolve(oldPath)
	if err != nil {
		return err
	}
	if node.Kind != KindFile {
		return fmt.Errorf("%w: %q", ErrIsDir, oldPath)
	}
	parent, leaf, err := f.resolveParent(newPath)
	if err != nil {
		return err
	}
	if _, exists := parent.Entries[leaf]; exists {
		return fmt.Errorf("%w: %q", ErrExist, newPath)
	}
	parent.Entries[leaf] = node.Ino
	node.Nlink++
	parent.MtimeNs = int64(f.now())
	return f.journal(recLink, node.Ino, parent.Ino, 0, leaf, "")
}

// Remove deletes a name: a file link (the inode and data go when the
// last link is removed) or an empty directory.
func (f *FS) Remove(path string) (err error) {
	parent, leaf, err := f.resolveParent(path)
	if err != nil {
		return err
	}
	ino, ok := parent.Entries[leaf]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotExist, path)
	}
	sp := f.span("remove")
	defer func() { sp.End(0, err) }()
	f.removes.Inc()
	node := f.inodes[ino]
	if node.Kind == KindDir && len(node.Entries) > 0 {
		return fmt.Errorf("%w: %q", ErrNotEmpty, path)
	}
	node.Nlink--
	delete(parent.Entries, leaf)
	if node.Nlink <= 0 {
		if node.Kind == KindFile {
			if err := f.sm.DeleteObject(ino); err != nil {
				return err
			}
		}
		delete(f.inodes, ino)
		*node = Inode{}
		f.inodeFree = append(f.inodeFree, node)
	}
	parent.MtimeNs = int64(f.now())
	return f.journal(recRemove, ino, parent.Ino, 0, leaf, "")
}

// Rename moves a file or directory to a new path, which must not exist.
func (f *FS) Rename(oldPath, newPath string) error {
	oldParent, oldLeaf, err := f.resolveParent(oldPath)
	if err != nil {
		return err
	}
	ino, ok := oldParent.Entries[oldLeaf]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotExist, oldPath)
	}
	newParent, newLeaf, err := f.resolveParent(newPath)
	if err != nil {
		return err
	}
	if _, exists := newParent.Entries[newLeaf]; exists {
		return fmt.Errorf("%w: %q", ErrExist, newPath)
	}
	delete(oldParent.Entries, oldLeaf)
	newParent.Entries[newLeaf] = ino
	now := int64(f.now())
	oldParent.MtimeNs, newParent.MtimeNs = now, now
	return f.journal(recRename, ino, oldParent.Ino, newParent.Ino, oldLeaf, newLeaf)
}

// Exists reports whether the path resolves.
func (f *FS) Exists(path string) bool {
	_, kind, _ := f.walk(path)
	return kind == walkOK
}

// NumInodes reports the live inode count (including the root).
func (f *FS) NumInodes() int { return len(f.inodes) }
