// Live ops surface for the object-storage service: a second, plain-HTTP
// listener exposing the process's metrics, health, profiles and flight
// recorder. It is deliberately separate from the data-plane TCP port so
// an operator can still scrape a wedged server, and so the data protocol
// stays nc(1)-simple.
//
// Endpoints:
//
//	/metrics             Prometheus text exposition of the obs Registry
//	/healthz             JSON {status, state, draining, shedding}; the
//	                     admission-control state is serving, shedding or
//	                     draining, and draining degrades to HTTP 503
//	/debug/health        SMART-style device-health report (flash.HealthReport
//	                     JSON): endurance budget, wear spread, windowed burn
//	                     rate and the lifetime left at it; ?device= selects a
//	                     card other than the default "flash"
//	/debug/fleet         cluster-wide health rollup (cluster.FleetReport
//	                     JSON) when a fleet source is configured; 404 on a
//	                     single node
//	/debug/events        the cluster event journal as JSONL (cordon,
//	                     migrate, heal, kill, restart, ...), replayable
//	                     offline with `ssmtrace events`; 404 when no
//	                     journal is attached
//	/debug/pprof/...     net/http/pprof profiles (real time, not virtual)
//	/debug/flightrecord  trigger an on-demand flight-recorder dump
package server

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"

	"ssmobile/internal/flash"
	"ssmobile/internal/obs"
)

// Admin is the ops-surface HTTP server.
type Admin struct {
	srv *Server
	o   *obs.Observer

	mu       sync.Mutex
	ln       net.Listener
	hs       *http.Server
	draining bool

	// snapshot, when set, replaces the registry as /metrics' source — the
	// cluster front end installs its merged fleet snapshot here so
	// per-node series (stamped with a node label at merge time) are
	// scraped live instead of the front-end registry's last merge.
	snapshot func() obs.Snapshot
	// fleet, when set, serves /debug/fleet. The value is whatever the
	// source marshals to (cluster.FleetReport); typed as any to keep the
	// server package free of a cluster import.
	fleet func() (any, error)
}

// NewAdmin builds the ops surface for srv, exposing o's registry and
// flight recorder (attach one with o.SetFlightRecorder).
func NewAdmin(srv *Server, o *obs.Observer) *Admin {
	return &Admin{srv: srv, o: obs.Or(o)}
}

// SetSnapshotSource replaces /metrics' data source with a point-in-time
// snapshot producer (nil restores the registry). The cluster front end
// uses it so a scrape sees every node's series under its node label,
// assembled at scrape time.
func (a *Admin) SetSnapshotSource(fn func() obs.Snapshot) {
	a.mu.Lock()
	a.snapshot = fn
	a.mu.Unlock()
}

// SetFleet installs the /debug/fleet source (nil uninstalls; the
// endpoint 404s). The returned value is marshalled as indented JSON.
func (a *Admin) SetFleet(fn func() (any, error)) {
	a.mu.Lock()
	a.fleet = fn
	a.mu.Unlock()
}

// SetDraining flips the health status reported by /healthz; the TCP
// transport calls this when Shutdown begins so load balancers can stop
// sending traffic before the data port closes.
func (a *Admin) SetDraining(v bool) {
	a.mu.Lock()
	a.draining = v
	a.mu.Unlock()
}

// Handler returns the admin mux; useful for tests that want the surface
// without a real listener.
func (a *Admin) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", a.handleMetrics)
	mux.HandleFunc("/healthz", a.handleHealthz)
	mux.HandleFunc("/debug/health", a.handleHealth)
	mux.HandleFunc("/debug/fleet", a.handleFleet)
	mux.HandleFunc("/debug/events", a.handleEvents)
	mux.HandleFunc("/debug/flightrecord", a.handleFlightRecord)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Listen binds addr (e.g. "127.0.0.1:9090") and serves in the
// background. Use Addr for the bound address and Shutdown to stop.
func (a *Admin) Listen(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	a.mu.Lock()
	a.ln = ln
	a.hs = &http.Server{Handler: a.Handler()}
	hs := a.hs
	a.mu.Unlock()
	go hs.Serve(ln)
	return nil
}

// Addr reports the bound listener address; nil before Listen.
func (a *Admin) Addr() net.Addr {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.ln == nil {
		return nil
	}
	return a.ln.Addr()
}

// Shutdown closes the admin listener. In-flight scrapes finish; it does
// not wait for long-running pprof profiles.
func (a *Admin) Shutdown() error {
	a.mu.Lock()
	hs := a.hs
	a.hs = nil
	a.mu.Unlock()
	if hs == nil {
		return nil
	}
	return hs.Close()
}

func (a *Admin) handleMetrics(w http.ResponseWriter, r *http.Request) {
	a.mu.Lock()
	snapshot := a.snapshot
	a.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	var err error
	if snapshot != nil {
		err = obs.WriteSnapshotPrometheus(w, snapshot())
	} else {
		err = obs.WritePrometheus(w, a.o.Registry)
	}
	if err != nil {
		// Headers are gone; all we can do is note it inline.
		fmt.Fprintf(w, "# write error: %v\n", err)
	}
}

func (a *Admin) handleHealthz(w http.ResponseWriter, r *http.Request) {
	a.mu.Lock()
	draining := a.draining
	a.mu.Unlock()
	// The transport flips the admin flag on shutdown; a direct Drain on
	// the server (no transport involved) must read the same way.
	draining = draining || (a.srv != nil && a.srv.Draining())
	status := "ok"
	state := "serving"
	code := http.StatusOK
	shedding := a.srv != nil && a.srv.Shedding()
	switch {
	case draining:
		status = "draining"
		state = "draining"
		code = http.StatusServiceUnavailable
	case shedding:
		// Shedding is the server protecting itself, not an outage: report
		// degraded but stay 200 so orchestrators don't restart it.
		status = "overloaded"
		state = "shedding"
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]any{
		"status":   status,
		"state":    state,
		"draining": draining,
		"shedding": shedding,
	})
}

// handleHealth serves the SMART-style device-health report: the health
// computation is a pure function of a metrics snapshot (see
// flash.HealthFromSnapshot), so this endpoint and an offline
// `ssmtrace health` over a -metrics dump can never disagree.
func (a *Admin) handleHealth(w http.ResponseWriter, r *http.Request) {
	if a.o == nil || a.o.Registry == nil {
		http.Error(w, "no metrics registry configured", http.StatusNotFound)
		return
	}
	device := r.URL.Query().Get("device")
	if device == "" {
		device = "flash"
	}
	rep, err := flash.HealthFromSnapshot(a.o.Registry.Snapshot(), device)
	if err != nil {
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Write(append(data, '\n'))
}

// handleFleet serves the cluster-wide health rollup. Like /debug/health
// it is backed by a pure function of a metrics snapshot
// (cluster.FleetFromSnapshot), so this endpoint and an offline
// `ssmtrace fleet` over a -metrics dump can never disagree.
func (a *Admin) handleFleet(w http.ResponseWriter, r *http.Request) {
	a.mu.Lock()
	fleet := a.fleet
	a.mu.Unlock()
	if fleet == nil {
		http.Error(w, "no fleet source configured (single-node server)", http.StatusNotFound)
		return
	}
	rep, err := fleet()
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Write(append(data, '\n'))
}

// handleEvents streams the attached event journal as JSONL — one header
// line with totals, then one event per line, oldest first.
func (a *Admin) handleEvents(w http.ResponseWriter, r *http.Request) {
	l := a.o.EventLog()
	if l == nil {
		http.Error(w, "no event journal attached", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "application/jsonl")
	if err := l.WriteJSONL(w); err != nil {
		fmt.Fprintf(w, "# write error: %v\n", err)
	}
}

func (a *Admin) handleFlightRecord(w http.ResponseWriter, r *http.Request) {
	fr := a.o.FlightRecorder()
	if fr == nil {
		http.Error(w, "no flight recorder configured", http.StatusNotFound)
		return
	}
	path, err := fr.Dump("on-demand")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]string{"dumped": path})
}
