// Package server implements a multi-tenant object-storage service over
// the solid-state stack (fs + storman + ftl): the serving layer the
// ROADMAP's north star demands, and the harness under which the paper's
// cleaning bandwidth becomes a visible saturation knee (experiment E12).
//
// Each tenant gets a session scoped to its own directory; objects are
// keyed files under it. Three serving-stack mechanisms sit between
// requests and the file system:
//
//   - sync group-commit: an explicit sync whose arrival falls within the
//     batch window of the last completed sync is absorbed by it — many
//     clients calling sync pay for one checkpoint;
//   - watermark admission control: when write-buffer occupancy crosses
//     the high watermark while the flash cleaner is behind its free-space
//     target, new writes are shed with ErrOverloaded until occupancy
//     falls below the low watermark or the cleaner catches up
//     (hysteresis, so admission does not flap);
//   - graceful degradation: shed requests are cheap — the server stays
//     responsive for reads and keeps latency bounded instead of letting
//     the queue grow without bound.
//
// The backpressure signals are the same obs gauges the dashboards read
// (storman "buffer_occupancy", ftl "cleaner_lag_blocks"), so operators
// and the admission controller never disagree about why load was shed.
//
// The storage stack is single-threaded virtual-time simulation, so the
// server serialises requests under a mutex; concurrency (TCP handlers,
// test clients) queues at that lock, and queueing delay shows up in
// virtual-time latency via the request's Arrival timestamp.
package server

import (
	"errors"
	"fmt"
	"strconv"
	"sync"

	"ssmobile/internal/engine"
	"ssmobile/internal/fs"
	"ssmobile/internal/obs"
	"ssmobile/internal/sim"
	"ssmobile/internal/storman"
)

// Typed service errors. The TCP layer maps them to wire codes and the
// client helper maps the codes back, so callers on either side of the
// socket can errors.Is against the same values.
var (
	// ErrOverloaded reports a write shed by admission control: the write
	// buffer is above the high watermark and the cleaner is behind.
	ErrOverloaded = errors.New("server: overloaded, write shed")
	// ErrDraining reports a request that arrived after shutdown began.
	ErrDraining = errors.New("server: draining, not accepting requests")
	// ErrNotFound reports an operation on a missing object.
	ErrNotFound = errors.New("server: object not found")
	// ErrBadRequest reports a malformed request.
	ErrBadRequest = errors.New("server: bad request")
)

// Backend is the storage stack the server serves from. The fields are
// the layers core.NewSolidState assembles; server deliberately does not
// import core, so core can drive server in experiments.
type Backend struct {
	FS      *fs.FS
	Storage *storman.Manager
	Engine  engine.Engine
	Clock   *sim.Clock
}

// Config parameterises the service.
type Config struct {
	// HighWatermark and LowWatermark bound the admission hysteresis on
	// write-buffer occupancy (defaults 0.9 and 0.75). Shedding starts
	// when occupancy reaches High while the cleaner is behind, and stops
	// when occupancy falls to Low or the cleaner catches up.
	HighWatermark, LowWatermark float64
	// SyncBatchWindow is the group-commit window: a sync arriving within
	// this duration of the last completed sync is absorbed by it
	// (default 50ms). Zero-window behaviour still batches syncs whose
	// arrival predates the last sync's completion.
	SyncBatchWindow sim.Duration
	// Obs receives the server's metrics; nil falls back to obs.Default().
	Obs *obs.Observer
	// OnShedEngage, if set, is called once per false→true transition of
	// the admission controller's shedding state — the flight recorder's
	// hook. It runs under the server's mutex with a request mid-flight,
	// so it must not call back into the server; reading telemetry
	// (registry, tracer) is safe.
	OnShedEngage func()
}

func (c Config) withDefaults() Config {
	if c.HighWatermark <= 0 || c.HighWatermark > 1 {
		c.HighWatermark = 0.9
	}
	if c.LowWatermark <= 0 || c.LowWatermark >= c.HighWatermark {
		c.LowWatermark = c.HighWatermark * 5 / 6
	}
	if c.SyncBatchWindow <= 0 {
		c.SyncBatchWindow = 50 * sim.Millisecond
	}
	return c
}

// OpKind is a service request type.
type OpKind uint8

// Request kinds.
const (
	OpGet OpKind = iota
	OpPut
	OpTruncate
	OpDelete
	OpSync
)

var opNames = [...]string{"get", "put", "truncate", "delete", "sync"}

// String names the kind.
func (k OpKind) String() string {
	if int(k) < len(opNames) {
		return opNames[k]
	}
	return fmt.Sprintf("OpKind(%d)", int(k))
}

// Request is one service request.
type Request struct {
	Kind OpKind
	// Key names the object within the session's namespace.
	Key uint64
	// Offset addresses Get/Put transfers.
	Offset int64
	// Data is the Put payload.
	Data []byte
	// Size is the Get transfer length or the Truncate target length.
	Size int64
	// Arrival is the request's virtual arrival time; zero or past
	// arrivals are served immediately, and the gap to completion is the
	// reported latency (service plus queueing delay).
	Arrival sim.Time
}

// Response reports a completed request.
type Response struct {
	// N is the byte count transferred.
	N int
	// Data is the Get payload (the server's buffer; copy to retain).
	Data []byte
	// Latency is completion minus arrival in virtual time.
	Latency sim.Duration
	// Batched reports a sync absorbed by group commit.
	Batched bool
}

// Stats summarises the server's request accounting.
type Stats struct {
	// Completed counts successfully served requests, by kind and total.
	Completed int64
	// Shed counts writes rejected by admission control.
	Shed int64
	// NotFound counts requests that named a missing object.
	NotFound int64
	// BatchedSyncs counts syncs absorbed by group commit.
	BatchedSyncs int64
	// SyncFlushes counts syncs that actually flushed.
	SyncFlushes int64
}

// Server is the object-storage service. All methods are safe for
// concurrent use; requests serialise on an internal mutex because the
// storage stack beneath is a single-threaded simulation.
type Server struct {
	mu       sync.Mutex
	cfg      Config
	b        Backend
	draining bool
	shedding bool
	lastSync sim.Time
	synced   bool // a sync has completed since startup

	st        Stats
	completed *obs.Counter
	shed      *obs.Counter
	notFound  *obs.Counter
	batched   *obs.Counter
	shedGauge *obs.Gauge
	// lat and breakdown are handle arrays resolved once at construction
	// (indexed by OpKind and by obs.BreakdownStages order respectively)
	// so the per-request hot path never touches a map.
	lat [OpSync + 1]*obs.Histogram
	// obs is the resolved observer request trace contexts install on;
	// breakdown holds one latency-attribution histogram per stage, fed
	// from each completed request's trace context (zeros included, so a
	// stage's quantiles are over ALL requests, not just the stalled
	// ones). shedEngages counts admission false→true transitions.
	obs         *obs.Observer
	breakdown   []*obs.Histogram
	shedEngages *obs.Counter
}

// New builds a server over the backend.
func New(b Backend, cfg Config) (*Server, error) {
	if b.FS == nil || b.Storage == nil || b.Engine == nil || b.Clock == nil {
		return nil, fmt.Errorf("server: backend needs FS, Storage, Engine and Clock")
	}
	cfg = cfg.withDefaults()
	o := obs.Or(cfg.Obs)
	s := &Server{
		cfg:       cfg,
		b:         b,
		completed: o.Counter("requests_total", obs.Labels{"layer": "server", "result": "ok"}),
		shed:      o.Counter("requests_total", obs.Labels{"layer": "server", "result": "shed"}),
		notFound:  o.Counter("requests_total", obs.Labels{"layer": "server", "result": "notfound"}),
		batched:   o.Counter("batched_syncs_total", obs.Labels{"layer": "server"}),
	}
	for k := OpGet; k <= OpSync; k++ {
		s.lat[k] = o.Histogram("request_latency_ns", obs.Labels{"layer": "server", "op": k.String()})
	}
	s.shedGauge = o.Gauge("shedding", obs.Labels{"layer": "server"})
	s.obs = o
	s.shedEngages = o.Counter("shed_engage_total", obs.Labels{"layer": "server"})
	s.breakdown = make([]*obs.Histogram, len(obs.BreakdownStages))
	for i, stage := range obs.BreakdownStages {
		s.breakdown[i] = o.Histogram("serve_latency_breakdown", obs.Labels{"layer": "server", "stage": stage})
	}
	return s, nil
}

// BreakdownSim exposes the per-instance latency-attribution histogram
// for one stage (see obs.BreakdownStages) for read access after a
// single-threaded run — E12b's table reads these directly. Samples only
// accumulate when the observer traces requests (it has a Tracer); an
// untraced server leaves them empty.
func (s *Server) BreakdownSim(stage string) *sim.Histogram {
	for i, name := range obs.BreakdownStages {
		if name == stage {
			return s.breakdown[i].Sim()
		}
	}
	return nil
}

// Session scopes requests to one tenant's directory.
type Session struct {
	s      *Server
	tenant string
	dir    string
	// paths interns object-key → path strings so repeated requests for
	// the same key never re-format; nfErrs interns the matching not-found
	// errors (misses on deleted objects are steady-state traffic, and a
	// freshly formatted error per miss was a measurable hot-path
	// allocation); getBuf is the session's reusable Get payload buffer
	// (Response.Data is documented as borrowed). All are only touched
	// under the server mutex, which serialises every Do.
	paths  map[uint64]string
	nfErrs map[uint64]error
	getBuf []byte
}

// Open starts (or resumes) a tenant session, creating its directory.
func (s *Server) Open(tenant string) (*Session, error) {
	if tenant == "" || !validTenant(tenant) {
		return nil, fmt.Errorf("%w: bad tenant %q", ErrBadRequest, tenant)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil, ErrDraining
	}
	dir := "/srv/" + tenant
	if err := s.b.FS.MkdirAll(dir); err != nil {
		return nil, err
	}
	return &Session{
		s: s, tenant: tenant, dir: dir,
		paths:  make(map[uint64]string),
		nfErrs: make(map[uint64]error),
	}, nil
}

// OpenSession is Open behind the Service interface the TCP front end
// and the workload driver consume.
func (s *Server) OpenSession(tenant string) (RequestDoer, error) {
	sess, err := s.Open(tenant)
	if err != nil {
		return nil, err
	}
	return sess, nil
}

// Now reports the backend clock's current virtual time.
func (s *Server) Now() sim.Time {
	return s.b.Clock.Now()
}

func validTenant(t string) bool {
	for _, r := range t {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_':
		default:
			return false
		}
	}
	return true
}

// Tenant reports the session's tenant name.
func (sess *Session) Tenant() string { return sess.tenant }

func (sess *Session) path(key uint64) string {
	if p, ok := sess.paths[key]; ok {
		return p
	}
	p := sess.dir + "/o" + strconv.FormatUint(key, 10)
	sess.paths[key] = p
	return p
}

// notFound returns the session's interned not-found error for the key —
// byte-identical to fmt.Errorf("%w: %s", ErrNotFound, path) and still
// unwrapping to ErrNotFound, without re-formatting on every miss.
func (sess *Session) notFound(key uint64, path string) error {
	if err, ok := sess.nfErrs[key]; ok {
		return err
	}
	err := fmt.Errorf("%w: %s", ErrNotFound, path)
	sess.nfErrs[key] = err
	return err
}

// Do serves one request: it advances virtual time to the request's
// arrival (running background daemons and idle cleaning in the gap),
// applies admission control, dispatches, and reports the virtual-time
// latency from arrival to completion.
func (sess *Session) Do(req Request) (Response, error) {
	s := sess.s
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return Response{}, ErrDraining
	}

	// Background work runs at the start of the idle gap: the write-back
	// daemon migrates aged blocks, and — only if there is an idle gap
	// before this request's arrival — the cleaner gets the gap to reclaim
	// space. Under light load cleaning is free; once arrivals outpace
	// service there are no gaps, the cleaner falls behind, its lag grows,
	// and admission control engages — the saturation knee.
	//
	// Trace attribution follows the same causal line. A request served
	// out of an idle gap did not wait for the maintenance, so the Tick
	// stays anonymous background work. A backlogged request did: the
	// daemon pass at the head of its service is time it must wait out,
	// so its trace context opens first and the flush migrations — and
	// any cleans they induce — join the request's causal tree instead
	// of disappearing into the queue component. Tracing never advances
	// the clock; with an untraced observer tc is nil and all of this is
	// free, so results are identical either way.
	now := s.b.Clock.Now()
	idle := req.Arrival > now
	var tc *obs.TraceContext
	var err error
	if idle {
		err = s.b.Storage.Tick()
	} else {
		tc = s.obs.BeginRequest(s.b.Clock, "server", req.Kind.String(), queueDelay(now, req.Arrival))
		err = s.b.Storage.TickDaemon()
	}
	if err != nil {
		s.observeBreakdown(tc, tc.Finish(0, err))
		return Response{}, err
	}
	now = s.b.Clock.Now()
	arrival := req.Arrival
	if arrival > now {
		s.b.Clock.AdvanceTo(arrival)
	} else if arrival == 0 {
		arrival = now
	}

	s.updateAdmission()
	if s.shedding && (req.Kind == OpPut || req.Kind == OpTruncate) {
		// The daemon pass the shed request just waited out is real
		// request-path stall — it stays in the breakdown record even
		// though no service follows.
		s.observeBreakdown(tc, tc.FinishOutcome(0, "shed"))
		s.st.Shed++
		s.shed.Inc()
		return Response{}, ErrOverloaded
	}

	if tc == nil {
		// Idle-gap request: the context opens after the gap, charging
		// only cleaner overrun (Tick running past the arrival) to queue.
		tc = s.obs.BeginRequest(s.b.Clock, "server", req.Kind.String(), queueDelay(s.b.Clock.Now(), arrival))
	}

	resp, err := s.dispatch(sess, req)
	if err != nil {
		s.observeBreakdown(tc, tc.Finish(0, err))
		if errors.Is(err, ErrNotFound) {
			s.st.NotFound++
			s.notFound.Inc()
		}
		return Response{}, err
	}
	bd := tc.Finish(int64(resp.N), nil)
	resp.Latency = s.b.Clock.Now().Sub(arrival)
	s.st.Completed++
	s.completed.Inc()
	s.lat[req.Kind].ObserveDuration(resp.Latency)
	s.observeBreakdown(tc, bd)
	return resp, nil
}

// observeBreakdown folds one finished request's per-stage attribution
// into the serve_latency_breakdown histograms. Every request that opened
// a context counts — completed, failed, or shed — because the breakdown
// measures where request-path virtual time went, not just where
// successful service went.
func (s *Server) observeBreakdown(tc *obs.TraceContext, bd obs.Breakdown) {
	if tc == nil {
		return
	}
	for i, stage := range obs.BreakdownStages {
		s.breakdown[i].ObserveDuration(bd.Stage(stage))
	}
}

// queueDelay is the backlog a request inherited: service starting at
// now against an arrival timestamp (0 means "arrives now", i.e. no
// queueing — the closed-loop transports pass that).
func queueDelay(now sim.Time, arrival sim.Time) sim.Duration {
	if arrival == 0 || arrival > now {
		return 0
	}
	return now.Sub(arrival)
}

// updateAdmission moves the hysteresis state machine: shed when the
// buffer is high-water full and the cleaner is behind; re-admit when
// occupancy drops to the low watermark or the cleaner catches up.
func (s *Server) updateAdmission() {
	occ := s.b.Storage.BufferOccupancy()
	lag := s.b.Engine.CleanerLag()
	if !s.shedding {
		if occ >= s.cfg.HighWatermark && lag > 0 {
			s.shedding = true
			s.shedEngages.Inc()
			if s.cfg.OnShedEngage != nil {
				s.cfg.OnShedEngage()
			}
		}
	} else if occ <= s.cfg.LowWatermark || lag == 0 {
		s.shedding = false
	}
	if s.shedding {
		s.shedGauge.Set(1)
	} else {
		s.shedGauge.Set(0)
	}
}

func (s *Server) dispatch(sess *Session, req Request) (Response, error) {
	switch req.Kind {
	case OpGet:
		return s.doGet(sess, req)
	case OpPut:
		return s.doPut(sess, req)
	case OpTruncate:
		return s.doTruncate(sess, req)
	case OpDelete:
		return s.doDelete(sess, req)
	case OpSync:
		return s.doSync(req)
	default:
		return Response{}, fmt.Errorf("%w: unknown op %d", ErrBadRequest, int(req.Kind))
	}
}

func (s *Server) doGet(sess *Session, req Request) (Response, error) {
	if req.Size < 0 || req.Offset < 0 {
		return Response{}, fmt.Errorf("%w: negative get extent", ErrBadRequest)
	}
	p := sess.path(req.Key)
	if !s.b.FS.Exists(p) {
		return Response{}, sess.notFound(req.Key, p)
	}
	if int64(cap(sess.getBuf)) < req.Size {
		sess.getBuf = make([]byte, req.Size)
	}
	buf := sess.getBuf[:req.Size]
	n, err := s.b.FS.ReadAt(p, req.Offset, buf)
	if err != nil {
		return Response{}, err
	}
	return Response{N: n, Data: buf[:n]}, nil
}

func (s *Server) doPut(sess *Session, req Request) (Response, error) {
	if req.Offset < 0 {
		return Response{}, fmt.Errorf("%w: negative put offset", ErrBadRequest)
	}
	p := sess.path(req.Key)
	if !s.b.FS.Exists(p) {
		if err := s.b.FS.Create(p); err != nil {
			return Response{}, err
		}
	}
	n, err := s.b.FS.WriteAt(p, req.Offset, req.Data)
	if err != nil {
		return Response{}, err
	}
	return Response{N: n}, nil
}

func (s *Server) doTruncate(sess *Session, req Request) (Response, error) {
	if req.Size < 0 {
		return Response{}, fmt.Errorf("%w: negative truncate size", ErrBadRequest)
	}
	p := sess.path(req.Key)
	if !s.b.FS.Exists(p) {
		return Response{}, sess.notFound(req.Key, p)
	}
	if err := s.b.FS.Truncate(p, req.Size); err != nil {
		return Response{}, err
	}
	return Response{}, nil
}

func (s *Server) doDelete(sess *Session, req Request) (Response, error) {
	// Idempotent: deleting a missing object succeeds, so retried deletes
	// and delete-after-shed races never surface spurious errors.
	p := sess.path(req.Key)
	if !s.b.FS.Exists(p) {
		return Response{}, nil
	}
	if err := s.b.FS.Remove(p); err != nil {
		return Response{}, err
	}
	return Response{}, nil
}

// doSync implements group commit: a sync whose arrival is covered by the
// last completed sync — or falls within the batch window of it — rides
// that flush for free.
func (s *Server) doSync(req Request) (Response, error) {
	now := s.b.Clock.Now()
	arrival := req.Arrival
	if arrival == 0 {
		arrival = now
	}
	if s.synced && (arrival <= s.lastSync || now.Sub(s.lastSync) <= s.cfg.SyncBatchWindow) {
		s.st.BatchedSyncs++
		s.batched.Inc()
		return Response{Batched: true}, nil
	}
	// The flush below is the group commit: everything it forces to flash
	// is charged to the group-commit-flush cause (the FS overrides its
	// own checkpoint stream to metadata inside this scope).
	restore := s.obs.PushCause(obs.CauseGroupCommitFlush)
	err := s.b.FS.Sync()
	restore()
	if err != nil {
		return Response{}, err
	}
	s.lastSync = s.b.Clock.Now()
	s.synced = true
	s.st.SyncFlushes++
	return Response{}, nil
}

// Idle advances virtual time to t, running background daemons — the
// driver's way of modelling a quiet period after the last request.
func (s *Server) Idle(t sim.Time) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.b.Storage.Tick(); err != nil {
		return err
	}
	if t > s.b.Clock.Now() {
		s.b.Clock.AdvanceTo(t)
	}
	return s.b.Storage.Tick()
}

// Drain stops admitting requests and flushes everything: in-flight
// requests (already past the draining check) complete first because
// Drain queues on the same mutex.
func (s *Server) Drain() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return nil
	}
	s.draining = true
	// The drain flush is sync-forced traffic too: same cause as doSync.
	defer s.obs.PushCause(obs.CauseGroupCommitFlush)()
	return s.b.FS.Sync()
}

// Draining reports whether Drain has been called.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Shedding reports whether admission control is currently shedding
// writes — the /healthz overload signal.
func (s *Server) Shedding() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.shedding
}

// Stats returns a snapshot of the request accounting.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.st
}
