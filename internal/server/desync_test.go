// Regression tests for the response-desync fix: a half-written response
// is fatal for the connection — the handler closes instead of serving
// the next command on a stream whose peer can no longer tell status
// lines from payload bytes. These tests stub the Service interface, so
// they live in the package (the external suite assembles real stacks
// through core, which imports this package).
package server

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"ssmobile/internal/sim"
)

// stubSession records the requests it served and answers from a canned
// object map.
type stubSession struct {
	calls   int
	objects map[uint64][]byte
}

func (s *stubSession) Do(req Request) (Response, error) {
	s.calls++
	switch req.Kind {
	case OpGet:
		data, ok := s.objects[req.Key]
		if !ok {
			return Response{}, fmt.Errorf("%w: key %d", ErrNotFound, req.Key)
		}
		if req.Size < int64(len(data)) {
			data = data[:req.Size]
		}
		return Response{N: len(data), Data: data}, nil
	case OpPut:
		if s.objects == nil {
			s.objects = map[uint64][]byte{}
		}
		s.objects[req.Key] = append([]byte(nil), req.Data...)
		return Response{N: len(req.Data)}, nil
	default:
		return Response{}, nil
	}
}

// stubService hands out one shared stubSession for every tenant.
type stubService struct {
	sess stubSession
}

func (s *stubService) OpenSession(tenant string) (RequestDoer, error) { return &s.sess, nil }
func (s *stubService) Stats() Stats                                   { return Stats{} }
func (s *stubService) Drain() error                                   { return nil }
func (s *stubService) Now() sim.Time                                  { return 0 }

// failWriter fails every write after the first n bytes — a connection
// that dies mid-response.
type failWriter struct {
	n       int
	written int
}

var errConnBroken = errors.New("simulated mid-write connection failure")

func (f *failWriter) Write(p []byte) (int, error) {
	if f.written >= f.n {
		return 0, errConnBroken
	}
	if f.written+len(p) > f.n {
		k := f.n - f.written
		f.written = f.n
		return k, errConnBroken
	}
	f.written += len(p)
	return len(p), nil
}

// TestServeCmdHalfWrittenResponseIsFatal drives serveCmd with a writer
// that fails partway through the status line and asserts the failure is
// surfaced as fatal (pre-fix, writeOK swallowed the error and the
// handler went on to serve the next command on the desynced stream).
func TestServeCmdHalfWrittenResponseIsFatal(t *testing.T) {
	tcp := NewTCP(&stubService{sess: stubSession{objects: map[uint64][]byte{1: []byte("payload")}}})
	var sess RequestDoer = &stubSession{objects: map[uint64][]byte{1: []byte("payload")}}

	// The status line "ok 7\n" is 5 bytes; fail after 2.
	w := bufio.NewWriter(&failWriter{n: 2})
	r := bufio.NewReader(strings.NewReader(""))
	err := tcp.serveCmd(r, w, &sess, []string{"get", "1", "0", "7"})
	if err == nil {
		t.Fatal("half-written response was not fatal")
	}
	if !errors.Is(err, errConnBroken) {
		t.Fatalf("fatal error = %v, want the underlying write failure", err)
	}
}

// TestServeCmdHalfWrittenPayloadIsFatal is the same for a failure inside
// a Get payload after a complete status line.
func TestServeCmdHalfWrittenPayloadIsFatal(t *testing.T) {
	tcp := NewTCP(&stubService{})
	var sess RequestDoer = &stubSession{objects: map[uint64][]byte{1: []byte("a long enough payload body")}}

	w := bufio.NewWriter(&failWriter{n: 8}) // status line flushes, payload fails
	r := bufio.NewReader(strings.NewReader(""))
	err := tcp.serveCmd(r, w, &sess, []string{"get", "1", "0", "26"})
	if err == nil {
		t.Fatal("half-written payload was not fatal")
	}
}

// TestHandleClosesAfterWriteFailure runs the full handler over a pipe
// whose client end closes mid-conversation: the handler must stop at the
// failed response and never dispatch the pipelined follow-up command.
func TestHandleClosesAfterWriteFailure(t *testing.T) {
	svc := &stubService{}
	tcp := NewTCP(svc)
	serverConn, clientConn := net.Pipe()
	tcp.conns[serverConn] = &connState{}
	tcp.wg.Add(1)
	go tcp.handle(serverConn)

	cr := bufio.NewReader(clientConn)
	// hello, then two pipelined gets: the first one's response will fail
	// mid-write (the client closes right after hello's ok), so the second
	// must never reach the session.
	if _, err := clientConn.Write([]byte("hello t\nget 1 0 4\nget 2 0 4\n")); err != nil {
		t.Fatal(err)
	}
	line, err := cr.ReadString('\n')
	if err != nil || strings.TrimSpace(line) != "ok 0" {
		t.Fatalf("hello: %q, %v", line, err)
	}
	clientConn.Close() // the next response write fails

	deadline := time.Now().Add(5 * time.Second)
	for tcp.liveConns() > 0 {
		if time.Now().After(deadline) {
			t.Fatal("handler did not exit after the write failure")
		}
		time.Sleep(time.Millisecond)
	}
	if got := svc.sess.calls; got > 1 {
		t.Fatalf("served %d commands on a desynced stream, want at most 1", got)
	}
}

// liveConns reports the tracked connection count (test helper).
func (t *TCP) liveConns() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.conns)
}
