// Regression tests for the drain's write-side bound and the polite-quit
// path: Shutdown must not hang on a peer that stops reading mid-response
// (the grace deadline covers writes, not just reads), and a client
// closing with "quit" during a drain still gets its clean "ok" goodbye.
// Both poke at unexported state (drainGrace, the draining flag), so they
// live in the package like the desync tests.
package server

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"
)

// listenStub serves a stubService over a loopback listener.
func listenStub(t *testing.T, svc *stubService) *TCP {
	t.Helper()
	tcp := NewTCP(svc)
	if err := tcp.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	return tcp
}

// helloStub dials the listener and completes the hello handshake.
func helloStub(t *testing.T, tcp *TCP) (net.Conn, *bufio.Reader) {
	t.Helper()
	conn, err := net.Dial("tcp", tcp.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	r := bufio.NewReader(conn)
	fmt.Fprintf(conn, "hello t\n")
	line, err := r.ReadString('\n')
	if err != nil || strings.TrimSpace(line) != "ok 0" {
		t.Fatalf("hello: %q, %v", line, err)
	}
	return conn, r
}

// TestShutdownCutsStalledResponseWrite pins the write-side drain bound:
// a handler blocked writing a large GET response to a peer that has
// stopped reading must be cut after drainGrace, so Shutdown returns
// instead of hanging on wg.Wait forever (pre-fix, only the read side
// carried the grace deadline).
func TestShutdownCutsStalledResponseWrite(t *testing.T) {
	oldGrace := drainGrace
	drainGrace = 300 * time.Millisecond
	defer func() { drainGrace = oldGrace }()

	// An object far larger than the kernel socket buffers, so the
	// response write must block once the peer stops reading.
	const size = 64 << 20
	svc := &stubService{sess: stubSession{objects: map[uint64][]byte{1: make([]byte, size)}}}
	tcp := listenStub(t, svc)
	conn, _ := helloStub(t, tcp)
	defer conn.Close()

	fmt.Fprintf(conn, "get 1 0 %d\n", size)
	// Never read the response; give the handler time to fill the socket
	// buffers and park inside the payload write.
	time.Sleep(200 * time.Millisecond)

	done := make(chan error, 1)
	go func() { done <- tcp.Shutdown() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Shutdown hung on a stalled response write")
	}
}

// TestQuitDuringDrainAnsweredCleanly pins the polite-close path: a
// client sending "quit" while the service drains gets the clean "ok"
// goodbye (pre-fix it got "err draining"), while any other command
// during the drain still gets the typed draining error.
func TestQuitDuringDrainAnsweredCleanly(t *testing.T) {
	tcp := listenStub(t, &stubService{})
	defer tcp.ln.Close()
	quitConn, quitR := helloStub(t, tcp)
	defer quitConn.Close()
	cmdConn, cmdR := helloStub(t, tcp)
	defer cmdConn.Close()

	// Enter the drain without Shutdown's deadlines or wg.Wait: this is
	// exactly the window where a buffered command line is read after the
	// drain flag goes up.
	tcp.mu.Lock()
	tcp.draining = true
	tcp.mu.Unlock()

	fmt.Fprintf(quitConn, "quit\n")
	quitConn.SetReadDeadline(time.Now().Add(5 * time.Second))
	line, err := quitR.ReadString('\n')
	if err != nil {
		t.Fatalf("quit during drain got no response: %v", err)
	}
	if strings.TrimSpace(line) != "ok 0" {
		t.Fatalf("quit during drain answered %q, want \"ok 0\"", line)
	}

	fmt.Fprintf(cmdConn, "sync\n")
	cmdConn.SetReadDeadline(time.Now().Add(5 * time.Second))
	line, err = cmdR.ReadString('\n')
	if err != nil {
		t.Fatalf("command during drain got no response: %v", err)
	}
	if !strings.HasPrefix(line, "err draining") {
		t.Fatalf("command during drain answered %q, want err draining", line)
	}
}
