// Span-tree golden test: the causal shape of a synchronous PUT that
// lands on a full write buffer and drags the cleaner onto its critical
// path. The structural rendering (layers, ops, stages, induced links —
// no IDs, no times, no payload bytes) is pinned against a committed
// golden and must be identical for every seed: payload CONTENT must
// never change what the simulation does, only what the bytes say.
package server_test

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ssmobile/internal/core"
	"ssmobile/internal/obs"
	"ssmobile/internal/server"
)

var updateGolden = flag.Bool("update", false, "rewrite the span-tree golden file")

// spanNode is one span with its children in record (close) order.
type spanNode struct {
	span obs.Span
	kids []*spanNode
}

// firstTreeWithInducedClean reconstructs request trees from the span
// stream in order and returns the first one containing an induced
// cleaner pass, along with its ordinal among traced requests.
func firstTreeWithInducedClean(spans []obs.Span) (*spanNode, int) {
	var pending []obs.Span
	ordinal := 0
	for _, sp := range spans {
		if sp.ID == 0 {
			continue
		}
		if sp.Parent != 0 || sp.FollowFrom != 0 {
			pending = append(pending, sp)
			continue
		}
		ordinal++
		root := buildTree(sp, pending)
		pending = pending[:0]
		if hasInducedClean(root) {
			return root, ordinal
		}
	}
	return nil, 0
}

// buildTree resolves one request's tree from its root span and the
// buffered candidate children (children close before parents, so a
// span's parent appears later in the stream).
func buildTree(root obs.Span, pending []obs.Span) *spanNode {
	nodes := map[uint64]*spanNode{root.ID: {span: root}}
	member := make([]bool, len(pending))
	for i := len(pending) - 1; i >= 0; i-- {
		if _, ok := nodes[pending[i].Parent]; ok {
			member[i] = true
			nodes[pending[i].ID] = &spanNode{span: pending[i]}
		}
	}
	// Attach children in stream order so the rendering is deterministic.
	for i, sp := range pending {
		if member[i] {
			p := nodes[sp.Parent]
			p.kids = append(p.kids, nodes[sp.ID])
		}
	}
	return nodes[root.ID]
}

func hasInducedClean(n *spanNode) bool {
	if n.span.FollowFrom != 0 && n.span.Op == "clean" {
		return true
	}
	for _, k := range n.kids {
		if hasInducedClean(k) {
			return true
		}
	}
	return false
}

// render writes the structural shape of the tree: layer/op, resolved
// stage, and induced markers — everything a trace viewer keys on, and
// nothing (IDs, virtual times, energies) that would make the golden
// brittle for no diagnostic gain.
func render(n *spanNode, depth int, b *strings.Builder) {
	fmt.Fprintf(b, "%s%s/%s", strings.Repeat("  ", depth), n.span.Layer, n.span.Op)
	if n.span.Stage != "" {
		fmt.Fprintf(b, " stage=%s", n.span.Stage)
	}
	if n.span.FollowFrom != 0 {
		b.WriteString(" induced")
	}
	b.WriteByte('\n')
	for _, k := range n.kids {
		render(k, depth+1, b)
	}
}

// runCleanScenario stages the satellite's exact situation — ONE
// synchronous PUT arriving on a full write buffer that must evict and
// clean on its own clock — and returns the structural rendering of that
// PUT's span tree plus the tree itself. Payload bytes come from the
// seed; the op sequence is fixed, so the tree must not depend on the
// seed at all.
func runCleanScenario(t *testing.T, seed int64) (string, *spanNode) {
	t.Helper()
	o := obs.New(1 << 17)
	sys, srv := newStack(t, core.SolidStateConfig{
		DRAMBytes:   4 << 20,
		FlashBytes:  2 << 20,
		BufferBytes: 64 << 10,
		RBoxBytes:   256 << 10,
		// IdleCleanBlocks stays 0: no background cleaning, so the only way
		// a block gets reclaimed is synchronously, on a request's clock.
		Obs: o,
	})
	rng := rand.New(rand.NewSource(seed))
	payload := make([]byte, 4096)

	// Age the card outside any request (anonymous background spans):
	// overwrite a 1MB region until the free pool is down to the cleaning
	// margin and the first background cleans have run, then drain the
	// buffer so the foreground scenario below starts from a known state.
	if err := sys.Create("aged"); err != nil {
		t.Fatal(err)
	}
	for round := 0; sys.FTL.Stats().Cleans == 0; round++ {
		if round == 64 {
			t.Fatal("aging never drove the FTL into cleaning")
		}
		for off := 0; off < 256; off++ {
			rng.Read(payload)
			if _, err := sys.WriteAt("aged", int64(off)*4096, payload); err != nil {
				t.Fatalf("aging write: %v", err)
			}
		}
	}
	if err := sys.Sync(); err != nil {
		t.Fatal(err)
	}

	sess, err := srv.Open("golden")
	if err != nil {
		t.Fatal(err)
	}
	// Fill the write buffer exactly: 16 one-page PUTs take its 16 pages.
	// The cleaner is not behind (the aging pass left the free pool at its
	// margin), so admission control lets them through.
	for i := 0; i < 16; i++ {
		rng.Read(payload)
		if _, err := sess.Do(server.Request{
			Kind: server.OpPut, Key: 1, Offset: int64(i) * 4096,
			Data: append([]byte(nil), payload...),
		}); err != nil {
			t.Fatalf("fill put %d: %v", i, err)
		}
	}

	// The PUT under test: 256KB against a buffer with no free page. Every
	// block it writes must first evict a victim to flash, and the free
	// pool is shallow enough that those migrations drag the cleaner onto
	// this request's critical path, mid-PUT.
	big := make([]byte, 256<<10)
	rng.Read(big)
	if _, err := sess.Do(server.Request{Kind: server.OpPut, Key: 2, Data: big}); err != nil {
		t.Fatalf("triggering put: %v", err)
	}

	tree, ord := firstTreeWithInducedClean(o.Tracer.Spans())
	if tree == nil {
		t.Fatal("the triggering PUT induced no cleaner pass")
	}
	if tree.span.Op != "put" {
		t.Fatalf("request with induced clean is %s/%s, want server/put", tree.span.Layer, tree.span.Op)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "traced request #%d with induced clean:\n", ord)
	render(tree, 0, &b)
	return b.String(), tree
}

func TestPutSpanTreeGolden(t *testing.T) {
	seeds := []int64{1993, 1, 42}
	trees := make(map[int64]string, len(seeds))
	var first *spanNode
	for _, seed := range seeds {
		rendered, tree := runCleanScenario(t, seed)
		trees[seed] = rendered
		if first == nil {
			first = tree
		}
	}
	for _, seed := range seeds[1:] {
		if trees[seed] != trees[seeds[0]] {
			t.Fatalf("span tree differs between seed %d and seed %d:\n--- seed %d ---\n%s--- seed %d ---\n%s",
				seeds[0], seed, seeds[0], trees[seeds[0]], seed, trees[seed])
		}
	}

	golden := filepath.Join("testdata", "put_span_tree.golden")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(trees[seeds[0]]), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden file: %v (regenerate with go test -run TestPutSpanTreeGolden -update)", err)
	}
	if got := trees[seeds[0]]; got != string(want) {
		t.Fatalf("span tree drifted from %s:\ngot:\n%s\nwant:\n%s", golden, got, want)
	}

	// Structural assertions the golden alone cannot express: the induced
	// clean follows from the REQUEST ROOT (not its direct parent), it
	// erases a block, and everything beneath it is cleaning stall.
	var clean *spanNode
	var findClean func(n *spanNode)
	findClean = func(n *spanNode) {
		if clean == nil && n.span.FollowFrom != 0 && n.span.Op == "clean" {
			clean = n
		}
		for _, k := range n.kids {
			findClean(k)
		}
	}
	findClean(first)
	if clean == nil {
		t.Fatal("no induced clean in the accepted tree")
	}
	if clean.span.FollowFrom != first.span.ID {
		t.Fatalf("clean.FollowFrom = %d, want request root %d", clean.span.FollowFrom, first.span.ID)
	}
	erases, nonClean := 0, 0
	var walk func(n *spanNode)
	walk = func(n *spanNode) {
		if strings.HasPrefix(n.span.Op, "erase") {
			erases++
		}
		if n.span.Stage != obs.StageClean {
			nonClean++
		}
		for _, k := range n.kids {
			walk(k)
		}
	}
	walk(clean)
	if erases == 0 {
		t.Fatal("induced clean erased no blocks")
	}
	if nonClean > 0 {
		t.Fatalf("%d spans under the induced clean escaped StageClean (stickiness broken)", nonClean)
	}
}
