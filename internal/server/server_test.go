// Lifecycle and behaviour tests for the object-storage service. They
// live in an external test package so they can assemble the real stack
// through core (core imports server for E12, so the inverse import only
// works from _test).
package server_test

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"ssmobile/internal/core"
	"ssmobile/internal/obs"
	"ssmobile/internal/server"
	"ssmobile/internal/sim"
	"ssmobile/internal/workload"
)

// newStack builds a small solid-state system and a server over it.
func newStack(t *testing.T, cfg core.SolidStateConfig) (*core.SolidStateSystem, *server.Server) {
	t.Helper()
	if cfg.DRAMBytes == 0 {
		cfg.DRAMBytes = 4 << 20
	}
	if cfg.FlashBytes == 0 {
		cfg.FlashBytes = 8 << 20
	}
	if cfg.RBoxBytes == 0 {
		cfg.RBoxBytes = 256 << 10
	}
	if cfg.Obs == nil {
		cfg.Obs = obs.New(0)
	}
	sys, err := core.NewSolidState(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Backend{
		FS: sys.FS, Storage: sys.Storage, Engine: sys.Engine, Clock: sys.Clock(),
	}, server.Config{Obs: cfg.Obs})
	if err != nil {
		t.Fatal(err)
	}
	return sys, srv
}

func TestPutGetRoundtrip(t *testing.T) {
	_, srv := newStack(t, core.SolidStateConfig{})
	sess, err := srv.Open("alice")
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("the quick brown fox")
	if _, err := sess.Do(server.Request{Kind: server.OpPut, Key: 7, Offset: 128, Data: data}); err != nil {
		t.Fatal(err)
	}
	resp, err := sess.Do(server.Request{Kind: server.OpGet, Key: 7, Offset: 128, Size: int64(len(data))})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resp.Data, data) {
		t.Fatalf("got %q, want %q", resp.Data, data)
	}

	// Tenants are isolated: the same key in another session is empty.
	other, err := srv.Open("bob")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := other.Do(server.Request{Kind: server.OpGet, Key: 7, Size: 8}); !errors.Is(err, server.ErrNotFound) {
		t.Fatalf("cross-tenant get: got %v, want ErrNotFound", err)
	}

	// Truncate to zero, read comes back empty.
	if _, err := sess.Do(server.Request{Kind: server.OpTruncate, Key: 7, Size: 0}); err != nil {
		t.Fatal(err)
	}
	resp, err = sess.Do(server.Request{Kind: server.OpGet, Key: 7, Offset: 0, Size: 16})
	if err != nil {
		t.Fatal(err)
	}
	if resp.N != 0 {
		t.Fatalf("read %d bytes after truncate to 0", resp.N)
	}

	// Delete is idempotent; get after delete is a typed miss.
	for i := 0; i < 2; i++ {
		if _, err := sess.Do(server.Request{Kind: server.OpDelete, Key: 7}); err != nil {
			t.Fatalf("delete #%d: %v", i+1, err)
		}
	}
	if _, err := sess.Do(server.Request{Kind: server.OpGet, Key: 7, Size: 8}); !errors.Is(err, server.ErrNotFound) {
		t.Fatalf("get after delete: got %v, want ErrNotFound", err)
	}
	if _, err := sess.Do(server.Request{Kind: server.OpTruncate, Key: 7, Size: 4}); !errors.Is(err, server.ErrNotFound) {
		t.Fatalf("truncate after delete: got %v, want ErrNotFound", err)
	}
}

func TestSyncGroupCommit(t *testing.T) {
	_, srv := newStack(t, core.SolidStateConfig{})
	sess, err := srv.Open("t")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Do(server.Request{Kind: server.OpPut, Key: 1, Data: []byte("x")}); err != nil {
		t.Fatal(err)
	}
	first, err := sess.Do(server.Request{Kind: server.OpSync})
	if err != nil {
		t.Fatal(err)
	}
	if first.Batched {
		t.Fatal("first sync reported batched")
	}
	// A sync right behind the flush (same instant, well inside the batch
	// window) rides it.
	second, err := sess.Do(server.Request{Kind: server.OpSync})
	if err != nil {
		t.Fatal(err)
	}
	if !second.Batched {
		t.Fatal("back-to-back sync not batched")
	}
	st := srv.Stats()
	if st.SyncFlushes != 1 || st.BatchedSyncs != 1 {
		t.Fatalf("flushes %d batched %d, want 1 and 1", st.SyncFlushes, st.BatchedSyncs)
	}
}

// Load shedding: with the flash card nearly full (cleaner behind its
// target) and the write buffer at the high watermark, writes are
// rejected with the typed overload error while reads keep being served.
func TestLoadSheddingTypedErrors(t *testing.T) {
	sys, srv := newStack(t, core.SolidStateConfig{
		DRAMBytes:       2 << 20,
		FlashBytes:      1 << 20,
		BufferBytes:     128 << 10,
		RBoxBytes:       128 << 10,
		IdleCleanBlocks: 8,
	})
	// Fill most of the flash with live data so the cleaner cannot reach
	// its free-block target.
	if err := sys.FS.Create("/big"); err != nil {
		t.Fatal(err)
	}
	chunk := make([]byte, 4096)
	for off := int64(0); off < 560<<10; off += 4096 {
		if _, err := sys.FS.WriteAt("/big", off, chunk); err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.FS.Sync(); err != nil {
		t.Fatal(err)
	}
	if lag := sys.FTL.CleanerLag(); lag == 0 {
		t.Fatalf("setup: cleaner lag still 0 (free %d)", sys.FTL.FreeBlocks())
	}

	sess, err := srv.Open("t")
	if err != nil {
		t.Fatal(err)
	}
	var shed int
	data := bytes.Repeat([]byte{0xA5}, 4096)
	for i := 0; i < 64; i++ {
		_, err := sess.Do(server.Request{Kind: server.OpPut, Key: uint64(i), Data: data})
		switch {
		case err == nil:
		case errors.Is(err, server.ErrOverloaded):
			shed++
		default:
			t.Fatalf("put %d: unexpected error %v", i, err)
		}
	}
	if shed == 0 {
		t.Fatalf("no puts shed (occupancy %.2f, lag %d)",
			sys.Storage.BufferOccupancy(), sys.FTL.CleanerLag())
	}
	// Reads still serve while writes shed — graceful degradation.
	if _, err := sess.Do(server.Request{Kind: server.OpGet, Key: 0, Size: 16}); err != nil {
		t.Fatalf("read during shed: %v", err)
	}
	if srv.Stats().Shed != int64(shed) {
		t.Fatalf("stats shed %d, want %d", srv.Stats().Shed, shed)
	}
}

// The in-process driver must be deterministic: identical seeds give
// identical aggregate results, run to run.
func TestRunWorkloadDeterministic(t *testing.T) {
	run := func() server.RunStats {
		_, srv := newStack(t, core.SolidStateConfig{})
		st, err := server.RunWorkload(srv, workload.Config{
			Seed: 1993, Clients: 4, OpsPerClient: 100, Keys: 8, Popularity: workload.Zipf,
		})
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	a, b := run(), run()
	if a.Completed != b.Completed || a.Shed != b.Shed || a.NotFound != b.NotFound ||
		a.Elapsed != b.Elapsed || a.Lat.Sum() != b.Lat.Sum() {
		t.Fatalf("runs diverged:\n %+v\n %+v", a, b)
	}
	if a.Completed == 0 {
		t.Fatal("no requests completed")
	}
}

func TestClosedLoopWorkload(t *testing.T) {
	_, srv := newStack(t, core.SolidStateConfig{})
	st, err := server.RunWorkload(srv, workload.Config{
		Seed: 5, Clients: 3, OpsPerClient: 50, Keys: 8,
		Arrival: workload.ClosedLoop, ThinkTime: 10 * sim.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Completed == 0 || st.Elapsed <= 0 {
		t.Fatalf("closed-loop run went nowhere: %+v", st)
	}
}

// Concurrent TCP clients under the race detector: every response is
// either success or a typed, expected error, and shutdown drains clean.
func TestTCPConcurrentClients(t *testing.T) {
	_, srv := newStack(t, core.SolidStateConfig{})
	tcp := server.NewTCP(srv)
	if err := tcp.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	addr := tcp.Addr().String()

	const clients, ops = 4, 60
	errs := make([]error, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl, err := server.Dial(addr, fmt.Sprintf("t%d", c))
			if err != nil {
				errs[c] = err
				return
			}
			defer cl.Close()
			data := bytes.Repeat([]byte{byte(c)}, 512)
			for i := 0; i < ops; i++ {
				key := uint64(i % 5)
				if _, err := cl.Put(key, int64(i)*512, data); err != nil && !errors.Is(err, server.ErrOverloaded) {
					errs[c] = fmt.Errorf("put %d: %w", i, err)
					return
				}
				got, err := cl.Get(key, int64(i)*512, 512)
				if err != nil {
					if errors.Is(err, server.ErrNotFound) {
						continue
					}
					errs[c] = fmt.Errorf("get %d: %w", i, err)
					return
				}
				if !bytes.Equal(got, data) {
					errs[c] = fmt.Errorf("get %d: payload mismatch", i)
					return
				}
			}
			if _, err := cl.Sync(); err != nil {
				errs[c] = fmt.Errorf("sync: %w", err)
			}
		}(c)
	}
	wg.Wait()
	for c, err := range errs {
		if err != nil {
			t.Errorf("client %d: %v", c, err)
		}
	}
	if err := tcp.Shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if st := srv.Stats(); st.Completed == 0 {
		t.Fatal("no requests completed")
	}
}

// Graceful shutdown: buffered writes reach flash via the final sync,
// and post-drain requests fail with the typed draining error.
func TestGracefulShutdownDrains(t *testing.T) {
	sys, srv := newStack(t, core.SolidStateConfig{})
	tcp := server.NewTCP(srv)
	if err := tcp.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	cl, err := server.Dial(tcp.Addr().String(), "t")
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte{0x5A}, 4096)
	for i := 0; i < 8; i++ {
		if _, err := cl.Put(uint64(i), 0, data); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	before := sys.FTL.Stats().HostBytesWritten

	// Ops race the shutdown from another goroutine; each either succeeds
	// or fails with a drain-path error (typed, or the torn connection).
	done := make(chan error, 1)
	go func() {
		var last error
		for i := 0; i < 1000; i++ {
			if _, err := cl.Put(uint64(i%8), 4096, data); err != nil {
				last = err
				break
			}
		}
		done <- last
	}()
	if err := tcp.Shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if raceErr := <-done; raceErr != nil {
		if !errors.Is(raceErr, server.ErrDraining) && !isConnError(raceErr) {
			t.Fatalf("racing put failed with unexpected error: %v", raceErr)
		}
	}

	if !srv.Draining() {
		t.Fatal("server not draining after shutdown")
	}
	after := sys.FTL.Stats().HostBytesWritten
	if after <= before {
		t.Fatalf("final sync flushed nothing (flash writes %d -> %d)", before, after)
	}
	// The drained server rejects direct requests with the typed error.
	sess, err := srv.Open("t2")
	if !errors.Is(err, server.ErrDraining) {
		_ = sess
		t.Fatalf("open after drain: got %v, want ErrDraining", err)
	}
	// Shutdown is idempotent.
	if err := tcp.Shutdown(); err != nil {
		t.Fatalf("second shutdown: %v", err)
	}
}

// isConnError reports errors the torn-down transport legitimately
// produces once drain begins.
func isConnError(err error) bool {
	if err == nil {
		return false
	}
	msg := err.Error()
	return strings.Contains(msg, "EOF") || strings.Contains(msg, "closed") ||
		strings.Contains(msg, "reset") || strings.Contains(msg, "broken pipe")
}

// The wire protocol maps typed errors both ways.
func TestTCPTypedErrors(t *testing.T) {
	_, srv := newStack(t, core.SolidStateConfig{})
	tcp := server.NewTCP(srv)
	if err := tcp.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer tcp.Shutdown()
	cl, err := server.Dial(tcp.Addr().String(), "t")
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Get(99, 0, 8); !errors.Is(err, server.ErrNotFound) {
		t.Fatalf("get missing: got %v, want ErrNotFound", err)
	}
	if err := cl.Truncate(99, 4); !errors.Is(err, server.ErrNotFound) {
		t.Fatalf("truncate missing: got %v, want ErrNotFound", err)
	}
	if err := cl.Delete(99); err != nil {
		t.Fatalf("delete missing: %v, want idempotent success", err)
	}
}
