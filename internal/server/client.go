package server

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
)

// Client speaks the TCP protocol from the other end of the wire,
// mapping wire error codes back onto this package's typed errors so
// callers can errors.Is(err, ErrOverloaded) across the socket. Not safe
// for concurrent use; open one Client per goroutine.
type Client struct {
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
}

// Dial connects to addr and opens a session for tenant.
func Dial(addr, tenant string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{conn: conn, r: bufio.NewReader(conn), w: bufio.NewWriter(conn)}
	if _, _, err := c.roundTrip(fmt.Sprintf("hello %s\n", tenant), nil); err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}

// Put writes data at off in object key; it reports the bytes written.
func (c *Client) Put(key uint64, off int64, data []byte) (int, error) {
	n, _, err := c.roundTrip(fmt.Sprintf("put %d %d %d\n", key, off, len(data)), data)
	return n, err
}

// Get reads n bytes at off from object key.
func (c *Client) Get(key uint64, off int64, n int64) ([]byte, error) {
	got, _, err := c.roundTrip(fmt.Sprintf("get %d %d %d\n", key, off, n), nil)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, got)
	if _, err := io.ReadFull(c.r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// Truncate sets object key's length.
func (c *Client) Truncate(key uint64, size int64) error {
	_, _, err := c.roundTrip(fmt.Sprintf("trunc %d %d\n", key, size), nil)
	return err
}

// Delete removes object key (idempotent).
func (c *Client) Delete(key uint64) error {
	_, _, err := c.roundTrip(fmt.Sprintf("del %d\n", key), nil)
	return err
}

// Sync makes the tenant's writes stable; batched reports whether group
// commit absorbed it into an earlier flush.
func (c *Client) Sync() (batched bool, err error) {
	_, suffix, err := c.roundTrip("sync\n", nil)
	return suffix == "batched", err
}

// Stats fetches the server-side completed/shed counts.
func (c *Client) Stats() (completed, shed int64, err error) {
	_, suffix, err := c.roundTrip("stats\n", nil)
	if err != nil {
		return 0, 0, err
	}
	for _, f := range strings.Fields(suffix) {
		if v, ok := strings.CutPrefix(f, "completed="); ok {
			completed, _ = strconv.ParseInt(v, 10, 64)
		}
		if v, ok := strings.CutPrefix(f, "shed="); ok {
			shed, _ = strconv.ParseInt(v, 10, 64)
		}
	}
	return completed, shed, nil
}

// Close ends the session politely and closes the connection.
func (c *Client) Close() error {
	c.roundTrip("quit\n", nil)
	return c.conn.Close()
}

// roundTrip sends one command (plus payload) and decodes the status
// line into (n, suffix) or a typed error.
func (c *Client) roundTrip(header string, payload []byte) (int, string, error) {
	if _, err := c.w.WriteString(header); err != nil {
		return 0, "", err
	}
	if payload != nil {
		if _, err := c.w.Write(payload); err != nil {
			return 0, "", err
		}
	}
	if err := c.w.Flush(); err != nil {
		return 0, "", err
	}
	line, err := c.r.ReadString('\n')
	if err != nil {
		return 0, "", err
	}
	line = strings.TrimRight(line, "\r\n")
	fields := strings.SplitN(line, " ", 3)
	switch {
	case fields[0] == "ok" && len(fields) >= 2:
		n, err := strconv.Atoi(fields[1])
		if err != nil {
			return 0, "", fmt.Errorf("server: malformed status %q", line)
		}
		suffix := ""
		if len(fields) == 3 {
			suffix = fields[2]
		}
		return n, suffix, nil
	case fields[0] == "err" && len(fields) >= 2:
		msg := ""
		if len(fields) == 3 {
			msg = fields[2]
		}
		switch fields[1] {
		case "overloaded":
			return 0, "", fmt.Errorf("%w (%s)", ErrOverloaded, msg)
		case "draining":
			return 0, "", fmt.Errorf("%w (%s)", ErrDraining, msg)
		case "notfound":
			return 0, "", fmt.Errorf("%w (%s)", ErrNotFound, msg)
		default:
			return 0, "", fmt.Errorf("%w (%s)", ErrBadRequest, msg)
		}
	default:
		return 0, "", fmt.Errorf("server: malformed status %q", line)
	}
}
