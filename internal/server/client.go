package server

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"time"
)

// ErrTimeout reports a client-side network deadline expiring: the node
// is hung, partitioned, or too slow. Callers (the cluster router above
// all) can errors.Is against it to treat the node as unavailable instead
// of blocking forever.
var ErrTimeout = errors.New("server: client i/o timeout")

// ClientOptions configures a Client's network behaviour.
type ClientOptions struct {
	// Timeout bounds the dial and each request round trip (the header
	// write, the payload transfer, and the response read). Zero means no
	// deadline — the pre-cluster behaviour, acceptable only when the peer
	// is trusted to answer eventually.
	Timeout time.Duration
}

// Client speaks the TCP protocol from the other end of the wire,
// mapping wire error codes back onto this package's typed errors so
// callers can errors.Is(err, ErrOverloaded) across the socket. Not safe
// for concurrent use; open one Client per goroutine.
type Client struct {
	conn    net.Conn
	r       *bufio.Reader
	w       *bufio.Writer
	timeout time.Duration
}

// Dial connects to addr and opens a session for tenant, with no I/O
// deadlines (see DialOpts).
func Dial(addr, tenant string) (*Client, error) {
	return DialOpts(addr, tenant, ClientOptions{})
}

// DialOpts connects to addr and opens a session for tenant under the
// given options. With a Timeout set, a hung or partitioned server makes
// requests fail with ErrTimeout instead of blocking the caller forever.
func DialOpts(addr, tenant string, opts ClientOptions) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, opts.Timeout)
	if err != nil {
		return nil, wrapTimeout(err)
	}
	c := &Client{conn: conn, r: bufio.NewReader(conn), w: bufio.NewWriter(conn), timeout: opts.Timeout}
	if _, _, err := c.roundTrip(fmt.Sprintf("hello %s\n", tenant), nil); err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}

// Put writes data at off in object key; it reports the bytes written.
func (c *Client) Put(key uint64, off int64, data []byte) (int, error) {
	n, _, err := c.roundTrip(fmt.Sprintf("put %d %d %d\n", key, off, len(data)), data)
	return n, err
}

// Get reads n bytes at off from object key.
func (c *Client) Get(key uint64, off int64, n int64) ([]byte, error) {
	got, _, err := c.roundTrip(fmt.Sprintf("get %d %d %d\n", key, off, n), nil)
	if err != nil {
		return nil, err
	}
	buf := make([]byte, got)
	if _, err := io.ReadFull(c.r, buf); err != nil {
		return nil, wrapTimeout(err)
	}
	return buf, nil
}

// Truncate sets object key's length.
func (c *Client) Truncate(key uint64, size int64) error {
	_, _, err := c.roundTrip(fmt.Sprintf("trunc %d %d\n", key, size), nil)
	return err
}

// Delete removes object key (idempotent).
func (c *Client) Delete(key uint64) error {
	_, _, err := c.roundTrip(fmt.Sprintf("del %d\n", key), nil)
	return err
}

// Sync makes the tenant's writes stable; batched reports whether group
// commit absorbed it into an earlier flush.
func (c *Client) Sync() (batched bool, err error) {
	_, suffix, err := c.roundTrip("sync\n", nil)
	return suffix == "batched", err
}

// Stats fetches the server-side completed/shed counts.
func (c *Client) Stats() (completed, shed int64, err error) {
	_, suffix, err := c.roundTrip("stats\n", nil)
	if err != nil {
		return 0, 0, err
	}
	for _, f := range strings.Fields(suffix) {
		if v, ok := strings.CutPrefix(f, "completed="); ok {
			completed, _ = strconv.ParseInt(v, 10, 64)
		}
		if v, ok := strings.CutPrefix(f, "shed="); ok {
			shed, _ = strconv.ParseInt(v, 10, 64)
		}
	}
	return completed, shed, nil
}

// Close ends the session politely and closes the connection.
func (c *Client) Close() error {
	c.roundTrip("quit\n", nil)
	return c.conn.Close()
}

// wrapTimeout folds a network timeout into the package's typed error so
// callers can distinguish "node hung" from "node answered with an
// error"; other errors pass through untouched.
func wrapTimeout(err error) error {
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return fmt.Errorf("%w: %v", ErrTimeout, err)
	}
	return err
}

// roundTrip sends one command (plus payload) and decodes the status
// line into (n, suffix) or a typed error. With a timeout configured the
// whole round trip runs under one conn deadline; the deadline also
// covers a Get's payload read, which follows on the same conn before
// the next round trip resets it.
func (c *Client) roundTrip(header string, payload []byte) (int, string, error) {
	if c.timeout > 0 {
		if err := c.conn.SetDeadline(time.Now().Add(c.timeout)); err != nil {
			return 0, "", err
		}
	}
	if _, err := c.w.WriteString(header); err != nil {
		return 0, "", wrapTimeout(err)
	}
	if payload != nil {
		if _, err := c.w.Write(payload); err != nil {
			return 0, "", wrapTimeout(err)
		}
	}
	if err := c.w.Flush(); err != nil {
		return 0, "", wrapTimeout(err)
	}
	line, err := c.r.ReadString('\n')
	if err != nil {
		return 0, "", wrapTimeout(err)
	}
	line = strings.TrimRight(line, "\r\n")
	fields := strings.SplitN(line, " ", 3)
	switch {
	case fields[0] == "ok" && len(fields) >= 2:
		n, err := strconv.Atoi(fields[1])
		if err != nil {
			return 0, "", fmt.Errorf("server: malformed status %q", line)
		}
		suffix := ""
		if len(fields) == 3 {
			suffix = fields[2]
		}
		return n, suffix, nil
	case fields[0] == "err" && len(fields) >= 2:
		msg := ""
		if len(fields) == 3 {
			msg = fields[2]
		}
		switch fields[1] {
		case "overloaded":
			return 0, "", fmt.Errorf("%w (%s)", ErrOverloaded, msg)
		case "draining":
			return 0, "", fmt.Errorf("%w (%s)", ErrDraining, msg)
		case "notfound":
			return 0, "", fmt.Errorf("%w (%s)", ErrNotFound, msg)
		default:
			return 0, "", fmt.Errorf("%w (%s)", ErrBadRequest, msg)
		}
	default:
		return 0, "", fmt.Errorf("server: malformed status %q", line)
	}
}
