// TCP transport for the object-storage service: a line-oriented text
// protocol with length-prefixed binary payloads, chosen so a session is
// debuggable with nc(1) and the framing stays trivial.
//
// Protocol (one session per connection):
//
//	hello <tenant>                 -> ok 0
//	put <key> <offset> <len>\n<len bytes>
//	                               -> ok <n>
//	get <key> <offset> <len>       -> ok <n>\n<n bytes>
//	trunc <key> <size>             -> ok 0
//	del <key>                      -> ok 0
//	sync                           -> ok 0 [batched]
//	stats                          -> ok 0 completed=<n> shed=<n>
//	quit                           -> ok 0, server closes
//
// Errors are "err <code> <message>" where code is one of overloaded,
// draining, notfound, bad — mapped 1:1 onto the package's typed errors
// by Client.
package server

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"ssmobile/internal/sim"
)

// maxLineBytes caps one protocol header line. A command line is a
// handful of decimal fields, so the cap is generous; without it a
// misbehaving peer could balloon server memory with a single endless
// line (readLine buffers until the newline arrives).
const maxLineBytes = 4096

// ErrLineTooLong reports a protocol header line that exceeded
// maxLineBytes. It unwraps to ErrBadRequest; once framing is lost the
// connection cannot be resynchronised, so the server answers with the
// error and closes.
var ErrLineTooLong = fmt.Errorf("%w: header line exceeds %d bytes", ErrBadRequest, maxLineBytes)

// drainGrace bounds how long a request caught in flight by Shutdown may
// keep going before its connection is cut anyway: the drain must not
// hang forever on a peer that stalls inside a PUT body — or one that
// stops reading while a GET response is being written. A variable so
// tests can shorten it.
var drainGrace = 10 * time.Second

// RequestDoer serves one tenant's requests: a *Session from a single
// Server, or a cluster session routing across many.
type RequestDoer interface {
	Do(Request) (Response, error)
}

// Service is the request-serving surface the TCP front end and the
// workload driver operate: the single-card *Server implements it, and so
// does the cluster router (internal/cluster), which is how one TCP front
// end serves N cards.
type Service interface {
	// OpenSession starts (or resumes) a tenant session.
	OpenSession(tenant string) (RequestDoer, error)
	// Stats snapshots the aggregate request accounting.
	Stats() Stats
	// Drain stops admission and flushes everything to stable storage.
	Drain() error
	// Now reports the service's current virtual time.
	Now() sim.Time
}

// TCP serves a Service over a listener with graceful drain on shutdown.
type TCP struct {
	srv Service
	ln  net.Listener

	mu       sync.Mutex
	conns    map[net.Conn]*connState
	draining bool
	wg       sync.WaitGroup
}

// connState tracks where a connection's handler is, so Shutdown can tell
// an idle connection (parked in readLine between requests — wake it with
// an expired deadline) from one serving a command (mid-payload-read or
// mid-response — leave its deadline alone and let the request finish).
type connState struct {
	inCmd bool
}

// NewTCP wraps svc for network serving.
func NewTCP(svc Service) *TCP {
	return &TCP{srv: svc, conns: make(map[net.Conn]*connState)}
}

// Listen starts listening on addr (e.g. "127.0.0.1:0") and serving in
// the background. Use Addr for the bound address and Shutdown to stop.
func (t *TCP) Listen(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	t.ln = ln
	t.wg.Add(1)
	go t.acceptLoop()
	return nil
}

// Addr reports the bound listener address.
func (t *TCP) Addr() net.Addr { return t.ln.Addr() }

func (t *TCP) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return // listener closed by Shutdown
		}
		t.mu.Lock()
		if t.draining {
			t.mu.Unlock()
			conn.Close()
			continue
		}
		t.conns[conn] = &connState{}
		t.wg.Add(1)
		t.mu.Unlock()
		go t.handle(conn)
	}
}

// Shutdown drains gracefully: stop accepting, let every in-flight
// request complete and get its response, reject anything newly read
// with the draining error, then run the server's final sync. It returns
// once all connection handlers have exited.
func (t *TCP) Shutdown() error {
	t.mu.Lock()
	if t.draining {
		t.mu.Unlock()
		return nil
	}
	t.draining = true
	// Unblock handlers parked in readLine between requests: idle
	// connections wake up, fail the read, and exit. A connection mid
	// command — its header line read, its handler possibly still inside
	// the payload read or writing the response — keeps an open deadline
	// (bounded by drainGrace) so the in-flight request completes and
	// gets its response instead of dying silently on the wake-up
	// deadline. Both directions are bounded: a peer that stops reading
	// mid-response would otherwise stall the handler in the response
	// write, past any read deadline, and hang the drain.
	for c, st := range t.conns {
		if st.inCmd {
			c.SetDeadline(time.Now().Add(drainGrace))
		} else {
			c.SetDeadline(time.Now())
		}
	}
	t.mu.Unlock()
	if t.ln != nil {
		t.ln.Close()
	}
	t.wg.Wait()
	return t.srv.Drain()
}

func (t *TCP) handle(conn net.Conn) {
	defer t.wg.Done()
	defer func() {
		conn.Close()
		t.mu.Lock()
		delete(t.conns, conn)
		t.mu.Unlock()
	}()

	r := bufio.NewReaderSize(conn, maxLineBytes)
	w := bufio.NewWriter(conn)
	var sess RequestDoer
	for {
		line, err := readLine(r)
		if err != nil {
			// An overlong line still has a usable write side: report the
			// typed error before closing. Any other failure (drain
			// wake-up deadline between requests, peer gone) just ends
			// the connection.
			if errors.Is(err, ErrLineTooLong) {
				writeErr(w, err)
			}
			return
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if fields[0] == "quit" {
			// A polite close needs no service admission, so it bypasses
			// beginCmd and still gets its clean "ok" goodbye during a
			// drain. The goodbye write is bounded (a racing Shutdown may
			// already have expired this connection's deadline).
			conn.SetDeadline(time.Now().Add(drainGrace))
			writeOK(w, 0, "")
			return
		}
		if !t.beginCmd(conn) {
			// Drain began before this command was admitted: answer
			// cleanly and close.
			writeErr(w, ErrDraining)
			return
		}
		err = t.serveCmd(r, w, &sess, fields)
		stop := t.endCmd(conn)
		if err != nil {
			return
		}
		if stop {
			// Drain began while this command was in flight; its response
			// is already flushed. Close instead of reading the next
			// command.
			return
		}
	}
}

// beginCmd admits one read command for service. It reports false when
// the service is draining (the caller answers ErrDraining); otherwise it
// marks the connection in-command — Shutdown leaves such connections
// alone — and clears any expired wake-up deadline a racing Shutdown may
// already have set (a header line buffered before the deadline fired
// still parses; its payload read must not inherit the dead deadline).
func (t *TCP) beginCmd(conn net.Conn) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.draining {
		return false
	}
	conn.SetDeadline(time.Time{})
	if st := t.conns[conn]; st != nil {
		st.inCmd = true
	}
	return true
}

// endCmd marks the command finished and reports whether a drain began
// while it was in flight (the handler then closes instead of reading the
// next command).
func (t *TCP) endCmd(conn net.Conn) (draining bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if st := t.conns[conn]; st != nil {
		st.inCmd = false
	}
	return t.draining
}

// serveCmd executes one command ("quit" is handled by the caller); the
// returned error means the connection is unusable (I/O failure or a
// half-written response), not a request-level error — those are written
// to the peer and the session continues.
func (t *TCP) serveCmd(r *bufio.Reader, w *bufio.Writer, sess *RequestDoer, fields []string) (fatal error) {
	cmd := fields[0]
	if cmd == "hello" {
		if len(fields) != 2 {
			return writeErr(w, fmt.Errorf("%w: hello wants a tenant", ErrBadRequest))
		}
		s, err := t.srv.OpenSession(fields[1])
		if err != nil {
			return writeErr(w, err)
		}
		*sess = s
		return writeOK(w, 0, "")
	}
	if *sess == nil {
		return writeErr(w, fmt.Errorf("%w: hello first", ErrBadRequest))
	}

	req, err := parseReq(cmd, fields[1:])
	if err != nil {
		return writeErr(w, err)
	}
	if cmd == "stats" {
		st := t.srv.Stats()
		return writeOK(w, 0, fmt.Sprintf("completed=%d shed=%d", st.Completed, st.Shed))
	}
	if req.Kind == OpPut {
		// The payload follows the header line verbatim.
		req.Data = make([]byte, req.Size)
		if _, err := io.ReadFull(r, req.Data); err != nil {
			return err
		}
		req.Size = 0
	}
	resp, err := (*sess).Do(req)
	if err != nil {
		return writeErr(w, err)
	}
	suffix := ""
	if resp.Batched {
		suffix = "batched"
	}
	// A half-written response desynchronises the stream: the peer can no
	// longer tell status lines from payload bytes, so any write failure
	// from here on is fatal for the connection — close, never serve the
	// next command on a desynced stream.
	if err := writeStatus(w, resp.N, suffix); err != nil {
		return err
	}
	if req.Kind == OpGet {
		if _, err := w.Write(resp.Data); err != nil {
			return err
		}
	}
	return w.Flush()
}

// parseReq decodes a command line into a Request; "stats" passes
// through with a zero request after argument validation.
func parseReq(cmd string, args []string) (Request, error) {
	bad := func(format string, a ...any) (Request, error) {
		return Request{}, fmt.Errorf("%w: "+format, append([]any{ErrBadRequest}, a...)...)
	}
	un := func(s string) (uint64, error) { return strconv.ParseUint(s, 10, 64) }
	in := func(s string) (int64, error) { return strconv.ParseInt(s, 10, 64) }
	var req Request
	switch cmd {
	case "put", "get":
		if len(args) != 3 {
			return bad("%s wants key offset len", cmd)
		}
		key, err1 := un(args[0])
		off, err2 := in(args[1])
		n, err3 := in(args[2])
		if err1 != nil || err2 != nil || err3 != nil || off < 0 || n < 0 || n > 64<<20 {
			return bad("%s arguments out of range", cmd)
		}
		req = Request{Key: key, Offset: off, Size: n}
		if cmd == "put" {
			req.Kind = OpPut
		} else {
			req.Kind = OpGet
		}
	case "trunc":
		if len(args) != 2 {
			return bad("trunc wants key size")
		}
		key, err1 := un(args[0])
		n, err2 := in(args[1])
		if err1 != nil || err2 != nil || n < 0 {
			return bad("trunc arguments out of range")
		}
		req = Request{Kind: OpTruncate, Key: key, Size: n}
	case "del":
		if len(args) != 1 {
			return bad("del wants key")
		}
		key, err := un(args[0])
		if err != nil {
			return bad("del key out of range")
		}
		req = Request{Kind: OpDelete, Key: key}
	case "sync":
		if len(args) != 0 {
			return bad("sync wants no arguments")
		}
		req = Request{Kind: OpSync}
	case "stats":
		if len(args) != 0 {
			return bad("stats wants no arguments")
		}
	default:
		return bad("unknown command %q", cmd)
	}
	return req, nil
}

// readLine reads one newline-terminated header line, capped at
// maxLineBytes (the reader's buffer size): a line that fills the buffer
// without its newline is rejected as ErrLineTooLong rather than buffered
// without bound.
func readLine(r *bufio.Reader) (string, error) {
	line, err := r.ReadSlice('\n')
	switch err {
	case nil:
		return strings.TrimRight(string(line), "\r\n"), nil
	case bufio.ErrBufferFull:
		return "", ErrLineTooLong
	default:
		return "", err
	}
}

// writeStatus buffers one "ok" status line, failing fast on a write
// error so the caller never follows a broken header with payload bytes.
func writeStatus(w *bufio.Writer, n int, suffix string) error {
	var err error
	if suffix != "" {
		_, err = fmt.Fprintf(w, "ok %d %s\n", n, suffix)
	} else {
		_, err = fmt.Fprintf(w, "ok %d\n", n)
	}
	return err
}

// writeOK writes and flushes one "ok" status line; the returned error is
// fatal for the connection (a half-written status cannot be retried —
// the stream is desynced).
func writeOK(w *bufio.Writer, n int, suffix string) error {
	if err := writeStatus(w, n, suffix); err != nil {
		return err
	}
	return w.Flush()
}

// writeErr reports a request-level error to the peer; the returned
// error is the flush result (an I/O failure ends the connection).
func writeErr(w *bufio.Writer, err error) error {
	code := "bad"
	switch {
	case errors.Is(err, ErrOverloaded):
		code = "overloaded"
	case errors.Is(err, ErrDraining):
		code = "draining"
	case errors.Is(err, ErrNotFound):
		code = "notfound"
	}
	msg := strings.ReplaceAll(err.Error(), "\n", " ")
	if _, werr := fmt.Fprintf(w, "err %s %s\n", code, msg); werr != nil {
		return werr
	}
	return w.Flush()
}
