// TCP transport for the object-storage service: a line-oriented text
// protocol with length-prefixed binary payloads, chosen so a session is
// debuggable with nc(1) and the framing stays trivial.
//
// Protocol (one session per connection):
//
//	hello <tenant>                 -> ok 0
//	put <key> <offset> <len>\n<len bytes>
//	                               -> ok <n>
//	get <key> <offset> <len>       -> ok <n>\n<n bytes>
//	trunc <key> <size>             -> ok 0
//	del <key>                      -> ok 0
//	sync                           -> ok 0 [batched]
//	stats                          -> ok 0 completed=<n> shed=<n>
//	quit                           -> ok 0, server closes
//
// Errors are "err <code> <message>" where code is one of overloaded,
// draining, notfound, bad — mapped 1:1 onto the package's typed errors
// by Client.
package server

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"
)

// TCP serves a Server over a listener with graceful drain on shutdown.
type TCP struct {
	srv *Server
	ln  net.Listener

	mu       sync.Mutex
	conns    map[net.Conn]struct{}
	draining bool
	wg       sync.WaitGroup
}

// NewTCP wraps srv for network serving.
func NewTCP(srv *Server) *TCP {
	return &TCP{srv: srv, conns: make(map[net.Conn]struct{})}
}

// Listen starts listening on addr (e.g. "127.0.0.1:0") and serving in
// the background. Use Addr for the bound address and Shutdown to stop.
func (t *TCP) Listen(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	t.ln = ln
	t.wg.Add(1)
	go t.acceptLoop()
	return nil
}

// Addr reports the bound listener address.
func (t *TCP) Addr() net.Addr { return t.ln.Addr() }

func (t *TCP) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			return // listener closed by Shutdown
		}
		t.mu.Lock()
		if t.draining {
			t.mu.Unlock()
			conn.Close()
			continue
		}
		t.conns[conn] = struct{}{}
		t.wg.Add(1)
		t.mu.Unlock()
		go t.handle(conn)
	}
}

// Shutdown drains gracefully: stop accepting, let every in-flight
// request complete and get its response, reject anything newly read
// with the draining error, then run the server's final sync. It returns
// once all connection handlers have exited.
func (t *TCP) Shutdown() error {
	t.mu.Lock()
	if t.draining {
		t.mu.Unlock()
		return nil
	}
	t.draining = true
	// Unblock handlers parked in Read: a request already read keeps
	// being served (handle checks draining only between requests), but
	// idle connections wake up, fail the read, and exit.
	for c := range t.conns {
		c.SetReadDeadline(time.Now())
	}
	t.mu.Unlock()
	if t.ln != nil {
		t.ln.Close()
	}
	t.wg.Wait()
	return t.srv.Drain()
}

func (t *TCP) handle(conn net.Conn) {
	defer t.wg.Done()
	defer func() {
		conn.Close()
		t.mu.Lock()
		delete(t.conns, conn)
		t.mu.Unlock()
	}()

	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	var sess *Session
	for {
		line, err := readLine(r)
		if err != nil {
			// During drain a deadline unblocks the read mid-request-gap;
			// anything in flight already got its response above.
			return
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if t.isDraining() && fields[0] != "quit" {
			writeErr(w, ErrDraining)
			return
		}
		quit, err := t.serveCmd(r, w, &sess, fields)
		if err != nil || quit {
			return
		}
	}
}

func (t *TCP) isDraining() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.draining
}

// serveCmd executes one command; the returned error means the
// connection is unusable (I/O failure), not a request-level error —
// those are written to the peer and the session continues.
func (t *TCP) serveCmd(r *bufio.Reader, w *bufio.Writer, sess **Session, fields []string) (quit bool, fatal error) {
	cmd := fields[0]
	if cmd == "quit" {
		writeOK(w, 0, "")
		return true, w.Flush()
	}
	if cmd == "hello" {
		if len(fields) != 2 {
			return false, writeErr(w, fmt.Errorf("%w: hello wants a tenant", ErrBadRequest))
		}
		s, err := t.srv.Open(fields[1])
		if err != nil {
			return false, writeErr(w, err)
		}
		*sess = s
		writeOK(w, 0, "")
		return false, w.Flush()
	}
	if *sess == nil {
		return false, writeErr(w, fmt.Errorf("%w: hello first", ErrBadRequest))
	}

	req, err := parseReq(cmd, fields[1:])
	if err != nil {
		return false, writeErr(w, err)
	}
	if cmd == "stats" {
		st := t.srv.Stats()
		writeOK(w, 0, fmt.Sprintf("completed=%d shed=%d", st.Completed, st.Shed))
		return false, w.Flush()
	}
	if req.Kind == OpPut {
		// The payload follows the header line verbatim.
		req.Data = make([]byte, req.Size)
		if _, err := io.ReadFull(r, req.Data); err != nil {
			return false, err
		}
		req.Size = 0
	}
	resp, err := (*sess).Do(req)
	if err != nil {
		return false, writeErr(w, err)
	}
	suffix := ""
	if resp.Batched {
		suffix = "batched"
	}
	writeOK(w, resp.N, suffix)
	if req.Kind == OpGet {
		if _, err := w.Write(resp.Data); err != nil {
			return false, err
		}
	}
	return false, w.Flush()
}

// parseReq decodes a command line into a Request; "stats" passes
// through with a zero request after argument validation.
func parseReq(cmd string, args []string) (Request, error) {
	bad := func(format string, a ...any) (Request, error) {
		return Request{}, fmt.Errorf("%w: "+format, append([]any{ErrBadRequest}, a...)...)
	}
	un := func(s string) (uint64, error) { return strconv.ParseUint(s, 10, 64) }
	in := func(s string) (int64, error) { return strconv.ParseInt(s, 10, 64) }
	var req Request
	switch cmd {
	case "put", "get":
		if len(args) != 3 {
			return bad("%s wants key offset len", cmd)
		}
		key, err1 := un(args[0])
		off, err2 := in(args[1])
		n, err3 := in(args[2])
		if err1 != nil || err2 != nil || err3 != nil || off < 0 || n < 0 || n > 64<<20 {
			return bad("%s arguments out of range", cmd)
		}
		req = Request{Key: key, Offset: off, Size: n}
		if cmd == "put" {
			req.Kind = OpPut
		} else {
			req.Kind = OpGet
		}
	case "trunc":
		if len(args) != 2 {
			return bad("trunc wants key size")
		}
		key, err1 := un(args[0])
		n, err2 := in(args[1])
		if err1 != nil || err2 != nil || n < 0 {
			return bad("trunc arguments out of range")
		}
		req = Request{Kind: OpTruncate, Key: key, Size: n}
	case "del":
		if len(args) != 1 {
			return bad("del wants key")
		}
		key, err := un(args[0])
		if err != nil {
			return bad("del key out of range")
		}
		req = Request{Kind: OpDelete, Key: key}
	case "sync":
		if len(args) != 0 {
			return bad("sync wants no arguments")
		}
		req = Request{Kind: OpSync}
	case "stats":
		if len(args) != 0 {
			return bad("stats wants no arguments")
		}
	default:
		return bad("unknown command %q", cmd)
	}
	return req, nil
}

func readLine(r *bufio.Reader) (string, error) {
	line, err := r.ReadString('\n')
	if err != nil {
		return "", err
	}
	return strings.TrimRight(line, "\r\n"), nil
}

func writeOK(w *bufio.Writer, n int, suffix string) {
	if suffix != "" {
		fmt.Fprintf(w, "ok %d %s\n", n, suffix)
		return
	}
	fmt.Fprintf(w, "ok %d\n", n)
}

// writeErr reports a request-level error to the peer; the returned
// error is the flush result (an I/O failure ends the connection).
func writeErr(w *bufio.Writer, err error) error {
	code := "bad"
	switch {
	case errors.Is(err, ErrOverloaded):
		code = "overloaded"
	case errors.Is(err, ErrDraining):
		code = "draining"
	case errors.Is(err, ErrNotFound):
		code = "notfound"
	}
	msg := strings.ReplaceAll(err.Error(), "\n", " ")
	fmt.Fprintf(w, "err %s %s\n", code, msg)
	return w.Flush()
}
