package server_test

import (
	"encoding/json"
	"errors"
	"net/http/httptest"
	"testing"

	"ssmobile/internal/core"
	"ssmobile/internal/obs"
	"ssmobile/internal/server"
	"ssmobile/internal/sim"
)

func getHealthz(t *testing.T, admin *server.Admin) (code int, body map[string]any) {
	t.Helper()
	rec := httptest.NewRecorder()
	admin.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("healthz body %q: %v", rec.Body.String(), err)
	}
	return rec.Code, body
}

// ageCard fills most of the flash with a file and deletes it, so the
// cleaner starts behind and admission control has something to shed
// about.
func ageCard(t *testing.T, sys *core.SolidStateSystem) {
	t.Helper()
	if err := sys.FS.Create("/age"); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4096)
	for off := int64(0); off < 7<<20; off += int64(len(buf)) {
		if _, err := sys.FS.WriteAt("/age", off, buf); err != nil {
			t.Fatal(err)
		}
		if err := sys.Storage.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.FS.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := sys.FS.Remove("/age"); err != nil {
		t.Fatal(err)
	}
}

// TestHealthzAdmissionStates walks /healthz through the three
// admission-control states: serving (200), shedding (200 but
// "overloaded" — self-protection, not an outage), and draining (503, so
// load balancers stop routing before the data port closes).
func TestHealthzAdmissionStates(t *testing.T) {
	o := obs.New(0)
	sys, err := core.NewSolidState(core.SolidStateConfig{
		DRAMBytes:       4 << 20,
		FlashBytes:      8 << 20,
		BufferBytes:     256 << 10,
		RBoxBytes:       256 << 10,
		IdleCleanBlocks: 24,
		WriteBackDelay:  30 * sim.Second,
		Obs:             o,
	})
	if err != nil {
		t.Fatal(err)
	}
	ageCard(t, sys)
	srv, err := server.New(server.Backend{
		FS: sys.FS, Storage: sys.Storage, Engine: sys.Engine, Clock: sys.Clock(),
	}, server.Config{HighWatermark: 0.05, LowWatermark: 0.01, Obs: o})
	if err != nil {
		t.Fatal(err)
	}
	admin := server.NewAdmin(srv, o)

	code, body := getHealthz(t, admin)
	if code != 200 || body["state"] != "serving" || body["status"] != "ok" {
		t.Fatalf("fresh server: code %d body %v, want 200/serving/ok", code, body)
	}

	// Stuff the tiny buffer past the high watermark with the cleaner
	// behind: admission control starts shedding.
	sess, err := srv.Open("healthz")
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 4096)
	for i := 0; i < 64 && !srv.Shedding(); i++ {
		_, err := sess.Do(server.Request{Kind: server.OpPut, Key: uint64(i), Data: data})
		if err != nil && !errors.Is(err, server.ErrOverloaded) {
			t.Fatal(err)
		}
	}
	if !srv.Shedding() {
		t.Fatal("server never started shedding")
	}
	code, body = getHealthz(t, admin)
	if code != 200 || body["state"] != "shedding" || body["status"] != "overloaded" || body["shedding"] != true {
		t.Fatalf("shedding server: code %d body %v, want 200/shedding/overloaded", code, body)
	}

	// Drain directly on the server (no transport, no SetDraining): the
	// surface must still report it, and degrade to 503.
	if err := srv.Drain(); err != nil {
		t.Fatal(err)
	}
	code, body = getHealthz(t, admin)
	if code != 503 || body["state"] != "draining" || body["draining"] != true {
		t.Fatalf("draining server: code %d body %v, want 503/draining", code, body)
	}
}

// TestHealthzSetDraining covers the transport path: the admin flag alone
// (flipped at Shutdown before the data port closes) must degrade
// /healthz to 503.
func TestHealthzSetDraining(t *testing.T) {
	o := obs.New(0)
	_, srv := newStack(t, core.SolidStateConfig{Obs: o})
	admin := server.NewAdmin(srv, o)
	if code, body := getHealthz(t, admin); code != 200 || body["state"] != "serving" {
		t.Fatalf("fresh: %d %v", code, body)
	}
	admin.SetDraining(true)
	if code, body := getHealthz(t, admin); code != 503 || body["state"] != "draining" {
		t.Fatalf("SetDraining: %d %v", code, body)
	}
	admin.SetDraining(false)
	if code, body := getHealthz(t, admin); code != 200 || body["state"] != "serving" {
		t.Fatalf("undrained: %d %v", code, body)
	}
}
