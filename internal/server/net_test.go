// Regression tests for the TCP protocol/lifecycle bugs the cluster work
// exposed: the drain race that cut mid-payload requests, the unbounded
// header-line read, and the client's missing I/O deadlines. Each test
// fails against the pre-fix implementation.
package server_test

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"ssmobile/internal/core"
	"ssmobile/internal/server"
)

// dialRaw opens a raw protocol connection and performs the hello
// handshake, returning the conn and a buffered reader over it.
func dialRaw(t *testing.T, addr, tenant string) (net.Conn, *bufio.Reader) {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	r := bufio.NewReader(conn)
	if _, err := fmt.Fprintf(conn, "hello %s\n", tenant); err != nil {
		t.Fatal(err)
	}
	line, err := r.ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(line) != "ok 0" {
		t.Fatalf("hello: got %q", line)
	}
	return conn, r
}

func listenTCP(t *testing.T) (*server.Server, *server.TCP) {
	t.Helper()
	_, srv := newStack(t, core.SolidStateConfig{})
	tcp := server.NewTCP(srv)
	if err := tcp.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	return srv, tcp
}

// TestShutdownWaitsForInFlightPayload pins the drain-race fix: a PUT
// whose header line the server has read but whose payload is still in
// flight when Shutdown begins must complete and get its "ok" response —
// the shutdown wake-up deadline must not cut the mid-payload read.
func TestShutdownWaitsForInFlightPayload(t *testing.T) {
	_, tcp := listenTCP(t)
	conn, r := dialRaw(t, tcp.Addr().String(), "drain")
	defer conn.Close()

	const size = 256 << 10
	payload := bytes.Repeat([]byte{0x5a}, size)
	if _, err := fmt.Fprintf(conn, "put 1 0 %d\n", size); err != nil {
		t.Fatal(err)
	}
	// First half of the payload, then a pause long enough for the server
	// to park inside the payload read before the drain begins.
	if _, err := conn.Write(payload[:size/2]); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)

	done := make(chan error, 1)
	go func() { done <- tcp.Shutdown() }()
	time.Sleep(100 * time.Millisecond) // let Shutdown fire its deadlines

	if _, err := conn.Write(payload[size/2:]); err != nil {
		t.Fatalf("writing second half mid-drain: %v", err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	line, err := r.ReadString('\n')
	if err != nil {
		t.Fatalf("in-flight put died during drain: %v", err)
	}
	if want := fmt.Sprintf("ok %d", size); strings.TrimSpace(line) != want {
		t.Fatalf("in-flight put during drain: got %q, want %q", line, want)
	}
	// The connection must not serve another command once drained: either
	// a clean "err draining" or a close is acceptable, never an "ok".
	fmt.Fprintf(conn, "sync\n")
	if line, err := r.ReadString('\n'); err == nil && !strings.HasPrefix(line, "err draining") {
		t.Fatalf("post-drain command answered %q, want err draining or close", line)
	}
	if err := <-done; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestShutdownRejectsNewCommandCleanly pins the other half of the drain
// contract: a command line read after the drain begins gets the typed
// draining error, not a silent close.
func TestShutdownRejectsNewCommandCleanly(t *testing.T) {
	_, tcp := listenTCP(t)
	conn, r := dialRaw(t, tcp.Addr().String(), "drain2")
	defer conn.Close()

	// Park the connection idle, then drain. The wake-up deadline makes
	// the idle read fail server-side; a command already in the client's
	// send buffer when the drain lands must still be answered "draining"
	// if the server happens to read it first — both outcomes (clean error
	// or close) are legal, an "ok" is not.
	done := make(chan error, 1)
	go func() { done <- tcp.Shutdown() }()
	fmt.Fprintf(conn, "sync\n")
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if line, err := r.ReadString('\n'); err == nil && strings.HasPrefix(line, "ok") {
		t.Fatalf("command during drain answered %q", line)
	}
	if err := <-done; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestOverlongHeaderLineRejected pins the readLine cap: a header line
// with no newline in sight must be rejected with the typed protocol
// error instead of buffering without bound.
func TestOverlongHeaderLineRejected(t *testing.T) {
	_, tcp := listenTCP(t)
	defer tcp.Shutdown()
	conn, r := dialRaw(t, tcp.Addr().String(), "longline")
	defer conn.Close()

	junk := bytes.Repeat([]byte{'a'}, 64<<10) // 64KB, no newline
	if _, err := conn.Write(junk); err != nil {
		t.Fatal(err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	line, err := r.ReadString('\n')
	if err != nil {
		t.Fatalf("no response to an overlong line (pre-fix behaviour buffers forever): %v", err)
	}
	if !strings.HasPrefix(line, "err bad") || !strings.Contains(line, "line exceeds") {
		t.Fatalf("overlong line: got %q, want an err bad ... line exceeds response", line)
	}
	// Framing is lost, so the server must close rather than reinterpret
	// the rest of the junk as commands.
	if _, err := r.ReadString('\n'); err == nil {
		t.Fatal("connection stayed open after an overlong line")
	}
}

// TestClientTimeoutOnStalledServer pins the client deadline fix: a
// listener that accepts but never answers must fail the round trip with
// the typed ErrTimeout instead of blocking the caller forever.
func TestClientTimeoutOnStalledServer(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) { // swallow input, never respond
				defer c.Close()
				buf := make([]byte, 4096)
				for {
					select {
					case <-stop:
						return
					default:
					}
					if _, err := c.Read(buf); err != nil {
						return
					}
				}
			}(conn)
		}
	}()

	start := time.Now()
	_, err = server.DialOpts(ln.Addr().String(), "stalled", server.ClientOptions{Timeout: 200 * time.Millisecond})
	if err == nil {
		t.Fatal("dial against a stalled server succeeded")
	}
	if !errors.Is(err, server.ErrTimeout) {
		t.Fatalf("stalled server: got %v, want ErrTimeout", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("timeout took %v, deadline not applied", elapsed)
	}
}

// TestClientNoTimeoutStillWorks guards the zero-value path: an untimed
// client against a live server behaves exactly as before.
func TestClientNoTimeoutStillWorks(t *testing.T) {
	_, tcp := listenTCP(t)
	defer tcp.Shutdown()
	cl, err := server.Dial(tcp.Addr().String(), "plain")
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if _, err := cl.Put(1, 0, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	got, err := cl.Get(1, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello" {
		t.Fatalf("got %q", got)
	}
}

// TestClientTimeoutRoundTripAgainstLiveServer exercises the timed path
// end to end: deadlines are set per round trip and a healthy server
// never trips them.
func TestClientTimeoutRoundTripAgainstLiveServer(t *testing.T) {
	_, tcp := listenTCP(t)
	defer tcp.Shutdown()
	cl, err := server.DialOpts(tcp.Addr().String(), "timed", server.ClientOptions{Timeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	payload := bytes.Repeat([]byte{7}, 8<<10)
	if _, err := cl.Put(3, 0, payload); err != nil {
		t.Fatal(err)
	}
	got, err := cl.Get(3, 0, int64(len(payload)))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("payload mismatch through timed client")
	}
	if _, err := cl.Sync(); err != nil {
		t.Fatal(err)
	}
}
