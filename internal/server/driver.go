// The in-process workload driver: feeds seeded multi-client request
// streams (internal/workload) through a Server in deterministic global
// arrival order, entirely in virtual time. E12, the throughput
// benchmark, and the CI smoke path all run through here, so every
// consumer sees the same saturation behaviour.
package server

import (
	"errors"
	"fmt"

	"ssmobile/internal/sim"
	"ssmobile/internal/workload"
)

// RunStats summarises a driven workload run.
type RunStats struct {
	// Offered counts generated requests; Completed the ones served.
	Offered, Completed int64
	// Shed counts writes rejected by admission control; NotFound the
	// requests that named an object the workload had not created yet (or
	// had deleted or shed).
	Shed, NotFound int64
	// BatchedSyncs counts syncs absorbed by group commit.
	BatchedSyncs int64
	// Elapsed is the virtual time from first arrival to last completion.
	Elapsed sim.Duration
	// Lat holds completion−arrival for every completed request; WriteLat
	// is the Put-only view of the same.
	Lat, WriteLat *sim.Histogram
}

// OfferedRate reports generated requests per virtual second.
func (r RunStats) OfferedRate() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Offered) / r.Elapsed.Seconds()
}

// CompletedRate reports served requests per virtual second.
func (r RunStats) CompletedRate() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Completed) / r.Elapsed.Seconds()
}

// client is one stream's driver state.
type driverClient struct {
	gen  *workload.Client
	sess RequestDoer
	op   workload.Op
	// base anchors the workload's epoch: generated arrival times are
	// relative to the run's start, not the clock's (the device may have
	// lived a prior life — aging, earlier runs).
	base sim.Time
	// next is when the pending op is issued; under closed-loop arrivals
	// it is the previous completion plus think time.
	next sim.Time
	done bool
	// payBuf is the client's reusable write-payload buffer; the server
	// copies Request.Data into the write buffer before Do returns, so
	// reusing it between ops is safe.
	payBuf []byte
}

func (c *driverClient) load(now sim.Time) {
	op, ok := c.gen.Next()
	if !ok {
		c.done = true
		return
	}
	c.op = op
	if op.Arrival > 0 {
		c.next = c.base.Add(sim.Duration(op.Arrival))
	} else {
		c.next = now.Add(op.Think)
	}
}

// RunWorkload drives cfg's full workload through svc — the single-card
// Server or the cluster router, anything implementing Service — one
// session per client, merging the per-client streams in global arrival
// order (ties broken by client id — the output is a pure function of
// the workload seed). It returns the aggregate accounting; shed and
// not-found outcomes are expected under saturation and do not fail the
// run.
func RunWorkload(svc Service, cfg workload.Config) (RunStats, error) {
	st := RunStats{Lat: sim.NewHistogram("latency"), WriteLat: sim.NewHistogram("write-latency")}
	c0 := workload.NewClient(cfg, 0)
	cfg = c0.Config() // defaulted view, so Clients below is right

	clients := make([]*driverClient, cfg.Clients)
	start := svc.Now()
	for i := range clients {
		gen := c0
		if i > 0 {
			gen = workload.NewClient(cfg, i)
		}
		sess, err := svc.OpenSession(fmt.Sprintf("c%d", i))
		if err != nil {
			return st, err
		}
		clients[i] = &driverClient{gen: gen, sess: sess, base: start}
		clients[i].load(start)
	}

	for {
		// Pick the earliest pending issue time; ties go to the lowest
		// client id so the merge order is deterministic.
		var pick *driverClient
		for _, c := range clients {
			if c.done {
				continue
			}
			if pick == nil || c.next < pick.next {
				pick = c
			}
		}
		if pick == nil {
			break
		}
		op := pick.op
		req := Request{Key: op.Key, Arrival: pick.next}
		switch op.Kind {
		case workload.Read:
			req.Kind, req.Offset, req.Size = OpGet, op.Offset, int64(op.Size)
		case workload.Write:
			pick.payBuf = op.Payload(pick.payBuf)
			req.Kind, req.Offset, req.Data = OpPut, op.Offset, pick.payBuf
		case workload.Truncate:
			req.Kind, req.Size = OpTruncate, int64(op.Size)
		case workload.Delete:
			req.Kind = OpDelete
		case workload.Sync:
			req.Kind = OpSync
		}
		st.Offered++
		resp, err := pick.sess.Do(req)
		switch {
		case err == nil:
			st.Completed++
			st.Lat.ObserveDuration(resp.Latency)
			if req.Kind == OpPut {
				st.WriteLat.ObserveDuration(resp.Latency)
			}
			if resp.Batched {
				st.BatchedSyncs++
			}
		case errors.Is(err, ErrOverloaded):
			st.Shed++
		case errors.Is(err, ErrNotFound):
			st.NotFound++
		default:
			return st, fmt.Errorf("client %d op %d (%v key %d): %w",
				op.Client, op.Seq, op.Kind, op.Key, err)
		}
		pick.load(svc.Now())
	}
	st.Elapsed = svc.Now().Sub(start)
	return st, nil
}
