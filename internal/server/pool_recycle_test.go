// Pool-recycling correctness under concurrency. The serve hot path
// recycles request buffers, trace contexts, inodes, and block-location
// records; these tests pin that recycled objects come back fully reset
// (no aliased byte slices, no stale state) and that the global
// sync.Pool-backed scratch (the fs snapshot encoder) is safe when eight
// workload drivers run in parallel. The suite runs under -race in CI,
// which is what gives the parallel test its teeth.
package server_test

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"ssmobile/internal/core"
	"ssmobile/internal/obs"
	"ssmobile/internal/server"
	"ssmobile/internal/workload"
)

// TestRecycledBuffersNoAliasing writes distinctive payloads through the
// pooled request path, interleaving objects so every buffer is recycled
// many times, then reads everything back against an independent shadow
// copy. Any aliasing between a recycled buffer and live object data
// shows up as cross-contaminated bytes.
func TestRecycledBuffersNoAliasing(t *testing.T) {
	_, srv := newStack(t, core.SolidStateConfig{})
	sess, err := srv.Open("alias")
	if err != nil {
		t.Fatal(err)
	}
	const objects = 12
	shadow := make(map[uint64][]byte, objects)
	pattern := func(key uint64, gen int) []byte {
		p := make([]byte, 512+int(key)*17)
		for i := range p {
			p[i] = byte(key)*31 + byte(gen)*7 + byte(i)
		}
		return p
	}
	// Three overwrite generations so earlier payload buffers are long
	// recycled by the time the last generation lands.
	for gen := 0; gen < 3; gen++ {
		for key := uint64(0); key < objects; key++ {
			p := pattern(key, gen)
			if _, err := sess.Do(server.Request{Kind: server.OpPut, Key: key, Data: p}); err != nil {
				t.Fatalf("put key %d gen %d: %v", key, gen, err)
			}
			shadow[key] = p
		}
	}
	for key := uint64(0); key < objects; key++ {
		want := shadow[key]
		resp, err := sess.Do(server.Request{
			Kind: server.OpGet, Key: key, Size: int64(len(want)),
		})
		if err != nil {
			t.Fatalf("get key %d: %v", key, err)
		}
		if !bytes.Equal(resp.Data, want) {
			t.Fatalf("key %d: recycled buffers corrupted object data", key)
		}
	}
}

// TestParallelWorkloadDriversDeterministic runs eight full serving
// stacks concurrently, each driving the same seeded workload with
// tracing enabled. Every driver must produce the stats of a solo run:
// the pools inside each stack are single-driver, but the package-global
// sync.Pool scratch is shared across all eight, so incomplete resets or
// unsynchronized reuse diverge the stats or trip the race detector.
func TestParallelWorkloadDriversDeterministic(t *testing.T) {
	const drivers = 8
	run := func() (server.RunStats, error) {
		o := obs.New(1 << 12)
		sys, err := core.NewSolidState(core.SolidStateConfig{
			DRAMBytes: 4 << 20, FlashBytes: 8 << 20, RBoxBytes: 256 << 10, Obs: o,
		})
		if err != nil {
			return server.RunStats{}, err
		}
		srv, err := server.New(server.Backend{
			FS: sys.FS, Storage: sys.Storage, Engine: sys.Engine, Clock: sys.Clock(),
		}, server.Config{Obs: o})
		if err != nil {
			return server.RunStats{}, err
		}
		return server.RunWorkload(srv, workload.Config{
			Seed: 1993, Clients: 4, OpsPerClient: 150, Keys: 8,
			Popularity: workload.Zipf,
			Mix:        workload.Mix{Read: 0.5, Write: 0.4, Delete: 0.05, Sync: 0.05},
		})
	}
	want, err := run()
	if err != nil {
		t.Fatal(err)
	}
	if want.Completed == 0 {
		t.Fatal("reference run completed nothing")
	}

	var wg sync.WaitGroup
	errs := make(chan error, drivers)
	for d := 0; d < drivers; d++ {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			got, err := run()
			if err != nil {
				errs <- fmt.Errorf("driver %d: %w", d, err)
				return
			}
			if got.Completed != want.Completed || got.Shed != want.Shed ||
				got.NotFound != want.NotFound || got.Elapsed != want.Elapsed ||
				got.Lat.Sum() != want.Lat.Sum() {
				errs <- fmt.Errorf("driver %d diverged from solo run:\n got %+v\nwant %+v", d, got, want)
			}
		}(d)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
