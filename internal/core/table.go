package core

import (
	"fmt"
	"io"
	"strings"
)

// Table is the printable result of one experiment: the stand-in for a
// table or figure of the paper. Columns are strings; numeric formatting
// is the experiment's job.
type Table struct {
	ID      string
	Title   string
	Headers []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends one row, formatting each cell with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// addRows appends pre-rendered rows in slice order; the parallel sweeps
// build one row per job and append the batch once it completes, keeping
// row order independent of job scheduling.
func (t *Table) addRows(rows [][]string) {
	t.Rows = append(t.Rows, rows...)
}

// Fprint renders the table with aligned columns.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "\n== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	printRow := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			parts[i] = fmt.Sprintf("%-*s", w, c)
		}
		fmt.Fprintln(w, "  "+strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	printRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	printRow(sep)
	for _, row := range t.Rows {
		printRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
}

// String renders the table.
func (t *Table) String() string {
	var b strings.Builder
	t.Fprint(&b)
	return b.String()
}
