package core

import (
	"strconv"
	"strings"
	"testing"

	"ssmobile/internal/sim"
	"ssmobile/internal/trace"
	"ssmobile/internal/wbuf"
)

const testSeed = 1993

// parsePercent extracts the numeric part of a "41.2%" cell.
func parsePercent(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(cell, "%"), 64)
	if err != nil {
		t.Fatalf("cell %q is not a percentage: %v", cell, err)
	}
	return v
}

func TestAllExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow")
	}
	for _, id := range ExperimentIDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			tables, err := Registry(testSeed)[id](NewEnv(nil, 1))
			if err != nil {
				t.Fatal(err)
			}
			if len(tables) == 0 {
				t.Fatal("no tables")
			}
			for _, tab := range tables {
				if len(tab.Rows) == 0 {
					t.Errorf("%s: empty table", tab.ID)
				}
				if tab.String() == "" {
					t.Errorf("%s: empty rendering", tab.ID)
				}
				for _, row := range tab.Rows {
					if len(row) != len(tab.Headers) {
						t.Errorf("%s: row width %d != header width %d", tab.ID, len(row), len(tab.Headers))
					}
				}
			}
		})
	}
}

func TestExperimentIDsStable(t *testing.T) {
	ids := ExperimentIDs()
	if len(ids) != 17 {
		t.Fatalf("have %d experiments, want 17: %v", len(ids), ids)
	}
	if ids[0] != "e1" || ids[9] != "e10" || ids[13] != "e14" || ids[15] != "e16" || ids[16] != "e12b" {
		t.Fatalf("ordering wrong: %v", ids)
	}
}

func TestUnknownExperimentRejected(t *testing.T) {
	if err := RunExperiment(&strings.Builder{}, "e99", 1); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

// The headline calibration: 1MB of buffer yields the paper's 40-50%
// write-traffic reduction on the Sprite-like trace.
func TestE3ReproducesBakerReduction(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	tr, err := trace.GenerateBaker(trace.DefaultBaker(2*sim.Hour, testSeed))
	if err != nil {
		t.Fatal(err)
	}
	st, err := replayThroughBuffer(nil, tr, 1<<20, 30*sim.Second, wbuf.EvictLRW)
	if err != nil {
		t.Fatal(err)
	}
	got := st.Reduction() * 100
	if got < 40 || got > 55 {
		t.Errorf("1MB buffer reduction %.1f%%, paper says 40-50%%", got)
	}
	// And the sweep is monotone non-decreasing in buffer size.
	prev := -1.0
	for _, mb := range []float64{0, 0.25, 0.5, 1, 2} {
		s, err := replayThroughBuffer(nil, tr, int64(mb*float64(1<<20)), 30*sim.Second, wbuf.EvictLRW)
		if err != nil {
			t.Fatal(err)
		}
		if r := s.Reduction(); r+1e-9 < prev {
			t.Errorf("reduction not monotone at %gMB: %.3f after %.3f", mb, r, prev)
		} else {
			prev = r
		}
	}
}

func TestE6WearShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	tab, err := E6WearLeveling(NewEnv(nil, 1), testSeed)
	if err != nil {
		t.Fatal(err)
	}
	// Row 0 is direct; every log policy must have a lower CoV and lower
	// write amplification.
	parse := func(s string) float64 {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			t.Fatalf("bad cell %q", s)
		}
		return v
	}
	directCoV := parse(tab.Rows[0][1])
	directWA := parse(tab.Rows[0][4])
	for _, row := range tab.Rows[1:] {
		if cov := parse(row[1]); cov >= directCoV {
			t.Errorf("%s CoV %.2f not below direct %.2f", row[0], cov, directCoV)
		}
		if wa := parse(row[4]); wa >= directWA {
			t.Errorf("%s write amp %.2f not below direct %.2f", row[0], wa, directWA)
		}
	}
}

func TestE7BankingShape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	tab, err := E7Banking(NewEnv(nil, 1), testSeed)
	if err != nil {
		t.Fatal(err)
	}
	// Stalled-read fraction must decline monotonically with banks.
	prev := 101.0
	for _, row := range tab.Rows {
		frac := parsePercent(t, row[5])
		if frac >= prev {
			t.Errorf("banks=%s stalled %.1f%% not below %.1f%%", row[0], frac, prev)
		}
		prev = frac
	}
}

func TestE9SolidStateWins(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	tr, err := trace.GenerateBaker(trace.DefaultBaker(5*sim.Minute, testSeed))
	if err != nil {
		t.Fatal(err)
	}
	solid, err := NewSolidState(SolidStateConfig{DRAMBytes: 16 << 20, FlashBytes: 64 << 20})
	if err != nil {
		t.Fatal(err)
	}
	dsys, err := NewDisk(DiskConfig{DRAMBytes: 16 << 20, DiskBytes: 64 << 20})
	if err != nil {
		t.Fatal(err)
	}
	ss, err := Replay(solid, tr)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := Replay(dsys, tr)
	if err != nil {
		t.Fatal(err)
	}
	if ss.ReadLatency.Mean() >= ds.ReadLatency.Mean() {
		t.Errorf("solid read mean %.0fns not below disk %.0fns",
			ss.ReadLatency.Mean(), ds.ReadLatency.Mean())
	}
	if ss.WriteLatency.Mean() >= ds.WriteLatency.Mean() {
		t.Errorf("solid write mean %.0fns not below disk %.0fns",
			ss.WriteLatency.Mean(), ds.WriteLatency.Mean())
	}
	if ss.EnergyTotal >= ds.EnergyTotal {
		t.Errorf("solid energy %v not below disk %v", ss.EnergyTotal, ds.EnergyTotal)
	}
}
