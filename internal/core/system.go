// Package core assembles the paper's complete solid-state storage
// organisation — battery-backed DRAM primary storage plus direct-mapped
// flash secondary storage behind a wear-leveling storage layer, with the
// memory-resident file system and single-level-store virtual memory on
// top — and, beside it, the conventional disk organisation it replaces.
// Both present the same System interface so every experiment can run the
// same workload against each and compare latency, energy, and wear.
package core

import (
	"fmt"

	"ssmobile/internal/bufcache"
	"ssmobile/internal/device"
	"ssmobile/internal/disk"
	"ssmobile/internal/diskfs"
	"ssmobile/internal/dram"
	"ssmobile/internal/engine"
	engineftl "ssmobile/internal/engine/ftl"
	"ssmobile/internal/engine/pdl"
	"ssmobile/internal/flash"
	"ssmobile/internal/fs"
	"ssmobile/internal/ftl"
	"ssmobile/internal/obs"
	"ssmobile/internal/sim"
	"ssmobile/internal/storman"
	"ssmobile/internal/vm"
)

// System is the interface both storage organisations expose to the
// workload replayer and the experiments.
type System interface {
	// Create makes an empty file.
	Create(name string) error
	// WriteAt writes data into the file at off.
	WriteAt(name string, off int64, data []byte) (int, error)
	// ReadAt reads into buf from off.
	ReadAt(name string, off int64, buf []byte) (int, error)
	// Remove deletes the file.
	Remove(name string) error
	// Sync makes everything stable.
	Sync() error
	// Tick pumps background daemons (write-back).
	Tick() error
	// Clock exposes the system's virtual clock.
	Clock() *sim.Clock
	// Meter exposes the system's energy meter.
	Meter() *sim.EnergyMeter
	// SettleIdle charges idle power up to the present on all devices.
	SettleIdle()
	// Name describes the configuration.
	Name() string
}

// SolidStateConfig sizes the paper's organisation.
type SolidStateConfig struct {
	// DRAMBytes is the battery-backed primary storage size.
	DRAMBytes int64
	// FlashBytes is the secondary storage size.
	FlashBytes int64
	// Banks is the flash bank count (default 4).
	Banks int
	// EraseBlockBytes is the flash erase-block size (default 64KB).
	EraseBlockBytes int
	// BlockBytes is the FS/storage-manager block and engine page size
	// (default 4KB).
	BlockBytes int
	// Engine selects the storage backend under the storage manager:
	// "ftl" (default, the flash translation layer) or "pdl" (the
	// page-differential log, which persists only the diff of an
	// overwritten page).
	Engine string
	// BufferBytes is the DRAM write-buffer region (default: a quarter of
	// DRAM).
	BufferBytes int64
	// RBoxBytes is the recovery-box region (default 1MB).
	RBoxBytes int64
	// WriteBackDelay is the dirty age before migration to flash
	// (default 30s).
	WriteBackDelay sim.Duration
	// Policy is the flash cleaning policy (default cost-benefit).
	Policy ftl.Policy
	// HotCold enables hot/cold separation (default on when Policy is
	// cost-benefit; set PlainFTL to disable both defaults).
	HotCold bool
	// PlainFTL suppresses the policy defaults so zero values mean what
	// they say.
	PlainFTL bool
	// IdleCleanBlocks, when positive, lets the FTL clean during idle time
	// until that many blocks are free (the paper's "cleaning in the
	// background while the machine is idle"). Zero keeps idle cleaning
	// off, matching the historical experiments; the serving stack turns it
	// on so saturation is a race between offered load and idle cleaning.
	IdleCleanBlocks int
	// SnapshotEvery overrides the recovery-box snapshot cadence.
	SnapshotEvery int
	// CodeCardBytes sizes the separate read-mostly flash card that holds
	// execute-in-place program images (default 4MB). The paper's §3.3
	// prescribes segregating read-mostly data from the frequently-written
	// banks; bundled software shipped on its own card is the 1993 form
	// of that (HP OmniBook). The card is outside the cleaner's reach, so
	// XIP mappings stay stable.
	CodeCardBytes int64
	// FlashParams and DRAMParams override the device catalog entries.
	FlashParams *device.Params
	DRAMParams  *device.Params
	// Obs receives every layer's metrics and op spans; nil falls back to
	// obs.Default().
	Obs *obs.Observer
}

func (c *SolidStateConfig) applyDefaults() {
	if c.Banks == 0 {
		c.Banks = 4
	}
	if c.EraseBlockBytes == 0 {
		c.EraseBlockBytes = 64 * 1024
	}
	if c.BlockBytes == 0 {
		c.BlockBytes = 4096
	}
	if c.BufferBytes == 0 {
		c.BufferBytes = c.DRAMBytes / 4
	}
	if c.RBoxBytes == 0 {
		c.RBoxBytes = 1 << 20
	}
	if c.WriteBackDelay == 0 {
		c.WriteBackDelay = 30 * sim.Second
	}
	if !c.PlainFTL && c.Policy == ftl.PolicyDirect {
		c.Policy = ftl.PolicyCostBenefit
		c.HotCold = true
	}
	if c.CodeCardBytes == 0 {
		c.CodeCardBytes = 4 << 20
	}
	if c.Engine == "" {
		c.Engine = "ftl"
	}
}

// SolidStateSystem is the paper's organisation, fully assembled.
type SolidStateSystem struct {
	cfg   SolidStateConfig
	clock *sim.Clock
	meter *sim.EnergyMeter

	DRAM *dram.Device
	// Flash is the storage card: cleaner-managed, behind the FTL.
	Flash *flash.Device
	// CodeCard is the read-mostly card holding execute-in-place images;
	// the VM's flash mappings point here.
	CodeCard *flash.Device
	// Engine is the storage backend the stack was built with.
	Engine engine.Engine
	// FTL is the translation layer when Engine is "ftl", nil otherwise;
	// the FTL-specific experiments read it directly.
	FTL     *ftl.FTL
	Storage *storman.Manager
	FS      *fs.FS
	VM      *vm.VM
}

// NewSolidState builds the full stack. The DRAM layout is:
// [0, RBoxBytes) recovery box; [RBoxBytes, RBoxBytes+BufferBytes) storage
// manager write buffer; the remainder is the VM frame pool.
func NewSolidState(cfg SolidStateConfig) (*SolidStateSystem, error) {
	cfg.applyDefaults()
	clock := sim.NewClock()
	meter := sim.NewEnergyMeter()
	o := obs.Or(cfg.Obs)
	// Pin the resolved observer into the retained config, so everything
	// built later from s.cfg (the FTL, and the remount-after-power-failure
	// path) writes to the same observer this construction does — never to
	// whatever the process default happens to be at that point.
	cfg.Obs = o
	o.GaugeFunc("dropped_negative_charges", obs.Labels{"layer": "core", "system": "solid-state"},
		func() float64 { return float64(meter.DroppedNegativeCharges()) })

	dramParams := device.NECDram
	if cfg.DRAMParams != nil {
		dramParams = *cfg.DRAMParams
	}
	flashParams := device.IntelFlash
	if cfg.FlashParams != nil {
		flashParams = *cfg.FlashParams
	}

	dr, err := dram.New(dram.Config{CapacityBytes: cfg.DRAMBytes, Params: dramParams, Obs: o}, clock, meter)
	if err != nil {
		return nil, err
	}
	blocksPerBank := int(cfg.FlashBytes / int64(cfg.Banks) / int64(cfg.EraseBlockBytes))
	if blocksPerBank <= 0 {
		return nil, fmt.Errorf("core: flash of %d bytes too small for %d banks of %d-byte blocks",
			cfg.FlashBytes, cfg.Banks, cfg.EraseBlockBytes)
	}
	fd, err := flash.New(flash.Config{
		Banks:         cfg.Banks,
		BlocksPerBank: blocksPerBank,
		BlockBytes:    cfg.EraseBlockBytes,
		Params:        flashParams,
		// Spare area for the translation layer's per-page records, so the
		// mapping survives power loss and remounts by device scan.
		SpareUnitBytes: cfg.BlockBytes,
		SpareBytes:     ftl.OOBRecordBytes,
		Obs:            o,
	}, clock, meter)
	if err != nil {
		return nil, err
	}
	var eng engine.Engine
	var fl *ftl.FTL
	switch cfg.Engine {
	case "ftl":
		fl, err = ftl.New(fd, clock, ftlConfig(cfg))
		if err != nil {
			return nil, err
		}
		eng = engineftl.Wrap(fl)
	case "pdl":
		eng, err = pdl.New(fd, clock, pdlConfig(cfg))
		if err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("core: unknown storage engine %q (want ftl or pdl)", cfg.Engine)
	}
	if cfg.RBoxBytes+cfg.BufferBytes >= cfg.DRAMBytes {
		return nil, fmt.Errorf("core: rbox %d + buffer %d exceed DRAM %d",
			cfg.RBoxBytes, cfg.BufferBytes, cfg.DRAMBytes)
	}
	sm, err := storman.New(storman.Config{
		BlockBytes:     cfg.BlockBytes,
		DRAMBase:       cfg.RBoxBytes,
		DRAMBytes:      cfg.BufferBytes,
		WriteBackDelay: cfg.WriteBackDelay,
		Obs:            o,
	}, clock, dr, eng)
	if err != nil {
		return nil, err
	}
	f, err := fs.Mkfs(fs.Config{
		RBoxBase:      0,
		RBoxBytes:     cfg.RBoxBytes,
		SnapshotEvery: cfg.SnapshotEvery,
		Obs:           o,
	}, clock, sm, dr)
	if err != nil {
		return nil, err
	}
	codeBlocks := int(cfg.CodeCardBytes / int64(cfg.EraseBlockBytes))
	if codeBlocks <= 0 {
		codeBlocks = 1
	}
	code, err := flash.New(flash.Config{
		Banks:         1,
		BlocksPerBank: codeBlocks,
		BlockBytes:    cfg.EraseBlockBytes,
		Params:        flashParams,
		MeterCategory: "flash-code",
		Obs:           o,
	}, clock, meter)
	if err != nil {
		return nil, err
	}
	frameBase := cfg.RBoxBytes + cfg.BufferBytes
	v, err := vm.New(vm.Config{
		PageBytes: cfg.BlockBytes,
		DRAMBase:  frameBase,
		DRAMBytes: cfg.DRAMBytes - frameBase,
		Obs:       o,
	}, clock, dr, code)
	if err != nil {
		return nil, err
	}
	return &SolidStateSystem{
		cfg: cfg, clock: clock, meter: meter,
		DRAM: dr, Flash: fd, CodeCard: code, Engine: eng, FTL: fl, Storage: sm, FS: f, VM: v,
	}, nil
}

// InstallImage programs a read-mostly image (a bundled application) into
// the code card at the given offset, the way a software installer or the
// factory would. The offset must fall on an erase-block boundary.
func (s *SolidStateSystem) InstallImage(off int64, image []byte) error {
	bb := s.CodeCard.BlockBytes()
	if off%int64(bb) != 0 {
		return fmt.Errorf("core: image offset %d not block-aligned", off)
	}
	for len(image) > 0 {
		block := s.CodeCard.BlockOf(off)
		if s.CodeCard.EraseCount(block) > 0 || needsErase(s.CodeCard, off, image) {
			if _, err := s.CodeCard.Erase(block); err != nil {
				return err
			}
		}
		n := bb - int(off)%bb
		if n > len(image) {
			n = len(image)
		}
		if _, err := s.CodeCard.Program(off, image[:n]); err != nil {
			return err
		}
		off += int64(n)
		image = image[n:]
	}
	return nil
}

// needsErase reports whether programming image at off would need bits set
// back to 1 (i.e. the region is not freshly erased).
func needsErase(d *flash.Device, off int64, image []byte) bool {
	bb := d.BlockBytes()
	n := bb - int(off)%bb
	if n > len(image) {
		n = len(image)
	}
	for i := 0; i < n; i++ {
		if ^d.Peek(off+int64(i))&image[i] != 0 {
			return true
		}
	}
	return false
}

func ftlConfig(cfg SolidStateConfig) ftl.Config {
	return ftl.Config{
		PageBytes:          cfg.BlockBytes,
		ReserveBlocks:      3,
		IdleCleanThreshold: cfg.IdleCleanBlocks,
		Policy:             cfg.Policy,
		HotCold:            cfg.HotCold,
		BackgroundErase:    true,
		PersistMapping:     cfg.Policy != ftl.PolicyDirect,
		Obs:                cfg.Obs,
	}
}

func pdlConfig(cfg SolidStateConfig) pdl.Config {
	return pdl.Config{
		PageBytes:          cfg.BlockBytes,
		ReserveBlocks:      3,
		IdleCleanThreshold: cfg.IdleCleanBlocks,
		BackgroundErase:    true,
		Obs:                cfg.Obs,
	}
}

// RemountAfterPowerFailure performs the full honest power-failure
// recovery: with the DRAM device failed (the caller triggers
// DRAM.PowerFail), it restores the DRAM array empty, rebuilds the
// translation layer by scanning the flash device's out-of-band records,
// rebuilds the storage manager's placement table from the page tags, and
// reloads the file-system namespace from the last flash checkpoint. It
// returns a new system sharing the same physical devices, clock and
// meter.
func (s *SolidStateSystem) RemountAfterPowerFailure() (*SolidStateSystem, error) {
	if !s.DRAM.Lost() {
		return nil, fmt.Errorf("core: remount without a power failure; call DRAM.PowerFail first")
	}
	// Preserve the last moments before the cut while the tracer ring
	// still holds them: the remount rebuilds the stack and subsequent
	// traffic would overwrite the evidence.
	if fr := obs.Or(s.cfg.Obs).FlightRecorder(); fr != nil {
		fr.Dump("power-cut-remount")
	}
	// Everything destructive from here to the rebuilt stack — re-erasing
	// torn blocks during the OOB scan, recovery checkpoints — is charged
	// to the mount-recovery cause (ftl.Mount pushes the same cause for its
	// own scan, which nests harmlessly inside this scope).
	defer obs.Or(s.cfg.Obs).PushCause(obs.CauseMountRecovery)()
	s.DRAM.Restore()
	if s.Flash.Lost() {
		// The cut may have hit the flash device mid-operation (fault
		// injection); recovery disarms the injector and powers the array
		// back up before scanning it.
		s.Flash.SetInjector(nil)
		s.Flash.Restore()
	}
	var eng engine.Engine
	var fl *ftl.FTL
	switch s.cfg.Engine {
	case "ftl":
		var err error
		fl, err = ftl.Mount(s.Flash, s.clock, ftlConfig(s.cfg))
		if err != nil {
			return nil, err
		}
		eng = engineftl.Wrap(fl)
	case "pdl":
		var err error
		eng, err = pdl.Mount(s.Flash, s.clock, pdlConfig(s.cfg))
		if err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("core: unknown storage engine %q", s.cfg.Engine)
	}
	sm, err := storman.Mount(storman.Config{
		BlockBytes:     s.cfg.BlockBytes,
		DRAMBase:       s.cfg.RBoxBytes,
		DRAMBytes:      s.cfg.BufferBytes,
		WriteBackDelay: s.cfg.WriteBackDelay,
		Obs:            s.cfg.Obs,
	}, s.clock, s.DRAM, eng)
	if err != nil {
		return nil, err
	}
	f, _, err := fs.RecoverAfterPowerFailure(fs.Config{
		RBoxBase:      0,
		RBoxBytes:     s.cfg.RBoxBytes,
		SnapshotEvery: s.cfg.SnapshotEvery,
		Obs:           s.cfg.Obs,
	}, s.clock, sm, s.DRAM)
	if err != nil {
		return nil, err
	}
	frameBase := s.cfg.RBoxBytes + s.cfg.BufferBytes
	v, err := vm.New(vm.Config{
		PageBytes: s.cfg.BlockBytes,
		DRAMBase:  frameBase,
		DRAMBytes: s.cfg.DRAMBytes - frameBase,
		Obs:       s.cfg.Obs,
	}, s.clock, s.DRAM, s.CodeCard)
	if err != nil {
		return nil, err
	}
	return &SolidStateSystem{
		cfg: s.cfg, clock: s.clock, meter: s.meter,
		DRAM: s.DRAM, Flash: s.Flash, CodeCard: s.CodeCard,
		Engine: eng, FTL: fl, Storage: sm, FS: f, VM: v,
	}, nil
}

func ssPath(name string) string { return "/" + name }

// Create implements System.
func (s *SolidStateSystem) Create(name string) error { return s.FS.Create(ssPath(name)) }

// WriteAt implements System.
func (s *SolidStateSystem) WriteAt(name string, off int64, data []byte) (int, error) {
	return s.FS.WriteAt(ssPath(name), off, data)
}

// ReadAt implements System.
func (s *SolidStateSystem) ReadAt(name string, off int64, buf []byte) (int, error) {
	return s.FS.ReadAt(ssPath(name), off, buf)
}

// Remove implements System.
func (s *SolidStateSystem) Remove(name string) error { return s.FS.Remove(ssPath(name)) }

// Sync implements System.
func (s *SolidStateSystem) Sync() error { return s.FS.Sync() }

// Tick implements System.
func (s *SolidStateSystem) Tick() error { return s.Storage.Tick() }

// Clock implements System.
func (s *SolidStateSystem) Clock() *sim.Clock { return s.clock }

// Meter implements System.
func (s *SolidStateSystem) Meter() *sim.EnergyMeter { return s.meter }

// SettleIdle implements System.
func (s *SolidStateSystem) SettleIdle() {
	s.DRAM.ChargeIdle()
	s.Flash.ChargeIdle()
	s.CodeCard.ChargeIdle()
}

// Name implements System.
func (s *SolidStateSystem) Name() string {
	return fmt.Sprintf("solid-state (%dMB DRAM + %dMB flash)",
		s.cfg.DRAMBytes>>20, s.cfg.FlashBytes>>20)
}

// DiskConfig sizes the conventional organisation.
type DiskConfig struct {
	// DRAMBytes is main memory; all of it beyond the FS's in-core state
	// serves as the buffer cache.
	DRAMBytes int64
	// DiskBytes is the drive size.
	DiskBytes int64
	// BlockBytes is the FS block size (default 4KB).
	BlockBytes int
	// CacheBytes is the buffer-cache size (default: a quarter of DRAM,
	// the classic rule of thumb).
	CacheBytes int64
	// WriteBackDelay is the delayed-write age (default 30s).
	WriteBackDelay sim.Duration
	// SpindownTimeout powers the drive down when idle (default 10s;
	// negative disables).
	SpindownTimeout sim.Duration
	// InodeBlocks sizes the on-disk inode table (default 512 blocks =
	// 16k inodes at 4KB blocks).
	InodeBlocks int64
	// DiskParams overrides the drive model (default KittyHawk).
	DiskParams *device.Params
	// Obs receives every layer's metrics and op spans; nil falls back to
	// obs.Default().
	Obs *obs.Observer
}

func (c *DiskConfig) applyDefaults() {
	if c.BlockBytes == 0 {
		c.BlockBytes = 4096
	}
	if c.CacheBytes == 0 {
		c.CacheBytes = c.DRAMBytes / 4
	}
	if c.WriteBackDelay == 0 {
		c.WriteBackDelay = 30 * sim.Second
	}
	if c.SpindownTimeout == 0 {
		c.SpindownTimeout = 10 * sim.Second
	}
	if c.SpindownTimeout < 0 {
		c.SpindownTimeout = 0
	}
	if c.InodeBlocks == 0 {
		c.InodeBlocks = 512
	}
}

// DiskSystem is the conventional organisation: disk + buffer cache +
// FFS-like file system.
type DiskSystem struct {
	cfg   DiskConfig
	clock *sim.Clock
	meter *sim.EnergyMeter

	DRAM  *dram.Device
	Disk  *disk.Device
	Cache *bufcache.Cache
	FS    *diskfs.FS
}

// NewDisk builds the conventional stack.
func NewDisk(cfg DiskConfig) (*DiskSystem, error) {
	cfg.applyDefaults()
	clock := sim.NewClock()
	meter := sim.NewEnergyMeter()
	o := obs.Or(cfg.Obs)
	cfg.Obs = o
	o.GaugeFunc("dropped_negative_charges", obs.Labels{"layer": "core", "system": "disk"},
		func() float64 { return float64(meter.DroppedNegativeCharges()) })
	dr, err := dram.New(dram.Config{CapacityBytes: cfg.DRAMBytes, Params: device.NECDram, Obs: o}, clock, meter)
	if err != nil {
		return nil, err
	}
	diskParams := device.KittyHawk
	if cfg.DiskParams != nil {
		diskParams = *cfg.DiskParams
	}
	dk, err := disk.New(disk.Config{
		CapacityBytes:   cfg.DiskBytes,
		Params:          diskParams,
		SpindownTimeout: cfg.SpindownTimeout,
		Obs:             o,
	}, clock, meter)
	if err != nil {
		return nil, err
	}
	cache, err := bufcache.New(bufcache.Config{
		BlockBytes:     cfg.BlockBytes,
		DRAMBase:       0,
		DRAMBytes:      cfg.CacheBytes,
		WriteBackDelay: cfg.WriteBackDelay,
		Obs:            o,
	}, clock, dr, dk)
	if err != nil {
		return nil, err
	}
	f, err := diskfs.New(diskfs.Config{InodeBlocks: cfg.InodeBlocks}, cache)
	if err != nil {
		return nil, err
	}
	return &DiskSystem{cfg: cfg, clock: clock, meter: meter, DRAM: dr, Disk: dk, Cache: cache, FS: f}, nil
}

// Create implements System.
func (d *DiskSystem) Create(name string) error { return d.FS.Create(name) }

// WriteAt implements System.
func (d *DiskSystem) WriteAt(name string, off int64, data []byte) (int, error) {
	return d.FS.WriteAt(name, off, data)
}

// ReadAt implements System.
func (d *DiskSystem) ReadAt(name string, off int64, buf []byte) (int, error) {
	return d.FS.ReadAt(name, off, buf)
}

// Remove implements System.
func (d *DiskSystem) Remove(name string) error { return d.FS.Remove(name) }

// Sync implements System.
func (d *DiskSystem) Sync() error { return d.FS.Sync() }

// Tick implements System.
func (d *DiskSystem) Tick() error { return d.FS.Tick() }

// Clock implements System.
func (d *DiskSystem) Clock() *sim.Clock { return d.clock }

// Meter implements System.
func (d *DiskSystem) Meter() *sim.EnergyMeter { return d.meter }

// SettleIdle implements System.
func (d *DiskSystem) SettleIdle() {
	d.DRAM.ChargeIdle()
	d.Disk.ChargeIdle()
}

// Name implements System.
func (d *DiskSystem) Name() string {
	return fmt.Sprintf("disk (%dMB DRAM + %dMB %s)",
		d.cfg.DRAMBytes>>20, d.cfg.DiskBytes>>20, d.Disk.Config().Params.Name)
}
