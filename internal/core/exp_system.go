package core

import (
	"errors"
	"fmt"

	"ssmobile/internal/device"
	"ssmobile/internal/dram"
	"ssmobile/internal/fs"
	"ssmobile/internal/obs"
	"ssmobile/internal/sim"
	"ssmobile/internal/storman"
	"ssmobile/internal/trace"
)

// E8Sizing regenerates the paper's §4 question: "How should a system
// apportion its storage capacity between the two technologies?" A fixed
// 40MB budget is split between DRAM and flash and two workloads with
// different writable working sets are run over each split. The best split
// depends on the workload — exactly the paper's (non-)answer.
func E8Sizing(env *Env, seed int64) (*Table, error) {
	const budget = 40 << 20
	splits := []int64{2 << 20, 4 << 20, 8 << 20, 16 << 20, 32 << 20}

	workloads := []struct {
		name string
		cfg  trace.BakerConfig
	}{
		{"small write working set", func() trace.BakerConfig {
			c := trace.DefaultBaker(10*sim.Minute, seed)
			c.OverwriteFrac = 0.6
			c.HotSkew = 2.0 // overwrites concentrate on very few files
			return c
		}()},
		{"large write working set", func() trace.BakerConfig {
			c := trace.DefaultBaker(10*sim.Minute, seed+1)
			c.OverwriteFrac = 0.6
			c.HotSkew = 1.01 // overwrites spread over many files
			return c
		}()},
	}

	t := &Table{
		ID:    "E8",
		Title: fmt.Sprintf("apportioning a %dMB budget between DRAM and flash", budget>>20),
		Headers: []string{"workload", "DRAM/flash", "flash MB written", "reduction",
			"mean write", "energy", "outcome"},
	}
	// Generate both workload traces up front (cheap), then run the full
	// workload x split grid as one batch of independent simulations.
	traces := make([]*trace.Trace, len(workloads))
	for i, wl := range workloads {
		tr, err := trace.GenerateBaker(wl.cfg)
		if err != nil {
			return nil, err
		}
		traces[i] = tr
	}
	n := len(workloads) * len(splits)
	rows := make([][]string, n)
	err := env.ForEach(n, func(i int, je *Env) error {
		wl := workloads[i/len(splits)]
		dramBytes := splits[i%len(splits)]
		flashBytes := int64(budget) - dramBytes
		sys, err := NewSolidState(SolidStateConfig{
			DRAMBytes:   dramBytes,
			FlashBytes:  flashBytes,
			BufferBytes: dramBytes / 4,
			RBoxBytes:   512 << 10,
			Obs:         je.Obs(),
		})
		if err != nil {
			return err
		}
		split := fmt.Sprintf("%d/%dMB", dramBytes>>20, flashBytes>>20)
		st, err := ReplayObs(je.Obs(), sys, traces[i/len(splits)])
		outcome := "ok"
		if err != nil {
			if errors.Is(err, storman.ErrNoFlash) || errors.Is(err, storman.ErrNoDRAM) {
				outcome = "OUT OF SPACE"
			} else {
				return fmt.Errorf("%s %s: %w", wl.name, split, err)
			}
		}
		ss := sys.Storage.Stats()
		rows[i] = []string{wl.name, split,
			fmt.Sprintf("%.1f", float64(ss.FlushedBytes)/(1<<20)),
			fmt.Sprintf("%.0f%%", ss.Reduction()*100),
			fmtDur(sim.Duration(st.WriteLatency.Mean())),
			sys.Meter().Total().String(),
			outcome,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	t.addRows(rows)
	t.Notes = append(t.Notes,
		"small flash fails as the permanent-data repository; small DRAM buffers poorly and wears flash;",
		"the right ratio depends on the writable working set (paper: 'the answer depends on the workload')")
	return t, nil
}

// E9EndToEnd runs the same Sprite-like day-in-the-life trace on the full
// solid-state organisation and on the conventional disk organisation and
// compares them head to head — the paper's overall thesis as one table.
func E9EndToEnd(env *Env, seed int64) (*Table, error) {
	tr, err := trace.GenerateBaker(trace.DefaultBaker(30*sim.Minute, seed))
	if err != nil {
		return nil, err
	}
	// The two organisations replay the same trace on independent virtual
	// clocks — run them as two jobs.
	var (
		solid                 *SolidStateSystem
		dsys                  *DiskSystem
		solidStats, diskStats ReplayStats
	)
	err = env.ForEach(2, func(i int, je *Env) error {
		if i == 0 {
			s, err := NewSolidState(SolidStateConfig{
				DRAMBytes: 16 << 20, FlashBytes: 64 << 20, RBoxBytes: 4 << 20, SnapshotEvery: 2048,
				Obs: je.Obs(),
			})
			if err != nil {
				return err
			}
			if solidStats, err = ReplayObs(je.Obs(), s, tr); err != nil {
				return err
			}
			solid = s
			return s.Sync()
		}
		d, err := NewDisk(DiskConfig{DRAMBytes: 16 << 20, DiskBytes: 64 << 20, Obs: je.Obs()})
		if err != nil {
			return err
		}
		if diskStats, err = ReplayObs(je.Obs(), d, tr); err != nil {
			return err
		}
		dsys = d
		return d.Sync()
	})
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:      "E9",
		Title:   "whole-system comparison on a 30-minute office workload",
		Headers: []string{"metric", "solid-state", "disk"},
	}
	row := func(metric string, f func(ReplayStats) string) {
		t.AddRow(metric, f(solidStats), f(diskStats))
	}
	row("read latency mean", func(s ReplayStats) string { return fmtDur(sim.Duration(s.ReadLatency.Mean())) })
	row("read latency p99", func(s ReplayStats) string { return fmtDur(sim.Duration(s.ReadLatency.Quantile(0.99))) })
	row("write latency mean", func(s ReplayStats) string { return fmtDur(sim.Duration(s.WriteLatency.Mean())) })
	row("write latency p99", func(s ReplayStats) string { return fmtDur(sim.Duration(s.WriteLatency.Quantile(0.99))) })
	row("create latency mean", func(s ReplayStats) string { return fmtDur(sim.Duration(s.CreateLatency.Mean())) })
	row("total energy", func(s ReplayStats) string { return s.EnergyTotal.String() })

	ss := solid.Storage.Stats()
	fstats := solid.Flash.Stats()
	dstats := dsys.Disk.Stats()
	t.AddRow("flash write traffic", fmt.Sprintf("%.1fMB (%.0f%% absorbed)",
		float64(ss.FlushedBytes)/(1<<20), ss.Reduction()*100), "-")
	t.AddRow("max block erase count", fmt.Sprint(fstats.MaxEraseCount), "-")
	t.AddRow("disk spin-ups", "-", fmt.Sprint(dstats.Spinups))
	t.AddRow("disk seeks (time)", "-", fmtDur(sim.Duration(dstats.SeekNs)))
	t.Notes = append(t.Notes,
		fmt.Sprintf("workload: %d ops, %.0fMB written, %.0fMB read",
			solidStats.Ops, float64(solidStats.BytesWritten)/(1<<20), float64(solidStats.BytesRead)/(1<<20)))
	return t, nil
}

// E9FlashParts is the ablation the paper's §2 invites: of the two 1993
// flash design points — Intel's memory-mapped part (very fast reads, slow
// 10µs/byte writes, huge slow erase blocks) and SunDisk's
// drive-replacement part (slower block reads, much faster writes and
// small quick erases) — which makes the better substrate under the same
// file-system workload?
func E9FlashParts(env *Env, seed int64) (*Table, error) {
	tr, err := trace.GenerateBaker(trace.DefaultBaker(15*sim.Minute, seed))
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "E9b",
		Title:   "flash part ablation: Intel (memory-mapped) vs SunDisk (drive replacement)",
		Headers: []string{"part", "read mean", "read p99", "write mean", "write p99", "energy"},
	}
	// The SunDisk part erases 512B sectors in 4ms; managed at a 16KB
	// granularity that is 32 sectors, 128ms per management block.
	sd := device.SunDiskFlash
	sd.EraseBlockBytes = 16 << 10
	sd.EraseLatencyNs *= 32
	parts := []struct {
		name       string
		params     device.Params
		eraseBlock int
	}{
		{"Intel Series 2 (64KB blocks, 1.6s erase)", device.IntelFlash, 64 << 10},
		{"SunDisk SDP (16KB mgmt blocks, 128ms erase)", sd, 16 << 10},
	}
	rows := make([][]string, len(parts))
	err = env.ForEach(len(parts), func(i int, je *Env) error {
		p := parts[i]
		sys, err := NewSolidState(SolidStateConfig{
			DRAMBytes: 16 << 20, FlashBytes: 64 << 20,
			EraseBlockBytes: p.eraseBlock,
			FlashParams:     &p.params,
			Obs:             je.Obs(),
		})
		if err != nil {
			return err
		}
		st, err := ReplayObs(je.Obs(), sys, tr)
		if err != nil {
			return err
		}
		rows[i] = []string{p.name,
			fmtDur(sim.Duration(st.ReadLatency.Mean())),
			fmtDur(sim.Duration(st.ReadLatency.Quantile(0.99))),
			fmtDur(sim.Duration(st.WriteLatency.Mean())),
			fmtDur(sim.Duration(st.WriteLatency.Quantile(0.99))),
			sys.Meter().Total().String()}
		return nil
	})
	if err != nil {
		return nil, err
	}
	t.addRows(rows)
	t.Notes = append(t.Notes,
		"with the write buffer absorbing writes, the Intel part's fast reads win the foreground;",
		"the SunDisk part's cheap erases matter once sustained writes push past the buffer")
	return t, nil
}

// E10CrashAndBattery regenerates the paper's stability story (§3.1): how
// long batteries preserve DRAM, what an OS crash costs (nothing, thanks
// to the recovery box), and what a power failure costs under different
// checkpoint policies.
func E10CrashAndBattery(env *Env, seed int64) ([]*Table, error) {
	retention := &Table{
		ID:      "E10a",
		Title:   "battery retention of a 16MB battery-backed DRAM (NEC self-refresh)",
		Headers: []string{"source", "capacity", "idle draw", "retention"},
	}
	clock := sim.NewClock()
	meter := sim.NewEnergyMeter()
	dr, err := dram.New(dram.Config{CapacityBytes: 16 << 20, Params: device.NECDram, Obs: env.Obs()}, clock, meter)
	if err != nil {
		return nil, err
	}
	idle := dr.IdleMilliwatts()
	primary := dram.NewPack(10, 0)
	backup := dram.NewPack(0, 0.5)
	retention.AddRow("primary batteries", "10 Wh", fmt.Sprintf("%.1f mW", idle),
		fmt.Sprintf("%.1f days", primary.RetentionAt(idle).Seconds()/86400))
	retention.AddRow("lithium backup", "0.5 Wh", fmt.Sprintf("%.1f mW", idle),
		fmt.Sprintf("%.1f hours", backup.RetentionAt(idle).Seconds()/3600))
	retention.Notes = append(retention.Notes,
		"paper: primary batteries preserve memory 'for many days', the backup 'for many hours'")

	crash := &Table{
		ID:      "E10b",
		Title:   "data at risk across failure modes (10-minute workload, 30s write-back)",
		Headers: []string{"failure", "policy", "data lost", "metadata"},
	}

	// The five failure scenarios each replay the same workload on a fresh
	// system, then fail and recover it — independent simulations, run as
	// one batch. Scenario B' reuses scenario B's lost-byte count in its
	// row (the same failure recovered a different way), which is applied
	// at assembly below.
	var (
		metaNoteA           string
		lostB, lostC        int64
		remountB2, beforeB2 int
		recCInodes          int
		lostD               string
		recD, inodesD       int
	)
	err = env.ForEach(5, func(i int, je *Env) error {
		o := je.Obs()
		switch i {
		case 0:
			// Scenario A: OS crash; recovery box restores metadata,
			// battery-backed DRAM preserves data.
			sysA, _, err := e10Run(o, seed, 0)
			if err != nil {
				return err
			}
			inodesBefore := sysA.FS.NumInodes()
			recovered, err := fs.RecoverAfterCrash(fs.Config{RBoxBase: 0, RBoxBytes: 1 << 20, Obs: o}, sysA.Clock(), sysA.Storage, sysA.DRAM)
			if err != nil {
				return err
			}
			metaNoteA = "recovered via recovery box"
			if recovered.NumInodes() != inodesBefore {
				metaNoteA = fmt.Sprintf("LOST %d inodes", inodesBefore-recovered.NumInodes())
			}
		case 1:
			// Scenario B: power failure with 60s metadata checkpoints.
			sysB, _, err := e10Run(o, seed, 60*sim.Second)
			if err != nil {
				return err
			}
			sysB.DRAM.PowerFail()
			_, lostB, err = fs.RecoverAfterPowerFailure(fs.Config{RBoxBase: 0, RBoxBytes: 1 << 20, Obs: o}, sysB.Clock(), sysB.Storage, sysB.DRAM)
			return err
		case 2:
			// Scenario B': the same failure, recovered the honest way — no
			// surviving in-core state at all, everything rebuilt by
			// scanning the flash device's out-of-band records and the
			// flash checkpoint.
			sysB2, _, err := e10Run(o, seed, 60*sim.Second)
			if err != nil {
				return err
			}
			beforeB2 = sysB2.FS.NumInodes()
			sysB2.DRAM.PowerFail()
			remounted, err := sysB2.RemountAfterPowerFailure()
			if err != nil {
				return err
			}
			remountB2 = remounted.FS.NumInodes()
		case 3:
			// Scenario C: power failure with no checkpoints at all.
			sysC, _, err := e10Run(o, seed, 0)
			if err != nil {
				return err
			}
			sysC.DRAM.PowerFail()
			recC, lost, err := fs.RecoverAfterPowerFailure(fs.Config{RBoxBase: 0, RBoxBytes: 1 << 20, Obs: o}, sysC.Clock(), sysC.Storage, sysC.DRAM)
			if err != nil {
				return err
			}
			lostC = lost
			recCInodes = recC.NumInodes()
		case 4:
			// Scenario D: the paper's gradual-discharge story. The primary
			// batteries deplete predictably; the monitor flushes
			// everything to flash on the lithium backup before power is
			// truly gone.
			sysD, _, err := e10Run(o, seed, 0)
			if err != nil {
				return err
			}
			pack := dram.NewPack(10, 0.5)
			mon := AttachBattery(sysD, pack)
			inodesD = sysD.FS.NumInodes()
			// The primary empties (days of idling compressed into one
			// drain).
			if err := pack.Drain(pack.Primary.Remaining()); err != nil {
				return err
			}
			if err := mon.Tick(); err != nil && !errors.Is(err, dram.ErrBatteryDead) {
				return err
			}
			sysD.DRAM.PowerFail() // backup finally dies too
			remountedD, err := sysD.RemountAfterPowerFailure()
			if err != nil {
				return err
			}
			recD = remountedD.FS.NumInodes()
			lostD = "0 B"
			if recD != inodesD {
				lostD = fmt.Sprintf("%d inodes", inodesD-recD)
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	crash.AddRow("OS crash", "battery-backed DRAM + recovery box", "0 B", metaNoteA)
	crash.AddRow("power failure", "60s checkpoints + 30s write-back",
		fmtBytes(lostB), "last checkpoint + surviving flash data")
	crash.AddRow("power failure", "60s checkpoints, full device-scan remount",
		fmtBytes(lostB), fmt.Sprintf("%d of %d inodes recovered by OOB scan + checkpoint",
			remountB2, beforeB2))
	crash.AddRow("power failure", "no checkpoints",
		fmtBytes(lostC), fmt.Sprintf("all namespace lost (%d inodes remain)", recCInodes))
	crash.AddRow("battery death", "gradual discharge -> low-battery flush",
		lostD, fmt.Sprintf("%d of %d inodes recovered", recD, inodesD))

	crash.Notes = append(crash.Notes,
		"an OS crash costs nothing: that is the paper's case for keeping file data in battery-backed DRAM;",
		"power failures cost only what the write-back and checkpoint cadence left unmigrated;",
		"predictable battery discharge lets the OS flush in time, so battery death costs nothing")
	return []*Table{retention, crash}, nil
}

// e10Run replays a 10-minute trace on a fresh solid-state system,
// checkpointing metadata every ckpt (0 disables).
func e10Run(o *obs.Observer, seed int64, ckpt sim.Duration) (*SolidStateSystem, *trace.Trace, error) {
	tr, err := trace.GenerateBaker(trace.DefaultBaker(10*sim.Minute, seed))
	if err != nil {
		return nil, nil, err
	}
	sys, err := NewSolidState(SolidStateConfig{
		DRAMBytes: 8 << 20, FlashBytes: 32 << 20, RBoxBytes: 1 << 20, BufferBytes: 2 << 20,
		Obs: o,
	})
	if err != nil {
		return nil, nil, err
	}
	clock := sys.Clock()
	nextCkpt := sim.Time(ckpt)
	scratch := make([]byte, 256*1024)
	for _, op := range tr.Ops {
		if at := sim.Time(op.Time); at > clock.Now() {
			clock.AdvanceTo(at)
		}
		if err := sys.Tick(); err != nil {
			return nil, nil, err
		}
		if ckpt > 0 && clock.Now() >= nextCkpt {
			if err := sys.FS.Checkpoint(); err != nil {
				return nil, nil, err
			}
			nextCkpt = clock.Now().Add(ckpt)
		}
		name := fileName(op.File)
		switch op.Kind {
		case trace.Create:
			err = sys.Create(name)
		case trace.Write:
			buf := scratch[:op.Size]
			payload(buf, op.File, op.Offset)
			_, err = sys.WriteAt(name, op.Offset, buf)
		case trace.Read:
			_, err = sys.ReadAt(name, op.Offset, scratch[:op.Size])
		case trace.Delete:
			err = sys.Remove(name)
		}
		if err != nil {
			return nil, nil, err
		}
	}
	return sys, tr, nil
}
