package core

import (
	"bytes"
	"errors"
	"testing"

	"ssmobile/internal/dram"
	"ssmobile/internal/sim"
)

func TestBatteryMonitorEmergencyFlush(t *testing.T) {
	sys := newSolid(t)
	// A tiny primary so it empties during the test; a healthy backup so
	// the emergency flush has room to run.
	pack := &dram.Pack{
		Primary: dram.NewBattery("p", 50*sim.Millijoule),
		Backup:  dram.NewBattery("b", 5*sim.Joule),
	}
	mon := AttachBattery(sys, pack)

	data := bytes.Repeat([]byte{7}, 8192)
	if err := sys.Create("doc"); err != nil {
		t.Fatal(err)
	}
	var sawDead bool
	for i := 0; i < 200 && !sawDead; i++ {
		if _, err := sys.WriteAt("doc", int64(i%4)*8192, data); err != nil {
			t.Fatal(err)
		}
		sys.Clock().Advance(sim.Second)
		if err := mon.Tick(); err != nil {
			if errors.Is(err, dram.ErrBatteryDead) {
				sawDead = true
				break
			}
			t.Fatal(err)
		}
	}
	flushed, at := mon.EmergencyFlushed()
	if !flushed {
		t.Fatal("primary emptied without an emergency flush")
	}
	if at == 0 {
		t.Fatal("flush time not recorded")
	}
	// Everything written before the flush must be in flash now: a power
	// failure right after costs nothing for it.
	sys.DRAM.PowerFail()
	recovered, err := sys.RemountAfterPowerFailure()
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8192)
	n, err := recovered.ReadAt("doc", 0, buf)
	if err != nil || n != 8192 {
		t.Fatalf("doc after flush+failure: n=%d err=%v", n, err)
	}
	if !bytes.Equal(buf, data) {
		t.Fatal("doc corrupted")
	}
}

func TestBatteryMonitorDrainsByConsumption(t *testing.T) {
	sys := newSolid(t)
	pack := dram.NewPack(10, 0.5)
	mon := AttachBattery(sys, pack)
	meterAtAttach := sys.Meter().Total()
	before := pack.Primary.Remaining()
	if err := sys.Create("f"); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.WriteAt("f", 0, make([]byte, 64*1024)); err != nil {
		t.Fatal(err)
	}
	sys.Clock().Advance(sim.Minute)
	if err := mon.Tick(); err != nil {
		t.Fatal(err)
	}
	drained := before - pack.Primary.Remaining()
	if drained <= 0 {
		t.Fatal("no drain recorded")
	}
	// Drain must equal what the meter charged since the pack attached.
	if got := sys.Meter().Total() - meterAtAttach; drained != got {
		t.Fatalf("drained %d pJ != consumed %d pJ", int64(drained), int64(got))
	}
}
