package core

import (
	"fmt"

	"ssmobile/internal/cluster"
	"ssmobile/internal/obs"
	"ssmobile/internal/server"
	"ssmobile/internal/sim"
	"ssmobile/internal/workload"
)

// ClusterNodeConfig describes one node of an in-process serving cluster:
// a full solid-state stack (card, FTL, storage manager, file system)
// behind its own server, aged to a chosen point in its life.
type ClusterNodeConfig struct {
	// Name identifies the node on the placement ring.
	Name string
	// System parameterises the node's card stack; Obs is overridden with
	// the node's private observer (the router's health checks need each
	// node's telemetry isolated — and so does deterministic merging).
	System SolidStateConfig
	// AgeBytes streams this much data through the stack and deletes it
	// before serving, leaving the card full of dead pages as months of
	// use would.
	AgeBytes int64
	// TraceCapacity sizes the node observer's span ring (<=0 default).
	TraceCapacity int
}

// NewClusterNode assembles one cluster node: private observer, aged
// card stack, server, and a restart hook that recovers the node from
// flash after a power cut (synced data survives, unsynced DRAM is
// lost). The returned observer is the node's private one — merge it
// into the ambient observer after the run for deterministic telemetry.
func NewClusterNode(cfg ClusterNodeConfig) (*cluster.Node, *obs.Observer, error) {
	priv := obs.New(cfg.TraceCapacity)
	// Stamp the node's name onto every span its stack records, so a
	// merged cross-node trace still attributes each span to its card.
	priv.Tracer.SetNode(cfg.Name)
	scfg := cfg.System
	scfg.Obs = priv
	sys, err := NewSolidState(scfg)
	if err != nil {
		return nil, nil, fmt.Errorf("node %s: %w", cfg.Name, err)
	}
	if cfg.AgeBytes > 0 {
		if err := ageDevice(sys, cfg.AgeBytes); err != nil {
			return nil, nil, fmt.Errorf("aging node %s: %w", cfg.Name, err)
		}
	}
	newServer := func(s *SolidStateSystem) (*server.Server, error) {
		return server.New(server.Backend{
			FS: s.FS, Storage: s.Storage, Engine: s.Engine, Clock: s.Clock(),
		}, server.Config{Obs: priv})
	}
	srv, err := newServer(sys)
	if err != nil {
		return nil, nil, fmt.Errorf("node %s: %w", cfg.Name, err)
	}
	node := &cluster.Node{
		Name:  cfg.Name,
		Srv:   srv,
		Clock: sys.Clock(),
		Obs:   priv,
	}
	node.Restart = func() (*server.Server, error) {
		sys.DRAM.PowerFail()
		recovered, err := sys.RemountAfterPowerFailure()
		if err != nil {
			return nil, err
		}
		sys = recovered
		return newServer(sys)
	}
	return node, priv, nil
}

// E14Cluster is the scale-out study: the E12 saturation workload —
// open-loop clients at the single-card knee — served by a router
// (internal/cluster) over 1..N ssmserve nodes, each with its own aged
// card, cleaner, and admission controller. Placement is a consistent
// hash of (tenant, key); every write lands on a primary plus one
// replica with sync-commit semantics (a write acknowledges at its
// slowest holder); a shed write is retried against the same node with
// virtual-time backoff, so one node's overload never cascades. The last
// row plants one node near its free-block margin: the router's health
// sweep (the E13 SMART report) cordons it mid-run and migrates its keys
// to healthier cards.
//
// Everything is in-process virtual time — the table is a pure function
// of the seed, byte-identical across runs and -parallel levels.
func E14Cluster(env *Env, seed int64) (*Table, error) {
	cells := []struct {
		nodes   int
		deepAge bool // age node 0 to the free-block margin → rebalance
	}{
		{1, false}, {2, false}, {4, false}, {3, true},
	}
	const w = 0.6

	t := &Table{
		ID: "E14",
		Title: "cluster scale-out at the saturation knee: consistent-hash placement, " +
			"replicated writes, health-driven rebalancing",
		Headers: []string{"nodes", "offered op/s", "served op/s", "p50", "p99",
			"shed", "max node shed", "failovers", "rebal", "migrated"},
	}

	n := len(cells)
	rows := make([][]string, n)
	err := env.ForEach(n, func(i int, je *Env) error {
		cell := cells[i]
		nodes := make([]*cluster.Node, cell.nodes)
		privs := make([]*obs.Observer, cell.nodes)
		for j := range nodes {
			age := int64(6 << 20)
			if cell.deepAge && j == 0 {
				// One card already at its free-block margin: the health
				// sweep should cordon it and move its keys away.
				age = 15 << 19 // 7.5MB of history on an 8MB card
			}
			node, priv, err := NewClusterNode(ClusterNodeConfig{
				Name: fmt.Sprintf("n%d", j),
				System: SolidStateConfig{
					DRAMBytes:       8 << 20,
					FlashBytes:      8 << 20,
					BufferBytes:     1 << 20,
					RBoxBytes:       512 << 10,
					IdleCleanBlocks: 24,
					WriteBackDelay:  2 * sim.Second,
				},
				AgeBytes: age,
			})
			if err != nil {
				return err
			}
			nodes[j], privs[j] = node, priv
		}
		// The margin sits just below the deep-aged card's starting
		// free-block margin, so the last row's cordon fires on the
		// router's first health sweep; baseline cards cordon only
		// transiently, when a write burst outruns their cleaner.
		cl, err := cluster.New(nodes, cluster.Config{RebalanceMargin: 0.05, Obs: je.Obs()})
		if err != nil {
			return err
		}
		// The E12 32-client knee: the offered load one card sheds under.
		st, err := server.RunWorkload(cl, workload.Config{
			Seed:          seed + int64(i),
			Clients:       32,
			OpsPerClient:  250,
			Keys:          6,
			ObjectBytes:   32 << 10,
			MinWriteBytes: 4096,
			MaxWriteBytes: 4096,
			Mix: workload.Mix{
				Read:     1 - w,
				Write:    w * 0.90,
				Truncate: w * 0.02,
				Delete:   w * 0.03,
				Sync:     w * 0.05,
			},
			Popularity:    workload.Zipf,
			ZipfSkew:      1.2,
			Arrival:       workload.OpenLoop,
			RatePerClient: 10,
		})
		if err != nil {
			return fmt.Errorf("%d nodes: %w", cell.nodes, err)
		}
		cst := cl.ClusterStats()
		// Shed locality: how concentrated the node-local sheds were. On a
		// healthy cluster the hash spreads load and no node dominates;
		// a hot or aging card shows up as one node absorbing the sheds.
		var totalNodeShed, maxNodeShed int64
		for _, node := range nodes {
			s := node.Srv.Stats().Shed
			totalNodeShed += s
			if s > maxNodeShed {
				maxNodeShed = s
			}
		}
		maxShare := "-"
		if totalNodeShed > 0 {
			maxShare = fmt.Sprintf("%.0f%%", 100*float64(maxNodeShed)/float64(totalNodeShed))
		}
		rows[i] = []string{
			fmt.Sprintf("%d", cell.nodes),
			fmt.Sprintf("%.1f", st.OfferedRate()),
			fmt.Sprintf("%.1f", st.CompletedRate()),
			fmtDur(sim.Duration(st.Lat.Quantile(0.50))),
			fmtDur(sim.Duration(st.Lat.Quantile(0.99))),
			fmt.Sprintf("%d", st.Shed),
			maxShare,
			fmt.Sprintf("%d", cst.ReadFailovers),
			fmt.Sprintf("%d", cst.Rebalances),
			fmt.Sprintf("%d", cst.MigratedKeys),
		}
		for _, priv := range privs {
			je.Obs().Merge(priv)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	t.addRows(rows)
	t.Notes = append(t.Notes,
		"the E12 saturation workload (32 open-loop clients, 60% writes) routed over N nodes, each",
		"its own aged card with private cleaner and admission control; writes land on primary+replica",
		"with the slowest holder's latency (sync-commit), sheds retry node-locally with backoff;",
		"rebal counts cordon events: any card a burst pushes to its free-block margin cordons until",
		"its cleaner recovers, but migration needs a healthy non-holder (so 1- and 2-node clusters,",
		"where every node already holds every key, migrate nothing); the 3-node row starts one card",
		"at its margin — the router's SMART-report sweep cordons it immediately and moves its keys;",
		"scale-out moves the knee: the cleaning bandwidth the paper worries about is per-card,",
		"so sharding tenants across cards buys back the tail that one saturated cleaner costs")
	return t, nil
}
