package core

import (
	"fmt"
	"io"
	"sort"
)

// Runner produces the table(s) of one experiment.
type Runner func() ([]*Table, error)

func one(f func() (*Table, error)) Runner {
	return func() ([]*Table, error) {
		t, err := f()
		if err != nil {
			return nil, err
		}
		return []*Table{t}, nil
	}
}

// Registry maps experiment ids (e1..e10) to runners, with all stochastic
// experiments tied to the given seed for reproducibility.
func Registry(seed int64) map[string]Runner {
	return map[string]Runner{
		"e1": func() ([]*Table, error) {
			a, err := E1DeviceComparison()
			if err != nil {
				return nil, err
			}
			b, err := E1BatteryLife()
			if err != nil {
				return nil, err
			}
			c, err := E1FullStack()
			if err != nil {
				return nil, err
			}
			return []*Table{a, b, c}, nil
		},
		"e2": one(E2CostCrossover),
		"e3": func() ([]*Table, error) {
			a, err := E3WriteBuffering(seed)
			if err != nil {
				return nil, err
			}
			b, err := E3FlushPolicyAblation(seed)
			if err != nil {
				return nil, err
			}
			c, err := E3BlockSizeAblation(seed)
			if err != nil {
				return nil, err
			}
			return []*Table{a, b, c}, nil
		},
		"e4": one(E4ReadInPlace),
		"e5": one(E5XIP),
		"e6": func() ([]*Table, error) {
			a, err := E6WearLeveling(seed)
			if err != nil {
				return nil, err
			}
			b, err := E6Lifetime(seed)
			if err != nil {
				return nil, err
			}
			c, err := E6Static(seed)
			if err != nil {
				return nil, err
			}
			return []*Table{a, b, c}, nil
		},
		"e7": func() ([]*Table, error) {
			a, err := E7Banking(seed)
			if err != nil {
				return nil, err
			}
			b, err := E7Segregation(seed)
			if err != nil {
				return nil, err
			}
			return []*Table{a, b}, nil
		},
		"e8": one(func() (*Table, error) { return E8Sizing(seed) }),
		"e9": func() ([]*Table, error) {
			a, err := E9EndToEnd(seed)
			if err != nil {
				return nil, err
			}
			b, err := E9FlashParts(seed)
			if err != nil {
				return nil, err
			}
			return []*Table{a, b}, nil
		},
		"e10": func() ([]*Table, error) { return E10CrashAndBattery(seed) },
	}
}

// Descriptions maps each experiment id to a one-line summary, for the
// CLI's list subcommand.
func Descriptions() map[string]string {
	return map[string]string{
		"e1":  "device comparison (§2): DRAM/flash/disk latency, cost, power, plus battery life and full-stack context",
		"e2":  "technology trends (§2): cost and density crossovers, 40MB flash vs disk by ~1996",
		"e3":  "write buffering (§3.3): battery-backed DRAM buffer absorbing 40-50% of write traffic",
		"e4":  "read in place (§3.3): serving reads from flash without copying into DRAM",
		"e5":  "execute in place (§3.2): XIP from the code card vs demand paging from disk",
		"e6":  "wear leveling (§3.3): cleaning policies, device lifetime, static leveling",
		"e7":  "banking and segregation (§3.3): parallel banks hiding erase latency, hot/cold separation",
		"e8":  "sizing (§3.3): DRAM buffer size against write-traffic reduction",
		"e9":  "end to end (§4): file workloads on the full solid-state vs disk organisations",
		"e10": "crash recovery and battery (§3.1): recovery box after crashes and power failures",
	}
}

// ExperimentIDs lists the registry keys in order.
func ExperimentIDs() []string {
	ids := make([]string, 0, 10)
	for id := range Registry(0) {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		if len(ids[i]) != len(ids[j]) {
			return len(ids[i]) < len(ids[j])
		}
		return ids[i] < ids[j]
	})
	return ids
}

// RunExperiment runs one experiment by id and prints its tables.
func RunExperiment(w io.Writer, id string, seed int64) error {
	r, ok := Registry(seed)[id]
	if !ok {
		return fmt.Errorf("core: unknown experiment %q (have %v)", id, ExperimentIDs())
	}
	tables, err := r()
	if err != nil {
		return fmt.Errorf("experiment %s: %w", id, err)
	}
	for _, t := range tables {
		t.Fprint(w)
	}
	return nil
}

// RunAll runs every experiment in order.
func RunAll(w io.Writer, seed int64) error {
	for _, id := range ExperimentIDs() {
		if err := RunExperiment(w, id, seed); err != nil {
			return err
		}
	}
	return nil
}
