package core

import (
	"fmt"
	"io"
	"sort"

	"ssmobile/internal/obs"
)

// Runner produces the table(s) of one experiment under an execution
// environment (observer + scheduler; see engine.go).
type Runner func(*Env) ([]*Table, error)

func one(f func(*Env) (*Table, error)) Runner {
	return func(env *Env) ([]*Table, error) {
		t, err := f(env)
		if err != nil {
			return nil, err
		}
		return []*Table{t}, nil
	}
}

// Registry maps experiment ids (e1..e12) to runners, with all stochastic
// experiments tied to the given seed for reproducibility. Experiments
// with several independent tables build them as one ForEach batch, so a
// parallel environment overlaps them.
func Registry(seed int64) map[string]Runner {
	return map[string]Runner{
		"e1": func(env *Env) ([]*Table, error) {
			return tableSet(env,
				E1DeviceComparison,
				func(je *Env) (*Table, error) { return E1BatteryLife() },
				E1FullStack,
			)
		},
		"e2": one(func(*Env) (*Table, error) { return E2CostCrossover() }),
		"e3": func(env *Env) ([]*Table, error) {
			return tableSet(env,
				func(je *Env) (*Table, error) { return E3WriteBuffering(je, seed) },
				func(je *Env) (*Table, error) { return E3FlushPolicyAblation(je, seed) },
				func(je *Env) (*Table, error) { return E3BlockSizeAblation(je, seed) },
			)
		},
		"e4": one(E4ReadInPlace),
		"e5": one(E5XIP),
		"e6": func(env *Env) ([]*Table, error) {
			return tableSet(env,
				func(je *Env) (*Table, error) { return E6WearLeveling(je, seed) },
				func(je *Env) (*Table, error) { return E6Lifetime(je, seed) },
				func(je *Env) (*Table, error) { return E6Static(je, seed) },
			)
		},
		"e7": func(env *Env) ([]*Table, error) {
			return tableSet(env,
				func(je *Env) (*Table, error) { return E7Banking(je, seed) },
				func(je *Env) (*Table, error) { return E7Segregation(je, seed) },
			)
		},
		"e8": one(func(env *Env) (*Table, error) { return E8Sizing(env, seed) }),
		"e9": func(env *Env) ([]*Table, error) {
			return tableSet(env,
				func(je *Env) (*Table, error) { return E9EndToEnd(je, seed) },
				func(je *Env) (*Table, error) { return E9FlashParts(je, seed) },
			)
		},
		"e10":  func(env *Env) ([]*Table, error) { return E10CrashAndBattery(env, seed) },
		"e11":  one(E11PowerCuts),
		"e12":  one(func(env *Env) (*Table, error) { return E12Saturation(env, seed) }),
		"e12b": one(func(env *Env) (*Table, error) { return E12bAttribution(env, seed) }),
		"e13":  one(func(env *Env) (*Table, error) { return E13WearAging(env, seed) }),
		"e14":  one(func(env *Env) (*Table, error) { return E14Cluster(env, seed) }),
		"e15":  one(func(env *Env) (*Table, error) { return E15EngineHeadToHead(env, seed) }),
		"e16":  func(env *Env) ([]*Table, error) { return E16Fleet(env, seed) },
	}
}

// Descriptions maps each experiment id to a one-line summary, for the
// CLI's list subcommand.
func Descriptions() map[string]string {
	return map[string]string{
		"e1":   "device comparison (§2): DRAM/flash/disk latency, cost, power, plus battery life and full-stack context",
		"e2":   "technology trends (§2): cost and density crossovers, 40MB flash vs disk by ~1996",
		"e3":   "write buffering (§3.3): battery-backed DRAM buffer absorbing 40-50% of write traffic",
		"e4":   "read in place (§3.3): serving reads from flash without copying into DRAM",
		"e5":   "execute in place (§3.2): XIP from the code card vs demand paging from disk",
		"e6":   "wear leveling (§3.3): cleaning policies, device lifetime, static leveling",
		"e7":   "banking and segregation (§3.3): parallel banks hiding erase latency, hot/cold separation",
		"e8":   "sizing (§3.3): DRAM buffer size against write-traffic reduction",
		"e9":   "end to end (§4): file workloads on the full solid-state vs disk organisations",
		"e10":  "crash recovery and battery (§3.1): recovery box after crashes and power failures",
		"e11":  "recovery under power cuts (§3.1, §4): crash-point enumeration at every device op, with torn programs and interrupted erases",
		"e12":  "serving-stack saturation (§3.3, §4): open-loop clients vs cleaning bandwidth through the object-storage service, with latency percentiles and load shedding",
		"e12b": "latency attribution at the knee (§3.3): request-scoped causal tracing decomposes the p99 into queue/buffer/flush/flash/clean stages and names the dominant stall",
		"e13":  "wear attribution over a lifetime (§3.3): years of bursty traffic age one card; write amplification decomposed by cause, wear spread, and the SMART-style health report's burn-rate lifetime",
		"e14":  "cluster scale-out (§4): the saturation workload sharded across N server nodes by consistent hash, with replicated writes, node-local shed retry, and health-driven rebalancing off an aging card",
		"e15":  "storage-engine head-to-head (§3.3): page-mapped FTL vs page-differential logging on an overwrite-heavy serving mix — throughput, tail latency, write amplification and erase load per backend",
		"e16":  "fleet observability (§4): a cluster driven through cordon, kill and restart — the event journal's virtual-time timeline, per-holder replica latency decomposition, and the fleet health rollup aggregating per-card SMART reports",
	}
}

// ExperimentIDs lists the registry keys in order.
func ExperimentIDs() []string {
	ids := make([]string, 0, 10)
	for id := range Registry(0) {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		if len(ids[i]) != len(ids[j]) {
			return len(ids[i]) < len(ids[j])
		}
		return ids[i] < ids[j]
	})
	return ids
}

// RunExperiment runs one experiment by id sequentially and prints its
// tables.
func RunExperiment(w io.Writer, id string, seed int64) error {
	return RunExperimentParallel(w, id, seed, 1)
}

// RunExperimentParallel runs one experiment by id with up to par
// concurrent sweep configurations and prints its tables. Output and
// telemetry are identical to the sequential run for any par.
func RunExperimentParallel(w io.Writer, id string, seed int64, par int) error {
	r, ok := Registry(seed)[id]
	if !ok {
		return fmt.Errorf("core: unknown experiment %q (have %v)", id, ExperimentIDs())
	}
	tables, err := r(NewEnv(nil, par))
	if err != nil {
		return fmt.Errorf("experiment %s: %w", id, err)
	}
	for _, t := range tables {
		t.Fprint(w)
	}
	return nil
}

// RunAll runs every experiment in order, sequentially.
func RunAll(w io.Writer, seed int64) error {
	return RunAllParallel(w, seed, 1)
}

// RunAllParallel runs every experiment with up to par concurrent jobs
// (par <= 1 is the plain sequential run). Tables are buffered per
// experiment and printed in experiment-id order, and per-job telemetry
// is merged in that same order, so stdout, the metrics dump, and the
// trace are byte-identical to the sequential run for any par. On error,
// every experiment before the first failing id is still printed (and its
// telemetry merged), matching what a sequential run would have emitted
// before stopping.
func RunAllParallel(w io.Writer, seed int64, par int) error {
	return RunAllParallelWithObserver(w, seed, par, nil)
}

// RunAllParallelWithObserver is RunAllParallel against an explicit
// observer (nil falls back to obs.Default()). The determinism tests use
// it to assert that stdout is byte-identical whether the observer traces
// or not — telemetry must never feed back into results.
func RunAllParallelWithObserver(w io.Writer, seed int64, par int, o *obs.Observer) error {
	ids := ExperimentIDs()
	reg := Registry(seed)
	root := &Env{obs: obs.Or(o), sched: newSched(par)}
	results := make([][]*Table, len(ids))
	err := root.ForEach(len(ids), func(i int, je *Env) error {
		tables, err := reg[ids[i]](je)
		if err != nil {
			return fmt.Errorf("experiment %s: %w", ids[i], err)
		}
		results[i] = tables
		return nil
	})
	for _, tables := range results {
		if tables == nil {
			break // first failing (or never-run) experiment
		}
		for _, t := range tables {
			t.Fprint(w)
		}
	}
	return err
}
