package core

import (
	"fmt"
	"io"
	"sort"
)

// Runner produces the table(s) of one experiment.
type Runner func() ([]*Table, error)

func one(f func() (*Table, error)) Runner {
	return func() ([]*Table, error) {
		t, err := f()
		if err != nil {
			return nil, err
		}
		return []*Table{t}, nil
	}
}

// Registry maps experiment ids (e1..e10) to runners, with all stochastic
// experiments tied to the given seed for reproducibility.
func Registry(seed int64) map[string]Runner {
	return map[string]Runner{
		"e1": func() ([]*Table, error) {
			a, err := E1DeviceComparison()
			if err != nil {
				return nil, err
			}
			b, err := E1BatteryLife()
			if err != nil {
				return nil, err
			}
			return []*Table{a, b}, nil
		},
		"e2": one(E2CostCrossover),
		"e3": func() ([]*Table, error) {
			a, err := E3WriteBuffering(seed)
			if err != nil {
				return nil, err
			}
			b, err := E3FlushPolicyAblation(seed)
			if err != nil {
				return nil, err
			}
			c, err := E3BlockSizeAblation(seed)
			if err != nil {
				return nil, err
			}
			return []*Table{a, b, c}, nil
		},
		"e4": one(E4ReadInPlace),
		"e5": one(E5XIP),
		"e6": func() ([]*Table, error) {
			a, err := E6WearLeveling(seed)
			if err != nil {
				return nil, err
			}
			b, err := E6Lifetime(seed)
			if err != nil {
				return nil, err
			}
			c, err := E6Static(seed)
			if err != nil {
				return nil, err
			}
			return []*Table{a, b, c}, nil
		},
		"e7": func() ([]*Table, error) {
			a, err := E7Banking(seed)
			if err != nil {
				return nil, err
			}
			b, err := E7Segregation(seed)
			if err != nil {
				return nil, err
			}
			return []*Table{a, b}, nil
		},
		"e8": one(func() (*Table, error) { return E8Sizing(seed) }),
		"e9": func() ([]*Table, error) {
			a, err := E9EndToEnd(seed)
			if err != nil {
				return nil, err
			}
			b, err := E9FlashParts(seed)
			if err != nil {
				return nil, err
			}
			return []*Table{a, b}, nil
		},
		"e10": func() ([]*Table, error) { return E10CrashAndBattery(seed) },
	}
}

// ExperimentIDs lists the registry keys in order.
func ExperimentIDs() []string {
	ids := make([]string, 0, 10)
	for id := range Registry(0) {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		if len(ids[i]) != len(ids[j]) {
			return len(ids[i]) < len(ids[j])
		}
		return ids[i] < ids[j]
	})
	return ids
}

// RunExperiment runs one experiment by id and prints its tables.
func RunExperiment(w io.Writer, id string, seed int64) error {
	r, ok := Registry(seed)[id]
	if !ok {
		return fmt.Errorf("core: unknown experiment %q (have %v)", id, ExperimentIDs())
	}
	tables, err := r()
	if err != nil {
		return fmt.Errorf("experiment %s: %w", id, err)
	}
	for _, t := range tables {
		t.Fprint(w)
	}
	return nil
}

// RunAll runs every experiment in order.
func RunAll(w io.Writer, seed int64) error {
	for _, id := range ExperimentIDs() {
		if err := RunExperiment(w, id, seed); err != nil {
			return err
		}
	}
	return nil
}
