package core

import (
	"bytes"
	"flag"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"ssmobile/internal/flash"
	"ssmobile/internal/obs"
	"ssmobile/internal/server"
	"ssmobile/internal/sim"
	"ssmobile/internal/workload"
)

var updateWearGoldens = flag.Bool("update-wear", false, "rewrite the health/heatmap golden files")

// Golden tests for the device-health surface: the /debug/health JSON
// document (served by the admin endpoint, reconstructed offline by
// `ssmtrace health -json`) and the `ssmtrace wear` heatmap are pinned
// byte-exactly per seed. Everything downstream of a metrics snapshot is
// a pure function, so any drift here is either a deliberate format
// change (regenerate with -update-wear) or a determinism regression.

// wearFixture runs a small aged-card workload under a private observer
// and returns the snapshot everything is rendered from.
func wearFixture(t *testing.T, seed int64) (obs.Snapshot, *server.Server, *obs.Observer) {
	t.Helper()
	priv := obs.New(1 << 12)
	sys, err := NewSolidState(SolidStateConfig{
		DRAMBytes:       8 << 20,
		FlashBytes:      8 << 20,
		BufferBytes:     1 << 20,
		RBoxBytes:       512 << 10,
		IdleCleanBlocks: 24,
		WriteBackDelay:  2 * sim.Second,
		Obs:             priv,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := ageDevice(sys, 6<<20); err != nil {
		t.Fatal(err)
	}
	srv, err := server.New(server.Backend{
		FS: sys.FS, Storage: sys.Storage, Engine: sys.Engine, Clock: sys.Clock(),
	}, server.Config{Obs: priv})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := server.RunWorkload(srv, workload.Config{
		Seed:          seed,
		Clients:       2,
		OpsPerClient:  150,
		Keys:          8,
		ObjectBytes:   32 << 10,
		MinWriteBytes: 4096,
		MaxWriteBytes: 4096,
		Mix:           workload.Mix{Read: 0.4, Write: 0.5, Delete: 0.05, Sync: 0.05},
		Popularity:    workload.Zipf,
		ZipfSkew:      1.2,
		Arrival:       workload.OpenLoop,
		RatePerClient: 10,
	}); err != nil {
		t.Fatal(err)
	}
	return priv.Registry.Snapshot(), srv, priv
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	golden := filepath.Join("testdata", name)
	if *updateWearGoldens {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden: %v (regenerate with go test -run TestWearSurfaceGolden -update-wear)", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("%s drifted:\ngot:\n%s\nwant:\n%s", golden, got, want)
	}
}

func TestWearSurfaceGolden(t *testing.T) {
	for _, seed := range []int64{1993, 1, 42} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			snap, srv, priv := wearFixture(t, seed)

			// The live endpoint's bytes, via the real admin handler: this
			// is exactly the document an operator curls.
			admin := server.NewAdmin(srv, priv)
			rec := httptest.NewRecorder()
			admin.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/debug/health", nil))
			if rec.Code != 200 {
				t.Fatalf("/debug/health: HTTP %d: %s", rec.Code, rec.Body.String())
			}
			checkGolden(t, fmt.Sprintf("health_seed%d.golden.json", seed), rec.Body.Bytes())

			// The offline reconstruction must agree with the endpoint —
			// the acceptance contract for `ssmtrace health`.
			rep, err := flash.HealthFromSnapshot(snap, "flash")
			if err != nil {
				t.Fatal(err)
			}
			endpointRep, err := flash.HealthFromSnapshot(priv.Registry.Snapshot(), "flash")
			if err != nil {
				t.Fatal(err)
			}
			if fmt.Sprintf("%+v", rep) != fmt.Sprintf("%+v", endpointRep) {
				t.Fatalf("offline report diverged from endpoint:\n%+v\n%+v", rep, endpointRep)
			}

			var heat bytes.Buffer
			if err := flash.RenderWearHeatmap(&heat, snap, "flash"); err != nil {
				t.Fatal(err)
			}
			checkGolden(t, fmt.Sprintf("wear_heatmap_seed%d.golden", seed), heat.Bytes())
		})
	}
}
