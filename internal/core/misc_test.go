package core

import (
	"bytes"
	"strings"
	"testing"

	"ssmobile/internal/dram"
	"ssmobile/internal/sim"
	"ssmobile/internal/vm"
)

func TestTableRendering(t *testing.T) {
	tab := &Table{
		ID:      "T",
		Title:   "test table",
		Headers: []string{"col-a", "b"},
	}
	tab.AddRow("x", 3.14159)
	tab.AddRow("longer-cell", 42)
	tab.Notes = append(tab.Notes, "a note")
	out := tab.String()
	for _, want := range []string{"== T: test table ==", "col-a", "3.14", "longer-cell", "42", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
	// Row cells align: the header underline matches the widest cell.
	if !strings.Contains(out, "-----------") {
		t.Error("separator not sized to widest cell")
	}
}

func TestFormatHelpers(t *testing.T) {
	cases := map[sim.Duration]string{
		500:                    "500ns",
		3 * sim.Microsecond:    "3.0us",
		2 * sim.Millisecond:    "2.00ms",
		1500 * sim.Millisecond: "1.50s",
	}
	for d, want := range cases {
		if got := fmtDur(d); got != want {
			t.Errorf("fmtDur(%d) = %q want %q", int64(d), got, want)
		}
	}
	if fmtBytes(512) != "512B" || fmtBytes(64<<10) != "64KB" || fmtBytes(4<<20) != "4MB" {
		t.Errorf("fmtBytes wrong: %s %s %s", fmtBytes(512), fmtBytes(64<<10), fmtBytes(4<<20))
	}
}

func TestInstallImageAndXIP(t *testing.T) {
	sys := newSolid(t)
	image := bytes.Repeat([]byte{0x5B}, 100*1024)
	if err := sys.InstallImage(0, image); err != nil {
		t.Fatal(err)
	}
	// Installing again over the same region must work (erase first).
	image2 := bytes.Repeat([]byte{0xA7}, 100*1024)
	if err := sys.InstallImage(0, image2); err != nil {
		t.Fatalf("reinstall: %v", err)
	}
	buf := make([]byte, 4)
	if _, err := sys.CodeCard.Read(0, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 0xA7 {
		t.Fatalf("reinstall content %x", buf[0])
	}
	// Unaligned offsets are rejected.
	if err := sys.InstallImage(100, image); err == nil {
		t.Fatal("unaligned install accepted")
	}
	// The installed image executes in place through the VM.
	s := sys.VM.NewSpace()
	if err := sys.VM.MapFlash(s, 1<<30, 0, 100*1024, vm.PermRead|vm.PermExec); err != nil {
		t.Fatal(err)
	}
	if err := sys.VM.Exec(s, 1<<30, 100*1024); err != nil {
		t.Fatal(err)
	}
	if sys.VM.Stats().FramesInUse != 0 {
		t.Fatal("XIP consumed frames")
	}
}

func TestRunAllAndRunExperimentPlumbing(t *testing.T) {
	// Run the two cheapest experiments through the public entry points.
	var out strings.Builder
	if err := RunExperiment(&out, "e2", 1); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "E2") {
		t.Fatal("E2 output missing")
	}
	if err := RunExperiment(&out, "nope", 1); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestBatteryMonitorPackAccessor(t *testing.T) {
	sys := newSolid(t)
	pack := dram.NewPack(10, 0.5)
	mon := AttachBattery(sys, pack)
	if mon.Pack() != pack {
		t.Fatal("Pack accessor wrong")
	}
	if flushed, _ := mon.EmergencyFlushed(); flushed {
		t.Fatal("flushed before any drain")
	}
}
