package core

import (
	"fmt"

	"ssmobile/internal/obs"
	"ssmobile/internal/sim"
	"ssmobile/internal/trace"
	"ssmobile/internal/wbuf"
)

// replayThroughBuffer drives one Baker trace through a write buffer and
// reports its final stats (after a terminal Sync, so unflushed residue is
// not silently counted as savings). The trace is read-only here, so one
// generated trace is safely shared across concurrent sweep points.
func replayThroughBuffer(o *obs.Observer, tr *trace.Trace, capacityBytes int64, delay sim.Duration, policy wbuf.EvictPolicy) (wbuf.Stats, error) {
	return replayThroughBufferBS(o, tr, capacityBytes, delay, policy, 4096)
}

// replayThroughBufferBS is replayThroughBuffer with an explicit buffering
// granularity, for the block-size ablation.
func replayThroughBufferBS(o *obs.Observer, tr *trace.Trace, capacityBytes int64, delay sim.Duration, policy wbuf.EvictPolicy, bs int64) (wbuf.Stats, error) {
	clock := sim.NewClock()
	b, err := wbuf.New(wbuf.Config{
		CapacityBytes:  capacityBytes,
		BlockBytes:     int(bs),
		WriteBackDelay: delay,
		Policy:         policy,
		Obs:            o,
	}, clock, wbuf.SinkFunc(func(wbuf.Key, []byte) error { return nil }))
	if err != nil {
		return wbuf.Stats{}, err
	}
	for _, op := range tr.Ops {
		clock.AdvanceTo(sim.Time(op.Time))
		if err := b.Tick(); err != nil {
			return wbuf.Stats{}, err
		}
		switch op.Kind {
		case trace.Write:
			off, remaining := op.Offset, op.Size
			for remaining > 0 {
				blk := off / bs
				n := int(bs - off%bs)
				if n > remaining {
					n = remaining
				}
				if err := b.Write(wbuf.Key{Object: uint64(op.File), Block: blk}, make([]byte, n)); err != nil {
					return wbuf.Stats{}, err
				}
				off += int64(n)
				remaining -= n
			}
		case trace.Delete:
			b.InvalidateObject(uint64(op.File))
		}
	}
	if err := b.Sync(); err != nil {
		return wbuf.Stats{}, err
	}
	return b.Stats(), nil
}

// E3BlockSizeAblation sweeps the buffering granularity at a fixed 1MB
// buffer: the copy-on-write/buffering unit the storage manager uses.
// Small blocks track dirty data precisely but cost more bookkeeping;
// large blocks waste buffer space on clean bytes dragged along with
// dirty ones.
func E3BlockSizeAblation(env *Env, seed int64) (*Table, error) {
	tr, err := trace.GenerateBaker(trace.DefaultBaker(time2Hours, seed))
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "E3c",
		Title:   "buffer granularity ablation (1MB buffer, 30s write-back)",
		Headers: []string{"block size", "reduction", "flushed MB", "evictions"},
	}
	sizes := []int64{512, 1024, 4096, 16384}
	stats := make([]wbuf.Stats, len(sizes))
	err = env.ForEach(len(sizes), func(i int, je *Env) error {
		st, err := replayThroughBufferBS(je.Obs(), tr, 1<<20, 30*sim.Second, wbuf.EvictLRW, sizes[i])
		stats[i] = st
		return err
	})
	if err != nil {
		return nil, err
	}
	for i, bs := range sizes {
		st := stats[i]
		t.AddRow(fmtBytes(bs),
			fmt.Sprintf("%.1f%%", st.Reduction()*100),
			fmt.Sprintf("%.1f", float64(st.FlushedBytes)/(1<<20)),
			fmt.Sprint(st.Evictions))
	}
	t.Notes = append(t.Notes,
		"the trace writes whole small files, so granularity mostly moves eviction churn, not absorption")
	return t, nil
}

// E3WriteBuffering regenerates the paper's quantitative anchor: "as
// little as one megabyte of battery-backed RAM can reduce write traffic
// by 40 to 50%" (Baker et al.). It sweeps the buffer size over a
// Sprite-like synthetic trace with the classic 30-second write-back
// delay.
func E3WriteBuffering(env *Env, seed int64) (*Table, error) {
	tr, err := trace.GenerateBaker(trace.DefaultBaker(2*sim.Hour, seed))
	if err != nil {
		return nil, err
	}
	ts := tr.Stats()
	t := &Table{
		ID:    "E3",
		Title: "write-traffic reduction vs battery-backed write buffer size (30s write-back)",
		Headers: []string{"buffer", "reduction", "overwrite-absorbed", "delete-absorbed",
			"flushed MB", "evictions"},
	}
	sizes := []float64{0, 0.25, 0.5, 1, 2, 4, 8}
	stats := make([]wbuf.Stats, len(sizes))
	err = env.ForEach(len(sizes), func(i int, je *Env) error {
		st, err := replayThroughBuffer(je.Obs(), tr, int64(sizes[i]*float64(1<<20)), 30*sim.Second, wbuf.EvictLRW)
		stats[i] = st
		return err
	})
	if err != nil {
		return nil, err
	}
	for i, mb := range sizes {
		st := stats[i]
		t.AddRow(
			fmt.Sprintf("%.2gMB", mb),
			fmt.Sprintf("%.1f%%", st.Reduction()*100),
			fmt.Sprintf("%.1f%%", float64(st.OverwriteAbsorbedBytes)/float64(st.HostBytes)*100),
			fmt.Sprintf("%.1f%%", float64(st.DeleteAbsorbedBytes)/float64(st.HostBytes)*100),
			fmt.Sprintf("%.1f", float64(st.FlushedBytes)/(1<<20)),
			fmt.Sprint(st.Evictions),
		)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("workload: %d ops, %.0fMB written, %d files over %v (Sprite-calibrated synthetic)",
			ts.Ops, float64(ts.BytesWritten)/(1<<20), ts.UniqueFiles, ts.Duration),
		"paper claim: ~1MB of NVRAM cuts write traffic 40-50%")
	return t, nil
}

// E3FlushPolicyAblation compares eviction policies and write-back delays
// at the 1MB point — the design-choice ablation for the write buffer.
func E3FlushPolicyAblation(env *Env, seed int64) (*Table, error) {
	tr, err := trace.GenerateBaker(trace.DefaultBaker(time2Hours, seed))
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "E3b",
		Title:   "write-buffer policy ablation at 1MB",
		Headers: []string{"eviction", "write-back delay", "reduction"},
	}
	type point struct {
		pol   wbuf.EvictPolicy
		delay sim.Duration
	}
	var points []point
	for _, pol := range []wbuf.EvictPolicy{wbuf.EvictLRW, wbuf.EvictFIFO} {
		for _, delay := range []sim.Duration{5 * sim.Second, 30 * sim.Second, 2 * sim.Minute, 0} {
			points = append(points, point{pol, delay})
		}
	}
	stats := make([]wbuf.Stats, len(points))
	err = env.ForEach(len(points), func(i int, je *Env) error {
		st, err := replayThroughBuffer(je.Obs(), tr, 1<<20, points[i].delay, points[i].pol)
		stats[i] = st
		return err
	})
	if err != nil {
		return nil, err
	}
	for i, p := range points {
		delayStr := p.delay.String()
		if p.delay == 0 {
			delayStr = "none (evict-only)"
		}
		t.AddRow(p.pol.String(), delayStr, fmt.Sprintf("%.1f%%", stats[i].Reduction()*100))
	}
	t.Notes = append(t.Notes, "longer write-back delays absorb more but risk more loss on power failure (see E10)")
	return t, nil
}

const time2Hours = 2 * sim.Hour
