package core

import (
	"bytes"
	"fmt"
	"testing"
	"testing/quick"

	"ssmobile/internal/fs"
)

// The whole-system recovery property: with the write-back daemon disabled
// (so flash changes only on explicit Sync), the system must behave as a
// two-level model —
//
//   - live state: what reads see normally, and what survives an OS crash
//     (battery-backed DRAM keeps everything, the recovery box restores
//     the namespace);
//   - synced state: a snapshot taken at each Sync, which is exactly what
//     survives a power failure followed by a full device-scan remount.
//
// Any divergence (stale data resurrected, synced data lost, namespace
// drift) fails the property.
func TestSystemCrashRecoveryProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	type op struct {
		Action  uint8 // 0-2 write, 3 delete, 4 sync, 5 os-crash, 6 power-fail
		FileIdx uint8
		Val     byte
		SizeKB  uint8
	}
	files := []string{"a", "b", "c", "d"}

	f := func(ops []op) bool {
		sys, err := NewSolidState(SolidStateConfig{
			DRAMBytes:   16 << 20,
			FlashBytes:  32 << 20,
			BufferBytes: 8 << 20, // ample: no evictions
			RBoxBytes:   1 << 20,
			// WriteBackDelay left at default but Tick is never called, so
			// age-based migration never runs: flash changes only on Sync.
		})
		if err != nil {
			t.Log(err)
			return false
		}
		live := map[string][]byte{}
		synced := map[string][]byte{}

		for i, o := range ops {
			sys.Clock().Advance(1 << 20) // ~1ms per op
			name := files[int(o.FileIdx)%len(files)]
			switch o.Action % 7 {
			case 0, 1, 2: // write (create if needed)
				size := (int(o.SizeKB)%16 + 1) * 512
				data := bytes.Repeat([]byte{o.Val}, size)
				if !sys.FS.Exists("/" + name) {
					if err := sys.Create(name); err != nil {
						t.Logf("op %d create: %v", i, err)
						return false
					}
				}
				if _, err := sys.WriteAt(name, 0, data); err != nil {
					t.Logf("op %d write: %v", i, err)
					return false
				}
				// Model: replace the prefix, like WriteAt at offset 0.
				cur := live[name]
				if len(cur) < size {
					grown := make([]byte, size)
					copy(grown, cur)
					cur = grown
				} else {
					cur = append([]byte(nil), cur...)
				}
				copy(cur, data)
				live[name] = cur
			case 3: // delete
				if sys.FS.Exists("/" + name) {
					if err := sys.Remove(name); err != nil {
						t.Logf("op %d remove: %v", i, err)
						return false
					}
					delete(live, name)
				}
			case 4: // sync: snapshot the model
				if err := sys.Sync(); err != nil {
					t.Logf("op %d sync: %v", i, err)
					return false
				}
				synced = map[string][]byte{}
				for k, v := range live {
					synced[k] = append([]byte(nil), v...)
				}
			case 5: // OS crash: everything survives
				recovered, err := fs.RecoverAfterCrash(fs.Config{
					RBoxBase: 0, RBoxBytes: 1 << 20,
				}, sys.Clock(), sys.Storage, sys.DRAM)
				if err != nil {
					t.Logf("op %d crash recovery: %v", i, err)
					return false
				}
				sys.FS = recovered
			case 6: // power failure: revert to synced state
				sys.DRAM.PowerFail()
				remounted, err := sys.RemountAfterPowerFailure()
				if err != nil {
					t.Logf("op %d remount: %v", i, err)
					return false
				}
				sys = remounted
				live = map[string][]byte{}
				for k, v := range synced {
					live[k] = append([]byte(nil), v...)
				}
			}
		}

		// Final check: the system matches the live model exactly.
		for _, name := range files {
			want, exists := live[name]
			if sys.FS.Exists("/"+name) != exists {
				t.Logf("existence of %s: fs=%v model=%v", name, !exists, exists)
				return false
			}
			if !exists {
				continue
			}
			got, err := sys.FS.ReadFile("/" + name)
			if err != nil {
				t.Logf("read %s: %v", name, err)
				return false
			}
			if !bytes.Equal(got, want) {
				t.Logf("%s: got %d bytes want %d (first diff at %s)",
					name, len(got), len(want), firstDiff(got, want))
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func firstDiff(a, b []byte) string {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return fmt.Sprint(i)
		}
	}
	return "length"
}
