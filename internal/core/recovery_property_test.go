package core

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"ssmobile/internal/flash"
	"ssmobile/internal/fs"
)

// The whole-system recovery property: with the write-back daemon disabled
// (so flash changes only on explicit Sync), the system must behave as a
// two-level model —
//
//   - live state: what reads see normally, and what survives an OS crash
//     (battery-backed DRAM keeps everything, the recovery box restores
//     the namespace);
//   - synced state: a snapshot taken at each Sync, which is exactly what
//     survives a power failure followed by a full device-scan remount.
//
// Any divergence (stale data resurrected, synced data lost, namespace
// drift) fails the property.
func TestSystemCrashRecoveryProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	type op struct {
		Action  uint8 // 0-2 write, 3 delete, 4 sync, 5 os-crash, 6 power-fail
		FileIdx uint8
		Val     byte
		SizeKB  uint8
	}
	files := []string{"a", "b", "c", "d"}

	f := func(ops []op) bool {
		sys, err := NewSolidState(SolidStateConfig{
			DRAMBytes:   16 << 20,
			FlashBytes:  32 << 20,
			BufferBytes: 8 << 20, // ample: no evictions
			RBoxBytes:   1 << 20,
			// WriteBackDelay left at default but Tick is never called, so
			// age-based migration never runs: flash changes only on Sync.
		})
		if err != nil {
			t.Log(err)
			return false
		}
		live := map[string][]byte{}
		synced := map[string][]byte{}

		for i, o := range ops {
			sys.Clock().Advance(1 << 20) // ~1ms per op
			name := files[int(o.FileIdx)%len(files)]
			switch o.Action % 7 {
			case 0, 1, 2: // write (create if needed)
				size := (int(o.SizeKB)%16 + 1) * 512
				data := bytes.Repeat([]byte{o.Val}, size)
				if !sys.FS.Exists("/" + name) {
					if err := sys.Create(name); err != nil {
						t.Logf("op %d create: %v", i, err)
						return false
					}
				}
				if _, err := sys.WriteAt(name, 0, data); err != nil {
					t.Logf("op %d write: %v", i, err)
					return false
				}
				// Model: replace the prefix, like WriteAt at offset 0.
				cur := live[name]
				if len(cur) < size {
					grown := make([]byte, size)
					copy(grown, cur)
					cur = grown
				} else {
					cur = append([]byte(nil), cur...)
				}
				copy(cur, data)
				live[name] = cur
			case 3: // delete
				if sys.FS.Exists("/" + name) {
					if err := sys.Remove(name); err != nil {
						t.Logf("op %d remove: %v", i, err)
						return false
					}
					delete(live, name)
				}
			case 4: // sync: snapshot the model
				if err := sys.Sync(); err != nil {
					t.Logf("op %d sync: %v", i, err)
					return false
				}
				synced = map[string][]byte{}
				for k, v := range live {
					synced[k] = append([]byte(nil), v...)
				}
			case 5: // OS crash: everything survives
				recovered, err := fs.RecoverAfterCrash(fs.Config{
					RBoxBase: 0, RBoxBytes: 1 << 20,
				}, sys.Clock(), sys.Storage, sys.DRAM)
				if err != nil {
					t.Logf("op %d crash recovery: %v", i, err)
					return false
				}
				sys.FS = recovered
			case 6: // power failure: revert to synced state
				sys.DRAM.PowerFail()
				remounted, err := sys.RemountAfterPowerFailure()
				if err != nil {
					t.Logf("op %d remount: %v", i, err)
					return false
				}
				sys = remounted
				live = map[string][]byte{}
				for k, v := range synced {
					live[k] = append([]byte(nil), v...)
				}
			}
		}

		// Final check: the system matches the live model exactly.
		for _, name := range files {
			want, exists := live[name]
			if sys.FS.Exists("/"+name) != exists {
				t.Logf("existence of %s: fs=%v model=%v", name, !exists, exists)
				return false
			}
			if !exists {
				continue
			}
			got, err := sys.FS.ReadFile("/" + name)
			if err != nil {
				t.Logf("read %s: %v", name, err)
				return false
			}
			if !bytes.Equal(got, want) {
				t.Logf("%s: got %d bytes want %d (first diff at %s)",
					name, len(got), len(want), firstDiff(got, want))
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestPowerCutCrashPointProperty extends the quiescent property above to
// mid-operation power cuts: a fixed mixed workload (writes, overwrites,
// deletes, truncations, syncs) is replayed once per destructive flash
// operation with the fault injector cutting power at that operation —
// torn pages, half-written out-of-band records, interrupted erases — and
// the system is remounted by full device scan. Every file must then read
// back either its last-synced version or a prefix-consistent image of
// the version that was being flushed; synced files must not vanish.
func TestPowerCutCrashPointProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	const (
		wr = iota
		tr
		de
		sy
	)
	type step struct {
		act   int
		fileI int
		size  int
		val   byte
	}
	files := []string{"a", "b", "c", "d"}
	// Single-block files (<= 4KB) keep flush atomicity per file: a cut
	// mid-sync leaves each file wholly old or wholly new, never mixed.
	steps := []step{
		{wr, 0, 1200, 0x11}, {wr, 1, 4096, 0x22}, {wr, 2, 600, 0x33}, {act: sy},
		{wr, 0, 300, 0x44}, {tr, 1, 1000, 0}, {wr, 3, 2048, 0x55}, {act: sy},
		{de, 2, 0, 0}, {wr, 2, 900, 0x66}, {wr, 1, 3000, 0x77}, {act: sy},
		{wr, 0, 4096, 0x88}, {de, 3, 0, 0}, {tr, 0, 2000, 0}, {act: sy},
		{wr, 3, 1111, 0x99}, {wr, 2, 2222, 0xAA}, {act: sy},
	}

	newSys := func(inj flash.Injector) *SolidStateSystem {
		sys, err := NewSolidState(SolidStateConfig{
			DRAMBytes:   8 << 20,
			FlashBytes:  8 << 20,
			BufferBytes: 2 << 20, // ample: no evictions, flash moves only on Sync
			RBoxBytes:   1 << 20,
		})
		if err != nil {
			t.Fatal(err)
		}
		if inj != nil {
			sys.Flash.SetInjector(inj)
		}
		return sys
	}

	// replay drives the workload, maintaining the live and synced models;
	// it stops at the power cut (if the injector fires) and reports it.
	// history accumulates every version each file ever had synced: a cut
	// mid-sync can pair a fresh metadata checkpoint with an older data
	// block (the checkpoint object flushes first), so recovered content
	// may be any durable generation, not only the latest.
	// dropped marks files deleted since their last completed sync: the
	// delete breaks the durable chain (a recreate gets a fresh object
	// whose data is not yet flushed), so such files may read as holes.
	replay := func(sys *SolidStateSystem) (live, synced map[string][]byte, history map[string][][]byte, dropped map[string]bool, cut bool, err error) {
		live = map[string][]byte{}
		synced = map[string][]byte{}
		history = map[string][][]byte{}
		dropped = map[string]bool{}
		for i, s := range steps {
			sys.Clock().Advance(1 << 20)
			name := files[s.fileI]
			var stepErr error
			switch s.act {
			case wr:
				data := bytes.Repeat([]byte{s.val}, s.size)
				if !sys.FS.Exists("/" + name) {
					if stepErr = sys.Create(name); stepErr != nil {
						break
					}
				}
				if _, stepErr = sys.WriteAt(name, 0, data); stepErr == nil {
					cur := live[name]
					if len(cur) < s.size {
						grown := make([]byte, s.size)
						copy(grown, cur)
						cur = grown
					} else {
						cur = append([]byte(nil), cur...)
					}
					copy(cur, data)
					live[name] = cur
				}
			case tr:
				if stepErr = sys.FS.Truncate("/"+name, int64(s.size)); stepErr == nil {
					if cur, ok := live[name]; ok && s.size < len(cur) {
						live[name] = append([]byte(nil), cur[:s.size]...)
					}
				}
			case de:
				if sys.FS.Exists("/" + name) {
					if stepErr = sys.Remove(name); stepErr == nil {
						delete(live, name)
						dropped[name] = true
					}
				}
			case sy:
				if stepErr = sys.Sync(); stepErr == nil {
					synced = map[string][]byte{}
					for k, v := range live {
						cp := append([]byte(nil), v...)
						synced[k] = cp
						history[k] = append(history[k], cp)
					}
					dropped = map[string]bool{}
				}
			}
			if stepErr != nil {
				if errors.Is(stepErr, flash.ErrPowerCut) {
					return live, synced, history, dropped, true, nil
				}
				return nil, nil, nil, nil, false, fmt.Errorf("step %d: %w", i, stepErr)
			}
		}
		return live, synced, history, dropped, sys.Flash.Lost(), nil
	}

	// Reference run: count the workload's destructive flash ops.
	ref := newSys(nil)
	if _, _, _, _, _, err := replay(ref); err != nil {
		t.Fatalf("reference run: %v", err)
	}
	total := ref.Flash.DestructiveOps()
	if total < 20 {
		t.Fatalf("workload too small: %d destructive ops", total)
	}

	// prefixOK: got agrees with want on their overlap and any excess is
	// zero padding — the inode size (from the metadata checkpoint) and the
	// block image (from the data flush) may straddle the cut.
	prefixOK := func(got, want []byte) bool {
		n := len(got)
		if len(want) < n {
			n = len(want)
		}
		if !bytes.Equal(got[:n], want[:n]) {
			return false
		}
		for _, b := range got[n:] {
			if b != 0 {
				return false
			}
		}
		return true
	}

	for idx := int64(0); idx < total; idx++ {
		for _, fate := range []flash.Outcome{flash.CutBefore, flash.CutDuring, flash.CutAfter} {
			sys := newSys(&flash.CutAt{Index: idx, Fate: fate})
			live, synced, history, dropped, cut, err := replay(sys)
			if err != nil {
				t.Fatalf("op %d fate %d: %v", idx, fate, err)
			}
			if !cut {
				continue
			}
			sys.DRAM.PowerFail()
			rec, err := sys.RemountAfterPowerFailure()
			if err != nil {
				t.Fatalf("op %d fate %d: remount: %v", idx, fate, err)
			}
			for _, name := range files {
				liveV, inLive := live[name]
				syncedV, inSynced := synced[name]
				if !rec.FS.Exists("/" + name) {
					// Absence is a violation only for a file both synced and
					// never deleted since: its checkpoint entry and data were
					// durable before the cut.
					if inLive && inSynced && !dropped[name] {
						t.Errorf("op %d fate %d: synced file %s vanished", idx, fate, name)
					}
					continue
				}
				if !inLive && !inSynced {
					// A deleted file may resurrect (its delete was not yet
					// checkpointed); its content predates our models.
					continue
				}
				got, err := rec.FS.ReadFile("/" + name)
				if err != nil {
					t.Errorf("op %d fate %d: read %s: %v", idx, fate, name, err)
					continue
				}
				ok := (inSynced && prefixOK(got, syncedV)) || (inLive && prefixOK(got, liveV))
				for _, old := range history[name] {
					// An older durable generation may pair with a newer
					// checkpoint's inode size (truncations are metadata-only
					// until the next data flush).
					ok = ok || prefixOK(got, old)
				}
				if !ok && (!inSynced || dropped[name]) {
					// Created — or deleted and recreated — after the last
					// completed sync: the inode may have reached the mid-cut
					// checkpoint while its (fresh) object's data block never
					// flushed, so the file legitimately reads as a hole.
					ok = prefixOK(got, nil)
				}
				if !ok {
					t.Errorf("op %d fate %d: %s recovered %d bytes matching no durable or in-flight version (synced %d B, live %d B)",
						idx, fate, name, len(got), len(syncedV), len(liveV))
				}
			}
		}
	}
}

func firstDiff(a, b []byte) string {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return fmt.Sprint(i)
		}
	}
	return "length"
}
