package core

import (
	"bytes"
	"testing"

	"ssmobile/internal/device"
	"ssmobile/internal/ftl"
	"ssmobile/internal/sim"
	"ssmobile/internal/trace"
)

func testSolidConfig() SolidStateConfig {
	params := device.IntelFlash
	params.EraseLatencyNs = 2e6 // keep long tests fast
	return SolidStateConfig{
		DRAMBytes:   8 << 20,
		FlashBytes:  32 << 20,
		BufferBytes: 2 << 20,
		RBoxBytes:   1 << 20,
		FlashParams: &params,
	}
}

func testDiskConfig() DiskConfig {
	return DiskConfig{
		DRAMBytes:  8 << 20,
		DiskBytes:  32 << 20,
		CacheBytes: 2 << 20,
	}
}

func newSolid(t testing.TB) *SolidStateSystem {
	t.Helper()
	s, err := NewSolidState(testSolidConfig())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func newDiskSys(t testing.TB) *DiskSystem {
	t.Helper()
	d, err := NewDisk(testDiskConfig())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestSolidStateDefaults(t *testing.T) {
	s := newSolid(t)
	if s.FTL.Config().Policy != ftl.PolicyCostBenefit || !s.FTL.Config().HotCold {
		t.Fatal("defaults should enable cost-benefit + hot/cold")
	}
	if s.Flash.Banks() != 4 {
		t.Fatalf("banks %d", s.Flash.Banks())
	}
}

func TestBothSystemsBasicOps(t *testing.T) {
	for _, sys := range []System{newSolid(t), newDiskSys(t)} {
		t.Run(sys.Name(), func(t *testing.T) {
			if err := sys.Create("hello"); err != nil {
				t.Fatal(err)
			}
			data := bytes.Repeat([]byte{0x42}, 10000)
			if n, err := sys.WriteAt("hello", 0, data); err != nil || n != len(data) {
				t.Fatalf("write %d %v", n, err)
			}
			got := make([]byte, len(data))
			if n, err := sys.ReadAt("hello", 0, got); err != nil || n != len(data) {
				t.Fatalf("read %d %v", n, err)
			}
			if !bytes.Equal(got, data) {
				t.Fatal("round trip mismatch")
			}
			if err := sys.Sync(); err != nil {
				t.Fatal(err)
			}
			if err := sys.Remove("hello"); err != nil {
				t.Fatal(err)
			}
			if sys.Meter().Total() <= 0 {
				t.Fatal("no energy accounted")
			}
		})
	}
}

func TestReplayBakerTraceOnBothSystems(t *testing.T) {
	tr, err := trace.GenerateBaker(trace.DefaultBaker(3*sim.Minute, 21))
	if err != nil {
		t.Fatal(err)
	}
	for _, sys := range []System{newSolid(t), newDiskSys(t)} {
		t.Run(sys.Name(), func(t *testing.T) {
			st, err := Replay(sys, tr)
			if err != nil {
				t.Fatal(err)
			}
			if st.Ops != len(tr.Ops) {
				t.Fatalf("replayed %d of %d ops", st.Ops, len(tr.Ops))
			}
			if st.ReadLatency.Count() == 0 || st.WriteLatency.Count() == 0 {
				t.Fatal("no latencies recorded")
			}
			if err := sys.Sync(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestSolidStateBeatsDiskOnColdReads(t *testing.T) {
	// The paper's central performance claim: uniform memory-speed reads.
	// Write a set of files, sync, then read them all cold: the disk pays
	// seeks, the solid-state system reads flash in place.
	coldReadTime := func(sys System) sim.Duration {
		data := bytes.Repeat([]byte{7}, 32*1024)
		for i := 0; i < 20; i++ {
			name := fileName(trace.FileID(i))
			if err := sys.Create(name); err != nil {
				t.Fatal(err)
			}
			if _, err := sys.WriteAt(name, 0, data); err != nil {
				t.Fatal(err)
			}
		}
		if err := sys.Sync(); err != nil {
			t.Fatal(err)
		}
		// Make the cache cold on the disk system by pushing unrelated
		// data through it.
		filler := bytes.Repeat([]byte{9}, 32*1024)
		for i := 100; i < 200; i++ {
			name := fileName(trace.FileID(i))
			if err := sys.Create(name); err != nil {
				t.Fatal(err)
			}
			if _, err := sys.WriteAt(name, 0, filler); err != nil {
				t.Fatal(err)
			}
		}
		if err := sys.Sync(); err != nil {
			t.Fatal(err)
		}
		start := sys.Clock().Now()
		buf := make([]byte, 32*1024)
		for i := 0; i < 20; i++ {
			if _, err := sys.ReadAt(fileName(trace.FileID(i)), 0, buf); err != nil {
				t.Fatal(err)
			}
		}
		return sys.Clock().Now().Sub(start)
	}
	solid := coldReadTime(newSolid(t))
	diskT := coldReadTime(newDiskSys(t))
	if solid >= diskT {
		t.Errorf("solid-state cold reads %v not faster than disk %v", solid, diskT)
	}
}

func TestRemountAfterPowerFailure(t *testing.T) {
	sys := newSolid(t)
	// Durable state: synced files plus the metadata checkpoint.
	data := bytes.Repeat([]byte{0x3C}, 20000)
	for i := 0; i < 8; i++ {
		name := fileName(trace.FileID(i))
		if err := sys.Create(name); err != nil {
			t.Fatal(err)
		}
		if _, err := sys.WriteAt(name, 0, data); err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.Sync(); err != nil {
		t.Fatal(err)
	}
	// Unsynced state: written after the checkpoint, only in DRAM.
	if err := sys.Create("fresh"); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.WriteAt("fresh", 0, data); err != nil {
		t.Fatal(err)
	}

	if _, err := sys.RemountAfterPowerFailure(); err == nil {
		t.Fatal("remount accepted without a power failure")
	}
	sys.DRAM.PowerFail()
	recovered, err := sys.RemountAfterPowerFailure()
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, len(data))
	for i := 0; i < 8; i++ {
		n, err := recovered.ReadAt(fileName(trace.FileID(i)), 0, buf)
		if err != nil || n != len(data) {
			t.Fatalf("file %d after remount: n=%d err=%v", i, n, err)
		}
		if !bytes.Equal(buf, data) {
			t.Fatalf("file %d corrupted across remount", i)
		}
	}
	if recovered.FS.Exists("/fresh") {
		t.Fatal("unsynced file survived the power failure")
	}
	// The recovered system is fully operational end to end.
	if err := recovered.Create("post"); err != nil {
		t.Fatal(err)
	}
	if _, err := recovered.WriteAt("post", 0, data); err != nil {
		t.Fatal(err)
	}
	if err := recovered.Sync(); err != nil {
		t.Fatal(err)
	}
}

func TestValidationErrors(t *testing.T) {
	if _, err := NewSolidState(SolidStateConfig{DRAMBytes: 1 << 20, FlashBytes: 1024}); err == nil {
		t.Error("tiny flash accepted")
	}
	cfg := testSolidConfig()
	cfg.RBoxBytes = 8 << 20 // rbox + buffer exceed DRAM
	if _, err := NewSolidState(cfg); err == nil {
		t.Error("oversized rbox accepted")
	}
}
