package core

import (
	"fmt"
	"strings"
	"testing"

	"ssmobile/internal/obs"
)

// The engine's central promise: running the full experiment suite with a
// worker pool produces output byte-identical to the sequential run, for
// any seed. Tables are printed in registry order regardless of which job
// finished first, and every simulation runs under its own clock, RNG and
// observer — so the scheduler's interleaving can never leak into the
// results.
func TestRunAllParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full experiment suite twice per seed")
	}
	for _, seed := range []int64{1993, 1, 42} {
		seed := seed
		t.Run(fmt.Sprintf("seed_%d", seed), func(t *testing.T) {
			t.Parallel()
			var serial, parallel strings.Builder
			if err := RunAllParallel(&serial, seed, 1); err != nil {
				t.Fatalf("serial run: %v", err)
			}
			if err := RunAllParallel(&parallel, seed, 8); err != nil {
				t.Fatalf("parallel run: %v", err)
			}
			if serial.String() != parallel.String() {
				t.Errorf("parallel output diverges from serial for seed %d:\n%s",
					seed, firstDiffLine(serial.String(), parallel.String()))
			}
		})
	}
}

// The observability twin of the promise above: telemetry must never feed
// back into results. The whole suite is run once against an observer with
// a live tracer (every span recorded, request contexts active in the
// serving experiments) and once against no observer at all; stdout must
// be byte-identical. Spans never advance the simulated clock — recording
// happens at operation boundaries the clock already passed — so this is
// the test that catches any future probe that forgets the rule.
func TestRunAllTracedMatchesUntraced(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full experiment suite twice")
	}
	const seed = 1993
	var traced, untraced strings.Builder
	o := obs.New(1 << 16)
	if err := RunAllParallelWithObserver(&traced, seed, 1, o); err != nil {
		t.Fatalf("traced run: %v", err)
	}
	if o.Tracer.Total() == 0 {
		t.Fatal("traced run recorded no spans — the observer was not wired through")
	}
	if err := RunAllParallelWithObserver(&untraced, seed, 1, nil); err != nil {
		t.Fatalf("untraced run: %v", err)
	}
	if traced.String() != untraced.String() {
		t.Errorf("tracing changed experiment output:\n%s",
			firstDiffLine(untraced.String(), traced.String()))
	}
}

// firstDiffLine renders the first line where two outputs disagree, so a
// determinism failure is debuggable from the log.
func firstDiffLine(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	n := len(al)
	if len(bl) < n {
		n = len(bl)
	}
	for i := 0; i < n; i++ {
		if al[i] != bl[i] {
			return fmt.Sprintf("line %d:\n  serial:   %s\n  parallel: %s", i+1, al[i], bl[i])
		}
	}
	return fmt.Sprintf("outputs agree on common prefix; lengths differ: %d vs %d bytes",
		len(a), len(b))
}
