package core

import (
	"fmt"
	"strings"
	"testing"
)

// The engine's central promise: running the full experiment suite with a
// worker pool produces output byte-identical to the sequential run, for
// any seed. Tables are printed in registry order regardless of which job
// finished first, and every simulation runs under its own clock, RNG and
// observer — so the scheduler's interleaving can never leak into the
// results.
func TestRunAllParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full experiment suite twice per seed")
	}
	for _, seed := range []int64{1993, 1, 42} {
		seed := seed
		t.Run(fmt.Sprintf("seed_%d", seed), func(t *testing.T) {
			t.Parallel()
			var serial, parallel strings.Builder
			if err := RunAllParallel(&serial, seed, 1); err != nil {
				t.Fatalf("serial run: %v", err)
			}
			if err := RunAllParallel(&parallel, seed, 8); err != nil {
				t.Fatalf("parallel run: %v", err)
			}
			if serial.String() != parallel.String() {
				t.Errorf("parallel output diverges from serial for seed %d:\n%s",
					seed, firstDiffLine(serial.String(), parallel.String()))
			}
		})
	}
}

// firstDiffLine renders the first line where two outputs disagree, so a
// determinism failure is debuggable from the log.
func firstDiffLine(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	n := len(al)
	if len(bl) < n {
		n = len(bl)
	}
	for i := 0; i < n; i++ {
		if al[i] != bl[i] {
			return fmt.Sprintf("line %d:\n  serial:   %s\n  parallel: %s", i+1, al[i], bl[i])
		}
	}
	return fmt.Sprintf("outputs agree on common prefix; lengths differ: %d vs %d bytes",
		len(a), len(b))
}
