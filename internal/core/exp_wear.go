package core

import (
	"fmt"

	"ssmobile/internal/flash"
	"ssmobile/internal/obs"
	"ssmobile/internal/server"
	"ssmobile/internal/sim"
	"ssmobile/internal/workload"
)

// E13WearAging ages one flash card through years of simulated use — bursts
// of mixed object traffic separated by quarter-long idle stretches — and
// tracks the two quantities the paper's endurance argument turns on as
// they evolve: write amplification, decomposed by wear-attribution cause
// (host writes, group-commit flushes, cleaner migration, idle cleaning,
// recovery, metadata), and the wear spread across blocks. Each epoch also
// snapshots the device-health report (flash.HealthFromSnapshot — the same
// pure function behind /debug/health and `ssmtrace health`), so the table
// doubles as a longitudinal SMART log: life consumed, and the lifetime
// left at the trailing-window burn rate.
//
// The run hard-errors unless the per-cause flash accounting is exact:
// bytes programmed summed over every cause must equal the device's total
// bytes programmed (and likewise for erases) after every epoch. The
// attribution is charged at the same completion sites as the totals, so
// any divergence is a bookkeeping bug, not noise.
//
// The cell runs against its own private observer (E12b's idiom): cause
// scopes need a live observer, and isolating the cell keeps the table
// byte-identical whether or not the caller enabled tracing.
func E13WearAging(env *Env, seed int64) (*Table, error) {
	const (
		epochs  = 8
		quarter = 91 * 24 * sim.Hour // idle gap between traffic bursts
		w       = 0.6                // write share of the mix
	)

	t := &Table{
		ID: "E13",
		Title: "wear & write-amp attribution over a device lifetime: cause-decomposed " +
			"amplification and wear spread as the card ages",
		Headers: []string{"epoch", "elapsed", "host MB", "WA", "host", "flush", "clean",
			"idle", "recov", "meta", "max", "spread", "used%", "life left"},
	}

	rows := make([][]string, epochs)
	err := env.ForEach(1, func(_ int, je *Env) error {
		priv := obs.New(1 << 12)
		sys, err := NewSolidState(SolidStateConfig{
			DRAMBytes:       8 << 20,
			FlashBytes:      8 << 20,
			BufferBytes:     1 << 20,
			RBoxBytes:       512 << 10,
			IdleCleanBlocks: 24,
			WriteBackDelay:  2 * sim.Second,
			Obs:             priv,
		})
		if err != nil {
			return err
		}
		// Start at the free-block margin, as E12b does: a card with months
		// of history, where every epoch's traffic must clean to make room.
		if err := ageDevice(sys, 7<<20); err != nil {
			return err
		}
		srv, err := server.New(server.Backend{
			FS: sys.FS, Storage: sys.Storage, Engine: sys.Engine, Clock: sys.Clock(),
		}, server.Config{Obs: priv})
		if err != nil {
			return err
		}
		dev := sys.Flash
		for ep := 0; ep < epochs; ep++ {
			if _, err := server.RunWorkload(srv, workload.Config{
				Seed:          seed + int64(ep),
				Clients:       4,
				OpsPerClient:  400,
				Keys:          40,
				ObjectBytes:   64 << 10,
				MinWriteBytes: 4096,
				MaxWriteBytes: 4096,
				Mix: workload.Mix{
					Read:     1 - w,
					Write:    w * 0.90,
					Truncate: w * 0.02,
					Delete:   w * 0.03,
					Sync:     w * 0.05,
				},
				Popularity:    workload.Zipf,
				ZipfSkew:      1.2,
				Arrival:       workload.OpenLoop,
				RatePerClient: 10,
			}); err != nil {
				return fmt.Errorf("epoch %d: %w", ep, err)
			}

			// The acceptance check: cause-tagged accounting must be exact,
			// not approximate. Every completed program and erase was charged
			// to exactly one cause, so the sums must match the totals.
			ds := dev.Stats()
			var causeBytes, causeErases int64
			for _, c := range obs.Causes {
				causeBytes += dev.CauseBytesProgrammed(c)
				causeErases += dev.CauseErases(c)
			}
			if causeBytes != ds.BytesProgrammed {
				return fmt.Errorf("epoch %d: cause-attributed bytes %d != total programmed %d",
					ep, causeBytes, ds.BytesProgrammed)
			}
			if causeErases != ds.Erases {
				return fmt.Errorf("epoch %d: cause-attributed erases %d != total erases %d",
					ep, causeErases, ds.Erases)
			}

			// Health snapshot while the burst's burn rate is still inside
			// the trailing window — the same view a live scrape would get.
			rep, err := flash.HealthFromSnapshot(priv.Registry.Snapshot(), "flash")
			if err != nil {
				return fmt.Errorf("epoch %d: %w", ep, err)
			}
			fs := sys.FTL.Stats()
			waBy := func(c obs.Cause) string {
				if fs.HostBytesWritten == 0 {
					return "-"
				}
				return fmt.Sprintf("%.3f", float64(dev.CauseBytesProgrammed(c))/float64(fs.HostBytesWritten))
			}
			rows[ep] = []string{
				fmt.Sprintf("%d", ep+1),
				fmt.Sprintf("%.0fd", sim.Duration(sys.Clock().Now()).Seconds()/86400),
				fmt.Sprintf("%.1f", float64(fs.HostBytesWritten)/(1<<20)),
				fmt.Sprintf("%.3f", fs.WriteAmplification),
				waBy(obs.CauseHostWrite),
				waBy(obs.CauseGroupCommitFlush),
				waBy(obs.CauseCleanerMigrate),
				waBy(obs.CauseIdleClean),
				waBy(obs.CauseMountRecovery),
				waBy(obs.CauseMetadata),
				fmt.Sprintf("%.0f", rep.MaxEraseCount),
				fmt.Sprintf("%.2f", rep.WearSpread),
				fmt.Sprintf("%.3f", rep.LifeUsedPct),
				rep.Lifetime,
			}

			// A quarter of quiet: daemons drain the buffer and idle-clean,
			// then the card sits. The next burst lands on an older device.
			if err := srv.Idle(sys.Clock().Now() + sim.Time(quarter)); err != nil {
				return fmt.Errorf("epoch %d idle: %w", ep, err)
			}
		}
		je.Obs().Merge(priv)
		return nil
	})
	if err != nil {
		return nil, err
	}
	t.addRows(rows)
	t.Notes = append(t.Notes,
		"one card aged through eight quarterly traffic bursts (4 open-loop clients, 60% writes, 4KB",
		"against 64KB Zipf objects) with ~91 idle days between bursts — about two years of virtual time;",
		"WA columns decompose write amplification by wear cause (flash bytes charged to the cause per",
		"host byte); they sum to WA exactly, and the run fails if the device's cause accounting ever",
		"disagrees with its program/erase totals;",
		"max/spread track per-block erase counts (spread = max − mean, the headroom wear leveling could",
		"still reclaim); used%/life-left come from the same health report /debug/health serves, with",
		"lifetime projected from the trailing-window burn rate while the burst is still in the window")
	return t, nil
}
