package core

import (
	"fmt"

	"ssmobile/internal/device"
	"ssmobile/internal/disk"
	"ssmobile/internal/dram"
	"ssmobile/internal/flash"
	"ssmobile/internal/obs"
	"ssmobile/internal/sim"
	"ssmobile/internal/vm"
)

// E4ReadInPlace regenerates the paper's §3.1 claim that a memory-resident
// file system reading flash in place beats a conventional disk file
// system that must fetch into a buffer cache — and that mapping files
// costs no copies at all. It reads a working set of files through four
// paths and reports the total latency and the DRAM consumed by copies.
func E4ReadInPlace(env *Env) (*Table, error) {
	const (
		fileCount = 24
		fileSize  = 64 * 1024
	)
	data := make([]byte, fileSize)
	for i := range data {
		data[i] = byte(i)
	}

	// Solid-state paths.
	solid, err := NewSolidState(SolidStateConfig{DRAMBytes: 8 << 20, FlashBytes: 32 << 20, Obs: env.Obs()})
	if err != nil {
		return nil, err
	}
	for i := 0; i < fileCount; i++ {
		name := fmt.Sprintf("f%d", i)
		if err := solid.Create(name); err != nil {
			return nil, err
		}
		if _, err := solid.WriteAt(name, 0, data); err != nil {
			return nil, err
		}
	}
	if err := solid.Sync(); err != nil {
		return nil, err
	}

	buf := make([]byte, fileSize)
	start := solid.Clock().Now()
	for i := 0; i < fileCount; i++ {
		if _, err := solid.ReadAt(fmt.Sprintf("f%d", i), 0, buf); err != nil {
			return nil, err
		}
	}
	solidRead := solid.Clock().Now().Sub(start)

	// Memory-mapped path: map every file and touch every page.
	space := solid.VM.NewSpace()
	start = solid.Clock().Now()
	addr := uint64(1 << 30)
	for i := 0; i < fileCount; i++ {
		n, err := solid.FS.MapFile(solid.VM, space, addr, "/"+fmt.Sprintf("f%d", i), vm.PermRead)
		if err != nil {
			return nil, err
		}
		if err := solid.VM.Read(space, addr, buf); err != nil {
			return nil, err
		}
		addr += uint64(n)
	}
	solidMap := solid.Clock().Now().Sub(start)
	framesUsed := solid.VM.Stats().FramesInUse

	// Disk paths.
	dsys, err := NewDisk(DiskConfig{DRAMBytes: 8 << 20, DiskBytes: 32 << 20, Obs: env.Obs()})
	if err != nil {
		return nil, err
	}
	for i := 0; i < fileCount; i++ {
		name := fmt.Sprintf("f%d", i)
		if err := dsys.Create(name); err != nil {
			return nil, err
		}
		if _, err := dsys.WriteAt(name, 0, data); err != nil {
			return nil, err
		}
	}
	if err := dsys.Sync(); err != nil {
		return nil, err
	}
	// Cold: push the working set out of the cache with unrelated traffic.
	if err := dsys.Create("filler"); err != nil {
		return nil, err
	}
	if _, err := dsys.WriteAt("filler", 0, make([]byte, 4<<20)); err != nil {
		return nil, err
	}
	if err := dsys.Sync(); err != nil {
		return nil, err
	}
	start = dsys.Clock().Now()
	for i := 0; i < fileCount; i++ {
		if _, err := dsys.ReadAt(fmt.Sprintf("f%d", i), 0, buf); err != nil {
			return nil, err
		}
	}
	diskCold := dsys.Clock().Now().Sub(start)

	// Warm: the same reads again, now cached (the conventional best case,
	// bought with a DRAM copy of every block).
	start = dsys.Clock().Now()
	for i := 0; i < fileCount; i++ {
		if _, err := dsys.ReadAt(fmt.Sprintf("f%d", i), 0, buf); err != nil {
			return nil, err
		}
	}
	diskWarm := dsys.Clock().Now().Sub(start)

	total := int64(fileCount * fileSize)
	mbps := func(d sim.Duration) string {
		return fmt.Sprintf("%.2f MB/s", float64(total)/(1<<20)/d.Seconds())
	}
	t := &Table{
		ID:      "E4",
		Title:   fmt.Sprintf("reading a %dx%s working set: in-place flash vs disk+cache", fileCount, fmtBytes(fileSize)),
		Headers: []string{"path", "total", "throughput", "DRAM copy bytes"},
	}
	t.AddRow("solid-state read (flash in place)", fmtDur(solidRead), mbps(solidRead), "0")
	t.AddRow("solid-state mmap + touch", fmtDur(solidMap), mbps(solidMap),
		fmt.Sprintf("%d (frames in use: %d)", 0, framesUsed))
	t.AddRow("disk, cold buffer cache", fmtDur(diskCold), mbps(diskCold), fmtBytes(total))
	t.AddRow("disk, warm buffer cache", fmtDur(diskWarm), mbps(diskWarm), fmtBytes(total)+" (resident copy)")
	t.Notes = append(t.Notes,
		"paper: files in flash are read/mapped with no copy in primary storage;",
		"the disk system must copy every block into the cache, and pays seeks when cold")
	return t, nil
}

// E5XIP regenerates the §3.2 execute-in-place claim: programs run from
// flash without first loading their code segment into DRAM, saving both
// the copy time and the duplicate DRAM. Launch latency = map (or load)
// plus one full pass of instruction fetch over the code segment.
func E5XIP(env *Env) (*Table, error) {
	t := &Table{
		ID:      "E5",
		Title:   "program launch: execute-in-place from flash vs load-then-run",
		Headers: []string{"code size", "XIP (flash)", "load flash->DRAM", "load disk->DRAM", "XIP DRAM saved"},
	}
	sizes := []int{64 << 10, 256 << 10, 1 << 20, 4 << 20}
	rows := make([][]string, len(sizes))
	err := env.ForEach(len(sizes), func(i int, je *Env) error {
		size := sizes[i]
		xip, err := launchXIP(je.Obs(), size)
		if err != nil {
			return err
		}
		loadFlash, err := launchLoad(je.Obs(), size, false)
		if err != nil {
			return err
		}
		loadDisk, err := launchLoad(je.Obs(), size, true)
		if err != nil {
			return err
		}
		rows[i] = []string{fmtBytes(int64(size)), fmtDur(xip), fmtDur(loadFlash), fmtDur(loadDisk), fmtBytes(int64(size))}
		return nil
	})
	if err != nil {
		return nil, err
	}
	t.addRows(rows)
	t.Notes = append(t.Notes,
		"XIP pays flash fetch during execution but skips the load copy entirely (HP OmniBook style);",
		"loading from disk also pays spin-up and seeks")
	return t, nil
}

// xipRig builds a DRAM + code-card flash pair with a program staged in
// flash, as an installer would leave it.
func xipRig(o *obs.Observer, codeSize int) (*sim.Clock, *dram.Device, *flash.Device, *vm.VM, error) {
	clock := sim.NewClock()
	meter := sim.NewEnergyMeter()
	dr, err := dram.New(dram.Config{CapacityBytes: 8 << 20, Params: device.NECDram, Obs: o}, clock, meter)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	fd, err := flash.New(flash.Config{Banks: 2, BlocksPerBank: 64, BlockBytes: 64 << 10, Params: device.IntelFlash, Obs: o}, clock, meter)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	// Stage the program; installation cost is not part of launch latency,
	// so rewind to a fresh clock afterwards is unnecessary — we just
	// measure from after staging.
	code := make([]byte, codeSize)
	for i := range code {
		code[i] = byte(i * 13)
	}
	addr := int64(0)
	for len(code) > 0 {
		n := fd.BlockBytes()
		if n > len(code) {
			n = len(code)
		}
		if _, err := fd.Program(addr, code[:n]); err != nil {
			return nil, nil, nil, nil, err
		}
		addr += int64(n)
		code = code[n:]
	}
	v, err := vm.New(vm.Config{PageBytes: 4096, DRAMBase: 0, DRAMBytes: 6 << 20, Obs: o}, clock, dr, fd)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	return clock, dr, fd, v, nil
}

func launchXIP(o *obs.Observer, codeSize int) (sim.Duration, error) {
	clock, _, _, v, err := xipRig(o, codeSize)
	if err != nil {
		return 0, err
	}
	s := v.NewSpace()
	start := clock.Now()
	if err := v.MapFlash(s, 1<<30, 0, codeSize, vm.PermRead|vm.PermExec); err != nil {
		return 0, err
	}
	if err := v.Exec(s, 1<<30, codeSize); err != nil {
		return 0, err
	}
	return clock.Now().Sub(start), nil
}

func launchLoad(o *obs.Observer, codeSize int, fromDisk bool) (sim.Duration, error) {
	clock, dr, fd, v, err := xipRig(o, codeSize)
	if err != nil {
		return 0, err
	}
	var dk *disk.Device
	if fromDisk {
		meter := sim.NewEnergyMeter()
		dk, err = disk.New(disk.Config{
			CapacityBytes: 20 << 20, Params: device.KittyHawk,
			SpindownTimeout: 5 * sim.Second,
			Obs:             o,
		}, clock, meter)
		if err != nil {
			return 0, err
		}
		if _, err := dk.Write(0, make([]byte, codeSize)); err != nil {
			return 0, err
		}
		// The drive has been idle since boot: it pays spin-up at launch.
		clock.Advance(time30s)
	}
	s := v.NewSpace()
	if err := v.MapAnonymous(s, 1<<30, codeSize, vm.PermRead|vm.PermWrite|vm.PermExec); err != nil {
		return 0, err
	}
	start := clock.Now()
	buf := make([]byte, codeSize)
	if fromDisk {
		if _, err := dk.Read(0, buf); err != nil {
			return 0, err
		}
	} else {
		if _, err := fd.Read(0, buf); err != nil {
			return 0, err
		}
	}
	if err := v.Write(s, 1<<30, buf); err != nil {
		return 0, err
	}
	if err := v.Exec(s, 1<<30, codeSize); err != nil {
		return 0, err
	}
	_ = dr
	return clock.Now().Sub(start), nil
}

const time30s = 30 * sim.Second
