package core

import (
	"fmt"

	"ssmobile/internal/cluster"
	"ssmobile/internal/obs"
	"ssmobile/internal/server"
	"ssmobile/internal/sim"
	"ssmobile/internal/workload"
)

// E16Fleet is the fleet-observability study: the E14 cluster instrumented
// end to end. A 4-node cluster starts with one card deep-aged (so the
// router's first health sweep cordons it and migrates its keys), serves
// one phase of the saturation workload, loses a node to an operator kill,
// serves a degraded phase, recovers the node (remount from flash — the
// power-failure contract), and serves a final healed phase.
//
// The point is not new mechanism but visibility into the old one: every
// control-plane transition lands in the cluster event journal with a
// virtual timestamp and cause; every replicated write decomposes into
// per-holder latencies (rank 0 the effective primary, the write
// acknowledged at the slowest holder); and the fleet health rollup
// aggregates the per-card SMART reports into one lifetime-at-rate figure.
// All of it is the same code path behind /debug/events, /debug/fleet and
// `ssmtrace events|fleet`, and all of it is virtual-time deterministic —
// the four tables are a pure function of the seed at any -parallel level.
func E16Fleet(env *Env, seed int64) ([]*Table, error) {
	const w = 0.6
	const nNodes = 4
	const killNode = 3

	phases := &Table{
		ID: "E16",
		Title: "fleet observability: cordon, kill and restart under the saturation " +
			"workload, phase by phase",
		Headers: []string{"phase", "offered op/s", "served op/s", "p50", "p99",
			"shed", "failovers", "healed", "events"},
	}
	timeline := &Table{
		ID:      "E16b",
		Title:   "cluster event journal: control-plane transitions on the virtual clock",
		Headers: []string{"time", "event", "node", "keys", "cause"},
	}
	holders := &Table{
		ID:      "E16c",
		Title:   "per-holder write latency: the decomposition of \"acknowledged at the slowest holder\"",
		Headers: []string{"rank", "role", "writes", "p50", "p99"},
	}
	fleet := &Table{
		ID:      "E16d",
		Title:   "fleet health rollup: per-card SMART reports aggregated across the ring",
		Headers: []string{"node", "state", "ring share", "life used", "free margin", "lifetime"},
	}

	err := env.ForEach(1, func(_ int, je *Env) error {
		// The journal and the fleet snapshot both hang off an observer —
		// the same attachment point /debug/events uses in ssmserve. An
		// uninstrumented run (no default observer) still needs one, so the
		// experiment carries its own; the tables are identical either way.
		o := je.Obs()
		if o == nil {
			o = obs.New(0)
		}
		el := obs.NewEventLog(0)
		o.SetEventLog(el)

		nodes := make([]*cluster.Node, nNodes)
		privs := make([]*obs.Observer, nNodes)
		for j := range nodes {
			age := int64(6 << 20)
			if j == 0 {
				// One card at its free-block margin from the start: the
				// router's first sweep cordons it — the journal's opening
				// entries.
				age = 15 << 19
			}
			node, priv, err := NewClusterNode(ClusterNodeConfig{
				Name: fmt.Sprintf("n%d", j),
				System: SolidStateConfig{
					DRAMBytes:       8 << 20,
					FlashBytes:      8 << 20,
					BufferBytes:     1 << 20,
					RBoxBytes:       512 << 10,
					IdleCleanBlocks: 24,
					WriteBackDelay:  2 * sim.Second,
				},
				AgeBytes: age,
			})
			if err != nil {
				return err
			}
			nodes[j], privs[j] = node, priv
		}
		cl, err := cluster.New(nodes, cluster.Config{RebalanceMargin: 0.05, Obs: o})
		if err != nil {
			return err
		}

		var prev cluster.Stats
		var prevEvents int64
		runPhase := func(name string, phaseSeed int64) error {
			st, err := server.RunWorkload(cl, workload.Config{
				Seed:          phaseSeed,
				Clients:       32,
				OpsPerClient:  100,
				Keys:          6,
				ObjectBytes:   32 << 10,
				MinWriteBytes: 4096,
				MaxWriteBytes: 4096,
				Mix: workload.Mix{
					Read:     1 - w,
					Write:    w * 0.90,
					Truncate: w * 0.02,
					Delete:   w * 0.03,
					Sync:     w * 0.05,
				},
				Popularity:    workload.Zipf,
				ZipfSkew:      1.2,
				Arrival:       workload.OpenLoop,
				RatePerClient: 10,
			})
			if err != nil {
				return fmt.Errorf("phase %s: %w", name, err)
			}
			cst := cl.ClusterStats()
			phases.AddRow(
				name,
				fmt.Sprintf("%.1f", st.OfferedRate()),
				fmt.Sprintf("%.1f", st.CompletedRate()),
				fmtDur(sim.Duration(st.Lat.Quantile(0.50))),
				fmtDur(sim.Duration(st.Lat.Quantile(0.99))),
				fmt.Sprintf("%d", st.Shed),
				fmt.Sprintf("%d", cst.ReadFailovers-prev.ReadFailovers),
				fmt.Sprintf("%d", cst.HealedKeys-prev.HealedKeys),
				fmt.Sprintf("%d", el.Total()-prevEvents),
			)
			prev, prevEvents = cst, el.Total()
			return nil
		}

		if err := runPhase("baseline", seed); err != nil {
			return err
		}
		cl.KillNode(killNode)
		if err := runPhase("node down", seed+1); err != nil {
			return err
		}
		if err := cl.RestartNode(killNode); err != nil {
			return err
		}
		if err := runPhase("recovered", seed+2); err != nil {
			return err
		}

		// The timeline table shows the structural transitions one by one;
		// the chattier per-key events (heals, replica sheds, tombstone
		// lifecycle) are summarised below so the table stays readable. The
		// full stream is what /debug/events serves and `ssmtrace events`
		// replays.
		structural := map[string]bool{
			obs.EventCordon: true, obs.EventUncordon: true, obs.EventMigrate: true,
			obs.EventKill: true, obs.EventRestart: true,
		}
		counts := map[string]int{}
		keys := map[string]int{}
		for _, ev := range el.Events() {
			counts[ev.Type]++
			keys[ev.Type] += ev.Keys
			if !structural[ev.Type] {
				continue
			}
			k := ""
			if ev.Keys != 0 {
				k = fmt.Sprintf("%d", ev.Keys)
			}
			timeline.AddRow(ev.Time.String(), ev.Type, ev.Node, k, ev.Cause)
		}
		timeline.Notes = append(timeline.Notes,
			fmt.Sprintf("%d events total; per-key churn summarised: %d heal sweeps re-replicated %d keys,",
				el.Total(), counts[obs.EventHeal], keys[obs.EventHeal]),
			fmt.Sprintf("%d replica sheds, %d tombstones created / %d resolved; the full stream is the",
				counts[obs.EventReplicaShed], counts[obs.EventTombstoneCreate], counts[obs.EventTombstoneResolve]),
			"/debug/events JSONL, replayable offline with `ssmtrace events`")

		for rank := 0; ; rank++ {
			h := cl.ReplicaLatency(rank)
			if h == nil {
				break
			}
			role := "replica"
			if rank == 0 {
				role = "primary"
			}
			holders.AddRow(
				fmt.Sprintf("%d", rank), role,
				fmt.Sprintf("%d", h.Count()),
				fmtDur(sim.Duration(h.Quantile(0.50))),
				fmtDur(sim.Duration(h.Quantile(0.99))),
			)
		}
		holders.Notes = append(holders.Notes,
			"a replicated write is acknowledged at its slowest holder; rank orders the holders a",
			"write actually landed on (rank 0 the effective primary), so the p99 gap between ranks",
			fmt.Sprintf("is the replication tax; last write's straggler gap (slowest − median): %s",
				fmtDur(sim.Duration(cl.StragglerGapNS()))))

		rep, err := cluster.FleetFromSnapshot(cl.FleetSnapshot())
		if err != nil {
			return err
		}
		for _, n := range rep.Nodes {
			state := "up"
			if !n.Up {
				state = "down"
			}
			if n.Cordoned {
				state += "+cordoned"
			}
			life, margin, lifetime := "-", "-", "-"
			if n.Health != nil {
				life = fmt.Sprintf("%.3f%%", n.Health.LifeUsedPct)
				if n.Health.FreeBlockMargin >= 0 {
					margin = fmt.Sprintf("%.1f%%", 100*n.Health.FreeBlockMargin)
				}
				lifetime = n.Health.Lifetime
			}
			fleet.AddRow(n.Name, state, fmt.Sprintf("%.1f%%", n.RingSharePct),
				life, margin, lifetime)
		}
		fleet.Notes = append(fleet.Notes,
			fmt.Sprintf("fleet lifetime at current burn rate: %s (%.4f erases/s against a remaining budget of %d cycles);",
				rep.Lifetime, rep.EraseRatePerSec, rep.RemainingEraseBudget),
			fmt.Sprintf("life used spread across cards %.3f%%..%.3f%%, wear spread %.2f mean-erases — the imbalance",
				rep.MinLifeUsedPct, rep.MaxLifeUsedPct, rep.WearSpreadAcrossCards),
			fmt.Sprintf("cluster-level migration could still level; directory: %d under-replicated, %d tombstones, %d stale copies;",
				rep.UnderReplicatedKeys, rep.TombstoneKeys, rep.StaleCopies),
			"the same rollup is served live at /debug/fleet and rendered offline by `ssmtrace fleet`")

		for j, priv := range privs {
			o.MergeLabeled(priv, obs.Labels{"node": nodes[j].Name})
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	phases.Notes = append(phases.Notes,
		"the E14 cluster (4 nodes, one card deep-aged) driven through three phases: baseline with the",
		"first health sweep cordoning the aged card; a phase with one node operator-killed (reads fail",
		"over, writes skip the dead holder and heal later); and a recovered phase after the node",
		"remounts from flash — failovers and heals are the per-phase deltas, events the journal growth")
	return []*Table{phases, timeline, holders, fleet}, nil
}
