package core

import (
	"fmt"

	"ssmobile/internal/server"
	"ssmobile/internal/sim"
	"ssmobile/internal/workload"
)

// E15EngineHeadToHead races the two storage backends over the same
// serving workload: the page-mapped translation layer (ftl) against
// page-differential logging (pdl), which persists an overwrite as a
// small delta record instead of re-programming the whole page. The
// paper's trace analysis says mobile write traffic is dominated by
// overwrites of recently-written data; the head-to-head asks what that
// buys when the engine exploits it directly.
//
// Each engine runs the E12 saturation grid (open-loop clients against an
// aged card, 60% writes) with a small-update mix — 256B–1KB writes into
// 32KB Zipf-popular objects, the shape of mobile metadata churn — plus an
// endurance cell: a pure-write overwrite storm, where erase load decides
// device lifetime. Paired cells share a workload seed, so the comparison
// is stream-for-stream. Below the pdl rows, write amplification falls
// under 1.0 (a 4KB page overwrite persists as a few hundred delta bytes)
// and erase totals drop with it; the same serving stack, storage manager
// and admission control run unmodified over both, which is the point of
// the engine interface.
func E15EngineHeadToHead(env *Env, seed int64) (*Table, error) {
	type cell struct {
		clients int
		write   float64
		ops     int
		label   string
	}
	cells := []cell{
		{2, 0.6, 400, "grid"},
		{8, 0.6, 400, "grid"},
		{32, 0.6, 400, "grid"},
		{8, 1.0, 800, "endurance"},
	}
	engines := []string{"ftl", "pdl"}

	t := &Table{
		ID: "E15",
		Title: "storage-engine head-to-head: page-mapped FTL vs page-differential " +
			"logging on an overwrite-heavy serving mix (throughput, tail latency, " +
			"write amplification, erase load)",
		Headers: []string{"engine", "cell", "clients", "write mix", "served op/s",
			"p99", "shed", "write amp", "erases", "cleans", "deltas", "promotions"},
	}

	n := len(engines) * len(cells)
	rows := make([][]string, n)
	err := env.ForEach(n, func(i int, je *Env) error {
		eng := engines[i/len(cells)]
		c := cells[i%len(cells)]

		sys, err := NewSolidState(SolidStateConfig{
			DRAMBytes:       8 << 20,
			FlashBytes:      8 << 20,
			BufferBytes:     1 << 20,
			RBoxBytes:       512 << 10,
			IdleCleanBlocks: 24,
			WriteBackDelay:  2 * sim.Second,
			Engine:          eng,
			Obs:             je.Obs(),
		})
		if err != nil {
			return err
		}
		// Same aging as E12: months of dead pages, so cleaning is live
		// from the start and erase load reflects steady state.
		if err := ageDevice(sys, 6<<20); err != nil {
			return err
		}
		srv, err := server.New(server.Backend{
			FS: sys.FS, Storage: sys.Storage, Engine: sys.Engine, Clock: sys.Clock(),
		}, server.Config{Obs: je.Obs()})
		if err != nil {
			return err
		}
		st, err := server.RunWorkload(srv, workload.Config{
			// Paired seeds: cell k sees the same op stream under both
			// engines.
			Seed:          seed + int64(i%len(cells)),
			Clients:       c.clients,
			OpsPerClient:  c.ops,
			Keys:          6,
			ObjectBytes:   32 << 10,
			MinWriteBytes: 256,
			MaxWriteBytes: 1024,
			Mix: workload.Mix{
				Read:     1 - c.write,
				Write:    c.write * 0.90,
				Truncate: c.write * 0.02,
				Delete:   c.write * 0.03,
				Sync:     c.write * 0.05,
			},
			Popularity:    workload.Zipf,
			ZipfSkew:      1.2,
			Arrival:       workload.OpenLoop,
			RatePerClient: 10,
		})
		if err != nil {
			return fmt.Errorf("%s, %d clients: %w", eng, c.clients, err)
		}
		es := sys.Engine.Stats()
		deltas, promotions := "-", "-"
		if pe, ok := sys.Engine.(interface {
			DeltaWrites() int64
			Promotions() int64
		}); ok {
			deltas = fmt.Sprintf("%d", pe.DeltaWrites())
			promotions = fmt.Sprintf("%d", pe.Promotions())
		}
		rows[i] = []string{
			eng,
			c.label,
			fmt.Sprintf("%d", c.clients),
			fmt.Sprintf("%.0f%%", c.write*100),
			fmt.Sprintf("%.1f", st.CompletedRate()),
			fmtDur(sim.Duration(st.Lat.Quantile(0.99))),
			fmt.Sprintf("%d", st.Shed),
			fmt.Sprintf("%.3f", es.WriteAmplification),
			fmt.Sprintf("%d", es.Erases),
			fmt.Sprintf("%d", es.Cleans),
			deltas,
			promotions,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	t.addRows(rows)
	t.Notes = append(t.Notes,
		"both engines serve the identical op stream per cell (paired seeds) through the unmodified",
		"serving stack — only the storage backend changes; cards aged with 6MB of dead history first;",
		"256B-1KB writes into 32KB Zipf-popular objects: the overwrite-dominated small-update traffic",
		"the paper measured on mobile workloads; write amp = flash bytes programmed / host bytes written;",
		"pdl persists each overwrite as a base-page diff (delta record) and promotes a page back to a",
		"fresh base when its chain or diff outgrows the bound — write amp falls below 1.0 and erase",
		"load drops with it, buying flash lifetime exactly where the FTL pays full pages for small updates")
	return t, nil
}
