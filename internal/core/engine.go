package core

import (
	"sync"

	"ssmobile/internal/obs"
)

// The parallel experiment engine.
//
// Every experiment — and every independent configuration inside a sweep
// experiment — is a pure function of (seed, virtual clock): simulations
// share no mutable state, so they can run concurrently as long as their
// telemetry does not collide. The engine makes that structural: each job
// runs under its own Env carrying a private obs.Observer, and the parent
// merges the children back IN JOB INDEX ORDER once the batch completes.
// Because merge order is fixed and every merge operation is
// order-preserving (counters add, histograms merge sample-exactly,
// gauges adopt the most recent instance, tracer rings re-record in
// sequence), the telemetry a parallel run dumps is byte-identical to the
// sequential run's — however the scheduler interleaved the work.
//
// Concurrency is bounded by a token pool sized to the requested
// parallelism. A job that fans out again (an experiment running its
// sweep configurations) yields its own token while it waits on children,
// so nested ForEach calls never deadlock and never exceed the bound.

// Env is the execution context a job runs under: a private observer for
// its telemetry and the shared scheduler for nested fan-out. A nil Env
// behaves like a serial environment writing to the process default
// observer, which keeps direct calls (tests, benchmarks, examples)
// working unchanged.
type Env struct {
	obs     *obs.Observer
	sched   *sched
	holding bool // the goroutine running this env holds a worker token
}

// NewEnv returns a root environment writing telemetry to o (nil falls
// back to the process default observer) and running ForEach batches with
// up to parallel concurrent jobs (<=1 means strictly sequential).
func NewEnv(o *obs.Observer, parallel int) *Env {
	return &Env{obs: obs.Or(o), sched: newSched(parallel)}
}

// Obs reports the environment's observer; experiments pass it into every
// system and device they construct so no layer falls back to the shared
// process default from inside a concurrent job.
func (e *Env) Obs() *obs.Observer {
	if e == nil {
		return obs.Default()
	}
	return e.obs
}

// sched is a counting-semaphore worker pool.
type sched struct {
	tokens chan struct{}
}

// newSched returns a pool admitting par concurrent jobs, or nil (meaning
// "run sequentially") when par <= 1.
func newSched(par int) *sched {
	if par <= 1 {
		return nil
	}
	s := &sched{tokens: make(chan struct{}, par)}
	for i := 0; i < par; i++ {
		s.tokens <- struct{}{}
	}
	return s
}

func (s *sched) acquire() { <-s.tokens }
func (s *sched) release() { s.tokens <- struct{}{} }

// childObs returns a fresh observer for one job, sized like the parent's
// (same trace capacity, so the merged ring retains exactly the spans a
// single shared ring would have). A nil parent means the run is
// uninstrumented and the child is too.
func childObs(parent *obs.Observer) *obs.Observer {
	if parent == nil {
		return nil
	}
	capacity := 0
	if parent.Tracer != nil {
		capacity = parent.Tracer.Capacity()
	}
	return obs.New(capacity)
}

// ForEach runs job(0..n-1), each under a child Env, and merges the
// children's telemetry into e in index order. Sequentially (nil Env or
// parallelism 1) jobs run in order and the first error stops the batch —
// the classic loop. In parallel all jobs run, but the result is
// normalized to the sequential contract: the error returned is the
// failing job with the LOWEST index, and only children up to and
// including that job are merged, so a failed parallel run leaves exactly
// the telemetry its sequential counterpart would have.
func (e *Env) ForEach(n int, job func(i int, je *Env) error) error {
	if n <= 0 {
		return nil
	}
	parent := e.Obs()
	var s *sched
	if e != nil {
		s = e.sched
	}
	if s == nil {
		for i := 0; i < n; i++ {
			je := &Env{obs: childObs(parent)}
			err := job(i, je)
			parent.Merge(je.obs)
			if err != nil {
				return err
			}
		}
		return nil
	}

	envs := make([]*Env, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	if e.holding {
		// Yield this job's token while its children run, so nested
		// fan-out cannot deadlock the pool or exceed the bound.
		s.release()
	}
	for i := 0; i < n; i++ {
		envs[i] = &Env{obs: childObs(parent), sched: s, holding: true}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s.acquire()
			defer s.release()
			errs[i] = job(i, envs[i])
		}(i)
	}
	wg.Wait()
	if e.holding {
		s.acquire()
	}
	for i := 0; i < n; i++ {
		parent.Merge(envs[i].obs)
		if errs[i] != nil {
			return errs[i]
		}
	}
	return nil
}

// tableSet runs the given table builders as one ForEach batch and
// returns their tables in argument order.
func tableSet(env *Env, fns ...func(*Env) (*Table, error)) ([]*Table, error) {
	out := make([]*Table, len(fns))
	err := env.ForEach(len(fns), func(i int, je *Env) error {
		t, err := fns[i](je)
		if err != nil {
			return err
		}
		out[i] = t
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
