package core

import (
	"errors"
	"fmt"

	"ssmobile/internal/device"
	"ssmobile/internal/flash"
	"ssmobile/internal/ftl"
	"ssmobile/internal/obs"
	"ssmobile/internal/sim"
)

// e6Flash builds the small, fast-erasing flash device the wear
// experiments sweep policies over.
func e6Flash(o *obs.Observer, endurance int64) (*flash.Device, *sim.Clock, error) {
	clock := sim.NewClock()
	params := device.IntelFlash
	params.EnduranceCycles = endurance
	params.EraseLatencyNs = 1e6
	dev, err := flash.New(flash.Config{
		Banks: 2, BlocksPerBank: 64, BlockBytes: 16 * 1024, Params: params,
		Obs: o,
	}, clock, sim.NewEnergyMeter())
	return dev, clock, err
}

type e6Variant struct {
	name      string
	policy    ftl.Policy
	hotCold   bool
	wearDelta int64
}

func e6Variants() []e6Variant {
	return []e6Variant{
		{"direct (no leveling)", ftl.PolicyDirect, false, 0},
		{"fifo log", ftl.PolicyFIFO, false, 0},
		{"greedy log", ftl.PolicyGreedy, false, 0},
		{"cost-benefit", ftl.PolicyCostBenefit, false, 0},
		{"cost-benefit + hot/cold", ftl.PolicyCostBenefit, true, 0},
		{"cost-benefit + hot/cold + static", ftl.PolicyCostBenefit, true, 16},
	}
}

// E6WearLeveling regenerates the §3.3 argument for log-structured
// cleaning: under a skewed write workload, wear-leveling policies spread
// erasures evenly (low coefficient of variation) where the naive direct
// mapping concentrates them, at a bounded write-amplification cost.
func E6WearLeveling(env *Env, seed int64) (*Table, error) {
	t := &Table{
		ID:      "E6",
		Title:   "wear leveling under a zipf write workload (16k page writes)",
		Headers: []string{"policy", "erase CoV", "max erases", "total erases", "write amp", "cleans"},
	}
	const ops = 16000
	variants := e6Variants()
	rows := make([][]string, len(variants))
	err := env.ForEach(len(variants), func(i int, je *Env) error {
		v := variants[i]
		dev, clock, err := e6Flash(je.Obs(), 0)
		if err != nil {
			return err
		}
		l, err := ftl.New(dev, clock, ftl.Config{
			PageBytes: 1024, ReserveBlocks: 3,
			Policy: v.policy, HotCold: v.hotCold, BackgroundErase: true,
			WearDeltaThreshold: v.wearDelta,
			Obs:                je.Obs(),
		})
		if err != nil {
			return err
		}
		g := sim.NewRNG(seed)
		z := g.Zipf(1.2, uint64(l.LogicalPages()))
		page := make([]byte, 1024)
		for i := 0; i < ops; i++ {
			page[0] = byte(i)
			if err := l.WritePage(int64(z.Next()), page); err != nil {
				return fmt.Errorf("%s: %w", v.name, err)
			}
		}
		ds := dev.Stats()
		ls := l.Stats()
		rows[i] = []string{v.name,
			fmt.Sprintf("%.2f", ds.EraseCountCoV),
			fmt.Sprint(ds.MaxEraseCount),
			fmt.Sprint(ds.Erases),
			fmt.Sprintf("%.2f", ls.WriteAmplification),
			fmt.Sprint(ls.Cleans),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	t.addRows(rows)
	t.Notes = append(t.Notes,
		"lower CoV = more even wear; direct mapping pays massive amplification AND uneven wear")
	return t, nil
}

// E6Lifetime measures how many host bytes each policy absorbs before the
// first block exhausts a (scaled-down) endurance of 200 cycles — the
// "prolong the life of flash memory" claim made measurable. Results scale
// linearly to the real 100,000-cycle endurance.
func E6Lifetime(env *Env, seed int64) (*Table, error) {
	t := &Table{
		ID:      "E6b",
		Title:   "host data written before first block wears out (endurance scaled to 200 cycles)",
		Headers: []string{"policy", "host MB until first wear-out", "vs direct"},
	}
	variants := e6Variants()
	mbs := make([]float64, len(variants))
	err := env.ForEach(len(variants), func(i int, je *Env) error {
		v := variants[i]
		dev, clock, err := e6Flash(je.Obs(), 200)
		if err != nil {
			return err
		}
		l, err := ftl.New(dev, clock, ftl.Config{
			PageBytes: 1024, ReserveBlocks: 3,
			Policy: v.policy, HotCold: v.hotCold, BackgroundErase: true,
			WearDeltaThreshold: v.wearDelta,
			Obs:                je.Obs(),
		})
		if err != nil {
			return err
		}
		g := sim.NewRNG(seed)
		z := g.Zipf(1.2, uint64(l.LogicalPages()))
		page := make([]byte, 1024)
		var hostBytes int64
		for i := 0; ; i++ {
			page[0] = byte(i)
			err := l.WritePage(int64(z.Next()), page)
			if err != nil && !errors.Is(err, ftl.ErrDeviceWorn) {
				return fmt.Errorf("%s: %w", v.name, err)
			}
			if s := l.Stats(); s.RetiredBlocks > 0 {
				hostBytes = s.FirstWearOutHostBytes
				break
			}
			if errors.Is(err, ftl.ErrDeviceWorn) {
				hostBytes = l.Stats().HostBytesWritten
				break
			}
			if i > 30_000_000 {
				hostBytes = l.Stats().HostBytesWritten
				break
			}
		}
		mbs[i] = float64(hostBytes) / (1 << 20)
		return nil
	})
	if err != nil {
		return nil, err
	}
	// The "vs direct" column normalizes against variant 0 (the direct
	// mapping), which the sequential loop computed first; with the sweep
	// parallel, the ratio is applied at assembly time instead.
	var direct float64
	for i, v := range variants {
		mb := mbs[i]
		if v.policy == ftl.PolicyDirect {
			direct = mb
		}
		ratio := "-"
		if direct > 0 {
			ratio = fmt.Sprintf("%.1fx", mb/direct)
		}
		t.AddRow(v.name, fmt.Sprintf("%.1f", mb), ratio)
	}
	return t, nil
}

// E6Static isolates static wear leveling: a third of the device holds
// data that is never written again (the installed-application case from
// the paper's read-mostly discussion), pinning its blocks at zero erases,
// while a hot set hammers the rest. Dynamic policies cannot touch the
// pinned blocks; static leveling relocates them so their endurance joins
// the pool.
func E6Static(env *Env, seed int64) (*Table, error) {
	t := &Table{
		ID:      "E6c",
		Title:   "static wear leveling with pinned cold data (1/3 of device never rewritten)",
		Headers: []string{"static leveling", "erase CoV", "max erases", "min erases", "spread", "forced moves"},
	}
	thresholds := []int64{0, 8}
	rows := make([][]string, len(thresholds))
	err := env.ForEach(len(thresholds), func(i int, je *Env) error {
		threshold := thresholds[i]
		dev, clock, err := e6Flash(je.Obs(), 0)
		if err != nil {
			return err
		}
		l, err := ftl.New(dev, clock, ftl.Config{
			PageBytes: 1024, ReserveBlocks: 3,
			Policy: ftl.PolicyCostBenefit, HotCold: true, BackgroundErase: true,
			WearDeltaThreshold: threshold,
			Obs:                je.Obs(),
		})
		if err != nil {
			return err
		}
		page := make([]byte, 1024)
		coldPages := l.LogicalPages() / 3
		for lpn := int64(0); lpn < coldPages; lpn++ {
			if err := l.WritePage(lpn, page); err != nil {
				return err
			}
		}
		g := sim.NewRNG(seed)
		for i := 0; i < 120000; i++ {
			lpn := coldPages + int64(g.Intn(16))
			page[0] = byte(i)
			if err := l.WritePage(lpn, page); err != nil {
				return err
			}
		}
		counts := dev.EraseCounts()
		var minC, maxC int64 = 1 << 62, 0
		for _, c := range counts {
			if c < minC {
				minC = c
			}
			if c > maxC {
				maxC = c
			}
		}
		name := "off"
		if threshold > 0 {
			name = fmt.Sprintf("on (delta %d)", threshold)
		}
		rows[i] = []string{name,
			fmt.Sprintf("%.2f", dev.Stats().EraseCountCoV),
			fmt.Sprint(maxC), fmt.Sprint(minC), fmt.Sprint(maxC - minC),
			fmt.Sprint(l.Stats().StaticMoves)}
		return nil
	})
	if err != nil {
		return nil, err
	}
	t.addRows(rows)
	t.Notes = append(t.Notes,
		"without static moves, cold blocks sit at ~0 erases while the hot region wears;",
		"with them, the spread stays bounded by the threshold and device lifetime extends")
	return t, nil
}

// E7Banking regenerates the §3.3 banking claim: "to maintain fast read
// access ... during the slow erase/write cycles of flash memory, it may
// prove necessary to partition flash memory into two or more banks". A
// foreground reader shares the device with a background write-and-erase
// stream; more banks mean fewer reads queue behind busy banks.
func E7Banking(env *Env, seed int64) (*Table, error) {
	t := &Table{
		ID:      "E7",
		Title:   "foreground read latency vs flash bank count (background log writes + erases)",
		Headers: []string{"banks", "read mean", "read p50", "read p99", "read max", "stalled reads", "bg write throughput"},
	}
	const (
		totalBlocks = 64
		blockBytes  = 64 * 1024
		reads       = 4000
	)
	bankCounts := []int{1, 2, 4, 8}
	rows := make([][]string, len(bankCounts))
	err := env.ForEach(len(bankCounts), func(idx int, je *Env) error {
		banks := bankCounts[idx]
		clock := sim.NewClock()
		dev, err := flash.New(flash.Config{
			Banks:         banks,
			BlocksPerBank: totalBlocks / banks,
			BlockBytes:    blockBytes,
			Params:        device.IntelFlash,
			Obs:           je.Obs(),
		}, clock, sim.NewEnergyMeter())
		if err != nil {
			return err
		}
		g := sim.NewRNG(seed)
		hist := sim.NewHistogram("read")
		stalled := 0

		// Background stream: the storage manager migrates buffered data
		// to flash at a fixed 25KB/s — one 4KB program every 160ms, with
		// the oldest log block erased after every 16 programs. With the
		// Intel part's 1.6s block erase, that load occupies ~86% of ONE
		// bank; spread over more banks, each is mostly idle. The log
		// stripes across banks exactly as the translation layer's
		// rotating log heads do.
		events := sim.NewEventQueue()
		bankBytes := dev.Capacity() / int64(banks)
		bankPtr := make([]int64, banks)
		var logFIFO []int
		programs := 0
		nextBank := 0
		prog := make([]byte, 4096)
		var pump func(now sim.Time)
		pump = func(now sim.Time) {
			b := nextBank
			nextBank = (nextBank + 1) % banks
			addr := int64(b)*bankBytes + bankPtr[b]%bankBytes
			if err := dev.ProgramAsync(addr, prog); err == nil {
				if bankPtr[b]%int64(blockBytes) == 0 {
					logFIFO = append(logFIFO, dev.BlockOf(addr))
				}
				bankPtr[b] += int64(len(prog))
				programs++
				if programs%16 == 0 && len(logFIFO) > 0 {
					victim := logFIFO[0]
					logFIFO = logFIFO[1:]
					_ = dev.EraseAsync(victim)
				}
			}
			events.After(now, 160*sim.Millisecond, pump)
		}
		events.At(0, pump)

		buf := make([]byte, 512)
		for i := 0; i < reads; i++ {
			clock.Advance(sim.Duration(g.Exp(float64(4 * sim.Millisecond))))
			events.RunUntil(clock.Now())
			addr := g.Int63n(dev.Capacity() - int64(len(buf)))
			before := dev.Stats().ReadStallNs
			lat, err := dev.Read(addr, buf)
			if err != nil {
				return err
			}
			if dev.Stats().ReadStallNs > before {
				stalled++
			}
			hist.ObserveDuration(lat)
		}
		elapsed := clock.Now().Seconds()
		rows[idx] = []string{fmt.Sprint(banks),
			fmtDur(sim.Duration(hist.Mean())),
			fmtDur(sim.Duration(hist.Quantile(0.5))),
			fmtDur(sim.Duration(hist.Quantile(0.99))),
			fmtDur(sim.Duration(hist.Max())),
			fmt.Sprintf("%.1f%%", float64(stalled)/reads*100),
			fmt.Sprintf("%.2f MB/s", float64(programs)*4096/(1<<20)/elapsed),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	t.addRows(rows)
	t.Notes = append(t.Notes,
		"one bank: reads queue behind 41ms programs and 1.6s erases; more banks isolate them")
	return t, nil
}

// E7Segregation is the ablation for the paper's specific §3.3 layout:
// "One bank would hold read-mostly data, such as application programs,
// while others would be used for data that is more frequently written."
// With four banks, it compares writes striped across all four (mixed)
// against writes confined to one write bank with the read-mostly data in
// the other three (segregated).
func E7Segregation(env *Env, seed int64) (*Table, error) {
	t := &Table{
		ID:      "E7b",
		Title:   "read-mostly bank segregation (4 banks, same background write load)",
		Headers: []string{"layout", "read mean", "read p99", "stalled reads"},
	}
	const (
		banks       = 4
		totalBlocks = 64
		blockBytes  = 64 * 1024
		reads       = 4000
	)
	layouts := []bool{false, true}
	rows := make([][]string, len(layouts))
	err := env.ForEach(len(layouts), func(idx int, je *Env) error {
		segregated := layouts[idx]
		clock := sim.NewClock()
		dev, err := flash.New(flash.Config{
			Banks:         banks,
			BlocksPerBank: totalBlocks / banks,
			BlockBytes:    blockBytes,
			Params:        device.IntelFlash,
			Obs:           je.Obs(),
		}, clock, sim.NewEnergyMeter())
		if err != nil {
			return err
		}
		g := sim.NewRNG(seed)
		hist := sim.NewHistogram("read")
		stalled := 0
		bankBytes := dev.Capacity() / int64(banks)

		// Background stream at the same 25KB/s as E7.
		events := sim.NewEventQueue()
		writeBanks := banks
		if segregated {
			writeBanks = 1 // only the last bank takes writes
		}
		bankPtr := make([]int64, banks)
		var logFIFO []int
		programs := 0
		next := 0
		prog := make([]byte, 4096)
		var pump func(now sim.Time)
		pump = func(now sim.Time) {
			b := banks - 1 - (next % writeBanks)
			next++
			addr := int64(b)*bankBytes + bankPtr[b]%bankBytes
			if err := dev.ProgramAsync(addr, prog); err == nil {
				if bankPtr[b]%int64(blockBytes) == 0 {
					logFIFO = append(logFIFO, dev.BlockOf(addr))
				}
				bankPtr[b] += int64(len(prog))
				programs++
				if programs%16 == 0 && len(logFIFO) > 0 {
					victim := logFIFO[0]
					logFIFO = logFIFO[1:]
					_ = dev.EraseAsync(victim)
				}
			}
			events.After(now, 160*sim.Millisecond, pump)
		}
		events.At(0, pump)

		// Foreground reads sample the read-mostly data: in the segregated
		// layout that data occupies the first three banks; in the mixed
		// layout it is spread over all four (and so collides with the
		// write stream).
		readSpan := dev.Capacity()
		if segregated {
			readSpan = bankBytes * int64(banks-1)
		}
		buf := make([]byte, 512)
		for i := 0; i < reads; i++ {
			clock.Advance(sim.Duration(g.Exp(float64(4 * sim.Millisecond))))
			events.RunUntil(clock.Now())
			addr := g.Int63n(readSpan - int64(len(buf)))
			before := dev.Stats().ReadStallNs
			lat, err := dev.Read(addr, buf)
			if err != nil {
				return err
			}
			if dev.Stats().ReadStallNs > before {
				stalled++
			}
			hist.ObserveDuration(lat)
		}
		name := "mixed (writes striped over all banks)"
		if segregated {
			name = "segregated (read-mostly banks + one write bank)"
		}
		rows[idx] = []string{name,
			fmtDur(sim.Duration(hist.Mean())),
			fmtDur(sim.Duration(hist.Quantile(0.99))),
			fmt.Sprintf("%.1f%%", float64(stalled)/reads*100),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	t.addRows(rows)
	t.Notes = append(t.Notes,
		"segregation removes read/write collisions entirely, at the cost of concentrating wear",
		"in the write bank — which the translation layer's wear leveling must then absorb")
	return t, nil
}
