package core

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// parityIDs is the experiment set frozen into the parity goldens: every
// experiment that existed before the storage-engine interface landed, in
// the order RunAll prints them. E15 (the engine head-to-head) is
// deliberately absent — it is the one experiment allowed to behave
// differently per backend.
var parityIDs = []string{
	"e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9",
	"e10", "e11", "e12", "e13", "e14", "e12b",
}

// TestFTLBackendParity pins the refactor invariant the engine interface
// was built under: with the ftl backend (the default), every preexisting
// experiment's stdout is byte-identical to the output committed before
// the interface existed — across seeds and across parallelism. Any drift
// in these bytes means the extraction changed behavior, not just shape.
func TestFTLBackendParity(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full experiment suite six times")
	}
	for _, seed := range []int64{1993, 1, 42} {
		golden, err := os.ReadFile(filepath.Join("testdata", fmt.Sprintf("parity_seed%d.golden", seed)))
		if err != nil {
			t.Fatal(err)
		}
		for _, par := range []int{1, 8} {
			seed, par := seed, par
			t.Run(fmt.Sprintf("seed%d_par%d", seed, par), func(t *testing.T) {
				t.Parallel()
				var buf bytes.Buffer
				for _, id := range parityIDs {
					if err := RunExperimentParallel(&buf, id, seed, par); err != nil {
						t.Fatalf("%s: %v", id, err)
					}
				}
				if !bytes.Equal(buf.Bytes(), golden) {
					t.Fatalf("seed %d par %d: output drifted from the pre-engine golden (%d bytes vs %d); the ftl backend is no longer behavior-identical",
						seed, par, buf.Len(), len(golden))
				}
			})
		}
	}
}

// TestE15DeterministicAcrossParallelism extends the repo's determinism
// guarantee to the head-to-head: the same seed must print the same E15
// table at any parallelism.
func TestE15DeterministicAcrossParallelism(t *testing.T) {
	var seq, par bytes.Buffer
	if err := RunExperimentParallel(&seq, "e15", 7, 1); err != nil {
		t.Fatal(err)
	}
	if err := RunExperimentParallel(&par, "e15", 7, 8); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(seq.Bytes(), par.Bytes()) {
		t.Fatal("e15 output differs between -parallel 1 and 8")
	}
	if seq.Len() == 0 {
		t.Fatal("e15 printed nothing")
	}
}
