package core

import (
	"ssmobile/internal/dram"
	"ssmobile/internal/sim"
)

// BatteryMonitor ties a battery pack to a solid-state system: every Tick
// it drains the pack by the energy the system consumed since the last
// Tick, and when the primary batteries run out — the gradual, predictable
// discharge the paper describes — it triggers one emergency Sync while
// the lithium backup still holds the machine up, so a subsequent complete
// power loss costs nothing.
type BatteryMonitor struct {
	sys  *SolidStateSystem
	pack *dram.Pack

	lastDrained    sim.Energy
	emergencyDone  bool
	emergencyAt    sim.Time
	emergencyError error
}

// AttachBattery wires a pack to the system and returns the monitor. The
// system's Tick path does not know about the monitor; callers invoke
// monitor.Tick alongside (or instead of) the system's.
func AttachBattery(sys *SolidStateSystem, pack *dram.Pack) *BatteryMonitor {
	return &BatteryMonitor{sys: sys, pack: pack, lastDrained: sys.Meter().Total()}
}

// Pack exposes the monitored pack.
func (m *BatteryMonitor) Pack() *dram.Pack { return m.pack }

// EmergencyFlushed reports whether the low-battery flush has run, and
// when.
func (m *BatteryMonitor) EmergencyFlushed() (bool, sim.Time) {
	return m.emergencyDone, m.emergencyAt
}

// Tick settles idle power, drains the pack by the consumption since the
// last call, and performs the emergency flush when the primary empties.
// It returns dram.ErrBatteryDead once both batteries are exhausted (the
// caller decides whether to model the resulting power failure), or any
// error from the emergency Sync.
func (m *BatteryMonitor) Tick() error {
	m.sys.SettleIdle()
	if err := m.sys.Tick(); err != nil {
		return err
	}
	total := m.sys.Meter().Total()
	delta := total - m.lastDrained
	m.lastDrained = total
	drainErr := m.pack.Drain(delta)

	if m.pack.Primary.Empty() && !m.emergencyDone {
		m.emergencyDone = true
		m.emergencyAt = m.sys.Clock().Now()
		if err := m.sys.Sync(); err != nil {
			m.emergencyError = err
			return err
		}
		// The flush itself consumed energy; charge it to the backup so
		// the books stay balanced.
		total = m.sys.Meter().Total()
		if err := m.pack.Drain(total - m.lastDrained); err != nil {
			m.lastDrained = total
			return err
		}
		m.lastDrained = total
	}
	return drainErr
}
