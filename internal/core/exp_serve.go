package core

import (
	"fmt"

	"ssmobile/internal/server"
	"ssmobile/internal/sim"
	"ssmobile/internal/workload"
)

// E12Saturation is the serving-stack saturation study: a population of
// open-loop clients drives the object-storage service (internal/server)
// over the solid-state stack, and the client count × write-ratio grid
// sweeps the offered load through the point where the flash cleaner can
// no longer keep pace. Below the knee, idle-time cleaning and the DRAM
// write buffer hide flash's erase-before-write cycle exactly as the
// paper promises; past it, cleaning lands on the critical path, tail
// latency grows by orders of magnitude, and the admission controller
// starts shedding writes to keep the service responsive.
//
// Everything runs in virtual time in-process, so the table is a pure
// function of the seed: byte-identical across runs and across any
// -parallel level.
func E12Saturation(env *Env, seed int64) (*Table, error) {
	clientCounts := []int{1, 2, 4, 8, 16, 32}
	writeRatios := []float64{0.2, 0.6}

	t := &Table{
		ID: "E12",
		Title: "serving-stack saturation: open-loop clients vs cleaning bandwidth " +
			"(throughput, latency percentiles, load shedding)",
		Headers: []string{"clients", "write mix", "offered op/s", "served op/s",
			"p50", "p95", "p99", "shed", "cleans", "idle cleans"},
	}

	n := len(writeRatios) * len(clientCounts)
	rows := make([][]string, n)
	err := env.ForEach(n, func(i int, je *Env) error {
		w := writeRatios[i/len(clientCounts)]
		clients := clientCounts[i%len(clientCounts)]

		sys, err := NewSolidState(SolidStateConfig{
			DRAMBytes:       8 << 20,
			FlashBytes:      8 << 20,
			BufferBytes:     1 << 20,
			RBoxBytes:       512 << 10,
			IdleCleanBlocks: 24,
			// A short write-back delay keeps the buffer draining between
			// requests; saturation then hinges on flash bandwidth, not on
			// the 30s syncer cadence dwarfing the run.
			WriteBackDelay: 2 * sim.Second,
			Obs:            je.Obs(),
		})
		if err != nil {
			return err
		}
		// Age the device before serving: fill most of the flash with a
		// file and delete it, leaving the card full of dead pages the way
		// months of use would. A fresh card never needs the cleaner inside
		// a short run; an aged one starts at the free-space margin where
		// idle-time cleaning (or the lack of idle time) decides the tail.
		if err := ageDevice(sys, 6<<20); err != nil {
			return err
		}
		srv, err := server.New(server.Backend{
			FS: sys.FS, Storage: sys.Storage, FTL: sys.FTL, Clock: sys.Clock(),
		}, server.Config{Obs: je.Obs()})
		if err != nil {
			return err
		}
		st, err := server.RunWorkload(srv, workload.Config{
			Seed:          seed + int64(i),
			Clients:       clients,
			OpsPerClient:  400,
			Keys:          6,
			ObjectBytes:   32 << 10,
			MinWriteBytes: 4096,
			MaxWriteBytes: 4096,
			Mix: workload.Mix{
				Read:     1 - w,
				Write:    w * 0.90,
				Truncate: w * 0.02,
				Delete:   w * 0.03,
				Sync:     w * 0.05,
			},
			Popularity:    workload.Zipf,
			ZipfSkew:      1.2,
			Arrival:       workload.OpenLoop,
			RatePerClient: 10,
		})
		if err != nil {
			return fmt.Errorf("%d clients, %.0f%% writes: %w", clients, w*100, err)
		}
		fs := sys.FTL.Stats()
		rows[i] = []string{
			fmt.Sprintf("%d", clients),
			fmt.Sprintf("%.0f%%", w*100),
			fmt.Sprintf("%.1f", st.OfferedRate()),
			fmt.Sprintf("%.1f", st.CompletedRate()),
			fmtDur(sim.Duration(st.Lat.Quantile(0.50))),
			fmtDur(sim.Duration(st.Lat.Quantile(0.95))),
			fmtDur(sim.Duration(st.Lat.Quantile(0.99))),
			fmt.Sprintf("%d", st.Shed),
			fmt.Sprintf("%d", fs.Cleans),
			fmt.Sprintf("%d", fs.IdleCleans),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	t.addRows(rows)
	t.Notes = append(t.Notes,
		"the flash card is aged before serving: most blocks hold dead pages, as after months of use;",
		"open-loop arrivals at 10 op/s per client; 4KB writes against 32KB Zipf-popular objects;",
		"below the knee idle cleaning absorbs the erase cost; past it p99 jumps and admission control sheds writes —",
		"the paper's cleaning-bandwidth concern rendered as a serving-stack degradation curve")
	return t, nil
}

// ageDevice simulates a device with history: it streams bytes through
// the stack into flash, syncs, and deletes the file — leaving the card
// populated with dead pages that only the cleaner can reclaim.
func ageDevice(sys *SolidStateSystem, bytes int64) error {
	const chunk = 4096
	if err := sys.FS.Create("/age"); err != nil {
		return err
	}
	buf := make([]byte, chunk)
	for i := range buf {
		buf[i] = byte(i)
	}
	for off := int64(0); off < bytes; off += chunk {
		if _, err := sys.FS.WriteAt("/age", off, buf); err != nil {
			return err
		}
		if err := sys.Storage.Tick(); err != nil {
			return err
		}
	}
	if err := sys.FS.Sync(); err != nil {
		return err
	}
	return sys.FS.Remove("/age")
}
