package core

import (
	"fmt"
	"sort"

	"ssmobile/internal/obs"
	"ssmobile/internal/server"
	"ssmobile/internal/sim"
	"ssmobile/internal/workload"
)

// E12Saturation is the serving-stack saturation study: a population of
// open-loop clients drives the object-storage service (internal/server)
// over the solid-state stack, and the client count × write-ratio grid
// sweeps the offered load through the point where the flash cleaner can
// no longer keep pace. Below the knee, idle-time cleaning and the DRAM
// write buffer hide flash's erase-before-write cycle exactly as the
// paper promises; past it, cleaning lands on the critical path, tail
// latency grows by orders of magnitude, and the admission controller
// starts shedding writes to keep the service responsive.
//
// Everything runs in virtual time in-process, so the table is a pure
// function of the seed: byte-identical across runs and across any
// -parallel level.
func E12Saturation(env *Env, seed int64) (*Table, error) {
	clientCounts := []int{1, 2, 4, 8, 16, 32}
	writeRatios := []float64{0.2, 0.6}

	t := &Table{
		ID: "E12",
		Title: "serving-stack saturation: open-loop clients vs cleaning bandwidth " +
			"(throughput, latency percentiles, load shedding)",
		Headers: []string{"clients", "write mix", "offered op/s", "served op/s",
			"p50", "p95", "p99", "shed", "cleans", "idle cleans"},
	}

	n := len(writeRatios) * len(clientCounts)
	rows := make([][]string, n)
	err := env.ForEach(n, func(i int, je *Env) error {
		w := writeRatios[i/len(clientCounts)]
		clients := clientCounts[i%len(clientCounts)]

		sys, err := NewSolidState(SolidStateConfig{
			DRAMBytes:       8 << 20,
			FlashBytes:      8 << 20,
			BufferBytes:     1 << 20,
			RBoxBytes:       512 << 10,
			IdleCleanBlocks: 24,
			// A short write-back delay keeps the buffer draining between
			// requests; saturation then hinges on flash bandwidth, not on
			// the 30s syncer cadence dwarfing the run.
			WriteBackDelay: 2 * sim.Second,
			Obs:            je.Obs(),
		})
		if err != nil {
			return err
		}
		// Age the device before serving: fill most of the flash with a
		// file and delete it, leaving the card full of dead pages the way
		// months of use would. A fresh card never needs the cleaner inside
		// a short run; an aged one starts at the free-space margin where
		// idle-time cleaning (or the lack of idle time) decides the tail.
		if err := ageDevice(sys, 6<<20); err != nil {
			return err
		}
		srv, err := server.New(server.Backend{
			FS: sys.FS, Storage: sys.Storage, Engine: sys.Engine, Clock: sys.Clock(),
		}, server.Config{Obs: je.Obs()})
		if err != nil {
			return err
		}
		st, err := server.RunWorkload(srv, workload.Config{
			Seed:          seed + int64(i),
			Clients:       clients,
			OpsPerClient:  400,
			Keys:          6,
			ObjectBytes:   32 << 10,
			MinWriteBytes: 4096,
			MaxWriteBytes: 4096,
			Mix: workload.Mix{
				Read:     1 - w,
				Write:    w * 0.90,
				Truncate: w * 0.02,
				Delete:   w * 0.03,
				Sync:     w * 0.05,
			},
			Popularity:    workload.Zipf,
			ZipfSkew:      1.2,
			Arrival:       workload.OpenLoop,
			RatePerClient: 10,
		})
		if err != nil {
			return fmt.Errorf("%d clients, %.0f%% writes: %w", clients, w*100, err)
		}
		fs := sys.FTL.Stats()
		rows[i] = []string{
			fmt.Sprintf("%d", clients),
			fmt.Sprintf("%.0f%%", w*100),
			fmt.Sprintf("%.1f", st.OfferedRate()),
			fmt.Sprintf("%.1f", st.CompletedRate()),
			fmtDur(sim.Duration(st.Lat.Quantile(0.50))),
			fmtDur(sim.Duration(st.Lat.Quantile(0.95))),
			fmtDur(sim.Duration(st.Lat.Quantile(0.99))),
			fmt.Sprintf("%d", st.Shed),
			fmt.Sprintf("%d", fs.Cleans),
			fmt.Sprintf("%d", fs.IdleCleans),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	t.addRows(rows)
	t.Notes = append(t.Notes,
		"the flash card is aged before serving: most blocks hold dead pages, as after months of use;",
		"open-loop arrivals at 10 op/s per client; 4KB writes against 32KB Zipf-popular objects;",
		"below the knee idle cleaning absorbs the erase cost; past it p99 jumps and admission control sheds writes —",
		"the paper's cleaning-bandwidth concern rendered as a serving-stack degradation curve")
	return t, nil
}

// E12bAttribution re-runs points along the E12 saturation curve (plus a
// single-bank cell) with request-scoped tracing on and answers the
// question E12's aggregate percentiles cannot: *where* does the p99 go
// when the service tips past the knee? Every request is served under a
// trace context, the stack's spans self-attribute to latency stages
// (queue, buffer, flush, flash, clean, other — see internal/obs), and
// the table decomposes the tail — the slowest 1% of requests by
// in-service time — into per-stage shares, naming the dominant stall.
// Below the knee the tail is flash programs; past it the dominant
// component flips to cleaner/erase stall — induced cleans and
// background-erase bank-busy time the request had to wait out.
//
// Each cell runs against its own private observer (not the ambient one),
// so the table is byte-identical whether the caller enabled tracing or
// not; the private metrics and spans are merged into the cell's observer
// afterwards for the usual dumps.
func E12bAttribution(env *Env, seed int64) (*Table, error) {
	// Three points along the E12 60%-write saturation curve on the usual
	// 4-bank card, plus the past-the-knee point again on a single-bank
	// card: banking overlaps background erases with useful programs (E7),
	// so the 4-bank rows show the erase stall the banks could NOT hide —
	// with one bank nothing is hidden and the knee is laid bare.
	cells := []struct{ clients, banks int }{
		{2, 4}, {8, 4}, {32, 4}, {32, 1},
	}
	const w = 0.6

	t := &Table{
		ID: "E12b",
		Title: "latency attribution at the saturation knee: where served requests' " +
			"virtual time goes (request-scoped causal tracing)",
		Headers: []string{"clients", "banks", "served op/s", "shed", "p99 total", "p99 queue",
			"buffer", "flush", "flash", "clean", "dominant stall"},
	}

	n := len(cells)
	rows := make([][]string, n)
	err := env.ForEach(n, func(i int, je *Env) error {
		clients, banks := cells[i].clients, cells[i].banks

		// A private observer guarantees a live tracer (contexts need one)
		// and isolates the cell from whatever tracing the caller set up.
		// The ring is sized to hold the whole run, so the per-request
		// reconstruction below sees every span.
		priv := obs.New(1 << 18)
		sys, err := NewSolidState(SolidStateConfig{
			DRAMBytes:       8 << 20,
			FlashBytes:      8 << 20,
			BufferBytes:     1 << 20,
			RBoxBytes:       512 << 10,
			IdleCleanBlocks: 24,
			WriteBackDelay:  2 * sim.Second,
			Banks:           banks,
			Obs:             priv,
		})
		if err != nil {
			return err
		}
		// Aged deeper than E12 (7MB of history vs 6MB): serving starts at
		// the free-block margin, so every flushed block past the first few
		// must clean a victim first — the steady state a long-lived device
		// lives in, rather than E12's gentler entry into it.
		if err := ageDevice(sys, 7<<20); err != nil {
			return err
		}
		srv, err := server.New(server.Backend{
			FS: sys.FS, Storage: sys.Storage, Engine: sys.Engine, Clock: sys.Clock(),
		}, server.Config{Obs: priv})
		if err != nil {
			return err
		}
		// Same client grid, mix, and rates as the E12 60%-write rows, so
		// the two tables read side by side.
		st, err := server.RunWorkload(srv, workload.Config{
			Seed:          seed + int64(i),
			Clients:       clients,
			OpsPerClient:  400,
			Keys:          6,
			ObjectBytes:   32 << 10,
			MinWriteBytes: 4096,
			MaxWriteBytes: 4096,
			Mix: workload.Mix{
				Read:     1 - w,
				Write:    w * 0.90,
				Truncate: w * 0.02,
				Delete:   w * 0.03,
				Sync:     w * 0.05,
			},
			Popularity:    workload.Zipf,
			ZipfSkew:      1.2,
			Arrival:       workload.OpenLoop,
			RatePerClient: 10,
		})
		if err != nil {
			return fmt.Errorf("%d clients: %w", clients, err)
		}

		// Reconstruct every request's breakdown from the recorded span
		// trees (the same reconstruction `ssmtrace attribute` performs on
		// a trace file) and aggregate the p99 tail: the slowest 1% of
		// requests by in-service time. Tail composition rather than
		// whole-run shares or per-stage p99s because the stall is
		// concentrated — past the knee a handful of requests absorb the
		// cleaner's whole catch-up debt while everyone else queues behind
		// them, so averages and single-stage percentiles both dilute it.
		// Queue is excluded from the composition (under open-loop
		// overload the inherited backlog trivially dwarfs service); the
		// question is what the service itself was doing at the tail.
		reqs, _ := obs.Attribute(priv.Tracer.Spans())
		service := func(b obs.Breakdown) sim.Duration { return b.Total() - b.Queue }
		sort.SliceStable(reqs, func(a, b int) bool {
			if d1, d2 := service(reqs[a].Breakdown), service(reqs[b].Breakdown); d1 != d2 {
				return d1 > d2
			}
			return reqs[a].Root.Start < reqs[b].Root.Start
		})
		tailN := (len(reqs) + 99) / 100
		var tail obs.Breakdown
		for _, req := range reqs[:tailN] {
			tail.Add(req.Breakdown)
		}
		total := service(tail)
		share := func(stage string) string {
			if total <= 0 {
				return "-"
			}
			return fmt.Sprintf("%.1f%%", 100*float64(tail.Stage(stage))/float64(total))
		}
		serviceStages := []string{obs.StageBuffer, obs.StageFlush, obs.StageFlash, obs.StageClean, obs.StageOther}
		dominant, domDur := "", sim.Duration(0)
		for _, stage := range serviceStages {
			if d := tail.Stage(stage); d > domDur {
				dominant, domDur = stage, d
			}
		}
		rows[i] = []string{
			fmt.Sprintf("%d", clients),
			fmt.Sprintf("%d", banks),
			fmt.Sprintf("%.1f", st.CompletedRate()),
			fmt.Sprintf("%d", st.Shed),
			fmtDur(sim.Duration(st.Lat.Quantile(0.99))),
			fmtDur(sim.Duration(srv.BreakdownSim(obs.StageQueue).Quantile(0.99))),
			share(obs.StageBuffer),
			share(obs.StageFlush),
			share(obs.StageFlash),
			share(obs.StageClean),
			dominant,
		}
		je.Obs().Merge(priv)
		return nil
	})
	if err != nil {
		return nil, err
	}
	t.addRows(rows)
	t.Notes = append(t.Notes,
		"same workload grid as the 60%-write rows of E12, on a card aged to its free-block margin;",
		"per-request span trees attribute virtual time to stages: queue (admission backlog), buffer",
		"(DRAM), flush (buffer-eviction residue), flash (programs/reads), clean (induced cleaner",
		"passes and erase-stall time paid waiting out a background erase's bank-busy window);",
		"stage columns decompose the p99 tail — the slowest 1% of requests by in-service time;",
		"below the knee the tail is flash programs; past it the dominant component flips to clean:",
		"the erase cost the paper's idle-time cleaning was hiding has landed on the request path",
		"(starker still with a single bank, where no parallelism overlaps the erase)")
	return t, nil
}

// ageDevice simulates a device with history: it streams bytes through
// the stack into flash, syncs, and deletes the file — leaving the card
// populated with dead pages that only the cleaner can reclaim.
func ageDevice(sys *SolidStateSystem, bytes int64) error {
	const chunk = 4096
	if err := sys.FS.Create("/age"); err != nil {
		return err
	}
	buf := make([]byte, chunk)
	for i := range buf {
		buf[i] = byte(i)
	}
	for off := int64(0); off < bytes; off += chunk {
		if _, err := sys.FS.WriteAt("/age", off, buf); err != nil {
			return err
		}
		if err := sys.Storage.Tick(); err != nil {
			return err
		}
	}
	if err := sys.FS.Sync(); err != nil {
		return err
	}
	return sys.FS.Remove("/age")
}
