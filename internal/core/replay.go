package core

import (
	"fmt"

	"ssmobile/internal/obs"
	"ssmobile/internal/sim"
	"ssmobile/internal/trace"
)

// ReplayStats summarises one trace replay on a System.
type ReplayStats struct {
	Ops           int
	ReadLatency   *sim.Histogram
	WriteLatency  *sim.Histogram
	CreateLatency *sim.Histogram
	RemoveLatency *sim.Histogram
	Elapsed       sim.Duration // virtual time from first to last op
	EnergyTotal   sim.Energy
	BytesRead     int64
	BytesWritten  int64
}

// fileName renders the stable name a trace file id maps to.
func fileName(id trace.FileID) string { return fmt.Sprintf("f%d", uint64(id)) }

// payload fills buf with a cheap deterministic pattern so flash programs
// see realistic mixed bits.
func payload(buf []byte, file trace.FileID, off int64) {
	seed := byte(uint64(file)*131 + uint64(off)*31)
	for i := range buf {
		buf[i] = seed + byte(i)
	}
}

// Replay runs the trace against the system, advancing the virtual clock
// to each operation's timestamp and pumping the write-back daemons along
// the way. It does not Sync at the end; callers decide whether the
// experiment's accounting should include a final flush.
//
// Each operation's latency lands both in the returned per-replay
// histograms and in the default observer's op_latency_ns aggregates, and
// each op is traced as a span of layer "replay".
func Replay(sys System, tr *trace.Trace) (ReplayStats, error) {
	return ReplayObs(obs.Default(), sys, tr)
}

// ReplayObs is Replay recording telemetry into an explicit observer
// instead of the process default — the form the parallel experiment
// engine uses, so concurrent replays never interleave their spans.
func ReplayObs(o *obs.Observer, sys System, tr *trace.Trace) (ReplayStats, error) {
	hist := func(op string) *obs.Histogram {
		return o.Histogram("op_latency_ns", obs.Labels{"layer": "replay", "op": op})
	}
	readH := hist("read")
	writeH := hist("write")
	createH := hist("create")
	removeH := hist("remove")
	st := ReplayStats{
		ReadLatency:   readH.Sim(),
		WriteLatency:  writeH.Sim(),
		CreateLatency: createH.Sim(),
		RemoveLatency: removeH.Sim(),
	}
	clock := sys.Clock()
	meter := sys.Meter()
	start := clock.Now()
	scratch := make([]byte, 256*1024)
	for _, op := range tr.Ops {
		if at := start.Add(sim.Duration(op.Time)); at > clock.Now() {
			clock.AdvanceTo(at)
		}
		if err := sys.Tick(); err != nil {
			return st, fmt.Errorf("tick at op %d: %w", st.Ops, err)
		}
		opStart := clock.Now()
		name := fileName(op.File)
		switch op.Kind {
		case trace.Create:
			sp := o.Span(clock, meter, "replay", "create")
			if err := sys.Create(name); err != nil {
				sp.End(0, err)
				return st, fmt.Errorf("create %s: %w", name, err)
			}
			sp.End(0, nil)
			createH.ObserveDuration(clock.Now().Sub(opStart))
		case trace.Write:
			buf := scratch[:op.Size]
			payload(buf, op.File, op.Offset)
			sp := o.Span(clock, meter, "replay", "write")
			if _, err := sys.WriteAt(name, op.Offset, buf); err != nil {
				sp.End(0, err)
				return st, fmt.Errorf("write %s: %w", name, err)
			}
			sp.End(int64(op.Size), nil)
			st.BytesWritten += int64(op.Size)
			writeH.ObserveDuration(clock.Now().Sub(opStart))
		case trace.Read:
			buf := scratch[:op.Size]
			sp := o.Span(clock, meter, "replay", "read")
			if _, err := sys.ReadAt(name, op.Offset, buf); err != nil {
				sp.End(0, err)
				return st, fmt.Errorf("read %s: %w", name, err)
			}
			sp.End(int64(op.Size), nil)
			st.BytesRead += int64(op.Size)
			readH.ObserveDuration(clock.Now().Sub(opStart))
		case trace.Delete:
			sp := o.Span(clock, meter, "replay", "remove")
			if err := sys.Remove(name); err != nil {
				sp.End(0, err)
				return st, fmt.Errorf("remove %s: %w", name, err)
			}
			sp.End(0, nil)
			removeH.ObserveDuration(clock.Now().Sub(opStart))
		}
		st.Ops++
	}
	sys.SettleIdle()
	st.Elapsed = clock.Now().Sub(start)
	st.EnergyTotal = sys.Meter().Total()
	return st, nil
}
