package core

import (
	"fmt"

	"ssmobile/internal/sim"
	"ssmobile/internal/trace"
)

// ReplayStats summarises one trace replay on a System.
type ReplayStats struct {
	Ops           int
	ReadLatency   *sim.Histogram
	WriteLatency  *sim.Histogram
	CreateLatency *sim.Histogram
	RemoveLatency *sim.Histogram
	Elapsed       sim.Duration // virtual time from first to last op
	EnergyTotal   sim.Energy
	BytesRead     int64
	BytesWritten  int64
}

// fileName renders the stable name a trace file id maps to.
func fileName(id trace.FileID) string { return fmt.Sprintf("f%d", uint64(id)) }

// payload fills buf with a cheap deterministic pattern so flash programs
// see realistic mixed bits.
func payload(buf []byte, file trace.FileID, off int64) {
	seed := byte(uint64(file)*131 + uint64(off)*31)
	for i := range buf {
		buf[i] = seed + byte(i)
	}
}

// Replay runs the trace against the system, advancing the virtual clock
// to each operation's timestamp and pumping the write-back daemons along
// the way. It does not Sync at the end; callers decide whether the
// experiment's accounting should include a final flush.
func Replay(sys System, tr *trace.Trace) (ReplayStats, error) {
	st := ReplayStats{
		ReadLatency:   sim.NewHistogram("read-ns"),
		WriteLatency:  sim.NewHistogram("write-ns"),
		CreateLatency: sim.NewHistogram("create-ns"),
		RemoveLatency: sim.NewHistogram("remove-ns"),
	}
	clock := sys.Clock()
	start := clock.Now()
	scratch := make([]byte, 256*1024)
	for _, op := range tr.Ops {
		if at := start.Add(sim.Duration(op.Time)); at > clock.Now() {
			clock.AdvanceTo(at)
		}
		if err := sys.Tick(); err != nil {
			return st, fmt.Errorf("tick at op %d: %w", st.Ops, err)
		}
		opStart := clock.Now()
		name := fileName(op.File)
		switch op.Kind {
		case trace.Create:
			if err := sys.Create(name); err != nil {
				return st, fmt.Errorf("create %s: %w", name, err)
			}
			st.CreateLatency.ObserveDuration(clock.Now().Sub(opStart))
		case trace.Write:
			buf := scratch[:op.Size]
			payload(buf, op.File, op.Offset)
			if _, err := sys.WriteAt(name, op.Offset, buf); err != nil {
				return st, fmt.Errorf("write %s: %w", name, err)
			}
			st.BytesWritten += int64(op.Size)
			st.WriteLatency.ObserveDuration(clock.Now().Sub(opStart))
		case trace.Read:
			buf := scratch[:op.Size]
			if _, err := sys.ReadAt(name, op.Offset, buf); err != nil {
				return st, fmt.Errorf("read %s: %w", name, err)
			}
			st.BytesRead += int64(op.Size)
			st.ReadLatency.ObserveDuration(clock.Now().Sub(opStart))
		case trace.Delete:
			if err := sys.Remove(name); err != nil {
				return st, fmt.Errorf("remove %s: %w", name, err)
			}
			st.RemoveLatency.ObserveDuration(clock.Now().Sub(opStart))
		}
		st.Ops++
	}
	sys.SettleIdle()
	st.Elapsed = clock.Now().Sub(start)
	st.EnergyTotal = sys.Meter().Total()
	return st, nil
}
