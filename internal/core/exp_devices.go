package core

import (
	"fmt"

	"ssmobile/internal/device"
	"ssmobile/internal/disk"
	"ssmobile/internal/dram"
	"ssmobile/internal/flash"
	"ssmobile/internal/sim"
)

// E1DeviceComparison regenerates the paper's §2 comparison of DRAM, flash
// and disk on performance, cost, density, power and endurance. Latencies
// are measured on the simulated devices (8KB random transfer, plus a
// 1-byte random access), not just quoted from the catalog, so the device
// models themselves are what is being reported.
func E1DeviceComparison(env *Env) (*Table, error) {
	t := &Table{
		ID:    "E1",
		Title: "storage technologies for small mobile computers (1993 parts)",
		Headers: []string{"device", "class", "read 8KB", "write 8KB", "read 1B",
			"erase", "$/MB", "MB/in3", "power", "endurance"},
	}
	const n = 8192
	for _, p := range device.Catalog() {
		clock := sim.NewClock()
		meter := sim.NewEnergyMeter()
		var read8k, write8k, read1 sim.Duration
		var eraseStr string

		switch p.Class {
		case device.DRAM:
			d, err := dram.New(dram.Config{CapacityBytes: 20 << 20, Params: p, Obs: env.Obs()}, clock, meter)
			if err != nil {
				return nil, err
			}
			if write8k, err = d.Write(1<<20, make([]byte, n)); err != nil {
				return nil, err
			}
			if read8k, err = d.Read(1<<20, make([]byte, n)); err != nil {
				return nil, err
			}
			if read1, err = d.Read(5, make([]byte, 1)); err != nil {
				return nil, err
			}
			eraseStr = "-"

		case device.Flash:
			blockBytes := p.EraseBlockBytes
			d, err := flash.New(flash.Config{
				Banks: 1, BlocksPerBank: (20 << 20) / blockBytes, BlockBytes: blockBytes, Params: p,
				Obs: env.Obs(),
			}, clock, meter)
			if err != nil {
				return nil, err
			}
			if write8k, err = writeFlashSpan(d, 1<<20, n); err != nil {
				return nil, err
			}
			if read8k, err = d.Read(1<<20, make([]byte, n)); err != nil {
				return nil, err
			}
			if read1, err = d.Read(5, make([]byte, 1)); err != nil {
				return nil, err
			}
			er, err := d.Erase(0)
			if err != nil {
				return nil, err
			}
			eraseStr = fmtDur(er) + fmt.Sprintf("/%s", fmtBytes(int64(blockBytes)))

		case device.Disk:
			d, err := disk.New(disk.Config{CapacityBytes: int64(p.CapacityMB) * (1 << 20), Params: p, Obs: env.Obs()}, clock, meter)
			if err != nil {
				return nil, err
			}
			// Random single-sector access first to charge a seek, then
			// measure the representative accesses from mid-disk.
			if _, err := d.Read(0, make([]byte, 512)); err != nil {
				return nil, err
			}
			if write8k, err = d.Write(d.Capacity()/2, make([]byte, n)); err != nil {
				return nil, err
			}
			if read8k, err = d.Read(0, make([]byte, n)); err != nil {
				return nil, err
			}
			if read1, err = d.Read(d.Capacity()/3, make([]byte, 1)); err != nil {
				return nil, err
			}
			eraseStr = "-"
		}

		power := fmt.Sprintf("%.0f mW", p.ActiveMilliwattsPerMB*p.CapacityMB)
		if p.Class == device.Disk {
			power = fmt.Sprintf("%.0f mW", p.ActiveMilliwatts)
		}
		endurance := "-"
		if p.EnduranceCycles > 0 {
			endurance = fmt.Sprintf("%dk cycles", p.EnduranceCycles/1000)
		}
		t.AddRow(p.Name, p.Class.String(), fmtDur(read8k), fmtDur(write8k), fmtDur(read1),
			eraseStr, fmt.Sprintf("$%.0f", p.DollarsPerMB), fmt.Sprintf("%.0f", p.MBPerCubicInch),
			power, endurance)
	}
	t.Notes = append(t.Notes,
		"paper claims reproduced: DRAM fastest; flash reads near DRAM, writes ~100x reads;",
		"disk slower than flash but cheapest per MB; flash lowest power; 100k-cycle endurance")
	return t, nil
}

// writeFlashSpan programs n bytes starting at addr, splitting at erase
// block boundaries so no program spans banks.
func writeFlashSpan(d *flash.Device, addr int64, n int) (sim.Duration, error) {
	var total sim.Duration
	data := make([]byte, n)
	for len(data) > 0 {
		chunk := d.BlockBytes() - int(addr)%d.BlockBytes()
		if chunk > len(data) {
			chunk = len(data)
		}
		lat, err := d.Program(addr, data[:chunk])
		if err != nil {
			return total, err
		}
		total += lat
		addr += int64(chunk)
		data = data[chunk:]
	}
	return total, nil
}

func fmtDur(d sim.Duration) string {
	switch {
	case d >= sim.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= sim.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d)/float64(sim.Millisecond))
	case d >= sim.Microsecond:
		return fmt.Sprintf("%.1fus", float64(d)/float64(sim.Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(d))
	}
}

func fmtBytes(n int64) string {
	switch {
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%dMB", n>>20)
	case n >= 1<<10:
		return fmt.Sprintf("%dKB", n>>10)
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// E1BatteryLife projects battery life for a 16MB-DRAM machine whose
// secondary storage is a 20MB flash card versus a 20MB KittyHawk drive,
// under a mobile duty cycle (5% active, 95% idle). This is the paper's
// "flash memory offers significant power savings over disk drives, thus
// prolonging battery life" made quantitative, including the disk's
// spin-down option.
func E1BatteryLife() (*Table, error) {
	const (
		dramMB     = 16.0
		capacityMB = 20.0
		activeFrac = 0.05
		packWh     = 10.0
	)
	dramActive := device.NECDram.ActiveMilliwattsPerMB * dramMB
	dramIdle := device.NECDram.IdleMilliwattsPerMB * dramMB

	t := &Table{
		ID:      "E1b",
		Title:   "battery life at a 5% duty cycle (16MB DRAM + 20MB secondary, 10Wh pack)",
		Headers: []string{"secondary storage", "active draw", "idle draw", "average", "battery life"},
	}
	addRow := func(name string, active, idle float64) {
		// The DRAM is active alongside the storage when the machine is.
		act := active + dramActive
		idl := idle + dramIdle
		avg := activeFrac*act + (1-activeFrac)*idl
		hours := packWh * 3600 * 1000 / avg / 3600
		t.AddRow(name,
			fmt.Sprintf("%.0f mW", act),
			fmt.Sprintf("%.1f mW", idl),
			fmt.Sprintf("%.0f mW", avg),
			fmt.Sprintf("%.0f hours", hours))
	}
	flash := device.IntelFlash
	addRow("flash card", flash.ActiveMilliwattsPerMB*capacityMB, flash.IdleMilliwattsPerMB*capacityMB)
	kh := device.KittyHawk
	addRow("disk, spun down when idle", kh.ActiveMilliwatts, kh.SleepMilliwatts)
	addRow("disk, always spinning", kh.ActiveMilliwatts, kh.IdleMilliwatts)
	t.Notes = append(t.Notes,
		"spinning the disk down closes much of the gap but costs 1s spin-ups on every wake (see E5);",
		"at mobile duty cycles the idle column decides battery life")
	return t, nil
}

// E1FullStack measures the same write/sync/read work through the two
// fully assembled organisations, so the raw-device comparison of E1 is
// also shown in context: the solid-state path (file system → storage
// manager → FTL → flash) against the conventional path (file system →
// buffer cache → disk). Every layer's counters and op spans from this
// run land in the run's observer, which is what makes `ssmsim
// -trace-out run.trace e1` produce a trace covering flash, FTL and
// buffer-cache operations.
func E1FullStack(env *Env) (*Table, error) {
	t := &Table{
		ID:      "E1c",
		Title:   "devices in context: 1MB written/synced/read through each full stack (4KB ops)",
		Headers: []string{"organisation", "write 1MB", "sync", "read 1MB", "energy"},
	}
	const (
		blockBytes = 4096
		totalBytes = 1 << 20
	)
	run := func(sys System) error {
		clock, meter := sys.Clock(), sys.Meter()
		if err := sys.Create("ctx"); err != nil {
			return err
		}
		buf := make([]byte, blockBytes)
		start := clock.Now()
		for off := int64(0); off < totalBytes; off += blockBytes {
			payload(buf, 1, off)
			if _, err := sys.WriteAt("ctx", off, buf); err != nil {
				return err
			}
		}
		writeLat := clock.Now().Sub(start)
		start = clock.Now()
		if err := sys.Sync(); err != nil {
			return err
		}
		syncLat := clock.Now().Sub(start)
		start = clock.Now()
		for off := int64(0); off < totalBytes; off += blockBytes {
			if _, err := sys.ReadAt("ctx", off, buf); err != nil {
				return err
			}
		}
		readLat := clock.Now().Sub(start)
		sys.SettleIdle()
		t.AddRow(sys.Name(), fmtDur(writeLat), fmtDur(syncLat), fmtDur(readLat), meter.Total().String())
		return nil
	}
	ss, err := NewSolidState(SolidStateConfig{DRAMBytes: 8 << 20, FlashBytes: 8 << 20, Obs: env.Obs()})
	if err != nil {
		return nil, err
	}
	if err := run(ss); err != nil {
		return nil, err
	}
	dk, err := NewDisk(DiskConfig{DRAMBytes: 8 << 20, DiskBytes: 20 << 20, Obs: env.Obs()})
	if err != nil {
		return nil, err
	}
	if err := run(dk); err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		"the solid-state write path lands in battery-backed DRAM; sync pays the flash programs",
		"the disk path pays mechanical latency on cache misses and at sync")
	return t, nil
}

// E2CostCrossover regenerates the paper's technology-trend claims: DRAM
// cost approaching disk, DRAM density passing disk, and the Intel
// projection that a 40MB flash configuration matches disk cost by ~1996.
func E2CostCrossover() (*Table, error) {
	tr := device.PaperTrend()
	t := &Table{
		ID:    "E2",
		Title: "technology trends 1993-2000 (40%/yr memory vs 25%/yr disk, flash learning curve)",
		Headers: []string{"year", "DRAM $/MB", "flash $/MB", "disk $/MB",
			"40MB flash $", "40MB disk $", "DRAM MB/in3", "disk MB/in3"},
	}
	for year := 1993; year <= 2000; year++ {
		t.AddRow(
			fmt.Sprint(year),
			fmt.Sprintf("%.2f", tr.DollarsPerMB(device.NECDram, year)),
			fmt.Sprintf("%.2f", tr.DollarsPerMB(device.IntelFlash, year)),
			fmt.Sprintf("%.2f", tr.DollarsPerMB(device.KittyHawk, year)),
			fmt.Sprintf("%.0f", tr.ConfigurationCost(device.IntelFlash, 40, year)),
			fmt.Sprintf("%.0f", tr.ConfigurationCost(device.KittyHawk, 40, year)),
			fmt.Sprintf("%.0f", tr.MBPerCubicInch(device.NECDram, year)),
			fmt.Sprintf("%.0f", tr.MBPerCubicInch(device.KittyHawk, year)),
		)
	}
	if y, ok := tr.CostCrossoverYear(device.IntelFlash, device.KittyHawk, 40, 2010); ok {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"40MB flash/disk cost crossover: %d (paper, citing Intel: 'by the year 1996')", y))
	}
	if y, ok := tr.DensityCrossoverYear(device.NECDram, device.KittyHawk, 2010); ok {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"DRAM density passes the KittyHawk in %d ('will shortly exceed that of disk')", y))
	}
	return t, nil
}
