package core_test

import (
	"fmt"
	"log"

	"ssmobile/internal/core"
)

// Example shows the minimal life of the solid-state organisation: write a
// file into battery-backed DRAM, sync it to flash, and read it back in
// place.
func Example() {
	sys, err := core.NewSolidState(core.SolidStateConfig{
		DRAMBytes:  8 << 20,
		FlashBytes: 32 << 20,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.Create("notes"); err != nil {
		log.Fatal(err)
	}
	if _, err := sys.WriteAt("notes", 0, []byte("no disk required")); err != nil {
		log.Fatal(err)
	}
	if err := sys.Sync(); err != nil {
		log.Fatal(err)
	}
	buf := make([]byte, 16)
	if _, err := sys.ReadAt("notes", 0, buf); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s\n", buf)
	fmt.Printf("dirty blocks left in DRAM: %d\n", sys.Storage.Stats().DRAMPagesInUse)
	// Output:
	// no disk required
	// dirty blocks left in DRAM: 0
}

// ExampleSolidStateSystem_RemountAfterPowerFailure shows the honest
// power-failure path: nothing survives in memory, and the system comes
// back from the flash device alone.
func ExampleSolidStateSystem_RemountAfterPowerFailure() {
	sys, err := core.NewSolidState(core.SolidStateConfig{
		DRAMBytes: 8 << 20, FlashBytes: 32 << 20,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.FS.WriteFile("/saved", []byte("checkpointed")); err != nil {
		log.Fatal(err)
	}
	if err := sys.Sync(); err != nil {
		log.Fatal(err)
	}
	if err := sys.FS.WriteFile("/unsaved", []byte("still in DRAM")); err != nil {
		log.Fatal(err)
	}

	sys.DRAM.PowerFail()
	recovered, err := sys.RemountAfterPowerFailure()
	if err != nil {
		log.Fatal(err)
	}
	data, _ := recovered.FS.ReadFile("/saved")
	fmt.Printf("saved: %s\n", data)
	fmt.Printf("unsaved exists: %v\n", recovered.FS.Exists("/unsaved"))
	// Output:
	// saved: checkpointed
	// unsaved exists: false
}
