package core

import (
	"fmt"

	"ssmobile/internal/crashtest"
	"ssmobile/internal/flash"
	"ssmobile/internal/obs"
)

// E11PowerCuts reproduces the stability claim of §3.1/§4 at its
// sharpest: not only quiescent power failures (E10) but a cut at every
// destructive flash operation of a mixed workload — before it, tearing
// it mid-flight, and just after it completes. For each fate the
// crash-point enumeration replays the reference workload, cuts power at
// every program, out-of-band record program, and erase in turn, remounts
// by device scan, and checks structural invariants plus exact data
// guarantees (synced blocks intact, in-flight blocks old-or-new, no
// fabricated images). The table reports the sweep per fate; a clean
// violations column is the experiment's result.
func E11PowerCuts(env *Env) (*Table, error) {
	t := &Table{
		ID:    "E11",
		Title: "recovery under power cuts (§3.1, §4): crash-point enumeration over every device op",
		Headers: []string{"cut", "crash points", "violations",
			"torn records", "re-erased blocks", "retired blocks"},
	}
	fates := []struct {
		name string
		fate flash.Outcome
	}{
		{"before op", flash.CutBefore},
		{"mid op (torn)", flash.CutDuring},
		{"after op", flash.CutAfter},
	}
	results := make([]*crashtest.Result, len(fates))
	err := env.ForEach(len(fates), func(i int, je *Env) error {
		res, err := crashtest.Enumerate(crashtest.Config{
			Fates: []flash.Outcome{fates[i].fate},
		}, crashtest.DefaultScript())
		if err != nil {
			return fmt.Errorf("enumerating %s cuts: %w", fates[i].name, err)
		}
		results[i] = res
		return nil
	})
	if err != nil {
		return nil, err
	}

	o := env.Obs()
	totalViolations := 0
	var ops int64
	for i, f := range fates {
		res := results[i]
		ops = res.DestructiveOps
		totalViolations += len(res.Violations)
		t.AddRow(f.name, res.PointsRun, len(res.Violations),
			res.CorruptRecords, res.ReErasedBlocks, res.RetiredBlocks)
		labels := obs.Labels{"exp": "e11", "cut": f.name}
		o.Counter("crash_points_run", labels).Add(int64(res.PointsRun))
		o.Counter("crash_violations", labels).Add(int64(len(res.Violations)))
		o.Counter("crash_torn_records", labels).Add(res.CorruptRecords)
		o.Counter("crash_reerased_blocks", labels).Add(res.ReErasedBlocks)
	}

	t.Notes = append(t.Notes,
		fmt.Sprintf("the reference workload performs %d destructive flash ops; power is cut at each one in turn", ops),
		"every recovery remounts by out-of-band scan with nothing surviving in DRAM, then passes invariant, data, and usability checks;",
		"torn out-of-band records are rejected by checksum and the superseded version wins; torn data residue is re-erased on mount")
	if totalViolations > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf("WARNING: %d crash points violated recovery guarantees", totalViolations))
		for i, f := range fates {
			for _, v := range results[i].Violations {
				t.Notes = append(t.Notes, fmt.Sprintf("  %s: %s", f.name, v))
			}
		}
	}
	return t, nil
}
