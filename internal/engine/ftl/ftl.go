// Package engineftl adapts the flash translation layer (internal/ftl) to
// the storage-engine interface. The FTL is embedded, so every method the
// interface shares with *ftl.FTL devirtualizes to the original code with
// zero wrapping cost — the adapter only names the backend, translates the
// stats structs, and supplies the no-op Sync (the FTL programs
// synchronously).
package engineftl

import (
	"ssmobile/internal/engine"
	"ssmobile/internal/flash"
	"ssmobile/internal/ftl"
	"ssmobile/internal/sim"
)

// Engine wraps one *ftl.FTL as a storage engine.
type Engine struct {
	*ftl.FTL
}

var _ engine.Engine = (*Engine)(nil)

// Wrap adapts an existing FTL (whatever policy it was built with).
func Wrap(f *ftl.FTL) *Engine { return &Engine{FTL: f} }

// New builds a fresh FTL over dev and wraps it.
func New(dev *flash.Device, clock *sim.Clock, cfg ftl.Config) (*Engine, error) {
	f, err := ftl.New(dev, clock, cfg)
	if err != nil {
		return nil, err
	}
	return Wrap(f), nil
}

// Mount rebuilds an FTL from a device that already holds data — the
// power-failure recovery path — and wraps it.
func Mount(dev *flash.Device, clock *sim.Clock, cfg ftl.Config) (*Engine, error) {
	f, err := ftl.Mount(dev, clock, cfg)
	if err != nil {
		return nil, err
	}
	return Wrap(f), nil
}

// Name identifies the backend.
func (e *Engine) Name() string { return "ftl" }

// Sync is a no-op: the FTL programs every page synchronously.
func (e *Engine) Sync() error { return nil }

// PersistsMapping reports whether OOB records make the mapping
// crash-recoverable.
func (e *Engine) PersistsMapping() bool { return e.FTL.Config().PersistMapping }

// Stats translates the FTL counters into the engine stats surface.
func (e *Engine) Stats() engine.Stats {
	fs := e.FTL.Stats()
	ds := e.FTL.Device().Stats()
	margin := 0.0
	if nb := e.FTL.Device().NumBlocks(); nb > 0 {
		margin = float64(e.FTL.FreeBlocks()) / float64(nb)
	}
	return engine.Stats{
		HostWrites:           fs.HostWrites,
		HostReads:            fs.HostReads,
		HostBytesWritten:     fs.HostBytesWritten,
		FlashBytesProgrammed: ds.BytesProgrammed,
		FlashReads:           ds.Reads,
		Erases:               ds.Erases,
		Cleans:               fs.Cleans,
		CopiedPages:          fs.CopiedPages,
		IdleCleans:           fs.IdleCleans,
		WriteAmplification:   fs.WriteAmplification,
		FreeBlocks:           e.FTL.FreeBlocks(),
		FreeBlockMargin:      margin,
		RetiredBlocks:        fs.RetiredBlocks,
	}
}

// MountStats reports what the FTL's mount scan found.
func (e *Engine) MountStats() engine.MountStats {
	ms := e.FTL.MountStats()
	return engine.MountStats{
		CorruptRecords: ms.CorruptRecords,
		ReErasedBlocks: ms.ReErasedBlocks,
		RetiredBlocks:  ms.RetiredBlocks,
	}
}
