// Package pdl implements a page-differential-logging storage engine
// (after Kim, Whang & Song): an overwritten page persists only the diff
// against its current image, as a small delta record appended to a log
// unit, instead of re-programming the whole page. The paper's trace
// model says most writes are overwrites of recently-written data, so
// diffs slash flash bytes programmed — and with them write amplification
// and erase load — exactly where the FTL cleaner collapses past the
// saturation knee.
//
// Layout. Blocks are single-purpose: a block holds either base pages
// (one full page image per unit, claimed by a CRC-folded spare record
// carrying seq/lpn/tag, like the FTL's OOB records) or delta log units
// (the unit's spare record marks it as a log; delta records pack
// sequentially into its data area, each CRC-folded over a header of
// seq/lpn/offset/length plus the payload). One monotone sequence number
// orders every base and delta program, so Mount can rebuild each page by
// scanning the device: newest base claim wins, then every delta with a
// newer sequence applies in order.
//
// Reads merge on the fly: base page plus chained deltas. The chain is
// bounded — once it reaches MaxChain records, or a diff grows past
// PromoteBytes, the page promotes to a fresh base write and the chain
// dies. Cleaning is crash-safe by construction: a page is only ever
// moved by promoting it (a fresh base supersedes everything older
// atomically) or by folding its whole chain into one delta record whose
// content equals the chain's net effect (reapplying surviving old
// records before it cannot change the outcome).
package pdl

import (
	"errors"
	"fmt"

	"ssmobile/internal/engine"
	"ssmobile/internal/flash"
	"ssmobile/internal/obs"
	"ssmobile/internal/sim"
)

// Sentinel errors.
var (
	// ErrNoSpace reports that every block is live and nothing can be
	// reclaimed.
	ErrNoSpace = errors.New("pdl: no space")
	// ErrBadPage reports an out-of-range logical page number.
	ErrBadPage = errors.New("pdl: logical page out of range")
	// ErrBadSize reports data whose length is not exactly one page.
	ErrBadSize = errors.New("pdl: data must be exactly one page")
)

// Config parameterises the engine.
type Config struct {
	// PageBytes is the mapping granularity; it must divide the device's
	// erase-block size and equal the device's spare-unit size.
	PageBytes int
	// ReserveBlocks is the cleaning headroom: cleaning runs whenever
	// the free-block count is at or below this (minimum 1). The reserve
	// plus the two log heads (base and delta) subtract from the logical
	// capacity, matching the FTL's formula so both engines expose the
	// same logical space over the same device.
	ReserveBlocks int
	// MaxChain bounds a page's delta chain; the next overwrite past the
	// bound promotes the page to a fresh base write (default 8).
	MaxChain int
	// PromoteBytes is the diff size at which writing a delta stops
	// paying: diffs at or above it write a fresh base instead
	// (default PageBytes/2).
	PromoteBytes int
	// IdleCleanThreshold lets CleanIdle reclaim during idle periods
	// until this many blocks are free. Zero disables idle cleaning.
	IdleCleanThreshold int
	// BackgroundErase issues erases asynchronously so the writer does
	// not stall for them.
	BackgroundErase bool
	// Obs receives the engine's metrics and op spans; nil falls back to
	// obs.Default().
	Obs *obs.Observer
}

type blockKind uint8

const (
	blockFree blockKind = iota
	blockBase
	blockDelta
)

type blockInfo struct {
	kind    blockKind
	active  bool // current base or delta log head
	retired bool
	// unitsUsed counts page-sized units consumed (base pages written,
	// or delta units opened).
	unitsUsed int
	// appended is the record bytes written into a delta block's units.
	appended int64
	// live* track what cleaning would have to move.
	liveBases      int
	liveDeltas     int
	liveDeltaBytes int64
}

// deltaRef locates one live delta record of a page's chain.
type deltaRef struct {
	seq  uint64
	addr int64 // device byte address of the record
	off  int   // page offset the payload patches
	n    int   // payload length
	rec  int   // total record bytes including the header
}

// pageMeta is a logical page: its base unit and delta chain (sorted by
// ascending sequence; deltas apply cumulatively on top of the base).
type pageMeta struct {
	basePpn int64 // -1 when unmapped
	baseSeq uint64
	tag     engine.Tag
	chain   []deltaRef
}

// Engine is the page-differential log over one flash device. Not safe
// for concurrent use.
type Engine struct {
	dev   *flash.Device
	clock *sim.Clock
	cfg   Config

	ppb          int // page-sized units per erase block
	numBlocks    int
	totalUnits   int64
	logicalPages int64

	pages  []pageMeta
	rev    []int64 // unit → lpn for live base pages, -1 otherwise
	blocks []blockInfo

	freeCount int
	retired   int

	baseActive  int // block id of the base log head, -1 when none
	basePtr     int // next unit within it
	deltaActive int // block id of the delta log head, -1 when none
	deltaPtr    int // current unit within it
	deltaOff    int // append offset within that unit

	writeSeq uint64
	cleaning bool // suppresses ensureSpace recursion under cleanOne

	mountStats engine.MountStats

	// Reusable hot-path scratch: mergeBuf holds one merged page image,
	// readBuf one delta payload, recBuf one outgoing delta record,
	// oobBuf one spare record. The engine is single-threaded and the
	// device copies all of them out.
	mergeBuf []byte
	readBuf  []byte
	recBuf   []byte
	oobBuf   [unitRecordBytes]byte

	obs                    *obs.Observer
	hostWrites, hostReads  *obs.Counter
	hostBytes              *obs.Counter
	cleans, copies         *obs.Counter
	idleCleans             *obs.Counter
	deltaWrites, promotion *obs.Counter
}

var _ engine.Engine = (*Engine)(nil)

// New builds a page-differential log over dev. The device must be
// freshly erased (all blocks free), which is how flash.New delivers it.
func New(dev *flash.Device, clock *sim.Clock, cfg Config) (*Engine, error) {
	if cfg.PageBytes <= 0 || dev.BlockBytes()%cfg.PageBytes != 0 {
		return nil, fmt.Errorf("pdl: page size %d does not divide block size %d", cfg.PageBytes, dev.BlockBytes())
	}
	if cfg.ReserveBlocks < 1 {
		cfg.ReserveBlocks = 1
	}
	if cfg.MaxChain <= 0 {
		cfg.MaxChain = 8
	}
	if cfg.PromoteBytes <= 0 {
		cfg.PromoteBytes = cfg.PageBytes / 2
	}
	if cfg.PromoteBytes+deltaHdrBytes > cfg.PageBytes {
		// A record must fit in one log unit.
		cfg.PromoteBytes = cfg.PageBytes - deltaHdrBytes
	}
	dc := dev.Config()
	if dc.SpareBytes < unitRecordBytes {
		return nil, fmt.Errorf("pdl: device spare of %d bytes below the %d-byte unit record", dc.SpareBytes, unitRecordBytes)
	}
	if dc.SpareUnitBytes != cfg.PageBytes {
		return nil, fmt.Errorf("pdl: device spare unit %d != page size %d", dc.SpareUnitBytes, cfg.PageBytes)
	}
	ppb := dev.BlockBytes() / cfg.PageBytes
	nb := dev.NumBlocks()
	total := int64(nb) * int64(ppb)
	overhead := int64(cfg.ReserveBlocks+2) * int64(ppb)
	if overhead >= total {
		return nil, fmt.Errorf("pdl: reserve %d blocks leaves no logical space on %d blocks", cfg.ReserveBlocks, nb)
	}

	e := &Engine{
		dev:          dev,
		clock:        clock,
		cfg:          cfg,
		ppb:          ppb,
		numBlocks:    nb,
		totalUnits:   total,
		logicalPages: total - overhead,
		pages:        make([]pageMeta, total-overhead),
		rev:          make([]int64, total),
		blocks:       make([]blockInfo, nb),
		freeCount:    nb,
		baseActive:   -1,
		deltaActive:  -1,
		mergeBuf:     make([]byte, cfg.PageBytes),
		readBuf:      make([]byte, cfg.PageBytes),
		recBuf:       make([]byte, deltaHdrBytes+cfg.PageBytes),
	}
	for i := range e.pages {
		e.pages[i].basePpn = -1
	}
	for i := range e.rev {
		e.rev[i] = -1
	}
	o := obs.Or(cfg.Obs)
	e.obs = o
	lbl := func(op string) obs.Labels { return obs.Labels{"layer": "pdl", "op": op} }
	e.hostWrites = o.Counter("host_ops_total", lbl("write"))
	e.hostReads = o.Counter("host_ops_total", lbl("read"))
	e.hostBytes = o.Counter("host_bytes_total", lbl("write"))
	e.cleans = o.Counter("cleans_total", obs.Labels{"layer": "pdl"})
	e.copies = o.Counter("copied_pages_total", obs.Labels{"layer": "pdl"})
	e.idleCleans = o.Counter("idle_cleans_total", obs.Labels{"layer": "pdl"})
	e.deltaWrites = o.Counter("delta_writes_total", obs.Labels{"layer": "pdl"})
	e.promotion = o.Counter("promotions_total", obs.Labels{"layer": "pdl"})
	// Same series the FTL registers, distinguished by the engine label,
	// so both backends land in shared dashboards without colliding.
	o.GaugeFunc("free_blocks", obs.Labels{"layer": "pdl", "engine": "pdl"}, func() float64 { return float64(e.freeCount) })
	o.GaugeFunc("cleaner_lag_blocks", obs.Labels{"layer": "pdl", "engine": "pdl"}, func() float64 { return float64(e.CleanerLag()) })
	waOver := func(flashBytes func() int64) func() float64 {
		return func() float64 {
			hb := e.hostBytes.Value()
			if hb == 0 {
				return 0
			}
			return float64(flashBytes()) / float64(hb)
		}
	}
	o.GaugeFunc("write_amplification", obs.Labels{"layer": "pdl", "engine": "pdl"},
		waOver(func() int64 { return e.dev.Stats().BytesProgrammed }))
	for _, c := range obs.Causes {
		c := c
		o.GaugeFunc("write_amplification", obs.Labels{"layer": "pdl", "engine": "pdl", "cause": string(c)},
			waOver(func() int64 { return e.dev.CauseBytesProgrammed(c) }))
	}
	return e, nil
}

// Name identifies the backend.
func (e *Engine) Name() string { return "pdl" }

// Config returns the engine configuration.
func (e *Engine) Config() Config { return e.cfg }

// PageBytes reports the mapping granularity.
func (e *Engine) PageBytes() int { return e.cfg.PageBytes }

// LogicalPages reports the host-visible capacity in pages.
func (e *Engine) LogicalPages() int64 { return e.logicalPages }

// LogicalBytes reports the host-visible capacity in bytes.
func (e *Engine) LogicalBytes() int64 { return e.logicalPages * int64(e.cfg.PageBytes) }

// Device exposes the underlying flash device.
func (e *Engine) Device() *flash.Device { return e.dev }

// PersistsMapping is always true: every base and delta program carries a
// CRC-folded record, so Mount rebuilds the full mapping by device scan.
func (e *Engine) PersistsMapping() bool { return true }

// Sync is a no-op: every write is durable on return.
func (e *Engine) Sync() error { return nil }

// MountStats reports what the Mount scan found; zero for an engine
// built with New.
func (e *Engine) MountStats() engine.MountStats { return e.mountStats }

func (e *Engine) checkLPN(lpn int64) error {
	if lpn < 0 || lpn >= e.logicalPages {
		return fmt.Errorf("%w: %d of %d", ErrBadPage, lpn, e.logicalPages)
	}
	return nil
}

func (e *Engine) unitAddr(ppn int64) int64 { return ppn * int64(e.cfg.PageBytes) }

func (e *Engine) blockOf(ppn int64) int { return int(ppn / int64(e.ppb)) }

func (e *Engine) blockOfAddr(addr int64) int { return int(addr / int64(e.dev.BlockBytes())) }

// span opens an op span against the engine's clock and the flash
// device's energy meter, so span energy includes the device work.
func (e *Engine) span(op string) obs.SpanRef {
	return e.obs.Span(e.clock, e.dev.Meter(), "pdl", op)
}

// Mapped reports whether the logical page currently holds data.
func (e *Engine) Mapped(lpn int64) bool {
	return lpn >= 0 && lpn < e.logicalPages && e.pages[lpn].basePpn != -1
}

// TagOf reports the tag associated with the logical page.
func (e *Engine) TagOf(lpn int64) engine.Tag {
	if !e.Mapped(lpn) {
		return engine.Tag{}
	}
	return e.pages[lpn].tag
}

// SeqOf reports the newest program sequence of the logical page (0 if
// unmapped) — the last delta's sequence, or the base's when the chain is
// empty.
func (e *Engine) SeqOf(lpn int64) uint64 {
	if !e.Mapped(lpn) {
		return 0
	}
	pm := &e.pages[lpn]
	if n := len(pm.chain); n > 0 {
		return pm.chain[n-1].seq
	}
	return pm.baseSeq
}

// ForEachMapped calls fn for every mapped logical page with its tag.
func (e *Engine) ForEachMapped(fn func(lpn int64, tag engine.Tag)) {
	for lpn := int64(0); lpn < e.logicalPages; lpn++ {
		if e.pages[lpn].basePpn != -1 {
			fn(lpn, e.pages[lpn].tag)
		}
	}
}

// WritePageTagged stores one page. An unmapped page (or a tag change,
// which only a base record can persist) writes a fresh base; a mapped
// page diffs against its current image and appends only the changed
// range as a delta record, promoting to a fresh base when the chain or
// the diff has grown past the configured bounds.
func (e *Engine) WritePageTagged(lpn int64, data []byte, tag engine.Tag) (err error) {
	if err := e.checkLPN(lpn); err != nil {
		return err
	}
	if len(data) != e.cfg.PageBytes {
		return fmt.Errorf("%w: got %d want %d", ErrBadSize, len(data), e.cfg.PageBytes)
	}
	sp := e.span("write_page")
	defer func() { sp.End(int64(len(data)), err) }()
	e.hostWrites.Inc()
	e.hostBytes.Add(int64(len(data)))

	pm := &e.pages[lpn]
	if pm.basePpn == -1 || tag != pm.tag {
		return e.writeBase(lpn, data, tag)
	}
	// Diff against the current merged image; the reads are charged
	// device work — the price of knowing what changed.
	if err := e.mergeInto(lpn, e.mergeBuf); err != nil {
		return err
	}
	lo, hi := diffRange(e.mergeBuf, data)
	if lo >= hi {
		// Identical to what is already durable: nothing to persist.
		return nil
	}
	if len(pm.chain) >= e.cfg.MaxChain || hi-lo >= e.cfg.PromoteBytes {
		e.promotion.Inc()
		return e.writeBase(lpn, data, tag)
	}
	return e.appendDelta(lpn, lo, data[lo:hi])
}

// diffRange returns the smallest [lo, hi) covering every byte where old
// and new differ; lo == hi means the images are identical.
func diffRange(old, new []byte) (lo, hi int) {
	n := len(old)
	for lo = 0; lo < n && old[lo] == new[lo]; lo++ {
	}
	if lo == n {
		return n, n
	}
	for hi = n; old[hi-1] == new[hi-1]; hi-- {
	}
	return lo, hi
}

// writeBase programs a full fresh base page for lpn. Its new sequence
// number supersedes the old base and every chained delta at Mount, so
// the in-memory supersede below is crash-equivalent.
func (e *Engine) writeBase(lpn int64, data []byte, tag engine.Tag) error {
	if !e.cleaning {
		if err := e.ensureSpace(); err != nil {
			return err
		}
	}
	ppn, err := e.allocBaseUnit()
	if err != nil {
		return err
	}
	if _, err := e.dev.Program(e.unitAddr(ppn), data); err != nil {
		return err
	}
	e.writeSeq++
	encodeUnitRecord(e.oobBuf[:], e.writeSeq, unitKindBase, lpn, tag)
	if _, err := e.dev.ProgramSpare(ppn, e.oobBuf[:]); err != nil {
		return err
	}
	e.supersede(lpn)
	pm := &e.pages[lpn]
	pm.basePpn, pm.baseSeq, pm.tag = ppn, e.writeSeq, tag
	e.rev[ppn] = lpn
	e.blocks[e.blockOf(ppn)].liveBases++
	return nil
}

// supersede releases the page's current base and chain accounting (the
// on-flash records stay until their blocks are erased; newer sequence
// numbers keep them dead across a remount).
func (e *Engine) supersede(lpn int64) {
	pm := &e.pages[lpn]
	if pm.basePpn != -1 {
		e.blocks[e.blockOf(pm.basePpn)].liveBases--
		e.rev[pm.basePpn] = -1
	}
	e.releaseChain(pm)
	pm.basePpn = -1
	pm.baseSeq = 0
}

func (e *Engine) releaseChain(pm *pageMeta) {
	for i := range pm.chain {
		b := e.blockOfAddr(pm.chain[i].addr)
		e.blocks[b].liveDeltas--
		e.blocks[b].liveDeltaBytes -= int64(pm.chain[i].rec)
	}
	pm.chain = pm.chain[:0]
}

// appendDelta writes one delta record to the delta log head.
func (e *Engine) appendDelta(lpn int64, off int, payload []byte) error {
	rec := deltaHdrBytes + len(payload)
	if !e.cleaning {
		if err := e.ensureSpace(); err != nil {
			return err
		}
	}
	addr, err := e.deltaSpace(rec)
	if err != nil {
		return err
	}
	e.writeSeq++
	buf := e.recBuf[:rec]
	encodeDeltaRecord(buf, e.writeSeq, lpn, off, payload)
	if _, err := e.dev.Program(addr, buf); err != nil {
		return err
	}
	pm := &e.pages[lpn]
	pm.chain = append(pm.chain, deltaRef{seq: e.writeSeq, addr: addr, off: off, n: len(payload), rec: rec})
	b := e.blockOfAddr(addr)
	e.blocks[b].liveDeltas++
	e.blocks[b].liveDeltaBytes += int64(rec)
	e.deltaWrites.Inc()
	return nil
}

// deltaSpace reserves rec bytes in the delta log, opening the next unit
// (its spare record marks it as a log before any record lands in it —
// the crash-ordering that keeps torn tails invisible) or a fresh block
// as needed, and returns the record's device address.
func (e *Engine) deltaSpace(rec int) (int64, error) {
	for {
		if e.deltaActive != -1 && e.deltaOff+rec <= e.cfg.PageBytes {
			ppn := int64(e.deltaActive)*int64(e.ppb) + int64(e.deltaPtr)
			addr := e.unitAddr(ppn) + int64(e.deltaOff)
			e.deltaOff += rec
			e.blocks[e.deltaActive].appended += int64(rec)
			return addr, nil
		}
		if e.deltaActive != -1 && e.deltaPtr+1 < e.ppb {
			e.deltaPtr++
		} else {
			if e.deltaActive != -1 {
				e.blocks[e.deltaActive].active = false
			}
			blk, ok := e.takeFreeBlock()
			if !ok {
				return 0, ErrNoSpace
			}
			e.blocks[blk].kind = blockDelta
			e.blocks[blk].active = true
			e.deltaActive = blk
			e.deltaPtr = 0
		}
		e.deltaOff = 0
		ppn := int64(e.deltaActive)*int64(e.ppb) + int64(e.deltaPtr)
		e.writeSeq++
		encodeUnitRecord(e.oobBuf[:], e.writeSeq, unitKindDelta, 0, engine.Tag{})
		if _, err := e.dev.ProgramSpare(ppn, e.oobBuf[:]); err != nil {
			return 0, err
		}
		e.blocks[e.deltaActive].unitsUsed++
	}
}

// allocBaseUnit returns the next unit of the base log head, opening a
// fresh block when the head is full. It does not clean; the caller
// guarantees space.
func (e *Engine) allocBaseUnit() (int64, error) {
	if e.baseActive == -1 || e.basePtr >= e.ppb {
		if e.baseActive != -1 {
			e.blocks[e.baseActive].active = false
		}
		blk, ok := e.takeFreeBlock()
		if !ok {
			return -1, ErrNoSpace
		}
		e.blocks[blk].kind = blockBase
		e.blocks[blk].active = true
		e.baseActive = blk
		e.basePtr = 0
	}
	ppn := int64(e.baseActive)*int64(e.ppb) + int64(e.basePtr)
	e.basePtr++
	e.blocks[e.baseActive].unitsUsed++
	return ppn, nil
}

// takeFreeBlock removes and returns the lowest-numbered free block —
// deterministic, and wear-unaware for now (the device's own telemetry
// tracks the spread).
func (e *Engine) takeFreeBlock() (int, bool) {
	if e.freeCount == 0 {
		return -1, false
	}
	for b := 0; b < e.numBlocks; b++ {
		if e.blocks[b].kind == blockFree && !e.blocks[b].retired {
			e.freeCount--
			return b, true
		}
	}
	return -1, false
}

// mergeInto reads the page's current image into buf: the base page,
// then every chained delta in sequence order. All charged device reads.
func (e *Engine) mergeInto(lpn int64, buf []byte) error {
	pm := &e.pages[lpn]
	if _, err := e.dev.Read(e.unitAddr(pm.basePpn), buf); err != nil {
		return err
	}
	for i := range pm.chain {
		d := &pm.chain[i]
		if _, err := e.dev.Read(d.addr+deltaHdrBytes, e.readBuf[:d.n]); err != nil {
			return err
		}
		copy(buf[d.off:d.off+d.n], e.readBuf[:d.n])
	}
	return nil
}

// ReadPage fetches one page into buf, merging the delta chain over the
// base image.
func (e *Engine) ReadPage(lpn int64, buf []byte) (err error) {
	if err := e.checkLPN(lpn); err != nil {
		return err
	}
	if len(buf) != e.cfg.PageBytes {
		return fmt.Errorf("%w: got %d want %d", ErrBadSize, len(buf), e.cfg.PageBytes)
	}
	sp := e.span("read_page")
	defer func() { sp.End(int64(len(buf)), err) }()
	e.hostReads.Inc()
	if e.pages[lpn].basePpn == -1 {
		// Never written: the host sees erased bytes, free of charge.
		for i := range buf {
			buf[i] = 0xFF
		}
		return nil
	}
	return e.mergeInto(lpn, buf)
}

// TrimPage drops the logical page. The on-flash records stay until
// cleaning erases them, so a trimmed page may resurrect after a power
// cut — but only with bytes it actually held, which is the contract.
func (e *Engine) TrimPage(lpn int64) error {
	if err := e.checkLPN(lpn); err != nil {
		return err
	}
	if e.pages[lpn].basePpn == -1 {
		return nil
	}
	e.supersede(lpn)
	e.pages[lpn].tag = engine.Tag{}
	return nil
}

// FreeBlocks reports the current free-block count.
func (e *Engine) FreeBlocks() int { return e.freeCount }

// CleanerLag reports how many blocks the cleaner is behind its
// free-space target — the same definition the FTL exposes, so the
// serving layer's admission control works unchanged.
func (e *Engine) CleanerLag() int {
	target := e.cfg.IdleCleanThreshold
	if target <= 0 {
		target = e.cfg.ReserveBlocks + 1
	}
	if lag := target - e.freeCount; lag > 0 {
		return lag
	}
	return 0
}

// ensureSpace cleans until the free pool is above the reserve.
func (e *Engine) ensureSpace() error {
	for e.freeCount <= e.cfg.ReserveBlocks {
		victim := e.pickVictim()
		if victim == -1 {
			if e.freeCount > 0 {
				return nil
			}
			return ErrNoSpace
		}
		if err := e.cleanOne(victim); err != nil {
			return err
		}
	}
	return nil
}

// CleanIdle reclaims during idle time until IdleCleanThreshold blocks
// are free (or nothing has dead space), taking cleaning off the write
// path.
func (e *Engine) CleanIdle() error {
	if e.cfg.IdleCleanThreshold <= 0 {
		return nil
	}
	defer e.obs.PushCause(obs.CauseIdleClean)()
	for e.freeCount < e.cfg.IdleCleanThreshold {
		victim := e.pickVictim()
		if victim == -1 {
			return nil
		}
		e.idleCleans.Inc()
		if err := e.cleanOne(victim); err != nil {
			return err
		}
	}
	return nil
}

// pickVictim returns the closed block with the most dead bytes, or -1.
// Dead bytes are what an erase reclaims beyond what relocation must
// rewrite; a block with none offers no gain.
func (e *Engine) pickVictim() int {
	best := -1
	var bestDead int64
	for b := 0; b < e.numBlocks; b++ {
		info := &e.blocks[b]
		if info.kind == blockFree || info.active || info.retired || info.unitsUsed == 0 {
			continue
		}
		var used, live int64
		if info.kind == blockBase {
			used = int64(info.unitsUsed) * int64(e.cfg.PageBytes)
			live = int64(info.liveBases) * int64(e.cfg.PageBytes)
		} else {
			used = info.appended
			live = info.liveDeltaBytes
		}
		if dead := used - live; dead > 0 && (best == -1 || dead > bestDead) {
			best = b
			bestDead = dead
		}
	}
	return best
}

// cleanOne relocates every page with state in the victim block and
// erases it. Relocation is crash-safe: a page either promotes (a fresh
// base atomically supersedes its history) or folds its whole chain into
// one delta record whose content equals the chain's net effect — at any
// power cut the scan reconstructs either the old image or the new one,
// never a hybrid.
func (e *Engine) cleanOne(victim int) (err error) {
	// Same induced-span and cause conventions as the FTL cleaner: a
	// clean under a request context is induced work charged to the
	// clean stage; programs and the erase are charged to the cleaner
	// cause unless an idle-clean scope is already active.
	sp := e.obs.InducedSpan(e.clock, e.dev.Meter(), "pdl", "clean", obs.StageClean)
	defer func() { sp.End(int64(e.ppb)*int64(e.cfg.PageBytes), err) }()
	if e.obs.Cause() != obs.CauseIdleClean {
		defer e.obs.PushCause(obs.CauseCleanerMigrate)()
	}
	e.cleans.Inc()
	e.cleaning = true
	defer func() { e.cleaning = false }()

	for lpn := int64(0); lpn < e.logicalPages; lpn++ {
		pm := &e.pages[lpn]
		if pm.basePpn == -1 {
			continue
		}
		mustPromote := e.blockOf(pm.basePpn) == victim
		touched := mustPromote
		if !touched {
			for i := range pm.chain {
				if e.blockOfAddr(pm.chain[i].addr) == victim {
					touched = true
					break
				}
			}
		}
		if !touched {
			continue
		}
		if err := e.mergeInto(lpn, e.mergeBuf); err != nil {
			return err
		}
		lo, hi := 0, 0
		if !mustPromote {
			lo, hi = chainHull(pm.chain)
		}
		if mustPromote || hi-lo >= e.cfg.PromoteBytes {
			if err := e.writeBase(lpn, e.mergeBuf, pm.tag); err != nil {
				return err
			}
		} else if err := e.foldChain(lpn, lo, hi); err != nil {
			return err
		}
		e.copies.Inc()
	}
	return e.eraseBlock(victim)
}

// chainHull returns the smallest [lo, hi) covering every chained
// delta's range.
func chainHull(chain []deltaRef) (lo, hi int) {
	lo, hi = chain[0].off, chain[0].off+chain[0].n
	for i := 1; i < len(chain); i++ {
		if chain[i].off < lo {
			lo = chain[i].off
		}
		if end := chain[i].off + chain[i].n; end > hi {
			hi = end
		}
	}
	return lo, hi
}

// foldChain replaces the page's whole chain with a single delta record
// covering the chain's hull, payload taken from the already-merged image
// in mergeBuf. Old records survive on flash with older sequence numbers;
// reapplying them under the folded record reproduces the same bytes, so
// a cut anywhere leaves a consistent image.
func (e *Engine) foldChain(lpn int64, lo, hi int) error {
	rec := deltaHdrBytes + (hi - lo)
	addr, err := e.deltaSpace(rec)
	if err != nil {
		return err
	}
	e.writeSeq++
	buf := e.recBuf[:rec]
	encodeDeltaRecord(buf, e.writeSeq, lpn, lo, e.mergeBuf[lo:hi])
	if _, err := e.dev.Program(addr, buf); err != nil {
		return err
	}
	pm := &e.pages[lpn]
	e.releaseChain(pm)
	pm.chain = append(pm.chain, deltaRef{seq: e.writeSeq, addr: addr, off: lo, n: hi - lo, rec: rec})
	b := e.blockOfAddr(addr)
	e.blocks[b].liveDeltas++
	e.blocks[b].liveDeltaBytes += int64(rec)
	return nil
}

// eraseBlock erases a relocated victim back into the free pool,
// retiring it instead if it has worn out.
func (e *Engine) eraseBlock(victim int) error {
	var err error
	if e.cfg.BackgroundErase {
		err = e.dev.EraseAsync(victim)
	} else {
		_, err = e.dev.Erase(victim)
	}
	if err != nil {
		if errors.Is(err, flash.ErrWornOut) {
			e.retireBlock(victim)
			return nil // the pool shrank, but the clean freed its pages
		}
		return err
	}
	e.resetBlock(victim)
	return nil
}

func (e *Engine) resetBlock(b int) {
	base := int64(b) * int64(e.ppb)
	for i := 0; i < e.ppb; i++ {
		e.rev[base+int64(i)] = -1
	}
	e.blocks[b] = blockInfo{kind: blockFree}
	e.freeCount++
}

func (e *Engine) retireBlock(b int) {
	base := int64(b) * int64(e.ppb)
	for i := 0; i < e.ppb; i++ {
		e.rev[base+int64(i)] = -1
	}
	e.blocks[b] = blockInfo{retired: true}
	e.retired++
	// Shrink the logical space: the device lost a block of capacity.
	e.logicalPages -= int64(e.ppb)
	if e.logicalPages < 0 {
		e.logicalPages = 0
	}
}

// Stats summarises the engine counters.
func (e *Engine) Stats() engine.Stats {
	ds := e.dev.Stats()
	hb := e.hostBytes.Value()
	wa := 0.0
	if hb > 0 {
		wa = float64(ds.BytesProgrammed) / float64(hb)
	}
	margin := 0.0
	if e.numBlocks > 0 {
		margin = float64(e.freeCount) / float64(e.numBlocks)
	}
	return engine.Stats{
		HostWrites:           e.hostWrites.Value(),
		HostReads:            e.hostReads.Value(),
		HostBytesWritten:     hb,
		FlashBytesProgrammed: ds.BytesProgrammed,
		FlashReads:           ds.Reads,
		Erases:               ds.Erases,
		Cleans:               e.cleans.Value(),
		CopiedPages:          e.copies.Value(),
		IdleCleans:           e.idleCleans.Value(),
		WriteAmplification:   wa,
		FreeBlocks:           e.freeCount,
		FreeBlockMargin:      margin,
		RetiredBlocks:        e.retired,
	}
}

// DeltaWrites reports how many overwrites were absorbed as delta
// records; Promotions how many overwrites forced a fresh base because
// the chain or the diff outgrew its bound. E15 reads both.
func (e *Engine) DeltaWrites() int64 { return e.deltaWrites.Value() }

// Promotions reports chain-bound and diff-size promotions to a fresh
// base.
func (e *Engine) Promotions() int64 { return e.promotion.Value() }

// CheckInvariants verifies internal consistency; the crash-test
// enumerator calls it after every simulated power cut. It returns the
// first violation found.
func (e *Engine) CheckInvariants() error {
	type tally struct {
		bases      int
		deltas     int
		deltaBytes int64
	}
	tallies := make([]tally, e.numBlocks)
	for lpn := int64(0); lpn < e.logicalPages; lpn++ {
		pm := &e.pages[lpn]
		if pm.basePpn == -1 {
			if len(pm.chain) != 0 {
				return fmt.Errorf("pdl: unmapped page %d carries a %d-record chain", lpn, len(pm.chain))
			}
			continue
		}
		b := e.blockOf(pm.basePpn)
		if e.blocks[b].kind != blockBase {
			return fmt.Errorf("pdl: page %d base unit %d in non-base block %d", lpn, pm.basePpn, b)
		}
		if e.rev[pm.basePpn] != lpn {
			return fmt.Errorf("pdl: page %d base unit %d reverse-maps to %d", lpn, pm.basePpn, e.rev[pm.basePpn])
		}
		tallies[b].bases++
		prev := pm.baseSeq
		for i := range pm.chain {
			d := &pm.chain[i]
			if d.seq <= prev {
				return fmt.Errorf("pdl: page %d chain sequence %d not after %d", lpn, d.seq, prev)
			}
			prev = d.seq
			db := e.blockOfAddr(d.addr)
			if e.blocks[db].kind != blockDelta {
				return fmt.Errorf("pdl: page %d delta at %d in non-delta block %d", lpn, d.addr, db)
			}
			if d.off < 0 || d.off+d.n > e.cfg.PageBytes {
				return fmt.Errorf("pdl: page %d delta range [%d,%d) outside the page", lpn, d.off, d.off+d.n)
			}
			tallies[db].deltas++
			tallies[db].deltaBytes += int64(d.rec)
		}
	}
	free := 0
	for b := 0; b < e.numBlocks; b++ {
		info := &e.blocks[b]
		if info.retired {
			continue
		}
		if info.kind == blockFree {
			free++
			if off, dirty := e.blockNonBlankAt(b); dirty {
				return fmt.Errorf("pdl: free block %d not erased at offset %d", b, off)
			}
			continue
		}
		t := tallies[b]
		if info.liveBases != t.bases || info.liveDeltas != t.deltas || info.liveDeltaBytes != t.deltaBytes {
			return fmt.Errorf("pdl: block %d live counts bases=%d/%d deltas=%d/%d bytes=%d/%d",
				b, info.liveBases, t.bases, info.liveDeltas, t.deltas, info.liveDeltaBytes, t.deltaBytes)
		}
	}
	if free != e.freeCount {
		return fmt.Errorf("pdl: free count %d, scan found %d", e.freeCount, free)
	}
	return nil
}

// blockNonBlankAt reports the first non-erased byte offset in the
// block's data or spare area, using uncharged peeks.
func (e *Engine) blockNonBlankAt(b int) (off int64, ok bool) {
	dc := e.dev.Config()
	start := e.dev.BlockAddr(b)
	for i := int64(0); i < int64(dc.BlockBytes); i++ {
		if e.dev.Peek(start+i) != 0xFF {
			return i, true
		}
	}
	if dc.SpareBytes > 0 {
		firstUnit := start / int64(dc.SpareUnitBytes)
		unitsPerBlock := int64(dc.BlockBytes / dc.SpareUnitBytes)
		for u := int64(0); u < unitsPerBlock; u++ {
			for j, sb := range e.dev.PeekSpare(firstUnit + u) {
				if sb != 0xFF {
					return int64(dc.BlockBytes) + u*int64(dc.SpareBytes) + int64(j), true
				}
			}
		}
	}
	return 0, false
}
