package pdl

import (
	"bytes"
	"math/rand"
	"testing"

	"ssmobile/internal/device"
	"ssmobile/internal/engine"
	"ssmobile/internal/flash"
	"ssmobile/internal/obs"
	"ssmobile/internal/sim"
)

const testPage = 4096

type rig struct {
	clock *sim.Clock
	meter *sim.EnergyMeter
	dev   *flash.Device
	e     *Engine
}

func newRig(t testing.TB, cfg Config) *rig {
	t.Helper()
	clock := sim.NewClock()
	meter := sim.NewEnergyMeter()
	params := device.IntelFlash
	params.EraseLatencyNs = 1e6
	dev, err := flash.New(flash.Config{
		Banks: 2, BlocksPerBank: 16, BlockBytes: 16 * 1024, Params: params,
		SpareUnitBytes: testPage, SpareBytes: unitRecordBytes,
	}, clock, meter)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.PageBytes == 0 {
		cfg.PageBytes = testPage
	}
	if cfg.Obs == nil {
		cfg.Obs = obs.New(0)
	}
	e, err := New(dev, clock, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return &rig{clock: clock, meter: meter, dev: dev, e: e}
}

func tagOf(b byte) engine.Tag {
	var t engine.Tag
	t[0] = b
	return t
}

// TestPropertyAgainstModel drives the engine with a seeded random mix of
// full writes, small overwrites (the delta path), identical rewrites,
// trims, tag changes and idle cleans, checking every page against an
// in-memory model and the structural invariants as it goes — then
// remounts from the device scan and checks the model again. This is the
// whole engine contract in one test: what you wrote is what you read,
// before and after recovery.
func TestPropertyAgainstModel(t *testing.T) {
	r := newRig(t, Config{ReserveBlocks: 3, MaxChain: 4, IdleCleanThreshold: 8, BackgroundErase: true})
	e := r.e
	rng := rand.New(rand.NewSource(1993))
	const lpns = 40 // well under logical capacity, hot enough to force cleaning

	model := make(map[int64][]byte)
	tags := make(map[int64]engine.Tag)
	buf := make([]byte, testPage)
	page := make([]byte, testPage)

	for op := 0; op < 4000; op++ {
		lpn := int64(rng.Intn(lpns))
		switch k := rng.Intn(100); {
		case k < 45: // small overwrite: mutate a narrow range of the current image
			cur, ok := model[lpn]
			if !ok {
				cur = bytes.Repeat([]byte{0xFF}, testPage)
			}
			copy(page, cur)
			off := rng.Intn(testPage - 64)
			n := 1 + rng.Intn(64)
			for i := 0; i < n; i++ {
				page[off+i] = byte(rng.Intn(256))
			}
			tg := tags[lpn]
			if err := e.WritePageTagged(lpn, page, tg); err != nil {
				t.Fatalf("op %d: overwrite: %v", op, err)
			}
			model[lpn] = append([]byte(nil), page...)
		case k < 70: // full random write, occasionally with a new tag
			rng.Read(page)
			tg := tags[lpn]
			if rng.Intn(4) == 0 {
				tg = tagOf(byte(rng.Intn(8)))
			}
			if err := e.WritePageTagged(lpn, page, tg); err != nil {
				t.Fatalf("op %d: write: %v", op, err)
			}
			model[lpn] = append([]byte(nil), page...)
			tags[lpn] = tg
		case k < 78: // identical rewrite: must be a no-op on flash
			cur, ok := model[lpn]
			if !ok {
				break
			}
			before := e.dev.Stats().BytesProgrammed
			if err := e.WritePageTagged(lpn, cur, tags[lpn]); err != nil {
				t.Fatalf("op %d: identical rewrite: %v", op, err)
			}
			if after := e.dev.Stats().BytesProgrammed; after != before {
				t.Fatalf("op %d: identical rewrite programmed %d flash bytes", op, after-before)
			}
		case k < 88: // trim
			if err := e.TrimPage(lpn); err != nil {
				t.Fatalf("op %d: trim: %v", op, err)
			}
			delete(model, lpn)
			delete(tags, lpn)
		default: // idle clean
			if err := e.CleanIdle(); err != nil {
				t.Fatalf("op %d: idle clean: %v", op, err)
			}
		}
		// Read-verify a random page every step; full sweep periodically.
		probe := int64(rng.Intn(lpns))
		if err := e.ReadPage(probe, buf); err != nil {
			t.Fatalf("op %d: read %d: %v", op, probe, err)
		}
		want, ok := model[probe]
		if !ok {
			want = bytes.Repeat([]byte{0xFF}, testPage)
		}
		if !bytes.Equal(buf, want) {
			t.Fatalf("op %d: page %d diverged from model (mapped=%v)", op, probe, ok)
		}
		if ok && e.TagOf(probe) != tags[probe] {
			t.Fatalf("op %d: page %d tag %v want %v", op, probe, e.TagOf(probe), tags[probe])
		}
		if op%200 == 0 {
			if err := e.CheckInvariants(); err != nil {
				t.Fatalf("op %d: %v", op, err)
			}
		}
	}
	if err := e.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if e.DeltaWrites() == 0 {
		t.Fatal("workload never took the delta path; the test is not exercising differential logging")
	}
	if e.Promotions() == 0 {
		t.Fatal("workload never promoted a chain; bounds are not exercised")
	}
	if e.Stats().Cleans == 0 {
		t.Fatal("workload never cleaned; relocation paths are not exercised")
	}

	// Remount from the device scan: the rebuilt engine must agree with
	// the model byte for byte, tag for tag.
	e2, err := Mount(r.dev, r.clock, Config{
		PageBytes: testPage, ReserveBlocks: 3, MaxChain: 4,
		IdleCleanThreshold: 8, BackgroundErase: true, Obs: obs.New(0),
	})
	if err != nil {
		t.Fatalf("remount: %v", err)
	}
	for lpn := int64(0); lpn < lpns; lpn++ {
		if err := e2.ReadPage(lpn, buf); err != nil {
			t.Fatalf("remount read %d: %v", lpn, err)
		}
		want, ok := model[lpn]
		if !ok {
			// A trimmed page may resurrect with its old bytes (the
			// records outlive the trim until cleaning), but never with
			// bytes it did not hold; an unmapped page must read erased.
			if e2.Mapped(lpn) {
				continue
			}
			want = bytes.Repeat([]byte{0xFF}, testPage)
		}
		if !bytes.Equal(buf, want) {
			t.Fatalf("remount: page %d diverged from model", lpn)
		}
		if ok && e2.TagOf(lpn) != tags[lpn] {
			t.Fatalf("remount: page %d tag %v want %v", lpn, e2.TagOf(lpn), tags[lpn])
		}
	}
}

// TestDeltaPathProgramsLessThanAPage is the engine's reason to exist: a
// small overwrite must program far fewer flash bytes than rewriting the
// page.
func TestDeltaPathProgramsLessThanAPage(t *testing.T) {
	r := newRig(t, Config{ReserveBlocks: 3})
	e := r.e
	page := bytes.Repeat([]byte{0xAB}, testPage)
	if err := e.WritePageTagged(3, page, engine.Tag{}); err != nil {
		t.Fatal(err)
	}
	before := e.dev.Stats().BytesProgrammed
	page[100] = 0xCD // one-byte change
	if err := e.WritePageTagged(3, page, engine.Tag{}); err != nil {
		t.Fatal(err)
	}
	programmed := e.dev.Stats().BytesProgrammed - before
	if programmed >= testPage/4 {
		t.Fatalf("one-byte overwrite programmed %d bytes; differential logging is not engaging", programmed)
	}
	if e.DeltaWrites() != 1 {
		t.Fatalf("delta writes = %d, want 1", e.DeltaWrites())
	}
	buf := make([]byte, testPage)
	if err := e.ReadPage(3, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, page) {
		t.Fatal("read after delta write diverged")
	}
}

// TestChainBoundPromotes checks MaxChain: the overwrite after the bound
// writes a fresh base and empties the chain.
func TestChainBoundPromotes(t *testing.T) {
	r := newRig(t, Config{ReserveBlocks: 3, MaxChain: 3})
	e := r.e
	page := bytes.Repeat([]byte{0x00}, testPage)
	if err := e.WritePageTagged(0, page, engine.Tag{}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		page[i] = 0xEE
		if err := e.WritePageTagged(0, page, engine.Tag{}); err != nil {
			t.Fatal(err)
		}
	}
	if n := len(e.pages[0].chain); n != 3 {
		t.Fatalf("chain length %d, want 3", n)
	}
	page[500] = 0xEE
	if err := e.WritePageTagged(0, page, engine.Tag{}); err != nil {
		t.Fatal(err)
	}
	if n := len(e.pages[0].chain); n != 0 {
		t.Fatalf("chain length %d after promotion, want 0", n)
	}
	if e.Promotions() != 1 {
		t.Fatalf("promotions = %d, want 1", e.Promotions())
	}
}

// TestLargeDiffWritesBase checks PromoteBytes: a diff at or past the
// bound skips the delta path entirely.
func TestLargeDiffWritesBase(t *testing.T) {
	r := newRig(t, Config{ReserveBlocks: 3, PromoteBytes: 512})
	e := r.e
	page := bytes.Repeat([]byte{0x00}, testPage)
	if err := e.WritePageTagged(0, page, engine.Tag{}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1024; i++ {
		page[i] = 0x77
	}
	if err := e.WritePageTagged(0, page, engine.Tag{}); err != nil {
		t.Fatal(err)
	}
	if e.DeltaWrites() != 0 {
		t.Fatalf("large diff took the delta path (%d delta writes)", e.DeltaWrites())
	}
	if e.Promotions() != 1 {
		t.Fatalf("promotions = %d, want 1", e.Promotions())
	}
}

// TestMountTornDeltaRecord plants a torn delta record (bad CRC) behind a
// valid one and checks the scan keeps the valid prefix, drops the tail,
// and counts the corruption.
func TestMountTornDeltaRecord(t *testing.T) {
	r := newRig(t, Config{ReserveBlocks: 3})
	e := r.e
	page := bytes.Repeat([]byte{0x10}, testPage)
	if err := e.WritePageTagged(5, page, engine.Tag{}); err != nil {
		t.Fatal(err)
	}
	page[0] = 0x11
	if err := e.WritePageTagged(5, page, engine.Tag{}); err != nil {
		t.Fatal(err)
	}
	// Corrupt flash directly where the NEXT record would land: simulate a
	// torn program by landing a half-written header after the live record.
	d := e.pages[5].chain[0]
	torn := d.addr + int64(d.rec)
	if _, err := r.dev.Program(torn, []byte{0x42}); err != nil { // non-blank, CRC cannot match
		t.Fatal(err)
	}
	e2, err := Mount(r.dev, r.clock, Config{PageBytes: testPage, ReserveBlocks: 3, Obs: obs.New(0)})
	if err != nil {
		t.Fatalf("mount with torn record: %v", err)
	}
	if e2.MountStats().CorruptRecords == 0 {
		t.Fatal("torn record not counted")
	}
	buf := make([]byte, testPage)
	if err := e2.ReadPage(5, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, page) {
		t.Fatal("valid delta prefix lost behind the torn record")
	}
}

// TestCapacityMatchesFTLFormula pins the logical-capacity formula both
// engines share, so E15 compares equal-sized devices.
func TestCapacityMatchesFTLFormula(t *testing.T) {
	r := newRig(t, Config{ReserveBlocks: 3})
	ppb := int64(16 * 1024 / testPage)
	want := int64(32)*ppb - (3+2)*ppb
	if got := r.e.LogicalPages(); got != want {
		t.Fatalf("logical pages %d, want %d", got, want)
	}
}
