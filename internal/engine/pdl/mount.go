package pdl

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sort"

	"ssmobile/internal/engine"
	"ssmobile/internal/flash"
	"ssmobile/internal/obs"
	"ssmobile/internal/sim"
)

// On-flash formats. Every unit (one page-sized region) carries a spare
// record claiming it: a base record binds the unit's full data image to
// a logical page, a delta record marks the unit as a log whose data area
// holds packed delta records. The distinct magic keeps a PDL-formatted
// card from mounting as an FTL card and vice versa.

// unitRecordBytes is the size of the spare record persisted per unit:
// a CRC-folded check word, the program sequence number, the kind and
// logical page packed into one word, and the caller tag.
const unitRecordBytes = 4 + 8 + 8 + 16

const (
	unitMagic  uint32 = 0x50444c31 // "PDL1"
	deltaMagic uint32 = 0x50444c44 // "PDLD"
)

// Unit kinds, packed into the top byte of the record's lpn word.
const (
	unitKindBase  = 0x00
	unitKindDelta = 0x01
)

const kindShift = 56

// The check word is the magic XOR-folded with a CRC of the payload, the
// same torn-program defence the FTL's OOB records use: a cut partway
// through the record leaves a prefix whose CRC cannot match.
func unitCheck(rec []byte) uint32 {
	return unitMagic ^ crc32.ChecksumIEEE(rec[4:unitRecordBytes])
}

func encodeUnitRecord(rec []byte, seq uint64, kind int, lpn int64, tag engine.Tag) {
	binary.LittleEndian.PutUint64(rec[4:], seq)
	binary.LittleEndian.PutUint64(rec[12:], uint64(kind)<<kindShift|uint64(lpn)&(1<<kindShift-1))
	copy(rec[20:], tag[:])
	binary.LittleEndian.PutUint32(rec[0:], unitCheck(rec))
}

func decodeUnitRecord(rec []byte) (seq uint64, kind int, lpn int64, tag engine.Tag, ok bool) {
	if len(rec) < unitRecordBytes || binary.LittleEndian.Uint32(rec) != unitCheck(rec) {
		return 0, 0, 0, engine.Tag{}, false
	}
	seq = binary.LittleEndian.Uint64(rec[4:])
	klpn := binary.LittleEndian.Uint64(rec[12:])
	kind = int(klpn >> kindShift)
	lpn = int64(klpn & (1<<kindShift - 1))
	copy(tag[:], rec[20:])
	return seq, kind, lpn, tag, true
}

// deltaHdrBytes is the header of one packed delta record: check word,
// sequence number, logical page, page offset and payload length. The
// check folds the CRC of header and payload together, so a torn record
// (and everything the cut prevented after it) drops off the parsed
// prefix of its unit.
const deltaHdrBytes = 4 + 8 + 4 + 2 + 2

func encodeDeltaRecord(buf []byte, seq uint64, lpn int64, off int, payload []byte) {
	binary.LittleEndian.PutUint64(buf[4:], seq)
	binary.LittleEndian.PutUint32(buf[12:], uint32(lpn))
	binary.LittleEndian.PutUint16(buf[16:], uint16(off))
	binary.LittleEndian.PutUint16(buf[18:], uint16(len(payload)))
	copy(buf[deltaHdrBytes:], payload)
	binary.LittleEndian.PutUint32(buf[0:], deltaMagic^crc32.ChecksumIEEE(buf[4:deltaHdrBytes+len(payload)]))
}

// decodeDeltaRecord parses one record at the start of buf, returning
// its total size. ok is false for a blank tail, a torn record, or a
// header whose geometry does not fit the unit.
func decodeDeltaRecord(buf []byte, pageBytes int) (seq uint64, lpn int64, off, n int, ok bool) {
	if len(buf) < deltaHdrBytes {
		return 0, 0, 0, 0, false
	}
	seq = binary.LittleEndian.Uint64(buf[4:])
	lpn = int64(binary.LittleEndian.Uint32(buf[12:]))
	off = int(binary.LittleEndian.Uint16(buf[16:]))
	n = int(binary.LittleEndian.Uint16(buf[18:]))
	if n < 1 || off+n > pageBytes || deltaHdrBytes+n > len(buf) {
		return 0, 0, 0, 0, false
	}
	if binary.LittleEndian.Uint32(buf) != deltaMagic^crc32.ChecksumIEEE(buf[4:deltaHdrBytes+n]) {
		return 0, 0, 0, 0, false
	}
	return seq, lpn, off, n, true
}

func blank(b []byte) bool {
	for _, x := range b {
		if x != 0xFF {
			return false
		}
	}
	return true
}

// Mount rebuilds a page-differential log from a device that already
// holds data — the power-failure recovery path. The scan reads every
// unit's spare record and every delta unit's data area as charged
// device work, so mount time appears in the simulation. For each
// logical page the newest base claim wins, then every delta record with
// a newer sequence number applies in sequence order; cleaning folds and
// promotions guarantee the surviving records always reconstruct either
// the pre-cut or post-cut image, never a hybrid.
func Mount(dev *flash.Device, clock *sim.Clock, cfg Config) (*Engine, error) {
	e, err := New(dev, clock, cfg)
	if err != nil {
		return nil, err
	}
	// Destructive work the scan performs (re-erasing blocks a torn
	// program left dirty) is recovery, not cleaning.
	defer e.obs.PushCause(obs.CauseMountRecovery)()

	type baseClaim struct {
		ppn int64
		seq uint64
		tag engine.Tag
	}
	best := make(map[int64]baseClaim)
	unitKinds := make([]int8, e.totalUnits) // -1 none, else unit kind
	for i := range unitKinds {
		unitKinds[i] = -1
	}
	var deltaUnits []int64
	rec := make([]byte, unitRecordBytes)
	var maxSeq uint64

	for ppn := int64(0); ppn < e.totalUnits; ppn++ {
		if _, err := dev.ReadSpare(ppn, rec); err != nil {
			return nil, err
		}
		seq, kind, lpn, tag, ok := decodeUnitRecord(rec)
		if !ok {
			if !blank(rec) {
				e.mountStats.CorruptRecords++
			}
			continue
		}
		if seq > maxSeq {
			maxSeq = seq
		}
		unitKinds[ppn] = int8(kind)
		switch kind {
		case unitKindBase:
			if lpn < 0 || lpn >= e.logicalPages {
				continue // stale record beyond this geometry
			}
			if prev, dup := best[lpn]; !dup || seq > prev.seq {
				best[lpn] = baseClaim{ppn: ppn, seq: seq, tag: tag}
			}
		case unitKindDelta:
			deltaUnits = append(deltaUnits, ppn)
		}
	}

	// Classify blocks: any valid record keeps a block out of the free
	// pool; recordless blocks that fail the blank check are re-erased
	// (allocation programs free blocks without erasing first); worn
	// blocks retire again.
	for b := 0; b < e.numBlocks; b++ {
		base := int64(b) * int64(e.ppb)
		used, deltas := 0, 0
		for i := 0; i < e.ppb; i++ {
			switch unitKinds[base+int64(i)] {
			case unitKindBase:
				used++
			case unitKindDelta:
				used++
				deltas++
			}
		}
		if dev.WornOut(b) {
			e.freeCount--
			e.blocks[b] = blockInfo{retired: true}
			e.retired++
			e.logicalPages -= int64(e.ppb)
			if e.logicalPages < 0 {
				e.logicalPages = 0
			}
			e.mountStats.RetiredBlocks++
			continue
		}
		if used == 0 {
			if _, dirty := e.blockNonBlankAt(b); dirty {
				if _, err := dev.Erase(b); err != nil {
					return nil, err
				}
				e.mountStats.ReErasedBlocks++
				if dev.WornOut(b) {
					e.freeCount--
					e.blocks[b] = blockInfo{retired: true}
					e.retired++
					e.logicalPages -= int64(e.ppb)
					if e.logicalPages < 0 {
						e.logicalPages = 0
					}
					e.mountStats.RetiredBlocks++
				}
			}
			continue // stays free
		}
		e.freeCount--
		kind := blockBase
		if deltas > 0 {
			kind = blockDelta
		}
		e.blocks[b] = blockInfo{kind: kind, unitsUsed: used}
	}

	// Install the winning base claims.
	for lpn, c := range best {
		if e.blocks[e.blockOf(c.ppn)].retired {
			continue
		}
		pm := &e.pages[lpn]
		pm.basePpn, pm.baseSeq, pm.tag = c.ppn, c.seq, c.tag
		e.rev[c.ppn] = lpn
		e.blocks[e.blockOf(c.ppn)].liveBases++
	}

	// Parse every delta unit's data area: records pack sequentially, a
	// torn or blank header ends the unit's parsed prefix.
	unitBuf := make([]byte, e.cfg.PageBytes)
	perPage := make(map[int64][]deltaRef)
	for _, ppn := range deltaUnits {
		if e.blocks[e.blockOf(ppn)].retired {
			continue
		}
		if _, err := dev.Read(e.unitAddr(ppn), unitBuf); err != nil {
			return nil, err
		}
		off := 0
		for off+deltaHdrBytes <= e.cfg.PageBytes {
			seq, lpn, pOff, n, ok := decodeDeltaRecord(unitBuf[off:], e.cfg.PageBytes)
			if !ok {
				if !blank(unitBuf[off:]) {
					e.mountStats.CorruptRecords++
				}
				break
			}
			if seq > maxSeq {
				maxSeq = seq
			}
			size := deltaHdrBytes + n
			e.blocks[e.blockOf(ppn)].appended += int64(size)
			if lpn >= 0 && lpn < e.logicalPages {
				perPage[lpn] = append(perPage[lpn], deltaRef{
					seq: seq, addr: e.unitAddr(ppn) + int64(off), off: pOff, n: n, rec: size,
				})
			}
			off += size
		}
	}

	// Attach each page's surviving chain: deltas newer than the winning
	// base, in sequence order.
	lpns := make([]int64, 0, len(perPage))
	for lpn := range perPage {
		lpns = append(lpns, lpn)
	}
	sort.Slice(lpns, func(i, j int) bool { return lpns[i] < lpns[j] })
	for _, lpn := range lpns {
		pm := &e.pages[lpn]
		if pm.basePpn == -1 {
			continue // deltas whose base is gone are unreachable garbage
		}
		refs := perPage[lpn]
		sort.Slice(refs, func(i, j int) bool { return refs[i].seq < refs[j].seq })
		for _, d := range refs {
			if d.seq <= pm.baseSeq {
				continue
			}
			pm.chain = append(pm.chain, d)
			b := e.blockOfAddr(d.addr)
			e.blocks[b].liveDeltas++
			e.blocks[b].liveDeltaBytes += int64(d.rec)
		}
	}

	e.writeSeq = maxSeq
	if err := e.CheckInvariants(); err != nil {
		return nil, fmt.Errorf("pdl: mount left inconsistent state: %w", err)
	}
	return e, nil
}
