// Package engine defines the storage-engine contract the storage manager
// programs against: page-granular write/read/trim over a flash device,
// mount-by-device-scan recovery, idle and foreground cleaning hooks, and
// a stats surface with write amplification and free-block margin.
//
// The interface is extracted from what storman actually needs, so any
// backend that satisfies it — the default FTL (engine/ftl) or the
// page-differential log (engine/pdl) — slots under the whole serving
// stack unchanged: same write buffer, same file system, same crash-test
// enumerator. The paper's argument is that flash deserves storage
// organizations designed for it rather than a disk abstraction; this
// package is where those organizations become interchangeable.
package engine

import "ssmobile/internal/flash"

// Tag is opaque caller metadata attached to a logical page (typically an
// object id and block index). Engines that persist their mapping store
// the tag in the on-flash record and recover it at Mount.
type Tag [16]byte

// Stats aggregates the counters every backend exposes for experiments
// and dashboards. Write amplification is flash bytes programmed per host
// byte written; FreeBlockMargin is the free fraction of the block pool —
// the headroom the cleaner is defending.
type Stats struct {
	HostWrites, HostReads int64
	HostBytesWritten      int64
	FlashBytesProgrammed  int64
	FlashReads            int64
	Erases                int64
	Cleans, CopiedPages   int64
	IdleCleans            int64
	WriteAmplification    float64
	FreeBlocks            int
	FreeBlockMargin       float64
	RetiredBlocks         int
}

// MountStats reports what a mount-time device scan found beyond the live
// mapping — the wreckage a power cut left behind.
type MountStats struct {
	// CorruptRecords counts on-flash records that are neither blank nor
	// self-consistent: torn programs and trembling-erase residue.
	CorruptRecords int64
	// ReErasedBlocks counts record-free blocks that failed the blank
	// check and were erased back into the free pool.
	ReErasedBlocks int64
	// RetiredBlocks counts blocks retired as worn out during the scan.
	RetiredBlocks int64
}

// Engine is one storage organization over a flash device. Implementations
// are not safe for concurrent use; the storage manager serializes access.
//
// Contract notes beyond the signatures:
//
//   - WritePageTagged is durable on return: a power cut at any later
//     flash operation must leave the written page recoverable by the
//     backend's Mount (the crashtest enumerator enforces this per
//     backend).
//   - ReadPage of a never-written or trimmed page fills the buffer with
//     erased bytes (0xFF) without charging a device access.
//   - TrimPage releases the page without copying; a trimmed page may
//     resurrect after a crash, but only with bytes it actually held.
//   - Engines register their wear and cleaning telemetry under an
//     "engine" label (free_blocks, cleaner_lag_blocks,
//     write_amplification overall and per obs.Cause), so two backends
//     report into the same dashboards without colliding.
type Engine interface {
	// Name identifies the backend ("ftl", "pdl") in tables and labels.
	Name() string
	// PageBytes reports the mapping granularity.
	PageBytes() int
	// LogicalPages reports the host-visible capacity in pages; it can
	// shrink as worn blocks retire.
	LogicalPages() int64
	// LogicalBytes reports the host-visible capacity in bytes.
	LogicalBytes() int64
	// Device exposes the underlying flash device (experiment metrics,
	// health reports).
	Device() *flash.Device

	// WritePageTagged stores one page and associates tag with it; the
	// tag rides through relocations and, when the mapping persists,
	// survives power loss.
	WritePageTagged(lpn int64, data []byte, tag Tag) error
	// ReadPage fetches one page into buf (len == PageBytes).
	ReadPage(lpn int64, buf []byte) error
	// TrimPage drops the page so its space can be reclaimed uncopied.
	TrimPage(lpn int64) error
	// Sync makes any engine-buffered state durable. Both current
	// backends program synchronously, so this is a no-op today; the
	// write buffer above calls it on group commit so a future
	// write-behind backend slots in without storman changes.
	Sync() error

	// Mapped reports whether the logical page currently holds data.
	Mapped(lpn int64) bool
	// TagOf reports the tag associated with a mapped page.
	TagOf(lpn int64) Tag
	// SeqOf reports the newest program sequence of the page (0 if
	// unknown); sequence numbers order versions across power failures.
	SeqOf(lpn int64) uint64
	// ForEachMapped calls fn for every mapped page in ascending order.
	ForEachMapped(fn func(lpn int64, tag Tag))
	// PersistsMapping reports whether the mapping survives power loss
	// (a prerequisite for mounting the storage manager after a crash).
	PersistsMapping() bool

	// CleanIdle runs reclamation off the write path until the engine's
	// idle free-space target is met; the storage manager calls it from
	// its daemon tick.
	CleanIdle() error
	// CleanerLag reports how many blocks the cleaner is behind its
	// free-space target; the serving layer sheds load on this signal.
	CleanerLag() int
	// FreeBlocks reports the current free-block count.
	FreeBlocks() int

	// Stats summarises the engine counters.
	Stats() Stats
	// MountStats reports what the mount scan found (zero when the
	// engine was built fresh rather than mounted).
	MountStats() MountStats
	// CheckInvariants verifies internal consistency, returning the
	// first violation; the crash-test enumerator calls it after every
	// simulated power cut.
	CheckInvariants() error
}
