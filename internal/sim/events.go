package sim

import "container/heap"

// Event is a callback scheduled to run at a point in virtual time. The
// callback receives the time at which it fires.
type Event struct {
	At     Time
	Fn     func(Time)
	seq    int64
	index  int
	cancel bool
}

// Cancel marks the event so that it is discarded instead of fired. It is
// safe to cancel an event that has already fired.
func (e *Event) Cancel() { e.cancel = true }

// EventQueue is a priority queue of timed callbacks, ordered by firing time
// with FIFO tie-breaking. It is the backbone for background activity such
// as write-back daemons and battery drain checks.
//
// The queue does not advance the clock by itself: the owner calls RunUntil
// (typically just before each foreground operation) to fire everything due.
type EventQueue struct {
	h   eventHeap
	seq int64
}

// NewEventQueue returns an empty queue.
func NewEventQueue() *EventQueue { return &EventQueue{} }

// Len reports the number of pending (possibly cancelled) events.
func (q *EventQueue) Len() int { return q.h.Len() }

// At schedules fn to run at time t and returns a handle that can cancel it.
func (q *EventQueue) At(t Time, fn func(Time)) *Event {
	q.seq++
	e := &Event{At: t, Fn: fn, seq: q.seq}
	heap.Push(&q.h, e)
	return e
}

// After schedules fn to run d after now.
func (q *EventQueue) After(now Time, d Duration, fn func(Time)) *Event {
	return q.At(now.Add(d), fn)
}

// Next reports the firing time of the earliest live event, and whether one
// exists.
func (q *EventQueue) Next() (Time, bool) {
	q.dropCancelled()
	if q.h.Len() == 0 {
		return 0, false
	}
	return q.h[0].At, true
}

// RunUntil fires, in time order, every live event scheduled at or before t.
// Events scheduled by callbacks are honoured if they also fall at or before
// t. It returns the number of events fired.
func (q *EventQueue) RunUntil(t Time) int {
	fired := 0
	for {
		q.dropCancelled()
		if q.h.Len() == 0 || q.h[0].At > t {
			return fired
		}
		e := heap.Pop(&q.h).(*Event)
		e.Fn(e.At)
		fired++
	}
}

func (q *EventQueue) dropCancelled() {
	for q.h.Len() > 0 && q.h[0].cancel {
		heap.Pop(&q.h)
	}
}

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}
