package sim

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestClockAdvance(t *testing.T) {
	c := NewClock()
	if c.Now() != 0 {
		t.Fatalf("new clock at %v, want 0", c.Now())
	}
	c.Advance(5 * Millisecond)
	if got := c.Now(); got != Time(5*Millisecond) {
		t.Fatalf("Now() = %v, want 5ms", got)
	}
	c.AdvanceTo(Time(7 * Millisecond))
	if got := c.Now(); got != Time(7*Millisecond) {
		t.Fatalf("Now() = %v, want 7ms", got)
	}
}

func TestClockBackwardsPanics(t *testing.T) {
	c := NewClock()
	c.Advance(Second)
	for name, fn := range map[string]func(){
		"Advance negative": func() { c.Advance(-1) },
		"AdvanceTo past":   func() { c.AdvanceTo(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestDurationConversions(t *testing.T) {
	if D(3*time.Millisecond) != 3*Millisecond {
		t.Error("D(3ms) mismatch")
	}
	if (2 * Second).Std() != 2*time.Second {
		t.Error("Std() mismatch")
	}
	if got := (500 * Millisecond).Seconds(); got != 0.5 {
		t.Errorf("Seconds() = %v, want 0.5", got)
	}
	if got := Time(1500 * Millisecond).Seconds(); got != 1.5 {
		t.Errorf("Time.Seconds() = %v, want 1.5", got)
	}
	if got := Time(3 * Second).Sub(Time(Second)); got != 2*Second {
		t.Errorf("Sub = %v, want 2s", got)
	}
}

func TestEventQueueOrder(t *testing.T) {
	q := NewEventQueue()
	var fired []int
	q.At(Time(30), func(Time) { fired = append(fired, 3) })
	q.At(Time(10), func(Time) { fired = append(fired, 1) })
	q.At(Time(20), func(Time) { fired = append(fired, 2) })
	n := q.RunUntil(Time(25))
	if n != 2 {
		t.Fatalf("fired %d events, want 2", n)
	}
	if len(fired) != 2 || fired[0] != 1 || fired[1] != 2 {
		t.Fatalf("fired order %v, want [1 2]", fired)
	}
	q.RunUntil(Time(100))
	if len(fired) != 3 || fired[2] != 3 {
		t.Fatalf("fired order %v, want [1 2 3]", fired)
	}
}

func TestEventQueueFIFOTieBreak(t *testing.T) {
	q := NewEventQueue()
	var fired []int
	for i := 0; i < 10; i++ {
		i := i
		q.At(Time(5), func(Time) { fired = append(fired, i) })
	}
	q.RunUntil(Time(5))
	for i, v := range fired {
		if v != i {
			t.Fatalf("tie-broken order %v, want ascending", fired)
		}
	}
}

func TestEventQueueCancel(t *testing.T) {
	q := NewEventQueue()
	fired := false
	e := q.At(Time(10), func(Time) { fired = true })
	e.Cancel()
	if n := q.RunUntil(Time(100)); n != 0 {
		t.Fatalf("fired %d cancelled events", n)
	}
	if fired {
		t.Fatal("cancelled event ran")
	}
}

func TestEventQueueReschedulesWithinRun(t *testing.T) {
	q := NewEventQueue()
	count := 0
	var tick func(Time)
	tick = func(now Time) {
		count++
		if count < 5 {
			q.After(now, Duration(10), tick)
		}
	}
	q.At(Time(0), tick)
	q.RunUntil(Time(100))
	if count != 5 {
		t.Fatalf("periodic event fired %d times, want 5", count)
	}
}

func TestEventQueueNext(t *testing.T) {
	q := NewEventQueue()
	if _, ok := q.Next(); ok {
		t.Fatal("empty queue reported a next event")
	}
	e := q.At(Time(42), func(Time) {})
	if at, ok := q.Next(); !ok || at != Time(42) {
		t.Fatalf("Next() = %v,%v want 42,true", at, ok)
	}
	e.Cancel()
	if _, ok := q.Next(); ok {
		t.Fatal("cancelled event still visible via Next")
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed streams diverged")
		}
	}
	c := NewRNG(8)
	same := true
	for i := 0; i < 10; i++ {
		if NewRNG(7).Uint64() == c.Uint64() {
			continue
		}
		same = false
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestRNGForkIndependence(t *testing.T) {
	a := NewRNG(1)
	f1 := a.Fork()
	// Consuming from the parent must not affect the already-forked child.
	want := make([]uint64, 5)
	for i := range want {
		want[i] = f1.Uint64()
	}
	b := NewRNG(1)
	f2 := b.Fork()
	b.Uint64() // extra parent draw after forking
	for i := range want {
		if got := f2.Uint64(); got != want[i] {
			t.Fatalf("fork stream changed by parent use: draw %d = %d want %d", i, got, want[i])
		}
	}
}

func TestRNGDistributionsSane(t *testing.T) {
	g := NewRNG(3)
	const n = 20000
	var expSum float64
	for i := 0; i < n; i++ {
		v := g.Exp(10)
		if v < 0 {
			t.Fatal("negative exponential draw")
		}
		expSum += v
	}
	if mean := expSum / n; mean < 9 || mean > 11 {
		t.Errorf("Exp(10) mean = %.2f, want ~10", mean)
	}
	for i := 0; i < 1000; i++ {
		if v := g.Pareto(2, 1.5); v < 2 {
			t.Fatalf("Pareto draw %v below minimum", v)
		}
		if v := g.LogNormal(0, 1); v <= 0 {
			t.Fatalf("LogNormal draw %v not positive", v)
		}
	}
}

func TestZipfSkew(t *testing.T) {
	g := NewRNG(5)
	z := g.Zipf(1.2, 1000)
	counts := make(map[uint64]int)
	const n = 50000
	for i := 0; i < n; i++ {
		v := z.Next()
		if v >= 1000 {
			t.Fatalf("Zipf draw %d out of range", v)
		}
		counts[v]++
	}
	if counts[0] <= n/100 {
		t.Errorf("Zipf hottest value drawn only %d/%d times; want heavy skew", counts[0], n)
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram("lat")
	for _, v := range []float64{1, 2, 3, 4, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Sum() != 110 {
		t.Fatalf("Sum = %v", h.Sum())
	}
	if h.Mean() != 22 {
		t.Fatalf("Mean = %v", h.Mean())
	}
	if h.Min() != 1 || h.Max() != 100 {
		t.Fatalf("Min/Max = %v/%v", h.Min(), h.Max())
	}
	if h.Quantile(0) != 1 || h.Quantile(1) != 100 {
		t.Fatal("extreme quantiles should be exact min/max")
	}
	if h.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram("empty")
	if h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram should report zeros")
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	h := NewHistogram("q")
	g := NewRNG(11)
	for i := 0; i < 100000; i++ {
		h.Observe(g.Float64() * 1000)
	}
	for _, q := range []float64{0.5, 0.9, 0.99} {
		got := h.Quantile(q)
		want := q * 1000
		if math.Abs(got-want)/want > 0.15 {
			t.Errorf("Quantile(%v) = %.1f, want within 15%% of %.1f", q, got, want)
		}
	}
}

// Property: quantiles are monotone in q and bounded by [min, max].
func TestHistogramQuantileMonotoneProperty(t *testing.T) {
	f := func(samples []float64) bool {
		h := NewHistogram("p")
		any := false
		for _, s := range samples {
			v := math.Abs(s)
			if math.IsInf(v, 0) || math.IsNaN(v) {
				continue
			}
			h.Observe(v)
			any = true
		}
		if !any {
			return true
		}
		prev := h.Quantile(0)
		for q := 0.0; q <= 1.0; q += 0.05 {
			cur := h.Quantile(q)
			if cur < prev || cur < h.Min() || cur > h.Max() {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCoV(t *testing.T) {
	if got := CoV([]int64{5, 5, 5, 5}); got != 0 {
		t.Errorf("CoV of equal values = %v, want 0", got)
	}
	if got := CoV(nil); got != 0 {
		t.Errorf("CoV(nil) = %v, want 0", got)
	}
	if got := CoV([]int64{0, 0, 0}); got != 0 {
		t.Errorf("CoV of zeros = %v, want 0", got)
	}
	skewed := CoV([]int64{0, 0, 0, 100})
	even := CoV([]int64{24, 25, 26, 25})
	if skewed <= even {
		t.Errorf("CoV skewed=%v should exceed even=%v", skewed, even)
	}
}

func TestMaxInt64(t *testing.T) {
	if MaxInt64(nil) != 0 {
		t.Error("MaxInt64(nil) != 0")
	}
	if MaxInt64([]int64{3, 9, 1}) != 9 {
		t.Error("MaxInt64 wrong")
	}
}

func TestEnergyAccounting(t *testing.T) {
	m := NewEnergyMeter()
	m.Charge("flash", 2*Millijoule)
	m.Charge("dram", Millijoule)
	m.Charge("flash", Millijoule)
	if m.Total() != 4*Millijoule {
		t.Fatalf("Total = %v", m.Total())
	}
	if m.Category("flash") != 3*Millijoule {
		t.Fatalf("flash = %v", m.Category("flash"))
	}
	m.Reset()
	if m.Total() != 0 || m.Category("flash") != 0 {
		t.Fatal("Reset did not clear meter")
	}
}

func TestEnergyFor(t *testing.T) {
	// 1000 mW (1 W) for 1 second = 1 joule.
	if got := EnergyFor(1000, Second); got != Joule {
		t.Fatalf("EnergyFor(1W, 1s) = %v, want 1 J", got)
	}
	// 1 mW for 1 ns = 1 pJ.
	if got := EnergyFor(1, Nanosecond); got != Picojoule {
		t.Fatalf("EnergyFor(1mW, 1ns) = %v pJ, want 1", int64(got))
	}
}

func TestEnergyString(t *testing.T) {
	cases := map[Energy]string{
		2 * Joule:      "2.000 J",
		3 * Millijoule: "3.000 mJ",
		4 * Microjoule: "4.000 uJ",
		5 * Nanojoule:  "5.000 nJ",
	}
	for e, want := range cases {
		if got := e.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int64(e), got, want)
		}
	}
}

func TestNegativeChargeClampedAndCounted(t *testing.T) {
	m := NewEnergyMeter()
	m.Charge("x", 5)
	m.Charge("x", -1)
	m.Charge("y", -100*Joule)
	if got := m.Total(); got != 5 {
		t.Errorf("Total() = %v after negative charges, want 5 (clamped)", got)
	}
	if got := m.Category("x"); got != 5 {
		t.Errorf("Category(x) = %v, want 5", got)
	}
	if got := m.DroppedNegativeCharges(); got != 2 {
		t.Errorf("DroppedNegativeCharges() = %d, want 2", got)
	}
	m.Reset()
	if got := m.DroppedNegativeCharges(); got != 0 {
		t.Errorf("DroppedNegativeCharges() = %d after Reset, want 0", got)
	}
}

func TestHistogramQuantileEmpty(t *testing.T) {
	h := NewHistogram("empty")
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 0 || math.IsNaN(got) {
			t.Errorf("empty Quantile(%g) = %v, want 0", q, got)
		}
	}
	if got := h.Mean(); got != 0 {
		t.Errorf("empty Mean() = %v, want 0", got)
	}
}

func TestHistogramQuantileSingleSample(t *testing.T) {
	for _, v := range []float64{0, 1, 3.5, 1e9} {
		h := NewHistogram("single")
		h.Observe(v)
		for _, q := range []float64{0, 0.5, 0.99, 1} {
			got := h.Quantile(q)
			if math.IsNaN(got) {
				t.Fatalf("single-sample Quantile(%g) is NaN for sample %g", q, v)
			}
			if got != v {
				t.Errorf("single-sample Quantile(%g) = %v, want the sample %g", q, got, v)
			}
		}
	}
}
