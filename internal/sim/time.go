// Package sim provides the deterministic discrete-event simulation kernel
// shared by every device model and operating-system layer in this
// repository: a virtual clock, an event queue, seeded random-number
// streams, statistics collectors, and an energy meter.
//
// All simulated components are passive: an operation on a device model
// computes a latency and an energy cost, charges them to the meters, and
// advances the shared clock. Components that need background activity
// (write-back daemons, cleaners) register timers on the event queue, which
// the driving layer pumps before each foreground operation.
package sim

import (
	"fmt"
	"time"
)

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation. Virtual time is completely decoupled from wall-clock time.
type Time int64

// Duration is a span of virtual time in nanoseconds. It mirrors
// time.Duration so the usual constants (time.Millisecond, ...) convert
// directly.
type Duration int64

// Common durations, re-exported for convenience so callers of this package
// do not need to import time for simple literals.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
	Minute               = 60 * Second
	Hour                 = 60 * Minute
)

// D converts a time.Duration into a sim.Duration.
func D(d time.Duration) Duration { return Duration(d.Nanoseconds()) }

// Std converts a sim.Duration back into a time.Duration.
func (d Duration) Std() time.Duration { return time.Duration(d) }

// Seconds reports the duration as a floating-point number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// String formats the duration using the time package's humane notation.
func (d Duration) String() string { return time.Duration(d).String() }

// Add offsets a point in time by a duration.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub reports the duration elapsed between u and t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds reports the time as a floating-point number of seconds since the
// start of the simulation.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the time as an offset from the simulation epoch.
func (t Time) String() string { return time.Duration(t).String() }

// Clock is the shared virtual clock. The zero value is a clock at the
// simulation epoch, ready to use.
type Clock struct {
	now Time
}

// NewClock returns a clock positioned at the simulation epoch.
func NewClock() *Clock { return &Clock{} }

// Now reports the current virtual time.
func (c *Clock) Now() Time { return c.now }

// Advance moves the clock forward by d. Negative durations are a
// programming error and panic: virtual time never runs backwards.
func (c *Clock) Advance(d Duration) {
	if d < 0 {
		panic(fmt.Sprintf("sim: clock advanced by negative duration %v", d))
	}
	c.now += Time(d)
}

// AdvanceTo moves the clock forward to t. Moving backwards panics.
func (c *Clock) AdvanceTo(t Time) {
	if t < c.now {
		panic(fmt.Sprintf("sim: clock moved backwards from %v to %v", c.now, t))
	}
	c.now = t
}
