package sim

import "fmt"

// Energy is an amount of energy in picojoules. Picojoule resolution makes
// nanosecond × milliwatt products exact (1 mW for 1 ns is exactly 1 pJ)
// while leaving headroom for multi-day simulations of watt-class loads:
// the int64 range covers about 9.2 MJ, three orders of magnitude above a
// typical notebook battery.
type Energy int64 // picojoules

// Energy units.
const (
	Picojoule  Energy = 1
	Nanojoule         = 1000 * Picojoule
	Microjoule        = 1000 * Nanojoule
	Millijoule        = 1000 * Microjoule
	Joule             = 1000 * Millijoule
)

// Joules reports the energy as floating-point joules.
func (e Energy) Joules() float64 { return float64(e) / float64(Joule) }

// String formats the energy with an adaptive unit.
func (e Energy) String() string {
	j := e.Joules()
	switch {
	case j >= 1:
		return fmt.Sprintf("%.3f J", j)
	case j >= 1e-3:
		return fmt.Sprintf("%.3f mJ", j*1e3)
	case j >= 1e-6:
		return fmt.Sprintf("%.3f uJ", j*1e6)
	default:
		return fmt.Sprintf("%.3f nJ", j*1e9)
	}
}

// EnergyFor computes the energy drawn by a load of p milliwatts held for d.
// 1 mW × 1 ns = 1 pJ, so the product is exact in picojoules.
func EnergyFor(pMilliwatts float64, d Duration) Energy {
	return Energy(pMilliwatts * float64(d))
}

// EnergyMeter accumulates per-component energy draw. Device models charge
// it for every operation and for idle power over elapsed time; experiment
// drivers read it to report battery impact.
type EnergyMeter struct {
	total           Energy
	byCategory      map[string]Energy
	droppedNegative int64
}

// NewEnergyMeter returns an empty meter.
func NewEnergyMeter() *EnergyMeter {
	return &EnergyMeter{byCategory: make(map[string]Energy)}
}

// Charge records e joules of consumption attributed to category. A
// negative charge is a modelling bug, not physics: it is clamped to zero
// (the meter stays monotone) and counted, so telemetry can surface it as
// a dropped_negative_charges metric instead of silently corrupting the
// energy story.
func (m *EnergyMeter) Charge(category string, e Energy) {
	if e < 0 {
		m.droppedNegative++
		return
	}
	m.total += e
	m.byCategory[category] += e
}

// DroppedNegativeCharges reports how many negative charges were clamped.
func (m *EnergyMeter) DroppedNegativeCharges() int64 { return m.droppedNegative }

// Total reports the accumulated energy across all categories.
func (m *EnergyMeter) Total() Energy { return m.total }

// Category reports the accumulated energy for one category.
func (m *EnergyMeter) Category(c string) Energy { return m.byCategory[c] }

// Reset zeroes the meter, including the dropped-negative count.
func (m *EnergyMeter) Reset() {
	m.total = 0
	m.byCategory = make(map[string]Energy)
	m.droppedNegative = 0
}
