package sim

import (
	"math"
	"math/rand"
)

// RNG is a seeded, deterministic random-number stream with the
// distributions the workload generators need. Two RNGs constructed with the
// same seed produce identical streams, which keeps every experiment in this
// repository reproducible run-to-run.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a stream seeded with seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Fork derives an independent stream from this one. Forked streams let
// separate model components (file sizes, lifetimes, addresses) consume
// randomness without perturbing each other when one component's draw count
// changes.
func (g *RNG) Fork() *RNG { return NewRNG(g.r.Int63()) }

// Intn returns a uniform integer in [0, n). n must be > 0.
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Int63n returns a uniform int64 in [0, n). n must be > 0.
func (g *RNG) Int63n(n int64) int64 { return g.r.Int63n(n) }

// Uint64 returns a uniform 64-bit value.
func (g *RNG) Uint64() uint64 { return g.r.Uint64() }

// Float64 returns a uniform float in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Perm returns a random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Bool returns true with probability p.
func (g *RNG) Bool(p float64) bool { return g.r.Float64() < p }

// Exp returns an exponentially distributed value with the given mean.
func (g *RNG) Exp(mean float64) float64 { return g.r.ExpFloat64() * mean }

// LogNormal returns a log-normally distributed value where mu and sigma are
// the parameters of the underlying normal (so the median is e^mu).
func (g *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(g.r.NormFloat64()*sigma + mu)
}

// Pareto returns a Pareto-distributed value with minimum xm and shape
// alpha. Heavy-tailed file lifetimes and sizes use this.
func (g *RNG) Pareto(xm, alpha float64) float64 {
	u := g.r.Float64()
	for u == 0 {
		u = g.r.Float64()
	}
	return xm / math.Pow(u, 1/alpha)
}

// Zipf returns a generator of Zipf-distributed values in [0, n) with
// exponent s > 1 being more skewed as s grows. The hottest value is 0.
func (g *RNG) Zipf(s float64, n uint64) *Zipf {
	if s <= 1 {
		s = 1.0000001
	}
	return &Zipf{z: rand.NewZipf(g.r, s, 1, n-1)}
}

// Zipf draws from a fixed Zipf distribution.
type Zipf struct {
	z *rand.Zipf
}

// Next returns the next draw.
func (z *Zipf) Next() uint64 { return z.z.Uint64() }
