package sim

import (
	"fmt"
	"math"
	"sort"
)

// Counter accumulates a monotonically increasing count (operations, bytes).
type Counter struct {
	n int64
}

// Add increases the counter by d.
func (c *Counter) Add(d int64) { c.n += d }

// Inc increases the counter by one.
func (c *Counter) Inc() { c.n++ }

// Value reports the current count.
func (c *Counter) Value() int64 { return c.n }

// Reset zeroes the counter.
func (c *Counter) Reset() { c.n = 0 }

// Histogram collects scalar samples (latencies, sizes) into logarithmic
// buckets and tracks exact count, sum, min and max. Percentiles are
// estimated from the bucket boundaries; with the default 8 sub-buckets per
// power of two the relative error is below 10%, which is ample for the
// latency-shape comparisons the experiments make.
type Histogram struct {
	Name    string
	count   int64
	sum     float64
	min     float64
	max     float64
	buckets map[int]int64
}

// NewHistogram returns an empty histogram labelled name.
func NewHistogram(name string) *Histogram {
	return &Histogram{Name: name, min: math.Inf(1), max: math.Inf(-1), buckets: make(map[int]int64)}
}

const histSubBuckets = 8

func histBucket(v float64) int {
	if v <= 0 {
		return math.MinInt32
	}
	return int(math.Floor(math.Log2(v) * histSubBuckets))
}

func histBucketUpper(b int) float64 {
	if b == math.MinInt32 {
		return 0
	}
	return math.Exp2(float64(b+1) / histSubBuckets)
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.buckets[histBucket(v)]++
}

// ObserveDuration records a latency sample in nanoseconds.
func (h *Histogram) ObserveDuration(d Duration) { h.Observe(float64(d)) }

// Count reports the number of samples.
func (h *Histogram) Count() int64 { return h.count }

// Sum reports the sum of all samples.
func (h *Histogram) Sum() float64 { return h.sum }

// Mean reports the sample mean, or 0 with no samples.
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Min reports the smallest sample, or 0 with no samples.
func (h *Histogram) Min() float64 {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max reports the largest sample, or 0 with no samples.
func (h *Histogram) Max() float64 {
	if h.count == 0 {
		return 0
	}
	return h.max
}

// Merge folds every sample recorded in src into h, as if each had been
// Observed here. The parallel experiment engine uses it to combine
// per-job histograms into the run-wide aggregate; merging preserves
// count, sum, min, max and the bucket shape exactly, so quantile
// estimates equal those of a single histogram fed the union of samples.
func (h *Histogram) Merge(src *Histogram) {
	if src == nil || src.count == 0 {
		return
	}
	h.count += src.count
	h.sum += src.sum
	if src.min < h.min {
		h.min = src.min
	}
	if src.max > h.max {
		h.max = src.max
	}
	for b, n := range src.buckets {
		h.buckets[b] += n
	}
}

// Quantile estimates the q-th quantile (q in [0,1]) from the buckets. The
// exact min and max are returned for q=0 and q=1. An empty histogram
// reports 0 and a single-sample histogram reports that sample exactly —
// never NaN — so downstream tables stay printable.
func (h *Histogram) Quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	if h.count == 1 {
		return h.min
	}
	if q <= 0 {
		return h.Min()
	}
	if q >= 1 {
		return h.Max()
	}
	keys := make([]int, 0, len(h.buckets))
	for k := range h.buckets {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	target := int64(math.Ceil(q * float64(h.count)))
	var cum int64
	for _, k := range keys {
		cum += h.buckets[k]
		if cum >= target {
			u := histBucketUpper(k)
			if u > h.max {
				u = h.max
			}
			return u
		}
	}
	return h.Max()
}

// String summarises the histogram.
func (h *Histogram) String() string {
	return fmt.Sprintf("%s: n=%d mean=%.1f p50=%.1f p99=%.1f max=%.1f",
		h.Name, h.count, h.Mean(), h.Quantile(0.5), h.Quantile(0.99), h.Max())
}

// CoV computes the coefficient of variation (stddev/mean) of vs. It is the
// wear-evenness metric for the wear-leveling experiments: 0 means perfectly
// even erase counts.
func CoV(vs []int64) float64 {
	if len(vs) == 0 {
		return 0
	}
	var sum float64
	for _, v := range vs {
		sum += float64(v)
	}
	mean := sum / float64(len(vs))
	if mean == 0 {
		return 0
	}
	var ss float64
	for _, v := range vs {
		d := float64(v) - mean
		ss += d * d
	}
	return math.Sqrt(ss/float64(len(vs))) / mean
}

// MaxInt64 returns the largest element of vs, or 0 when empty.
func MaxInt64(vs []int64) int64 {
	var m int64
	for _, v := range vs {
		if v > m {
			m = v
		}
	}
	return m
}
