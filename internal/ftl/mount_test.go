package ftl

import (
	"bytes"
	"testing"
	"testing/quick"

	"ssmobile/internal/device"
	"ssmobile/internal/flash"
	"ssmobile/internal/sim"
)

func oobFlash(t testing.TB) (*flash.Device, *sim.Clock) {
	t.Helper()
	clock := sim.NewClock()
	params := device.IntelFlash
	params.EraseLatencyNs = 1e6
	dev, err := flash.New(flash.Config{
		Banks:          2,
		BlocksPerBank:  32,
		BlockBytes:     4096,
		Params:         params,
		SpareUnitBytes: 1024,
		SpareBytes:     OOBRecordBytes,
	}, clock, sim.NewEnergyMeter())
	if err != nil {
		t.Fatal(err)
	}
	return dev, clock
}

func oobConfig() Config {
	return Config{
		PageBytes:       1024,
		ReserveBlocks:   3,
		Policy:          PolicyCostBenefit,
		HotCold:         true,
		BackgroundErase: true,
		PersistMapping:  true,
	}
}

func TestPersistMappingValidation(t *testing.T) {
	dev, clock := smallFlash(t, 0) // no spare area
	cfg := oobConfig()
	if _, err := New(dev, clock, cfg); err == nil {
		t.Error("PersistMapping accepted on spare-less device")
	}
	dev2, clock2 := oobFlash(t)
	bad := oobConfig()
	bad.PageBytes = 2048 // != spare unit
	if _, err := New(dev2, clock2, bad); err == nil {
		t.Error("PersistMapping accepted with mismatched spare unit")
	}
	direct := oobConfig()
	direct.Policy = PolicyDirect
	dev3, clock3 := oobFlash(t)
	if _, err := New(dev3, clock3, direct); err == nil {
		t.Error("PersistMapping accepted with direct policy")
	}
}

func TestMountRequiresPersistMapping(t *testing.T) {
	dev, clock := oobFlash(t)
	cfg := oobConfig()
	cfg.PersistMapping = false
	if _, err := Mount(dev, clock, cfg); err == nil {
		t.Error("Mount without PersistMapping accepted")
	}
}

func TestMountEmptyDevice(t *testing.T) {
	dev, clock := oobFlash(t)
	f, err := Mount(dev, clock, oobConfig())
	if err != nil {
		t.Fatal(err)
	}
	if f.FreeBlocks() != dev.NumBlocks() {
		t.Fatalf("empty mount has %d free blocks of %d", f.FreeBlocks(), dev.NumBlocks())
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMountRecoversMappingAndTags(t *testing.T) {
	dev, clock := oobFlash(t)
	f, err := New(dev, clock, oobConfig())
	if err != nil {
		t.Fatal(err)
	}
	tagFor := func(i int64) Tag {
		var tag Tag
		tag[0] = byte(i)
		tag[15] = 0xA5
		return tag
	}
	// Write tagged pages, overwrite some (so stale OOB records exist),
	// and trim one.
	for i := int64(0); i < 40; i++ {
		if err := f.WritePageTagged(i, page(byte(i), 1024), tagFor(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := int64(0); i < 10; i++ {
		if err := f.WritePage(i, page(byte(100+i), 1024)); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.TrimPage(39); err != nil {
		t.Fatal(err)
	}

	// Power fails: all Go-level state is lost; remount from the device.
	m, err := Mount(dev, clock, oobConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1024)
	for i := int64(0); i < 39; i++ {
		if !m.Mapped(i) {
			t.Fatalf("page %d unmapped after mount", i)
		}
		if err := m.ReadPage(i, buf); err != nil {
			t.Fatal(err)
		}
		want := byte(i)
		if i < 10 {
			want = byte(100 + i) // the overwrite must win via seq numbers
		}
		if buf[0] != want {
			t.Fatalf("page %d reads %d want %d", i, buf[0], want)
		}
		if got := m.TagOf(i); got != tagFor(i) {
			t.Fatalf("page %d tag %v want %v", i, got, tagFor(i))
		}
	}
	// The trimmed page is resurrected by the scan (trims are not
	// persisted); its stale content is visible but harmless — higher
	// layers reap it. Document the behaviour by asserting it.
	if !m.Mapped(39) {
		t.Log("note: trimmed page not resurrected (block was cleaned)")
	}
}

func TestMountedLayerIsFullyOperational(t *testing.T) {
	dev, clock := oobFlash(t)
	f, err := New(dev, clock, oobConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 30; i++ {
		if err := f.WritePage(i, page(byte(i), 1024)); err != nil {
			t.Fatal(err)
		}
	}
	m, err := Mount(dev, clock, oobConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Heavy overwrites must trigger cleaning without corrupting data.
	for round := 0; round < 50; round++ {
		for i := int64(0); i < 30; i++ {
			if err := m.WritePage(i, page(byte(round), 1024)); err != nil {
				t.Fatalf("round %d page %d: %v", round, i, err)
			}
		}
	}
	if m.Stats().Cleans == 0 {
		t.Fatal("no cleaning after mount")
	}
	buf := make([]byte, 1024)
	for i := int64(0); i < 30; i++ {
		if err := m.ReadPage(i, buf); err != nil {
			t.Fatal(err)
		}
		if buf[0] != 49 {
			t.Fatalf("page %d = %d after post-mount overwrites", i, buf[0])
		}
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMountSequenceNumbersContinue(t *testing.T) {
	dev, clock := oobFlash(t)
	f, err := New(dev, clock, oobConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := f.WritePage(0, page(1, 1024)); err != nil {
		t.Fatal(err)
	}
	m, err := Mount(dev, clock, oobConfig())
	if err != nil {
		t.Fatal(err)
	}
	// A new write after mount must supersede the old record.
	if err := m.WritePage(0, page(2, 1024)); err != nil {
		t.Fatal(err)
	}
	m2, err := Mount(dev, clock, oobConfig())
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1024)
	if err := m2.ReadPage(0, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 2 {
		t.Fatalf("second-generation write lost: %d", buf[0])
	}
}

// Property: for random write sequences, remounting reproduces exactly the
// pre-failure page contents.
func TestMountEquivalenceProperty(t *testing.T) {
	f := func(ops []struct {
		LPN uint8
		Val byte
	}) bool {
		dev, clock := oobFlash(t)
		l, err := New(dev, clock, oobConfig())
		if err != nil {
			return false
		}
		model := map[int64]byte{}
		for _, o := range ops {
			lpn := int64(o.LPN) % l.LogicalPages()
			if err := l.WritePage(lpn, page(o.Val, 1024)); err != nil {
				return false
			}
			model[lpn] = o.Val
		}
		m, err := Mount(dev, clock, oobConfig())
		if err != nil {
			return false
		}
		if err := m.CheckInvariants(); err != nil {
			return false
		}
		buf := make([]byte, 1024)
		for lpn, want := range model {
			if err := m.ReadPage(lpn, buf); err != nil {
				return false
			}
			if buf[0] != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestOOBEncodeDecode(t *testing.T) {
	var tag Tag
	copy(tag[:], "object-block-tag")
	rec := encodeOOB(42, 1234, tag)
	seq, lpn, gotTag, ok := decodeOOB(rec)
	if !ok || seq != 42 || lpn != 1234 || gotTag != tag {
		t.Fatalf("decode: %d %d %v %v", seq, lpn, gotTag, ok)
	}
	if _, _, _, ok := decodeOOB(bytes.Repeat([]byte{0xFF}, OOBRecordBytes)); ok {
		t.Fatal("erased spare decoded as a record")
	}
	if _, _, _, ok := decodeOOB(rec[:10]); ok {
		t.Fatal("short record decoded")
	}
}
