package ftl

// This file holds the incremental indexes that replace the translation
// layer's per-allocation linear scans:
//
//   - victimIndex: one lazily-invalidated min-heap per cleaning policy
//     (plus one ordered bucket per valid-count for cost-benefit), so
//     pickVictim is O(log n) amortized instead of O(numBlocks);
//   - the wear index (wearHeap + a maintained maximum erase count), so
//     static wear leveling stops rescanning every block on every write;
//   - bankPool: the free-block pool, still the exact swap-remove list the
//     scan-based code used (tie-breaks depend on its internal order) but
//     indexed by two position-aware heaps so wear-aware allocation is
//     O(log n) instead of a scan of the free list.
//
// Every index reproduces the linear scans' choices exactly — including
// tie-breaking — which the policy-equivalence tests assert against the
// retained scan implementations (pickVictimScan, levelWearScan).

// lazyEntry is one heap element: a block snapshotted with the two sort
// keys it had when pushed. Entries are never updated in place; a block
// whose keys change is re-pushed, and entries whose snapshot no longer
// matches the block's live state are discarded when they surface.
type lazyEntry struct {
	k1, k2 int64
	block  int
}

// lazyHeap is a binary min-heap over (k1, k2, block) with lazy deletion.
type lazyHeap struct {
	es []lazyEntry
}

func (h *lazyHeap) len() int { return len(h.es) }

func entryLess(a, b lazyEntry) bool {
	if a.k1 != b.k1 {
		return a.k1 < b.k1
	}
	if a.k2 != b.k2 {
		return a.k2 < b.k2
	}
	return a.block < b.block
}

func (h *lazyHeap) push(e lazyEntry) {
	h.es = append(h.es, e)
	i := len(h.es) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !entryLess(h.es[i], h.es[p]) {
			break
		}
		h.es[i], h.es[p] = h.es[p], h.es[i]
		i = p
	}
}

func (h *lazyHeap) popTop() {
	n := len(h.es) - 1
	h.es[0] = h.es[n]
	h.es = h.es[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && entryLess(h.es[l], h.es[m]) {
			m = l
		}
		if r < n && entryLess(h.es[r], h.es[m]) {
			m = r
		}
		if m == i {
			return
		}
		h.es[i], h.es[m] = h.es[m], h.es[i]
		i = m
	}
}

// peekValid discards stale tops until the minimum live entry surfaces and
// returns it without removing it (the entry stays until the block's state
// changes and invalidates it). valid reports whether an entry still
// matches the block's live state.
func (h *lazyHeap) peekValid(valid func(lazyEntry) bool) (lazyEntry, bool) {
	for len(h.es) > 0 {
		if valid(h.es[0]) {
			return h.es[0], true
		}
		h.popTop()
	}
	return lazyEntry{}, false
}

// compact drops every stale entry in one pass, bounding heap growth on
// long runs (each overwrite pushes an entry; without compaction the heap
// would grow with total writes, not with live blocks).
func (h *lazyHeap) compact(valid func(lazyEntry) bool) {
	kept := h.es[:0]
	for _, e := range h.es {
		if valid(e) {
			kept = append(kept, e)
		}
	}
	h.es = kept
	// Re-establish the heap property bottom-up.
	n := len(h.es)
	for i := n/2 - 1; i >= 0; i-- {
		j := i
		for {
			l, r := 2*j+1, 2*j+2
			m := j
			if l < n && entryLess(h.es[l], h.es[m]) {
				m = l
			}
			if r < n && entryLess(h.es[r], h.es[m]) {
				m = r
			}
			if m == j {
				break
			}
			h.es[j], h.es[m] = h.es[m], h.es[j]
			j = m
		}
	}
}

// victimIndex tracks cleaning-eligible blocks (closed, not retired, at
// least one dead page) so pickVictim needs no device-wide scan.
type victimIndex struct {
	policy Policy
	// fifoGreedy holds (allocSeq, block) entries for FIFO and
	// (-dead, block) entries for greedy — both "min wins" orders that
	// reproduce the scan's strict-improvement tie-breaking.
	fifoGreedy lazyHeap
	// cbBuckets groups cost-benefit candidates by valid-page count; each
	// bucket is ordered by (lastWrite, block). Within a bucket the score
	// age×(1−u)/(1+u) is strictly monotone in age, so the bucket head is
	// the bucket's best candidate and pickVictim only compares one head
	// per bucket: O(pagesPerBlock), independent of device size.
	cbBuckets []lazyHeap
	pushes    int
}

func newVictimIndex(policy Policy, pagesPerBlock int) *victimIndex {
	v := &victimIndex{policy: policy}
	if policy == PolicyCostBenefit {
		v.cbBuckets = make([]lazyHeap, pagesPerBlock)
	}
	return v
}

// eligible reports whether the block can be cleaned right now.
func (f *FTL) victimEligible(b int) bool {
	info := &f.blocks[b]
	return !info.isFree && !info.isActive && !info.retired && info.dead > 0
}

// noteEligible records the block's current keys; callers invoke it
// whenever a block enters the eligible set or an eligible block's keys
// change (a page dies). Stale snapshots are discarded lazily.
func (f *FTL) noteEligible(b int) {
	v := f.victims
	if v == nil || !f.victimEligible(b) {
		return
	}
	info := &f.blocks[b]
	switch v.policy {
	case PolicyFIFO:
		// allocSeq is frozen while the block is closed: one push per
		// closure is enough, so only the 0→1 dead transition (or closing
		// with dead pages) lands here — the caller filters.
		v.fifoGreedy.push(lazyEntry{k1: info.allocSeq, block: b})
	case PolicyCostBenefit:
		v.cbBuckets[info.valid].push(lazyEntry{k1: int64(info.lastWrite), block: b})
	default: // greedy, and the greedy fallback for unknown policies
		v.fifoGreedy.push(lazyEntry{k1: -int64(info.dead), block: b})
	}
	v.pushes++
	if v.pushes > 4*f.numBlocks+64 {
		v.pushes = 0
		f.compactVictims()
	}
}

func (f *FTL) compactVictims() {
	v := f.victims
	switch v.policy {
	case PolicyFIFO:
		v.fifoGreedy.compact(func(e lazyEntry) bool {
			return f.victimEligible(e.block) && f.blocks[e.block].allocSeq == e.k1
		})
	case PolicyCostBenefit:
		for u := range v.cbBuckets {
			u := u
			v.cbBuckets[u].compact(func(e lazyEntry) bool {
				info := &f.blocks[e.block]
				return f.victimEligible(e.block) && info.valid == u && int64(info.lastWrite) == e.k1
			})
		}
	default:
		v.fifoGreedy.compact(func(e lazyEntry) bool {
			return f.victimEligible(e.block) && -int64(f.blocks[e.block].dead) == e.k1
		})
	}
}

// pickVictimIndexed returns the same block pickVictimScan would, without
// scanning: -1 if nothing is eligible.
func (f *FTL) pickVictimIndexed() int {
	v := f.victims
	switch v.policy {
	case PolicyFIFO:
		e, ok := v.fifoGreedy.peekValid(func(e lazyEntry) bool {
			return f.victimEligible(e.block) && f.blocks[e.block].allocSeq == e.k1
		})
		if !ok {
			return -1
		}
		return e.block
	case PolicyCostBenefit:
		best := -1
		var bestScore float64
		now := f.clock.Now()
		for u := range v.cbBuckets {
			u := u
			e, ok := v.cbBuckets[u].peekValid(func(e lazyEntry) bool {
				info := &f.blocks[e.block]
				return f.victimEligible(e.block) && info.valid == u && int64(info.lastWrite) == e.k1
			})
			if !ok {
				continue
			}
			info := &f.blocks[e.block]
			// The exact float expression the scan evaluates, so scores are
			// bit-identical.
			uu := float64(info.valid) / float64(f.pagesPerBlock)
			age := now.Sub(info.lastWrite).Seconds() + 1e-9
			score := age * (1 - uu) / (1 + uu)
			if best == -1 || score > bestScore || (score == bestScore && e.block < best) {
				best = e.block
				bestScore = score
			}
		}
		return best
	default:
		e, ok := v.fifoGreedy.peekValid(func(e lazyEntry) bool {
			return f.victimEligible(e.block) && -int64(f.blocks[e.block].dead) == e.k1
		})
		if !ok {
			return -1
		}
		return e.block
	}
}

// onBlockClosed indexes a block the moment it stops being a log head: it
// joins the wear index unconditionally and the victim index if any of its
// pages already died while it was active.
func (f *FTL) onBlockClosed(b int) {
	if f.wear != nil {
		f.wear.push(lazyEntry{k1: f.dev.EraseCount(b), block: b})
	}
	f.noteEligible(b)
}

// onPageDied updates the indexes after markDead on a closed block: greedy
// re-keys on the new dead count, cost-benefit moves buckets, FIFO becomes
// eligible on the first death only.
func (f *FTL) onPageDied(b int) {
	if f.victims == nil {
		return
	}
	info := &f.blocks[b]
	if info.isFree || info.isActive || info.retired {
		return // an active head's deaths are indexed when it closes
	}
	if f.victims.policy == PolicyFIFO && info.dead != 1 {
		return // already present with the same frozen key
	}
	f.noteEligible(b)
}

// wearColdest returns the least-erased closed block — the static
// wear-leveling candidate — or -1 when no block is closed. Ties break to
// the lowest block id, exactly as levelWearScan's strict < does.
func (f *FTL) wearColdest() (int, int64) {
	if f.wear == nil {
		return -1, 0
	}
	e, ok := f.wear.peekValid(func(e lazyEntry) bool {
		info := &f.blocks[e.block]
		return !info.isFree && !info.isActive && !info.retired && f.dev.EraseCount(e.block) == e.k1
	})
	if !ok {
		return -1, 0
	}
	return e.block, e.k1
}

// noteErase keeps the maintained maximum erase count current; erase
// counts only grow, so the running maximum equals the scan's device-wide
// maximum at every point.
func (f *FTL) noteErase(b int) {
	if c := f.dev.EraseCount(b); c > f.maxErase {
		f.maxErase = c
	}
}

// bankPool is one bank's free-block pool. The list field preserves the
// legacy swap-remove list byte for byte — wear-aware allocation broke
// ties by position in that list, and the experiments' outputs depend on
// those choices — while two heaps order the same blocks by
// (eraseCount, position) and (-eraseCount, position) so takeFreeBlock
// peeks a root instead of scanning. Positions change only on the single
// swap-remove a take performs, costing one heap Fix each.
type bankPool struct {
	list []int
	pos  map[int]int
	min  poolHeap
	max  poolHeap
}

// newBankPool sizes the list, position map and both heaps for n blocks
// up front (the bank's block count is known at construction), so filling
// the pool performs no growth reallocations.
func newBankPool(n int) *bankPool {
	p := &bankPool{
		list: make([]int, 0, n),
		pos:  make(map[int]int, n),
	}
	p.min.p, p.max.p = p, p
	p.min.blocks = make([]int, 0, n)
	p.max.blocks = make([]int, 0, n)
	p.max.desc = true
	return p
}

// poolHeap orders a bank's free blocks by erase count (ascending, or
// descending when desc) then by list position. The sift routines mirror
// container/heap exactly, but the interface-free entry points avoid
// boxing every block id into an `any` on each push — that boxing showed
// up as a steady hot-path allocation. idx tracks each block's heap slot
// so position changes can fix in O(log n).
type poolHeap struct {
	p      *bankPool
	blocks []int
	idx    map[int]int
	desc   bool
	count  func(int) int64
}

func (h *poolHeap) less(i, j int) bool {
	bi, bj := h.blocks[i], h.blocks[j]
	ci, cj := h.count(bi), h.count(bj)
	if ci != cj {
		if h.desc {
			return ci > cj
		}
		return ci < cj
	}
	return h.p.pos[bi] < h.p.pos[bj]
}

func (h *poolHeap) swap(i, j int) {
	h.blocks[i], h.blocks[j] = h.blocks[j], h.blocks[i]
	h.idx[h.blocks[i]] = i
	h.idx[h.blocks[j]] = j
}

func (h *poolHeap) push(b int) {
	h.idx[b] = len(h.blocks)
	h.blocks = append(h.blocks, b)
	h.up(len(h.blocks) - 1)
}

// removeAt deletes the element in slot i, exactly as heap.Remove does.
func (h *poolHeap) removeAt(i int) {
	n := len(h.blocks) - 1
	if n != i {
		h.swap(i, n)
		if !h.down(i, n) {
			h.up(i)
		}
	}
	b := h.blocks[n]
	h.blocks = h.blocks[:n]
	delete(h.idx, b)
}

// fix re-establishes the ordering after the element in slot i changed
// its key, exactly as heap.Fix does.
func (h *poolHeap) fix(i int) {
	if !h.down(i, len(h.blocks)) {
		h.up(i)
	}
}

func (h *poolHeap) up(j int) {
	for {
		i := (j - 1) / 2
		if i == j || !h.less(j, i) {
			break
		}
		h.swap(i, j)
		j = i
	}
}

func (h *poolHeap) down(i0, n int) bool {
	i := i0
	for {
		j1 := 2*i + 1
		if j1 >= n || j1 < 0 {
			break
		}
		j := j1
		if j2 := j1 + 1; j2 < n && h.less(j2, j1) {
			j = j2
		}
		if !h.less(j, i) {
			break
		}
		h.swap(i, j)
		i = j
	}
	return i > i0
}

func (p *bankPool) init(count func(int) int64) {
	p.min.count, p.max.count = count, count
	p.min.idx = make(map[int]int, cap(p.min.blocks))
	p.max.idx = make(map[int]int, cap(p.max.blocks))
}

func (p *bankPool) len() int { return len(p.list) }

// add appends the block, exactly where the legacy list put it.
func (p *bankPool) add(b int) {
	p.pos[b] = len(p.list)
	p.list = append(p.list, b)
	p.min.push(b)
	p.max.push(b)
}

// best returns the block the legacy wear-aware scan would pick: the
// first-positioned block with the extreme erase count.
func (p *bankPool) best(preferWorn bool) int {
	if preferWorn {
		return p.max.blocks[0]
	}
	return p.min.blocks[0]
}

// first returns the block at list head — the non-wear-aware choice.
func (p *bankPool) first() int { return p.list[0] }

// remove deletes block b with the legacy swap-remove, then repairs both
// heaps: the removed block leaves, and the block that slid into its list
// position re-sorts under its new position key.
func (p *bankPool) remove(b int) {
	i := p.pos[b]
	last := len(p.list) - 1
	moved := p.list[last]
	p.list[i] = moved
	p.list = p.list[:last]
	delete(p.pos, b)
	p.min.removeAt(p.min.idx[b])
	p.max.removeAt(p.max.idx[b])
	if moved != b {
		p.pos[moved] = i
		p.min.fix(p.min.idx[moved])
		p.max.fix(p.max.idx[moved])
	}
}

// contains reports whether the block is in this pool.
func (p *bankPool) contains(b int) bool {
	_, ok := p.pos[b]
	return ok
}
