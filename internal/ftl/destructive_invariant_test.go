package ftl

import (
	"errors"
	"math/rand"
	"testing"

	"ssmobile/internal/flash"
)

// The device's destructive-op ledger through the full translation layer:
// DestructiveOps counts issued programs, spare programs and erases, so
// issued == completed + cut must hold not just for raw device traffic
// (internal/flash's invariant test) but through FTL writes, cleaning,
// power cuts and the Mount recovery scan that follows them. Crash-point
// enumeration replays workloads by cut index against this ledger.

func ledgerOK(t *testing.T, dev *flash.Device, cuts int64) {
	t.Helper()
	st := dev.Stats()
	completed := st.Programs + st.Erases // Programs includes spare programs
	if got := dev.DestructiveOps(); got != completed+cuts {
		t.Fatalf("DestructiveOps = %d, want completed %d + cuts %d = %d",
			got, completed, cuts, completed+cuts)
	}
}

// TestDestructiveOpsLedgerAcrossRemount cuts power mid-workload at
// several indexes and fates, remounts by the honest recovery path, keeps
// writing, and checks the ledger at every stage: exactly the cut op is
// issued-but-not-completed, before and after recovery.
func TestDestructiveOpsLedgerAcrossRemount(t *testing.T) {
	for _, fate := range []flash.Outcome{flash.CutBefore, flash.CutDuring, flash.CutAfter} {
		for _, seed := range []int64{1993, 1, 42} {
			rng := rand.New(rand.NewSource(seed))
			inj := &flash.CutAt{Index: 20 + rng.Int63n(100), Fate: fate}
			dev, clock := oobFlashInjected(t, inj)
			f, err := New(dev, clock, oobConfig())
			if err != nil {
				t.Fatal(err)
			}

			// Random overwrite traffic over a small logical range drives
			// data programs, OOB spare programs and cleaner erases until
			// the injected cut fires.
			lpns := f.LogicalPages() / 4
			cut := false
			for i := 0; i < 2000 && !cut; i++ {
				err := f.WritePage(rng.Int63n(lpns), page(byte(i), 1024))
				switch {
				case errors.Is(err, flash.ErrPowerCut):
					cut = true
				case err != nil:
					t.Fatalf("fate %v seed %d write %d: %v", fate, seed, i, err)
				}
			}
			if !cut {
				t.Fatalf("fate %v seed %d: injector at %d never fired", fate, seed, inj.Index)
			}
			ledgerOK(t, dev, 1)

			// Recover the honest way: power restored, injector disarmed,
			// mapping rebuilt from the out-of-band records. Mount itself
			// issues destructive ops (re-erasing torn residue); they are
			// completed ops and must keep the ledger exact.
			dev.Restore()
			dev.SetInjector(nil)
			m, err := Mount(dev, clock, oobConfig())
			if err != nil {
				t.Fatal(err)
			}
			if err := m.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			ledgerOK(t, dev, 1)

			// Life goes on after recovery; the one cut op stays the only
			// issued-but-never-completed entry on the ledger.
			for i := 0; i < 200; i++ {
				if err := m.WritePage(rng.Int63n(lpns), page(byte(i), 1024)); err != nil {
					t.Fatalf("post-recovery write %d: %v", i, err)
				}
			}
			ledgerOK(t, dev, 1)
		}
	}
}
