package ftl

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"ssmobile/internal/engine"
	"ssmobile/internal/flash"
	"ssmobile/internal/obs"
	"ssmobile/internal/sim"
)

// Tag is opaque caller metadata attached to a logical page (typically an
// object id and block index). With mapping persistence on, it is stored
// in the page's out-of-band record and recovered by Mount. It aliases
// the storage-engine tag type so *FTL's tagged methods satisfy the
// engine interface directly, without conversion shims on the hot path.
type Tag = engine.Tag

// OOBRecordBytes is the size of the out-of-band record persisted per
// page: a magic word, the program sequence number, the logical page
// number, and the caller tag.
const OOBRecordBytes = 4 + 8 + 8 + 16

const oobMagic uint32 = 0x53534d4c // "SSML"

// The record's first word is the magic XOR-folded with a CRC of the
// payload, so the record self-checks without growing (a bigger record
// would change every spare-program latency). A torn spare program —
// power cut between the data page and the tail of its record — leaves a
// prefix whose CRC cannot match, where a bare magic word (entirely
// inside the surviving prefix) would have validated garbage: the torn
// record still carries a plausible seq and lpn, would win the
// per-logical-page sequence battle at Mount, and resurrect a half-written
// tag over committed data.
func oobCheck(rec []byte) uint32 {
	return oobMagic ^ crc32.ChecksumIEEE(rec[4:OOBRecordBytes])
}

func encodeOOB(seq uint64, lpn int64, tag Tag) []byte {
	rec := make([]byte, OOBRecordBytes)
	encodeOOBInto(rec, seq, lpn, tag)
	return rec
}

// encodeOOBInto writes the record into rec (len ≥ OOBRecordBytes); the
// program hot path passes a reusable scratch so per-page spare programs
// never allocate.
func encodeOOBInto(rec []byte, seq uint64, lpn int64, tag Tag) {
	binary.LittleEndian.PutUint64(rec[4:], seq)
	binary.LittleEndian.PutUint64(rec[12:], uint64(lpn))
	copy(rec[20:], tag[:])
	binary.LittleEndian.PutUint32(rec[0:], oobCheck(rec))
}

func decodeOOB(rec []byte) (seq uint64, lpn int64, tag Tag, ok bool) {
	if len(rec) < OOBRecordBytes || binary.LittleEndian.Uint32(rec) != oobCheck(rec) {
		return 0, 0, Tag{}, false
	}
	seq = binary.LittleEndian.Uint64(rec[4:])
	lpn = int64(binary.LittleEndian.Uint64(rec[12:]))
	copy(tag[:], rec[20:])
	return seq, lpn, tag, true
}

// MountStats reports what a Mount scan found beyond the live mapping —
// the wreckage a power cut left behind.
type MountStats struct {
	// CorruptRecords counts spare areas holding bytes that are neither
	// blank nor a self-consistent record: torn OOB programs and
	// trembling-erase residue.
	CorruptRecords int64
	// ReErasedBlocks counts record-free blocks that failed the blank
	// check and were erased back into the free pool.
	ReErasedBlocks int64
	// RetiredBlocks counts blocks retired as worn out during the scan.
	RetiredBlocks int64
}

// MountStats returns what the Mount scan found; zero for an FTL built
// with New.
func (f *FTL) MountStats() MountStats { return f.mountStats }

// blockNonBlankAt reports the first non-erased byte offset in the
// block's data or spare area (spare offsets follow data offsets), using
// uncharged peeks. A fully erased block returns ok == false.
func (f *FTL) blockNonBlankAt(b int) (off int64, ok bool) {
	dc := f.dev.Config()
	start := f.dev.BlockAddr(b)
	for i := int64(0); i < int64(dc.BlockBytes); i++ {
		if f.dev.Peek(start+i) != 0xFF {
			return i, true
		}
	}
	if dc.SpareBytes > 0 {
		firstUnit := start / int64(dc.SpareUnitBytes)
		unitsPerBlock := int64(dc.BlockBytes / dc.SpareUnitBytes)
		for u := int64(0); u < unitsPerBlock; u++ {
			for j, sb := range f.dev.PeekSpare(firstUnit + u) {
				if sb != 0xFF {
					return int64(dc.BlockBytes) + u*int64(dc.SpareBytes) + int64(j), true
				}
			}
		}
	}
	return 0, false
}

// checkOOBSupport verifies the device can carry per-page records.
func (f *FTL) checkOOBSupport() error {
	if f.cfg.Policy == PolicyDirect {
		return fmt.Errorf("ftl: mapping persistence not supported with the direct policy")
	}
	dc := f.dev.Config()
	if dc.SpareBytes < OOBRecordBytes {
		return fmt.Errorf("ftl: device spare of %d bytes below the %d-byte OOB record", dc.SpareBytes, OOBRecordBytes)
	}
	if dc.SpareUnitBytes != f.cfg.PageBytes {
		return fmt.Errorf("ftl: device spare unit %d != page size %d", dc.SpareUnitBytes, f.cfg.PageBytes)
	}
	return nil
}

// Mount rebuilds a translation layer from a device that already holds
// data, by scanning every page's out-of-band record — the power-failure
// recovery path. The configuration must have PersistMapping set and match
// the one the data was written with (page size, policy family). The scan
// is charged real device reads, so mount time appears in the simulation.
//
// Pages whose records are superseded by a newer sequence number for the
// same logical page are treated as dead, as are unprogrammed pages inside
// partially written blocks (interrupted log heads). Blocks the device
// reports worn out are retired again.
func Mount(dev *flash.Device, clock *sim.Clock, cfg Config) (*FTL, error) {
	if !cfg.PersistMapping {
		return nil, fmt.Errorf("ftl: Mount requires PersistMapping")
	}
	f, err := New(dev, clock, cfg)
	if err != nil {
		return nil, err
	}
	// Any destructive work the scan performs (re-erasing blocks left dirty
	// by a torn program or interrupted erase) is recovery, not cleaning.
	defer f.obs.PushCause(obs.CauseMountRecovery)()

	type claim struct {
		ppn int64
		seq uint64
		tag Tag
	}
	best := make(map[int64]claim)
	used := make([]bool, f.totalPages) // pages with any record
	rec := make([]byte, OOBRecordBytes)
	var maxSeq uint64

	for ppn := int64(0); ppn < f.totalPages; ppn++ {
		if _, err := dev.ReadSpare(ppn, rec); err != nil {
			return nil, err
		}
		seq, lpn, tag, ok := decodeOOB(rec)
		if !ok {
			for _, b := range rec {
				if b != 0xFF {
					// Non-blank but not self-consistent: a torn OOB
					// program or trembling-erase residue.
					f.mountStats.CorruptRecords++
					break
				}
			}
			continue
		}
		used[ppn] = true
		if seq > maxSeq {
			maxSeq = seq
		}
		if lpn < 0 || lpn >= f.logicalPages {
			continue // stale record for a page beyond this geometry
		}
		if prev, dup := best[lpn]; !dup || seq > prev.seq {
			best[lpn] = claim{ppn: ppn, seq: seq, tag: tag}
		}
	}
	f.writeSeq = maxSeq

	// Classify blocks and pages; only the winning (newest) record for
	// each logical page contributes its tag.
	winners := make(map[int64]int64, len(best)) // ppn → lpn
	for lpn, c := range best {
		winners[c.ppn] = lpn
		f.tags[lpn] = c.tag
		f.pageSeq[lpn] = c.seq
	}
	for b := 0; b < f.numBlocks; b++ {
		base := int64(b) * int64(f.pagesPerBlock)
		blockUsed := false
		for i := 0; i < f.pagesPerBlock; i++ {
			if used[base+int64(i)] {
				blockUsed = true
				break
			}
		}
		if dev.WornOut(b) {
			f.removeFromFreePool(b)
			f.retireBlockOnMount(b)
			f.mountStats.RetiredBlocks++
			continue
		}
		if !blockUsed {
			if _, dirtyRes := f.blockNonBlankAt(b); dirtyRes {
				// No surviving record, yet the block is not erased: a
				// torn data program whose OOB record never landed, or an
				// interrupted erase that left the array trembling. The
				// block sits in the free pool, and allocation programs
				// free blocks without erasing first — so it must be
				// erased again now, as a charged device operation.
				if _, err := dev.Erase(b); err != nil {
					return nil, err
				}
				f.mountStats.ReErasedBlocks++
				if dev.WornOut(b) {
					// That erase exhausted its endurance budget.
					f.removeFromFreePool(b)
					f.retireBlockOnMount(b)
					f.mountStats.RetiredBlocks++
				}
			}
			continue // stays in the free pool
		}
		f.removeFromFreePool(b)
		for i := 0; i < f.pagesPerBlock; i++ {
			ppn := base + int64(i)
			if lpn, win := winners[ppn]; win {
				f.state[ppn] = pageValid
				f.reverse[ppn] = lpn
				f.mapping[lpn] = ppn
				f.blocks[b].valid++
			} else {
				// Superseded record, stale record, or an unprogrammed
				// page in an interrupted log head: all reclaimable.
				f.state[ppn] = pageDead
				f.blocks[b].dead++
			}
		}
		f.blocks[b].allocSeq = f.nextAllocSeq()
	}
	f.rebuildIndexes()
	return f, nil
}

// removeFromFreePool takes a specific block out of its bank's free pool
// (the same swap-remove the pre-index free list performed, so the pool's
// internal order — which wear-aware allocation ties break on — evolves
// identically).
func (f *FTL) removeFromFreePool(blk int) {
	pool := f.freeByBank[f.dev.BankOf(blk)]
	if !pool.contains(blk) {
		return
	}
	pool.remove(blk)
	f.freeCount--
	f.blocks[blk].isFree = false
}

// rebuildIndexes recomputes the victim and wear indexes and the running
// max erase count from the block states Mount reconstructed. The device
// carries erase counts from its previous life, so the maximum must be
// rescanned rather than assumed zero.
func (f *FTL) rebuildIndexes() {
	f.maxErase = 0
	for b := 0; b < f.numBlocks; b++ {
		if c := f.dev.EraseCount(b); c > f.maxErase {
			f.maxErase = c
		}
	}
	if f.victims != nil {
		f.victims = newVictimIndex(f.cfg.Policy, f.pagesPerBlock)
	}
	if f.wear != nil {
		f.wear = &lazyHeap{}
	}
	for b := 0; b < f.numBlocks; b++ {
		info := &f.blocks[b]
		if info.isFree || info.isActive || info.retired {
			continue
		}
		if f.wear != nil {
			f.wear.push(lazyEntry{k1: f.dev.EraseCount(b), block: b})
		}
		f.noteEligible(b)
	}
}

// retireBlockOnMount marks a worn block retired without touching the
// wear-out statistics (the wear happened in a previous life).
func (f *FTL) retireBlockOnMount(blk int) {
	f.blocks[blk].retired = true
	f.retired++
	f.logicalPages -= int64(f.pagesPerBlock)
	if f.logicalPages < 0 {
		f.logicalPages = 0
	}
}

func (f *FTL) nextAllocSeq() int64 {
	f.allocSeq++
	return f.allocSeq
}
