package ftl

import (
	"fmt"
	"testing"

	"ssmobile/internal/device"
	"ssmobile/internal/flash"
	"ssmobile/internal/sim"
)

// The equivalence tests drive two translation layers — one deciding via
// the incremental indexes, one forced onto the retained linear-scan
// reference paths (scanMode) — through the same seeded randomized
// workload and assert they clean the same victims in the same order and
// end with identical erase counts and write amplification. This is the
// contract the indexes were built to: not merely "a good victim" but the
// scan's exact choice, tie-breaks included.

func equivalencePair(t *testing.T, policy Policy, hotCold bool, wearDelta int64) (ref, idx *FTL, clocks [2]*sim.Clock) {
	t.Helper()
	mk := func(scan bool) (*FTL, *sim.Clock) {
		clock := sim.NewClock()
		params := device.IntelFlash
		params.EraseLatencyNs = 1e6
		dev, err := flash.New(flash.Config{
			Banks:         2,
			BlocksPerBank: 32,
			BlockBytes:    4096,
			Params:        params,
		}, clock, sim.NewEnergyMeter())
		if err != nil {
			t.Fatal(err)
		}
		f, err := New(dev, clock, Config{
			PageBytes:          1024,
			ReserveBlocks:      3,
			Policy:             policy,
			HotCold:            hotCold,
			WearDeltaThreshold: wearDelta,
		})
		if err != nil {
			t.Fatal(err)
		}
		f.scanMode = scan
		return f, clock
	}
	ref, clocks[0] = mk(true)
	idx, clocks[1] = mk(false)
	return ref, idx, clocks
}

// driveEquivalence runs the same randomized workload against both layers
// and compares every observable: victim sequences, per-block erase
// counts, stats, and the internal invariants (which themselves cross-check
// index against scan after every phase).
func driveEquivalence(t *testing.T, ref, idx *FTL, seed int64) {
	t.Helper()
	var refVictims, idxVictims []int
	ref.onClean = func(v int) { refVictims = append(refVictims, v) }
	idx.onClean = func(v int) { idxVictims = append(idxVictims, v) }

	rng := sim.NewRNG(seed)
	pages := ref.LogicalPages()
	data := make([]byte, ref.PageBytes())
	for op := 0; op < 12000; op++ {
		// Zipf-ish skew: half the ops hit the hot sixteenth of the space.
		var lpn int64
		if rng.Intn(2) == 0 {
			lpn = rng.Int63n(pages/16 + 1)
		} else {
			lpn = rng.Int63n(pages)
		}
		switch rng.Intn(10) {
		case 0: // trim
			if err := ref.TrimPage(lpn); err != nil {
				t.Fatalf("ref trim: %v", err)
			}
			if err := idx.TrimPage(lpn); err != nil {
				t.Fatalf("idx trim: %v", err)
			}
		default:
			data[0] = byte(op)
			if err := ref.WritePage(lpn, data); err != nil {
				t.Fatalf("ref write op %d: %v", op, err)
			}
			if err := idx.WritePage(lpn, data); err != nil {
				t.Fatalf("idx write op %d: %v", op, err)
			}
		}
		if op%997 == 0 {
			if err := idx.CheckInvariants(); err != nil {
				t.Fatalf("idx invariants at op %d: %v", op, err)
			}
		}
	}
	if err := ref.CheckInvariants(); err != nil {
		t.Fatalf("ref invariants: %v", err)
	}
	if err := idx.CheckInvariants(); err != nil {
		t.Fatalf("idx invariants: %v", err)
	}

	if ref.cfg.Policy == PolicyDirect {
		// The direct policy erases in place and never selects victims; its
		// equivalence claim is just that behaviour is unchanged, which the
		// erase-count and stats comparisons below cover.
		if len(refVictims) != 0 || len(idxVictims) != 0 {
			t.Fatalf("direct policy ran the cleaner: scan %d, index %d", len(refVictims), len(idxVictims))
		}
	} else if len(refVictims) == 0 {
		t.Fatal("workload never triggered cleaning; equivalence not exercised")
	}
	if len(refVictims) != len(idxVictims) {
		t.Fatalf("victim count: scan cleaned %d, index cleaned %d", len(refVictims), len(idxVictims))
	}
	for i := range refVictims {
		if refVictims[i] != idxVictims[i] {
			t.Fatalf("victim %d: scan chose block %d, index chose block %d", i, refVictims[i], idxVictims[i])
		}
	}
	refCounts := ref.Device().EraseCounts()
	idxCounts := idx.Device().EraseCounts()
	for b := range refCounts {
		if refCounts[b] != idxCounts[b] {
			t.Fatalf("erase count block %d: scan %d, index %d", b, refCounts[b], idxCounts[b])
		}
	}
	rs, is := ref.Stats(), idx.Stats()
	if rs != is {
		t.Fatalf("stats diverged:\nscan:  %+v\nindex: %+v", rs, is)
	}
}

func TestVictimIndexEquivalence(t *testing.T) {
	cases := []struct {
		policy    Policy
		hotCold   bool
		wearDelta int64
	}{
		{PolicyDirect, false, 0},
		{PolicyFIFO, false, 0},
		{PolicyGreedy, false, 0},
		{PolicyCostBenefit, false, 0},
		{PolicyCostBenefit, true, 0},
		{PolicyCostBenefit, true, 8}, // static wear leveling engaged
		{PolicyGreedy, true, 8},
	}
	for _, tc := range cases {
		tc := tc
		name := fmt.Sprintf("%v/hotcold=%v/wear=%d", tc.policy, tc.hotCold, tc.wearDelta)
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			for _, seed := range []int64{1993, 7, 42} {
				ref, idx, _ := equivalencePair(t, tc.policy, tc.hotCold, tc.wearDelta)
				driveEquivalence(t, ref, idx, seed)
			}
		})
	}
}

// TestVictimIndexAfterMount asserts the indexes Mount rebuilds from the
// OOB scan make the same decisions as a scan over the mounted state.
func TestVictimIndexAfterMount(t *testing.T) {
	clock := sim.NewClock()
	params := device.IntelFlash
	params.EraseLatencyNs = 1e6
	dev, err := flash.New(flash.Config{
		Banks:          2,
		BlocksPerBank:  32,
		BlockBytes:     4096,
		SpareBytes:     64,
		SpareUnitBytes: 1024,
		Params:         params,
	}, clock, sim.NewEnergyMeter())
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		PageBytes:          1024,
		ReserveBlocks:      3,
		Policy:             PolicyCostBenefit,
		HotCold:            true,
		PersistMapping:     true,
		WearDeltaThreshold: 8,
	}
	f, err := New(dev, clock, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(1993)
	data := make([]byte, cfg.PageBytes)
	for op := 0; op < 4000; op++ {
		if err := f.WritePage(rng.Int63n(f.LogicalPages()), data); err != nil {
			t.Fatal(err)
		}
	}
	// Power failure: remount from the same device and verify the rebuilt
	// indexes agree with the reference scans over the recovered state.
	m, err := Mount(dev, clock, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatalf("mounted invariants: %v", err)
	}
	rng = sim.NewRNG(7)
	for op := 0; op < 4000; op++ {
		if err := m.WritePage(rng.Int63n(m.LogicalPages()), data); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatalf("post-mount workload invariants: %v", err)
	}
}
