package ftl

import (
	"fmt"
	"testing"

	"ssmobile/internal/device"
	"ssmobile/internal/flash"
	"ssmobile/internal/obs"
	"ssmobile/internal/sim"
)

// BenchmarkFTLWritePath measures the host-write fast path — allocation,
// cleaning-victim selection and wear-leveling checks included — across
// device sizes. With the incremental indexes these decisions are
// O(log n) in the block count, so ns/op should stay near-flat from 64MB
// to 1GB; the old full-scan paths made it grow linearly with the number
// of blocks.
func BenchmarkFTLWritePath(b *testing.B) {
	for _, mb := range []int{64, 256, 1024} {
		b.Run(fmt.Sprintf("size=%dMB", mb), func(b *testing.B) {
			benchWritePath(b, mb)
		})
	}
}

func benchWritePath(b *testing.B, mb int) {
	const (
		banks      = 4
		blockBytes = 64 << 10
		pageBytes  = 4 << 10
	)
	blocksPerBank := mb << 20 / banks / blockBytes
	clock := sim.NewClock()
	dev, err := flash.New(flash.Config{
		Banks:         banks,
		BlocksPerBank: blocksPerBank,
		BlockBytes:    blockBytes,
		Params:        device.IntelFlash,
		Obs:           obs.New(0),
	}, clock, sim.NewEnergyMeter())
	if err != nil {
		b.Fatal(err)
	}
	f, err := New(dev, clock, Config{
		PageBytes:          pageBytes,
		ReserveBlocks:      banks * blocksPerBank / 50,
		Policy:             PolicyCostBenefit,
		HotCold:            true,
		WearDeltaThreshold: 64,
		Obs:                obs.New(0),
	})
	if err != nil {
		b.Fatal(err)
	}

	// Fill 90% of the logical space (untimed) so that timed writes run
	// against a device under realistic cleaning pressure.
	data := make([]byte, pageBytes)
	for i := range data {
		data[i] = byte(i)
	}
	pages := f.LogicalPages()
	fill := pages * 9 / 10
	for lpn := int64(0); lpn < fill; lpn++ {
		if err := f.WritePage(lpn, data); err != nil {
			b.Fatal(err)
		}
	}

	// Timed: skewed overwrites — half the traffic hits the hot 1/16th of
	// the space, the classic workload that keeps the cleaner busy.
	rng := sim.NewRNG(1993)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var lpn int64
		if rng.Intn(2) == 0 {
			lpn = rng.Int63n(fill/16 + 1)
		} else {
			lpn = rng.Int63n(fill)
		}
		if err := f.WritePage(lpn, data); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	st := f.Stats()
	b.ReportMetric(float64(st.WriteAmplification), "write-amp")
}
