package ftl

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"ssmobile/internal/device"
	"ssmobile/internal/flash"
	"ssmobile/internal/sim"
)

// smallFlash builds a 2-bank, 64-block, 4KB-block device with fast
// parameters so endurance tests run quickly.
func smallFlash(t testing.TB, endurance int64) (*flash.Device, *sim.Clock) {
	t.Helper()
	clock := sim.NewClock()
	params := device.IntelFlash
	params.EnduranceCycles = endurance
	params.EraseLatencyNs = 1e6 // shrink erase so long runs stay fast
	dev, err := flash.New(flash.Config{
		Banks:         2,
		BlocksPerBank: 32,
		BlockBytes:    4096,
		Params:        params,
	}, clock, sim.NewEnergyMeter())
	if err != nil {
		t.Fatal(err)
	}
	return dev, clock
}

func newFTL(t testing.TB, policy Policy, hotCold bool) (*FTL, *sim.Clock) {
	t.Helper()
	dev, clock := smallFlash(t, 0)
	f, err := New(dev, clock, Config{
		PageBytes:     1024,
		ReserveBlocks: 3,
		Policy:        policy,
		HotCold:       hotCold,
	})
	if err != nil {
		t.Fatal(err)
	}
	return f, clock
}

func page(b byte, n int) []byte {
	p := make([]byte, n)
	for i := range p {
		p[i] = b
	}
	return p
}

func TestPolicyString(t *testing.T) {
	for p, want := range map[Policy]string{
		PolicyDirect: "direct", PolicyFIFO: "fifo",
		PolicyGreedy: "greedy", PolicyCostBenefit: "cost-benefit",
	} {
		if p.String() != want {
			t.Errorf("%d.String() = %q", int(p), p.String())
		}
	}
}

func TestConfigRejected(t *testing.T) {
	dev, clock := smallFlash(t, 0)
	if _, err := New(dev, clock, Config{PageBytes: 3000}); err == nil {
		t.Error("page size not dividing block size accepted")
	}
	if _, err := New(dev, clock, Config{PageBytes: 1024, ReserveBlocks: 64, Policy: PolicyGreedy}); err == nil {
		t.Error("reserve eating whole device accepted")
	}
}

func TestWriteReadBack(t *testing.T) {
	for _, policy := range []Policy{PolicyDirect, PolicyFIFO, PolicyGreedy, PolicyCostBenefit} {
		t.Run(policy.String(), func(t *testing.T) {
			f, _ := newFTL(t, policy, false)
			want := page(0xAB, f.PageBytes())
			if err := f.WritePage(7, want); err != nil {
				t.Fatal(err)
			}
			got := make([]byte, f.PageBytes())
			if err := f.ReadPage(7, got); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatal("read back mismatch")
			}
		})
	}
}

func TestOverwriteWithoutExplicitErase(t *testing.T) {
	// The whole point of the layer: hosts overwrite freely, the layer
	// handles flash's erase rule.
	for _, policy := range []Policy{PolicyDirect, PolicyGreedy, PolicyCostBenefit} {
		t.Run(policy.String(), func(t *testing.T) {
			f, _ := newFTL(t, policy, false)
			for i := byte(0); i < 10; i++ {
				if err := f.WritePage(3, page(i, f.PageBytes())); err != nil {
					t.Fatalf("overwrite %d: %v", i, err)
				}
			}
			got := make([]byte, f.PageBytes())
			if err := f.ReadPage(3, got); err != nil {
				t.Fatal(err)
			}
			if got[0] != 9 {
				t.Fatalf("last write lost, got %d", got[0])
			}
		})
	}
}

func TestUnwrittenPageReadsErased(t *testing.T) {
	f, _ := newFTL(t, PolicyCostBenefit, false)
	buf := make([]byte, f.PageBytes())
	if err := f.ReadPage(11, buf); err != nil {
		t.Fatal(err)
	}
	for _, b := range buf {
		if b != 0xFF {
			t.Fatal("unwritten page not erased-looking")
		}
	}
	if f.Mapped(11) {
		t.Fatal("unwritten page reported mapped")
	}
}

func TestBadArguments(t *testing.T) {
	f, _ := newFTL(t, PolicyCostBenefit, false)
	if err := f.WritePage(-1, page(0, f.PageBytes())); !errors.Is(err, ErrBadPage) {
		t.Error("negative lpn accepted")
	}
	if err := f.WritePage(f.LogicalPages(), page(0, f.PageBytes())); !errors.Is(err, ErrBadPage) {
		t.Error("lpn past capacity accepted")
	}
	if err := f.WritePage(0, page(0, 10)); !errors.Is(err, ErrBadSize) {
		t.Error("short write accepted")
	}
	if err := f.ReadPage(0, make([]byte, 10)); !errors.Is(err, ErrBadSize) {
		t.Error("short read buffer accepted")
	}
	if err := f.TrimPage(-3); !errors.Is(err, ErrBadPage) {
		t.Error("bad trim accepted")
	}
}

func TestLogicalCapacitySmallerThanDeviceForLogPolicies(t *testing.T) {
	f, _ := newFTL(t, PolicyCostBenefit, false)
	if f.LogicalBytes() >= f.Device().Capacity() {
		t.Fatal("log policy should reserve space")
	}
	d, _ := newFTL(t, PolicyDirect, false)
	if d.LogicalBytes() != d.Device().Capacity() {
		t.Fatal("direct policy should expose the whole device")
	}
}

func TestFillDeviceToLogicalCapacity(t *testing.T) {
	f, _ := newFTL(t, PolicyGreedy, false)
	for lpn := int64(0); lpn < f.LogicalPages(); lpn++ {
		if err := f.WritePage(lpn, page(byte(lpn), f.PageBytes())); err != nil {
			t.Fatalf("write %d/%d: %v", lpn, f.LogicalPages(), err)
		}
	}
	// Overwrites must still succeed when completely full.
	for lpn := int64(0); lpn < 20; lpn++ {
		if err := f.WritePage(lpn, page(0xEE, f.PageBytes())); err != nil {
			t.Fatalf("overwrite when full: %v", err)
		}
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCleaningPreservesData(t *testing.T) {
	f, _ := newFTL(t, PolicyCostBenefit, true)
	// Fill most of the space, then hammer a small hot set to force many
	// cleans, then verify every cold page survived.
	n := f.LogicalPages()
	for lpn := int64(0); lpn < n; lpn++ {
		if err := f.WritePage(lpn, page(byte(lpn%251), f.PageBytes())); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2000; i++ {
		lpn := int64(i % 5)
		if err := f.WritePage(lpn, page(byte(i%251), f.PageBytes())); err != nil {
			t.Fatal(err)
		}
	}
	if f.Stats().Cleans == 0 {
		t.Fatal("workload did not trigger cleaning")
	}
	buf := make([]byte, f.PageBytes())
	for lpn := int64(5); lpn < n; lpn += 97 {
		if err := f.ReadPage(lpn, buf); err != nil {
			t.Fatal(err)
		}
		if buf[0] != byte(lpn%251) {
			t.Fatalf("page %d corrupted by cleaning: %d", lpn, buf[0])
		}
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestTrimFreesSpace(t *testing.T) {
	f, _ := newFTL(t, PolicyGreedy, false)
	for lpn := int64(0); lpn < f.LogicalPages(); lpn++ {
		if err := f.WritePage(lpn, page(1, f.PageBytes())); err != nil {
			t.Fatal(err)
		}
	}
	for lpn := int64(0); lpn < f.LogicalPages(); lpn++ {
		if err := f.TrimPage(lpn); err != nil {
			t.Fatal(err)
		}
		if f.Mapped(lpn) {
			t.Fatal("trimmed page still mapped")
		}
	}
	// Everything is dead; a full rewrite must succeed.
	for lpn := int64(0); lpn < f.LogicalPages(); lpn++ {
		if err := f.WritePage(lpn, page(2, f.PageBytes())); err != nil {
			t.Fatalf("rewrite after trim: %v", err)
		}
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestNoSpaceWhenOverfullWithoutTrim(t *testing.T) {
	dev, clock := smallFlash(t, 0)
	f, err := New(dev, clock, Config{PageBytes: 4096, ReserveBlocks: 1, Policy: PolicyGreedy})
	if err != nil {
		t.Fatal(err)
	}
	// With PageBytes == BlockBytes every page is its own block. Filling
	// all logical pages then... there is nothing beyond logical capacity,
	// so instead check that out-of-range pages fail rather than eating
	// reserve.
	for lpn := int64(0); lpn < f.LogicalPages(); lpn++ {
		if err := f.WritePage(lpn, page(1, 4096)); err != nil {
			t.Fatalf("fill: %v", err)
		}
	}
	if err := f.WritePage(f.LogicalPages(), page(1, 4096)); !errors.Is(err, ErrBadPage) {
		t.Fatalf("expected ErrBadPage, got %v", err)
	}
}

func TestDirectPolicyWearsHotBlock(t *testing.T) {
	f, _ := newFTL(t, PolicyDirect, false)
	for i := 0; i < 50; i++ {
		if err := f.WritePage(0, page(byte(i), f.PageBytes())); err != nil {
			t.Fatal(err)
		}
	}
	dev := f.Device()
	if got := dev.EraseCount(0); got < 45 {
		t.Errorf("hot block erased %d times, want ~49", got)
	}
	if got := dev.EraseCount(1); got != 0 {
		t.Errorf("cold block erased %d times, want 0", got)
	}
}

func TestLogPolicySpreadsWear(t *testing.T) {
	f, _ := newFTL(t, PolicyCostBenefit, true)
	// Same hot workload as the direct test, but much longer.
	for i := 0; i < 2000; i++ {
		if err := f.WritePage(int64(i%4), page(byte(i), f.PageBytes())); err != nil {
			t.Fatal(err)
		}
	}
	counts := f.Device().EraseCounts()
	cov := sim.CoV(counts)
	if cov > 1.5 {
		t.Errorf("erase-count CoV %.2f; log-structured policy should spread wear", cov)
	}
}

func TestWearLevelingBeatsDirectOnSkewedWrites(t *testing.T) {
	run := func(policy Policy, hotCold bool) float64 {
		dev, clock := smallFlash(t, 0)
		f, err := New(dev, clock, Config{PageBytes: 1024, ReserveBlocks: 3, Policy: policy, HotCold: hotCold})
		if err != nil {
			t.Fatal(err)
		}
		g := sim.NewRNG(77)
		z := g.Zipf(1.3, uint64(f.LogicalPages()))
		for i := 0; i < 4000; i++ {
			if err := f.WritePage(int64(z.Next()), page(byte(i), 1024)); err != nil {
				t.Fatal(err)
			}
		}
		return sim.CoV(dev.EraseCounts())
	}
	direct := run(PolicyDirect, false)
	leveled := run(PolicyCostBenefit, true)
	if leveled >= direct {
		t.Errorf("cost-benefit CoV %.2f not below direct CoV %.2f", leveled, direct)
	}
}

func TestEnduranceRetirement(t *testing.T) {
	dev, clock := smallFlash(t, 25)
	f, err := New(dev, clock, Config{PageBytes: 1024, ReserveBlocks: 3, Policy: PolicyDirect})
	if err != nil {
		t.Fatal(err)
	}
	var wearErr error
	for i := 0; i < 100; i++ {
		if err := f.WritePage(0, page(byte(i), 1024)); err != nil {
			wearErr = err
			break
		}
	}
	if !errors.Is(wearErr, ErrDeviceWorn) {
		t.Fatalf("hot direct writes should wear out: %v", wearErr)
	}
	s := f.Stats()
	if s.RetiredBlocks != 1 || s.FirstWearOut == 0 {
		t.Fatalf("wear stats %+v", s)
	}
}

func TestLogPolicySurvivesLongPastDirectWearout(t *testing.T) {
	// With the same tiny endurance, the leveled layer should absorb far
	// more writes before losing a block than the direct layer.
	hostBytesUntilWear := func(policy Policy, hotCold bool) int64 {
		dev, clock := smallFlash(t, 25)
		f, err := New(dev, clock, Config{PageBytes: 1024, ReserveBlocks: 3, Policy: policy, HotCold: hotCold})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; ; i++ {
			if err := f.WritePage(int64(i%4), page(byte(i), 1024)); err != nil {
				break
			}
			if s := f.Stats(); s.RetiredBlocks > 0 {
				return s.FirstWearOutHostBytes
			}
			if i > 2_000_000 {
				return 1 << 62 // effectively never
			}
		}
		return f.Stats().FirstWearOutHostBytes
	}
	direct := hostBytesUntilWear(PolicyDirect, false)
	leveled := hostBytesUntilWear(PolicyCostBenefit, true)
	if leveled < 4*direct {
		t.Errorf("leveled lifetime %d bytes < 4x direct %d bytes", leveled, direct)
	}
}

func TestWriteAmplificationReported(t *testing.T) {
	f, _ := newFTL(t, PolicyGreedy, false)
	for i := 0; i < 500; i++ {
		if err := f.WritePage(int64(i)%f.LogicalPages(), page(byte(i), f.PageBytes())); err != nil {
			t.Fatal(err)
		}
	}
	s := f.Stats()
	if s.HostWrites != 500 || s.HostBytesWritten != 500*1024 {
		t.Fatalf("host stats %+v", s)
	}
	if s.WriteAmplification < 1 {
		t.Fatalf("write amplification %.2f below 1", s.WriteAmplification)
	}
}

func TestBackgroundEraseDoesNotStallWriter(t *testing.T) {
	mk := func(bg bool) sim.Duration {
		dev, clock := smallFlash(t, 0)
		f, err := New(dev, clock, Config{PageBytes: 1024, ReserveBlocks: 3, Policy: PolicyGreedy, BackgroundErase: bg})
		if err != nil {
			t.Fatal(err)
		}
		start := clock.Now()
		for i := 0; i < 3000; i++ {
			if err := f.WritePage(int64(i%8), page(byte(i), 1024)); err != nil {
				t.Fatal(err)
			}
		}
		return clock.Now().Sub(start)
	}
	fg := mk(false)
	bg := mk(true)
	if bg >= fg {
		t.Errorf("background erase elapsed %v not below foreground %v", bg, fg)
	}
}

func TestStaticWearLeveling(t *testing.T) {
	run := func(threshold int64) (wearDelta int64, coldMoved bool, f *FTL) {
		dev, clock := smallFlash(t, 0)
		f, err := New(dev, clock, Config{
			PageBytes: 1024, ReserveBlocks: 3,
			Policy: PolicyCostBenefit, HotCold: true,
			WearDeltaThreshold: threshold,
		})
		if err != nil {
			t.Fatal(err)
		}
		// Cold data fills a third of the space and is never touched again.
		coldPages := f.LogicalPages() / 3
		for lpn := int64(0); lpn < coldPages; lpn++ {
			if err := f.WritePage(lpn, page(0xC0, 1024)); err != nil {
				t.Fatal(err)
			}
		}
		// A hot set hammers the rest.
		for i := 0; i < 12000; i++ {
			lpn := coldPages + int64(i%8)
			if err := f.WritePage(lpn, page(byte(i), 1024)); err != nil {
				t.Fatal(err)
			}
		}
		counts := dev.EraseCounts()
		var min, max int64 = 1 << 62, 0
		for b := 0; b < dev.NumBlocks(); b++ {
			if f.blocks[b].retired {
				continue
			}
			c := counts[b]
			if c < min {
				min = c
			}
			if c > max {
				max = c
			}
		}
		return max - min, f.Stats().StaticMoves > 0, f
	}

	deltaOff, movedOff, _ := run(0)
	deltaOn, movedOn, fOn := run(8)
	if movedOff {
		t.Fatal("static moves happened with leveling disabled")
	}
	if !movedOn {
		t.Fatal("no static moves with leveling enabled")
	}
	if deltaOn >= deltaOff {
		t.Errorf("wear delta with leveling %d not below %d without", deltaOn, deltaOff)
	}
	// Cold data must still be intact after being shuffled around.
	buf := make([]byte, 1024)
	for lpn := int64(0); lpn < fOn.LogicalPages()/3; lpn += 13 {
		if err := fOn.ReadPage(lpn, buf); err != nil {
			t.Fatal(err)
		}
		if buf[0] != 0xC0 {
			t.Fatalf("cold page %d corrupted by static leveling: %x", lpn, buf[0])
		}
	}
	if err := fOn.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestIdleCleaning(t *testing.T) {
	dev, clock := smallFlash(t, 0)
	f, err := New(dev, clock, Config{
		PageBytes: 1024, ReserveBlocks: 3,
		Policy:             PolicyGreedy,
		IdleCleanThreshold: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Dirty most of the device, then trim half so plenty is cleanable.
	for lpn := int64(0); lpn < f.LogicalPages(); lpn++ {
		if err := f.WritePage(lpn, page(1, 1024)); err != nil {
			t.Fatal(err)
		}
	}
	for lpn := int64(0); lpn < f.LogicalPages(); lpn += 2 {
		if err := f.TrimPage(lpn); err != nil {
			t.Fatal(err)
		}
	}
	before := f.FreeBlocks()
	if err := f.CleanIdle(); err != nil {
		t.Fatal(err)
	}
	if f.FreeBlocks() < 10 {
		t.Fatalf("idle cleaning left only %d free blocks (had %d)", f.FreeBlocks(), before)
	}
	if f.Stats().IdleCleans == 0 {
		t.Fatal("no idle cleans counted")
	}
	if err := f.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Data still correct.
	buf := make([]byte, 1024)
	for lpn := int64(1); lpn < f.LogicalPages(); lpn += 17 {
		if lpn%2 == 0 {
			continue
		}
		if err := f.ReadPage(lpn, buf); err != nil {
			t.Fatal(err)
		}
		if buf[0] != 1 {
			t.Fatalf("page %d corrupted by idle cleaning", lpn)
		}
	}
}

func TestIdleCleaningDisabledByDefault(t *testing.T) {
	f, _ := newFTL(t, PolicyGreedy, false)
	if err := f.CleanIdle(); err != nil {
		t.Fatal(err)
	}
	if f.Stats().IdleCleans != 0 {
		t.Fatal("idle cleaning ran with zero threshold")
	}
}

// Property: a random mix of writes and trims over a small logical space
// matches a map model, and invariants hold throughout.
func TestFTLModelProperty(t *testing.T) {
	type op struct {
		LPN  uint16
		Val  byte
		Trim bool
	}
	f := func(ops []op, policyPick uint8, hotCold bool) bool {
		policy := []Policy{PolicyFIFO, PolicyGreedy, PolicyCostBenefit}[int(policyPick)%3]
		dev, clock := smallFlash(t, 0)
		l, err := New(dev, clock, Config{PageBytes: 1024, ReserveBlocks: 3, Policy: policy, HotCold: hotCold})
		if err != nil {
			return false
		}
		model := map[int64]byte{}
		for _, o := range ops {
			lpn := int64(o.LPN) % l.LogicalPages()
			if o.Trim {
				if err := l.TrimPage(lpn); err != nil {
					return false
				}
				delete(model, lpn)
			} else {
				if err := l.WritePage(lpn, page(o.Val, 1024)); err != nil {
					return false
				}
				model[lpn] = o.Val
			}
		}
		if err := l.CheckInvariants(); err != nil {
			t.Logf("invariant: %v", err)
			return false
		}
		buf := make([]byte, 1024)
		for lpn, want := range model {
			if err := l.ReadPage(lpn, buf); err != nil {
				return false
			}
			if buf[0] != want {
				t.Logf("lpn %d = %d, want %d", lpn, buf[0], want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
