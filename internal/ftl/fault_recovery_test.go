package ftl

import (
	"bytes"
	"errors"
	"testing"

	"ssmobile/internal/device"
	"ssmobile/internal/flash"
	"ssmobile/internal/sim"
)

// oobFlashInjected builds the oobFlash geometry with a fault injector.
func oobFlashInjected(t testing.TB, inj flash.Injector) (*flash.Device, *sim.Clock) {
	t.Helper()
	clock := sim.NewClock()
	params := device.IntelFlash
	params.EraseLatencyNs = 1e6
	dev, err := flash.New(flash.Config{
		Banks:          2,
		BlocksPerBank:  32,
		BlockBytes:     4096,
		Params:         params,
		SpareUnitBytes: 1024,
		SpareBytes:     OOBRecordBytes,
		Injector:       inj,
	}, clock, sim.NewEnergyMeter())
	if err != nil {
		t.Fatal(err)
	}
	return dev, clock
}

// Regression for the torn-OOB case: a power cut mid spare-program leaves
// a record whose magic, sequence number and logical page number all read
// back intact — only the tag is torn. Without the CRC fold such a record
// wins the per-page sequence battle at Mount and resurrects a
// half-written tag over the committed version.
func TestMountRejectsTornOOBRecord(t *testing.T) {
	// Destructive ops: 0 data v1, 1 record v1, 2 data v2, 3 record v2
	// (torn).
	dev, clock := oobFlashInjected(t, &flash.CutAt{Index: 3, Fate: flash.CutDuring})
	f, err := New(dev, clock, oobConfig())
	if err != nil {
		t.Fatal(err)
	}
	var tag Tag
	tag[0], tag[15] = 7, 0xA5
	if err := f.WritePageTagged(0, page(0xAA, 1024), tag); err != nil {
		t.Fatal(err)
	}
	if err := f.WritePage(0, page(0xBB, 1024)); !errors.Is(err, flash.ErrPowerCut) {
		t.Fatalf("overwrite with torn record: %v", err)
	}

	dev.Restore()
	m, err := Mount(dev, clock, oobConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if got := m.MountStats().CorruptRecords; got != 1 {
		t.Fatalf("CorruptRecords = %d, want 1", got)
	}
	// The torn version never committed: recovery must surface v1 with its
	// tag and sequence number, not the half-recorded v2.
	buf := make([]byte, 1024)
	if err := m.ReadPage(0, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, page(0xAA, 1024)) {
		t.Fatalf("recovered page is not v1 (first byte %02x)", buf[0])
	}
	if m.TagOf(0) != tag {
		t.Fatalf("recovered tag %x, want %x", m.TagOf(0), tag)
	}
	if m.SeqOf(0) != 1 {
		t.Fatalf("recovered seq %d, want 1", m.SeqOf(0))
	}
}

// Regression for the torn-data-page case: a cut mid data-program leaves a
// block holding torn bytes and no OOB record at all. Mount must not
// return it to the free pool as-is — allocation programs free blocks
// without erasing first, so the residue would surface later as a phantom
// overwrite error.
func TestMountReErasesTornDataResidue(t *testing.T) {
	dev, clock := oobFlashInjected(t, &flash.CutAt{Index: 0, Fate: flash.CutDuring})
	f, err := New(dev, clock, oobConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := f.WritePage(0, page(0x00, 1024)); !errors.Is(err, flash.ErrPowerCut) {
		t.Fatalf("torn first write: %v", err)
	}

	dev.Restore()
	m, err := Mount(dev, clock, oobConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := m.MountStats().ReErasedBlocks; got != 1 {
		t.Fatalf("ReErasedBlocks = %d, want 1", got)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Every block must be usable again: write through the whole logical
	// space, which cycles the allocator across every free block including
	// the re-erased one.
	for lpn := int64(0); lpn < m.LogicalPages(); lpn++ {
		if err := m.WritePage(lpn, page(byte(lpn), 1024)); err != nil {
			t.Fatalf("write lpn %d after recovery: %v", lpn, err)
		}
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// Regression for the interrupted-erase case: a cut mid cleaning-erase
// leaves the victim block trembling — mixed data, corrupt records — and
// it must be erased again before reuse. Every write acknowledged before
// the cut must still read back afterwards (cleaning relocates live pages
// before erasing, and relocated copies carry newer sequence numbers).
func TestMountAfterInterruptedCleaningErase(t *testing.T) {
	inj := flash.InjectorFunc(func(index int64, kind flash.OpKind, addr int64, n int) flash.Outcome {
		if kind == flash.OpErase {
			return flash.CutDuring
		}
		return flash.Run
	})
	dev, clock := oobFlashInjected(t, inj)
	f, err := New(dev, clock, oobConfig())
	if err != nil {
		t.Fatal(err)
	}
	last := make(map[int64]byte)
	var werr error
	for i := int64(0); ; i++ {
		if i > 100000 {
			t.Fatal("no cleaning erase ever ran")
		}
		lpn := i % 30
		v := byte(i)
		if werr = f.WritePage(lpn, page(v, 1024)); werr != nil {
			break
		}
		last[lpn] = v
	}
	if !errors.Is(werr, flash.ErrPowerCut) {
		t.Fatalf("workload died with %v, want power cut", werr)
	}

	dev.SetInjector(nil) // recovery runs on healthy hardware
	dev.Restore()
	m, err := Mount(dev, clock, oobConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if m.MountStats().ReErasedBlocks < 1 {
		t.Fatal("trembling victim block not re-erased at mount")
	}
	buf := make([]byte, 1024)
	for lpn, v := range last {
		if err := m.ReadPage(lpn, buf); err != nil {
			t.Fatalf("read lpn %d: %v", lpn, err)
		}
		if !bytes.Equal(buf, page(v, 1024)) {
			t.Fatalf("lpn %d lost its acknowledged value %d (got %02x)", lpn, v, buf[0])
		}
	}
	// The device stays serviceable: cycle the allocator through the
	// re-erased block.
	for lpn := int64(0); lpn < m.LogicalPages(); lpn++ {
		if err := m.WritePage(lpn, page(byte(lpn), 1024)); err != nil {
			t.Fatalf("write lpn %d after recovery: %v", lpn, err)
		}
	}
	if err := m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
