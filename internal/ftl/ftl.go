// Package ftl implements the flash storage layer of the paper's physical
// storage manager: the machinery that hides flash's erase-before-write
// behaviour and spreads wear evenly, using "garbage collection techniques
// like those used in log-structured file systems" (paper §3.3).
//
// Four policies are provided, from the naive baseline up to the paper's
// prescription, so the wear-leveling experiment can compare them:
//
//   - PolicyDirect maps logical pages to fixed physical pages. An
//     overwrite forces a read–erase–rewrite of the whole erase block, so a
//     hot page burns through its block's endurance while cold blocks stay
//     fresh. This is what happens with no storage manager at all.
//   - PolicyFIFO appends writes to a log and cleans blocks in allocation
//     order (round-robin). Wear is even but cleaning copies cold data
//     again and again.
//   - PolicyGreedy cleans the block with the most dead pages, minimising
//     copy work but ignoring wear and data temperature.
//   - PolicyCostBenefit uses the LFS cost-benefit formula
//     benefit/cost = age × (1−u) / (1+u), optionally with hot/cold data
//     separation (two log heads) and wear-aware free-block allocation:
//     hot data goes to the least-worn free blocks, relocated cold data to
//     the most-worn, which passively levels wear.
//
// Erases can be issued in the background (the bank stays busy but the
// writer does not stall), which is what makes the banking experiment's
// read-latency story work.
package ftl

import (
	"errors"
	"fmt"

	"ssmobile/internal/flash"
	"ssmobile/internal/obs"
	"ssmobile/internal/sim"
)

// Sentinel errors.
var (
	// ErrNoSpace reports that every logical page is live and no block can
	// be cleaned.
	ErrNoSpace = errors.New("ftl: no space")
	// ErrBadPage reports an out-of-range logical page number.
	ErrBadPage = errors.New("ftl: logical page out of range")
	// ErrBadSize reports data whose length is not exactly one page.
	ErrBadSize = errors.New("ftl: data must be exactly one page")
	// ErrDeviceWorn reports that wear has made the operation impossible.
	ErrDeviceWorn = errors.New("ftl: flash worn out")
)

// Policy selects the mapping and cleaning strategy.
type Policy int

// Policies, in increasing order of sophistication.
const (
	PolicyDirect Policy = iota
	PolicyFIFO
	PolicyGreedy
	PolicyCostBenefit
)

var policyNames = [...]string{"direct", "fifo", "greedy", "cost-benefit"}

// String names the policy.
func (p Policy) String() string {
	if int(p) < len(policyNames) {
		return policyNames[p]
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// Config parameterises the layer.
type Config struct {
	// PageBytes is the mapping granularity; it must divide the device's
	// erase-block size.
	PageBytes int
	// ReserveBlocks is the cleaning headroom: cleaning runs whenever the
	// free-block count is at or below this. At least 1; log policies
	// subtract the reserve (plus the two log heads) from the logical
	// capacity.
	ReserveBlocks int
	// Policy selects the cleaning strategy.
	Policy Policy
	// HotCold enables two log heads: overwrites (hot) and first writes /
	// cleaner relocations (cold) append to different blocks, and free
	// blocks are chosen wear-aware. Only meaningful for log policies.
	HotCold bool
	// BackgroundErase issues erases asynchronously so the writer does not
	// stall for them; the bank stays busy.
	BackgroundErase bool
	// PersistMapping writes an out-of-band record (sequence number,
	// logical page number, caller tag) into the flash spare area on every
	// program, so Mount can rebuild the full mapping by scanning the
	// device after a power loss. Requires a device whose spare-unit size
	// equals PageBytes with at least OOBRecordBytes of spare. Not
	// supported with PolicyDirect.
	PersistMapping bool
	// WearDeltaThreshold enables static wear leveling: when the spread
	// between the most- and least-erased blocks exceeds the threshold,
	// the cleaner forcibly relocates the coldest (least-erased, fully
	// live) block so its barely-worn cells rejoin the allocation pool.
	// Without it, truly cold data pins its blocks at zero erases while
	// the rest of the device wears out around it. Zero disables.
	WearDeltaThreshold int64
	// IdleCleanThreshold lets CleanIdle run cleaning in idle periods
	// until this many blocks are free, taking cleaning work off the
	// write path. Zero disables idle cleaning.
	IdleCleanThreshold int
	// Obs receives the layer's metrics and op spans; nil falls back to
	// obs.Default().
	Obs *obs.Observer
}

type pageState uint8

const (
	pageFree pageState = iota
	pageValid
	pageDead
)

type blockInfo struct {
	valid, dead int
	allocSeq    int64    // when the block last became a log head
	lastWrite   sim.Time // most recent program into the block
	isFree      bool
	isActive    bool
	retired     bool
}

// Stats aggregates the layer's counters for the experiments.
type Stats struct {
	HostWrites, HostReads int64
	HostBytesWritten      int64
	Cleans, CopiedPages   int64
	StaticMoves           int64 // static wear-leveling relocations
	IdleCleans            int64 // cleans run off the write path
	WriteAmplification    float64
	RetiredBlocks         int
	FirstWearOut          sim.Time // zero if none
	FirstWearOutHostBytes int64    // host bytes written when it happened
}

// FTL is the translation layer over one flash device. Not safe for
// concurrent use.
type FTL struct {
	dev   *flash.Device
	clock *sim.Clock
	cfg   Config

	pagesPerBlock int
	numBlocks     int
	totalPages    int64
	logicalPages  int64

	mapping []int64 // lpn → ppn, -1 unmapped
	reverse []int64 // ppn → lpn, -1 none
	state   []pageState
	blocks  []blockInfo

	freeByBank []*bankPool
	freeCount  int
	nextBank   int

	victims  *victimIndex     // victim selection index; nil for PolicyDirect
	wear     *lazyHeap        // cold-block index; nil unless static wear leveling is on
	maxErase int64            // running device-wide max erase count
	scanMode bool             // tests: decide via the linear-scan reference paths
	onClean  func(victim int) // test hook: observes the victim sequence

	hotActive, coldActive int // block ids, -1 when none
	hotPtr, coldPtr       int

	allocSeq int64
	tags     map[int64]Tag    // lpn → caller tag (persisted in OOB)
	pageSeq  map[int64]uint64 // lpn → newest program sequence
	writeSeq uint64           // monotone program sequence for OOB records

	mountStats MountStats // wreckage found by Mount; zero for New

	// Reusable hot-path scratch: cleanBuf carries one page through a
	// cleaning relocation, oobBuf one spare-area record per program. The
	// FTL is single-threaded and the device copies both out.
	cleanBuf []byte
	oobBuf   [OOBRecordBytes]byte

	obs                     *obs.Observer
	hostWrites, hostReads   *obs.Counter
	hostBytes               *obs.Counter
	cleans, copies          *obs.Counter
	staticMoves, idleCleans *obs.Counter
	retired                 int
	firstWearOut            sim.Time
	firstWearOutHostBytes   int64
}

// New builds a translation layer over dev. The device must be freshly
// erased (all blocks free), which is how flash.New delivers it.
func New(dev *flash.Device, clock *sim.Clock, cfg Config) (*FTL, error) {
	if cfg.PageBytes <= 0 || dev.BlockBytes()%cfg.PageBytes != 0 {
		return nil, fmt.Errorf("ftl: page size %d does not divide block size %d", cfg.PageBytes, dev.BlockBytes())
	}
	if cfg.ReserveBlocks < 1 {
		cfg.ReserveBlocks = 1
	}
	ppb := dev.BlockBytes() / cfg.PageBytes
	nb := dev.NumBlocks()
	total := int64(nb) * int64(ppb)

	f := &FTL{
		dev:           dev,
		clock:         clock,
		cfg:           cfg,
		pagesPerBlock: ppb,
		numBlocks:     nb,
		totalPages:    total,
		mapping:       make([]int64, total),
		reverse:       make([]int64, total),
		state:         make([]pageState, total),
		blocks:        make([]blockInfo, nb),
		freeByBank:    make([]*bankPool, dev.Banks()),
		hotActive:     -1,
		coldActive:    -1,
	}
	o := obs.Or(cfg.Obs)
	lbl := func(op string) obs.Labels { return obs.Labels{"layer": "ftl", "op": op} }
	f.obs = o
	f.hostWrites = o.Counter("host_ops_total", lbl("write"))
	f.hostReads = o.Counter("host_ops_total", lbl("read"))
	f.hostBytes = o.Counter("host_bytes_total", lbl("write"))
	f.cleans = o.Counter("cleans_total", obs.Labels{"layer": "ftl"})
	f.copies = o.Counter("copied_pages_total", obs.Labels{"layer": "ftl"})
	f.staticMoves = o.Counter("static_moves_total", obs.Labels{"layer": "ftl"})
	f.idleCleans = o.Counter("idle_cleans_total", obs.Labels{"layer": "ftl"})
	// Wear and cleaning gauges carry an "engine" label so alternative
	// storage backends (engine/pdl) report the same series into shared
	// dashboards without colliding.
	o.GaugeFunc("free_blocks", obs.Labels{"layer": "ftl", "engine": "ftl"}, func() float64 { return float64(f.freeCount) })
	// The serving layer reads this same lag signal to decide when to shed
	// load, so backpressure and dashboards share one definition of
	// "cleaner behind".
	o.GaugeFunc("cleaner_lag_blocks", obs.Labels{"layer": "ftl", "engine": "ftl"}, func() float64 { return float64(f.CleanerLag()) })
	// Write amplification: flash bytes programmed per host byte written,
	// overall and decomposed by wear-attribution cause (the device charges
	// every program to the observer's active obs.Cause). The per-cause
	// series sum to the overall gauge by construction.
	waOver := func(flashBytes func() int64) func() float64 {
		return func() float64 {
			hb := f.hostBytes.Value()
			if hb == 0 {
				return 0
			}
			return float64(flashBytes()) / float64(hb)
		}
	}
	o.GaugeFunc("write_amplification", obs.Labels{"layer": "ftl", "engine": "ftl"},
		waOver(func() int64 { return f.dev.Stats().BytesProgrammed }))
	for _, c := range obs.Causes {
		c := c
		o.GaugeFunc("write_amplification", obs.Labels{"layer": "ftl", "engine": "ftl", "cause": string(c)},
			waOver(func() int64 { return f.dev.CauseBytesProgrammed(c) }))
	}
	for i := range f.mapping {
		f.mapping[i] = -1
		f.reverse[i] = -1
	}
	perBank := (nb + len(f.freeByBank) - 1) / len(f.freeByBank)
	for bank := range f.freeByBank {
		p := newBankPool(perBank)
		p.init(func(b int) int64 { return dev.EraseCount(b) })
		f.freeByBank[bank] = p
	}
	for b := 0; b < nb; b++ {
		f.blocks[b].isFree = true
		f.freeByBank[dev.BankOf(b)].add(b)
	}
	f.freeCount = nb
	if cfg.Policy != PolicyDirect {
		f.victims = newVictimIndex(cfg.Policy, ppb)
		if cfg.WearDeltaThreshold > 0 {
			// One slot per block up front: the wear index holds at most
			// one live entry per closed block, and pre-sizing spares the
			// growth reallocations during the first cleaning cycles.
			f.wear = &lazyHeap{es: make([]lazyEntry, 0, nb)}
		}
	}

	if cfg.Policy == PolicyDirect {
		f.logicalPages = total
	} else {
		overhead := int64(cfg.ReserveBlocks+2) * int64(ppb)
		if overhead >= total {
			return nil, fmt.Errorf("ftl: reserve %d blocks leaves no logical space on %d blocks", cfg.ReserveBlocks, nb)
		}
		f.logicalPages = total - overhead
	}
	if cfg.PersistMapping {
		if err := f.checkOOBSupport(); err != nil {
			return nil, err
		}
		f.tags = make(map[int64]Tag)
		f.pageSeq = make(map[int64]uint64)
	}
	return f, nil
}

// Config returns the layer configuration.
func (f *FTL) Config() Config { return f.cfg }

// PageBytes reports the mapping granularity.
func (f *FTL) PageBytes() int { return f.cfg.PageBytes }

// LogicalPages reports the host-visible capacity in pages.
func (f *FTL) LogicalPages() int64 { return f.logicalPages }

// LogicalBytes reports the host-visible capacity in bytes.
func (f *FTL) LogicalBytes() int64 { return f.logicalPages * int64(f.cfg.PageBytes) }

// Device exposes the underlying flash device (for experiment metrics).
func (f *FTL) Device() *flash.Device { return f.dev }

func (f *FTL) checkLPN(lpn int64) error {
	if lpn < 0 || lpn >= f.logicalPages {
		return fmt.Errorf("%w: %d of %d", ErrBadPage, lpn, f.logicalPages)
	}
	return nil
}

func (f *FTL) pageAddr(ppn int64) int64 { return ppn * int64(f.cfg.PageBytes) }

func (f *FTL) blockOfPage(ppn int64) int { return int(ppn / int64(f.pagesPerBlock)) }

// markDead retires a physical page's contents.
func (f *FTL) markDead(ppn int64) {
	b := f.blockOfPage(ppn)
	if f.state[ppn] != pageValid {
		panic(fmt.Sprintf("ftl: markDead on %v page %d", f.state[ppn], ppn))
	}
	f.state[ppn] = pageDead
	f.blocks[b].valid--
	f.blocks[b].dead++
	f.reverse[ppn] = -1
	f.onPageDied(b)
}

// takeFreeBlock removes and returns a free block, preferring the least- or
// most-worn depending on the stream (wear-aware allocation) and rotating
// across banks so consecutive log heads land on different banks.
func (f *FTL) takeFreeBlock(preferWorn bool) (int, bool) {
	if f.freeCount == 0 {
		return -1, false
	}
	// Rotate the starting bank so allocation stripes across banks.
	banks := len(f.freeByBank)
	for i := 0; i < banks; i++ {
		bank := (f.nextBank + i) % banks
		pool := f.freeByBank[bank]
		if pool.len() == 0 {
			continue
		}
		var blk int
		if f.cfg.HotCold {
			blk = pool.best(preferWorn)
		} else {
			blk = pool.first()
		}
		pool.remove(blk)
		f.freeCount--
		f.blocks[blk].isFree = false
		f.nextBank = (bank + 1) % banks
		return blk, true
	}
	return -1, false
}

func (f *FTL) releaseFreeBlock(blk int) {
	f.blocks[blk].isFree = true
	f.blocks[blk].valid = 0
	f.blocks[blk].dead = 0
	f.freeByBank[f.dev.BankOf(blk)].add(blk)
	f.freeCount++
}

// allocPage returns the next free physical page on the requested stream,
// opening a new log head when the current one is full. It does not clean;
// the caller guarantees space.
func (f *FTL) allocPage(hot bool) (int64, error) {
	active, ptr := &f.coldActive, &f.coldPtr
	if hot && f.cfg.HotCold {
		active, ptr = &f.hotActive, &f.hotPtr
	}
	if *active == -1 || *ptr >= f.pagesPerBlock {
		if *active != -1 {
			f.blocks[*active].isActive = false
			f.onBlockClosed(*active)
		}
		blk, ok := f.takeFreeBlock(!hot && f.cfg.HotCold)
		if !ok {
			return -1, ErrNoSpace
		}
		f.allocSeq++
		f.blocks[blk].isActive = true
		f.blocks[blk].allocSeq = f.allocSeq
		*active = blk
		*ptr = 0
	}
	ppn := int64(*active)*int64(f.pagesPerBlock) + int64(*ptr)
	*ptr++
	return ppn, nil
}

// programPage writes one page at ppn and updates the metadata, persisting
// the OOB record when mapping persistence is on.
func (f *FTL) programPage(ppn, lpn int64, data []byte) error {
	if _, err := f.dev.Program(f.pageAddr(ppn), data); err != nil {
		return err
	}
	if f.cfg.PersistMapping {
		f.writeSeq++
		encodeOOBInto(f.oobBuf[:], f.writeSeq, lpn, f.tags[lpn])
		if _, err := f.dev.ProgramSpare(ppn, f.oobBuf[:]); err != nil {
			return err
		}
		f.pageSeq[lpn] = f.writeSeq
	}
	b := f.blockOfPage(ppn)
	f.state[ppn] = pageValid
	f.reverse[ppn] = lpn
	f.mapping[lpn] = ppn
	f.blocks[b].valid++
	f.blocks[b].lastWrite = f.clock.Now()
	return nil
}

// WritePageTagged stores one page and associates tag with the logical
// page; the tag rides along through cleaning relocations and, with
// mapping persistence on, survives power loss in the OOB area. Higher
// layers use it to record which object and block the page belongs to.
func (f *FTL) WritePageTagged(lpn int64, data []byte, tag Tag) error {
	if f.tags != nil {
		f.tags[lpn] = tag
	}
	return f.WritePage(lpn, data)
}

// TagOf reports the tag associated with the logical page.
func (f *FTL) TagOf(lpn int64) Tag {
	return f.tags[lpn]
}

// SeqOf reports the newest program sequence number of the logical page
// (0 if unknown). With mapping persistence on, sequence numbers order
// versions across power failures.
func (f *FTL) SeqOf(lpn int64) uint64 {
	return f.pageSeq[lpn]
}

// ForEachMapped calls fn for every mapped logical page with its tag.
func (f *FTL) ForEachMapped(fn func(lpn int64, tag Tag)) {
	for lpn := int64(0); lpn < f.logicalPages; lpn++ {
		if f.Mapped(lpn) {
			fn(lpn, f.tags[lpn])
		}
	}
}

// span opens an op span against the layer's clock and the flash device's
// energy meter, so span energy includes the device work underneath.
func (f *FTL) span(op string) obs.SpanRef {
	return f.obs.Span(f.clock, f.dev.Meter(), "ftl", op)
}

// WritePage stores one page of data at the logical page lpn. Any tag
// previously set with WritePageTagged is preserved.
func (f *FTL) WritePage(lpn int64, data []byte) (err error) {
	if err := f.checkLPN(lpn); err != nil {
		return err
	}
	if len(data) != f.cfg.PageBytes {
		return fmt.Errorf("%w: got %d want %d", ErrBadSize, len(data), f.cfg.PageBytes)
	}
	sp := f.span("write_page")
	defer func() { sp.End(int64(len(data)), err) }()
	f.hostWrites.Inc()
	f.hostBytes.Add(int64(len(data)))

	if f.cfg.Policy == PolicyDirect {
		return f.writeDirect(lpn, data)
	}

	if err := f.ensureSpace(); err != nil {
		return err
	}
	hot := f.mapping[lpn] != -1
	if old := f.mapping[lpn]; old != -1 {
		f.markDead(old)
		f.mapping[lpn] = -1
	}
	ppn, err := f.allocPage(hot)
	if err != nil {
		return err
	}
	return f.programPage(ppn, lpn, data)
}

// ReadPage fetches one page into buf, which must be one page long.
func (f *FTL) ReadPage(lpn int64, buf []byte) (err error) {
	if err := f.checkLPN(lpn); err != nil {
		return err
	}
	if len(buf) != f.cfg.PageBytes {
		return fmt.Errorf("%w: got %d want %d", ErrBadSize, len(buf), f.cfg.PageBytes)
	}
	sp := f.span("read_page")
	defer func() { sp.End(int64(len(buf)), err) }()
	f.hostReads.Inc()
	ppn := f.mapping[lpn]
	if f.cfg.Policy == PolicyDirect {
		ppn = lpn
		if f.state[ppn] != pageValid {
			ppn = -1
		}
	}
	if ppn == -1 {
		// Never written: the host sees erased bytes. No physical location
		// exists to charge a device access to, so this is free.
		for i := range buf {
			buf[i] = 0xFF
		}
		return nil
	}
	_, err = f.dev.Read(f.pageAddr(ppn), buf)
	return err
}

// TrimPage tells the layer the logical page's contents are no longer
// needed (a file was deleted), so its physical page can be reclaimed
// without being copied. The paper's storage manager depends on this to
// keep cleaning cheap under short-lived files.
func (f *FTL) TrimPage(lpn int64) error {
	if err := f.checkLPN(lpn); err != nil {
		return err
	}
	if f.cfg.Policy == PolicyDirect {
		if f.state[lpn] == pageValid {
			f.markDead(lpn)
		}
		return nil
	}
	if old := f.mapping[lpn]; old != -1 {
		f.markDead(old)
		f.mapping[lpn] = -1
	}
	delete(f.tags, lpn)
	return nil
}

// Mapped reports whether the logical page currently holds data.
func (f *FTL) Mapped(lpn int64) bool {
	if lpn < 0 || lpn >= f.logicalPages {
		return false
	}
	if f.cfg.Policy == PolicyDirect {
		return f.state[lpn] == pageValid
	}
	return f.mapping[lpn] != -1
}

// ensureSpace cleans until the free pool is above the reserve. A device
// that is exactly full with no dead pages has nothing to clean but can
// still absorb writes from its remaining free blocks, so the absence of a
// victim is only fatal once the free pool is empty.
func (f *FTL) ensureSpace() error {
	for f.freeCount <= f.cfg.ReserveBlocks {
		victim := f.pickVictim()
		if victim == -1 {
			if f.freeCount > 0 {
				return nil
			}
			return ErrNoSpace
		}
		if err := f.cleanOne(victim); err != nil {
			return err
		}
	}
	return f.levelWear()
}

// levelWear performs static wear leveling: if the erase-count spread has
// grown past the threshold, relocate the coldest block — the least-erased
// non-free block — so its low-wear cells return to the allocation pool.
// At most one block moves per call, bounding the added write cost.
func (f *FTL) levelWear() error {
	if f.cfg.WearDeltaThreshold <= 0 || f.cfg.Policy == PolicyDirect {
		return nil
	}
	var maxCount, coldCount int64
	coldest := -1
	if f.scanMode || f.wear == nil {
		maxCount, coldest, coldCount = f.wearScan()
	} else {
		// Erase counts only grow, so the running maximum equals the scan's
		// device-wide maximum; the wear heap yields the same coldest block
		// (lowest erase count, ties to the lowest id) the scan would find.
		maxCount = f.maxErase
		coldest, coldCount = f.wearColdest()
	}
	if coldest == -1 || maxCount-coldCount <= f.cfg.WearDeltaThreshold {
		return nil
	}
	// Need headroom to relocate a fully live block.
	if f.freeCount <= 1 {
		return nil
	}
	f.staticMoves.Inc()
	return f.cleanOne(coldest)
}

// CleanIdle runs cleaning during idle time until IdleCleanThreshold
// blocks are free (or nothing is cleanable), so foreground writes rarely
// wait for the cleaner. The storage manager calls it from its daemon
// tick.
func (f *FTL) CleanIdle() error {
	if f.cfg.IdleCleanThreshold <= 0 {
		return nil
	}
	defer f.obs.PushCause(obs.CauseIdleClean)()
	for f.freeCount < f.cfg.IdleCleanThreshold {
		victim := f.pickVictim()
		if victim == -1 {
			return nil
		}
		f.idleCleans.Inc()
		if err := f.cleanOne(victim); err != nil {
			return err
		}
	}
	return nil
}

// wearScan computes the device-wide maximum erase count and the coldest
// closed block by linear scan — the reference the wear index is checked
// against (see CheckInvariants and the equivalence tests).
func (f *FTL) wearScan() (maxCount int64, coldest int, coldCount int64) {
	coldest = -1
	for b := 0; b < f.numBlocks; b++ {
		info := &f.blocks[b]
		c := f.dev.EraseCount(b)
		if c > maxCount {
			maxCount = c
		}
		if info.isFree || info.isActive || info.retired {
			continue
		}
		if coldest == -1 || c < coldCount {
			coldest = b
			coldCount = c
		}
	}
	return maxCount, coldest, coldCount
}

// cleanOne relocates the victim's live pages to the cold stream and
// erases it.
func (f *FTL) cleanOne(victim int) (err error) {
	if f.onClean != nil {
		f.onClean(victim)
	}
	// A clean running under a request context is induced work: the
	// request did not ask for it, its timing just got charged it. The
	// span carries a FollowFrom link to the request's root, and the
	// clean stage is sticky — relocation reads/programs and the erase
	// all count as cleaning stall. Idle cleans run outside any context
	// and stay anonymous background spans.
	sp := f.obs.InducedSpan(f.clock, f.dev.Meter(), "ftl", "clean", obs.StageClean)
	defer func() { sp.End(int64(f.pagesPerBlock)*int64(f.cfg.PageBytes), err) }()
	// Charge the relocation programs and the victim erase to the cleaner —
	// unless an idle-clean scope is already active: idle cleaning is sticky
	// over the shared clean path, so the idle/foreground split survives.
	if f.obs.Cause() != obs.CauseIdleClean {
		defer f.obs.PushCause(obs.CauseCleanerMigrate)()
	}
	f.cleans.Inc()
	base := int64(victim) * int64(f.pagesPerBlock)
	if cap(f.cleanBuf) < f.cfg.PageBytes {
		f.cleanBuf = make([]byte, f.cfg.PageBytes)
	}
	buf := f.cleanBuf[:f.cfg.PageBytes]
	for i := 0; i < f.pagesPerBlock; i++ {
		ppn := base + int64(i)
		if f.state[ppn] != pageValid {
			continue
		}
		lpn := f.reverse[ppn]
		if _, err := f.dev.Read(f.pageAddr(ppn), buf); err != nil {
			return err
		}
		f.markDead(ppn)
		f.mapping[lpn] = -1
		dst, err := f.allocPage(false)
		if err != nil {
			return err
		}
		if err := f.programPage(dst, lpn, buf); err != nil {
			return err
		}
		f.copies.Inc()
	}
	return f.eraseBlock(victim)
}

// eraseBlock erases a fully dead block and returns it to the free pool,
// retiring it instead if it has worn out.
func (f *FTL) eraseBlock(victim int) error {
	var err error
	if f.cfg.BackgroundErase {
		err = f.dev.EraseAsync(victim)
	} else {
		_, err = f.dev.Erase(victim)
	}
	if err != nil {
		if errors.Is(err, flash.ErrWornOut) {
			f.retireBlock(victim)
			return nil // the pool shrank, but the clean freed its pages
		}
		return err
	}
	f.noteErase(victim)
	// Reset page states for the erased block.
	base := int64(victim) * int64(f.pagesPerBlock)
	for i := 0; i < f.pagesPerBlock; i++ {
		f.state[base+int64(i)] = pageFree
		f.reverse[base+int64(i)] = -1
	}
	f.releaseFreeBlock(victim)
	return nil
}

func (f *FTL) retireBlock(blk int) {
	f.blocks[blk].retired = true
	f.retired++
	if f.firstWearOut == 0 {
		f.firstWearOut = f.clock.Now()
		f.firstWearOutHostBytes = f.hostBytes.Value()
	}
	// Shrink the logical space: the device lost a block of capacity.
	f.logicalPages -= int64(f.pagesPerBlock)
	if f.logicalPages < 0 {
		f.logicalPages = 0
	}
}

// pickVictim chooses the next block to clean, or -1 if none is eligible.
// The indexed path is O(log n) amortized; the linear scan is retained as
// the reference implementation (and serves PolicyDirect, which never
// cleans through this path in practice).
func (f *FTL) pickVictim() int {
	if f.victims == nil || f.scanMode {
		return f.pickVictimScan()
	}
	return f.pickVictimIndexed()
}

// pickVictimScan is the original O(numBlocks) victim scan, kept as the
// behavioural reference for the victim index.
func (f *FTL) pickVictimScan() int {
	best := -1
	var bestScore float64
	now := f.clock.Now()
	for b := 0; b < f.numBlocks; b++ {
		info := &f.blocks[b]
		if info.isFree || info.isActive || info.retired || info.dead == 0 {
			continue
		}
		var score float64
		switch f.cfg.Policy {
		case PolicyFIFO:
			// Oldest log head first: smaller allocSeq = better. Negate so
			// larger score wins uniformly.
			score = -float64(info.allocSeq)
		case PolicyGreedy:
			score = float64(info.dead)
		case PolicyCostBenefit:
			u := float64(info.valid) / float64(f.pagesPerBlock)
			age := now.Sub(info.lastWrite).Seconds() + 1e-9
			score = age * (1 - u) / (1 + u)
		default:
			score = float64(info.dead)
		}
		if best == -1 || score > bestScore {
			best = b
			bestScore = score
		}
	}
	return best
}

// writeDirect implements the no-translation baseline: the logical page
// lives at the identical physical page, and overwriting it means erasing
// and reprogramming the whole block.
func (f *FTL) writeDirect(lpn int64, data []byte) error {
	ppn := lpn
	blk := f.blockOfPage(ppn)
	if f.blocks[blk].retired {
		return fmt.Errorf("%w: block %d retired", ErrDeviceWorn, blk)
	}
	if f.state[ppn] == pageFree {
		if f.blocks[blk].isFree {
			f.blocks[blk].isFree = false
			// Remove from the free pool bookkeeping lazily; the direct
			// policy never allocates from it.
			f.freeCount--
		}
		return f.programPage(ppn, lpn, data)
	}
	// Read–modify–erase–rewrite of the whole block.
	base := int64(blk) * int64(f.pagesPerBlock)
	live := make(map[int64][]byte)
	buf := make([]byte, f.cfg.PageBytes)
	for i := 0; i < f.pagesPerBlock; i++ {
		p := base + int64(i)
		if p == ppn || f.state[p] != pageValid {
			continue
		}
		if _, err := f.dev.Read(f.pageAddr(p), buf); err != nil {
			return err
		}
		cp := make([]byte, len(buf))
		copy(cp, buf)
		live[p] = cp
	}
	var err error
	if f.cfg.BackgroundErase {
		err = f.dev.EraseAsync(blk)
	} else {
		_, err = f.dev.Erase(blk)
	}
	if err != nil {
		if errors.Is(err, flash.ErrWornOut) {
			f.retireBlock(blk)
			return fmt.Errorf("%w: block %d", ErrDeviceWorn, blk)
		}
		return err
	}
	// Reset block state and reprogram survivors plus the new page.
	for i := 0; i < f.pagesPerBlock; i++ {
		p := base + int64(i)
		f.state[p] = pageFree
		f.reverse[p] = -1
	}
	f.blocks[blk].valid = 0
	f.blocks[blk].dead = 0
	for p, d := range live {
		if err := f.programPage(p, p, d); err != nil {
			return err
		}
		f.copies.Inc()
	}
	return f.programPage(ppn, lpn, data)
}

// FreeBlocks reports the current free-block count.
func (f *FTL) FreeBlocks() int { return f.freeCount }

// CleanerLag reports how many blocks the cleaner is behind its
// free-space target: IdleCleanThreshold when idle cleaning is enabled,
// otherwise one block above the foreground reserve. Zero means cleaning
// is keeping pace; positive values mean new writes are eating free space
// faster than it is being reclaimed.
func (f *FTL) CleanerLag() int {
	target := f.cfg.IdleCleanThreshold
	if target <= 0 {
		target = f.cfg.ReserveBlocks + 1
	}
	if lag := target - f.freeCount; lag > 0 {
		return lag
	}
	return 0
}

// Stats summarises the layer counters.
func (f *FTL) Stats() Stats {
	hb := f.hostBytes.Value()
	wa := 0.0
	if hb > 0 {
		wa = float64(f.dev.Stats().BytesProgrammed) / float64(hb)
	}
	return Stats{
		HostWrites:            f.hostWrites.Value(),
		HostReads:             f.hostReads.Value(),
		HostBytesWritten:      hb,
		Cleans:                f.cleans.Value(),
		CopiedPages:           f.copies.Value(),
		StaticMoves:           f.staticMoves.Value(),
		IdleCleans:            f.idleCleans.Value(),
		WriteAmplification:    wa,
		RetiredBlocks:         f.retired,
		FirstWearOut:          f.firstWearOut,
		FirstWearOutHostBytes: f.firstWearOutHostBytes,
	}
}

// CheckInvariants verifies internal consistency; tests call it after
// random operation sequences. It returns the first violation found.
func (f *FTL) CheckInvariants() error {
	if f.cfg.Policy == PolicyDirect {
		return nil
	}
	for lpn, ppn := range f.mapping {
		if ppn == -1 {
			continue
		}
		if f.reverse[ppn] != int64(lpn) {
			return fmt.Errorf("mapping %d→%d but reverse %d→%d", lpn, ppn, ppn, f.reverse[ppn])
		}
		if f.state[ppn] != pageValid {
			return fmt.Errorf("mapped page %d not valid", ppn)
		}
	}
	for b := 0; b < f.numBlocks; b++ {
		base := int64(b) * int64(f.pagesPerBlock)
		valid, dead := 0, 0
		for i := 0; i < f.pagesPerBlock; i++ {
			switch f.state[base+int64(i)] {
			case pageValid:
				valid++
			case pageDead:
				dead++
			}
		}
		if valid != f.blocks[b].valid || dead != f.blocks[b].dead {
			return fmt.Errorf("block %d counts valid=%d/%d dead=%d/%d",
				b, f.blocks[b].valid, valid, f.blocks[b].dead, dead)
		}
	}
	// Every free-pool block must be genuinely erased: allocation programs
	// into free blocks without erasing first, so torn residue here (a
	// crash-recovery leak) surfaces later as a phantom overwrite error.
	for b := 0; b < f.numBlocks; b++ {
		if !f.blocks[b].isFree {
			continue
		}
		if off, ok := f.blockNonBlankAt(b); ok {
			return fmt.Errorf("free block %d not erased at offset %d", b, off)
		}
	}
	if f.victims != nil {
		if got, want := f.pickVictimIndexed(), f.pickVictimScan(); got != want {
			return fmt.Errorf("victim index picks %d, reference scan picks %d", got, want)
		}
	}
	if f.wear != nil {
		maxCount, coldest, coldCount := f.wearScan()
		if f.maxErase != maxCount {
			return fmt.Errorf("maintained max erase %d, scan max %d", f.maxErase, maxCount)
		}
		ic, icc := f.wearColdest()
		if ic != coldest || (coldest != -1 && icc != coldCount) {
			return fmt.Errorf("wear index coldest %d(count %d), scan coldest %d(count %d)",
				ic, icc, coldest, coldCount)
		}
	}
	return nil
}
