package storman

import (
	"fmt"
	"sort"
)

// Keys lists every block in the placement table in (object, block)
// order; recovery harnesses walk it to compare pre- and post-crash state.
func (m *Manager) Keys() []Key {
	out := make([]Key, 0, len(m.table))
	for key := range m.table {
		out = append(out, key)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Object != out[j].Object {
			return out[i].Object < out[j].Object
		}
		return out[i].Block < out[j].Block
	})
	return out
}

// CheckInvariants cross-checks the placement table against its own
// indexes and against the translation layer underneath: the byObject
// mirror matches the table, DRAM pages and flash logical pages are each
// owned at most once and never double-listed as free, every
// flash-resident block is actually mapped with the tag its key encodes,
// and the dirty lists hold exactly the dirty DRAM-resident blocks.
// Crash-point enumeration calls it after every recovery.
func (m *Manager) CheckInvariants() error {
	mirrored := 0
	for obj, blocks := range m.byObject {
		for blk, loc := range blocks {
			if loc.key.Object != obj || loc.key.Block != blk {
				return fmt.Errorf("byObject[%d][%d] holds key %+v", obj, blk, loc.key)
			}
			if m.table[loc.key] != loc {
				return fmt.Errorf("byObject entry %+v not in table", loc.key)
			}
			mirrored++
		}
	}
	if mirrored != len(m.table) {
		return fmt.Errorf("byObject mirrors %d entries, table has %d", mirrored, len(m.table))
	}

	dramOwner := make(map[int]Key)
	lpnOwner := make(map[int64]Key)
	dirty := 0
	for key, loc := range m.table {
		if loc.key != key {
			return fmt.Errorf("table[%+v] holds key %+v", key, loc.key)
		}
		if loc.size < 0 || loc.size > m.cfg.BlockBytes {
			return fmt.Errorf("block %+v size %d out of range", key, loc.size)
		}
		if loc.flashSize < 0 || loc.flashSize > m.cfg.BlockBytes {
			return fmt.Errorf("block %+v flash size %d out of range", key, loc.flashSize)
		}
		if !loc.inDRAM() && loc.lpn < 0 {
			return fmt.Errorf("block %+v lives nowhere", key)
		}
		if loc.inDRAM() {
			if loc.dramPage >= m.totalPages {
				return fmt.Errorf("block %+v DRAM page %d of %d", key, loc.dramPage, m.totalPages)
			}
			if prev, dup := dramOwner[loc.dramPage]; dup {
				return fmt.Errorf("DRAM page %d owned by both %+v and %+v", loc.dramPage, prev, key)
			}
			dramOwner[loc.dramPage] = key
			if loc.links[lruLink].queued != loc.links[fifoLink].queued {
				return fmt.Errorf("block %+v half-enqueued in the dirty lists", key)
			}
			if loc.links[lruLink].queued {
				dirty++
			}
		} else if loc.links[lruLink].queued || loc.links[fifoLink].queued {
			return fmt.Errorf("flash-resident block %+v still in the dirty lists", key)
		}
		if loc.lpn >= 0 {
			if prev, dup := lpnOwner[loc.lpn]; dup {
				return fmt.Errorf("flash page %d owned by both %+v and %+v", loc.lpn, prev, key)
			}
			lpnOwner[loc.lpn] = key
			if !m.fl.Mapped(loc.lpn) {
				return fmt.Errorf("block %+v claims unmapped flash page %d", key, loc.lpn)
			}
			// Tags exist only when the translation layer persists them.
			if m.fl.PersistsMapping() && m.fl.TagOf(loc.lpn) != encodeTag(key) {
				return fmt.Errorf("flash page %d tagged %x, block %+v expects %x",
					loc.lpn, m.fl.TagOf(loc.lpn), key, encodeTag(key))
			}
		} else if loc.flashSize != 0 {
			return fmt.Errorf("block %+v has flash size %d but no flash page", key, loc.flashSize)
		}
	}

	seenDRAM := make(map[int]bool)
	for _, p := range m.freeDRAM {
		if p < 0 || p >= m.totalPages {
			return fmt.Errorf("free DRAM page %d of %d", p, m.totalPages)
		}
		if seenDRAM[p] {
			return fmt.Errorf("DRAM page %d listed free twice", p)
		}
		seenDRAM[p] = true
		if owner, used := dramOwner[p]; used {
			return fmt.Errorf("DRAM page %d free but owned by %+v", p, owner)
		}
	}
	if len(m.freeDRAM)+len(dramOwner) != m.totalPages {
		return fmt.Errorf("%d free + %d owned DRAM pages != %d total",
			len(m.freeDRAM), len(dramOwner), m.totalPages)
	}

	seenLPN := make(map[int64]bool)
	for _, lpn := range m.freeLPN {
		if seenLPN[lpn] {
			return fmt.Errorf("flash page %d listed free twice", lpn)
		}
		seenLPN[lpn] = true
		if owner, used := lpnOwner[lpn]; used {
			return fmt.Errorf("flash page %d free but owned by %+v", lpn, owner)
		}
	}

	queued := m.writeOrder.Len()
	if m.dirtyOrder.Len() != queued {
		return fmt.Errorf("dirty lists disagree: %d vs %d", queued, m.dirtyOrder.Len())
	}
	if queued != dirty {
		return fmt.Errorf("%d blocks queued dirty, %d marked dirty", queued, dirty)
	}
	for loc := m.writeOrder.Front(); loc != nil; loc = m.writeOrder.Next(loc) {
		if m.table[loc.key] != loc {
			return fmt.Errorf("dirty list holds dropped block %+v", loc.key)
		}
	}
	return nil
}
