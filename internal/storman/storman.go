// Package storman implements the paper's physical storage manager (§3.3):
// the layer that owns the free DRAM pages and free flash sectors and
// migrates data between the two so that "data that is frequently written
// [stays] in DRAM, and data that is mostly read in flash".
//
// The manager stores blocks for higher layers (the file system) keyed by
// (object, block). Its policy is exactly the paper's:
//
//   - writes land in battery-backed DRAM pages and stay there while hot;
//     overwrites are absorbed in place;
//   - a write-back daemon migrates blocks to flash once they have been
//     dirty for the write-back delay (they have proven they will live);
//     eviction under DRAM pressure flushes the least recently written;
//   - reads are served wherever the block lives — flash blocks are read
//     in place, never copied into DRAM just to be read;
//   - writing a block that lives in flash triggers the paper's
//     copy-on-write: the block is copied to a DRAM page, the stale flash
//     copy is trimmed, and subsequent writes are absorbed in DRAM;
//   - deleting an object drops its DRAM blocks (bytes that never reach
//     flash) and trims its flash pages so cleaning can reclaim them.
//
// Block data physically lives in the simulated DRAM device and in the
// flash device behind the translation layer, so every access is charged
// realistic latency and energy.
package storman

import (
	"errors"
	"fmt"
	"sort"

	"ssmobile/internal/dram"
	"ssmobile/internal/engine"
	"ssmobile/internal/obs"
	"ssmobile/internal/sim"
)

// Sentinel errors.
var (
	// ErrNoDRAM reports that the DRAM buffer region is exhausted and
	// nothing can be evicted.
	ErrNoDRAM = errors.New("storman: out of DRAM pages")
	// ErrNoFlash reports that the flash logical space is exhausted.
	ErrNoFlash = errors.New("storman: out of flash pages")
	// ErrBadSize reports a block larger than the configured block size.
	ErrBadSize = errors.New("storman: block too large")
)

// Key names one stored block.
type Key struct {
	Object uint64
	Block  int64
}

// Config parameterises the manager.
type Config struct {
	// BlockBytes is the block (and DRAM page) size; it must equal the
	// translation layer's page size.
	BlockBytes int
	// DRAMBase and DRAMBytes delimit the region of the DRAM device the
	// manager may use for buffering.
	DRAMBase  int64
	DRAMBytes int64
	// WriteBackDelay is the dirty age at which the daemon migrates a block
	// to flash; zero disables age-based migration.
	WriteBackDelay sim.Duration
	// Obs receives the manager's metrics and op spans; nil falls back to
	// obs.Default().
	Obs *obs.Observer
}

// Stats aggregates the manager's accounting.
type Stats struct {
	HostBytesWritten       int64
	HostBytesRead          int64
	FlushedBytes           int64 // migrated DRAM → flash
	OverwriteAbsorbedBytes int64
	DeleteAbsorbedBytes    int64
	CopyOnWrites           int64 // flash → DRAM migrations
	Evictions              int64
	DaemonFlushes          int64
	FlashReads             int64 // blocks read in place from flash
	DRAMReads              int64 // blocks read from DRAM
	DRAMPagesInUse         int
	DRAMPagesTotal         int
}

// Reduction reports the flash write-traffic reduction 1 − flushed/host.
func (s Stats) Reduction() float64 {
	if s.HostBytesWritten == 0 {
		return 0
	}
	return 1 - float64(s.FlushedBytes)/float64(s.HostBytesWritten)
}

// blockLoc records where a block currently lives. A block dirty in DRAM
// may still have a flash copy at lpn holding its last flushed version
// (flashSize bytes); that stale copy is what survives a power failure.
type blockLoc struct {
	key        Key
	size       int   // logical bytes in the block (current version)
	flashSize  int   // logical bytes in the last flushed flash version
	dramPage   int   // -1 if not in DRAM
	lpn        int64 // -1 if not in flash
	dirtySince sim.Time
	lastWrite  sim.Time
	// links thread the loc onto the dirty lists (writeOrder, dirtyOrder)
	// intrusively, so queueing a dirty block never allocates.
	links [2]locLinks
}

func (l *blockLoc) inDRAM() bool { return l.dramPage >= 0 }

// Link-pair indexes into blockLoc.links.
const (
	lruLink  = iota // writeOrder: LRW order of dirty DRAM blocks
	fifoLink        // dirtyOrder: dirty-age order
)

type locLinks struct {
	prev, next *blockLoc
	queued     bool
}

// locList is an intrusive doubly-linked list of blockLocs threading the
// link pair selected by idx. It replaces container/list on the dirty
// lists: membership is a flag on the loc, and push/remove touch only
// existing nodes.
type locList struct {
	head, tail *blockLoc
	idx        int
	n          int
}

func (l *locList) Front() *blockLoc { return l.head }

func (l *locList) Next(loc *blockLoc) *blockLoc { return loc.links[l.idx].next }

func (l *locList) Len() int { return l.n }

func (l *locList) Queued(loc *blockLoc) bool { return loc.links[l.idx].queued }

func (l *locList) PushBack(loc *blockLoc) {
	lk := &loc.links[l.idx]
	lk.prev, lk.next, lk.queued = l.tail, nil, true
	if l.tail != nil {
		l.tail.links[l.idx].next = loc
	} else {
		l.head = loc
	}
	l.tail = loc
	l.n++
}

func (l *locList) Remove(loc *blockLoc) {
	lk := &loc.links[l.idx]
	if !lk.queued {
		return
	}
	if lk.prev != nil {
		lk.prev.links[l.idx].next = lk.next
	} else {
		l.head = lk.next
	}
	if lk.next != nil {
		lk.next.links[l.idx].prev = lk.prev
	} else {
		l.tail = lk.prev
	}
	lk.prev, lk.next, lk.queued = nil, nil, false
	l.n--
}

func (l *locList) MoveToBack(loc *blockLoc) {
	if l.tail == loc {
		return
	}
	l.Remove(loc)
	l.PushBack(loc)
}

// Init empties the list, clearing every member's links.
func (l *locList) Init() {
	for loc := l.head; loc != nil; {
		next := loc.links[l.idx].next
		loc.links[l.idx] = locLinks{}
		loc = next
	}
	l.head, l.tail, l.n = nil, nil, 0
}

// Manager is the physical storage manager. Not safe for concurrent use.
type Manager struct {
	cfg   Config
	clock *sim.Clock
	dram  *dram.Device
	fl    engine.Engine

	table    map[Key]*blockLoc
	byObject map[uint64]map[int64]*blockLoc

	freeDRAM   []int // free page indexes within the region
	totalPages int

	freeLPN []int64

	writeOrder locList // LRW order of dirty DRAM blocks
	dirtyOrder locList // dirty-age order

	// Reusable hot-path scratch. The manager is single-threaded; each
	// buffer serves one non-nesting code path (migrate can run inside the
	// copy-on-write path via eviction, so cowBuf and migBuf are distinct).
	migBuf  []byte
	cowBuf  []byte
	readBuf []byte
	// locFree recycles blockLocs and freeMaps recycles emptied per-object
	// maps, so the churn of create/delete cycles settles into reuse.
	locFree    []*blockLoc
	freeMaps   []map[int64]*blockLoc
	orderBlock []*blockLoc // blocksInOrder scratch
	// maxObjBlocks is the largest per-object block count seen; fresh
	// per-object maps are pre-sized with it (see insert).
	maxObjBlocks int

	// Batched-submission accounting: inside a beginBatch/endBatch window
	// (sync, object sync, daemon pass) the per-block flush counters
	// accumulate here and fold into the shared counters once.
	batching     bool
	batchFlushed int64
	batchDaemon  int64

	obs                     *obs.Observer
	hostWritten, hostRead   *obs.Counter
	flushed                 *obs.Counter
	overwriteAbsorbed       *obs.Counter
	deleteAbsorbed          *obs.Counter
	cows, evictions, daemon *obs.Counter
	flashReads, dramReads   *obs.Counter
}

// New builds a manager over the DRAM device region and the translation
// layer. The FTL's page size must equal cfg.BlockBytes.
func New(cfg Config, clock *sim.Clock, dramDev *dram.Device, fl engine.Engine) (*Manager, error) {
	if cfg.BlockBytes <= 0 {
		return nil, fmt.Errorf("storman: non-positive block size")
	}
	if fl.PageBytes() != cfg.BlockBytes {
		return nil, fmt.Errorf("storman: block size %d != engine page size %d", cfg.BlockBytes, fl.PageBytes())
	}
	if cfg.DRAMBase < 0 || cfg.DRAMBytes < 0 || cfg.DRAMBase+cfg.DRAMBytes > dramDev.Capacity() {
		return nil, fmt.Errorf("storman: DRAM region [%d,%d) outside device of %d",
			cfg.DRAMBase, cfg.DRAMBase+cfg.DRAMBytes, dramDev.Capacity())
	}
	o := obs.Or(cfg.Obs)
	lbl := obs.Labels{"layer": "storman"}
	m := &Manager{
		cfg:   cfg,
		clock: clock,
		dram:  dramDev,
		fl:    fl,
		// Every placed block is DRAM-resident (at most totalPages) or
		// flash-resident (at most the device's logical pages), so the
		// table's final size is known now; pre-sizing trades one upfront
		// allocation for all the incremental rehash growth.
		table:             make(map[Key]*blockLoc, int(cfg.DRAMBytes/int64(cfg.BlockBytes))+int(fl.LogicalPages())),
		byObject:          make(map[uint64]map[int64]*blockLoc),
		totalPages:        int(cfg.DRAMBytes / int64(cfg.BlockBytes)),
		writeOrder:        locList{idx: lruLink},
		dirtyOrder:        locList{idx: fifoLink},
		obs:               o,
		hostWritten:       o.Counter("host_bytes_total", obs.Labels{"layer": "storman", "op": "write"}),
		hostRead:          o.Counter("host_bytes_total", obs.Labels{"layer": "storman", "op": "read"}),
		flushed:           o.Counter("flushed_bytes_total", lbl),
		overwriteAbsorbed: o.Counter("absorbed_bytes_total", obs.Labels{"layer": "storman", "reason": "overwrite"}),
		deleteAbsorbed:    o.Counter("absorbed_bytes_total", obs.Labels{"layer": "storman", "reason": "delete"}),
		cows:              o.Counter("copy_on_writes_total", lbl),
		evictions:         o.Counter("evictions_total", lbl),
		daemon:            o.Counter("daemon_flushes_total", lbl),
		flashReads:        o.Counter("reads_total", obs.Labels{"layer": "storman", "medium": "flash"}),
		dramReads:         o.Counter("reads_total", obs.Labels{"layer": "storman", "medium": "dram"}),
	}
	o.GaugeFunc("dram_pages_in_use", lbl, func() float64 { return float64(m.totalPages - len(m.freeDRAM)) })
	o.GaugeFunc("buffer_occupancy", lbl, m.BufferOccupancy)
	for p := m.totalPages - 1; p >= 0; p-- {
		m.freeDRAM = append(m.freeDRAM, p)
	}
	for lpn := fl.LogicalPages() - 1; lpn >= 0; lpn-- {
		m.freeLPN = append(m.freeLPN, lpn)
	}
	return m, nil
}

// Config returns the manager configuration.
func (m *Manager) Config() Config { return m.cfg }

// BlockBytes reports the block size.
func (m *Manager) BlockBytes() int { return m.cfg.BlockBytes }

// FlashPagesFree reports the unallocated flash logical pages.
func (m *Manager) FlashPagesFree() int { return len(m.freeLPN) }

// DRAMPagesFree reports the free DRAM buffer pages.
func (m *Manager) DRAMPagesFree() int { return len(m.freeDRAM) }

// BufferOccupancy reports the in-use fraction of the DRAM buffer in
// [0, 1]. The serving layer's watermark admission control keys off this
// value: a full buffer means every further write pays flash latency.
func (m *Manager) BufferOccupancy() float64 {
	if m.totalPages <= 0 {
		return 0
	}
	return float64(m.totalPages-len(m.freeDRAM)) / float64(m.totalPages)
}

func (m *Manager) pageAddr(page int) int64 {
	return m.cfg.DRAMBase + int64(page)*int64(m.cfg.BlockBytes)
}

func (m *Manager) lookup(key Key) *blockLoc { return m.table[key] }

func (m *Manager) insert(loc *blockLoc) {
	m.table[loc.key] = loc
	blocks := m.byObject[loc.key.Object]
	if blocks == nil {
		if n := len(m.freeMaps); n > 0 {
			blocks = m.freeMaps[n-1]
			m.freeMaps = m.freeMaps[:n-1]
		} else {
			// Size fresh maps to the largest per-object block count seen,
			// so same-shaped objects skip the incremental rehash growth
			// (recycled maps keep their capacity already).
			blocks = make(map[int64]*blockLoc, m.maxObjBlocks)
		}
		m.byObject[loc.key.Object] = blocks
	}
	blocks[loc.key.Block] = loc
	if len(blocks) > m.maxObjBlocks {
		m.maxObjBlocks = len(blocks)
	}
}

func (m *Manager) remove(loc *blockLoc) {
	delete(m.table, loc.key)
	if blocks := m.byObject[loc.key.Object]; blocks != nil {
		delete(blocks, loc.key.Block)
		if len(blocks) == 0 {
			delete(m.byObject, loc.key.Object)
			m.freeMaps = append(m.freeMaps, blocks)
		}
	}
	// The loc is fully reset before it goes back on the free list: a
	// recycled loc must not leak a stale key, flash page or list link.
	*loc = blockLoc{}
	m.locFree = append(m.locFree, loc)
}

// newLoc returns a zeroed blockLoc, reusing a recycled one when
// possible. Fresh locs come from slabs: most locs live as long as their
// block (deletes are rare), so slab allocation amortises the per-block
// cost that dominates a growing table.
func (m *Manager) newLoc() *blockLoc {
	if n := len(m.locFree); n > 0 {
		loc := m.locFree[n-1]
		m.locFree = m.locFree[:n-1]
		return loc
	}
	slab := make([]blockLoc, 64)
	for i := len(slab) - 1; i > 0; i-- {
		m.locFree = append(m.locFree, &slab[i])
	}
	return &slab[0]
}

// enqueueDirty puts the block on the dirty lists.
func (m *Manager) enqueueDirty(loc *blockLoc) {
	now := m.clock.Now()
	loc.dirtySince = now
	loc.lastWrite = now
	m.writeOrder.PushBack(loc)
	m.dirtyOrder.PushBack(loc)
}

// dequeueDirty removes the block from the dirty lists.
func (m *Manager) dequeueDirty(loc *blockLoc) {
	m.writeOrder.Remove(loc)
	m.dirtyOrder.Remove(loc)
}

// allocDRAMPage returns a free page, evicting the least recently written
// dirty block if necessary.
func (m *Manager) allocDRAMPage() (int, error) {
	if n := len(m.freeDRAM); n > 0 {
		p := m.freeDRAM[n-1]
		m.freeDRAM = m.freeDRAM[:n-1]
		return p, nil
	}
	loc := m.writeOrder.Front()
	if loc == nil {
		return 0, ErrNoDRAM
	}
	m.evictions.Inc()
	if err := m.migrateToFlash(loc); err != nil {
		return 0, err
	}
	return m.allocDRAMPage()
}

// migrateToFlash flushes a dirty DRAM block to flash and frees its page.
// span opens an op span against the manager's clock and the DRAM device's
// energy meter (shared with flash in assembled systems).
func (m *Manager) span(op string) obs.SpanRef {
	return m.obs.Span(m.clock, m.dram.Meter(), "storman", op)
}

func (m *Manager) migrateToFlash(loc *blockLoc) (err error) {
	// Migration is the write-buffer eviction stall (obs.StageFlush):
	// the residue after the nested device spans claim their own stages.
	sp := m.obs.StageSpan(m.clock, m.dram.Meter(), "storman", "migrate", obs.StageFlush)
	defer func() { sp.End(int64(loc.size), err) }()
	if cap(m.migBuf) < m.cfg.BlockBytes {
		m.migBuf = make([]byte, m.cfg.BlockBytes)
	}
	buf := m.migBuf[:m.cfg.BlockBytes]
	if _, err := m.dram.Read(m.pageAddr(loc.dramPage), buf[:loc.size]); err != nil {
		return err
	}
	// Blocks are flushed at full page granularity; the tail past the
	// logical size is padding.
	for i := loc.size; i < len(buf); i++ {
		buf[i] = 0
	}
	lpn := loc.lpn
	if lpn < 0 {
		n := len(m.freeLPN)
		if n == 0 {
			return ErrNoFlash
		}
		lpn = m.freeLPN[n-1]
		m.freeLPN = m.freeLPN[:n-1]
	}
	if err := m.fl.WritePageTagged(lpn, buf, encodeTag(loc.key)); err != nil {
		return err
	}
	if m.batching {
		m.batchFlushed += int64(loc.size)
	} else {
		m.flushed.Add(int64(loc.size))
	}
	m.freeDRAM = append(m.freeDRAM, loc.dramPage)
	loc.dramPage = -1
	loc.lpn = lpn
	loc.flashSize = loc.size
	m.dequeueDirty(loc)
	return nil
}

// WriteBlock stores data (at most one block) for key.
func (m *Manager) WriteBlock(key Key, data []byte) (err error) {
	if len(data) > m.cfg.BlockBytes {
		return fmt.Errorf("%w: %d > %d", ErrBadSize, len(data), m.cfg.BlockBytes)
	}
	sp := m.span("write")
	defer func() { sp.End(int64(len(data)), err) }()
	m.hostWritten.Add(int64(len(data)))
	loc := m.lookup(key)

	switch {
	case loc != nil && loc.inDRAM():
		// Overwrite absorbed in place.
		m.overwriteAbsorbed.Add(int64(loc.size))
		if _, err := m.dram.Write(m.pageAddr(loc.dramPage), data); err != nil {
			return err
		}
		if len(data) > loc.size {
			loc.size = len(data)
		}
		loc.lastWrite = m.clock.Now()
		if m.writeOrder.Queued(loc) {
			m.writeOrder.MoveToBack(loc)
		} else {
			// Was clean in DRAM (just copied on write); mark dirty.
			m.enqueueDirty(loc)
		}
		return nil

	case loc != nil:
		// Copy-on-write from flash: bring the block to DRAM and apply the
		// write there. The stale flash copy is kept until the new version
		// is flushed over it — after a power failure it is the version
		// that survives.
		m.cows.Inc()
		if cap(m.cowBuf) < m.cfg.BlockBytes {
			m.cowBuf = make([]byte, m.cfg.BlockBytes)
		}
		old := m.cowBuf[:m.cfg.BlockBytes]
		if err := m.fl.ReadPage(loc.lpn, old); err != nil {
			return err
		}
		page, err := m.allocDRAMPage()
		if err != nil {
			return err
		}
		copy(old, data)
		size := loc.size
		if len(data) > size {
			size = len(data)
		}
		if _, err := m.dram.Write(m.pageAddr(page), old[:size]); err != nil {
			return err
		}
		loc.dramPage = page
		loc.size = size
		m.enqueueDirty(loc)
		return nil

	default:
		page, err := m.allocDRAMPage()
		if err != nil {
			return err
		}
		if _, err := m.dram.Write(m.pageAddr(page), data); err != nil {
			return err
		}
		loc = m.newLoc()
		loc.key, loc.size, loc.dramPage, loc.lpn = key, len(data), page, -1
		m.insert(loc)
		m.enqueueDirty(loc)
		return nil
	}
}

// ReadBlock fetches the block into buf and reports how many bytes it
// holds. Unknown blocks read as zero length. Flash-resident blocks are
// read in place; they are not promoted to DRAM.
func (m *Manager) ReadBlock(key Key, buf []byte) (read int, err error) {
	loc := m.lookup(key)
	if loc == nil {
		return 0, nil
	}
	sp := m.span("read")
	defer func() { sp.End(int64(read), err) }()
	n := loc.size
	if n > len(buf) {
		n = len(buf)
	}
	if loc.inDRAM() {
		m.dramReads.Inc()
		if _, err := m.dram.Read(m.pageAddr(loc.dramPage), buf[:n]); err != nil {
			return 0, err
		}
	} else {
		m.flashReads.Inc()
		if cap(m.readBuf) < m.cfg.BlockBytes {
			m.readBuf = make([]byte, m.cfg.BlockBytes)
		}
		page := m.readBuf[:m.cfg.BlockBytes]
		if err := m.fl.ReadPage(loc.lpn, page); err != nil {
			return 0, err
		}
		copy(buf[:n], page)
	}
	m.hostRead.Add(int64(n))
	return n, nil
}

// BlockSize reports the stored size of a block, or 0 if absent.
func (m *Manager) BlockSize(key Key) int {
	if loc := m.lookup(key); loc != nil {
		return loc.size
	}
	return 0
}

// InDRAM reports whether the block currently lives in DRAM.
func (m *Manager) InDRAM(key Key) bool {
	loc := m.lookup(key)
	return loc != nil && loc.inDRAM()
}

// DeleteObject drops every block of the object. DRAM-resident bytes are
// absorbed (they never reach flash); flash pages are trimmed.
func (m *Manager) DeleteObject(object uint64) error {
	for _, loc := range m.blocksInOrder(object) {
		if err := m.dropBlock(loc); err != nil {
			return err
		}
	}
	return nil
}

// blocksInOrder returns an object's blocks sorted by block index. Bulk
// operations (delete, fsync) must touch storage in a fixed order — Go's
// randomized map iteration would otherwise reorder frees and migrations
// between runs, making op traces and flash layout differ run to run.
// The returned slice is the manager's scratch, valid until the next call;
// it is sorted by hand because sort.Slice allocates its closure per call.
func (m *Manager) blocksInOrder(object uint64) []*blockLoc {
	blocks := m.byObject[object]
	out := m.orderBlock[:0]
	for _, loc := range blocks {
		out = append(out, loc)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].key.Block < out[j-1].key.Block; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	m.orderBlock = out
	return out
}

// TruncateBlock shrinks a block's stored size to at most size bytes
// (file truncation landing mid-block). Shrinking to zero drops the block.
//
// The shrink is pure bookkeeping: nothing is written to flash, so
// flashSize — the size of the version flash actually holds — must NOT be
// clamped. A truncation of a flash-resident block is therefore not
// durable by itself: a power failure before the next flush reverts the
// block to its persisted length, and the file system's inode sizes (in
// its own synced metadata) are what clamp reads after recovery.
func (m *Manager) TruncateBlock(key Key, size int) error {
	loc := m.lookup(key)
	if loc == nil || size >= loc.size {
		return nil
	}
	if size <= 0 {
		return m.dropBlock(loc)
	}
	loc.size = size
	return nil
}

// Objects lists every object currently holding at least one block; the
// file system uses it to reap orphans after a power-failure recovery.
// Sorted, so recovery walks objects in the same order every run.
func (m *Manager) Objects() []uint64 {
	out := make([]uint64, 0, len(m.byObject))
	for obj := range m.byObject {
		out = append(out, obj)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// DeleteBlock drops a single block (truncation).
func (m *Manager) DeleteBlock(key Key) error {
	if loc := m.lookup(key); loc != nil {
		return m.dropBlock(loc)
	}
	return nil
}

func (m *Manager) dropBlock(loc *blockLoc) error {
	if loc.inDRAM() {
		m.deleteAbsorbed.Add(int64(loc.size))
		m.freeDRAM = append(m.freeDRAM, loc.dramPage)
		m.dequeueDirty(loc)
	}
	if loc.lpn >= 0 {
		if err := m.fl.TrimPage(loc.lpn); err != nil {
			return err
		}
		m.freeLPN = append(m.freeLPN, loc.lpn)
	}
	m.remove(loc)
	return nil
}

// Tick runs the write-back daemon: blocks dirty longer than the delay are
// migrated to flash, and the translation layer gets an idle-cleaning
// opportunity.
func (m *Manager) Tick() error {
	if err := m.TickDaemon(); err != nil {
		return err
	}
	return m.fl.CleanIdle()
}

// TickDaemon runs only the write-back daemon, without offering the
// translation layer an idle-cleaning opportunity. The serving layer uses
// it when requests are backlogged: aged blocks must still migrate, but
// the cleaner gets no free ride when there is no idle time — that is
// when its lag becomes visible and admission control engages.
func (m *Manager) TickDaemon() error {
	if m.cfg.WriteBackDelay > 0 {
		now := m.clock.Now()
		defer m.endBatch(m.beginBatch())
		for {
			loc := m.dirtyOrder.Front()
			if loc == nil {
				break
			}
			if now.Sub(loc.dirtySince) < m.cfg.WriteBackDelay {
				break
			}
			m.batchDaemon++
			if err := m.migrateToFlash(loc); err != nil {
				return err
			}
		}
	}
	return nil
}

// beginBatch opens a batched-submission window: per-block flush and
// daemon counts accumulate locally and fold into the shared counters in
// one add each at endBatch. Per-block spans are untouched — the batch
// seam amortises only metric bookkeeping, never the causal record — and
// nothing reads the counters mid-window in the single-threaded
// simulation, so the folded totals are indistinguishable from per-block
// adds. Nested windows fold at the outermost close.
func (m *Manager) beginBatch() bool {
	if m.batching {
		return false
	}
	m.batching = true
	return true
}

func (m *Manager) endBatch(outermost bool) {
	if !outermost {
		return
	}
	m.batching = false
	if m.batchFlushed != 0 {
		m.flushed.Add(m.batchFlushed)
		m.batchFlushed = 0
	}
	if m.batchDaemon != 0 {
		m.daemon.Add(m.batchDaemon)
		m.batchDaemon = 0
	}
}

// SyncObject migrates the object's dirty blocks to flash — an fsync of
// one file, used by the file system to checkpoint its metadata object.
func (m *Manager) SyncObject(object uint64) error {
	defer m.endBatch(m.beginBatch())
	for _, loc := range m.blocksInOrder(object) {
		if loc.inDRAM() {
			if err := m.migrateToFlash(loc); err != nil {
				return err
			}
		}
	}
	return nil
}

// PowerFailRecover reconciles the manager's state after the DRAM device
// lost power: every DRAM-resident block reverts to its last flushed flash
// version, blocks that never reached flash disappear, and unflushed
// truncations of flash-resident blocks revert to the persisted length.
// It returns the number of bytes of data lost. The caller is responsible
// for restoring the DRAM device itself (dram.Device.Restore).
func (m *Manager) PowerFailRecover() (lostBytes int64) {
	locs := make([]*blockLoc, 0, len(m.table))
	for _, loc := range m.table {
		locs = append(locs, loc)
	}
	// Fixed (object, block) order: the survivors' free-page lists end up
	// the same every run, whatever order the map yields.
	sort.Slice(locs, func(i, j int) bool {
		if locs[i].key.Object != locs[j].key.Object {
			return locs[i].key.Object < locs[j].key.Object
		}
		return locs[i].key.Block < locs[j].key.Block
	})
	var gone []*blockLoc
	for _, loc := range locs {
		if !loc.inDRAM() {
			// Flash-resident: the persisted version is all that survives.
			// An unflushed truncation (size < flashSize) reverts.
			loc.size = loc.flashSize
			continue
		}
		// The dirty version in DRAM is gone either way.
		lostBytes += int64(loc.size)
		if loc.lpn >= 0 {
			// Revert to the flushed version.
			loc.size = loc.flashSize
			loc.dramPage = -1
		} else {
			gone = append(gone, loc)
		}
	}
	// Empty the dirty lists before recycling the gone locs: remove resets
	// the loc wholesale, which would break the lists' link threading.
	m.writeOrder.Init()
	m.dirtyOrder.Init()
	for _, loc := range gone {
		m.remove(loc)
	}
	// Rebuild the DRAM free pool from scratch.
	m.freeDRAM = m.freeDRAM[:0]
	for p := m.totalPages - 1; p >= 0; p-- {
		m.freeDRAM = append(m.freeDRAM, p)
	}
	return lostBytes
}

// Sync migrates every dirty block to flash (shutdown, or an explicit
// application fsync). These migrations are forced out early by the sync
// rather than aged out by the write-back daemon, so their flash traffic
// is charged to the group-commit-flush cause; daemon and eviction
// migrations keep the ambient cause (host-write by default).
func (m *Manager) Sync() error {
	defer m.obs.PushCause(obs.CauseGroupCommitFlush)()
	defer m.endBatch(m.beginBatch())
	for {
		loc := m.dirtyOrder.Front()
		if loc == nil {
			return nil
		}
		if err := m.migrateToFlash(loc); err != nil {
			return err
		}
	}
}

// Stats summarises the manager's counters.
func (m *Manager) Stats() Stats {
	return Stats{
		HostBytesWritten:       m.hostWritten.Value(),
		HostBytesRead:          m.hostRead.Value(),
		FlushedBytes:           m.flushed.Value(),
		OverwriteAbsorbedBytes: m.overwriteAbsorbed.Value(),
		DeleteAbsorbedBytes:    m.deleteAbsorbed.Value(),
		CopyOnWrites:           m.cows.Value(),
		Evictions:              m.evictions.Value(),
		DaemonFlushes:          m.daemon.Value(),
		FlashReads:             m.flashReads.Value(),
		DRAMReads:              m.dramReads.Value(),
		DRAMPagesInUse:         m.totalPages - len(m.freeDRAM),
		DRAMPagesTotal:         m.totalPages,
	}
}
