package storman

import (
	"bytes"
	"testing"

	"ssmobile/internal/device"
	"ssmobile/internal/dram"
	engineftl "ssmobile/internal/engine/ftl"
	"ssmobile/internal/flash"
	"ssmobile/internal/ftl"
	"ssmobile/internal/sim"
)

// newOOBRig builds a stack whose translation layer persists its mapping,
// so the manager can be remounted from the device after power loss.
func newOOBRig(t testing.TB) *rig {
	t.Helper()
	clock := sim.NewClock()
	meter := sim.NewEnergyMeter()
	dr, err := dram.New(dram.Config{CapacityBytes: 4 << 20, Params: device.NECDram}, clock, meter)
	if err != nil {
		t.Fatal(err)
	}
	params := device.IntelFlash
	params.EraseLatencyNs = 1e6
	fd, err := flash.New(flash.Config{
		Banks: 2, BlocksPerBank: 64, BlockBytes: 16 * 1024, Params: params,
		SpareUnitBytes: 4096, SpareBytes: ftl.OOBRecordBytes,
	}, clock, meter)
	if err != nil {
		t.Fatal(err)
	}
	fl, err := engineftl.New(fd, clock, oobFTLConfig())
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(Config{
		BlockBytes: 4096,
		DRAMBase:   1 << 20, DRAMBytes: 1 << 20,
		WriteBackDelay: 30 * sim.Second,
	}, clock, dr, fl)
	if err != nil {
		t.Fatal(err)
	}
	return &rig{clock: clock, meter: meter, dram: dr, flash: fd, fl: fl, m: m}
}

func oobFTLConfig() ftl.Config {
	return ftl.Config{
		PageBytes: 4096, ReserveBlocks: 3,
		Policy: ftl.PolicyCostBenefit, HotCold: true,
		BackgroundErase: true, PersistMapping: true,
	}
}

func TestMountRequiresPersistence(t *testing.T) {
	r := newRig(t, 1<<20, 0) // plain rig, no OOB
	if _, err := Mount(r.m.Config(), r.clock, r.dram, r.fl); err == nil {
		t.Fatal("Mount accepted a non-persistent translation layer")
	}
}

func TestTagRoundTrip(t *testing.T) {
	for _, key := range []Key{{0, 0}, {1, 2}, {1 << 60, 1 << 50}, {42, 0}} {
		got, ok := decodeTag(encodeTag(key))
		if !ok || got != key {
			t.Errorf("tag round trip of %+v → %+v %v", key, got, ok)
		}
	}
	if _, ok := decodeTag(ftl.Tag{}); ok {
		t.Error("zero tag decoded as valid")
	}
}

func TestMountRebuildsFlashState(t *testing.T) {
	r := newOOBRig(t)
	// Flush a set of blocks to flash, leave others dirty in DRAM.
	for blk := int64(0); blk < 10; blk++ {
		if err := r.m.WriteBlock(Key{Object: 7, Block: blk}, blockOf(byte(blk), 4096)); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.m.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := r.m.WriteBlock(Key{Object: 8, Block: 0}, blockOf(0xDD, 4096)); err != nil {
		t.Fatal(err) // never flushed: must be gone after the failure
	}

	// Power failure: DRAM and ALL Go-level state lost. Remount the
	// translation layer from the device scan, then the manager over it.
	r.dram.PowerFail()
	r.dram.Restore()
	fl2, err := engineftl.Mount(r.flash, r.clock, oobFTLConfig())
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Mount(r.m.Config(), r.clock, r.dram, fl2)
	if err != nil {
		t.Fatal(err)
	}

	buf := make([]byte, 4096)
	for blk := int64(0); blk < 10; blk++ {
		n, err := m2.ReadBlock(Key{Object: 7, Block: blk}, buf)
		if err != nil || n != 4096 {
			t.Fatalf("block %d: n=%d err=%v", blk, n, err)
		}
		if buf[0] != byte(blk) {
			t.Fatalf("block %d corrupted across remount: %x", blk, buf[0])
		}
	}
	if n, _ := m2.ReadBlock(Key{Object: 8, Block: 0}, buf); n != 0 {
		t.Fatal("unflushed block survived remount")
	}
	// Accounting: free pool excludes the live pages.
	if m2.FlashPagesFree() != int(fl2.LogicalPages())-10 {
		t.Fatalf("free lpns %d, want %d", m2.FlashPagesFree(), fl2.LogicalPages()-10)
	}
	// Fully operational afterwards.
	if err := m2.WriteBlock(Key{Object: 9, Block: 0}, blockOf(1, 4096)); err != nil {
		t.Fatal(err)
	}
	if err := m2.Sync(); err != nil {
		t.Fatal(err)
	}
}

func TestMountResolvesResurrectedDuplicates(t *testing.T) {
	r := newOOBRig(t)
	key := Key{Object: 3, Block: 0}
	// Version 1 reaches flash.
	if err := r.m.WriteBlock(key, blockOf(0x01, 4096)); err != nil {
		t.Fatal(err)
	}
	if err := r.m.Sync(); err != nil {
		t.Fatal(err)
	}
	// Delete (trims the lpn — but trims are not persisted), then
	// re-create the same key and flush version 2 to a different lpn.
	if err := r.m.DeleteObject(3); err != nil {
		t.Fatal(err)
	}
	if err := r.m.WriteBlock(key, blockOf(0x02, 4096)); err != nil {
		t.Fatal(err)
	}
	if err := r.m.Sync(); err != nil {
		t.Fatal(err)
	}

	r.dram.PowerFail()
	r.dram.Restore()
	fl2, err := engineftl.Mount(r.flash, r.clock, oobFTLConfig())
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Mount(r.m.Config(), r.clock, r.dram, fl2)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4096)
	n, err := m2.ReadBlock(key, buf)
	if err != nil || n != 4096 {
		t.Fatalf("n=%d err=%v", n, err)
	}
	if buf[0] != 0x02 {
		t.Fatalf("older version won the duplicate resolution: %x", buf[0])
	}
}

func TestMountedManagerMatchesModelRecovery(t *testing.T) {
	// The model-level recovery (PowerFailRecover on surviving Go state)
	// and the honest device-scan remount must agree on every surviving
	// block.
	r := newOOBRig(t)
	var keys []Key
	for obj := uint64(1); obj <= 3; obj++ {
		for blk := int64(0); blk < 6; blk++ {
			key := Key{Object: obj, Block: blk}
			keys = append(keys, key)
			if err := r.m.WriteBlock(key, blockOf(byte(obj*16+uint64(blk)), 4096)); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := r.m.Sync(); err != nil {
		t.Fatal(err)
	}
	// Some post-sync churn.
	for blk := int64(0); blk < 3; blk++ {
		if err := r.m.WriteBlock(Key{Object: 2, Block: blk}, blockOf(0xEE, 4096)); err != nil {
			t.Fatal(err)
		}
	}

	r.dram.PowerFail()
	// Path A: model recovery.
	r.m.PowerFailRecover()
	r.dram.Restore()
	// Path B: device-scan remount.
	fl2, err := engineftl.Mount(r.flash, r.clock, oobFTLConfig())
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Mount(r.m.Config(), r.clock, r.dram, fl2)
	if err != nil {
		t.Fatal(err)
	}

	bufA := make([]byte, 4096)
	bufB := make([]byte, 4096)
	for _, key := range keys {
		nA, errA := r.m.ReadBlock(key, bufA)
		nB, errB := m2.ReadBlock(key, bufB)
		if errA != nil || errB != nil {
			t.Fatalf("%+v: %v %v", key, errA, errB)
		}
		if nA != nB || !bytes.Equal(bufA[:nA], bufB[:nB]) {
			t.Fatalf("%+v: model and remount disagree (%d vs %d bytes)", key, nA, nB)
		}
	}
}
