package storman

import (
	"bytes"
	"testing"
	"testing/quick"

	"ssmobile/internal/device"
	"ssmobile/internal/dram"
	engineftl "ssmobile/internal/engine/ftl"
	"ssmobile/internal/flash"
	"ssmobile/internal/ftl"
	"ssmobile/internal/sim"
)

type rig struct {
	clock *sim.Clock
	meter *sim.EnergyMeter
	dram  *dram.Device
	flash *flash.Device
	fl    *engineftl.Engine
	m     *Manager
}

func newRig(t testing.TB, dramBufBytes int64, delay sim.Duration) *rig {
	t.Helper()
	clock := sim.NewClock()
	meter := sim.NewEnergyMeter()
	dr, err := dram.New(dram.Config{CapacityBytes: 4 << 20, Params: device.NECDram}, clock, meter)
	if err != nil {
		t.Fatal(err)
	}
	params := device.IntelFlash
	params.EraseLatencyNs = 1e6
	fd, err := flash.New(flash.Config{Banks: 2, BlocksPerBank: 64, BlockBytes: 16 * 1024, Params: params}, clock, meter)
	if err != nil {
		t.Fatal(err)
	}
	fl, err := engineftl.New(fd, clock, ftl.Config{
		PageBytes:       4096,
		ReserveBlocks:   3,
		Policy:          ftl.PolicyCostBenefit,
		HotCold:         true,
		BackgroundErase: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(Config{
		BlockBytes:     4096,
		DRAMBase:       1 << 20,
		DRAMBytes:      dramBufBytes,
		WriteBackDelay: delay,
	}, clock, dr, fl)
	if err != nil {
		t.Fatal(err)
	}
	return &rig{clock: clock, meter: meter, dram: dr, flash: fd, fl: fl, m: m}
}

func blockOf(b byte, n int) []byte { return bytes.Repeat([]byte{b}, n) }

func TestNewValidation(t *testing.T) {
	r := newRig(t, 1<<20, 0)
	if _, err := New(Config{BlockBytes: 0}, r.clock, r.dram, r.fl); err == nil {
		t.Error("zero block size accepted")
	}
	if _, err := New(Config{BlockBytes: 8192}, r.clock, r.dram, r.fl); err == nil {
		t.Error("block size != ftl page size accepted")
	}
	if _, err := New(Config{BlockBytes: 4096, DRAMBase: 1 << 30, DRAMBytes: 4096}, r.clock, r.dram, r.fl); err == nil {
		t.Error("region outside DRAM accepted")
	}
}

func TestWriteReadDRAMResident(t *testing.T) {
	r := newRig(t, 1<<20, 0)
	key := Key{Object: 1, Block: 0}
	want := blockOf(0x42, 4096)
	if err := r.m.WriteBlock(key, want); err != nil {
		t.Fatal(err)
	}
	if !r.m.InDRAM(key) {
		t.Fatal("fresh write should live in DRAM")
	}
	got := make([]byte, 4096)
	n, err := r.m.ReadBlock(key, got)
	if err != nil || n != 4096 {
		t.Fatalf("read n=%d err=%v", n, err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("read mismatch")
	}
	if s := r.m.Stats(); s.DRAMReads != 1 || s.FlashReads != 0 {
		t.Fatalf("read placement stats %+v", s)
	}
}

func TestUnknownBlockReadsEmpty(t *testing.T) {
	r := newRig(t, 1<<20, 0)
	n, err := r.m.ReadBlock(Key{9, 9}, make([]byte, 4096))
	if err != nil || n != 0 {
		t.Fatalf("unknown block n=%d err=%v", n, err)
	}
	if r.m.BlockSize(Key{9, 9}) != 0 {
		t.Fatal("unknown block has size")
	}
}

func TestSyncMigratesToFlash(t *testing.T) {
	r := newRig(t, 1<<20, 0)
	key := Key{Object: 1, Block: 3}
	want := blockOf(0x17, 4096)
	if err := r.m.WriteBlock(key, want); err != nil {
		t.Fatal(err)
	}
	if err := r.m.Sync(); err != nil {
		t.Fatal(err)
	}
	if r.m.InDRAM(key) {
		t.Fatal("block still in DRAM after Sync")
	}
	got := make([]byte, 4096)
	if _, err := r.m.ReadBlock(key, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("flash copy mismatch")
	}
	if s := r.m.Stats(); s.FlashReads != 1 {
		t.Fatalf("flash read not counted: %+v", s)
	}
}

func TestReadDoesNotPromote(t *testing.T) {
	// The paper: read-only data is accessed directly from flash, no copy.
	r := newRig(t, 1<<20, 0)
	key := Key{Object: 1, Block: 0}
	if err := r.m.WriteBlock(key, blockOf(1, 4096)); err != nil {
		t.Fatal(err)
	}
	if err := r.m.Sync(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := r.m.ReadBlock(key, make([]byte, 4096)); err != nil {
			t.Fatal(err)
		}
	}
	if r.m.InDRAM(key) {
		t.Fatal("reads must not copy flash data into DRAM")
	}
	if free := r.m.DRAMPagesFree(); free != r.m.Stats().DRAMPagesTotal {
		t.Fatalf("reads consumed DRAM pages: %d free of %d", free, r.m.Stats().DRAMPagesTotal)
	}
}

func TestCopyOnWriteFromFlash(t *testing.T) {
	r := newRig(t, 1<<20, 0)
	key := Key{Object: 1, Block: 0}
	if err := r.m.WriteBlock(key, blockOf(0xAA, 4096)); err != nil {
		t.Fatal(err)
	}
	if err := r.m.Sync(); err != nil {
		t.Fatal(err)
	}
	freeLPNsBefore := r.m.FlashPagesFree()
	// Partial overwrite: the rest of the block must come from flash.
	if err := r.m.WriteBlock(key, blockOf(0xBB, 100)); err != nil {
		t.Fatal(err)
	}
	if !r.m.InDRAM(key) {
		t.Fatal("written block should have migrated to DRAM")
	}
	if s := r.m.Stats(); s.CopyOnWrites != 1 {
		t.Fatalf("cow count %+v", s)
	}
	// The stale flash copy is retained until the next flush, so the free
	// pool is unchanged: that copy is the power-failure fallback.
	if r.m.FlashPagesFree() != freeLPNsBefore {
		t.Fatal("cow should keep the stale flash copy until flush")
	}
	got := make([]byte, 4096)
	if _, err := r.m.ReadBlock(key, got); err != nil {
		t.Fatal(err)
	}
	if got[0] != 0xBB || got[99] != 0xBB || got[100] != 0xAA || got[4095] != 0xAA {
		t.Fatalf("cow merge wrong: %x %x %x %x", got[0], got[99], got[100], got[4095])
	}
}

func TestOverwriteAbsorption(t *testing.T) {
	r := newRig(t, 1<<20, 0)
	key := Key{Object: 1, Block: 0}
	for i := 0; i < 20; i++ {
		if err := r.m.WriteBlock(key, blockOf(byte(i), 4096)); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.m.Sync(); err != nil {
		t.Fatal(err)
	}
	s := r.m.Stats()
	if s.FlushedBytes != 4096 {
		t.Fatalf("flushed %d, want one block", s.FlushedBytes)
	}
	if got := s.Reduction(); got < 0.94 {
		t.Fatalf("reduction %.2f, want 19/20", got)
	}
}

func TestDeleteAbsorption(t *testing.T) {
	r := newRig(t, 1<<20, 0)
	for blk := int64(0); blk < 8; blk++ {
		if err := r.m.WriteBlock(Key{Object: 5, Block: blk}, blockOf(1, 4096)); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.m.DeleteObject(5); err != nil {
		t.Fatal(err)
	}
	if err := r.m.Sync(); err != nil {
		t.Fatal(err)
	}
	s := r.m.Stats()
	if s.FlushedBytes != 0 {
		t.Fatalf("deleted data reached flash: %d bytes", s.FlushedBytes)
	}
	if s.DeleteAbsorbedBytes != 8*4096 {
		t.Fatalf("delete absorbed %d", s.DeleteAbsorbedBytes)
	}
	if r.m.DRAMPagesFree() != s.DRAMPagesTotal {
		t.Fatal("DRAM pages leaked on delete")
	}
}

func TestDeleteFlashResident(t *testing.T) {
	r := newRig(t, 1<<20, 0)
	key := Key{Object: 3, Block: 0}
	if err := r.m.WriteBlock(key, blockOf(9, 4096)); err != nil {
		t.Fatal(err)
	}
	if err := r.m.Sync(); err != nil {
		t.Fatal(err)
	}
	before := r.m.FlashPagesFree()
	if err := r.m.DeleteObject(3); err != nil {
		t.Fatal(err)
	}
	if r.m.FlashPagesFree() != before+1 {
		t.Fatal("flash page not reclaimed on delete")
	}
	if n, _ := r.m.ReadBlock(key, make([]byte, 4096)); n != 0 {
		t.Fatal("deleted block still readable")
	}
}

func TestEvictionUnderDRAMPressure(t *testing.T) {
	// Room for 4 pages only.
	r := newRig(t, 4*4096, 0)
	for blk := int64(0); blk < 10; blk++ {
		if err := r.m.WriteBlock(Key{Object: 1, Block: blk}, blockOf(byte(blk), 4096)); err != nil {
			t.Fatal(err)
		}
	}
	s := r.m.Stats()
	if s.Evictions == 0 {
		t.Fatal("no evictions under pressure")
	}
	// All blocks still readable, early ones from flash.
	buf := make([]byte, 4096)
	for blk := int64(0); blk < 10; blk++ {
		n, err := r.m.ReadBlock(Key{Object: 1, Block: blk}, buf)
		if err != nil || n != 4096 {
			t.Fatalf("block %d: n=%d err=%v", blk, n, err)
		}
		if buf[0] != byte(blk) {
			t.Fatalf("block %d corrupted", blk)
		}
	}
	if !r.m.InDRAM(Key{Object: 1, Block: 9}) {
		t.Fatal("most recent block should still be in DRAM")
	}
	if r.m.InDRAM(Key{Object: 1, Block: 0}) {
		t.Fatal("oldest block should have been evicted to flash")
	}
}

func TestTickMigratesAgedBlocks(t *testing.T) {
	r := newRig(t, 1<<20, 30*sim.Second)
	if err := r.m.WriteBlock(Key{1, 0}, blockOf(1, 4096)); err != nil {
		t.Fatal(err)
	}
	r.clock.Advance(10 * sim.Second)
	if err := r.m.WriteBlock(Key{1, 1}, blockOf(2, 4096)); err != nil {
		t.Fatal(err)
	}
	r.clock.Advance(25 * sim.Second) // block 0: 35s, block 1: 25s
	if err := r.m.Tick(); err != nil {
		t.Fatal(err)
	}
	if r.m.InDRAM(Key{1, 0}) {
		t.Fatal("aged block not migrated")
	}
	if !r.m.InDRAM(Key{1, 1}) {
		t.Fatal("young block migrated early")
	}
	if r.m.Stats().DaemonFlushes != 1 {
		t.Fatalf("daemon flushes %d", r.m.Stats().DaemonFlushes)
	}
}

func TestOversizeRejected(t *testing.T) {
	r := newRig(t, 1<<20, 0)
	if err := r.m.WriteBlock(Key{1, 0}, make([]byte, 8192)); err == nil {
		t.Fatal("oversize block accepted")
	}
}

func TestEnergyAndTimeCharged(t *testing.T) {
	r := newRig(t, 1<<20, 0)
	before := r.clock.Now()
	if err := r.m.WriteBlock(Key{1, 0}, blockOf(1, 4096)); err != nil {
		t.Fatal(err)
	}
	if r.clock.Now() == before {
		t.Fatal("write charged no time")
	}
	if r.meter.Category("dram") <= 0 {
		t.Fatal("write charged no DRAM energy")
	}
	if err := r.m.Sync(); err != nil {
		t.Fatal(err)
	}
	if r.meter.Category("flash") <= 0 {
		t.Fatal("migration charged no flash energy")
	}
}

func TestSyncObjectFlushesOnlyThatObject(t *testing.T) {
	r := newRig(t, 1<<20, 0)
	if err := r.m.WriteBlock(Key{1, 0}, blockOf(1, 4096)); err != nil {
		t.Fatal(err)
	}
	if err := r.m.WriteBlock(Key{2, 0}, blockOf(2, 4096)); err != nil {
		t.Fatal(err)
	}
	if err := r.m.SyncObject(1); err != nil {
		t.Fatal(err)
	}
	if r.m.InDRAM(Key{1, 0}) {
		t.Fatal("synced object still in DRAM")
	}
	if !r.m.InDRAM(Key{2, 0}) {
		t.Fatal("unrelated object was flushed")
	}
}

func TestPowerFailLosesOnlyUnflushedData(t *testing.T) {
	r := newRig(t, 1<<20, 0)
	// Block A: flushed, then overwritten in DRAM (CoW) — reverts to v1.
	a := Key{1, 0}
	if err := r.m.WriteBlock(a, blockOf(0x11, 4096)); err != nil {
		t.Fatal(err)
	}
	if err := r.m.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := r.m.WriteBlock(a, blockOf(0x22, 4096)); err != nil {
		t.Fatal(err)
	}
	// Block B: never flushed — disappears entirely.
	b := Key{2, 0}
	if err := r.m.WriteBlock(b, blockOf(0x33, 2048)); err != nil {
		t.Fatal(err)
	}

	r.dram.PowerFail()
	lost := r.m.PowerFailRecover()
	r.dram.Restore()

	if lost != 4096+2048 {
		t.Fatalf("lost %d bytes, want %d", lost, 4096+2048)
	}
	buf := make([]byte, 4096)
	n, err := r.m.ReadBlock(a, buf)
	if err != nil || n != 4096 {
		t.Fatalf("block A after recovery: n=%d err=%v", n, err)
	}
	if buf[0] != 0x11 {
		t.Fatalf("block A should revert to flushed version, got %x", buf[0])
	}
	if n, _ := r.m.ReadBlock(b, buf); n != 0 {
		t.Fatal("unflushed block survived a power failure")
	}
	if r.m.DRAMPagesFree() != r.m.Stats().DRAMPagesTotal {
		t.Fatal("DRAM pool not rebuilt after power failure")
	}
	// The manager must be fully usable afterwards.
	if err := r.m.WriteBlock(b, blockOf(0x44, 4096)); err != nil {
		t.Fatal(err)
	}
	if err := r.m.Sync(); err != nil {
		t.Fatal(err)
	}
}

func TestTruncateBlock(t *testing.T) {
	r := newRig(t, 1<<20, 0)
	key := Key{Object: 1, Block: 0}
	if err := r.m.WriteBlock(key, blockOf(0x55, 4096)); err != nil {
		t.Fatal(err)
	}
	if err := r.m.TruncateBlock(key, 100); err != nil {
		t.Fatal(err)
	}
	if got := r.m.BlockSize(key); got != 100 {
		t.Fatalf("size after truncate %d", got)
	}
	// Growing truncate is a no-op.
	if err := r.m.TruncateBlock(key, 5000); err != nil {
		t.Fatal(err)
	}
	if got := r.m.BlockSize(key); got != 100 {
		t.Fatalf("grow-truncate changed size to %d", got)
	}
	// Truncate to zero drops the block entirely.
	if err := r.m.TruncateBlock(key, 0); err != nil {
		t.Fatal(err)
	}
	if r.m.BlockSize(key) != 0 {
		t.Fatal("zero truncate kept the block")
	}
	// Truncating missing blocks is fine.
	if err := r.m.TruncateBlock(Key{9, 9}, 10); err != nil {
		t.Fatal(err)
	}
}

func TestTruncateFlashResidentBlockShrinksView(t *testing.T) {
	r := newRig(t, 1<<20, 0)
	key := Key{Object: 1, Block: 0}
	if err := r.m.WriteBlock(key, blockOf(0x66, 4096)); err != nil {
		t.Fatal(err)
	}
	if err := r.m.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := r.m.TruncateBlock(key, 64); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4096)
	n, err := r.m.ReadBlock(key, buf)
	if err != nil || n != 64 {
		t.Fatalf("n=%d err=%v", n, err)
	}
}

func TestObjectsAndDeleteBlock(t *testing.T) {
	r := newRig(t, 1<<20, 0)
	if err := r.m.WriteBlock(Key{3, 0}, blockOf(1, 100)); err != nil {
		t.Fatal(err)
	}
	if err := r.m.WriteBlock(Key{5, 0}, blockOf(2, 100)); err != nil {
		t.Fatal(err)
	}
	objs := r.m.Objects()
	if len(objs) != 2 {
		t.Fatalf("objects %v", objs)
	}
	if err := r.m.DeleteBlock(Key{3, 0}); err != nil {
		t.Fatal(err)
	}
	if len(r.m.Objects()) != 1 {
		t.Fatal("DeleteBlock did not drop the object's last block")
	}
	if r.m.BlockBytes() != 4096 {
		t.Fatal("BlockBytes wrong")
	}
	if (Stats{}).Reduction() != 0 {
		t.Fatal("empty Reduction should be 0")
	}
}

// Property: arbitrary single-object write/delete/sync sequences match a
// map model.
func TestManagerModelProperty(t *testing.T) {
	type op struct {
		Obj    uint8
		Blk    uint8
		Val    byte
		Action uint8 // 0,1 write; 2 delete object; 3 sync; 4 tick+advance
	}
	f := func(ops []op) bool {
		r := newRig(t, 8*4096, 10*sim.Second)
		model := map[Key][]byte{}
		for _, o := range ops {
			key := Key{Object: uint64(o.Obj % 3), Block: int64(o.Blk % 8)}
			switch o.Action % 5 {
			case 0, 1:
				data := blockOf(o.Val, 4096)
				if err := r.m.WriteBlock(key, data); err != nil {
					return false
				}
				model[key] = data
			case 2:
				if err := r.m.DeleteObject(key.Object); err != nil {
					return false
				}
				for k := range model {
					if k.Object == key.Object {
						delete(model, k)
					}
				}
			case 3:
				if err := r.m.Sync(); err != nil {
					return false
				}
			case 4:
				r.clock.Advance(7 * sim.Second)
				if err := r.m.Tick(); err != nil {
					return false
				}
			}
		}
		buf := make([]byte, 4096)
		for k, want := range model {
			n, err := r.m.ReadBlock(k, buf)
			if err != nil || n != len(want) {
				return false
			}
			if !bytes.Equal(buf[:n], want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
