package storman

import (
	"encoding/binary"
	"fmt"

	"ssmobile/internal/dram"
	"ssmobile/internal/engine"
	"ssmobile/internal/sim"
)

// Tags carry the (object, block) identity of every flash-resident block
// in the page's out-of-band record, so the manager's placement table can
// be rebuilt by the translation layer's mount scan after a power loss.
// Layout: object u64 | block u56 | marker 0xA5. The marker distinguishes
// storage-manager pages from anything else that might write the layer.
const tagMarker = 0xA5

func encodeTag(key Key) engine.Tag {
	var tag engine.Tag
	binary.LittleEndian.PutUint64(tag[0:], key.Object)
	binary.LittleEndian.PutUint64(tag[8:], uint64(key.Block))
	tag[15] = tagMarker
	return tag
}

func decodeTag(tag engine.Tag) (Key, bool) {
	if tag[15] != tagMarker {
		return Key{}, false
	}
	obj := binary.LittleEndian.Uint64(tag[0:])
	blkRaw := binary.LittleEndian.Uint64(tag[8:])
	blk := int64(blkRaw & 0x00FFFFFFFFFFFFFF)
	return Key{Object: obj, Block: blk}, true
}

// Mount rebuilds a storage manager over a storage engine that was
// itself just mounted from a device scan: every tagged flash
// page becomes a flash-resident block in the placement table, and
// untagged pages are trimmed as orphans. DRAM-resident state is gone by
// definition — this is the power-failure path — so the DRAM buffer
// starts empty. Recovered blocks are assumed full-page sized; the file
// system's inode sizes clamp reads, so over-length tails are invisible.
func Mount(cfg Config, clock *sim.Clock, dramDev *dram.Device, eng engine.Engine) (*Manager, error) {
	if !eng.PersistsMapping() {
		return nil, fmt.Errorf("storman: Mount requires an engine with a persistent mapping")
	}
	m, err := New(cfg, clock, dramDev, eng)
	if err != nil {
		return nil, err
	}
	// New filled freeLPN with every logical page; rebuild it to exclude
	// the pages the scan found live.
	m.freeLPN = m.freeLPN[:0]
	inUse := make(map[int64]bool)
	var orphans []int64
	eng.ForEachMapped(func(lpn int64, tag engine.Tag) {
		key, ok := decodeTag(tag)
		if !ok {
			orphans = append(orphans, lpn)
			return
		}
		// Two pages can claim the same key when a delete's trim was lost
		// to the power failure and the key was re-created at a new page:
		// keep the one with the newer program sequence.
		if prev := m.lookup(key); prev != nil {
			if eng.SeqOf(prev.lpn) >= eng.SeqOf(lpn) {
				orphans = append(orphans, lpn)
				return
			}
			orphans = append(orphans, prev.lpn)
			delete(inUse, prev.lpn)
			m.remove(prev)
		}
		inUse[lpn] = true
		loc := &blockLoc{
			key:       key,
			size:      cfg.BlockBytes,
			flashSize: cfg.BlockBytes,
			dramPage:  -1,
			lpn:       lpn,
		}
		m.insert(loc)
	})
	for _, lpn := range orphans {
		if err := eng.TrimPage(lpn); err != nil {
			return nil, err
		}
	}
	for lpn := eng.LogicalPages() - 1; lpn >= 0; lpn-- {
		if !inUse[lpn] {
			m.freeLPN = append(m.freeLPN, lpn)
		}
	}
	return m, nil
}
