package storman

import (
	"bytes"
	"testing"
)

// Regression: truncating a flash-resident block is pure bookkeeping —
// nothing is written to flash — so a power failure must revert the block
// to its persisted length. The old code clamped flashSize in memory,
// making the truncation appear durable when it never was.
func TestTruncateFlashResidentRevertsOnPowerFail(t *testing.T) {
	r := newRig(t, 1<<20, 0)
	key := Key{Object: 1, Block: 0}
	if err := r.m.WriteBlock(key, blockOf(0x66, 300)); err != nil {
		t.Fatal(err)
	}
	if err := r.m.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := r.m.TruncateBlock(key, 64); err != nil {
		t.Fatal(err)
	}
	if got := r.m.BlockSize(key); got != 64 {
		t.Fatalf("live size after truncate %d, want 64", got)
	}

	r.dram.PowerFail()
	r.m.PowerFailRecover()
	r.dram.Restore()

	// Flash still holds all 300 bytes; the truncation was never persisted.
	if got := r.m.BlockSize(key); got != 300 {
		t.Fatalf("recovered size %d, want the persisted 300", got)
	}
	buf := make([]byte, 4096)
	n, err := r.m.ReadBlock(key, buf)
	if err != nil || n != 300 {
		t.Fatalf("recovered read n=%d err=%v", n, err)
	}
	if !bytes.Equal(buf[:300], blockOf(0x66, 300)) {
		t.Fatal("recovered content mismatch")
	}
	if err := r.m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// Regression: truncating a block that is dirty in DRAM over an older
// flash copy must leave the flash copy's bookkeeping alone — after a
// power failure the full persisted version comes back, not a version
// clamped to the lost in-DRAM truncation.
func TestTruncateDirtyBlockKeepsPersistedSize(t *testing.T) {
	r := newRig(t, 1<<20, 0)
	key := Key{Object: 1, Block: 0}
	if err := r.m.WriteBlock(key, blockOf(0x11, 300)); err != nil {
		t.Fatal(err)
	}
	if err := r.m.Sync(); err != nil {
		t.Fatal(err)
	}
	// Copy-on-write back into DRAM, then truncate the dirty version.
	if err := r.m.WriteBlock(key, blockOf(0x22, 200)); err != nil {
		t.Fatal(err)
	}
	if !r.m.InDRAM(key) {
		t.Fatal("overwrite did not come back to DRAM")
	}
	if err := r.m.TruncateBlock(key, 64); err != nil {
		t.Fatal(err)
	}

	r.dram.PowerFail()
	r.m.PowerFailRecover()
	r.dram.Restore()

	// The dirty overwrite and its truncation died with DRAM; the flushed
	// 300-byte version is what survives.
	if got := r.m.BlockSize(key); got != 300 {
		t.Fatalf("recovered size %d, want the persisted 300", got)
	}
	buf := make([]byte, 4096)
	n, err := r.m.ReadBlock(key, buf)
	if err != nil || n != 300 {
		t.Fatalf("recovered read n=%d err=%v", n, err)
	}
	if !bytes.Equal(buf[:300], blockOf(0x11, 300)) {
		t.Fatal("recovered content is not the flushed version")
	}
	if err := r.m.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
