// Package diskfs implements the conventional disk-based file system the
// paper's organisation is measured against: an FFS-like design with an
// on-disk inode table, direct and indirect block pointers, and a buffer
// cache between the file system and the mechanical disk.
//
// It deliberately keeps the costs the paper says solid-state storage
// eliminates:
//
//   - data and metadata live on disk and are duplicated into the DRAM
//     buffer cache to be used at all;
//   - large files pay extra device accesses for single- and
//     double-indirect pointer blocks;
//   - name-space mutations (create, remove, rename) write inode blocks
//     through to disk synchronously, the classic price of metadata
//     integrity on a volatile-memory machine;
//   - data writes are delayed in the cache and flushed by a periodic
//     write-back daemon.
//
// The namespace is flat (the experiments address files by name); the
// interesting costs are all in the block and metadata paths.
package diskfs

import (
	"encoding/binary"
	"errors"
	"fmt"

	"ssmobile/internal/bufcache"
	"ssmobile/internal/sim"
)

// Sentinel errors.
var (
	// ErrNotExist reports a missing file.
	ErrNotExist = errors.New("diskfs: no such file")
	// ErrExist reports a create over an existing name.
	ErrExist = errors.New("diskfs: file exists")
	// ErrNoSpace reports data-region exhaustion.
	ErrNoSpace = errors.New("diskfs: out of space")
	// ErrNoInodes reports inode-table exhaustion.
	ErrNoInodes = errors.New("diskfs: out of inodes")
	// ErrTooBig reports a file exceeding the pointer geometry.
	ErrTooBig = errors.New("diskfs: file too large")
	// ErrBadArg reports an invalid offset or size.
	ErrBadArg = errors.New("diskfs: bad argument")
)

const (
	inodeBytes = 128
	numDirect  = 12
)

// Config parameterises the file system.
type Config struct {
	// InodeBlocks is the size of the on-disk inode table in blocks.
	InodeBlocks int64
}

// inode is the in-core copy of an on-disk inode.
type inode struct {
	ino      int64
	size     int64
	direct   [numDirect]int64 // 0 = unallocated (block 0 is the superblock)
	indirect int64
	dindir   int64
}

// FS is the conventional file system. Not safe for concurrent use.
type FS struct {
	cfg   Config
	cache *bufcache.Cache
	bs    int64

	names     map[string]int64 // name → ino
	inodes    map[int64]*inode // in-core inode cache (all of them)
	freeInos  []int64
	freeBlks  []int64
	dataBase  int64
	numBlocks int64

	syncMetaWrites sim.Counter
}

// New formats and mounts a fresh file system over the cache.
func New(cfg Config, cache *bufcache.Cache) (*FS, error) {
	if cfg.InodeBlocks <= 0 {
		cfg.InodeBlocks = 8
	}
	bs := int64(cache.BlockBytes())
	blocks := cache.Blocks()
	dataBase := 1 + cfg.InodeBlocks
	if dataBase >= blocks {
		return nil, fmt.Errorf("diskfs: device of %d blocks too small", blocks)
	}
	f := &FS{
		cfg:       cfg,
		cache:     cache,
		bs:        bs,
		names:     make(map[string]int64),
		inodes:    make(map[int64]*inode),
		dataBase:  dataBase,
		numBlocks: blocks,
	}
	inosPerBlock := bs / inodeBytes
	for ino := cfg.InodeBlocks*inosPerBlock - 1; ino >= 0; ino-- {
		f.freeInos = append(f.freeInos, ino)
	}
	for bn := blocks - 1; bn >= dataBase; bn-- {
		f.freeBlks = append(f.freeBlks, bn)
	}
	return f, nil
}

// BlockBytes reports the block size.
func (f *FS) BlockBytes() int { return int(f.bs) }

// FreeBlocks reports the free data blocks.
func (f *FS) FreeBlocks() int { return len(f.freeBlks) }

// SyncMetadataWrites reports how many synchronous inode-table writes the
// name-space operations have cost — the overhead the paper's
// battery-backed-DRAM metadata eliminates.
func (f *FS) SyncMetadataWrites() int64 { return f.syncMetaWrites.Value() }

func (f *FS) ptrsPerBlock() int64 { return f.bs / 8 }

func (f *FS) maxFileBlocks() int64 {
	p := f.ptrsPerBlock()
	return numDirect + p + p*p
}

// inodeBlock returns the inode-table block and intra-block offset of ino.
func (f *FS) inodeBlock(ino int64) (bn int64, off int64) {
	inosPerBlock := f.bs / inodeBytes
	return 1 + ino/inosPerBlock, (ino % inosPerBlock) * inodeBytes
}

// writeInodeSync writes the inode through to disk (metadata integrity).
func (f *FS) writeInodeSync(nd *inode) error {
	return f.writeInode(nd, true)
}

// writeInodeAsync updates the cached inode block, flushed lazily.
func (f *FS) writeInodeAsync(nd *inode) error {
	return f.writeInode(nd, false)
}

func (f *FS) writeInode(nd *inode, through bool) error {
	bn, off := f.inodeBlock(nd.ino)
	buf := make([]byte, f.bs)
	if err := f.cache.ReadBlock(bn, buf); err != nil {
		return err
	}
	rec := buf[off : off+inodeBytes]
	binary.LittleEndian.PutUint64(rec[0:], uint64(nd.size))
	for i, d := range nd.direct {
		binary.LittleEndian.PutUint64(rec[8+8*i:], uint64(d))
	}
	binary.LittleEndian.PutUint64(rec[8+8*numDirect:], uint64(nd.indirect))
	binary.LittleEndian.PutUint64(rec[16+8*numDirect:], uint64(nd.dindir))
	if through {
		f.syncMetaWrites.Inc()
		return f.cache.WriteBlockThrough(bn, buf)
	}
	return f.cache.WriteBlock(bn, buf)
}

func (f *FS) allocBlock() (int64, error) {
	n := len(f.freeBlks)
	if n == 0 {
		return 0, ErrNoSpace
	}
	bn := f.freeBlks[n-1]
	f.freeBlks = f.freeBlks[:n-1]
	return bn, nil
}

func (f *FS) freeBlock(bn int64) {
	f.cache.Invalidate(bn)
	f.freeBlks = append(f.freeBlks, bn)
}

// readPtr reads one pointer from a pointer block.
func (f *FS) readPtr(bn, idx int64) (int64, error) {
	buf := make([]byte, f.bs)
	if err := f.cache.ReadBlock(bn, buf); err != nil {
		return 0, err
	}
	return int64(binary.LittleEndian.Uint64(buf[idx*8:])), nil
}

// writePtr updates one pointer in a pointer block (write-back).
func (f *FS) writePtr(bn, idx, val int64) error {
	buf := make([]byte, f.bs)
	if err := f.cache.ReadBlock(bn, buf); err != nil {
		return err
	}
	binary.LittleEndian.PutUint64(buf[idx*8:], uint64(val))
	return f.cache.WriteBlock(bn, buf)
}

// blockFor resolves the data block holding file block idx, allocating the
// chain if alloc is set. It returns 0 for an unallocated hole.
func (f *FS) blockFor(nd *inode, idx int64, alloc bool) (int64, error) {
	if idx < 0 || idx >= f.maxFileBlocks() {
		return 0, fmt.Errorf("%w: block %d", ErrTooBig, idx)
	}
	p := f.ptrsPerBlock()
	switch {
	case idx < numDirect:
		if nd.direct[idx] == 0 && alloc {
			bn, err := f.allocBlock()
			if err != nil {
				return 0, err
			}
			nd.direct[idx] = bn
			if err := f.writeInodeAsync(nd); err != nil {
				return 0, err
			}
		}
		return nd.direct[idx], nil

	case idx < numDirect+p:
		if nd.indirect == 0 {
			if !alloc {
				return 0, nil
			}
			bn, err := f.allocBlock()
			if err != nil {
				return 0, err
			}
			if err := f.cache.WriteBlock(bn, make([]byte, f.bs)); err != nil {
				return 0, err
			}
			nd.indirect = bn
			if err := f.writeInodeAsync(nd); err != nil {
				return 0, err
			}
		}
		slot := idx - numDirect
		bn, err := f.readPtr(nd.indirect, slot)
		if err != nil {
			return 0, err
		}
		if bn == 0 && alloc {
			bn, err = f.allocBlock()
			if err != nil {
				return 0, err
			}
			if err := f.writePtr(nd.indirect, slot, bn); err != nil {
				return 0, err
			}
		}
		return bn, nil

	default:
		if nd.dindir == 0 {
			if !alloc {
				return 0, nil
			}
			bn, err := f.allocBlock()
			if err != nil {
				return 0, err
			}
			if err := f.cache.WriteBlock(bn, make([]byte, f.bs)); err != nil {
				return 0, err
			}
			nd.dindir = bn
			if err := f.writeInodeAsync(nd); err != nil {
				return 0, err
			}
		}
		rest := idx - numDirect - p
		outer, inner := rest/p, rest%p
		l1, err := f.readPtr(nd.dindir, outer)
		if err != nil {
			return 0, err
		}
		if l1 == 0 {
			if !alloc {
				return 0, nil
			}
			l1, err = f.allocBlock()
			if err != nil {
				return 0, err
			}
			if err := f.cache.WriteBlock(l1, make([]byte, f.bs)); err != nil {
				return 0, err
			}
			if err := f.writePtr(nd.dindir, outer, l1); err != nil {
				return 0, err
			}
		}
		bn, err := f.readPtr(l1, inner)
		if err != nil {
			return 0, err
		}
		if bn == 0 && alloc {
			bn, err = f.allocBlock()
			if err != nil {
				return 0, err
			}
			if err := f.writePtr(l1, inner, bn); err != nil {
				return 0, err
			}
		}
		return bn, nil
	}
}

// Create makes an empty file, writing its inode synchronously.
func (f *FS) Create(name string) error {
	if _, ok := f.names[name]; ok {
		return fmt.Errorf("%w: %q", ErrExist, name)
	}
	n := len(f.freeInos)
	if n == 0 {
		return ErrNoInodes
	}
	ino := f.freeInos[n-1]
	f.freeInos = f.freeInos[:n-1]
	nd := &inode{ino: ino}
	f.inodes[ino] = nd
	f.names[name] = ino
	return f.writeInodeSync(nd)
}

// Exists reports whether the file exists.
func (f *FS) Exists(name string) bool {
	_, ok := f.names[name]
	return ok
}

// Size reports the file's size.
func (f *FS) Size(name string) (int64, error) {
	nd, err := f.lookup(name)
	if err != nil {
		return 0, err
	}
	return nd.size, nil
}

func (f *FS) lookup(name string) (*inode, error) {
	ino, ok := f.names[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotExist, name)
	}
	return f.inodes[ino], nil
}

// WriteAt writes data at off, allocating blocks and pointer chains.
func (f *FS) WriteAt(name string, off int64, data []byte) (int, error) {
	nd, err := f.lookup(name)
	if err != nil {
		return 0, err
	}
	if off < 0 {
		return 0, ErrBadArg
	}
	written := 0
	for written < len(data) {
		pos := off + int64(written)
		idx := pos / f.bs
		blkOff := pos % f.bs
		n := int(f.bs - blkOff)
		if n > len(data)-written {
			n = len(data) - written
		}
		bn, err := f.blockFor(nd, idx, true)
		if err != nil {
			return written, err
		}
		if blkOff == 0 && n == int(f.bs) {
			if err := f.cache.WriteBlock(bn, data[written:written+n]); err != nil {
				return written, err
			}
		} else {
			buf := make([]byte, f.bs)
			if err := f.cache.ReadBlock(bn, buf); err != nil {
				return written, err
			}
			copy(buf[blkOff:], data[written:written+n])
			if err := f.cache.WriteBlock(bn, buf); err != nil {
				return written, err
			}
		}
		written += n
	}
	if end := off + int64(len(data)); end > nd.size {
		nd.size = end
		if err := f.writeInodeAsync(nd); err != nil {
			return written, err
		}
	}
	return written, nil
}

// ReadAt reads up to len(buf) bytes at off, short at EOF.
func (f *FS) ReadAt(name string, off int64, buf []byte) (int, error) {
	nd, err := f.lookup(name)
	if err != nil {
		return 0, err
	}
	if off < 0 {
		return 0, ErrBadArg
	}
	if off >= nd.size {
		return 0, nil
	}
	want := int64(len(buf))
	if off+want > nd.size {
		want = nd.size - off
	}
	read := int64(0)
	block := make([]byte, f.bs)
	for read < want {
		pos := off + read
		idx := pos / f.bs
		blkOff := pos % f.bs
		n := f.bs - blkOff
		if n > want-read {
			n = want - read
		}
		bn, err := f.blockFor(nd, idx, false)
		if err != nil {
			return int(read), err
		}
		if bn == 0 {
			for i := int64(0); i < n; i++ {
				buf[read+i] = 0
			}
		} else {
			if err := f.cache.ReadBlock(bn, block); err != nil {
				return int(read), err
			}
			copy(buf[read:read+n], block[blkOff:blkOff+n])
		}
		read += n
	}
	return int(read), nil
}

// forEachBlock walks every allocated data and pointer block of the file.
func (f *FS) forEachBlock(nd *inode, fn func(bn int64)) error {
	for _, bn := range nd.direct {
		if bn != 0 {
			fn(bn)
		}
	}
	p := f.ptrsPerBlock()
	if nd.indirect != 0 {
		for i := int64(0); i < p; i++ {
			bn, err := f.readPtr(nd.indirect, i)
			if err != nil {
				return err
			}
			if bn != 0 {
				fn(bn)
			}
		}
		fn(nd.indirect)
	}
	if nd.dindir != 0 {
		for i := int64(0); i < p; i++ {
			l1, err := f.readPtr(nd.dindir, i)
			if err != nil {
				return err
			}
			if l1 == 0 {
				continue
			}
			for j := int64(0); j < p; j++ {
				bn, err := f.readPtr(l1, j)
				if err != nil {
					return err
				}
				if bn != 0 {
					fn(bn)
				}
			}
			fn(l1)
		}
		fn(nd.dindir)
	}
	return nil
}

// Remove deletes the file, freeing its blocks and writing the inode
// synchronously.
func (f *FS) Remove(name string) error {
	nd, err := f.lookup(name)
	if err != nil {
		return err
	}
	if err := f.forEachBlock(nd, f.freeBlock); err != nil {
		return err
	}
	delete(f.names, name)
	delete(f.inodes, nd.ino)
	f.freeInos = append(f.freeInos, nd.ino)
	cleared := &inode{ino: nd.ino}
	return f.writeInodeSync(cleared)
}

// Sync flushes all dirty cached blocks to disk.
func (f *FS) Sync() error { return f.cache.Sync() }

// Tick runs the cache's write-back daemon.
func (f *FS) Tick() error { return f.cache.Tick() }
