package diskfs

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"ssmobile/internal/bufcache"
	"ssmobile/internal/device"
	"ssmobile/internal/disk"
	"ssmobile/internal/dram"
	"ssmobile/internal/sim"
)

type rig struct {
	clock *sim.Clock
	disk  *disk.Device
	cache *bufcache.Cache
	fs    *FS
}

func newRig(t testing.TB, diskBytes int64) *rig {
	t.Helper()
	clock := sim.NewClock()
	meter := sim.NewEnergyMeter()
	dr, err := dram.New(dram.Config{CapacityBytes: 2 << 20, Params: device.NECDram}, clock, meter)
	if err != nil {
		t.Fatal(err)
	}
	dk, err := disk.New(disk.Config{CapacityBytes: diskBytes, Params: device.KittyHawk}, clock, meter)
	if err != nil {
		t.Fatal(err)
	}
	cache, err := bufcache.New(bufcache.Config{
		BlockBytes: 4096, DRAMBase: 0, DRAMBytes: 1 << 20,
		WriteBackDelay: 30 * sim.Second,
	}, clock, dr, dk)
	if err != nil {
		t.Fatal(err)
	}
	f, err := New(Config{InodeBlocks: 4}, cache)
	if err != nil {
		t.Fatal(err)
	}
	return &rig{clock: clock, disk: dk, cache: cache, fs: f}
}

func TestCreateExistsRemove(t *testing.T) {
	r := newRig(t, 8<<20)
	if err := r.fs.Create("a"); err != nil {
		t.Fatal(err)
	}
	if !r.fs.Exists("a") {
		t.Fatal("created file missing")
	}
	if err := r.fs.Create("a"); !errors.Is(err, ErrExist) {
		t.Fatalf("duplicate create: %v", err)
	}
	if err := r.fs.Remove("a"); err != nil {
		t.Fatal(err)
	}
	if r.fs.Exists("a") {
		t.Fatal("removed file exists")
	}
	if err := r.fs.Remove("a"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("double remove: %v", err)
	}
}

func TestMetadataWritesAreSynchronous(t *testing.T) {
	r := newRig(t, 8<<20)
	before := r.fs.SyncMetadataWrites()
	if err := r.fs.Create("f"); err != nil {
		t.Fatal(err)
	}
	if r.fs.SyncMetadataWrites() != before+1 {
		t.Fatal("create did not write metadata synchronously")
	}
	diskWrites := r.disk.Stats().Writes
	if diskWrites == 0 {
		t.Fatal("synchronous metadata never reached the disk")
	}
}

func TestSmallFileRoundTrip(t *testing.T) {
	r := newRig(t, 8<<20)
	if err := r.fs.Create("f"); err != nil {
		t.Fatal(err)
	}
	data := []byte("conventional storage organisation")
	if n, err := r.fs.WriteAt("f", 0, data); err != nil || n != len(data) {
		t.Fatalf("write: %d %v", n, err)
	}
	got := make([]byte, len(data))
	if n, err := r.fs.ReadAt("f", 0, got); err != nil || n != len(data) {
		t.Fatalf("read: %d %v", n, err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round trip mismatch")
	}
	if size, _ := r.fs.Size("f"); size != int64(len(data)) {
		t.Fatalf("size %d", size)
	}
}

func TestLargeFileUsesIndirectBlocks(t *testing.T) {
	r := newRig(t, 16<<20)
	if err := r.fs.Create("big"); err != nil {
		t.Fatal(err)
	}
	// 12 direct cover 48KB at 4KB blocks; write 300KB to reach the
	// indirect range, plus a probe in the double-indirect range.
	data := make([]byte, 300*1024)
	for i := range data {
		data[i] = byte(i / 4096)
	}
	if _, err := r.fs.WriteAt("big", 0, data); err != nil {
		t.Fatal(err)
	}
	// Double-indirect starts at (12+1024)*4096 with 8-byte pointers...
	// with 4KB blocks: ptrs/block = 512, so at (12+512)*4096 = 2096KB.
	probeOff := int64(12+512)*4096 + 17
	if _, err := r.fs.WriteAt("big", probeOff, []byte("deep")); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 4)
	if n, err := r.fs.ReadAt("big", probeOff, got); err != nil || n != 4 {
		t.Fatalf("deep read: %d %v", n, err)
	}
	if string(got) != "deep" {
		t.Fatalf("deep read %q", got)
	}
	// Verify earlier data intact.
	chunk := make([]byte, 4096)
	if _, err := r.fs.ReadAt("big", 100*1024, chunk); err != nil {
		t.Fatal(err)
	}
	if chunk[0] != byte(100*1024/4096) {
		t.Fatal("indirect-range data corrupted")
	}
}

func TestHolesReadZero(t *testing.T) {
	r := newRig(t, 8<<20)
	if err := r.fs.Create("sparse"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.fs.WriteAt("sparse", 20*4096, []byte("x")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	if n, err := r.fs.ReadAt("sparse", 10*4096, buf); err != nil || n != 8 {
		t.Fatalf("hole read: %d %v", n, err)
	}
	for _, b := range buf {
		if b != 0 {
			t.Fatal("hole not zero")
		}
	}
}

func TestRemoveFreesBlocks(t *testing.T) {
	r := newRig(t, 8<<20)
	if err := r.fs.Create("f"); err != nil {
		t.Fatal(err)
	}
	free0 := r.fs.FreeBlocks()
	if _, err := r.fs.WriteAt("f", 0, make([]byte, 100*1024)); err != nil {
		t.Fatal(err)
	}
	if r.fs.FreeBlocks() >= free0 {
		t.Fatal("write allocated nothing")
	}
	if err := r.fs.Remove("f"); err != nil {
		t.Fatal(err)
	}
	if r.fs.FreeBlocks() != free0 {
		t.Fatalf("blocks leaked: %d vs %d", r.fs.FreeBlocks(), free0)
	}
}

func TestReuseAfterRemoveIsClean(t *testing.T) {
	r := newRig(t, 8<<20)
	if err := r.fs.Create("f"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.fs.WriteAt("f", 0, bytes.Repeat([]byte{0xFF}, 8192)); err != nil {
		t.Fatal(err)
	}
	if err := r.fs.Remove("f"); err != nil {
		t.Fatal(err)
	}
	if err := r.fs.Create("g"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.fs.WriteAt("g", 0, []byte("new")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 3)
	if _, err := r.fs.ReadAt("g", 0, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "new" {
		t.Fatalf("reused block carries stale data: %q", buf)
	}
}

func TestDiskLatencyDominatesColdReads(t *testing.T) {
	r := newRig(t, 8<<20)
	if err := r.fs.Create("f"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.fs.WriteAt("f", 0, make([]byte, 64*1024)); err != nil {
		t.Fatal(err)
	}
	if err := r.fs.Sync(); err != nil {
		t.Fatal(err)
	}
	// Warm read (cached).
	start := r.clock.Now()
	if _, err := r.fs.ReadAt("f", 0, make([]byte, 4096)); err != nil {
		t.Fatal(err)
	}
	warm := r.clock.Now().Sub(start)
	if warm > sim.Millisecond {
		t.Fatalf("warm read %v, want DRAM-speed", warm)
	}
}

func TestRemoveDoubleIndirectFile(t *testing.T) {
	r := newRig(t, 32<<20)
	if err := r.fs.Create("huge"); err != nil {
		t.Fatal(err)
	}
	// Touch direct, indirect and double-indirect ranges sparsely.
	offsets := []int64{0, 20 * 4096, (12 + 600) * 4096, (12 + 512 + 700) * 4096}
	for _, off := range offsets {
		if _, err := r.fs.WriteAt("huge", off, []byte("block")); err != nil {
			t.Fatal(err)
		}
	}
	free0 := r.fs.FreeBlocks()
	if err := r.fs.Remove("huge"); err != nil {
		t.Fatal(err)
	}
	// All data blocks plus pointer blocks must come back.
	if r.fs.FreeBlocks() <= free0 {
		t.Fatalf("remove freed nothing: %d vs %d", r.fs.FreeBlocks(), free0)
	}
	// Create a new file reusing the space; its deep range must read zero.
	if err := r.fs.Create("fresh"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.fs.WriteAt("fresh", (12+512+700)*4096, []byte("x")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	if _, err := r.fs.ReadAt("fresh", (12+600)*4096, buf); err != nil {
		t.Fatal(err)
	}
	for _, b := range buf {
		if b != 0 {
			t.Fatal("stale pointer chain leaked across remove")
		}
	}
}

func TestFileTooLarge(t *testing.T) {
	r := newRig(t, 8<<20)
	if err := r.fs.Create("f"); err != nil {
		t.Fatal(err)
	}
	// Past direct + indirect + double-indirect capacity.
	max := int64(12+512+512*512) * 4096
	if _, err := r.fs.WriteAt("f", max+4096, []byte("x")); !errors.Is(err, ErrTooBig) {
		t.Fatalf("over-large write: %v", err)
	}
}

func TestOutOfSpace(t *testing.T) {
	r := newRig(t, 2<<20) // tiny disk
	if err := r.fs.Create("f"); err != nil {
		t.Fatal(err)
	}
	_, err := r.fs.WriteAt("f", 0, make([]byte, 4<<20))
	if !errors.Is(err, ErrNoSpace) {
		t.Fatalf("overfull write: %v", err)
	}
}

func TestOutOfInodes(t *testing.T) {
	clock := sim.NewClock()
	meter := sim.NewEnergyMeter()
	dr, err := dram.New(dram.Config{CapacityBytes: 2 << 20, Params: device.NECDram}, clock, meter)
	if err != nil {
		t.Fatal(err)
	}
	dk, err := disk.New(disk.Config{CapacityBytes: 8 << 20, Params: device.KittyHawk}, clock, meter)
	if err != nil {
		t.Fatal(err)
	}
	cache, err := bufcache.New(bufcache.Config{BlockBytes: 4096, DRAMBytes: 1 << 20}, clock, dr, dk)
	if err != nil {
		t.Fatal(err)
	}
	f, err := New(Config{InodeBlocks: 1}, cache) // 32 inodes
	if err != nil {
		t.Fatal(err)
	}
	var lastErr error
	for i := 0; i < 100; i++ {
		if lastErr = f.Create(string(rune('a' + i%26))); lastErr != nil {
			break
		}
		lastErr = f.Create(string(rune('a'+i%26)) + "x" + string(rune('0'+i/26)))
		if lastErr != nil {
			break
		}
	}
	if !errors.Is(lastErr, ErrNoInodes) && !errors.Is(lastErr, ErrExist) {
		t.Fatalf("inode exhaustion: %v", lastErr)
	}
}

func TestBadArgs(t *testing.T) {
	r := newRig(t, 8<<20)
	if err := r.fs.Create("f"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.fs.WriteAt("f", -1, []byte("x")); !errors.Is(err, ErrBadArg) {
		t.Fatalf("negative write offset: %v", err)
	}
	if _, err := r.fs.ReadAt("f", -1, make([]byte, 1)); !errors.Is(err, ErrBadArg) {
		t.Fatalf("negative read offset: %v", err)
	}
	if _, err := r.fs.WriteAt("nope", 0, []byte("x")); !errors.Is(err, ErrNotExist) {
		t.Fatalf("write to missing: %v", err)
	}
	if _, err := r.fs.Size("nope"); !errors.Is(err, ErrNotExist) {
		t.Fatalf("size of missing: %v", err)
	}
	if r.fs.BlockBytes() != 4096 {
		t.Fatal("BlockBytes wrong")
	}
}

func TestTickFlushesAgedData(t *testing.T) {
	r := newRig(t, 8<<20)
	if err := r.fs.Create("f"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.fs.WriteAt("f", 0, bytes.Repeat([]byte{0xAB}, 4096)); err != nil {
		t.Fatal(err)
	}
	flushedBefore := r.cache.Stats().FlushedBlocks
	r.clock.Advance(31 * sim.Second)
	if err := r.fs.Tick(); err != nil {
		t.Fatal(err)
	}
	if r.cache.Stats().FlushedBlocks <= flushedBefore {
		t.Fatal("tick flushed nothing after the write-back delay")
	}
}

// Property: the disk FS matches a map model under random writes/reads.
func TestDiskFSModelProperty(t *testing.T) {
	f := func(writes []struct {
		Off  uint16
		Data []byte
	}) bool {
		r := newRig(t, 8<<20)
		if err := r.fs.Create("f"); err != nil {
			return false
		}
		model := []byte{}
		for _, w := range writes {
			data := w.Data
			if len(data) > 5000 {
				data = data[:5000]
			}
			off := int64(w.Off) % 65536
			if _, err := r.fs.WriteAt("f", off, data); err != nil {
				return false
			}
			if need := off + int64(len(data)); int64(len(model)) < need {
				grown := make([]byte, need)
				copy(grown, model)
				model = grown
			}
			copy(model[off:], data)
		}
		got := make([]byte, len(model))
		n, err := r.fs.ReadAt("f", 0, got)
		if err != nil || n != len(model) {
			return false
		}
		return bytes.Equal(got, model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
