// Package device holds the storage-device parameter catalog and the
// technology-trend model from Section 2 of the paper.
//
// The paper's argument is built on the published characteristics of five
// 1993 parts — an NEC low-power DRAM, Intel and SunDisk flash products, and
// Hewlett-Packard KittyHawk and Fujitsu disk drives — plus two trend
// constants from Patterson & Hennessy: semiconductor memory improves about
// 40% per year in both $/MB and MB/in³ while disks improve about 25% per
// year. The catalog here records those parameters (exact where the paper
// gives a number, datasheet-typical where it gives only a range) and the
// trend model extrapolates them, reproducing the paper's crossover claims.
package device

import "fmt"

// Class labels the three storage technologies the paper compares.
type Class int

// Storage technology classes.
const (
	DRAM Class = iota
	Flash
	Disk
)

// String returns the class name.
func (c Class) String() string {
	switch c {
	case DRAM:
		return "DRAM"
	case Flash:
		return "flash"
	case Disk:
		return "disk"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Params describes one storage product well enough to simulate it and to
// compare it on the paper's five axes: performance, cost, size, power, and
// (for flash) endurance.
type Params struct {
	Name  string
	Class Class
	Year  int // year of the quoted figures

	// CapacityMB is the capacity of the quoted configuration in megabytes.
	CapacityMB float64

	// DollarsPerMB is the quoted cost per megabyte.
	DollarsPerMB float64

	// MBPerCubicInch is the volumetric density.
	MBPerCubicInch float64

	// ReadLatencyNsPerByte and WriteLatencyNsPerByte are the sustained
	// per-byte access costs for random access; SetupNs is the fixed
	// per-operation overhead (command issue for memories, controller
	// overhead for disks — seek and rotation are modelled separately by
	// the disk simulator).
	ReadLatencyNsPerByte  float64
	WriteLatencyNsPerByte float64
	SetupNs               float64

	// EraseBlockBytes and EraseLatencyNs describe the flash erase unit;
	// zero for non-flash devices. EnduranceCycles is the guaranteed
	// per-block erase/write cycle count.
	EraseBlockBytes int
	EraseLatencyNs  float64
	EnduranceCycles int64

	// ActiveMilliwattsPerMB and IdleMilliwattsPerMB describe power draw
	// scaled by capacity, the way the paper quotes it for memories. For
	// disks the figures are for the whole mechanism and capacity scaling
	// does not apply; the disk simulator uses the whole-drive numbers.
	ActiveMilliwattsPerMB float64
	IdleMilliwattsPerMB   float64

	// Disk-mechanism figures (zero for memories).
	AvgSeekNs        float64
	TrackToTrackNs   float64
	RotationalRPM    float64
	TransferMBPerSec float64
	SpinupNs         float64
	ActiveMilliwatts float64 // whole-drive, seeking/transferring
	IdleMilliwatts   float64 // whole-drive, spinning
	SleepMilliwatts  float64 // whole-drive, spun down
}

// The 1993 catalog. Values marked "paper" are stated in the text; the rest
// are typical datasheet values for the named part, chosen to be consistent
// with the paper's qualitative comparisons (DRAM faster than flash,
// flash reads near DRAM reads, flash writes two orders of magnitude slower
// than reads, disk slower but cheaper than flash, flash lowest power).
var (
	// NECDram is the NEC 3.3-volt self-refresh DRAM the paper cites:
	// "The NEC DRAM already provides 15 megabytes per cubic inch" (paper);
	// ~$30/MB in 1993; ~100ns random access.
	NECDram = Params{
		Name:                  "NEC uPD42S4260 DRAM",
		Class:                 DRAM,
		Year:                  1993,
		CapacityMB:            20,
		DollarsPerMB:          55, // makes a 20MB DRAM package 10x a 20MB KittyHawk drive (paper)
		MBPerCubicInch:        15, // paper
		ReadLatencyNsPerByte:  25, // ~100ns per 4-byte random access
		WriteLatencyNsPerByte: 25,
		SetupNs:               100,
		ActiveMilliwattsPerMB: 150, // active read/write draw
		IdleMilliwattsPerMB:   1,   // low-power self-refresh mode (paper's point)
	}

	// IntelFlash is the Intel Series-2 style memory-mapped flash card:
	// "read access times in the 100-nanosecond per byte range and write
	// times in the 10-microsecond per byte range ... minimum erase sector
	// in the 512-byte range ... guaranteed 100,000 erase cycles ... cost
	// in the 50-dollar per megabyte range ... tens of milliwatts per
	// megabyte" (all paper). The Intel parts actually erased 64KB blocks;
	// we expose both and default the simulator to 64KB blocks.
	IntelFlash = Params{
		Name:                  "Intel Series 2 Flash",
		Class:                 Flash,
		Year:                  1993,
		CapacityMB:            20,
		DollarsPerMB:          50,    // paper
		MBPerCubicInch:        16,    // "within 20% of the density of the KittyHawk" (paper)
		ReadLatencyNsPerByte:  150,   // paper: 100ns/byte range (memory-mapped)
		WriteLatencyNsPerByte: 10000, // paper: 10us/byte range
		SetupNs:               250,
		EraseBlockBytes:       64 * 1024,
		EraseLatencyNs:        1.6e9,  // 1.6 s full-block erase, Series-2 datasheet class
		EnduranceCycles:       100000, // paper
		ActiveMilliwattsPerMB: 30,     // paper: "tens of milliwatts per megabyte"
		IdleMilliwattsPerMB:   0.05,
	}

	// SunDiskFlash is the SunDisk (later SanDisk) SDP drive-replacement
	// flash: "intended to replace hard drives and is optimized for both
	// read and write performance" (paper). Block-interface access with a
	// small 512-byte sector, faster erase, slower reads than the Intel
	// memory-mapped part.
	SunDiskFlash = Params{
		Name:                  "SunDisk SDP Flash",
		Class:                 Flash,
		Year:                  1993,
		CapacityMB:            20,
		DollarsPerMB:          50,
		MBPerCubicInch:        16,
		ReadLatencyNsPerByte:  400,  // block interface, slower than memory-mapped reads
		WriteLatencyNsPerByte: 2500, // optimised writes vs Intel's 10us/byte
		SetupNs:               1000,
		EraseBlockBytes:       512, // paper: "minimum erase sector in the 512-byte range"
		EraseLatencyNs:        4e6, // erase folded into small-sector rewrite
		EnduranceCycles:       100000,
		ActiveMilliwattsPerMB: 30,
		IdleMilliwattsPerMB:   0.05,
	}

	// KittyHawk is the HP C3013A 1.3-inch 20MB drive: "19 megabytes per
	// cubic inch" (paper), ~$3/MB class pricing (the paper says a 20MB
	// DRAM package costs ten times more than a 20MB disk drive).
	KittyHawk = Params{
		Name:             "HP KittyHawk C3013A",
		Class:            Disk,
		Year:             1993,
		CapacityMB:       20,
		DollarsPerMB:     3,
		MBPerCubicInch:   19, // paper
		SetupNs:          500e3,
		AvgSeekNs:        18e6, // 18 ms average seek
		TrackToTrackNs:   5e6,  // 5 ms
		RotationalRPM:    5400,
		TransferMBPerSec: 0.9,
		SpinupNs:         1e9, // 1 s fast spin-up (KittyHawk's headline feature)
		ActiveMilliwatts: 1500,
		IdleMilliwatts:   700,
		SleepMilliwatts:  15,
	}

	// Fujitsu is the M2633 2.5-inch drive, the higher-capacity baseline:
	// flash densities "are only half that of the Fujitsu drive" (paper).
	Fujitsu = Params{
		Name:             "Fujitsu M2633",
		Class:            Disk,
		Year:             1993,
		CapacityMB:       120,
		DollarsPerMB:     2.5,
		MBPerCubicInch:   30, // ~2x the 1993 flash density (paper)
		SetupNs:          500e3,
		AvgSeekNs:        12e6,
		TrackToTrackNs:   3e6,
		RotationalRPM:    4500,
		TransferMBPerSec: 1.5,
		SpinupNs:         2e9,
		ActiveMilliwatts: 2200,
		IdleMilliwatts:   1000,
		SleepMilliwatts:  25,
	}
)

// Catalog lists every part in the 1993 comparison, in the order the paper
// introduces them.
func Catalog() []Params {
	return []Params{NECDram, IntelFlash, SunDiskFlash, KittyHawk, Fujitsu}
}

// ReadLatencyNs reports the modelled latency of a random read of n bytes,
// excluding mechanical positioning (the disk simulator adds that).
func (p Params) ReadLatencyNs(n int) float64 {
	if p.Class == Disk {
		return p.SetupNs + float64(n)/(p.TransferMBPerSec*1e6)*1e9
	}
	return p.SetupNs + p.ReadLatencyNsPerByte*float64(n)
}

// WriteLatencyNs reports the modelled latency of writing n bytes into
// already-erased storage, excluding mechanical positioning and excluding
// flash erase cost (quoted separately as EraseLatencyNs).
func (p Params) WriteLatencyNs(n int) float64 {
	if p.Class == Disk {
		return p.SetupNs + float64(n)/(p.TransferMBPerSec*1e6)*1e9
	}
	return p.SetupNs + p.WriteLatencyNsPerByte*float64(n)
}
