package device

import (
	"math"
	"testing"
	"testing/quick"
)

// The catalog must reproduce the qualitative orderings Section 2 of the
// paper asserts. These tests pin them so no later calibration tweak can
// silently invert a comparison the experiments depend on.

func TestCatalogComplete(t *testing.T) {
	cat := Catalog()
	if len(cat) != 5 {
		t.Fatalf("catalog has %d parts, want 5", len(cat))
	}
	classes := map[Class]int{}
	for _, p := range cat {
		classes[p.Class]++
		if p.Name == "" || p.Year == 0 || p.CapacityMB <= 0 {
			t.Errorf("%s: incomplete identity fields", p.Name)
		}
		if p.DollarsPerMB <= 0 || p.MBPerCubicInch <= 0 {
			t.Errorf("%s: missing cost or density", p.Name)
		}
	}
	if classes[DRAM] != 1 || classes[Flash] != 2 || classes[Disk] != 2 {
		t.Fatalf("class mix %v, want 1 DRAM / 2 flash / 2 disk", classes)
	}
}

func TestClassString(t *testing.T) {
	if DRAM.String() != "DRAM" || Flash.String() != "flash" || Disk.String() != "disk" {
		t.Error("class names wrong")
	}
	if Class(9).String() != "Class(9)" {
		t.Error("unknown class formatting wrong")
	}
}

func TestPaperOrderingDRAMFasterThanFlash(t *testing.T) {
	// "DRAM is faster than flash memory but somewhat costlier."
	if NECDram.ReadLatencyNs(4096) >= IntelFlash.ReadLatencyNs(4096) {
		t.Error("DRAM read should beat flash read")
	}
	if NECDram.WriteLatencyNs(4096) >= IntelFlash.WriteLatencyNs(4096) {
		t.Error("DRAM write should beat flash write")
	}
	if NECDram.DollarsPerMB <= IntelFlash.DollarsPerMB {
		t.Error("DRAM should cost more per MB than flash in 1993")
	}
}

func TestPaperOrderingFlashWriteTwoOrdersSlowerThanRead(t *testing.T) {
	// "write access times are two orders of magnitude higher than read
	// access times" — per byte, for the memory-mapped part.
	ratio := IntelFlash.WriteLatencyNsPerByte / IntelFlash.ReadLatencyNsPerByte
	if ratio < 30 || ratio > 300 {
		t.Errorf("flash write/read per-byte ratio = %.0f, want ~100 (two orders)", ratio)
	}
}

func TestPaperOrderingDiskSlowerButCheaperThanFlash(t *testing.T) {
	// "disk is slower than flash memory but considerably cheaper."
	// A small random read on disk pays positioning, which even without
	// seek modelling here is dominated by transfer setup; compare an 8KB
	// transfer plus average seek against the flash read.
	diskNs := KittyHawk.ReadLatencyNs(8192) + KittyHawk.AvgSeekNs
	flashNs := IntelFlash.ReadLatencyNs(8192)
	if diskNs <= flashNs {
		t.Errorf("disk 8KB read %v ns should exceed flash %v ns", diskNs, flashNs)
	}
	if KittyHawk.DollarsPerMB >= IntelFlash.DollarsPerMB {
		t.Error("disk should be cheaper per MB than flash in 1993")
	}
}

func TestPaperOrderingFlashLowestPower(t *testing.T) {
	// "flash memory has lower power consumption than either DRAM or disk."
	if IntelFlash.ActiveMilliwattsPerMB >= NECDram.ActiveMilliwattsPerMB {
		t.Error("flash active power per MB should undercut DRAM")
	}
	flashDrive20MB := IntelFlash.ActiveMilliwattsPerMB * 20
	if flashDrive20MB >= KittyHawk.ActiveMilliwatts {
		t.Error("a 20MB flash card should draw less than the KittyHawk")
	}
}

func TestPaperDensityNumbers(t *testing.T) {
	// Paper: NEC DRAM 15 MB/in³ vs KittyHawk 19 MB/in³; flash within 20%
	// of KittyHawk; flash about half the Fujitsu.
	if NECDram.MBPerCubicInch != 15 || KittyHawk.MBPerCubicInch != 19 {
		t.Error("paper's density figures changed")
	}
	if d := IntelFlash.MBPerCubicInch / KittyHawk.MBPerCubicInch; d < 0.8 {
		t.Errorf("flash density %.2f of KittyHawk, paper says within 20%%", d)
	}
	if r := IntelFlash.MBPerCubicInch / Fujitsu.MBPerCubicInch; r < 0.4 || r > 0.6 {
		t.Errorf("flash/Fujitsu density ratio %.2f, paper says about half", r)
	}
}

func TestPaperEnduranceAndEraseSector(t *testing.T) {
	if IntelFlash.EnduranceCycles != 100000 || SunDiskFlash.EnduranceCycles != 100000 {
		t.Error("paper guarantees 100,000 erase cycles")
	}
	if SunDiskFlash.EraseBlockBytes != 512 {
		t.Error("paper: minimum erase sector in the 512-byte range")
	}
	if NECDram.EraseBlockBytes != 0 || KittyHawk.EraseBlockBytes != 0 {
		t.Error("only flash has erase blocks")
	}
}

func TestTrendCostDeclines(t *testing.T) {
	tr := PaperTrend()
	for _, p := range Catalog() {
		c93 := tr.DollarsPerMB(p, 1993)
		c96 := tr.DollarsPerMB(p, 1996)
		if math.Abs(c93-p.DollarsPerMB) > 1e-9 {
			t.Errorf("%s: projection at base year should equal quote", p.Name)
		}
		if c96 >= c93 {
			t.Errorf("%s: cost should decline, 1993=%.2f 1996=%.2f", p.Name, c93, c96)
		}
	}
}

func TestTrendMemoryOutpacesDisk(t *testing.T) {
	tr := PaperTrend()
	// Over any horizon the DRAM:disk $/MB ratio must shrink.
	r93 := tr.DollarsPerMB(NECDram, 1993) / tr.DollarsPerMB(KittyHawk, 1993)
	r00 := tr.DollarsPerMB(NECDram, 2000) / tr.DollarsPerMB(KittyHawk, 2000)
	if r00 >= r93 {
		t.Errorf("DRAM/disk cost ratio should shrink: 1993=%.1f 2000=%.1f", r93, r00)
	}
}

func TestCostCrossover1996(t *testing.T) {
	// Paper: "for 40-Megabyte configurations, the cost per megabyte of
	// flash memory will match that of magnetic disks by the year 1996".
	tr := PaperTrend()
	y, ok := tr.CostCrossoverYear(IntelFlash, KittyHawk, 40, 2005)
	if !ok {
		t.Fatal("no flash/disk cost crossover found by 2005")
	}
	if y < 1995 || y > 1998 {
		t.Errorf("40MB flash/disk cost crossover in %d, paper says ~1996", y)
	}
}

func TestDensityCrossoverDRAMPassesDisk(t *testing.T) {
	// Paper: "the density of DRAM will shortly exceed that of disk."
	tr := PaperTrend()
	y, ok := tr.DensityCrossoverYear(NECDram, KittyHawk, 2005)
	if !ok {
		t.Fatal("DRAM density never passes KittyHawk")
	}
	if y > 1997 {
		t.Errorf("DRAM passes disk density in %d, want 'shortly' after 1993", y)
	}
}

func TestLargeCapacityCrossoverLater(t *testing.T) {
	// The drive-mechanism price floor matters less at large capacities,
	// so the crossover year must be monotonically non-decreasing in
	// capacity.
	tr := PaperTrend()
	prev := 0
	for _, mb := range []float64{10, 40, 120, 500} {
		y, ok := tr.CostCrossoverYear(IntelFlash, Fujitsu, mb, 2030)
		if !ok {
			t.Fatalf("no crossover for %vMB by 2030", mb)
		}
		if y < prev {
			t.Errorf("crossover for %vMB at %d earlier than smaller config at %d", mb, y, prev)
		}
		prev = y
	}
}

func TestLatencyModelsScaleWithSize(t *testing.T) {
	for _, p := range Catalog() {
		small, large := p.ReadLatencyNs(512), p.ReadLatencyNs(8192)
		if large <= small {
			t.Errorf("%s: 8KB read (%v) not slower than 512B (%v)", p.Name, large, small)
		}
		if w := p.WriteLatencyNs(512); w <= 0 {
			t.Errorf("%s: non-positive write latency", p.Name)
		}
	}
}

// Property: projections never go negative and are monotone in year.
func TestTrendMonotoneProperty(t *testing.T) {
	tr := PaperTrend()
	f := func(yearOffset uint8) bool {
		y := 1993 + int(yearOffset%50)
		for _, p := range Catalog() {
			if tr.DollarsPerMB(p, y) <= 0 {
				return false
			}
			if tr.DollarsPerMB(p, y+1) >= tr.DollarsPerMB(p, y) {
				return false
			}
			if tr.MBPerCubicInch(p, y+1) <= tr.MBPerCubicInch(p, y) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
