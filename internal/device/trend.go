package device

import "math"

// Trend models the Patterson & Hennessy technology-improvement rates the
// paper uses: "The megabytes per dollar of DRAM increases by 40% a year,
// compared to 25% for disk" and the same 40%/25% split for megabytes per
// cubic inch. Flash tracks DRAM: "manufacturers expect flash memory
// densities to match and follow the increases in DRAM densities".
type Trend struct {
	// MemoryRate is the annual improvement factor numerator for DRAM and
	// flash (0.40 means MB/$ grows 40% per year, i.e. $/MB shrinks by
	// 1/1.40 per year).
	MemoryRate float64
	// DiskRate is the same for magnetic disk.
	DiskRate float64

	// FlashEarlyRate is the steep learning-curve rate flash cost rides
	// while the technology ramps, through FlashRampEnd; afterwards flash
	// cost follows MemoryRate. The paper's "some estimates predict that,
	// for 40-Megabyte configurations, the cost per megabyte of flash
	// memory will match that of magnetic disks by the year 1996" is
	// Intel's own projection [6], which assumed flash falling from ~$50/MB
	// in 1993 to ~$2/MB in 1996 — roughly a 2.9x price drop per year, far
	// steeper than the generic 40%/yr memory trend. Flash *density*
	// follows the DRAM trend throughout ("manufacturers expect flash
	// memory densities to match and follow the increases in DRAM
	// densities").
	FlashEarlyRate float64
	FlashRampEnd   int
}

// PaperTrend returns the rates quoted in the paper, with the flash
// learning curve calibrated to Intel's 1996 cost-parity projection.
func PaperTrend() Trend {
	return Trend{MemoryRate: 0.40, DiskRate: 0.25, FlashEarlyRate: 1.9, FlashRampEnd: 1997}
}

func (t Trend) rate(c Class) float64 {
	if c == Disk {
		return t.DiskRate
	}
	return t.MemoryRate
}

// DollarsPerMB projects a part's cost per megabyte to the given year.
// Improvement in MB/$ at r per year means $/MB divides by (1+r) each year.
func (t Trend) DollarsPerMB(p Params, year int) float64 {
	if p.Class == Flash && t.FlashEarlyRate > 0 {
		cost := p.DollarsPerMB
		for y := p.Year; y < year; y++ {
			if y < t.FlashRampEnd {
				cost /= 1 + t.FlashEarlyRate
			} else {
				cost /= 1 + t.MemoryRate
			}
		}
		return cost
	}
	dy := float64(year - p.Year)
	return p.DollarsPerMB / math.Pow(1+t.rate(p.Class), dy)
}

// MBPerCubicInch projects a part's volumetric density to the given year.
func (t Trend) MBPerCubicInch(p Params, year int) float64 {
	dy := float64(year - p.Year)
	return p.MBPerCubicInch * math.Pow(1+t.rate(p.Class), dy)
}

// ConfigurationCost reports the projected cost in dollars of a
// configuration of capacityMB megabytes built from part p in the given
// year. This is the quantity behind the paper's "for 40-Megabyte
// configurations, the cost per megabyte of flash memory will match that of
// magnetic disks by the year 1996" claim: small disks carry a fixed
// per-mechanism cost, so at small capacities the disk's effective $/MB is
// inflated.
func (t Trend) ConfigurationCost(p Params, capacityMB float64, year int) float64 {
	perMB := t.DollarsPerMB(p, year)
	if p.Class == Disk {
		// A drive mechanism has a price floor regardless of capacity:
		// heads, motor, controller. 1993 small drives bottomed out around
		// $50-per-mechanism trending down slowly; the floor is what makes
		// the flash crossover happen at small capacities first.
		floor := 50.0 / math.Pow(1+t.DiskRate/2, float64(year-1993))
		return floor + perMB*capacityMB
	}
	return perMB * capacityMB
}

// CostCrossoverYear reports the first year, scanning from the base year to
// horizon, in which flash's configuration cost is at or below disk's for
// the given capacity. The boolean is false if no crossover occurs by the
// horizon.
func (t Trend) CostCrossoverYear(flash, disk Params, capacityMB float64, horizon int) (int, bool) {
	base := flash.Year
	if disk.Year > base {
		base = disk.Year
	}
	for y := base; y <= horizon; y++ {
		if t.ConfigurationCost(flash, capacityMB, y) <= t.ConfigurationCost(disk, capacityMB, y) {
			return y, true
		}
	}
	return 0, false
}

// DensityCrossoverYear reports the first year in which a's MB/in³ meets or
// exceeds b's, scanning from the base year to horizon.
func (t Trend) DensityCrossoverYear(a, b Params, horizon int) (int, bool) {
	base := a.Year
	if b.Year > base {
		base = b.Year
	}
	for y := base; y <= horizon; y++ {
		if t.MBPerCubicInch(a, y) >= t.MBPerCubicInch(b, y) {
			return y, true
		}
	}
	return 0, false
}
