package workload

import (
	"math"
	"reflect"
	"runtime"
	"sync"
	"testing"
)

// The pinned sequences below are the package's determinism contract: a
// change that shifts any draw (reordering forks, adding a draw to one op
// kind) breaks replayability of every recorded experiment and must show
// up here, not in a changed E12 table.
func TestGoldenZipfSequences(t *testing.T) {
	cfg := Config{Seed: 1993, OpsPerClient: 8, Keys: 16, Popularity: Zipf, ZipfSkew: 1.2}
	want := map[int][]Op{
		0: {
			{Client: 0, Seq: 0, Kind: Read, Key: 2, Offset: 17287, Size: 4096, Arrival: 92829757},
			{Client: 0, Seq: 1, Kind: Read, Key: 1, Offset: 19377, Size: 4096, Arrival: 588581242},
			{Client: 0, Seq: 2, Kind: Read, Key: 1, Offset: 7606, Size: 4096, Arrival: 686033094},
			{Client: 0, Seq: 3, Kind: Read, Key: 0, Offset: 11859, Size: 4096, Arrival: 773044064},
			{Client: 0, Seq: 4, Kind: Read, Key: 1, Offset: 20975, Size: 4096, Arrival: 823528759},
			{Client: 0, Seq: 5, Kind: Read, Key: 0, Offset: 4556, Size: 4096, Arrival: 1336439724},
			{Client: 0, Seq: 6, Kind: Sync, Key: 1, Arrival: 1422311730},
			{Client: 0, Seq: 7, Kind: Write, Key: 11, Offset: 7033, Size: 4096, Arrival: 1438154287},
		},
		1: {
			{Client: 1, Seq: 0, Kind: Read, Key: 8, Offset: 24200, Size: 4096, Arrival: 200542715},
			{Client: 1, Seq: 1, Kind: Read, Key: 0, Offset: 10611, Size: 4096, Arrival: 364842928},
			{Client: 1, Seq: 2, Kind: Read, Key: 1, Offset: 27666, Size: 4096, Arrival: 376119938},
			{Client: 1, Seq: 3, Kind: Read, Key: 0, Offset: 9951, Size: 4096, Arrival: 462035736},
			{Client: 1, Seq: 4, Kind: Read, Key: 0, Offset: 19287, Size: 4096, Arrival: 518061930},
			{Client: 1, Seq: 5, Kind: Write, Key: 4, Offset: 12771, Size: 4096, Arrival: 674043348},
			{Client: 1, Seq: 6, Kind: Write, Key: 0, Offset: 349, Size: 4096, Arrival: 1031763341},
			{Client: 1, Seq: 7, Kind: Write, Key: 0, Offset: 17966, Size: 4096, Arrival: 1048916898},
		},
	}
	for id, w := range want {
		if got := Stream(cfg, id); !reflect.DeepEqual(got, w) {
			t.Errorf("client %d stream changed:\n got %+v\nwant %+v", id, got, w)
		}
	}
}

func TestGoldenHotColdSequence(t *testing.T) {
	cfg := Config{Seed: 7, OpsPerClient: 8, Keys: 20, Popularity: HotCold, HotFraction: 0.9, HotKeys: 0.1}
	want := []Op{
		{Client: 3, Seq: 0, Kind: Read, Key: 0, Offset: 13291, Size: 4096, Arrival: 352721303},
		{Client: 3, Seq: 1, Kind: Delete, Key: 1, Arrival: 383514470},
		{Client: 3, Seq: 2, Kind: Read, Key: 0, Offset: 11221, Size: 4096, Arrival: 531439569},
		{Client: 3, Seq: 3, Kind: Write, Key: 0, Offset: 23517, Size: 4096, Arrival: 584447048},
		{Client: 3, Seq: 4, Kind: Write, Key: 1, Offset: 13781, Size: 4096, Arrival: 604887579},
		{Client: 3, Seq: 5, Kind: Read, Key: 4, Offset: 11208, Size: 4096, Arrival: 637424451},
		{Client: 3, Seq: 6, Kind: Write, Key: 0, Offset: 11083, Size: 4096, Arrival: 664352905},
		{Client: 3, Seq: 7, Kind: Read, Key: 1, Offset: 14711, Size: 4096, Arrival: 738484275},
	}
	if got := Stream(cfg, 3); !reflect.DeepEqual(got, want) {
		t.Errorf("hot-cold stream changed:\n got %+v\nwant %+v", got, want)
	}
}

// A client's stream must be a pure function of (seed, id): generating
// the same streams concurrently, in any order, under different
// GOMAXPROCS, yields byte-for-byte the serial sequences.
func TestDeterministicAcrossGOMAXPROCS(t *testing.T) {
	cfg := Config{Seed: 42, Clients: 8, OpsPerClient: 200, Popularity: Zipf}
	serial := make([][]Op, cfg.Clients)
	for id := range serial {
		serial[id] = Stream(cfg, id)
	}
	for _, procs := range []int{1, 2, runtime.NumCPU()} {
		old := runtime.GOMAXPROCS(procs)
		var wg sync.WaitGroup
		conc := make([][]Op, cfg.Clients)
		// Start the streams in reverse to shake out any hidden shared
		// state between generators.
		for id := cfg.Clients - 1; id >= 0; id-- {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				conc[id] = Stream(cfg, id)
			}(id)
		}
		wg.Wait()
		runtime.GOMAXPROCS(old)
		for id := range conc {
			if !reflect.DeepEqual(conc[id], serial[id]) {
				t.Fatalf("GOMAXPROCS=%d: client %d stream diverged from serial generation", procs, id)
			}
		}
	}
}

func TestSeedsIndependent(t *testing.T) {
	base := Config{OpsPerClient: 50}
	a := Stream(withSeed(base, 1), 0)
	b := Stream(withSeed(base, 1), 0)
	c := Stream(withSeed(base, 2), 0)
	if !reflect.DeepEqual(a, b) {
		t.Error("same seed produced different streams")
	}
	if reflect.DeepEqual(a, c) {
		t.Error("different seeds produced identical streams")
	}
	if reflect.DeepEqual(Stream(withSeed(base, 1), 0), Stream(withSeed(base, 1), 1)) {
		t.Error("different clients produced identical streams")
	}
}

func withSeed(c Config, s int64) Config { c.Seed = s; return c }

// The generated kind frequencies must converge to the configured mix.
func TestMixRatioConvergence(t *testing.T) {
	mix := Mix{Read: 0.5, Write: 0.3, Truncate: 0.05, Delete: 0.05, Sync: 0.1}
	cfg := Config{Seed: 9, OpsPerClient: 20000, Mix: mix}
	counts := map[Kind]int{}
	ops := Stream(cfg, 0)
	for _, op := range ops {
		counts[op.Kind]++
	}
	want := map[Kind]float64{Read: 0.5, Write: 0.3, Truncate: 0.05, Delete: 0.05, Sync: 0.1}
	for k, frac := range want {
		got := float64(counts[k]) / float64(len(ops))
		if math.Abs(got-frac) > 0.02 {
			t.Errorf("%v: got %.3f of ops, want %.3f ± 0.02", k, got, frac)
		}
	}
}

// Zipf popularity must put most mass on the lowest keys; hot-cold must
// hit the hot set with roughly HotFraction of accesses.
func TestPopularitySkew(t *testing.T) {
	zc := Config{Seed: 11, OpsPerClient: 20000, Keys: 64, Popularity: Zipf, ZipfSkew: 1.5}
	var low int
	for _, op := range Stream(zc, 0) {
		if op.Key < 4 {
			low++
		}
	}
	if frac := float64(low) / 20000; frac < 0.5 {
		t.Errorf("zipf(1.5): keys 0-3 got %.3f of accesses, want > 0.5", frac)
	}

	hc := Config{Seed: 11, OpsPerClient: 20000, Keys: 100, Popularity: HotCold, HotFraction: 0.8, HotKeys: 0.1}
	var hot int
	for _, op := range Stream(hc, 0) {
		if op.Key < 10 {
			hot++
		}
	}
	if frac := float64(hot) / 20000; math.Abs(frac-0.8) > 0.03 {
		t.Errorf("hot-cold: hot set got %.3f of accesses, want 0.80 ± 0.03", frac)
	}
}

// Open-loop arrivals must be strictly increasing and average out to the
// configured rate; closed-loop ops must carry think times instead.
func TestArrivalModels(t *testing.T) {
	oc := Config{Seed: 5, OpsPerClient: 10000, RatePerClient: 20, Arrival: OpenLoop}
	ops := Stream(oc, 0)
	var last int64 = -1
	for _, op := range ops {
		if int64(op.Arrival) <= last {
			t.Fatalf("op %d: arrival %d not after %d", op.Seq, op.Arrival, last)
		}
		last = int64(op.Arrival)
		if op.Think != 0 {
			t.Fatalf("open-loop op %d has think time", op.Seq)
		}
	}
	span := ops[len(ops)-1].Arrival.Seconds()
	rate := float64(len(ops)) / span
	if math.Abs(rate-20) > 1 {
		t.Errorf("open-loop rate %.2f op/s, want 20 ± 1", rate)
	}

	cc := Config{Seed: 5, OpsPerClient: 1000, Arrival: ClosedLoop, ThinkTime: 50_000_000}
	var meanThink float64
	for _, op := range Stream(cc, 0) {
		if op.Arrival != 0 {
			t.Fatalf("closed-loop op %d has absolute arrival", op.Seq)
		}
		meanThink += float64(op.Think)
	}
	meanThink /= 1000
	if math.Abs(meanThink-50e6) > 10e6 {
		t.Errorf("closed-loop mean think %.0fns, want 50ms ± 10ms", meanThink)
	}
}

// The kind mix must not perturb key or address draws: changing only the
// mix keeps the (key, offset) trajectory identical.
func TestMixIndependentOfAddresses(t *testing.T) {
	a := Config{Seed: 3, OpsPerClient: 500, Mix: Mix{Read: 1}}
	b := Config{Seed: 3, OpsPerClient: 500, Mix: Mix{Write: 1}}
	sa, sb := Stream(a, 0), Stream(b, 0)
	for i := range sa {
		if sa[i].Key != sb[i].Key {
			t.Fatalf("op %d: key diverged (%d vs %d) when only the mix changed", i, sa[i].Key, sb[i].Key)
		}
		if sa[i].Offset != sb[i].Offset {
			t.Fatalf("op %d: offset diverged when only the mix changed", i)
		}
	}
}
