// Package workload generates the seeded, deterministic multi-client
// request streams that drive the object-storage service (internal/server)
// and the E12 saturation study.
//
// The paper's write-buffering and cleaning story (§3.3) holds only while
// the cleaner keeps up with the offered write load; to find the point
// where it stops keeping up, we need a load model, not a trace: a
// population of clients, each issuing an independent stream of reads,
// writes, truncates, deletes and syncs against its own objects, with a
// skewed key popularity (hot objects absorb overwrites in DRAM, cold
// objects force flash traffic) and either open-loop (fixed arrival rate,
// the queueing-theory stressor) or closed-loop (think time after each
// completion) arrivals.
//
// Determinism is the package's contract: a client's stream is a pure
// function of (Config.Seed, client id). Each random component — op kind,
// key popularity, offsets and sizes, arrival spacing — draws from its own
// forked stream, so streams never perturb one another, and generating
// clients concurrently (or in any order) yields exactly the sequences a
// serial generation would.
package workload

import (
	"fmt"

	"ssmobile/internal/sim"
)

// Kind is the type of one generated request.
type Kind uint8

// Request kinds.
const (
	Read Kind = iota
	Write
	Truncate
	Delete
	Sync
)

var kindNames = [...]string{"read", "write", "truncate", "delete", "sync"}

// String names the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Mix gives the probability of each request kind. The fractions are
// normalised by their sum, so {Read: 3, Write: 1} means 75% reads.
type Mix struct {
	Read, Write, Truncate, Delete, Sync float64
}

// weights returns the mix as a slice indexed by Kind.
func (m Mix) weights() [5]float64 {
	return [5]float64{m.Read, m.Write, m.Truncate, m.Delete, m.Sync}
}

// sum reports the total weight.
func (m Mix) sum() float64 {
	var s float64
	for _, w := range m.weights() {
		s += w
	}
	return s
}

// Popularity selects how keys are drawn from the key space.
type Popularity uint8

// Popularity models.
const (
	// Uniform draws every key with equal probability.
	Uniform Popularity = iota
	// Zipf draws key k with probability ∝ 1/(k+1)^s: key 0 is hottest.
	Zipf
	// HotCold draws from a small hot set with probability HotFraction and
	// uniformly from the remaining cold keys otherwise.
	HotCold
)

var popNames = [...]string{"uniform", "zipf", "hot-cold"}

// String names the popularity model.
func (p Popularity) String() string {
	if int(p) < len(popNames) {
		return popNames[p]
	}
	return fmt.Sprintf("Popularity(%d)", int(p))
}

// Arrival selects the client's issue discipline.
type Arrival uint8

// Arrival models.
const (
	// OpenLoop issues requests at exponentially spaced arrival times
	// regardless of completions — offered load is fixed, and queueing
	// delay appears as latency once the server falls behind.
	OpenLoop Arrival = iota
	// ClosedLoop issues the next request only after the previous one
	// completes plus an exponential think time — offered load self-limits
	// to the service rate.
	ClosedLoop
)

var arrNames = [...]string{"open-loop", "closed-loop"}

// String names the arrival model.
func (a Arrival) String() string {
	if int(a) < len(arrNames) {
		return arrNames[a]
	}
	return fmt.Sprintf("Arrival(%d)", int(a))
}

// Config parameterises the generated workload.
type Config struct {
	// Seed fixes every random stream; equal seeds give equal workloads.
	Seed int64
	// Clients is the number of independent client streams.
	Clients int
	// OpsPerClient bounds each stream's length.
	OpsPerClient int
	// Keys is the per-client object key space; requests address keys
	// [0, Keys).
	Keys int
	// ObjectBytes bounds each object's size: offsets are drawn in
	// [0, ObjectBytes) and truncate sizes in [0, ObjectBytes].
	ObjectBytes int64
	// MinWriteBytes and MaxWriteBytes bound write (and read) transfer
	// sizes; sizes are drawn uniformly in [min, max].
	MinWriteBytes, MaxWriteBytes int

	// Mix weights the request kinds (normalised by their sum).
	Mix Mix

	// Popularity selects the key distribution; ZipfSkew parameterises
	// Zipf (s > 1, more skewed as it grows), HotFraction/HotKeys
	// parameterise HotCold (HotFraction of accesses land on the first
	// HotKeys fraction of the key space).
	Popularity  Popularity
	ZipfSkew    float64
	HotFraction float64
	HotKeys     float64

	// Arrival selects the issue discipline. RatePerClient is the
	// open-loop arrival rate in requests per second; ThinkTime is the
	// closed-loop mean think time.
	Arrival       Arrival
	RatePerClient float64
	ThinkTime     sim.Duration
}

// withDefaults fills the zero fields with usable values.
func (c Config) withDefaults() Config {
	if c.Clients <= 0 {
		c.Clients = 1
	}
	if c.OpsPerClient <= 0 {
		c.OpsPerClient = 1000
	}
	if c.Keys <= 0 {
		c.Keys = 64
	}
	if c.ObjectBytes <= 0 {
		c.ObjectBytes = 32 << 10
	}
	if c.MaxWriteBytes <= 0 {
		c.MaxWriteBytes = 4096
	}
	if c.MinWriteBytes <= 0 {
		c.MinWriteBytes = c.MaxWriteBytes
	}
	if c.MinWriteBytes > c.MaxWriteBytes {
		c.MinWriteBytes = c.MaxWriteBytes
	}
	if c.Mix.sum() <= 0 {
		c.Mix = Mix{Read: 0.55, Write: 0.35, Truncate: 0.02, Delete: 0.03, Sync: 0.05}
	}
	if c.ZipfSkew <= 1 {
		c.ZipfSkew = 1.1
	}
	if c.HotFraction <= 0 || c.HotFraction > 1 {
		c.HotFraction = 0.9
	}
	if c.HotKeys <= 0 || c.HotKeys > 1 {
		c.HotKeys = 0.1
	}
	if c.RatePerClient <= 0 {
		c.RatePerClient = 10
	}
	if c.ThinkTime <= 0 {
		c.ThinkTime = 100 * sim.Millisecond
	}
	return c
}

// Op is one generated request.
type Op struct {
	// Client and Seq identify the op within the workload: Seq is the
	// op's index in its client's stream.
	Client, Seq int
	// Kind is the request type.
	Kind Kind
	// Key is the target object within the client's namespace.
	Key uint64
	// Offset and Size address the transfer (reads and writes); Size is
	// the new length for truncates.
	Offset int64
	Size   int
	// Arrival is the absolute issue time under open-loop arrivals; zero
	// under closed-loop, where Think applies instead.
	Arrival sim.Time
	// Think is the closed-loop think time before this op is issued,
	// measured from the previous op's completion.
	Think sim.Duration
}

// Payload fills buf with the op's deterministic write body — a pure
// function of the op's identity, so reruns and remounts can validate
// content without storing it. buf's capacity is reused when it fits
// (drivers keep one buffer per client and amortise the allocation to
// the largest op in the stream); the filled prefix is returned.
func (op Op) Payload(buf []byte) []byte {
	if cap(buf) < op.Size {
		buf = make([]byte, op.Size)
	}
	buf = buf[:op.Size]
	seed := byte(op.Key*131 + uint64(op.Client)*31 + uint64(op.Seq))
	for i := range buf {
		buf[i] = seed + byte(i)
	}
	return buf
}

// Client generates one client's request stream. Not safe for concurrent
// use; distinct Clients are fully independent and may be driven from
// different goroutines.
type Client struct {
	cfg Config
	id  int
	seq int

	kindR, keyR, addrR, arrR *sim.RNG
	zipf                     *sim.Zipf
	cum                      [5]float64
	nextArrival              sim.Time
}

// clientSeed derives the per-client seed: a fixed odd-constant mix of the
// workload seed and the client id, so every (seed, id) pair lands on an
// unrelated stream without any cross-client draw ordering.
func clientSeed(seed int64, id int) int64 {
	x := uint64(seed)*0x9E3779B97F4A7C15 + uint64(id+1)*0xBF58476D1CE4E5B9
	x ^= x >> 30
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return int64(x)
}

// NewClient returns the generator for client id under cfg. The stream
// depends only on (cfg.Seed, id).
func NewClient(cfg Config, id int) *Client {
	cfg = cfg.withDefaults()
	root := sim.NewRNG(clientSeed(cfg.Seed, id))
	c := &Client{
		cfg:   cfg,
		id:    id,
		kindR: root.Fork(),
		keyR:  root.Fork(),
		addrR: root.Fork(),
		arrR:  root.Fork(),
	}
	if cfg.Popularity == Zipf {
		c.zipf = c.keyR.Zipf(cfg.ZipfSkew, uint64(cfg.Keys))
	}
	w := cfg.Mix.weights()
	total := cfg.Mix.sum()
	acc := 0.0
	for i, v := range w {
		acc += v / total
		c.cum[i] = acc
	}
	c.cum[len(c.cum)-1] = 1 // absorb rounding
	return c
}

// Config reports the (defaulted) configuration the client runs under.
func (c *Client) Config() Config { return c.cfg }

// ID reports the client id.
func (c *Client) ID() int { return c.id }

// key draws the next target key under the popularity model.
func (c *Client) key() uint64 {
	switch c.cfg.Popularity {
	case Zipf:
		return c.zipf.Next()
	case HotCold:
		hot := int(float64(c.cfg.Keys)*c.cfg.HotKeys + 0.5)
		if hot < 1 {
			hot = 1
		}
		if hot > c.cfg.Keys {
			hot = c.cfg.Keys
		}
		if c.keyR.Bool(c.cfg.HotFraction) || hot == c.cfg.Keys {
			return uint64(c.keyR.Intn(hot))
		}
		return uint64(hot + c.keyR.Intn(c.cfg.Keys-hot))
	default:
		return uint64(c.keyR.Intn(c.cfg.Keys))
	}
}

// Next returns the stream's next op, or ok=false once OpsPerClient ops
// have been produced.
func (c *Client) Next() (op Op, ok bool) {
	if c.seq >= c.cfg.OpsPerClient {
		return Op{}, false
	}
	op = Op{Client: c.id, Seq: c.seq, Key: c.key()}
	c.seq++

	u := c.kindR.Float64()
	for k, edge := range c.cum {
		if u < edge || k == len(c.cum)-1 {
			op.Kind = Kind(k)
			break
		}
	}

	// Address draws happen for every op, whatever its kind, so the kind
	// mix never perturbs the key/offset streams.
	span := c.cfg.MaxWriteBytes - c.cfg.MinWriteBytes
	size := c.cfg.MinWriteBytes
	if span > 0 {
		size += c.addrR.Intn(span + 1)
	}
	maxOff := c.cfg.ObjectBytes - int64(size)
	if maxOff < 0 {
		maxOff = 0
	}
	off := c.addrR.Int63n(maxOff + 1)
	switch op.Kind {
	case Read, Write:
		op.Offset, op.Size = off, size
	case Truncate:
		op.Size = int(c.addrR.Int63n(c.cfg.ObjectBytes + 1))
	}

	switch c.cfg.Arrival {
	case ClosedLoop:
		op.Think = sim.Duration(c.arrR.Exp(float64(c.cfg.ThinkTime)))
	default:
		gap := sim.Duration(c.arrR.Exp(float64(sim.Second) / c.cfg.RatePerClient))
		c.nextArrival = c.nextArrival.Add(gap)
		op.Arrival = c.nextArrival
	}
	return op, true
}

// Stream materialises client id's full op sequence — a convenience for
// tests and tools; the server's driver consumes Clients incrementally.
func Stream(cfg Config, id int) []Op {
	c := NewClient(cfg, id)
	out := make([]Op, 0, c.cfg.OpsPerClient)
	for {
		op, ok := c.Next()
		if !ok {
			return out
		}
		out = append(out, op)
	}
}
