package dram

import (
	"errors"

	"ssmobile/internal/sim"
)

// ErrBatteryDead reports a drain attempted after both batteries are empty.
var ErrBatteryDead = errors.New("dram: battery pack exhausted")

// Battery is one battery with a fixed energy capacity.
type Battery struct {
	Name      string
	Capacity  sim.Energy
	remaining sim.Energy
}

// NewBattery returns a full battery.
func NewBattery(name string, capacity sim.Energy) *Battery {
	return &Battery{Name: name, Capacity: capacity, remaining: capacity}
}

// Remaining reports the energy left.
func (b *Battery) Remaining() sim.Energy { return b.remaining }

// Empty reports whether the battery is exhausted.
func (b *Battery) Empty() bool { return b.remaining <= 0 }

// drain removes up to e from the battery and reports how much it could not
// supply.
func (b *Battery) drain(e sim.Energy) (shortfall sim.Energy) {
	if e <= b.remaining {
		b.remaining -= e
		return 0
	}
	shortfall = e - b.remaining
	b.remaining = 0
	return shortfall
}

// Refill restores the battery to full capacity.
func (b *Battery) Refill() { b.remaining = b.Capacity }

// Pack models the paper's two-tier battery arrangement: a primary pack
// that "can preserve the contents of main memory in an otherwise idle
// system for many days", and a small lithium backup that covers "many
// hours" — enough to swap primary batteries. Energy is drawn from the
// primary until it is empty, then from the backup; when both are empty the
// pack is dead and any DRAM it was sustaining loses its contents.
type Pack struct {
	Primary *Battery
	Backup  *Battery
}

// WattHours converts watt-hours into sim.Energy (1 Wh = 3600 J).
func WattHours(wh float64) sim.Energy {
	return sim.Energy(wh * 3600 * float64(sim.Joule))
}

// NewPack builds a pack with the given primary and backup watt-hour
// capacities. The defaults used across the experiments — 10 Wh primary,
// 0.5 Wh lithium backup — combined with the NEC part's ~1 mW/MB
// self-refresh draw reproduce the paper's day-scale and hour-scale
// retention claims for a 16 MB machine.
func NewPack(primaryWh, backupWh float64) *Pack {
	return &Pack{
		Primary: NewBattery("primary", WattHours(primaryWh)),
		Backup:  NewBattery("lithium-backup", WattHours(backupWh)),
	}
}

// Dead reports whether both batteries are exhausted.
func (p *Pack) Dead() bool { return p.Primary.Empty() && p.Backup.Empty() }

// OnBackup reports whether the primary is exhausted and the backup is
// carrying the load.
func (p *Pack) OnBackup() bool { return p.Primary.Empty() && !p.Backup.Empty() }

// Drain draws e from the pack, primary first. It returns ErrBatteryDead if
// the pack could not supply all of it, in which case the pack is dead.
func (p *Pack) Drain(e sim.Energy) error {
	short := p.Primary.drain(e)
	if short == 0 {
		return nil
	}
	if p.Backup.drain(short) == 0 {
		return nil
	}
	return ErrBatteryDead
}

// DrainIdle draws the energy of holding a pMilliwatts load for d.
func (p *Pack) DrainIdle(pMilliwatts float64, d sim.Duration) error {
	return p.Drain(sim.EnergyFor(pMilliwatts, d))
}

// SwapPrimary replaces the primary batteries with fresh ones; the backup
// keeps memory alive during the swap, exactly the scenario the paper
// describes.
func (p *Pack) SwapPrimary() { p.Primary.Refill() }

// RetentionAt reports how long the pack can sustain a constant load of
// pMilliwatts from its current state before dying.
func (p *Pack) RetentionAt(pMilliwatts float64) sim.Duration {
	if pMilliwatts <= 0 {
		return sim.Duration(1<<63 - 1)
	}
	total := p.Primary.Remaining() + p.Backup.Remaining()
	return sim.Duration(float64(total) / pMilliwatts)
}
