package dram

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"ssmobile/internal/device"
	"ssmobile/internal/sim"
)

func newTestDevice(t *testing.T, capacity int64) (*Device, *sim.Clock, *sim.EnergyMeter) {
	t.Helper()
	clock := sim.NewClock()
	meter := sim.NewEnergyMeter()
	d, err := New(Config{CapacityBytes: capacity, Params: device.NECDram}, clock, meter)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return d, clock, meter
}

func TestConfigValidate(t *testing.T) {
	if err := (Config{CapacityBytes: 0, Params: device.NECDram}).Validate(); err == nil {
		t.Error("zero capacity accepted")
	}
	if err := (Config{CapacityBytes: 1024, Params: device.IntelFlash}).Validate(); err == nil {
		t.Error("flash params accepted for DRAM")
	}
}

func TestWriteRead(t *testing.T) {
	d, clock, meter := newTestDevice(t, 1<<20)
	msg := []byte("primary storage")
	before := clock.Now()
	if _, err := d.Write(4096, msg); err != nil {
		t.Fatal(err)
	}
	if clock.Now() == before {
		t.Fatal("write did not advance the clock")
	}
	got := make([]byte, len(msg))
	if _, err := d.Read(4096, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("read back %q", got)
	}
	if meter.Category("dram") <= 0 {
		t.Fatal("no energy charged")
	}
	s := d.Stats()
	if s.Writes != 1 || s.Reads != 1 || s.BytesWritten != int64(len(msg)) {
		t.Fatalf("stats %+v", s)
	}
}

func TestNoEraseNeeded(t *testing.T) {
	d, _, _ := newTestDevice(t, 1<<16)
	if _, err := d.Write(0, []byte{0x00}); err != nil {
		t.Fatal(err)
	}
	// Overwriting 0 with 1 bits is fine in DRAM — the flash limitation
	// must not leak into the DRAM model.
	if _, err := d.Write(0, []byte{0xFF}); err != nil {
		t.Fatal(err)
	}
	if d.Peek(0) != 0xFF {
		t.Fatal("overwrite lost")
	}
}

func TestOutOfRange(t *testing.T) {
	d, _, _ := newTestDevice(t, 1024)
	if _, err := d.Read(1020, make([]byte, 8)); !errors.Is(err, ErrOutOfRange) {
		t.Error("read past end accepted")
	}
	if _, err := d.Write(-1, []byte{1}); !errors.Is(err, ErrOutOfRange) {
		t.Error("negative write accepted")
	}
}

func TestDRAMFasterThanFlashParams(t *testing.T) {
	d, _, _ := newTestDevice(t, 1<<20)
	lat, err := d.Read(0, make([]byte, 4096))
	if err != nil {
		t.Fatal(err)
	}
	flashLat := sim.Duration(device.IntelFlash.ReadLatencyNs(4096))
	if lat >= flashLat {
		t.Errorf("DRAM 4KB read %v not faster than flash %v", lat, flashLat)
	}
}

func TestPowerFailDestroysContents(t *testing.T) {
	d, _, _ := newTestDevice(t, 1024)
	if _, err := d.Write(0, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	d.PowerFail()
	if !d.Lost() {
		t.Fatal("device not marked lost")
	}
	if _, err := d.Read(0, make([]byte, 1)); !errors.Is(err, ErrPowerLost) {
		t.Fatalf("read after power fail: %v", err)
	}
	if _, err := d.Write(0, []byte{9}); !errors.Is(err, ErrPowerLost) {
		t.Fatalf("write after power fail: %v", err)
	}
	d.Restore()
	if d.Lost() {
		t.Fatal("restore did not clear lost flag")
	}
	buf := make([]byte, 3)
	if _, err := d.Read(0, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, []byte{0, 0, 0}) {
		t.Fatal("contents survived a power failure")
	}
	if d.Stats().PowerFailures != 1 {
		t.Fatal("power failure not counted")
	}
}

func TestIdleMilliwattsScalesWithCapacity(t *testing.T) {
	small, _, _ := newTestDevice(t, 1<<20)
	big, _, _ := newTestDevice(t, 16<<20)
	if big.IdleMilliwatts() != 16*small.IdleMilliwatts() {
		t.Fatal("idle power should scale with capacity")
	}
}

func TestChargeIdle(t *testing.T) {
	d, clock, meter := newTestDevice(t, 1<<20)
	clock.Advance(sim.Hour)
	d.ChargeIdle()
	idle := meter.Category("dram-idle")
	if idle <= 0 {
		t.Fatal("no idle energy charged")
	}
	// Charging again with no elapsed time adds nothing.
	d.ChargeIdle()
	if meter.Category("dram-idle") != idle {
		t.Fatal("double idle charge")
	}
}

func TestBatteryDrain(t *testing.T) {
	b := NewBattery("b", 10*sim.Joule)
	if b.Empty() {
		t.Fatal("fresh battery empty")
	}
	if short := b.drain(4 * sim.Joule); short != 0 {
		t.Fatal("drain within capacity reported shortfall")
	}
	if b.Remaining() != 6*sim.Joule {
		t.Fatalf("remaining %v", b.Remaining())
	}
	if short := b.drain(10 * sim.Joule); short != 4*sim.Joule {
		t.Fatalf("shortfall %v, want 4 J", short)
	}
	if !b.Empty() {
		t.Fatal("battery should be empty")
	}
	b.Refill()
	if b.Remaining() != 10*sim.Joule {
		t.Fatal("refill failed")
	}
}

func TestPackDrainsPrimaryThenBackup(t *testing.T) {
	p := &Pack{
		Primary: NewBattery("p", 10*sim.Joule),
		Backup:  NewBattery("b", 5*sim.Joule),
	}
	if err := p.Drain(8 * sim.Joule); err != nil {
		t.Fatal(err)
	}
	if p.Backup.Remaining() != 5*sim.Joule {
		t.Fatal("backup drained while primary had charge")
	}
	if err := p.Drain(4 * sim.Joule); err != nil {
		t.Fatal(err)
	}
	if !p.OnBackup() {
		t.Fatal("pack should be on backup")
	}
	if p.Backup.Remaining() != 3*sim.Joule {
		t.Fatalf("backup remaining %v, want 3 J", p.Backup.Remaining())
	}
	if err := p.Drain(10 * sim.Joule); !errors.Is(err, ErrBatteryDead) {
		t.Fatalf("overdrain: %v, want ErrBatteryDead", err)
	}
	if !p.Dead() {
		t.Fatal("pack should be dead")
	}
}

func TestPackSwapPrimary(t *testing.T) {
	p := NewPack(0.001, 0.001) // tiny pack
	if err := p.Drain(p.Primary.Capacity); err != nil {
		t.Fatal(err)
	}
	if !p.OnBackup() {
		t.Fatal("should be on backup after primary drained")
	}
	p.SwapPrimary()
	if p.OnBackup() || p.Dead() {
		t.Fatal("swap did not restore primary")
	}
}

// The paper's retention claims: with the NEC part's self-refresh draw, a
// 16MB machine's primary batteries preserve memory for "many days" and the
// lithium backup for "many hours".
func TestPaperRetentionClaims(t *testing.T) {
	d, _, _ := newTestDevice(t, 16<<20)
	idle := d.IdleMilliwatts() // ~16 mW

	primary := NewPack(10, 0) // 10 Wh primary only
	days := primary.RetentionAt(idle).Seconds() / 86400
	if days < 3 {
		t.Errorf("primary retention %.1f days, paper says 'many days'", days)
	}

	backup := NewPack(0, 0.5) // 0.5 Wh lithium only
	hours := backup.RetentionAt(idle).Seconds() / 3600
	if hours < 3 {
		t.Errorf("backup retention %.1f hours, paper says 'many hours'", hours)
	}
	if hours > 24*7 {
		t.Errorf("backup retention %.1f hours is implausibly long for a lithium cell", hours)
	}
}

func TestDrainIdleMatchesEnergyFor(t *testing.T) {
	p := NewPack(1, 0)
	before := p.Primary.Remaining()
	if err := p.DrainIdle(100, sim.Hour); err != nil {
		t.Fatal(err)
	}
	want := sim.EnergyFor(100, sim.Hour)
	if got := before - p.Primary.Remaining(); got != want {
		t.Fatalf("drained %v, want %v", got, want)
	}
}

func TestRetentionAtZeroLoad(t *testing.T) {
	p := NewPack(1, 1)
	if p.RetentionAt(0) <= 0 {
		t.Fatal("zero load should give effectively infinite retention")
	}
}

// Property: writes at arbitrary offsets are read back exactly (DRAM is a
// plain byte array with latency).
func TestDRAMReadYourWritesProperty(t *testing.T) {
	const cap = 1 << 16
	f := func(writes map[uint16]byte) bool {
		d, err := New(Config{CapacityBytes: cap, Params: device.NECDram},
			sim.NewClock(), sim.NewEnergyMeter())
		if err != nil {
			return false
		}
		for off, val := range writes {
			if _, err := d.Write(int64(off), []byte{val}); err != nil {
				return false
			}
		}
		buf := make([]byte, 1)
		for off, val := range writes {
			if _, err := d.Read(int64(off), buf); err != nil {
				return false
			}
			if buf[0] != val {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
