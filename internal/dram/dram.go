// Package dram simulates the battery-backed DRAM that serves as primary
// storage in the paper's solid-state mobile computer.
//
// The model captures the properties the paper leans on:
//
//   - fast, uniform random access for both reads and writes;
//   - volatility tempered by batteries: the primary battery pack keeps an
//     otherwise idle machine's memory alive "for many days", and a small
//     lithium backup battery covers "many hours" more — long enough to
//     swap primary batteries — but when both are exhausted (or the machine
//     loses power abruptly) the contents are gone;
//   - an operating-system crash, as opposed to a power loss, does NOT
//     destroy DRAM contents; the recovery-box style metadata techniques in
//     the file system depend on that distinction.
package dram

import (
	"errors"
	"fmt"

	"ssmobile/internal/device"
	"ssmobile/internal/obs"
	"ssmobile/internal/sim"
)

// Sentinel errors.
var (
	// ErrOutOfRange reports an access beyond the end of the device.
	ErrOutOfRange = errors.New("dram: address out of range")
	// ErrPowerLost reports an access to a device whose contents were lost
	// to a power failure and not yet restored.
	ErrPowerLost = errors.New("dram: contents lost to power failure")
)

// Config fixes the size and part parameters of a simulated DRAM array.
type Config struct {
	// CapacityBytes is the array size.
	CapacityBytes int64
	// Params supplies latency and power figures; typically device.NECDram.
	Params device.Params
	// MeterCategory is the energy-meter category charged; defaults to
	// "dram".
	MeterCategory string
	// Obs receives the device's metrics and op spans; nil falls back to
	// obs.Default().
	Obs *obs.Observer
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.CapacityBytes <= 0 {
		return fmt.Errorf("dram: non-positive capacity %d", c.CapacityBytes)
	}
	if c.Params.Class != device.DRAM {
		return fmt.Errorf("dram: params %q are %v, not DRAM", c.Params.Name, c.Params.Class)
	}
	return nil
}

// Stats aggregates operation counts.
type Stats struct {
	Reads, Writes           int64
	BytesRead, BytesWritten int64
	PowerFailures           int64
}

// Device is one simulated battery-backed DRAM array.
type Device struct {
	cfg   Config
	clock *sim.Clock
	meter *sim.EnergyMeter
	obs   *obs.Observer

	data []byte
	lost bool

	reads, writes           *obs.Counter
	bytesRead, bytesWritten *obs.Counter
	powerFailures           *obs.Counter
	lastIdleCharge          sim.Time
}

// New builds a zero-filled DRAM array.
func New(cfg Config, clock *sim.Clock, meter *sim.EnergyMeter) (*Device, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.MeterCategory == "" {
		cfg.MeterCategory = "dram"
	}
	o := obs.Or(cfg.Obs)
	lbl := func(op string) obs.Labels {
		return obs.Labels{"layer": "dram", "device": cfg.MeterCategory, "op": op}
	}
	return &Device{
		cfg:           cfg,
		clock:         clock,
		meter:         meter,
		obs:           o,
		data:          make([]byte, cfg.CapacityBytes),
		reads:         o.Counter("ops_total", lbl("read")),
		writes:        o.Counter("ops_total", lbl("write")),
		bytesRead:     o.Counter("bytes_total", lbl("read")),
		bytesWritten:  o.Counter("bytes_total", lbl("write")),
		powerFailures: o.Counter("power_failures_total", obs.Labels{"layer": "dram", "device": cfg.MeterCategory}),
	}, nil
}

// Capacity reports the array size in bytes.
func (d *Device) Capacity() int64 { return d.cfg.CapacityBytes }

// Config returns the device configuration.
func (d *Device) Config() Config { return d.cfg }

// Meter returns the energy meter the device charges, so layers above can
// attribute span energy without threading the meter separately.
func (d *Device) Meter() *sim.EnergyMeter { return d.meter }

func (d *Device) checkRange(addr int64, n int) error {
	if addr < 0 || n < 0 || addr+int64(n) > d.Capacity() {
		return fmt.Errorf("%w: [%d,%d) of %d", ErrOutOfRange, addr, addr+int64(n), d.Capacity())
	}
	return nil
}

func (d *Device) activePower() float64 {
	return d.cfg.Params.ActiveMilliwattsPerMB * float64(d.Capacity()) / (1 << 20)
}

// span opens an op span against this array's clock and meter. DRAM time
// is the write buffer doing its job, so it declares the buffer
// latency-attribution stage.
func (d *Device) span(op string) obs.SpanRef {
	return d.obs.StageSpan(d.clock, d.meter, "dram", op, obs.StageBuffer)
}

// IdleMilliwatts reports the self-refresh draw of the whole array — the
// figure that, against a battery capacity, yields the paper's retention
// spans.
func (d *Device) IdleMilliwatts() float64 {
	return d.cfg.Params.IdleMilliwattsPerMB * float64(d.Capacity()) / (1 << 20)
}

// Read copies len(buf) bytes at addr into buf and returns the latency.
func (d *Device) Read(addr int64, buf []byte) (sim.Duration, error) {
	if d.lost {
		return 0, ErrPowerLost
	}
	if err := d.checkRange(addr, len(buf)); err != nil {
		return 0, err
	}
	sp := d.span("read")
	defer sp.End(int64(len(buf)), nil)
	dur := sim.Duration(d.cfg.Params.ReadLatencyNs(len(buf)))
	d.clock.Advance(dur)
	d.meter.Charge(d.cfg.MeterCategory, sim.EnergyFor(d.activePower(), dur))
	copy(buf, d.data[addr:addr+int64(len(buf))])
	d.reads.Inc()
	d.bytesRead.Add(int64(len(buf)))
	return dur, nil
}

// Write stores p at addr and returns the latency. DRAM needs no erase.
func (d *Device) Write(addr int64, p []byte) (sim.Duration, error) {
	if d.lost {
		return 0, ErrPowerLost
	}
	if err := d.checkRange(addr, len(p)); err != nil {
		return 0, err
	}
	sp := d.span("write")
	defer sp.End(int64(len(p)), nil)
	dur := sim.Duration(d.cfg.Params.WriteLatencyNs(len(p)))
	d.clock.Advance(dur)
	d.meter.Charge(d.cfg.MeterCategory, sim.EnergyFor(d.activePower(), dur))
	copy(d.data[addr:], p)
	d.writes.Inc()
	d.bytesWritten.Add(int64(len(p)))
	return dur, nil
}

// Peek returns the byte at addr without charging latency.
func (d *Device) Peek(addr int64) byte { return d.data[addr] }

// Lost reports whether the contents are currently lost to a power failure.
func (d *Device) Lost() bool { return d.lost }

// PowerFail models an abrupt, unprotected power loss: all contents are
// destroyed. An OS crash is NOT a power failure — battery-backed DRAM
// survives OS crashes, which is the premise of keeping file data in memory.
func (d *Device) PowerFail() {
	for i := range d.data {
		d.data[i] = 0
	}
	d.lost = true
	d.powerFailures.Inc()
}

// Restore returns the (now empty) device to service after a power failure,
// as when fresh batteries are installed and the system reboots.
func (d *Device) Restore() { d.lost = false }

// ChargeIdle charges self-refresh power since the last idle charge.
func (d *Device) ChargeIdle() {
	now := d.clock.Now()
	if now <= d.lastIdleCharge {
		return
	}
	d.meter.Charge(d.cfg.MeterCategory+"-idle", sim.EnergyFor(d.IdleMilliwatts(), now.Sub(d.lastIdleCharge)))
	d.lastIdleCharge = now
}

// Stats summarises the device counters.
func (d *Device) Stats() Stats {
	return Stats{
		Reads:         d.reads.Value(),
		Writes:        d.writes.Value(),
		BytesRead:     d.bytesRead.Value(),
		BytesWritten:  d.bytesWritten.Value(),
		PowerFailures: d.powerFailures.Value(),
	}
}
