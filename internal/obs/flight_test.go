package obs

import (
	"os"
	"path/filepath"
	"testing"

	"ssmobile/internal/sim"
)

func TestFlightRecorderRoundTrip(t *testing.T) {
	o := New(64)
	clock := sim.NewClock()
	o.Counter("requests_total", nil).Add(2)
	driveRequest(o, clock)

	dir := t.TempDir()
	fr, err := NewFlightRecorder(o, dir, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	o.SetFlightRecorder(fr)
	if o.FlightRecorder() != fr {
		t.Fatal("SetFlightRecorder/FlightRecorder round trip failed")
	}

	path, err := fr.Dump("shed-engage")
	if err != nil {
		t.Fatal(err)
	}
	if want := filepath.Join(dir, "flight-0001-shed-engage.json"); path != want {
		t.Fatalf("dump path = %q, want %q", path, want)
	}

	rec, err := ReadFlightRecord(path)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Reason != "shed-engage" || rec.Seq != 1 {
		t.Fatalf("record header = %q/%d, want shed-engage/1", rec.Reason, rec.Seq)
	}
	if len(rec.Spans) != 6 {
		t.Fatalf("record holds %d spans, want 6", len(rec.Spans))
	}
	if len(rec.Metrics.Metrics) == 0 {
		t.Fatal("record carries no metrics snapshot")
	}

	// The dump must load through the same path ssmtrace attribute uses,
	// and attribute identically to the live trace.
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	spans, dropped, err := LoadSpans(f)
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 0 || len(spans) != 6 {
		t.Fatalf("LoadSpans(flight record) = %d spans, %d dropped; want 6, 0", len(spans), dropped)
	}
	reqs, st := Attribute(spans)
	if st.Requests != 1 || reqs[0].InducedCleans != 1 {
		t.Fatalf("attribution from flight record = %+v (%d reqs)", st, len(reqs))
	}
}

func TestFlightRecorderBoundsSpansAndFiles(t *testing.T) {
	o := New(64)
	clock := sim.NewClock()
	for i := 0; i < 4; i++ {
		driveRequest(o, clock) // 6 spans each
	}

	dir := t.TempDir()
	fr, err := NewFlightRecorder(o, dir, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	var paths []string
	for i := 0; i < 3; i++ {
		p, err := fr.Dump("drain")
		if err != nil {
			t.Fatal(err)
		}
		paths = append(paths, p)
	}

	rec, err := ReadFlightRecord(paths[2])
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Spans) != 10 {
		t.Fatalf("span window = %d, want 10 (maxSpans)", len(rec.Spans))
	}
	if rec.Dropped != 14 { // 24 recorded − 10 retained
		t.Fatalf("dropped = %d, want 14", rec.Dropped)
	}

	if _, err := os.Stat(paths[0]); !os.IsNotExist(err) {
		t.Fatalf("oldest dump %s should have been pruned (err=%v)", paths[0], err)
	}
	for _, p := range paths[1:] {
		if _, err := os.Stat(p); err != nil {
			t.Fatalf("retained dump %s: %v", p, err)
		}
	}
}

func TestFlightRecorderNilSafety(t *testing.T) {
	var fr *FlightRecorder
	if path, err := fr.Dump("x"); err != nil || path != "" {
		t.Fatalf("nil recorder Dump = %q, %v", path, err)
	}
	var o *Observer
	o.SetFlightRecorder(nil) // must not panic
	if o.FlightRecorder() != nil {
		t.Fatal("nil observer reports a recorder")
	}
	if _, err := NewFlightRecorder(nil, t.TempDir(), 0, 0); err == nil {
		t.Fatal("NewFlightRecorder(nil, ...) must fail")
	}
}
