// The cluster event journal: a bounded, virtual-time-stamped stream of
// structured control-plane events — cordons, migrations, heals, replica
// sheds, tombstone lifecycle, node kills and restarts. Request telemetry
// (spans, histograms) answers "where did the time go"; the journal
// answers "what did the fleet DO and why", in the order it happened, on
// the same virtual clock the spans use — so an operator can line a
// cordon event up against the latency spike it caused.
//
// The journal is deliberately tiny and append-only: events are rare
// (control-plane rate, not request rate), so a small ring with a mutex
// costs nothing on the serve hot path, which never touches it.
package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"ssmobile/internal/sim"
)

// Cluster event types. The constants are the wire strings — they appear
// verbatim in /debug/events JSONL, flight records, and ssmtrace output.
const (
	EventCordon           = "cordon"
	EventUncordon         = "uncordon"
	EventMigrate          = "migrate"
	EventHeal             = "heal"
	EventReplicaShed      = "replica-shed"
	EventTombstoneCreate  = "tombstone-create"
	EventTombstoneResolve = "tombstone-resolve"
	EventKill             = "kill"
	EventRestart          = "restart"
)

// Event is one control-plane occurrence: what happened, to which node,
// why, and how many keys it touched. Time is virtual, on the same clock
// as the span stream.
type Event struct {
	Time sim.Time `json:"time_ns"`
	Type string   `json:"type"`
	// Node names the node the event concerns (the cordoned node, the
	// killed node, the shed-target holder).
	Node string `json:"node,omitempty"`
	// Cause is the short reason string ("wear", "operator", "margin
	// 0.031 < 0.050"); empty when the type says it all.
	Cause string `json:"cause,omitempty"`
	// Keys counts the directory keys the event affected (keys migrated
	// off a cordoned node, keys re-replicated by a heal); 0 when the
	// event is not about keys.
	Keys int `json:"keys,omitempty"`
}

// DefaultEventCapacity bounds the journal when the caller does not
// choose. Control-plane events are rare; 4k covers days of simulated
// churn while keeping the footprint trivial.
const DefaultEventCapacity = 1 << 12

// EventLog is a bounded append-only ring of events. When full the oldest
// events are overwritten; Dropped reports how many were lost. Safe for
// concurrent use.
type EventLog struct {
	mu       sync.Mutex
	ring     []Event
	capacity int
	length   int
	next     int
	total    int64
}

// NewEventLog returns a journal retaining up to capacity events (<=0
// selects DefaultEventCapacity).
func NewEventLog(capacity int) *EventLog {
	if capacity <= 0 {
		capacity = DefaultEventCapacity
	}
	return &EventLog{capacity: capacity}
}

// Append records one event. Nil-safe, so subsystems can log
// unconditionally and pay nothing when no journal is attached.
func (l *EventLog) Append(ev Event) {
	if l == nil {
		return
	}
	l.mu.Lock()
	if l.ring == nil {
		// Lazily size the ring small and grow to capacity on demand, so
		// short-lived logs cost only what they record.
		l.ring = make([]Event, 0, min(64, l.capacity))
	}
	if l.length < l.capacity {
		l.ring = append(l.ring, ev)
		l.length++
	} else {
		l.ring[l.next] = ev
		l.next = (l.next + 1) % l.capacity
	}
	l.total++
	l.mu.Unlock()
}

// Events returns the retained events, oldest first.
func (l *EventLog) Events() []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, 0, l.length)
	out = append(out, l.ring[l.next:l.length]...)
	return append(out, l.ring[:l.next]...)
}

// Total reports how many events were ever appended.
func (l *EventLog) Total() int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total
}

// Dropped reports how many events the ring has overwritten.
func (l *EventLog) Dropped() int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.total - int64(l.length)
}

// Merge re-appends src's retained events into l (oldest first) and
// carries src's drop count over, mirroring Tracer.Merge: the parallel
// engine merges per-job journals in job order, so the merged stream is
// schedule-independent. src must not be appending concurrently.
func (l *EventLog) Merge(src *EventLog) {
	if l == nil || src == nil {
		return
	}
	events := src.Events()
	dropped := src.Dropped()
	for _, ev := range events {
		l.Append(ev)
	}
	if dropped > 0 {
		l.mu.Lock()
		l.total += dropped
		l.mu.Unlock()
	}
}

// WriteJSONL writes the journal as JSON lines: a header object
// {"events":N,"dropped":M} followed by one event per line — the format
// /debug/events serves and ssmtrace events replays.
func (l *EventLog) WriteJSONL(w io.Writer) error {
	events := l.Events()
	dropped := l.Dropped()
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "{\"events\":%d,\"dropped\":%d}\n", len(events), dropped)
	enc := json.NewEncoder(bw)
	for _, ev := range events {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// LoadEvents reads a recorded event stream from either supported format:
// an events JSONL stream (header line {"events":N,"dropped":M}, one
// event object per line) or a flight-record JSON document (whose
// "events" field is an array). It returns the events oldest-first and
// the recorded drop count — the mirror of LoadSpans for the journal.
func LoadEvents(r io.Reader) ([]Event, int64, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, 0, err
	}
	// A flight record is one JSON object whose "events" is an array; the
	// JSONL header carries "events" as a number.
	var probe struct {
		Events json.RawMessage `json:"events"`
	}
	if err := json.Unmarshal(data, &probe); err == nil && len(probe.Events) > 0 && probe.Events[0] == '[' {
		var fr FlightRecord
		if err := json.Unmarshal(data, &fr); err != nil {
			return nil, 0, fmt.Errorf("obs: flight record: %w", err)
		}
		return fr.Events, fr.EventsDropped, nil
	}
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	var events []Event
	var dropped int64
	line := 0
	for sc.Scan() {
		line++
		text := bytes.TrimSpace(sc.Bytes())
		if len(text) == 0 {
			continue
		}
		if line == 1 {
			var hdr struct {
				Events  int64 `json:"events"`
				Dropped int64 `json:"dropped"`
			}
			if err := json.Unmarshal(text, &hdr); err == nil {
				dropped = hdr.Dropped
				continue
			}
			// No header: fall through and treat the line as an event.
		}
		var ev Event
		if err := json.Unmarshal(text, &ev); err != nil {
			return nil, 0, fmt.Errorf("obs: event line %d: %w", line, err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		return nil, 0, err
	}
	return events, dropped, nil
}

// FprintEvents renders an event stream as an aligned timeline table —
// the view `ssmtrace events` shows when replaying a /debug/events dump
// or a flight record offline.
func FprintEvents(w io.Writer, events []Event, dropped int64) {
	fmt.Fprintf(w, "%-18s %-18s %-6s %6s  %s\n", "TIME", "EVENT", "NODE", "KEYS", "CAUSE")
	for _, ev := range events {
		keys := ""
		if ev.Keys != 0 {
			keys = fmt.Sprintf("%d", ev.Keys)
		}
		fmt.Fprintf(w, "%-18s %-18s %-6s %6s  %s\n",
			ev.Time.String(), ev.Type, ev.Node, keys, ev.Cause)
	}
	if dropped > 0 {
		fmt.Fprintf(w, "(%d earlier events dropped)\n", dropped)
	}
}

// SetEventLog attaches a journal to the observer (nil detaches), the
// same pattern as SetFlightRecorder: subsystems holding only the
// observer log events without extra plumbing, and pay a nil check when
// no journal is attached.
func (o *Observer) SetEventLog(l *EventLog) {
	if o == nil {
		return
	}
	o.events.Store(l)
}

// EventLog reports the attached journal, or nil.
func (o *Observer) EventLog() *EventLog {
	if o == nil {
		return nil
	}
	return o.events.Load()
}
