package obs

import (
	"fmt"
	"os"
)

// DumpFiles writes the observer's metrics snapshot and retained trace to
// the given paths; empty paths are skipped. This is the common CLI exit
// path behind -metrics / -trace-out / -trace-jsonl.
func DumpFiles(o *Observer, metricsPath, chromePath, jsonlPath string) error {
	if o == nil {
		return nil
	}
	if metricsPath != "" && o.Registry != nil {
		f, err := os.Create(metricsPath)
		if err != nil {
			return err
		}
		if err := o.Registry.Snapshot().WriteJSON(f); err != nil {
			f.Close()
			return fmt.Errorf("obs: writing metrics to %s: %w", metricsPath, err)
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if o.Tracer == nil {
		return nil
	}
	write := func(path string, mk func(f *os.File) TraceSink) error {
		if path == "" {
			return nil
		}
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := o.Tracer.Flush(mk(f)); err != nil {
			f.Close()
			return fmt.Errorf("obs: writing trace to %s: %w", path, err)
		}
		return f.Close()
	}
	if err := write(chromePath, func(f *os.File) TraceSink { return NewChromeTraceSink(f) }); err != nil {
		return err
	}
	return write(jsonlPath, func(f *os.File) TraceSink { return NewJSONLSink(f) })
}
