//go:build race

package obs

// raceEnabled reports whether the race detector is active; allocation
// counts are not meaningful under its instrumentation.
const raceEnabled = true
