package obs

import (
	"encoding/json"
	"strings"
	"testing"

	"ssmobile/internal/sim"
)

func ev(t int64, typ, node string, keys int) Event {
	return Event{Time: sim.Time(t), Type: typ, Node: node, Keys: keys}
}

func TestEventLogRingBoundsAndDropCounting(t *testing.T) {
	l := NewEventLog(4)
	for i := int64(0); i < 10; i++ {
		l.Append(ev(i, EventHeal, "n0", 1))
	}
	if got := l.Total(); got != 10 {
		t.Errorf("Total = %d, want 10", got)
	}
	if got := l.Dropped(); got != 6 {
		t.Errorf("Dropped = %d, want 6", got)
	}
	events := l.Events()
	if len(events) != 4 {
		t.Fatalf("retained %d events, want 4", len(events))
	}
	// Oldest-first: the ring kept the newest four (times 6..9).
	for i, e := range events {
		if want := sim.Time(6 + i); e.Time != want {
			t.Errorf("event %d time = %d, want %d", i, e.Time, want)
		}
	}
}

func TestEventLogNilSafety(t *testing.T) {
	var l *EventLog
	l.Append(ev(1, EventCordon, "n0", 0)) // must not panic
	if l.Events() != nil || l.Total() != 0 || l.Dropped() != 0 {
		t.Error("nil log reported non-zero state")
	}
	var o *Observer
	o.SetEventLog(NewEventLog(1))
	if o.EventLog() != nil {
		t.Error("nil observer returned a journal")
	}
}

func TestEventLogMergeCarriesEventsAndDrops(t *testing.T) {
	dst := NewEventLog(16)
	dst.Append(ev(1, EventCordon, "n0", 0))
	src := NewEventLog(2)
	for i := int64(2); i < 7; i++ { // 5 appends into capacity 2 → 3 dropped
		src.Append(ev(i, EventMigrate, "n1", 3))
	}
	dst.Merge(src)
	if got := dst.Total(); got != 6 {
		t.Errorf("merged Total = %d, want 6 (1 own + 2 retained + 3 dropped)", got)
	}
	if got := dst.Dropped(); got != 3 {
		t.Errorf("merged Dropped = %d, want 3", got)
	}
	events := dst.Events()
	if len(events) != 3 {
		t.Fatalf("merged retained %d events, want 3", len(events))
	}
	if events[0].Type != EventCordon || events[1].Time != 5 || events[2].Time != 6 {
		t.Errorf("merged order wrong: %+v", events)
	}
}

func TestObserverMergePropagatesJournal(t *testing.T) {
	// Adoption: a parent with no journal takes the child's.
	parent, child := New(0), New(0)
	cl := NewEventLog(8)
	child.SetEventLog(cl)
	cl.Append(ev(1, EventKill, "n2", 0))
	parent.Merge(child)
	if got := parent.EventLog(); got == nil || got.Total() != 1 {
		t.Fatal("parent did not adopt the child's journal")
	}

	// Distinct journals: events append across.
	p2 := New(0)
	p2.SetEventLog(NewEventLog(8))
	p2.MergeLabeled(child, Labels{"node": "n2"})
	if got := p2.EventLog().Total(); got != 1 {
		t.Errorf("labeled merge carried %d events, want 1", got)
	}

	// Shared journal (the ssmserve layout): merging must not duplicate.
	shared := New(0)
	shared.SetEventLog(cl)
	shared.Merge(child)
	if got := cl.Total(); got != 1 {
		t.Errorf("shared-journal merge duplicated events: Total = %d, want 1", got)
	}
}

func TestEventsJSONLRoundTrip(t *testing.T) {
	l := NewEventLog(2)
	l.Append(ev(1, EventCordon, "n0", 0))
	l.Append(Event{Time: 2, Type: EventMigrate, Node: "n0", Cause: "margin", Keys: 7})
	l.Append(ev(3, EventUncordon, "n0", 0)) // evicts the first
	var buf strings.Builder
	if err := l.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	events, dropped, err := LoadEvents(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if dropped != 1 {
		t.Errorf("dropped = %d, want 1", dropped)
	}
	if len(events) != 2 || events[0].Type != EventMigrate || events[0].Keys != 7 ||
		events[0].Cause != "margin" || events[1].Type != EventUncordon {
		t.Errorf("round-trip mismatch: %+v", events)
	}
}

func TestLoadEventsFromFlightRecord(t *testing.T) {
	rec := FlightRecord{
		Reason:        "cordon",
		Events:        []Event{ev(5, EventCordon, "n1", 0), ev(6, EventMigrate, "n1", 4)},
		EventsDropped: 2,
	}
	data, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	events, dropped, err := LoadEvents(strings.NewReader(string(data)))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 || events[1].Keys != 4 || dropped != 2 {
		t.Errorf("flight-record load mismatch: %+v dropped=%d", events, dropped)
	}
}

func TestFprintEvents(t *testing.T) {
	var buf strings.Builder
	FprintEvents(&buf, []Event{
		ev(int64(sim.Second), EventCordon, "n0", 0),
		{Time: sim.Time(2 * sim.Second), Type: EventMigrate, Node: "n0", Cause: "margin", Keys: 9},
	}, 3)
	out := buf.String()
	for _, want := range []string{"TIME", "EVENT", "NODE", "KEYS", "CAUSE",
		"cordon", "migrate", "margin", "9", "(3 earlier events dropped)"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}
