package obs

import "testing"

// The hot-path contract for pre-resolved metric handles: resolving a
// Counter or Histogram once at construction makes every subsequent
// Add/Observe allocation-free. Label-map formatting (metricKey,
// Labels.clone) happens only at resolve time — a handle held by a hot
// call site never formats labels per op.

func TestCounterAddAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not exact under the race detector")
	}
	o := New(16)
	c := o.Counter("ops_total", Labels{"layer": "flash", "op": "program"})
	if a := testing.AllocsPerRun(1000, func() {
		c.Add(3)
		c.Inc()
	}); a != 0 {
		t.Fatalf("Counter.Add/Inc on a pre-resolved handle allocated %.1f per run", a)
	}
}

func TestHistogramObserveAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not exact under the race detector")
	}
	o := New(16)
	h := o.Histogram("latency_ns", Labels{"layer": "flash"})
	// First contact with a bucket inserts a map entry; steady state means
	// the workload's buckets exist. Warm the ones the loop hits.
	for _, v := range []float64{0, 1, 1234, 5e6, 9e9} {
		h.Observe(v)
	}
	if a := testing.AllocsPerRun(1000, func() {
		h.Observe(1234)
		h.Observe(5e6)
		h.ObserveDuration(9_000_000_000)
	}); a != 0 {
		t.Fatalf("Histogram.Observe on a pre-resolved handle allocated %.1f per run", a)
	}
}

func TestGaugeSetAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not exact under the race detector")
	}
	o := New(16)
	g := o.Gauge("queue_depth", Labels{"layer": "server"})
	if a := testing.AllocsPerRun(1000, func() {
		g.Set(7)
		g.Add(-2)
	}); a != 0 {
		t.Fatalf("Gauge.Set/Add on a pre-resolved handle allocated %.1f per run", a)
	}
}
