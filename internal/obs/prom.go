// Prometheus text exposition (version 0.0.4) rendered from a Registry,
// for the ssmserve admin surface's /metrics endpoint. Counters render
// as counters, gauges as gauges, and histograms as summaries (the
// registry keeps exact samples per sim.Histogram, so quantiles are
// real, not bucketed estimates).
package obs

import (
	"bufio"
	"fmt"
	"io"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// summaryQuantiles are the quantile series a histogram exposes.
var summaryQuantiles = []float64{0.5, 0.95, 0.99}

// WritePrometheus renders every registered collector in the Prometheus
// text exposition format, grouped by metric name with one # TYPE line
// per group, in registration order of each name's first collector.
func WritePrometheus(w io.Writer, r *Registry) error {
	bw := bufio.NewWriter(w)
	if r == nil {
		return bw.Flush()
	}
	cs := r.Collectors()
	groups := make(map[string][]Collector, len(cs))
	var names []string
	for _, c := range cs {
		if _, ok := groups[c.Name()]; !ok {
			names = append(names, c.Name())
		}
		groups[c.Name()] = append(groups[c.Name()], c)
	}
	for _, name := range names {
		group := groups[name]
		kind := group[0].Kind()
		fmt.Fprintf(bw, "# TYPE %s %s\n", name, promType(kind))
		for _, c := range group {
			if c.Kind() != kind {
				// A name registered under two kinds cannot share a TYPE
				// block; skip rather than emit malformed exposition. The
				// registry's own collectors never do this (lookup panics on
				// per-key kind conflicts), so this guards only exotic mixes.
				continue
			}
			m := c.Collect()
			switch kind {
			case KindCounter, KindGauge:
				fmt.Fprintf(bw, "%s%s %s\n", name, promLabels(m.Labels, "", 0), promValue(m.Value))
			case KindHistogram:
				h, ok := c.(*Histogram)
				if !ok {
					continue
				}
				h.mu.Lock()
				for _, q := range summaryQuantiles {
					fmt.Fprintf(bw, "%s%s %s\n", name, promLabels(m.Labels, "quantile", q), promValue(h.h.Quantile(q)))
				}
				h.mu.Unlock()
				fmt.Fprintf(bw, "%s_sum%s %s\n", name, promLabels(m.Labels, "", 0), promValue(m.Sum))
				fmt.Fprintf(bw, "%s_count%s %d\n", name, promLabels(m.Labels, "", 0), m.Count)
			}
		}
	}
	return bw.Flush()
}

// WriteSnapshotPrometheus renders a point-in-time Snapshot in the
// Prometheus text exposition format. It exists for views that are
// assembled rather than registered — the cluster's merged fleet snapshot,
// where per-node series are stamped with a node label at merge time and
// no single live registry holds them. Histograms render as summaries
// from the snapshot's recorded quantiles (p50/p99 — a snapshot carries
// summaries, not samples), so the quantile set is narrower than the
// live-registry writer's.
func WriteSnapshotPrometheus(w io.Writer, s Snapshot) error {
	bw := bufio.NewWriter(w)
	// Group by name in first-appearance order: the snapshot is sorted by
	// key, but key order can interleave names ("foobar" sorts between
	// "foo" and "foo{a=b}"), and the exposition format wants one
	// contiguous TYPE block per name.
	groups := make(map[string][]Metric, len(s.Metrics))
	var names []string
	for _, m := range s.Metrics {
		if _, ok := groups[m.Name]; !ok {
			names = append(names, m.Name)
		}
		groups[m.Name] = append(groups[m.Name], m)
	}
	for _, name := range names {
		group := groups[name]
		kind := group[0].Kind
		fmt.Fprintf(bw, "# TYPE %s %s\n", name, promType(kind))
		for _, m := range group {
			if m.Kind != kind {
				continue
			}
			switch kind {
			case KindCounter, KindGauge:
				fmt.Fprintf(bw, "%s%s %s\n", name, promLabels(m.Labels, "", 0), promValue(m.Value))
			case KindHistogram:
				fmt.Fprintf(bw, "%s%s %s\n", name, promLabels(m.Labels, "quantile", 0.5), promValue(m.P50))
				fmt.Fprintf(bw, "%s%s %s\n", name, promLabels(m.Labels, "quantile", 0.99), promValue(m.P99))
				fmt.Fprintf(bw, "%s_sum%s %s\n", name, promLabels(m.Labels, "", 0), promValue(m.Sum))
				fmt.Fprintf(bw, "%s_count%s %d\n", name, promLabels(m.Labels, "", 0), m.Count)
			}
		}
	}
	return bw.Flush()
}

func promType(k Kind) string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "summary"
	}
	return "untyped"
}

// promLabels renders a sorted label block, optionally with an extra
// quantile label, or the empty string for no labels.
func promLabels(l Labels, extra string, q float64) string {
	if len(l) == 0 && extra == "" {
		return ""
	}
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, escapeLabel(l[k]))
	}
	if extra != "" {
		if len(keys) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=\"%s\"", extra, strconv.FormatFloat(q, 'g', -1, 64))
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel applies the exposition format's label-value escaping.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

func promValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Exposition-format line shapes, per the text format spec: a metric line
// is name, optional label block, and a float value (we never emit
// timestamps); NaN/±Inf are legal values.
var (
	promMetricLine = regexp.MustCompile(
		`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*"(,[a-zA-Z_][a-zA-Z0-9_]*="(\\.|[^"\\])*")*\})? (NaN|[+-]?Inf|[+-]?[0-9].*)$`)
	promCommentLine = regexp.MustCompile(`^# (TYPE|HELP) [a-zA-Z_:][a-zA-Z0-9_:]*( .*)?$`)
)

// CheckExposition validates Prometheus text exposition: every line must
// be a well-formed comment or metric line, and every required series
// name must appear with at least one sample. The smoke path runs this
// against a live /metrics scrape so CI fails on malformed output or a
// missing series, not just on a dead endpoint.
func CheckExposition(data []byte, required []string) error {
	seen := make(map[string]bool)
	for i, line := range strings.Split(string(data), "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if !promCommentLine.MatchString(line) {
				return fmt.Errorf("obs: exposition line %d: malformed comment %q", i+1, line)
			}
			continue
		}
		if !promMetricLine.MatchString(line) {
			return fmt.Errorf("obs: exposition line %d: malformed metric line %q", i+1, line)
		}
		name := line
		if j := strings.IndexAny(name, "{ "); j >= 0 {
			name = name[:j]
		}
		value := line[strings.LastIndexByte(line, ' ')+1:]
		if _, err := strconv.ParseFloat(value, 64); err != nil {
			return fmt.Errorf("obs: exposition line %d: bad value %q", i+1, value)
		}
		seen[name] = true
		// A summary's name_sum/name_count also witness the base series.
		seen[strings.TrimSuffix(strings.TrimSuffix(name, "_sum"), "_count")] = true
	}
	for _, name := range required {
		if !seen[name] {
			return fmt.Errorf("obs: exposition missing required series %q", name)
		}
	}
	return nil
}
