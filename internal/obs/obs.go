// Package obs is the unified telemetry layer shared by every device model
// and operating-system layer in this repository.
//
// It has three pieces:
//
//   - a metrics Registry of named, labelled collectors — counters, gauges,
//     and histograms (the existing sim.Histogram behind the common
//     Collector interface) — with point-in-time Snapshot and Diff support
//     so experiments can report deltas instead of absolute totals;
//   - a virtual-time span Tracer (trace.go): every instrumented operation
//     records a structured span (start/end in sim.Time, layer, op, bytes,
//     energy, outcome) into a bounded ring buffer with pluggable sinks —
//     JSONL and Chrome trace_event format, so a run opens directly in
//     chrome://tracing or Perfetto;
//   - an Observer, the handle the storage layers hold. All Observer
//     methods are nil-safe, so an uninstrumented run costs almost nothing
//     and layers never need to guard their probes.
//
// Per-instance versus aggregate counting. Simulated layers are built many
// times per process (every experiment assembles fresh systems), and their
// Stats() accessors must report that one instance's activity only. The
// Observer therefore hands each layer a private child counter chained to
// the registry's shared aggregate: the child carries the instance-exact
// value the layer's Stats() view reads, while the registered parent
// accumulates across every instance built under the same observer — which
// is what a whole-run metrics dump wants.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"ssmobile/internal/sim"
)

// Labels attach dimensions to a metric, e.g.
// {"layer": "ftl", "op": "erase"}.
type Labels map[string]string

// clone copies the label set so callers cannot mutate registered state.
func (l Labels) clone() Labels {
	if len(l) == 0 {
		return nil
	}
	out := make(Labels, len(l))
	for k, v := range l {
		out[k] = v
	}
	return out
}

// key renders the canonical identity string "name{k=v,k=v}" with sorted
// keys, used for registry lookup and snapshot matching.
func metricKey(name string, l Labels) string {
	if len(l) == 0 {
		return name
	}
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(l[k])
	}
	b.WriteByte('}')
	return b.String()
}

// Kind distinguishes collector types.
type Kind string

// Collector kinds.
const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindHistogram Kind = "histogram"
)

// Collector is the common interface of every registered metric.
type Collector interface {
	// Name reports the metric name.
	Name() string
	// Labels reports the metric's label set (a copy).
	Labels() Labels
	// Kind reports the collector type.
	Kind() Kind
	// Collect captures the current value as a point-in-time Metric.
	Collect() Metric
}

// Counter is a monotonically increasing count. The zero value is unusable;
// use NewCounter, Registry.Counter or Observer.Counter. All methods are
// safe for concurrent use and nil-safe.
type Counter struct {
	name   string
	labels Labels
	v      atomic.Int64
	parent *Counter // registry aggregate this instance feeds, if any
}

// NewCounter returns a standalone (unregistered) counter.
func NewCounter(name string, labels Labels) *Counter {
	return &Counter{name: name, labels: labels.clone()}
}

// Add increases the counter by d.
func (c *Counter) Add(d int64) {
	if c == nil {
		return
	}
	c.v.Add(d)
	if c.parent != nil {
		c.parent.v.Add(d)
	}
}

// Inc increases the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value reports the current count (this instance's, not the aggregate).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Name implements Collector.
func (c *Counter) Name() string { return c.name }

// Labels implements Collector.
func (c *Counter) Labels() Labels { return c.labels.clone() }

// Kind implements Collector.
func (c *Counter) Kind() Kind { return KindCounter }

// Collect implements Collector.
func (c *Counter) Collect() Metric {
	return Metric{Name: c.name, Labels: c.labels.clone(), Kind: KindCounter, Value: float64(c.Value())}
}

// Gauge is a value that can go up and down (frames in use, free blocks).
// Optionally it reads through a function, for values derived from live
// simulation state. Safe for concurrent use and nil-safe.
type Gauge struct {
	name   string
	labels Labels
	v      atomic.Int64
	mu     sync.Mutex
	fn     func() float64
}

// NewGauge returns a standalone gauge.
func NewGauge(name string, labels Labels) *Gauge {
	return &Gauge{name: name, labels: labels.clone()}
}

// Set stores the gauge value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add offsets the gauge value.
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.v.Add(d)
}

// Value reports the gauge value (ignoring any read-through function).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// setFunc installs (or replaces) a read-through function; Collect then
// reports fn() instead of the stored value. Re-registering a GaugeFunc for
// a new layer instance replaces the function, so the registry always reads
// the most recently built instance.
func (g *Gauge) setFunc(fn func() float64) {
	g.mu.Lock()
	g.fn = fn
	g.mu.Unlock()
}

// Name implements Collector.
func (g *Gauge) Name() string { return g.name }

// Labels implements Collector.
func (g *Gauge) Labels() Labels { return g.labels.clone() }

// Kind implements Collector.
func (g *Gauge) Kind() Kind { return KindGauge }

// Collect implements Collector.
func (g *Gauge) Collect() Metric {
	g.mu.Lock()
	fn := g.fn
	g.mu.Unlock()
	v := float64(g.Value())
	if fn != nil {
		v = fn()
	}
	return Metric{Name: g.name, Labels: g.labels.clone(), Kind: KindGauge, Value: v}
}

// Histogram puts the existing sim.Histogram behind the Collector
// interface, adding a mutex (sim.Histogram itself is single-threaded) and
// optional chaining to a registry aggregate. Nil-safe.
type Histogram struct {
	name   string
	labels Labels
	mu     sync.Mutex
	h      *sim.Histogram
	parent *Histogram
}

// NewHistogram returns a standalone histogram.
func NewHistogram(name string, labels Labels) *Histogram {
	return &Histogram{name: name, labels: labels.clone(), h: sim.NewHistogram(name)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.h.Observe(v)
	h.mu.Unlock()
	if h.parent != nil {
		h.parent.Observe(v)
	}
}

// ObserveDuration records a latency sample in nanoseconds.
func (h *Histogram) ObserveDuration(d sim.Duration) { h.Observe(float64(d)) }

// Sim exposes the underlying sim.Histogram for read access after a
// single-threaded run (the experiments' latency tables read it directly).
func (h *Histogram) Sim() *sim.Histogram {
	if h == nil {
		return nil
	}
	return h.h
}

// Name implements Collector.
func (h *Histogram) Name() string { return h.name }

// Labels implements Collector.
func (h *Histogram) Labels() Labels { return h.labels.clone() }

// Kind implements Collector.
func (h *Histogram) Kind() Kind { return KindHistogram }

// Collect implements Collector.
func (h *Histogram) Collect() Metric {
	h.mu.Lock()
	defer h.mu.Unlock()
	return Metric{
		Name: h.name, Labels: h.labels.clone(), Kind: KindHistogram,
		Count: h.h.Count(), Sum: h.h.Sum(),
		Min: h.h.Min(), Max: h.h.Max(),
		P50: h.h.Quantile(0.5), P99: h.h.Quantile(0.99),
	}
}

// Registry holds the process's registered collectors. Safe for concurrent
// use. The zero value is not usable; call NewRegistry.
type Registry struct {
	mu    sync.Mutex
	byKey map[string]Collector
	order []Collector
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: make(map[string]Collector)}
}

// lookup returns the collector for key, or creates it with mk and
// registers it. Panics if the key exists with a different kind — that is a
// programming error, not a runtime condition.
func (r *Registry) lookup(name string, labels Labels, kind Kind, mk func() Collector) Collector {
	key := metricKey(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.byKey[key]; ok {
		if c.Kind() != kind {
			panic(fmt.Sprintf("obs: metric %s registered as %s, requested as %s", key, c.Kind(), kind))
		}
		return c
	}
	c := mk()
	r.byKey[key] = c
	r.order = append(r.order, c)
	return c
}

// Counter returns the registered counter for name+labels, creating it on
// first use.
func (r *Registry) Counter(name string, labels Labels) *Counter {
	return r.lookup(name, labels, KindCounter, func() Collector { return NewCounter(name, labels) }).(*Counter)
}

// Gauge returns the registered gauge for name+labels, creating it on
// first use.
func (r *Registry) Gauge(name string, labels Labels) *Gauge {
	return r.lookup(name, labels, KindGauge, func() Collector { return NewGauge(name, labels) }).(*Gauge)
}

// GaugeFunc registers (or re-points) a gauge that reads through fn at
// collection time. When several layer instances register the same gauge,
// the most recent instance wins — the registry reports live state, and
// live state belongs to the newest instance.
func (r *Registry) GaugeFunc(name string, labels Labels, fn func() float64) *Gauge {
	g := r.Gauge(name, labels)
	g.setFunc(fn)
	return g
}

// Histogram returns the registered histogram for name+labels, creating it
// on first use.
func (r *Registry) Histogram(name string, labels Labels) *Histogram {
	return r.lookup(name, labels, KindHistogram, func() Collector { return NewHistogram(name, labels) }).(*Histogram)
}

// Merge folds every collector registered in src into r: counter values
// add, histograms merge sample-exactly, and gauges adopt the source's
// value (or read-through function — "most recent instance wins", exactly
// as re-registering a GaugeFunc does). Collectors missing from r are
// created, preserving src's registration order, so merging the same
// sequence of registries always yields the same collector order — the
// property that makes parallel experiment runs dump byte-identical
// metrics. src must not be mutated concurrently with the merge.
//
// GaugeFunc liveness survives the merge: a merged read-through gauge
// keeps reading the source instance's function, so later collections see
// that instance's live state, not a value frozen at merge time. The
// flip side is that merging a plain (function-less) gauge must CLEAR any
// read-through a previous merge installed — otherwise the stale function
// shadows the newer value forever and the merged gauge appears frozen.
// Snapshot/Diff are point-in-time by design; liveness is the registry's
// concern, not the snapshot's.
func (r *Registry) Merge(src *Registry) {
	if src == nil {
		return
	}
	for _, c := range src.Collectors() {
		name, labels := c.Name(), c.Labels()
		switch sc := c.(type) {
		case *Counter:
			r.Counter(name, labels).Add(sc.Value())
		case *Gauge:
			g := r.Gauge(name, labels)
			sc.mu.Lock()
			fn := sc.fn
			sc.mu.Unlock()
			if fn != nil {
				g.setFunc(fn)
			} else {
				// Most recent instance wins: drop any read-through from an
				// earlier merge so the plain value is actually visible.
				g.setFunc(nil)
				g.Set(sc.Value())
			}
		case *Histogram:
			dst := r.Histogram(name, labels)
			sc.mu.Lock()
			dst.mu.Lock()
			dst.h.Merge(sc.h)
			dst.mu.Unlock()
			sc.mu.Unlock()
		}
	}
}

// MergeLabeled is Merge with extra labels stamped onto every collector
// as it lands in r: merging node registries with {"node": name} keeps
// identically-named per-node series distinct instead of colliding into
// one aggregate. Labels already present on a collector win over the
// extras only if the keys collide — the merge is for adding a dimension,
// not rewriting one. With no extra labels it is exactly Merge.
func (r *Registry) MergeLabeled(src *Registry, extra Labels) {
	if src == nil {
		return
	}
	if len(extra) == 0 {
		r.Merge(src)
		return
	}
	for _, c := range src.Collectors() {
		name := c.Name()
		labels := c.Labels()
		if labels == nil {
			labels = make(Labels, len(extra))
		}
		for k, v := range extra {
			if _, ok := labels[k]; !ok {
				labels[k] = v
			}
		}
		switch sc := c.(type) {
		case *Counter:
			r.Counter(name, labels).Add(sc.Value())
		case *Gauge:
			g := r.Gauge(name, labels)
			sc.mu.Lock()
			fn := sc.fn
			sc.mu.Unlock()
			if fn != nil {
				g.setFunc(fn)
			} else {
				g.setFunc(nil)
				g.Set(sc.Value())
			}
		case *Histogram:
			dst := r.Histogram(name, labels)
			sc.mu.Lock()
			dst.mu.Lock()
			dst.h.Merge(sc.h)
			dst.mu.Unlock()
			sc.mu.Unlock()
		}
	}
}

// Collectors returns the registered collectors in registration order.
func (r *Registry) Collectors() []Collector {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Collector, len(r.order))
	copy(out, r.order)
	return out
}

// Observer bundles the registry and tracer the instrumented layers write
// into. A nil *Observer is fully usable: metric constructors return live
// standalone collectors (so layer Stats() views keep working) and Span
// returns a no-op.
type Observer struct {
	Registry *Registry
	Tracer   *Tracer

	// reqCtx is the active request's trace context (see BeginRequest);
	// spanIDs allocates span identities within this observer's stream.
	// ctxFree holds one retired context for reuse — requests do not nest,
	// so a single spare makes the enabled trace path allocation-free.
	reqCtx  atomic.Pointer[TraceContext]
	spanIDs atomic.Uint64
	ctxFree atomic.Pointer[TraceContext]
	// cause is the active wear-attribution cause (see PushCause); the
	// flash layer charges every program and erase against it.
	// causeRestore caches one restore closure per possible previous
	// cause (index 0 is "none"), built once on first push.
	cause        atomic.Pointer[Cause]
	causeOnce    sync.Once
	causeReady   atomic.Bool
	causeRestore [len(causeInterned) + 1]func()
	// flight is the attached flight recorder, if any (SetFlightRecorder);
	// subsystems that witness an incident (power-cut remount) dump
	// through it without knowing who configured it.
	flight atomic.Pointer[FlightRecorder]
	// events is the attached cluster event journal, if any (SetEventLog);
	// the cluster control plane appends through it the same way.
	events atomic.Pointer[EventLog]
}

// New returns an observer with a fresh registry and a tracer holding up to
// traceCapacity spans (<=0 selects the default capacity).
func New(traceCapacity int) *Observer {
	return &Observer{Registry: NewRegistry(), Tracer: NewTracer(traceCapacity)}
}

// Counter returns a per-instance counter chained to the registry aggregate
// for name+labels. With a nil observer (or registry) the counter is
// standalone: it still counts, it is just not exported anywhere.
func (o *Observer) Counter(name string, labels Labels) *Counter {
	c := NewCounter(name, labels)
	if o != nil && o.Registry != nil {
		c.parent = o.Registry.Counter(name, labels)
	}
	return c
}

// Gauge returns the registered gauge, or a standalone one without an
// observer. Gauges are not chained: they describe current state, and the
// aggregate of two instantaneous states has no meaning.
func (o *Observer) Gauge(name string, labels Labels) *Gauge {
	if o != nil && o.Registry != nil {
		return o.Registry.Gauge(name, labels)
	}
	return NewGauge(name, labels)
}

// Exports reports whether metrics registered on this observer reach a
// registry. Construction-heavy layers consult it to skip building
// read-through gauges nothing can ever collect (the flash wear surface
// alone registers a hundred of them per device).
func (o *Observer) Exports() bool { return o != nil && o.Registry != nil }

// GaugeFunc registers a read-through gauge (see Registry.GaugeFunc).
// Without a registry it returns nil — a nil *Gauge is a documented
// no-op, and a standalone read-through gauge could never be collected
// anyway, so there is nothing to build.
func (o *Observer) GaugeFunc(name string, labels Labels, fn func() float64) *Gauge {
	if o != nil && o.Registry != nil {
		return o.Registry.GaugeFunc(name, labels, fn)
	}
	return nil
}

// Histogram returns a per-instance histogram chained to the registry
// aggregate, or a standalone one without an observer.
func (o *Observer) Histogram(name string, labels Labels) *Histogram {
	h := NewHistogram(name, labels)
	if o != nil && o.Registry != nil {
		h.parent = o.Registry.Histogram(name, labels)
	}
	return h
}

// Merge folds src's registered metrics and retained spans into o (see
// Registry.Merge and Tracer.Merge). A nil receiver or source is a no-op,
// so callers can merge unconditionally.
func (o *Observer) Merge(src *Observer) {
	if o == nil || src == nil {
		return
	}
	if o.Registry != nil {
		o.Registry.Merge(src.Registry)
	}
	if o.Tracer != nil {
		o.Tracer.Merge(src.Tracer)
	}
	o.mergeEvents(src)
}

// mergeEvents folds src's event journal into o's: adopt the journal when
// o has none, append otherwise. A shared journal (the same log attached
// to both observers, as the cluster front end does) is left alone.
func (o *Observer) mergeEvents(src *Observer) {
	sl := src.EventLog()
	if sl == nil {
		return
	}
	dl := o.EventLog()
	if dl == nil {
		o.SetEventLog(sl)
		return
	}
	if dl != sl {
		dl.Merge(sl)
	}
}

// MergeLabeled folds src into o with extra labels stamped onto every
// metric (see Registry.MergeLabeled). Spans merge unlabelled — they
// already carry per-node identity via Span.Node when the source tracer
// was stamped with SetNode.
func (o *Observer) MergeLabeled(src *Observer, extra Labels) {
	if o == nil || src == nil {
		return
	}
	if o.Registry != nil {
		o.Registry.MergeLabeled(src.Registry, extra)
	}
	if o.Tracer != nil {
		o.Tracer.Merge(src.Tracer)
	}
	o.mergeEvents(src)
}

// Default observer: the fallback layers use when their Config carries no
// explicit observer. The CLIs set it so every system an experiment
// assembles — including raw devices built deep inside exp functions — is
// wired without threading an observer through each call chain.
var (
	defaultMu  sync.RWMutex
	defaultObs *Observer
)

// SetDefault installs the process-wide default observer (nil to clear).
func SetDefault(o *Observer) {
	defaultMu.Lock()
	defaultObs = o
	defaultMu.Unlock()
}

// Default reports the process-wide default observer; may be nil.
func Default() *Observer {
	defaultMu.RLock()
	defer defaultMu.RUnlock()
	return defaultObs
}

// Or resolves an explicitly configured observer against the default:
// layers call obs.Or(cfg.Obs) once at construction.
func Or(o *Observer) *Observer {
	if o != nil {
		return o
	}
	return Default()
}
