package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestWritePrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("requests_total", Labels{"op": "put"}).Add(3)
	r.Gauge("free_blocks", nil).Set(17)
	r.GaugeFunc("buffer_occupancy", nil, func() float64 { return 0.5 })
	h := r.Histogram("serve_latency_breakdown", Labels{"stage": "clean"})
	h.Observe(100)
	h.Observe(300)

	var buf bytes.Buffer
	if err := WritePrometheus(&buf, r); err != nil {
		t.Fatal(err)
	}
	out := buf.String()

	for _, want := range []string{
		"# TYPE requests_total counter\n",
		"requests_total{op=\"put\"} 3\n",
		"# TYPE free_blocks gauge\n",
		"free_blocks 17\n",
		"buffer_occupancy 0.5\n",
		"# TYPE serve_latency_breakdown summary\n",
		"serve_latency_breakdown{stage=\"clean\",quantile=\"0.5\"}",
		"serve_latency_breakdown_sum{stage=\"clean\"} 400\n",
		"serve_latency_breakdown_count{stage=\"clean\"} 2\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}

	// The exposition must pass its own validator, including the summary's
	// base-name witnessing via _sum/_count.
	required := []string{"requests_total", "free_blocks", "buffer_occupancy", "serve_latency_breakdown"}
	if err := CheckExposition(buf.Bytes(), required); err != nil {
		t.Fatalf("CheckExposition rejected our own output: %v", err)
	}
}

func TestWritePrometheusEmptyAndNil(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("nil registry rendered %q", buf.String())
	}
	if err := CheckExposition(nil, nil); err != nil {
		t.Fatalf("empty exposition with no requirements must pass: %v", err)
	}
}

func TestCheckExpositionRejects(t *testing.T) {
	cases := []struct {
		name     string
		data     string
		required []string
	}{
		{"malformed metric line", "requests_total three\n", nil},
		{"bare comment", "#not a type line\n", nil},
		{"unquoted label", "x{op=put} 1\n", nil},
		{"missing required series", "# TYPE a counter\na 1\n", []string{"requests_total"}},
	}
	for _, c := range cases {
		if err := CheckExposition([]byte(c.data), c.required); err == nil {
			t.Errorf("%s: CheckExposition accepted %q", c.name, c.data)
		}
	}

	// Escaped quotes and special values are legal.
	ok := "x{path=\"a\\\"b\"} 1\nnan_metric NaN\ninf_metric +Inf\n"
	if err := CheckExposition([]byte(ok), []string{"x"}); err != nil {
		t.Errorf("CheckExposition rejected legal exposition: %v", err)
	}
}
