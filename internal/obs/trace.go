package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"ssmobile/internal/sim"
)

// Span is one traced operation: a closed interval of virtual time
// attributed to a layer and an operation, with the bytes moved, the
// energy drawn (inclusive of nested work, measured as the energy-meter
// delta across the span) and the outcome ("ok" or "error").
//
// Spans recorded under an active request context (see TraceContext) also
// carry causal identity: ID names the span, Parent links it to the
// enclosing span of the same request, and FollowFrom links induced work —
// a cleaner pass the request forced on its way through the FTL — back to
// the request's root span. All three are zero for background spans
// recorded outside any request, which keeps pre-context traces (and their
// goldens) byte-identical.
type Span struct {
	Start   sim.Time   `json:"start_ns"`
	End     sim.Time   `json:"end_ns"`
	Layer   string     `json:"layer"`
	Op      string     `json:"op"`
	Bytes   int64      `json:"bytes,omitempty"`
	Energy  sim.Energy `json:"energy_pj,omitempty"`
	Outcome string     `json:"outcome"`
	// ID is the span's identity within its observer's request stream;
	// 0 outside a request context.
	ID uint64 `json:"id,omitempty"`
	// Parent is the ID of the enclosing span within the same request;
	// 0 for a request root (and for background spans).
	Parent uint64 `json:"parent,omitempty"`
	// FollowFrom is the root span the work was induced by: set on cleaner
	// passes that a request triggered synchronously, so trace viewers can
	// attribute the stall without conflating it with the call tree.
	FollowFrom uint64 `json:"follow_from,omitempty"`
	// Queue is the admission-queueing delay that preceded a request root
	// span (arrival to service start); the span itself covers service
	// only, so total latency is Queue + Duration().
	Queue sim.Duration `json:"queue_ns,omitempty"`
	// Stage is the span's effective latency-attribution stage (see the
	// Stage constants and EffectiveStage), resolved at open time so trace
	// consumers need no stage logic. Empty for background spans.
	Stage string `json:"stage,omitempty"`
	// Node names the cluster node the span executed on (or, for the
	// per-holder child spans a clustered request records, the holder the
	// latency belongs to). Single-node runs leave it empty, which keeps
	// their traces — and the goldens pinned against them — byte-identical.
	Node string `json:"node,omitempty"`
}

// Duration reports the span's virtual-time extent.
func (s Span) Duration() sim.Duration { return s.End.Sub(s.Start) }

// Outcomes.
const (
	OutcomeOK    = "ok"
	OutcomeError = "error"
)

// DefaultTraceCapacity bounds the span ring buffer when the caller does
// not choose: 64k spans is enough to hold the tail of any experiment
// while keeping the worst-case footprint around a few megabytes.
const DefaultTraceCapacity = 1 << 16

// spanChunkSize is the granularity of the ring's backing store. The
// ring grows chunk by chunk instead of append-doubling: recording n
// spans allocates ceil(n/chunk) fixed-size chunks and never moves or
// re-zeroes spans already recorded. With a 64k-capacity ring the
// doubling strategy zeroed and copied ~20 MB per full fill — which was
// most of the measurable cost of *enabled* tracing on the serve path.
const spanChunkSize = 1 << 13

// Tracer records spans into a bounded ring buffer. When the buffer is
// full the oldest spans are overwritten; Dropped reports how many were
// lost. Safe for concurrent use. The ring grows on demand up to its
// capacity, so short-lived tracers (the parallel engine makes one per
// job) cost only what they record.
type Tracer struct {
	mu       sync.Mutex
	chunks   [][]Span // backing store; only the last chunk may be short
	capacity int
	length   int    // spans retained; grows to capacity, then stops
	next     int    // ring index the next span overwrites once full
	total    int64  // spans ever recorded
	node     string // stamped onto recorded spans that carry no node
}

// NewTracer returns a tracer retaining up to capacity spans (<=0 selects
// DefaultTraceCapacity).
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCapacity
	}
	return &Tracer{capacity: capacity}
}

// Capacity reports how many spans the tracer retains before dropping.
func (t *Tracer) Capacity() int {
	if t == nil {
		return 0
	}
	return t.capacity
}

// SetNode names the cluster node this tracer records for: every span
// recorded without an explicit Node is stamped with it. Spans merged
// from a named tracer keep their stamp through Merge (the merge
// re-records them with Node already set), so per-node identity survives
// into a fleet-wide ring. The empty default leaves spans unstamped,
// which is what keeps single-node traces byte-identical.
func (t *Tracer) SetNode(name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.node = name
	t.mu.Unlock()
}

// Record appends one finished span.
func (t *Tracer) Record(sp Span) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if sp.Node == "" {
		sp.Node = t.node
	}
	i := t.next
	if t.length < t.capacity {
		i = t.length
		if i == len(t.chunks)*spanChunkSize {
			n := min(spanChunkSize, t.capacity-i)
			t.chunks = append(t.chunks, make([]Span, n))
		}
		t.length++
	} else {
		t.next = (t.next + 1) % t.capacity
	}
	t.chunks[i/spanChunkSize][i%spanChunkSize] = sp
	t.total++
	t.mu.Unlock()
}

// Spans returns the retained spans, oldest first.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, 0, t.length)
	out = t.appendRange(out, t.next, t.length)
	return t.appendRange(out, 0, t.next)
}

// appendRange copies ring slots [from, to) to out, chunk run at a time.
// While the ring is filling next is 0, so Spans sees slots 0..length;
// once full the oldest span sits at next and the range wraps.
func (t *Tracer) appendRange(out []Span, from, to int) []Span {
	for from < to {
		c := t.chunks[from/spanChunkSize]
		off := from % spanChunkSize
		n := min(len(c)-off, to-from)
		out = append(out, c[off:off+n]...)
		from += n
	}
	return out
}

// Total reports how many spans were ever recorded.
func (t *Tracer) Total() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// Dropped reports how many spans the ring has overwritten.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total - int64(t.length)
}

// Merge re-records src's retained spans into t (oldest first) and carries
// src's drop count over, so the merged tracer reports the union's totals.
// The parallel experiment engine merges per-job tracers in job order,
// which keeps the retained-span sequence identical however the jobs were
// scheduled. src must not be recording concurrently with the merge.
func (t *Tracer) Merge(src *Tracer) {
	if t == nil || src == nil {
		return
	}
	spans := src.Spans()
	dropped := src.Dropped()
	for _, sp := range spans {
		t.Record(sp)
	}
	if dropped > 0 {
		t.mu.Lock()
		t.total += dropped
		t.mu.Unlock()
	}
}

// Flush writes the retained spans through each sink in turn.
func (t *Tracer) Flush(sinks ...TraceSink) error {
	spans := t.Spans()
	dropped := t.Dropped()
	for _, s := range sinks {
		if err := s.WriteSpans(spans, dropped); err != nil {
			return err
		}
	}
	return nil
}

// SpanRef is an open span returned by Observer.Span. The zero value is a
// no-op, which is how uninstrumented runs pay nothing.
type SpanRef struct {
	t      *Tracer
	clock  *sim.Clock
	meter  *sim.EnergyMeter
	start  sim.Time
	energy sim.Energy
	layer  string
	op     string
	// Request-context identity, zero outside an active request.
	ctx        *TraceContext
	id, parent uint64
	follow     uint64
	stage      string
}

// Span opens a span against the caller's virtual clock. The meter may be
// nil; with one, the span's Energy is the meter delta across the span
// (inclusive of nested operations' draw). End (or EndOutcome) closes it.
//
// When a request context is installed on the observer (BeginRequest) the
// span joins the request's tree: it gets an ID, a Parent link to the
// enclosing open span, and an inherited latency stage. Outside a context
// the span records exactly as before — background work stays anonymous.
func (o *Observer) Span(clock *sim.Clock, meter *sim.EnergyMeter, layer, op string) SpanRef {
	return o.openSpan(clock, meter, layer, op, "", false)
}

// StageSpan is Span with a declared latency-attribution stage: device
// layers use it to say what kind of time they represent (dram is
// StageBuffer, flash is StageFlash, buffer eviction is StageFlush). The
// declaration only matters under a request context; see EffectiveStage
// for how it combines with the enclosing span's stage.
func (o *Observer) StageSpan(clock *sim.Clock, meter *sim.EnergyMeter, layer, op, stage string) SpanRef {
	return o.openSpan(clock, meter, layer, op, stage, false)
}

// InducedSpan is StageSpan for work a request forced but did not call
// for — the FTL's synchronous cleaner pass. Under a request context the
// span carries a FollowFrom link back to the request's root span in
// addition to its Parent link, so attribution tools can separate "the
// request asked for this" from "the request's timing got charged this".
func (o *Observer) InducedSpan(clock *sim.Clock, meter *sim.EnergyMeter, layer, op, stage string) SpanRef {
	return o.openSpan(clock, meter, layer, op, stage, true)
}

func (o *Observer) openSpan(clock *sim.Clock, meter *sim.EnergyMeter, layer, op, stage string, induced bool) SpanRef {
	if o == nil || o.Tracer == nil || clock == nil {
		return SpanRef{}
	}
	sr := SpanRef{t: o.Tracer, clock: clock, meter: meter, start: clock.Now(), layer: layer, op: op}
	if meter != nil {
		sr.energy = meter.Total()
	}
	if tc := o.reqCtx.Load(); tc != nil {
		sr.ctx = tc
		sr.id, sr.parent, sr.stage = tc.open(sr.start, stage)
		if induced {
			sr.follow = tc.root
		}
	}
	return sr
}

// End closes the span with bytes moved and an outcome derived from err.
func (s SpanRef) End(bytes int64, err error) {
	outcome := OutcomeOK
	if err != nil {
		outcome = OutcomeError
	}
	s.EndOutcome(bytes, outcome)
}

// EndOutcome closes the span with an explicit outcome string.
func (s SpanRef) EndOutcome(bytes int64, outcome string) {
	if s.t == nil {
		return
	}
	end := s.clock.Now()
	var e sim.Energy
	if s.meter != nil {
		e = s.meter.Total() - s.energy
	}
	if s.ctx != nil {
		s.ctx.close(end)
	}
	s.t.Record(Span{
		Start: s.start, End: end,
		Layer: s.layer, Op: s.op,
		Bytes: bytes, Energy: e, Outcome: outcome,
		ID: s.id, Parent: s.parent, FollowFrom: s.follow, Stage: s.stage,
	})
}

// TraceSink receives the tracer's retained spans on Flush.
type TraceSink interface {
	// WriteSpans writes spans (oldest first); dropped is how many earlier
	// spans the ring buffer lost.
	WriteSpans(spans []Span, dropped int64) error
}

// jsonlSink writes one JSON object per line: a header object followed by
// every span.
type jsonlSink struct{ w io.Writer }

// NewJSONLSink returns a sink writing JSON-lines output: a header line
// {"spans":N,"dropped":M} followed by one span object per line.
func NewJSONLSink(w io.Writer) TraceSink { return jsonlSink{w} }

// WriteSpans implements TraceSink.
func (s jsonlSink) WriteSpans(spans []Span, dropped int64) error {
	bw := bufio.NewWriter(s.w)
	fmt.Fprintf(bw, "{\"spans\":%d,\"dropped\":%d}\n", len(spans), dropped)
	enc := json.NewEncoder(bw)
	for _, sp := range spans {
		if err := enc.Encode(sp); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// chromeSink writes the Chrome trace_event format (the JSON object form),
// which chrome://tracing and Perfetto open directly. Each distinct layer
// becomes a named "thread" so the per-layer timelines stack visually;
// virtual timestamps map to trace microseconds.
type chromeSink struct{ w io.Writer }

// NewChromeTraceSink returns a sink writing Chrome trace_event JSON.
func NewChromeTraceSink(w io.Writer) TraceSink { return chromeSink{w} }

// chromeEvent is one trace_event record.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteSpans implements TraceSink.
func (s chromeSink) WriteSpans(spans []Span, dropped int64) error {
	// Assign layers to thread ids in first-seen order, deterministically.
	tids := make(map[string]int)
	events := make([]chromeEvent, 0, len(spans)+8)
	for _, sp := range spans {
		tid, ok := tids[sp.Layer]
		if !ok {
			tid = len(tids) + 1
			tids[sp.Layer] = tid
			events = append(events, chromeEvent{
				Name: "thread_name", Ph: "M", Pid: 1, Tid: tid,
				Args: map[string]any{"name": sp.Layer},
			})
		}
		args := map[string]any{"outcome": sp.Outcome}
		if sp.Bytes != 0 {
			args["bytes"] = sp.Bytes
		}
		if sp.Energy != 0 {
			args["energy_pj"] = int64(sp.Energy)
		}
		if sp.Node != "" {
			args["node"] = sp.Node
		}
		events = append(events, chromeEvent{
			Name: sp.Op, Cat: sp.Layer, Ph: "X",
			Ts:  float64(sp.Start) / 1e3,
			Dur: float64(sp.End.Sub(sp.Start)) / 1e3,
			Pid: 1, Tid: tid, Args: args,
		})
	}
	doc := struct {
		TraceEvents     []chromeEvent  `json:"traceEvents"`
		DisplayTimeUnit string         `json:"displayTimeUnit"`
		OtherData       map[string]any `json:"otherData,omitempty"`
	}{
		TraceEvents:     events,
		DisplayTimeUnit: "ms",
	}
	if dropped > 0 {
		doc.OtherData = map[string]any{"dropped_spans": dropped}
	}
	enc := json.NewEncoder(s.w)
	return enc.Encode(doc)
}
