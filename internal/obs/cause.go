package obs

// Wear attribution: WHY a destructive flash operation happened.
//
// The flash device counts programs and erases, but the interesting
// question for an erase-before-write medium is what made them necessary:
// a byte the host actually wrote, a group-commit flush forced by sync, a
// cleaner copying live pages out of a victim block, idle-time
// housekeeping, mount-time recovery, or filesystem metadata. The Cause
// tag answers it the same way TraceContext answers "which request": the
// single simulation thread installs the active cause on the shared
// Observer, and the flash layer reads it at each program/erase to pick
// the counter to charge. Causes are pure observation — pushing or
// popping one never advances the clock or changes any layer's behavior.
//
// Scoping rule: a nested PushCause overrides the active cause (innermost
// wins) and restores it on exit, with one exception mirroring the
// StageClean stickiness in TraceContext: cleaner work nested inside an
// idle-clean scope stays idle-clean, so the idle/foreground split of
// cleaning traffic survives the shared cleanOne path (the FTL encodes
// that exception at its call site, not here).

// Cause classifies the origin of a destructive flash operation.
type Cause string

// The cause taxonomy, from the foreground write path down to recovery.
const (
	// CauseHostWrite is data the host wrote, migrated to flash by the
	// normal write-back path. It is also the default when no cause is
	// active, so uninstrumented call paths degrade to the obvious bucket.
	CauseHostWrite Cause = "host-write"
	// CauseGroupCommitFlush is traffic forced out early by an explicit
	// sync (the server's group-commit flush, or a write buffer's Sync).
	CauseGroupCommitFlush Cause = "group-commit-flush"
	// CauseCleanerMigrate is cleaner traffic on the foreground path:
	// live-page copies and victim erases needed to reclaim space.
	CauseCleanerMigrate Cause = "cleaner-migrate"
	// CauseIdleClean is the same cleaning work done from the idle daemon,
	// off the critical path.
	CauseIdleClean Cause = "idle-clean"
	// CauseMountRecovery is mount-time work: re-erasing blocks whose
	// programs were torn by a power cut, and any recovery writes.
	CauseMountRecovery Cause = "mount-recovery"
	// CauseMetadata is filesystem metadata (the rbox checkpoint stream).
	CauseMetadata Cause = "metadata"
)

// Causes lists every cause in canonical order. Layers that register one
// collector per cause iterate this slice so registration order — and
// therefore exposition and snapshot order — is deterministic.
var Causes = []Cause{
	CauseHostWrite,
	CauseGroupCommitFlush,
	CauseCleanerMigrate,
	CauseIdleClean,
	CauseMountRecovery,
	CauseMetadata,
}

// Cause reports the active wear-attribution cause, defaulting to
// CauseHostWrite when none is installed. Nil-safe.
func (o *Observer) Cause() Cause {
	if o == nil {
		return CauseHostWrite
	}
	if p := o.cause.Load(); p != nil {
		return *p
	}
	return CauseHostWrite
}

// causeInterned backs one stable pointer per canonical cause, so pushing
// a canonical cause never forces its argument to escape.
var causeInterned = [...]Cause{
	CauseHostWrite,
	CauseGroupCommitFlush,
	CauseCleanerMigrate,
	CauseIdleClean,
	CauseMountRecovery,
	CauseMetadata,
}

func causePtr(c Cause) *Cause {
	for i := range causeInterned {
		if causeInterned[i] == c {
			return &causeInterned[i]
		}
	}
	return nil
}

var nopRestore = func() {}

// PushCause installs c as the active cause and returns a restore
// function that reinstates the previous cause; callers defer it so
// scopes nest. Nil-safe: without an observer the push is a no-op.
//
// Pushes run on every daemon pass, sync and cleaner invocation, so the
// implementation interns the canonical cause pointers and hands out
// cached restore closures: pushing and restoring a canonical cause over
// a canonical (or empty) previous cause allocates nothing.
func (o *Observer) PushCause(c Cause) (restore func()) {
	if o == nil {
		return nopRestore
	}
	p := causePtr(c)
	if p == nil {
		p = &c
	}
	prev := o.cause.Swap(p)
	return o.causeRestoreFor(prev)
}

// causeRestoreFor returns a restore closure storing prev, cached when
// prev is nil or an interned canonical pointer.
func (o *Observer) causeRestoreFor(prev *Cause) func() {
	idx := 0
	if prev != nil {
		for i := range causeInterned {
			if prev == &causeInterned[i] {
				idx = i + 1
				break
			}
		}
		if idx == 0 {
			// A non-canonical cause was active; restore it the slow way.
			return func() { o.cause.Store(prev) }
		}
	}
	// The ready flag is checked before Do so the fast path passes no
	// closure literal — sync.Once.Do's argument escapes and would
	// otherwise allocate on every push.
	if !o.causeReady.Load() {
		o.buildCauseRestores()
	}
	return o.causeRestore[idx]
}

func (o *Observer) buildCauseRestores() {
	o.causeOnce.Do(func() {
		for j := range o.causeRestore {
			var p *Cause
			if j > 0 {
				p = &causeInterned[j-1]
			}
			o.causeRestore[j] = func() { o.cause.Store(p) }
		}
		o.causeReady.Store(true)
	})
}
