package obs

import (
	"testing"

	"ssmobile/internal/sim"
)

// The recycling contract for pooled trace contexts: FinishOutcome parks
// the context in the observer's spare slot and BeginRequest hands it
// back fully reset — no stale span parents, no leftover stage charges,
// no frames from the previous request.

func TestTraceContextRecycleFullyReset(t *testing.T) {
	o := New(64)
	clock := sim.NewClock()

	// First request: nest spans and accrue stage time so every recycled
	// field would be visibly stale if reset were incomplete.
	tc1 := o.BeginRequest(clock, "server", "put", 3*sim.Millisecond)
	if tc1 == nil {
		t.Fatal("BeginRequest returned nil with a live tracer")
	}
	clock.Advance(1 * sim.Millisecond)
	sp := o.Span(clock, nil, "fs", "write")
	clock.Advance(2 * sim.Millisecond)
	spInner := o.Span(clock, nil, "ftl", "program")
	clock.Advance(4 * sim.Millisecond)
	spInner.End(0, nil)
	sp.End(0, nil)
	root1 := tc1.Root()
	bd1 := tc1.Finish(128, nil)
	if bd1.Total() == 0 {
		t.Fatal("first request accrued no time")
	}

	// Second request must reuse the parked context (steady-state pooling)
	// yet behave exactly like a fresh one.
	tc2 := o.BeginRequest(clock, "server", "get", 0)
	if tc2 != tc1 {
		t.Fatal("second BeginRequest did not recycle the parked context")
	}
	if tc2.Root() == root1 {
		t.Fatal("recycled context kept the previous request's root span ID")
	}
	if len(tc2.frames) != 1 || tc2.frames[0].id != tc2.Root() {
		t.Fatalf("recycled context has stale frames: %+v", tc2.frames)
	}
	for i, d := range tc2.stages {
		if want := sim.Duration(0); i != stageQueue && d != want {
			t.Fatalf("recycled context kept stage charge %s=%v", stageName(i), d)
		}
	}
	root2 := tc2.Root()
	clock.Advance(5 * sim.Millisecond)
	o.Span(clock, nil, "fs", "read").End(0, nil)
	bd2 := tc2.Finish(0, nil)
	if bd2.Queue != 0 {
		t.Fatalf("recycled context kept the previous queue delay: %v", bd2.Queue)
	}

	// The recorded spans must form two disjoint trees: nothing from the
	// second request may point at the first request's IDs. Span IDs are
	// allocated monotonically, so request 2's spans all have ID >= root2.
	var seenRequest2 bool
	for _, s := range o.Tracer.Spans() {
		if s.ID < root2 {
			continue
		}
		seenRequest2 = true
		if s.Parent == root1 || s.FollowFrom == root1 {
			t.Fatalf("span %d of request 2 references request 1's root: %+v", s.ID, s)
		}
	}
	if !seenRequest2 {
		t.Fatal("second request recorded no spans")
	}
}

// A context parked by one request and reused across many must never
// accumulate frame state: drive a burst of nested requests and verify
// the spare context always comes back with a clean single-frame stack.
func TestTraceContextRecycleBurst(t *testing.T) {
	o := New(64)
	clock := sim.NewClock()
	for i := 0; i < 100; i++ {
		tc := o.BeginRequest(clock, "server", "op", 0)
		if tc == nil {
			t.Fatal("BeginRequest returned nil")
		}
		var open [3]SpanRef
		for depth := range open {
			clock.Advance(sim.Microsecond)
			open[depth] = o.Span(clock, nil, "fs", "step")
		}
		if got := len(tc.frames); got != 4 {
			t.Fatalf("iteration %d: frame stack depth %d, want 4", i, got)
		}
		for depth := len(open) - 1; depth >= 0; depth-- {
			open[depth].End(0, nil)
		}
		tc.Finish(0, nil)
		if parked := o.ctxFree.Load(); parked == nil || len(parked.frames) != 0 {
			t.Fatalf("iteration %d: parked context not reset", i)
		}
	}
}
