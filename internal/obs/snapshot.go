package obs

import (
	"encoding/json"
	"io"
	"sort"
)

// Metric is one collector's point-in-time value, the unit of Snapshot and
// of the machine-readable metrics dump.
type Metric struct {
	Name   string `json:"name"`
	Labels Labels `json:"labels,omitempty"`
	Kind   Kind   `json:"kind"`
	// Value carries counters and gauges.
	Value float64 `json:"value,omitempty"`
	// Count..P99 carry histograms.
	Count int64   `json:"count,omitempty"`
	Sum   float64 `json:"sum,omitempty"`
	Min   float64 `json:"min,omitempty"`
	Max   float64 `json:"max,omitempty"`
	P50   float64 `json:"p50,omitempty"`
	P99   float64 `json:"p99,omitempty"`
}

// Key reports the metric's canonical identity "name{k=v,...}".
func (m Metric) Key() string { return metricKey(m.Name, m.Labels) }

// Snapshot is a point-in-time capture of a registry, sorted by metric key
// so output is deterministic.
type Snapshot struct {
	Metrics []Metric `json:"metrics"`
}

// Snapshot captures every registered collector.
func (r *Registry) Snapshot() Snapshot {
	cs := r.Collectors()
	ms := make([]Metric, 0, len(cs))
	for _, c := range cs {
		ms = append(ms, c.Collect())
	}
	sort.Slice(ms, func(i, j int) bool { return ms[i].Key() < ms[j].Key() })
	return Snapshot{Metrics: ms}
}

// Find returns the metric with the given name and labels, if present.
func (s Snapshot) Find(name string, labels Labels) (Metric, bool) {
	key := metricKey(name, labels)
	for _, m := range s.Metrics {
		if m.Key() == key {
			return m, true
		}
	}
	return Metric{}, false
}

// WithLabel returns a copy of the snapshot with key=value stamped onto
// every metric (existing values for the key win), re-sorted by the new
// keys. The fleet rollup uses it to tag each node's snapshot before
// merging them into one fleet-wide view.
func (s Snapshot) WithLabel(key, value string) Snapshot {
	out := Snapshot{Metrics: make([]Metric, 0, len(s.Metrics))}
	for _, m := range s.Metrics {
		labels := m.Labels.clone()
		if labels == nil {
			labels = Labels{}
		}
		if _, ok := labels[key]; !ok {
			labels[key] = value
		}
		m.Labels = labels
		out.Metrics = append(out.Metrics, m)
	}
	sort.Slice(out.Metrics, func(i, j int) bool { return out.Metrics[i].Key() < out.Metrics[j].Key() })
	return out
}

// FilterLabel returns the sub-snapshot of metrics carrying key=value,
// with that label stripped — the inverse of WithLabel, recovering one
// node's snapshot from a merged fleet snapshot so per-device consumers
// (flash.HealthFromSnapshot) can read it unchanged.
func (s Snapshot) FilterLabel(key, value string) Snapshot {
	out := Snapshot{}
	for _, m := range s.Metrics {
		if m.Labels[key] != value {
			continue
		}
		labels := m.Labels.clone()
		delete(labels, key)
		if len(labels) == 0 {
			labels = nil
		}
		m.Labels = labels
		out.Metrics = append(out.Metrics, m)
	}
	sort.Slice(out.Metrics, func(i, j int) bool { return out.Metrics[i].Key() < out.Metrics[j].Key() })
	return out
}

// LabelValues reports the distinct values of a label key across the
// snapshot, sorted — how the fleet rollup discovers which nodes a merged
// snapshot contains.
func (s Snapshot) LabelValues(key string) []string {
	seen := make(map[string]bool)
	var out []string
	for _, m := range s.Metrics {
		if v, ok := m.Labels[key]; ok && !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	sort.Strings(out)
	return out
}

// Diff reports this snapshot relative to an earlier base, so experiments
// can report deltas instead of absolute totals. Counters subtract values;
// histograms subtract Count and Sum (Min/Max/P50/P99 keep the newer
// snapshot's values — quantiles of a difference are not recoverable from
// summaries); gauges keep the newer value, since a gauge is a state, not
// an accumulation. Metrics absent from the base diff against zero; metrics
// only in the base are omitted.
func (s Snapshot) Diff(base Snapshot) Snapshot {
	prev := make(map[string]Metric, len(base.Metrics))
	for _, m := range base.Metrics {
		prev[m.Key()] = m
	}
	out := Snapshot{Metrics: make([]Metric, 0, len(s.Metrics))}
	for _, m := range s.Metrics {
		if b, ok := prev[m.Key()]; ok {
			switch m.Kind {
			case KindCounter:
				m.Value -= b.Value
			case KindHistogram:
				m.Count -= b.Count
				m.Sum -= b.Sum
			}
		}
		out.Metrics = append(out.Metrics, m)
	}
	return out
}

// WriteJSON writes the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// ReadSnapshot parses a snapshot written by WriteJSON.
func ReadSnapshot(r io.Reader) (Snapshot, error) {
	var s Snapshot
	err := json.NewDecoder(r).Decode(&s)
	return s, err
}
