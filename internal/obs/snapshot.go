package obs

import (
	"encoding/json"
	"io"
	"sort"
)

// Metric is one collector's point-in-time value, the unit of Snapshot and
// of the machine-readable metrics dump.
type Metric struct {
	Name   string `json:"name"`
	Labels Labels `json:"labels,omitempty"`
	Kind   Kind   `json:"kind"`
	// Value carries counters and gauges.
	Value float64 `json:"value,omitempty"`
	// Count..P99 carry histograms.
	Count int64   `json:"count,omitempty"`
	Sum   float64 `json:"sum,omitempty"`
	Min   float64 `json:"min,omitempty"`
	Max   float64 `json:"max,omitempty"`
	P50   float64 `json:"p50,omitempty"`
	P99   float64 `json:"p99,omitempty"`
}

// Key reports the metric's canonical identity "name{k=v,...}".
func (m Metric) Key() string { return metricKey(m.Name, m.Labels) }

// Snapshot is a point-in-time capture of a registry, sorted by metric key
// so output is deterministic.
type Snapshot struct {
	Metrics []Metric `json:"metrics"`
}

// Snapshot captures every registered collector.
func (r *Registry) Snapshot() Snapshot {
	cs := r.Collectors()
	ms := make([]Metric, 0, len(cs))
	for _, c := range cs {
		ms = append(ms, c.Collect())
	}
	sort.Slice(ms, func(i, j int) bool { return ms[i].Key() < ms[j].Key() })
	return Snapshot{Metrics: ms}
}

// Find returns the metric with the given name and labels, if present.
func (s Snapshot) Find(name string, labels Labels) (Metric, bool) {
	key := metricKey(name, labels)
	for _, m := range s.Metrics {
		if m.Key() == key {
			return m, true
		}
	}
	return Metric{}, false
}

// Diff reports this snapshot relative to an earlier base, so experiments
// can report deltas instead of absolute totals. Counters subtract values;
// histograms subtract Count and Sum (Min/Max/P50/P99 keep the newer
// snapshot's values — quantiles of a difference are not recoverable from
// summaries); gauges keep the newer value, since a gauge is a state, not
// an accumulation. Metrics absent from the base diff against zero; metrics
// only in the base are omitted.
func (s Snapshot) Diff(base Snapshot) Snapshot {
	prev := make(map[string]Metric, len(base.Metrics))
	for _, m := range base.Metrics {
		prev[m.Key()] = m
	}
	out := Snapshot{Metrics: make([]Metric, 0, len(s.Metrics))}
	for _, m := range s.Metrics {
		if b, ok := prev[m.Key()]; ok {
			switch m.Kind {
			case KindCounter:
				m.Value -= b.Value
			case KindHistogram:
				m.Count -= b.Count
				m.Sum -= b.Sum
			}
		}
		out.Metrics = append(out.Metrics, m)
	}
	return out
}

// WriteJSON writes the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// ReadSnapshot parses a snapshot written by WriteJSON.
func ReadSnapshot(r io.Reader) (Snapshot, error) {
	var s Snapshot
	err := json.NewDecoder(r).Decode(&s)
	return s, err
}
