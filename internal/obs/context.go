// Request-scoped trace contexts: the causal thread that connects one
// served request to every operation it forces through the stack.
//
// The storage layers cannot carry a context argument without rewriting
// every method signature, and they do not need one: the stack beneath
// the server is a single-threaded virtual-time simulation, serialized by
// the server's mutex. The server therefore installs the active request's
// TraceContext on the shared Observer (BeginRequest), every Span opened
// while it is installed joins the request's tree automatically, and
// Finish removes it. Layers keep calling the same probes; the context is
// what changes their meaning.
//
// Each in-context span gets an ID, a Parent link to the enclosing open
// span, and an effective latency stage (see Stage constants). Induced
// work — a cleaner pass the request forced on its way through the FTL —
// additionally carries a FollowFrom link back to the request's root
// span, so trace viewers can attribute the stall to the request without
// pretending it was a plain subroutine call.
//
// The context also accrues a per-stage virtual-time breakdown as spans
// open and close: time between span boundaries is charged to the stage
// of the innermost open span. Because the simulated clock only advances
// inside device operations, this boundary accrual is exact — it equals
// the per-span exclusive-time reconstruction Attribute performs on a
// trace file, a property the tests pin.
package obs

import (
	"ssmobile/internal/sim"
)

// Latency-attribution stages. A span's declared stage says what kind of
// time it represents; the effective stage additionally honors
// inheritance (an undeclared span belongs to whatever stage encloses it)
// and cleaner stickiness (everything under an induced clean is cleaning
// stall, including the flash programs relocating live pages).
const (
	// StageQueue is admission queueing: arrival to service start. It is
	// never a span's stage — it precedes the root span — but appears in
	// breakdowns via the root span's Queue field.
	StageQueue = "queue"
	// StageBuffer is DRAM work: write-buffer hits, rbox journaling.
	StageBuffer = "buffer"
	// StageFlush is write-buffer eviction: migrating a dirty block out of
	// DRAM to make room (the paper's "write-buffer stall"). Device time
	// inside a flush keeps its own stage; flush is the residue.
	StageFlush = "flush"
	// StageFlash is direct flash device time: programs, reads, erases not
	// performed on behalf of the cleaner.
	StageFlash = "flash"
	// StageClean is cleaner work, and it is sticky: once a request is
	// inside an induced clean, every nested operation is cleaning stall.
	StageClean = "clean"
	// StageOther is everything else: metadata walks, span-free gaps.
	StageOther = "other"
)

// BreakdownStages lists the stage names in canonical (reporting) order.
var BreakdownStages = []string{StageQueue, StageBuffer, StageFlush, StageFlash, StageClean, StageOther}

// stage indices into Breakdown/TraceContext accumulation arrays.
const (
	stageQueue = iota
	stageBuffer
	stageFlush
	stageFlash
	stageClean
	stageOther
	numStages
)

var stageIndex = map[string]int{
	StageQueue:  stageQueue,
	StageBuffer: stageBuffer,
	StageFlush:  stageFlush,
	StageFlash:  stageFlash,
	StageClean:  stageClean,
	StageOther:  stageOther,
}

// stageIndexOf is stageIndex as a switch — same result including the
// zero value for unknown names, without the map lookup on the span-open
// hot path.
func stageIndexOf(name string) int {
	switch name {
	case StageQueue:
		return stageQueue
	case StageBuffer:
		return stageBuffer
	case StageFlush:
		return stageFlush
	case StageFlash:
		return stageFlash
	case StageClean:
		return stageClean
	case StageOther:
		return stageOther
	}
	return 0
}

// EffectiveStage resolves a span's stage from its declared stage and the
// effective stage of its enclosing span: cleaning is sticky, an explicit
// declaration wins otherwise, and an undeclared span inherits its
// parent (a root defaults to StageOther). Attribute and the live
// TraceContext share this rule, which is why their numbers agree.
func EffectiveStage(declared, parent string) string {
	switch {
	case parent == StageClean || declared == StageClean:
		return StageClean
	case declared != "":
		return declared
	case parent != "":
		return parent
	default:
		return StageOther
	}
}

// Breakdown is a per-request latency attribution: virtual time spent in
// each stage. Queue plus the service stages sums to the request's
// reported latency.
type Breakdown struct {
	Queue, Buffer, Flush, Flash, Clean, Other sim.Duration
}

// Total reports the summed attribution (the request's latency).
func (b Breakdown) Total() sim.Duration {
	return b.Queue + b.Buffer + b.Flush + b.Flash + b.Clean + b.Other
}

// Stage reports the duration attributed to the named stage.
func (b Breakdown) Stage(name string) sim.Duration {
	switch name {
	case StageQueue:
		return b.Queue
	case StageBuffer:
		return b.Buffer
	case StageFlush:
		return b.Flush
	case StageFlash:
		return b.Flash
	case StageClean:
		return b.Clean
	case StageOther:
		return b.Other
	}
	return 0
}

// Add accumulates another breakdown into b.
func (b *Breakdown) Add(o Breakdown) {
	b.Queue += o.Queue
	b.Buffer += o.Buffer
	b.Flush += o.Flush
	b.Flash += o.Flash
	b.Clean += o.Clean
	b.Other += o.Other
}

func breakdownFrom(stages *[numStages]sim.Duration) Breakdown {
	return Breakdown{
		Queue:  stages[stageQueue],
		Buffer: stages[stageBuffer],
		Flush:  stages[stageFlush],
		Flash:  stages[stageFlash],
		Clean:  stages[stageClean],
		Other:  stages[stageOther],
	}
}

// ctxFrame is one open span on the request's stack.
type ctxFrame struct {
	id    uint64
	stage int
}

// TraceContext is the causal identity of one in-flight request. It is
// created by Observer.BeginRequest, consulted by every Span opened while
// installed, and retired by Finish. It is not safe for concurrent use:
// the single simulation thread (the server's request path, under its
// mutex) is the only writer, which the installing caller guarantees.
type TraceContext struct {
	o     *Observer
	t     *Tracer
	clock *sim.Clock

	root   uint64
	layer  string
	op     string
	start  sim.Time
	queue  sim.Duration
	frames []ctxFrame
	mark   sim.Time
	stages [numStages]sim.Duration
}

// BeginRequest opens a request root span and installs its context on the
// observer, so spans opened by the layers beneath join the request's
// tree until Finish. queue is the admission-queueing delay that preceded
// service (arrival to service start); it is recorded on the root span
// and reported as the breakdown's StageQueue component.
//
// It returns nil — and the run stays untraced, at nil cost — when the
// observer has no tracer, or when a request context is already active
// (requests do not nest). The caller must Finish the returned context on
// every path, and must not touch it afterwards: Finish recycles the
// context into the observer's spare slot, so the enabled trace path
// allocates nothing per request in steady state. Tracing never alters
// simulated time or behaviour, only what is recorded about it.
func (o *Observer) BeginRequest(clock *sim.Clock, layer, op string, queue sim.Duration) *TraceContext {
	if o == nil || o.Tracer == nil || clock == nil {
		return nil
	}
	if o.reqCtx.Load() != nil {
		return nil
	}
	tc := o.ctxFree.Swap(nil)
	if tc == nil {
		tc = &TraceContext{}
	}
	now := clock.Now()
	*tc = TraceContext{
		o: o, t: o.Tracer, clock: clock,
		root:  o.spanIDs.Add(1),
		layer: layer, op: op,
		start: now,
		queue: queue,
		mark:  now,
		// The recycled frame stack keeps its capacity; past the first few
		// requests every push lands in existing backing array.
		frames: tc.frames[:0],
	}
	tc.stages[stageQueue] = queue
	tc.frames = append(tc.frames, ctxFrame{id: tc.root, stage: stageOther})
	o.reqCtx.Store(tc)
	return tc
}

// ActiveContext reports the installed request context, if any.
func (o *Observer) ActiveContext() *TraceContext {
	if o == nil {
		return nil
	}
	return o.reqCtx.Load()
}

// Root reports the context's root span ID.
func (tc *TraceContext) Root() uint64 {
	if tc == nil {
		return 0
	}
	return tc.root
}

// accrue charges the virtual time since the last span boundary to the
// stage of the innermost open span.
func (tc *TraceContext) accrue(now sim.Time) {
	if d := now.Sub(tc.mark); d > 0 {
		tc.stages[tc.frames[len(tc.frames)-1].stage] += d
	}
	tc.mark = now
}

// open pushes a child span; returns its id, parent id, and effective
// stage name.
func (tc *TraceContext) open(now sim.Time, declared string) (id, parent uint64, stage string) {
	tc.accrue(now)
	top := tc.frames[len(tc.frames)-1]
	eff := declared
	var idx int
	switch {
	case top.stage == stageClean || declared == StageClean:
		eff, idx = StageClean, stageClean
	case declared == "":
		idx = top.stage
		eff = stageName(idx)
	default:
		idx = stageIndexOf(declared)
	}
	id = tc.o.spanIDs.Add(1)
	tc.frames = append(tc.frames, ctxFrame{id: id, stage: idx})
	return id, top.id, eff
}

// close pops the innermost span after charging its trailing time.
func (tc *TraceContext) close(now sim.Time) {
	tc.accrue(now)
	if len(tc.frames) > 1 {
		tc.frames = tc.frames[:len(tc.frames)-1]
	}
}

func stageName(idx int) string {
	return BreakdownStages[idx]
}

// HolderSpan records a closed child span of the request root attributing
// one holder's share of a replicated operation: the primary's service
// time and each replica's, as separate children carrying the holder's
// node name. The cluster router calls it after the fan-out completes —
// the holders' latencies are already known, so the span is recorded
// retroactively with explicit bounds rather than opened and closed. It
// does not touch the stage accrual: holder time overlaps the root span's
// wall time (replicas are charged at the slowest holder), and the
// per-stage breakdown already accounts for it once.
func (tc *TraceContext) HolderSpan(node, op string, start, end sim.Time, bytes int64, outcome string) {
	if tc == nil {
		return
	}
	tc.t.Record(Span{
		Start: start, End: end,
		Layer: tc.layer, Op: op,
		Bytes: bytes, Outcome: outcome,
		ID: tc.o.spanIDs.Add(1), Parent: tc.root,
		Node: node,
	})
}

// Finish closes the request: it records the root span (with the queue
// delay and outcome), uninstalls the context from the observer, and
// returns the per-stage latency breakdown. Safe on a nil context.
func (tc *TraceContext) Finish(bytes int64, err error) Breakdown {
	outcome := OutcomeOK
	if err != nil {
		outcome = OutcomeError
	}
	return tc.FinishOutcome(bytes, outcome)
}

// FinishOutcome is Finish with an explicit outcome string. The context
// must not be used after it returns: it is recycled into the observer's
// spare slot for the next BeginRequest.
func (tc *TraceContext) FinishOutcome(bytes int64, outcome string) Breakdown {
	if tc == nil {
		return Breakdown{}
	}
	now := tc.clock.Now()
	tc.accrue(now)
	tc.frames = tc.frames[:1]
	o := tc.o
	o.reqCtx.Store(nil)
	tc.t.Record(Span{
		Start: tc.start, End: now,
		Layer: tc.layer, Op: tc.op,
		Bytes: bytes, Outcome: outcome,
		ID: tc.root, Queue: tc.queue, Stage: StageOther,
	})
	bd := breakdownFrom(&tc.stages)
	frames := tc.frames[:0]
	*tc = TraceContext{frames: frames}
	o.ctxFree.Store(tc)
	return bd
}
