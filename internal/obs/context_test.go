package obs

import (
	"errors"
	"testing"

	"ssmobile/internal/sim"
)

// TestMergeGaugeFuncLiveness is the regression test for the Merge
// liveness bug: a merged read-through gauge must keep reading the SOURCE
// instance's function (live state), and a later merge of a plain gauge
// under the same key must clear that function — otherwise the stale
// read-through shadows the newer value forever and the merged gauge
// appears frozen at the old instance's state.
func TestMergeGaugeFuncLiveness(t *testing.T) {
	dst := NewRegistry()

	live := 7.0
	src := NewRegistry()
	src.GaugeFunc("free_blocks", nil, func() float64 { return live })
	dst.Merge(src)

	if got := dst.Gauge("free_blocks", nil).Collect().Value; got != 7 {
		t.Fatalf("merged gauge = %v, want 7", got)
	}
	live = 3
	if got := dst.Gauge("free_blocks", nil).Collect().Value; got != 3 {
		t.Fatalf("merged gauge after source change = %v, want 3 (read-through must stay live)", got)
	}

	// A later instance registers the same gauge WITHOUT a function; its
	// plain value must win over the earlier merge's read-through.
	src2 := NewRegistry()
	src2.Gauge("free_blocks", nil).Set(42)
	dst.Merge(src2)
	if got := dst.Gauge("free_blocks", nil).Collect().Value; got != 42 {
		t.Fatalf("merged plain gauge = %v, want 42 (stale read-through must be cleared)", got)
	}
	live = 99 // the old function must no longer be consulted
	if got := dst.Gauge("free_blocks", nil).Collect().Value; got != 42 {
		t.Fatalf("merged plain gauge = %v, want 42 after old source mutates", got)
	}
}

// TestMergeCountersAndHistograms pins the additive Merge semantics the
// parallel engine relies on.
func TestMergeCountersAndHistograms(t *testing.T) {
	dst := NewRegistry()
	dst.Counter("ops_total", nil).Add(5)

	src := NewRegistry()
	src.Counter("ops_total", nil).Add(3)
	src.Histogram("lat", nil).Observe(10)
	src.Histogram("lat", nil).Observe(20)

	dst.Merge(src)
	if got := dst.Counter("ops_total", nil).Value(); got != 8 {
		t.Fatalf("merged counter = %d, want 8", got)
	}
	m := dst.Histogram("lat", nil).Collect()
	if m.Count != 2 || m.Sum != 30 {
		t.Fatalf("merged histogram count=%d sum=%v, want 2/30", m.Count, m.Sum)
	}
}

// driveRequest plays one synthetic request through a TraceContext the way
// the server stack does: a buffer hit, a flush containing a flash program,
// and an induced cleaner pass whose nested flash work must go sticky-clean.
// Virtual time advances only inside spans, as in the real simulation.
func driveRequest(o *Observer, clock *sim.Clock) Breakdown {
	tc := o.BeginRequest(clock, "server", "put", 5*sim.Microsecond)

	// Buffer hit: 2µs of DRAM time.
	sp := o.StageSpan(clock, nil, "dram", "write", StageBuffer)
	clock.Advance(2 * sim.Microsecond)
	sp.End(4096, nil)

	// Flush: 1µs of residue around a 3µs flash program.
	fl := o.StageSpan(clock, nil, "wbuf", "flush", StageFlush)
	clock.Advance(500 * sim.Nanosecond)
	dev := o.StageSpan(clock, nil, "flash", "program", StageFlash)
	clock.Advance(3 * sim.Microsecond)
	dev.End(4096, nil)
	clock.Advance(500 * sim.Nanosecond)
	fl.End(4096, nil)

	// Induced clean: everything beneath it is cleaning stall, including
	// the relocation program that would otherwise be StageFlash.
	cl := o.InducedSpan(clock, nil, "ftl", "clean", StageClean)
	clock.Advance(1 * sim.Microsecond)
	reloc := o.StageSpan(clock, nil, "flash", "program", StageFlash)
	clock.Advance(4 * sim.Microsecond)
	reloc.End(4096, nil)
	cl.End(0, nil)

	return tc.Finish(4096, nil)
}

// TestLiveBreakdownMatchesOfflineAttribution pins the property the whole
// attribution design rests on: the boundary accrual the live TraceContext
// performs equals the per-span exclusive-time reconstruction Attribute
// performs on the recorded trace.
func TestLiveBreakdownMatchesOfflineAttribution(t *testing.T) {
	o := New(256)
	clock := sim.NewClock()
	live := driveRequest(o, clock)

	want := Breakdown{
		Queue:  5 * sim.Microsecond,
		Buffer: 2 * sim.Microsecond,
		Flush:  1 * sim.Microsecond,
		Flash:  3 * sim.Microsecond,
		Clean:  5 * sim.Microsecond, // 1µs clean pass + 4µs sticky relocation
	}
	if live != want {
		t.Fatalf("live breakdown = %+v, want %+v", live, want)
	}

	reqs, st := Attribute(o.Tracer.Spans())
	if st.Requests != 1 || st.Orphans != 0 {
		t.Fatalf("attribution stats = %+v, want 1 request, 0 orphans", st)
	}
	if reqs[0].Breakdown != live {
		t.Fatalf("offline breakdown = %+v, live = %+v; must be equal", reqs[0].Breakdown, live)
	}
	if reqs[0].InducedCleans != 1 {
		t.Fatalf("induced cleans = %d, want 1", reqs[0].InducedCleans)
	}
	if reqs[0].Spans != 6 {
		t.Fatalf("tree size = %d spans, want 6", reqs[0].Spans)
	}
	if got := reqs[0].Breakdown.Total(); got != live.Total() || got != 16*sim.Microsecond {
		t.Fatalf("total = %v, want 16µs", got)
	}
}

// TestInducedSpanCarriesFollowFromAndStickyClean inspects the recorded
// spans directly: the induced clean links back to the request root, and
// the flash program nested inside it was resolved to the clean stage.
func TestInducedSpanCarriesFollowFromAndStickyClean(t *testing.T) {
	o := New(256)
	clock := sim.NewClock()
	driveRequest(o, clock)

	spans := o.Tracer.Spans()
	var root, clean, reloc *Span
	for i := range spans {
		sp := &spans[i]
		switch {
		case sp.Layer == "server":
			root = sp
		case sp.Op == "clean":
			clean = sp
		case sp.Op == "program" && sp.Stage == StageClean:
			reloc = sp
		}
	}
	if root == nil || clean == nil {
		t.Fatalf("missing root or clean span in %d recorded spans", len(spans))
	}
	if clean.FollowFrom != root.ID {
		t.Fatalf("clean.FollowFrom = %d, want root ID %d", clean.FollowFrom, root.ID)
	}
	if clean.Parent == 0 {
		t.Fatal("clean span must also carry a Parent link (it is nested in the request)")
	}
	if reloc == nil {
		t.Fatal("the relocation program under the clean must resolve to StageClean (sticky), not StageFlash")
	}
	if root.Queue != 5*sim.Microsecond {
		t.Fatalf("root queue = %v, want 5µs", root.Queue)
	}
}

// TestBackgroundSpansStayAnonymous: spans recorded outside any request
// context carry no IDs and no stage, so pre-context traces (and their
// goldens) are unchanged by the tracing machinery.
func TestBackgroundSpansStayAnonymous(t *testing.T) {
	o := New(16)
	clock := sim.NewClock()
	sp := o.StageSpan(clock, nil, "flash", "erase", StageFlash)
	clock.Advance(sim.Millisecond)
	sp.End(0, nil)

	got := o.Tracer.Spans()[0]
	if got.ID != 0 || got.Parent != 0 || got.FollowFrom != 0 || got.Stage != "" {
		t.Fatalf("background span leaked context fields: %+v", got)
	}
}

// TestRequestsDoNotNest: a second BeginRequest while one is active
// returns nil (untraced), and the nil context is safe on every method.
func TestRequestsDoNotNest(t *testing.T) {
	o := New(16)
	clock := sim.NewClock()
	tc := o.BeginRequest(clock, "server", "get", 0)
	if tc == nil {
		t.Fatal("first BeginRequest returned nil")
	}
	if inner := o.BeginRequest(clock, "server", "get", 0); inner != nil {
		t.Fatal("nested BeginRequest must return nil")
	}
	// The nil context is a no-op everywhere.
	var nilCtx *TraceContext
	if bd := nilCtx.Finish(0, errors.New("x")); bd != (Breakdown{}) {
		t.Fatalf("nil Finish = %+v, want zero", bd)
	}
	if nilCtx.Root() != 0 {
		t.Fatal("nil Root() != 0")
	}
	tc.Finish(0, nil)
	if o.ActiveContext() != nil {
		t.Fatal("Finish must uninstall the context")
	}
	// After Finish a new request can begin.
	if tc2 := o.BeginRequest(clock, "server", "get", 0); tc2 == nil {
		t.Fatal("BeginRequest after Finish returned nil")
	} else {
		tc2.Finish(0, nil)
	}
}

// TestNilObserverTracingIsFreeAndSafe: the nil-observer fast path the
// benchmarks guard — no allocations, no records, no panics.
func TestNilObserverTracingIsFreeAndSafe(t *testing.T) {
	var o *Observer
	clock := sim.NewClock()
	if tc := o.BeginRequest(clock, "server", "get", 0); tc != nil {
		t.Fatal("nil observer BeginRequest must return nil")
	}
	sp := o.StageSpan(clock, nil, "flash", "read", StageFlash)
	sp.End(0, nil) // must not panic
	if o.ActiveContext() != nil {
		t.Fatal("nil observer has no active context")
	}
}

// TestEffectiveStage pins the stage-resolution rule shared by the live
// context and the offline attribution.
func TestEffectiveStage(t *testing.T) {
	cases := []struct{ declared, parent, want string }{
		{StageFlash, "", StageFlash},         // declaration wins
		{StageFlash, StageFlush, StageFlash}, // over inheritance
		{"", StageFlush, StageFlush},         // undeclared inherits
		{"", "", StageOther},                 // root default
		{StageFlash, StageClean, StageClean}, // clean is sticky downward
		{StageClean, StageFlash, StageClean}, // and when declared
	}
	for _, c := range cases {
		if got := EffectiveStage(c.declared, c.parent); got != c.want {
			t.Errorf("EffectiveStage(%q, %q) = %q, want %q", c.declared, c.parent, got, c.want)
		}
	}
}
