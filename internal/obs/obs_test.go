package obs

import (
	"bytes"
	"reflect"
	"sync"
	"testing"
)

func TestMetricKeySortsLabels(t *testing.T) {
	a := metricKey("ops_total", Labels{"op": "write", "layer": "ftl"})
	b := metricKey("ops_total", Labels{"layer": "ftl", "op": "write"})
	if a != b {
		t.Fatalf("label order changed the key: %q vs %q", a, b)
	}
	if want := "ops_total{layer=ftl,op=write}"; a != want {
		t.Fatalf("key = %q, want %q", a, want)
	}
	if got := metricKey("plain", nil); got != "plain" {
		t.Fatalf("unlabelled key = %q, want %q", got, "plain")
	}
}

func TestCounterChainsToRegistryAggregate(t *testing.T) {
	o := New(0)
	lbl := Labels{"layer": "ftl"}
	// Two layer instances under one observer: each child is exact, the
	// registered parent aggregates both.
	c1 := o.Counter("host_ops_total", lbl)
	c2 := o.Counter("host_ops_total", lbl)
	c1.Add(3)
	c2.Add(4)
	if c1.Value() != 3 || c2.Value() != 4 {
		t.Fatalf("instance values = %d, %d; want 3, 4", c1.Value(), c2.Value())
	}
	m, ok := o.Registry.Snapshot().Find("host_ops_total", lbl)
	if !ok {
		t.Fatal("aggregate counter missing from snapshot")
	}
	if m.Value != 7 {
		t.Fatalf("aggregate = %v, want 7", m.Value)
	}
}

func TestHistogramChainsToRegistryAggregate(t *testing.T) {
	o := New(0)
	h1 := o.Histogram("lat", nil)
	h2 := o.Histogram("lat", nil)
	h1.Observe(10)
	h2.Observe(20)
	if h1.Sim().Count() != 1 || h2.Sim().Count() != 1 {
		t.Fatalf("instance counts = %d, %d; want 1, 1", h1.Sim().Count(), h2.Sim().Count())
	}
	m, ok := o.Registry.Snapshot().Find("lat", nil)
	if !ok {
		t.Fatal("aggregate histogram missing from snapshot")
	}
	if m.Count != 2 || m.Sum != 30 {
		t.Fatalf("aggregate count/sum = %d/%v, want 2/30", m.Count, m.Sum)
	}
}

func TestRegistryConcurrency(t *testing.T) {
	// Exercised under -race in CI: concurrent registration, increments,
	// gauge-func re-pointing and snapshots on one registry.
	o := New(0)
	const goroutines, iters = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := o.Counter("shared_total", Labels{"layer": "test"})
			h := o.Histogram("shared_lat", nil)
			for i := 0; i < iters; i++ {
				c.Inc()
				h.Observe(float64(i))
				o.GaugeFunc("shared_gauge", nil, func() float64 { return float64(g) })
				if i%100 == 0 {
					o.Registry.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()
	snap := o.Registry.Snapshot()
	if m, _ := snap.Find("shared_total", Labels{"layer": "test"}); m.Value != goroutines*iters {
		t.Fatalf("counter aggregate = %v, want %d", m.Value, goroutines*iters)
	}
	if m, _ := snap.Find("shared_lat", nil); m.Count != goroutines*iters {
		t.Fatalf("histogram aggregate count = %d, want %d", m.Count, goroutines*iters)
	}
}

func TestKindClashPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", nil)
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("m", nil)
}

func TestNilObserverIsUsable(t *testing.T) {
	var o *Observer
	c := o.Counter("c", nil)
	c.Add(2)
	if c.Value() != 2 {
		t.Fatalf("standalone counter = %d, want 2", c.Value())
	}
	g := o.Gauge("g", nil)
	g.Set(5)
	if g.Value() != 5 {
		t.Fatalf("standalone gauge = %d, want 5", g.Value())
	}
	h := o.Histogram("h", nil)
	h.Observe(1)
	if h.Sim().Count() != 1 {
		t.Fatalf("standalone histogram count = %d, want 1", h.Sim().Count())
	}
	// And the nil collectors themselves are no-ops, not crashes.
	var nc *Counter
	nc.Inc()
	var ng *Gauge
	ng.Add(1)
	var nh *Histogram
	nh.Observe(1)
	sp := o.Span(nil, nil, "l", "op")
	sp.End(0, nil)
}

func TestGaugeFuncLastRegistrationWins(t *testing.T) {
	o := New(0)
	o.GaugeFunc("free", nil, func() float64 { return 1 })
	o.GaugeFunc("free", nil, func() float64 { return 2 })
	m, ok := o.Registry.Snapshot().Find("free", nil)
	if !ok {
		t.Fatal("gauge missing from snapshot")
	}
	if m.Value != 2 {
		t.Fatalf("gauge reads %v, want the newest instance's 2", m.Value)
	}
}

func TestSnapshotDiffAndRoundTrip(t *testing.T) {
	o := New(0)
	c := o.Counter("ops_total", Labels{"op": "write"})
	g := o.Gauge("in_use", nil)
	h := o.Histogram("lat", nil)
	c.Add(10)
	g.Set(3)
	h.Observe(100)
	base := o.Registry.Snapshot()

	c.Add(5)
	g.Set(7)
	h.Observe(200)
	now := o.Registry.Snapshot()

	d := now.Diff(base)
	if m, _ := d.Find("ops_total", Labels{"op": "write"}); m.Value != 5 {
		t.Fatalf("counter delta = %v, want 5", m.Value)
	}
	if m, _ := d.Find("in_use", nil); m.Value != 7 {
		t.Fatalf("gauge after diff = %v, want the newer state 7", m.Value)
	}
	if m, _ := d.Find("lat", nil); m.Count != 1 || m.Sum != 200 {
		t.Fatalf("histogram delta count/sum = %d/%v, want 1/200", m.Count, m.Sum)
	}

	// WriteJSON then ReadSnapshot must reproduce the snapshot exactly.
	var buf bytes.Buffer
	if err := now.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	back, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatalf("ReadSnapshot: %v", err)
	}
	if !reflect.DeepEqual(now, back) {
		t.Fatalf("round trip changed the snapshot:\nwrote %+v\nread  %+v", now, back)
	}
}

func TestObserverOrFallsBackToDefault(t *testing.T) {
	prev := Default()
	defer SetDefault(prev)
	o := New(0)
	SetDefault(o)
	if Or(nil) != o {
		t.Fatal("Or(nil) did not return the default observer")
	}
	explicit := New(0)
	if Or(explicit) != explicit {
		t.Fatal("Or(explicit) did not return the explicit observer")
	}
}
