package obs

import "testing"

func TestCauseDefaultsToHostWrite(t *testing.T) {
	var nilObs *Observer
	if got := nilObs.Cause(); got != CauseHostWrite {
		t.Fatalf("nil observer Cause = %q, want host-write", got)
	}
	o := New(0)
	if got := o.Cause(); got != CauseHostWrite {
		t.Fatalf("fresh observer Cause = %q, want host-write", got)
	}
}

func TestPushCauseNestsAndRestores(t *testing.T) {
	o := New(0)
	restoreSync := o.PushCause(CauseGroupCommitFlush)
	if got := o.Cause(); got != CauseGroupCommitFlush {
		t.Fatalf("after push, Cause = %q", got)
	}
	// Innermost wins while nested...
	restoreMeta := o.PushCause(CauseMetadata)
	if got := o.Cause(); got != CauseMetadata {
		t.Fatalf("nested Cause = %q, want metadata", got)
	}
	// ...and each restore reinstates exactly the enclosing scope.
	restoreMeta()
	if got := o.Cause(); got != CauseGroupCommitFlush {
		t.Fatalf("after inner restore, Cause = %q, want group-commit-flush", got)
	}
	restoreSync()
	if got := o.Cause(); got != CauseHostWrite {
		t.Fatalf("after outer restore, Cause = %q, want host-write", got)
	}
}

func TestPushCauseNilObserver(t *testing.T) {
	var o *Observer
	restore := o.PushCause(CauseCleanerMigrate) // must not panic
	restore()
	if got := o.Cause(); got != CauseHostWrite {
		t.Fatalf("nil observer Cause after push/restore = %q", got)
	}
}

func TestCausesCanonicalOrder(t *testing.T) {
	want := []Cause{
		CauseHostWrite, CauseGroupCommitFlush, CauseCleanerMigrate,
		CauseIdleClean, CauseMountRecovery, CauseMetadata,
	}
	if len(Causes) != len(want) {
		t.Fatalf("Causes has %d entries, want %d", len(Causes), len(want))
	}
	for i, c := range want {
		if Causes[i] != c {
			t.Fatalf("Causes[%d] = %q, want %q", i, Causes[i], c)
		}
	}
}
