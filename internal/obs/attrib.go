// Offline latency attribution: reconstructing per-request breakdowns
// from a recorded span stream (a JSONL trace or a flight record), the
// file-side twin of the live TraceContext accrual.
//
// Spans are recorded at CLOSE time, so within one observer's stream a
// request's children always precede its root, and — because the
// simulation beneath a server is single-threaded — one request's spans
// are contiguous (interleaved only with anonymous background spans,
// which carry no IDs and are skipped). Attribute therefore streams:
// it buffers identified spans until their root closes, resolves the
// tree, charges each span's exclusive time to its recorded stage, and
// moves on. Buffering one request at a time also keeps merged traces
// (the parallel engine re-records per-job rings in sequence, restarting
// span IDs per observer) attributable: IDs only need to be unique
// within one request's window, which they are.
package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"ssmobile/internal/sim"
)

// RequestAttribution is one reconstructed request: its root span and the
// per-stage breakdown of its latency.
type RequestAttribution struct {
	// Root is the request's root span (layer/op/outcome/bytes/queue).
	Root Span
	// Breakdown is the per-stage attribution; Breakdown.Total() equals
	// Queue plus the root span's duration.
	Breakdown Breakdown
	// Spans counts the spans in the request's tree, root included.
	Spans int
	// InducedCleans counts spans carrying a FollowFrom link to the root.
	InducedCleans int
}

// AttributionStats summarises a reconstruction pass.
type AttributionStats struct {
	// Requests is the number of complete request trees reconstructed.
	Requests int
	// Orphans counts identified spans whose root never appeared (the
	// ring dropped it) — they are excluded from attribution.
	Orphans int
	// Background counts anonymous spans (no request context).
	Background int
}

// Attribute reconstructs per-request latency breakdowns from a span
// stream, in stream order. The result is exact for any trace whose
// requests are complete in the ring: each request's breakdown equals
// what the live TraceContext reported when the request was served.
func Attribute(spans []Span) ([]RequestAttribution, AttributionStats) {
	var out []RequestAttribution
	var st AttributionStats
	var pending []Span
	for _, sp := range spans {
		if sp.ID == 0 {
			st.Background++
			continue
		}
		if !isRoot(sp) {
			pending = append(pending, sp)
			continue
		}
		req, used := resolveRequest(sp, pending)
		out = append(out, req)
		st.Requests++
		st.Orphans += len(pending) - used
		pending = pending[:0]
	}
	st.Orphans += len(pending)
	return out, st
}

// isRoot identifies a request root: identified, with no parent and no
// follow-from (induced spans have parents; only roots have neither).
func isRoot(sp Span) bool {
	return sp.ID != 0 && sp.Parent == 0 && sp.FollowFrom == 0
}

// resolveRequest builds one request's attribution from its root and the
// buffered candidate children; used reports how many candidates belong
// to the tree.
func resolveRequest(root Span, pending []Span) (RequestAttribution, int) {
	req := RequestAttribution{Root: root, Spans: 1}
	// Child durations, keyed by parent ID, to compute exclusive time.
	childTime := make(map[uint64]sim.Duration, len(pending))
	inTree := make(map[uint64]bool, len(pending)+1)
	inTree[root.ID] = true
	// Children close before parents, so a span's parent appears LATER in
	// the stream; walk backwards so parents are classified first.
	member := make([]bool, len(pending))
	for i := len(pending) - 1; i >= 0; i-- {
		sp := pending[i]
		if inTree[sp.Parent] {
			member[i] = true
			inTree[sp.ID] = true
		}
	}
	used := 0
	for i, sp := range pending {
		if !member[i] {
			continue
		}
		used++
		req.Spans++
		if sp.FollowFrom == root.ID {
			req.InducedCleans++
		}
		childTime[sp.Parent] += sp.Duration()
	}
	// Exclusive time per span → its recorded stage.
	var stages [numStages]sim.Duration
	charge := func(sp Span) {
		excl := sp.Duration() - childTime[sp.ID]
		if excl < 0 {
			excl = 0
		}
		idx, ok := stageIndex[sp.Stage]
		if !ok {
			idx = stageOther
		}
		stages[idx] += excl
	}
	for i, sp := range pending {
		if member[i] {
			charge(sp)
		}
	}
	charge(root)
	stages[stageQueue] += root.Queue
	req.Breakdown = breakdownFrom(&stages)
	return req, used
}

// LoadSpans reads a recorded span stream from either supported format:
// a JSONL trace (header line {"spans":N,"dropped":M}, one span object
// per line) or a flight-record JSON document (whose "spans" field is an
// array). It returns the spans oldest-first and the recorded drop count.
func LoadSpans(r io.Reader) ([]Span, int64, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, 0, err
	}
	// A flight record is one JSON object whose "spans" is an array; the
	// JSONL header is an object whose "spans" is a number. Probe with
	// RawMessage so the array case decodes in one step.
	var probe struct {
		Spans   json.RawMessage `json:"spans"`
		Dropped int64           `json:"dropped"`
	}
	if err := json.Unmarshal(data, &probe); err == nil && len(probe.Spans) > 0 && probe.Spans[0] == '[' {
		var fr FlightRecord
		if err := json.Unmarshal(data, &fr); err != nil {
			return nil, 0, fmt.Errorf("obs: flight record: %w", err)
		}
		return fr.Spans, fr.Dropped, nil
	}
	// JSONL: header then one span per line.
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	var spans []Span
	var dropped int64
	line := 0
	for sc.Scan() {
		line++
		text := bytes.TrimSpace(sc.Bytes())
		if len(text) == 0 {
			continue
		}
		if line == 1 {
			var hdr struct {
				Spans   int64 `json:"spans"`
				Dropped int64 `json:"dropped"`
			}
			if err := json.Unmarshal(text, &hdr); err == nil {
				dropped = hdr.Dropped
				continue
			}
			// No header: fall through and treat the line as a span.
		}
		var sp Span
		if err := json.Unmarshal(text, &sp); err != nil {
			return nil, 0, fmt.Errorf("obs: trace line %d: %w", line, err)
		}
		spans = append(spans, sp)
	}
	if err := sc.Err(); err != nil {
		return nil, 0, err
	}
	return spans, dropped, nil
}
