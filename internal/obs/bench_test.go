package obs

import (
	"testing"

	"ssmobile/internal/sim"
)

// Benchmarks guarding the fast paths the layers hit on every operation.
// The nil-observer and no-tracer cases are the uninstrumented runs — they
// must stay allocation-free and near-zero cost, because every device op
// in every experiment pays them. The in-context case is the fully traced
// request path; its cost is what the BENCH_pr5.json throughput delta
// reflects end to end.

func BenchmarkNilObserverSpan(b *testing.B) {
	var o *Observer
	clock := sim.NewClock()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := o.StageSpan(clock, nil, "flash", "read", StageFlash)
		sp.End(4096, nil)
	}
}

func BenchmarkNilObserverCounter(b *testing.B) {
	var o *Observer
	c := o.Counter("ops_total", nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkNoTracerSpan(b *testing.B) {
	// An observer carrying only a registry: spans are disabled, metrics on.
	o := &Observer{Registry: NewRegistry()}
	clock := sim.NewClock()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := o.StageSpan(clock, nil, "flash", "read", StageFlash)
		sp.End(4096, nil)
	}
}

func BenchmarkSpanOutsideContext(b *testing.B) {
	o := New(1 << 10)
	clock := sim.NewClock()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := o.StageSpan(clock, nil, "flash", "read", StageFlash)
		clock.Advance(sim.Microsecond)
		sp.End(4096, nil)
	}
}

func BenchmarkSpanInContext(b *testing.B) {
	o := New(1 << 10)
	clock := sim.NewClock()
	tc := o.BeginRequest(clock, "server", "bench", 0)
	if tc == nil {
		b.Fatal("no context")
	}
	defer tc.Finish(0, nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp := o.StageSpan(clock, nil, "flash", "read", StageFlash)
		clock.Advance(sim.Microsecond)
		sp.End(4096, nil)
	}
}

func BenchmarkBeginFinishRequest(b *testing.B) {
	o := New(1 << 10)
	clock := sim.NewClock()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tc := o.BeginRequest(clock, "server", "bench", sim.Microsecond)
		tc.Finish(0, nil)
	}
}
