package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ssmobile/internal/sim"
)

// mkSpan builds a deterministic span for ring and sink tests.
func mkSpan(i int) Span {
	return Span{
		Start:   sim.Time(i * 1000),
		End:     sim.Time(i*1000 + 500),
		Layer:   "flash",
		Op:      fmt.Sprintf("op%d", i),
		Bytes:   int64(i),
		Outcome: OutcomeOK,
	}
}

func TestTracerRingWraparound(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		tr.Record(mkSpan(i))
	}
	if tr.Total() != 10 {
		t.Fatalf("Total = %d, want 10", tr.Total())
	}
	if tr.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", tr.Dropped())
	}
	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("retained %d spans, want 4", len(spans))
	}
	// The last four recorded, oldest first.
	for i, sp := range spans {
		if want := fmt.Sprintf("op%d", 6+i); sp.Op != want {
			t.Fatalf("span %d is %q, want %q", i, sp.Op, want)
		}
	}
}

func TestTracerNoWraparound(t *testing.T) {
	tr := NewTracer(8)
	for i := 0; i < 3; i++ {
		tr.Record(mkSpan(i))
	}
	if tr.Dropped() != 0 {
		t.Fatalf("Dropped = %d, want 0", tr.Dropped())
	}
	spans := tr.Spans()
	if len(spans) != 3 || spans[0].Op != "op0" || spans[2].Op != "op2" {
		t.Fatalf("retained spans wrong: %+v", spans)
	}
}

func TestSpanRecordsTimeEnergyOutcome(t *testing.T) {
	o := New(8)
	clock := sim.NewClock()
	meter := sim.NewEnergyMeter()
	clock.Advance(10 * sim.Microsecond)

	sp := o.Span(clock, meter, "ftl", "write_page")
	clock.Advance(250 * sim.Microsecond)
	meter.Charge("flash.program", 42)
	sp.End(4096, nil)

	spf := o.Span(clock, meter, "ftl", "read_page")
	spf.End(0, fmt.Errorf("boom"))

	spans := o.Tracer.Spans()
	if len(spans) != 2 {
		t.Fatalf("recorded %d spans, want 2", len(spans))
	}
	got := spans[0]
	if got.Layer != "ftl" || got.Op != "write_page" || got.Bytes != 4096 {
		t.Fatalf("span identity wrong: %+v", got)
	}
	if got.Start != sim.Time(10*sim.Microsecond) || got.Duration() != 250*sim.Microsecond {
		t.Fatalf("span timing wrong: start %v duration %v", got.Start, got.Duration())
	}
	if got.Energy != 42 {
		t.Fatalf("span energy = %v, want the meter delta 42", got.Energy)
	}
	if got.Outcome != OutcomeOK {
		t.Fatalf("outcome = %q, want %q", got.Outcome, OutcomeOK)
	}
	if spans[1].Outcome != OutcomeError {
		t.Fatalf("failed span outcome = %q, want %q", spans[1].Outcome, OutcomeError)
	}
}

// goldenSpans is the fixed input behind the Chrome sink golden file: two
// layers, an error outcome, and a zero-byte span to cover field omission.
func goldenSpans() []Span {
	return []Span{
		{Start: 1000, End: 3500, Layer: "flash", Op: "program", Bytes: 256, Energy: 900, Outcome: OutcomeOK},
		{Start: 4000, End: 4100, Layer: "ftl", Op: "read_page", Bytes: 4096, Outcome: OutcomeOK},
		{Start: 5000, End: 9000, Layer: "flash", Op: "erase", Outcome: OutcomeError},
	}
}

func TestChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := NewChromeTraceSink(&buf).WriteSpans(goldenSpans(), 2); err != nil {
		t.Fatalf("WriteSpans: %v", err)
	}
	golden := filepath.Join("testdata", "chrome_trace.golden.json")
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden file: %v (regenerate by writing buf to %s)", err, golden)
	}
	if got := buf.Bytes(); !bytes.Equal(got, want) {
		t.Fatalf("Chrome trace output drifted from %s:\ngot:\n%s\nwant:\n%s", golden, got, want)
	}
	// And it must stay structurally valid trace_event JSON.
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		OtherData   map[string]any   `json:"otherData"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	// 3 complete events + 2 thread_name metadata events.
	if len(doc.TraceEvents) != 5 {
		t.Fatalf("traceEvents = %d, want 5", len(doc.TraceEvents))
	}
	if doc.OtherData["dropped_spans"] != float64(2) {
		t.Fatalf("dropped_spans = %v, want 2", doc.OtherData["dropped_spans"])
	}
}

func TestJSONLSink(t *testing.T) {
	var buf bytes.Buffer
	if err := NewJSONLSink(&buf).WriteSpans(goldenSpans(), 1); err != nil {
		t.Fatalf("WriteSpans: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines, want header + 3 spans", len(lines))
	}
	var hdr struct {
		Spans   int   `json:"spans"`
		Dropped int64 `json:"dropped"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &hdr); err != nil {
		t.Fatalf("header line: %v", err)
	}
	if hdr.Spans != 3 || hdr.Dropped != 1 {
		t.Fatalf("header = %+v, want spans 3 dropped 1", hdr)
	}
	for i, line := range lines[1:] {
		var sp Span
		if err := json.Unmarshal([]byte(line), &sp); err != nil {
			t.Fatalf("span line %d: %v", i, err)
		}
		if sp != goldenSpans()[i] {
			t.Fatalf("span %d round-tripped to %+v, want %+v", i, sp, goldenSpans()[i])
		}
	}
}
